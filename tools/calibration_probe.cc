// Temporary calibration probe: measures name ambiguity and similarity
// distributions of the generated datasets.
#include <cstdio>
#include <map>
#include <set>
#include "baselines/aml.h"
#include "embedding/vector_ops.h"
#include "core/leapme.h"
#include "eval/experiment.h"
#include "eval/leapme_adapter.h"
#include "text/tokenizer.h"
#include "common/string_util.h"

using namespace leapme;

int main() {
  if (std::getenv("LEAPME_PROBE_FULL") != nullptr) {
    // One paper-scale LEAPME evaluation on cameras (Both/all, 80%).
    auto specs = eval::DefaultDatasetSpecs(eval::EvalScale::kPaper);
    auto ed = eval::BuildEvalDataset(specs[0]);
    if (!ed.ok()) { std::printf("err\n"); return 1; }
    std::printf("cameras paper scale: %zu props, %zu matches\n",
                ed->dataset.property_count(), ed->dataset.CountMatchingPairs());
    eval::EvaluationOptions opts;
    opts.train_fraction = 0.8;
    opts.repetitions = 1;
    eval::MatcherFactory factory =
        [](const embedding::EmbeddingModel& model) {
          core::LeapmeOptions options;
          return std::unique_ptr<baselines::PairMatcher>(
              new eval::LeapmeAdapter(&model, options, "LEAPME"));
        };
    auto result = eval::EvaluateMatcher(factory, *ed, opts);
    if (!result.ok()) { std::printf("err: %s\n", result.status().ToString().c_str()); return 1; }
    std::printf("LEAPME both/all 80%%: %s\n", result->mean.ToString().c_str());

    // Threshold sweep: train once, score test pairs, evaluate P/R at
    // several thresholds to separate calibration issues from
    // inseparability.
    {
      leapme::Rng rng(opts.seed);
      auto split = data::SplitSources(ed->dataset, 0.8, rng);
      auto train = data::BuildTrainingPairs(ed->dataset, split.train_sources, 2.0, rng);
      auto test = data::BuildTestPairs(ed->dataset, split.train_sources);
      core::LeapmeOptions options;
      core::LeapmeMatcher matcher(ed->model.get(), options);
      auto st = matcher.Fit(ed->dataset, *train); (void)st;
      std::printf("train pairs=%zu losses: first=%.4f last=%.4f\n",
                  train->size(), matcher.training_losses().front(),
                  matcher.training_losses().back());
      std::vector<data::PropertyPair> pairs; std::vector<int32_t> labels;
      for (auto& lp : test) { pairs.push_back(lp.pair); labels.push_back(lp.label); }
      auto scores = matcher.ScorePairs(pairs);
      for (double thr : {0.5, 0.7, 0.9, 0.95, 0.99}) {
        std::vector<int32_t> pred(scores->size());
        for (size_t i = 0; i < scores->size(); ++i) pred[i] = (*scores)[i] >= thr;
        auto q = ml::ComputeQuality(pred, labels);
        std::printf("  thr=%.2f %s\n", thr, q.ToString().c_str());
      }
      // top FPs at 0.99
      int shown = 0;
      for (size_t i = 0; i < scores->size() && shown < 15; ++i) {
        if ((*scores)[i] >= 0.99 && labels[i] == 0) {
          const auto& pa = ed->dataset.property(pairs[i].a);
          const auto& pb = ed->dataset.property(pairs[i].b);
          std::printf("  FP@0.99: '%s'[%s] ~ '%s'[%s]\n", pa.name.c_str(),
                      pa.reference.c_str(), pb.name.c_str(), pb.reference.c_str());
          shown++;
        }
      }
    }
    return 0;
  }
  auto specs = eval::DefaultDatasetSpecs(eval::EvalScale::kBench);
  for (const auto& spec : specs) {
    auto ed = eval::BuildEvalDataset(spec);
    if (!ed.ok()) { std::printf("err\n"); return 1; }
    const auto& ds = ed->dataset;
    // exact normalized-name pairs: match vs non-match
    size_t same_name_match = 0, same_name_nonmatch = 0;
    size_t total_match = 0;
    std::map<std::pair<std::string,std::string>, int> nonmatch_examples;
    for (data::PropertyId a = 0; a < ds.property_count(); ++a) {
      for (data::PropertyId b = a + 1; b < ds.property_count(); ++b) {
        if (ds.property(a).source == ds.property(b).source) continue;
        bool is_match = ds.IsMatch(a, b);
        if (is_match) total_match++;
        auto na = JoinStrings(text::EmbeddingWords(ds.property(a).name), " ");
        auto nb = JoinStrings(text::EmbeddingWords(ds.property(b).name), " ");
        if (na == nb && !na.empty()) {
          if (is_match) same_name_match++;
          else {
            same_name_nonmatch++;
            if (nonmatch_examples.size() < 8)
              nonmatch_examples[{ds.property(a).reference.empty()?"<junk>":ds.property(a).reference,
                                 ds.property(b).reference.empty()?"<junk>":ds.property(b).reference}]++;
          }
        }
      }
    }
    std::printf("%s: matches=%zu same-name match=%zu nonmatch=%zu (exact-name P=%.2f, R=%.2f)\n",
                spec.name.c_str(), total_match, same_name_match, same_name_nonmatch,
                same_name_match / double(same_name_match + same_name_nonmatch),
                same_name_match / double(total_match));
    for (auto& [k, v] : nonmatch_examples)
      std::printf("   collision: %s <-> %s x%d\n", k.first.c_str(), k.second.c_str(), v);
    // SemProp: name embedding cos distribution for match vs nonmatch (sampled)
    std::vector<embedding::Vector> embs;
    for (data::PropertyId a = 0; a < ds.property_count(); ++a)
      embs.push_back(embedding::AverageEmbedding(*ed->model, text::EmbeddingWords(ds.property(a).name)));
    size_t m_hi=0,m_n=0,n_hi=0,n_n=0;
    for (data::PropertyId a = 0; a < ds.property_count(); ++a)
      for (data::PropertyId b = a + 1; b < ds.property_count(); ++b) {
        if (ds.property(a).source == ds.property(b).source) continue;
        double cs = embedding::CosineSimilarity(embs[a], embs[b]);
        if (ds.IsMatch(a,b)) { m_n++; if (cs >= 0.4) m_hi++; }
        else { n_n++; if (cs >= 0.4) { n_hi++;
          static int shown = 0;
          if (spec.name == "cameras" && shown < 25) {
            std::printf("   FP cos=%.2f: '%s' [%s] ~ '%s' [%s]\n", cs,
              ds.property(a).name.c_str(), ds.property(a).reference.c_str(),
              ds.property(b).name.c_str(), ds.property(b).reference.c_str());
            shown++; } } }
      }
    std::printf("   cos>=0.4: matches %.2f%% (%zu/%zu)  nonmatches %.2f%% (%zu/%zu)\n",
      100.0*m_hi/m_n, m_hi, m_n, 100.0*n_hi/n_n, n_hi, n_n);
  }
  return 0;
}
