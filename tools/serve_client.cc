// Load generator and correctness checker for a running `leapme serve`.
//
// Opens --clients concurrent connections, each sending --requests score
// requests of --pairs property pairs drawn from a dataset (--data TSV,
// or a synthetic catalog generated from --domain/--sources/--entities).
// Every response is validated: ok:true, echoed id, one score per pair,
// all scores finite. With --model FILE the same model is additionally
// loaded in-process and every wire score must be bit-identical to the
// offline ScorePairsOn result (the embedding flags must match the
// server's: --domain/--emb-dim/--seed or --embeddings).
//
// Prints a summary with throughput and latency percentiles, then the
// server's own stats line. Exits non-zero on any protocol error or
// score mismatch.
//
// Usage:
//   serve_client --port N [--host 127.0.0.1] [--clients 8]
//                [--requests 20] [--pairs 8] [--model FILE]
//                [--data FILE | --domain tvs] [--sources 4]
//                [--entities 8] [--seed 7] [--emb-dim 64]
//                [--embeddings FILE]

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "data/domain.h"
#include "data/generator.h"
#include "data/tsv_io.h"
#include "embedding/caching_model.h"
#include "embedding/synthetic_model.h"
#include "embedding/text_embedding_file.h"
#include "core/leapme.h"
#include "serve/json.h"

namespace {

using namespace leapme;

[[noreturn]] void Die(const std::string& message) {
  std::fprintf(stderr, "serve_client: %s\n", message.c_str());
  std::exit(1);
}

/// `--key value` / `--key=value` argument list; no positional arguments.
std::map<std::string, std::string> ParseArgs(int argc, char** argv) {
  std::map<std::string, std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) Die("unexpected argument '" + token + "'");
    token.erase(0, 2);
    const size_t equals = token.find('=');
    if (equals != std::string::npos) {
      args[token.substr(0, equals)] = token.substr(equals + 1);
    } else if (i + 1 < argc) {
      args[token] = argv[++i];
    } else {
      Die("--" + token + " needs a value");
    }
  }
  return args;
}

int64_t ArgInt(const std::map<std::string, std::string>& args,
               const std::string& key, int64_t fallback) {
  auto it = args.find(key);
  if (it == args.end()) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    Die("--" + key + " must be an integer, got '" + it->second + "'");
  }
  return parsed;
}

/// Blocking line-delimited client over one TCP connection.
class LineClient {
 public:
  LineClient(const std::string& host, int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_in address = {};
    address.sin_family = AF_INET;
    address.sin_port = htons(static_cast<uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1 ||
        ::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                  sizeof(address)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return fd_ >= 0; }

  bool SendLine(const std::string& line) {
    std::string framed = line + "\n";
    size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t n = ::send(fd_, framed.data() + sent,
                               framed.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  bool ReadLine(std::string* out) {
    while (true) {
      const size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        *out = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

std::string SpecJson(const data::Dataset& dataset, data::PropertyId id) {
  std::string out = "{\"name\":";
  serve::AppendJsonString(&out, dataset.property(id).name);
  out += ",\"values\":[";
  const auto& instances = dataset.instances(id);
  for (size_t i = 0; i < instances.size(); ++i) {
    if (i > 0) out += ',';
    serve::AppendJsonString(&out, instances[i].value);
  }
  out += "]}";
  return out;
}

struct SharedState {
  std::string host;
  int port = 0;
  size_t requests_per_client = 0;
  size_t pairs_per_request = 0;
  const data::Dataset* dataset = nullptr;
  std::vector<data::PropertyPair> pairs;
  std::vector<double> expected;  // empty without --model
  std::atomic<uint64_t> requests_ok{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> mismatches{0};
};

/// One client connection's worth of load; returns per-request latencies
/// in microseconds.
std::vector<double> RunClient(SharedState& state, size_t client_index) {
  std::vector<double> latencies;
  LineClient client(state.host, state.port);
  if (!client.connected()) {
    std::fprintf(stderr, "client %zu: cannot connect to %s:%d\n",
                 client_index, state.host.c_str(), state.port);
    state.errors.fetch_add(state.requests_per_client);
    return latencies;
  }
  for (size_t request = 0; request < state.requests_per_client; ++request) {
    // Each request scores a deterministic window into the pair list, so
    // the expected scores are known by offset.
    const size_t start =
        (client_index * 131 + request * state.pairs_per_request) %
        state.pairs.size();
    const int64_t id =
        static_cast<int64_t>(client_index * 100000 + request);
    std::string line =
        "{\"op\":\"score\",\"id\":" + std::to_string(id) + ",\"pairs\":[";
    for (size_t i = 0; i < state.pairs_per_request; ++i) {
      const auto& pair = state.pairs[(start + i) % state.pairs.size()];
      if (i > 0) line += ',';
      line += "{\"a\":" + SpecJson(*state.dataset, pair.a) +
              ",\"b\":" + SpecJson(*state.dataset, pair.b) + "}";
    }
    line += "]}";

    const auto begin = std::chrono::steady_clock::now();
    std::string response;
    if (!client.SendLine(line) || !client.ReadLine(&response)) {
      std::fprintf(stderr, "client %zu: connection lost\n", client_index);
      state.errors.fetch_add(state.requests_per_client - request);
      return latencies;
    }
    const auto end = std::chrono::steady_clock::now();
    latencies.push_back(
        std::chrono::duration<double, std::micro>(end - begin).count());

    auto parsed = serve::JsonValue::Parse(response);
    const serve::JsonValue* ok =
        parsed.ok() ? parsed->Find("ok") : nullptr;
    const serve::JsonValue* scores =
        parsed.ok() ? parsed->Find("scores") : nullptr;
    const serve::JsonValue* echoed_id =
        parsed.ok() ? parsed->Find("id") : nullptr;
    if (ok == nullptr || !ok->is_bool() || !ok->AsBool() ||
        scores == nullptr || !scores->is_array() ||
        scores->AsArray().size() != state.pairs_per_request ||
        echoed_id == nullptr || !echoed_id->is_number() ||
        echoed_id->AsNumber() != static_cast<double>(id)) {
      std::fprintf(stderr, "client %zu: bad response: %s\n", client_index,
                   response.c_str());
      state.errors.fetch_add(1);
      continue;
    }
    bool all_match = true;
    for (size_t i = 0; i < state.pairs_per_request; ++i) {
      const serve::JsonValue& score = scores->AsArray()[i];
      if (!score.is_number()) {
        all_match = false;
        break;
      }
      if (state.expected.empty()) continue;
      const double expected = state.expected[(start + i) %
                                             state.pairs.size()];
      if (score.AsNumber() != expected) {
        std::fprintf(stderr,
                     "client %zu: score mismatch at pair %zu: wire %.17g "
                     "!= offline %.17g\n",
                     client_index, (start + i) % state.pairs.size(),
                     score.AsNumber(), expected);
        all_match = false;
      }
    }
    if (all_match) {
      state.requests_ok.fetch_add(1);
    } else {
      state.mismatches.fetch_add(1);
    }
  }
  return latencies;
}

double Percentile(std::vector<double>& sorted, double quantile) {
  if (sorted.empty()) return 0.0;
  const size_t rank = static_cast<size_t>(
      quantile * static_cast<double>(sorted.size()));
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = ParseArgs(argc, argv);
  if (args.count("port") == 0) {
    Die("--port is required (see the usage comment at the top of "
        "tools/serve_client.cc)");
  }

  SharedState state;
  state.host = args.count("host") ? args.at("host") : "127.0.0.1";
  state.port = static_cast<int>(ArgInt(args, "port", 0));
  const size_t clients = static_cast<size_t>(ArgInt(args, "clients", 8));
  state.requests_per_client =
      static_cast<size_t>(ArgInt(args, "requests", 20));
  state.pairs_per_request = static_cast<size_t>(ArgInt(args, "pairs", 8));
  if (state.port <= 0 || clients == 0 || state.requests_per_client == 0 ||
      state.pairs_per_request == 0) {
    Die("--port/--clients/--requests/--pairs must be positive");
  }

  // The request corpus: a real TSV dataset or a generated catalog.
  data::Dataset dataset("");
  if (args.count("data")) {
    auto read = data::ReadDatasetTsv(args.at("data"));
    if (!read.ok()) Die(read.status().ToString());
    dataset = std::move(*read);
  } else {
    const std::string domain_name =
        args.count("domain") ? args.at("domain") : "tvs";
    const data::DomainSpec* domain = nullptr;
    for (const data::DomainSpec* candidate : data::AllDomains()) {
      if (candidate->name == domain_name) domain = candidate;
    }
    if (domain == nullptr) Die("unknown --domain '" + domain_name + "'");
    data::GeneratorOptions generator;
    generator.num_sources = static_cast<size_t>(ArgInt(args, "sources", 4));
    generator.min_entities_per_source =
        static_cast<size_t>(ArgInt(args, "entities", 8));
    generator.max_entities_per_source = generator.min_entities_per_source;
    generator.seed = static_cast<uint64_t>(ArgInt(args, "seed", 7));
    auto generated = data::GenerateCatalog(*domain, generator);
    if (!generated.ok()) Die(generated.status().ToString());
    dataset = std::move(*generated);
  }
  state.dataset = &dataset;
  state.pairs = dataset.AllCrossSourcePairs();
  if (state.pairs.empty()) Die("dataset has no cross-source pairs");

  // Optional offline reference: load the same model the server serves
  // and precompute the expected score of every pair.
  std::unique_ptr<embedding::EmbeddingModel> model;
  if (args.count("model")) {
    if (args.count("embeddings")) {
      auto loaded = embedding::TextEmbeddingFile::Load(args.at("embeddings"));
      if (!loaded.ok()) Die(loaded.status().ToString());
      model = std::make_unique<embedding::TextEmbeddingFile>(
          std::move(*loaded));
    } else {
      const std::string domain_name =
          args.count("domain") ? args.at("domain") : "tvs";
      const data::DomainSpec* domain = nullptr;
      for (const data::DomainSpec* candidate : data::AllDomains()) {
        if (candidate->name == domain_name) domain = candidate;
      }
      if (domain == nullptr) Die("unknown --domain '" + domain_name + "'");
      embedding::SyntheticModelOptions options;
      options.dimension = static_cast<size_t>(ArgInt(args, "emb-dim", 64));
      options.seed = static_cast<uint64_t>(ArgInt(args, "seed", 7));
      options.oov_policy = embedding::OovPolicy::kHashedVector;
      auto built = embedding::SyntheticEmbeddingModel::Build(
          data::DomainClusters(*domain), options);
      if (!built.ok()) Die(built.status().ToString());
      model = std::make_unique<embedding::SyntheticEmbeddingModel>(
          std::move(*built));
    }
    auto matcher = core::LeapmeMatcher::LoadModel(model.get(),
                                                  args.at("model"));
    if (!matcher.ok()) Die(matcher.status().ToString());
    auto expected = matcher->ScorePairsOn(dataset, state.pairs);
    if (!expected.ok()) Die(expected.status().ToString());
    state.expected = std::move(*expected);
  }

  std::printf("serve_client: %zu clients x %zu requests x %zu pairs "
              "against %s:%d (%zu distinct pairs%s)\n",
              clients, state.requests_per_client, state.pairs_per_request,
              state.host.c_str(), state.port, state.pairs.size(),
              state.expected.empty() ? ""
                                     : ", checking against offline scores");

  const auto begin = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  std::vector<std::vector<double>> latencies(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back(
        [&state, &latencies, c] { latencies[c] = RunClient(state, c); });
  }
  for (std::thread& thread : threads) thread.join();
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();

  std::vector<double> all;
  for (const auto& slice : latencies) {
    all.insert(all.end(), slice.begin(), slice.end());
  }
  std::sort(all.begin(), all.end());

  const uint64_t ok = state.requests_ok.load();
  const uint64_t errors = state.errors.load();
  const uint64_t mismatches = state.mismatches.load();
  const double pairs_per_sec =
      elapsed_s > 0.0 ? static_cast<double>(ok * state.pairs_per_request) /
                            elapsed_s
                      : 0.0;
  std::printf("requests ok=%llu errors=%llu mismatches=%llu\n",
              static_cast<unsigned long long>(ok),
              static_cast<unsigned long long>(errors),
              static_cast<unsigned long long>(mismatches));
  std::printf("throughput %.0f pairs/s, latency p50=%.0fus p95=%.0fus "
              "p99=%.0fus\n",
              pairs_per_sec, Percentile(all, 0.50), Percentile(all, 0.95),
              Percentile(all, 0.99));

  // Ask the server how the run looked from its side.
  LineClient stats_client(state.host, state.port);
  std::string stats_line;
  if (stats_client.connected() &&
      stats_client.SendLine("{\"op\":\"stats\"}") &&
      stats_client.ReadLine(&stats_line)) {
    std::printf("server stats: %s\n", stats_line.c_str());
  }

  return (errors == 0 && mismatches == 0) ? 0 : 1;
}
