// Load generator and correctness checker for a running `leapme serve`.
//
// Opens --clients concurrent connections, each sending --requests score
// requests of --pairs property pairs drawn from a dataset (--data TSV,
// or a synthetic catalog generated from --domain/--sources/--entities).
// Every response is validated: ok:true, echoed id, one score per pair,
// all scores finite. With --model FILE the same model is additionally
// loaded in-process and every wire score must be bit-identical to the
// offline ScorePairsOn result (the embedding flags must match the
// server's: --domain/--emb-dim/--seed or --embeddings).
//
// Prints a summary with throughput and latency percentiles, then the
// server's own stats line. Exits non-zero on any protocol error or
// score mismatch.
//
// Overload-aware: a reply typed Unavailable / ResourceExhausted /
// DeadlineExceeded — or a lost connection — is retried with jittered
// exponential backoff up to --retry-budget attempts per request,
// honoring the server's retry_after_ms hint when one is present. A
// response tagged "degraded":true (scored with embedding features
// masked after an injected lookup fault) is accepted and counted but
// exempted from the bit-exact offline comparison. This makes the tool
// double as the fault-storm soak driver: under an armed LEAPME_FAULTS
// server, a run passes iff every request eventually resolves to a
// scored, degraded, or typed-error reply — never a hang or a malformed
// line.
//
// Usage:
//   serve_client --port N [--host 127.0.0.1] [--clients 8]
//                [--requests 20] [--pairs 8] [--model FILE]
//                [--data FILE | --domain tvs] [--sources 4]
//                [--entities 8] [--seed 7] [--emb-dim 64]
//                [--embeddings FILE] [--retry-budget 4]

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/domain.h"
#include "data/generator.h"
#include "data/tsv_io.h"
#include "embedding/caching_model.h"
#include "embedding/synthetic_model.h"
#include "embedding/text_embedding_file.h"
#include "core/leapme.h"
#include "serve/json.h"

namespace {

using namespace leapme;

[[noreturn]] void Die(const std::string& message) {
  std::fprintf(stderr, "serve_client: %s\n", message.c_str());
  std::exit(1);
}

/// `--key value` / `--key=value` argument list; no positional arguments.
std::map<std::string, std::string> ParseArgs(int argc, char** argv) {
  std::map<std::string, std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) Die("unexpected argument '" + token + "'");
    token.erase(0, 2);
    const size_t equals = token.find('=');
    if (equals != std::string::npos) {
      args[token.substr(0, equals)] = token.substr(equals + 1);
    } else if (i + 1 < argc) {
      args[token] = argv[++i];
    } else {
      Die("--" + token + " needs a value");
    }
  }
  return args;
}

int64_t ArgInt(const std::map<std::string, std::string>& args,
               const std::string& key, int64_t fallback) {
  auto it = args.find(key);
  if (it == args.end()) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    Die("--" + key + " must be an integer, got '" + it->second + "'");
  }
  return parsed;
}

/// Blocking line-delimited client over one TCP connection.
class LineClient {
 public:
  LineClient(const std::string& host, int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_in address = {};
    address.sin_family = AF_INET;
    address.sin_port = htons(static_cast<uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1 ||
        ::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                  sizeof(address)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return fd_ >= 0; }

  bool SendLine(const std::string& line) {
    std::string framed = line + "\n";
    size_t sent = 0;
    while (sent < framed.size()) {
      // EINTR-safe partial-send loop, mirroring the server's writer.
      const ssize_t n = ::send(fd_, framed.data() + sent,
                               framed.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  bool ReadLine(std::string* out) {
    while (true) {
      const size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        *out = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

std::string SpecJson(const data::Dataset& dataset, data::PropertyId id) {
  std::string out = "{\"name\":";
  serve::AppendJsonString(&out, dataset.property(id).name);
  out += ",\"values\":[";
  const auto& instances = dataset.instances(id);
  for (size_t i = 0; i < instances.size(); ++i) {
    if (i > 0) out += ',';
    serve::AppendJsonString(&out, instances[i].value);
  }
  out += "]}";
  return out;
}

struct SharedState {
  std::string host;
  int port = 0;
  size_t requests_per_client = 0;
  size_t pairs_per_request = 0;
  size_t retry_budget = 4;  // extra attempts per request
  const data::Dataset* dataset = nullptr;
  std::vector<data::PropertyPair> pairs;
  std::vector<double> expected;  // empty without --model
  std::atomic<uint64_t> requests_ok{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> retries{0};
  std::atomic<uint64_t> degraded{0};
};

/// Typed error codes the serve retry contract marks as transient: the
/// server refused or timed out, but the same request may succeed later.
bool RetryableCode(const std::string& code) {
  return code == "Unavailable" || code == "ResourceExhausted" ||
         code == "DeadlineExceeded";
}

/// One client connection's worth of load; returns per-request latencies
/// in microseconds (end-to-end, including any retries and backoff).
std::vector<double> RunClient(SharedState& state, size_t client_index) {
  std::vector<double> latencies;
  auto client = std::make_unique<LineClient>(state.host, state.port);

  // Deterministic per-client jitter source (xorshift64*), so runs are
  // reproducible while clients still decorrelate their retry storms.
  uint64_t rng = 0x9e3779b97f4a7c15ull ^ (client_index + 1);
  const auto jitter = [&rng]() {  // uniform in [0.5, 1.5)
    rng ^= rng >> 12;
    rng ^= rng << 25;
    rng ^= rng >> 27;
    return 0.5 + static_cast<double>((rng * 0x2545f4914f6cdd1dull) >> 11) /
                     9007199254740992.0;
  };
  // Jittered exponential backoff, floored at the server's retry_after_ms
  // hint when the reply carried one.
  const auto backoff = [&](size_t attempt, uint64_t hint_ms) {
    const double exponential =
        std::min(1000.0, 10.0 * static_cast<double>(
                             uint64_t{1} << std::min<size_t>(attempt, 10)));
    const double delay_ms =
        std::max(static_cast<double>(hint_ms), exponential * jitter());
    state.retries.fetch_add(1);
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(delay_ms));
  };

  for (size_t request = 0; request < state.requests_per_client; ++request) {
    // Each request scores a deterministic window into the pair list, so
    // the expected scores are known by offset.
    const size_t start =
        (client_index * 131 + request * state.pairs_per_request) %
        state.pairs.size();
    const int64_t id =
        static_cast<int64_t>(client_index * 100000 + request);
    std::string line =
        "{\"op\":\"score\",\"id\":" + std::to_string(id) + ",\"pairs\":[";
    for (size_t i = 0; i < state.pairs_per_request; ++i) {
      const auto& pair = state.pairs[(start + i) % state.pairs.size()];
      if (i > 0) line += ',';
      line += "{\"a\":" + SpecJson(*state.dataset, pair.a) +
              ",\"b\":" + SpecJson(*state.dataset, pair.b) + "}";
    }
    line += "]}";

    const auto begin = std::chrono::steady_clock::now();
    std::string response;
    bool answered = false;
    bool fatal = false;
    for (size_t attempt = 0; attempt <= state.retry_budget; ++attempt) {
      if (client == nullptr || !client->connected()) {
        client = std::make_unique<LineClient>(state.host, state.port);
        if (!client->connected()) {
          client.reset();
          if (attempt < state.retry_budget) backoff(attempt, 0);
          continue;
        }
      }
      if (!client->SendLine(line) || !client->ReadLine(&response)) {
        // Connection lost mid-request (server deadline close, injected
        // read fault, ...). The request may have been dropped before
        // scoring — retry it on a fresh connection.
        client.reset();
        if (attempt < state.retry_budget) backoff(attempt, 0);
        continue;
      }
      auto parsed = serve::JsonValue::Parse(response);
      const serve::JsonValue* ok =
          parsed.ok() ? parsed->Find("ok") : nullptr;
      if (ok != nullptr && ok->is_bool() && !ok->AsBool()) {
        const serve::JsonValue* error = parsed->Find("error");
        const serve::JsonValue* code =
            error != nullptr && error->is_object() ? error->Find("code")
                                                   : nullptr;
        if (code != nullptr && code->is_string() &&
            RetryableCode(code->AsString())) {
          const serve::JsonValue* hint = error->Find("retry_after_ms");
          const uint64_t hint_ms =
              hint != nullptr && hint->is_number()
                  ? static_cast<uint64_t>(hint->AsNumber())
                  : 0;
          // The server may close after a typed rejection (deadline,
          // connection cap); probe cheaply by reconnecting next attempt
          // only if the send/read above fails.
          if (attempt < state.retry_budget) backoff(attempt, hint_ms);
          continue;
        }
        fatal = true;  // typed but non-retryable (InvalidArgument, ...)
      }
      answered = !fatal;
      break;
    }
    if (!answered) {
      std::fprintf(stderr, "client %zu: request %lld %s\n", client_index,
                   static_cast<long long>(id),
                   fatal ? ("failed: " + response).c_str()
                         : "exhausted its retry budget");
      state.errors.fetch_add(1);
      continue;
    }
    const auto end = std::chrono::steady_clock::now();
    latencies.push_back(
        std::chrono::duration<double, std::micro>(end - begin).count());

    auto parsed = serve::JsonValue::Parse(response);
    const serve::JsonValue* ok =
        parsed.ok() ? parsed->Find("ok") : nullptr;
    const serve::JsonValue* scores =
        parsed.ok() ? parsed->Find("scores") : nullptr;
    const serve::JsonValue* echoed_id =
        parsed.ok() ? parsed->Find("id") : nullptr;
    if (ok == nullptr || !ok->is_bool() || !ok->AsBool() ||
        scores == nullptr || !scores->is_array() ||
        scores->AsArray().size() != state.pairs_per_request ||
        echoed_id == nullptr || !echoed_id->is_number() ||
        echoed_id->AsNumber() != static_cast<double>(id)) {
      std::fprintf(stderr, "client %zu: bad response: %s\n", client_index,
                   response.c_str());
      state.errors.fetch_add(1);
      continue;
    }
    // A degraded response was scored with embedding features masked
    // after an injected lookup failure: the scores are finite and well
    // formed but intentionally differ from the full model, so they are
    // exempt from the bit-exact offline comparison.
    const serve::JsonValue* degraded_tag = parsed->Find("degraded");
    const bool degraded = degraded_tag != nullptr &&
                          degraded_tag->is_bool() && degraded_tag->AsBool();
    if (degraded) state.degraded.fetch_add(1);
    bool all_match = true;
    for (size_t i = 0; i < state.pairs_per_request; ++i) {
      const serve::JsonValue& score = scores->AsArray()[i];
      if (!score.is_number()) {
        all_match = false;
        break;
      }
      if (degraded || state.expected.empty()) continue;
      const double expected = state.expected[(start + i) %
                                             state.pairs.size()];
      if (score.AsNumber() != expected) {
        std::fprintf(stderr,
                     "client %zu: score mismatch at pair %zu: wire %.17g "
                     "!= offline %.17g\n",
                     client_index, (start + i) % state.pairs.size(),
                     score.AsNumber(), expected);
        all_match = false;
      }
    }
    if (all_match) {
      state.requests_ok.fetch_add(1);
    } else {
      state.mismatches.fetch_add(1);
    }
  }
  return latencies;
}

double Percentile(std::vector<double>& sorted, double quantile) {
  if (sorted.empty()) return 0.0;
  const size_t rank = static_cast<size_t>(
      quantile * static_cast<double>(sorted.size()));
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = ParseArgs(argc, argv);
  if (args.count("port") == 0) {
    Die("--port is required (see the usage comment at the top of "
        "tools/serve_client.cc)");
  }

  SharedState state;
  state.host = args.count("host") ? args.at("host") : "127.0.0.1";
  state.port = static_cast<int>(ArgInt(args, "port", 0));
  const size_t clients = static_cast<size_t>(ArgInt(args, "clients", 8));
  state.requests_per_client =
      static_cast<size_t>(ArgInt(args, "requests", 20));
  state.pairs_per_request = static_cast<size_t>(ArgInt(args, "pairs", 8));
  if (state.port <= 0 || clients == 0 || state.requests_per_client == 0 ||
      state.pairs_per_request == 0) {
    Die("--port/--clients/--requests/--pairs must be positive");
  }
  const int64_t retry_budget = ArgInt(args, "retry-budget", 4);
  if (retry_budget < 0 || retry_budget > 64) {
    Die("--retry-budget must be in [0, 64]");
  }
  state.retry_budget = static_cast<size_t>(retry_budget);

  // The request corpus: a real TSV dataset or a generated catalog.
  data::Dataset dataset("");
  if (args.count("data")) {
    auto read = data::ReadDatasetTsv(args.at("data"));
    if (!read.ok()) Die(read.status().ToString());
    dataset = std::move(*read);
  } else {
    const std::string domain_name =
        args.count("domain") ? args.at("domain") : "tvs";
    const data::DomainSpec* domain = nullptr;
    for (const data::DomainSpec* candidate : data::AllDomains()) {
      if (candidate->name == domain_name) domain = candidate;
    }
    if (domain == nullptr) Die("unknown --domain '" + domain_name + "'");
    data::GeneratorOptions generator;
    generator.num_sources = static_cast<size_t>(ArgInt(args, "sources", 4));
    generator.min_entities_per_source =
        static_cast<size_t>(ArgInt(args, "entities", 8));
    generator.max_entities_per_source = generator.min_entities_per_source;
    generator.seed = static_cast<uint64_t>(ArgInt(args, "seed", 7));
    auto generated = data::GenerateCatalog(*domain, generator);
    if (!generated.ok()) Die(generated.status().ToString());
    dataset = std::move(*generated);
  }
  state.dataset = &dataset;
  state.pairs = dataset.AllCrossSourcePairs();
  if (state.pairs.empty()) Die("dataset has no cross-source pairs");

  // Optional offline reference: load the same model the server serves
  // and precompute the expected score of every pair.
  std::unique_ptr<embedding::EmbeddingModel> model;
  if (args.count("model")) {
    if (args.count("embeddings")) {
      auto loaded = embedding::TextEmbeddingFile::Load(args.at("embeddings"));
      if (!loaded.ok()) Die(loaded.status().ToString());
      model = std::make_unique<embedding::TextEmbeddingFile>(
          std::move(*loaded));
    } else {
      const std::string domain_name =
          args.count("domain") ? args.at("domain") : "tvs";
      const data::DomainSpec* domain = nullptr;
      for (const data::DomainSpec* candidate : data::AllDomains()) {
        if (candidate->name == domain_name) domain = candidate;
      }
      if (domain == nullptr) Die("unknown --domain '" + domain_name + "'");
      embedding::SyntheticModelOptions options;
      options.dimension = static_cast<size_t>(ArgInt(args, "emb-dim", 64));
      options.seed = static_cast<uint64_t>(ArgInt(args, "seed", 7));
      options.oov_policy = embedding::OovPolicy::kHashedVector;
      auto built = embedding::SyntheticEmbeddingModel::Build(
          data::DomainClusters(*domain), options);
      if (!built.ok()) Die(built.status().ToString());
      model = std::make_unique<embedding::SyntheticEmbeddingModel>(
          std::move(*built));
    }
    auto matcher = core::LeapmeMatcher::LoadModel(model.get(),
                                                  args.at("model"));
    if (!matcher.ok()) Die(matcher.status().ToString());
    auto expected = matcher->ScorePairsOn(dataset, state.pairs);
    if (!expected.ok()) Die(expected.status().ToString());
    state.expected = std::move(*expected);
  }

  std::printf("serve_client: %zu clients x %zu requests x %zu pairs "
              "against %s:%d (%zu distinct pairs%s)\n",
              clients, state.requests_per_client, state.pairs_per_request,
              state.host.c_str(), state.port, state.pairs.size(),
              state.expected.empty() ? ""
                                     : ", checking against offline scores");

  const auto begin = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  std::vector<std::vector<double>> latencies(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back(
        [&state, &latencies, c] { latencies[c] = RunClient(state, c); });
  }
  for (std::thread& thread : threads) thread.join();
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();

  std::vector<double> all;
  for (const auto& slice : latencies) {
    all.insert(all.end(), slice.begin(), slice.end());
  }
  std::sort(all.begin(), all.end());

  const uint64_t ok = state.requests_ok.load();
  const uint64_t errors = state.errors.load();
  const uint64_t mismatches = state.mismatches.load();
  const double pairs_per_sec =
      elapsed_s > 0.0 ? static_cast<double>(ok * state.pairs_per_request) /
                            elapsed_s
                      : 0.0;
  std::printf("requests ok=%llu errors=%llu mismatches=%llu retries=%llu "
              "degraded=%llu\n",
              static_cast<unsigned long long>(ok),
              static_cast<unsigned long long>(errors),
              static_cast<unsigned long long>(mismatches),
              static_cast<unsigned long long>(state.retries.load()),
              static_cast<unsigned long long>(state.degraded.load()));
  std::printf("throughput %.0f pairs/s, latency p50=%.0fus p95=%.0fus "
              "p99=%.0fus\n",
              pairs_per_sec, Percentile(all, 0.50), Percentile(all, 0.95),
              Percentile(all, 0.99));

  // Ask the server how the run looked from its side.
  LineClient stats_client(state.host, state.port);
  std::string stats_line;
  if (stats_client.connected() &&
      stats_client.SendLine("{\"op\":\"stats\"}") &&
      stats_client.ReadLine(&stats_line)) {
    std::printf("server stats: %s\n", stats_line.c_str());
  }

  return (errors == 0 && mismatches == 0) ? 0 : 1;
}
