// Load generator and correctness checker for a running `leapme serve`.
//
// Closed-loop mode (default): opens --clients concurrent connections,
// each sending --requests score requests of --pairs property pairs drawn
// from a dataset (--data TSV, or a synthetic catalog generated from
// --domain/--sources/--entities). Every response is validated: ok:true,
// echoed id, one score per pair, all scores finite. With --model FILE
// the same model is additionally loaded in-process and every wire score
// must be bit-identical to the offline ScorePairsOn result (the
// embedding flags must match the server's: --domain/--emb-dim/--seed or
// --embeddings).
//
// Open-loop mode (--open-loop-rps R [--duration S]): instead of a fixed
// request count per client, requests are fired from a precomputed
// Poisson arrival schedule at R requests/second for S seconds,
// regardless of how fast the server answers. There are no retries —
// every scheduled arrival is one attempt, classified as ok / degraded /
// shed / deadline / error — and latency is reported against both the
// send-start clock and the schedule's intended-start clock, so a server
// that stalls shows the backlog in the intended percentiles instead of
// silently pausing the generator (coordinated omission; DESIGN.md §15).
//
// Prints a summary with throughput and latency percentiles, then the
// server's own stats line. Exits non-zero on any protocol error or
// score mismatch (in open-loop mode, shed / deadline / transport-error
// outcomes are expected under overload and reported but do not fail the
// run; only malformed replies and score mismatches do).
//
// Closed-loop mode is overload-aware: a reply typed Unavailable /
// ResourceExhausted / DeadlineExceeded — or a lost connection — is
// retried with jittered exponential backoff up to --retry-budget
// attempts per request, honoring the server's retry_after_ms hint when
// one is present. A response tagged "degraded":true (scored with
// embedding features masked after an injected lookup fault) is accepted
// and counted but exempted from the bit-exact offline comparison. This
// makes the tool double as the fault-storm soak driver: under an armed
// LEAPME_FAULTS server, a run passes iff every request eventually
// resolves to a scored, degraded, or typed-error reply — never a hang
// or a malformed line.
//
// Usage:
//   serve_client --port N [--host 127.0.0.1] [--clients 8]
//                [--requests 20] [--pairs 8] [--model FILE]
//                [--data FILE | --domain tvs] [--sources 4]
//                [--entities 8] [--seed 7] [--emb-dim 64]
//                [--embeddings FILE] [--retry-budget 4]
//                [--open-loop-rps R] [--duration SECONDS]
//                [--ready-timeout-ms 10000] [--reload-interval-ms 0]
//
// Startup gates on the server's `ready` op (with backoff) instead of
// sleeping: load begins only once the server reports a serving model.
// With --reload-interval-ms N a side thread fires `reload` ops at that
// cadence while the load runs — the hot-reload chaos driver. Reload
// rejections are expected under fault storms and never fail the run.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/domain.h"
#include "data/generator.h"
#include "data/tsv_io.h"
#include "embedding/caching_model.h"
#include "embedding/synthetic_model.h"
#include "embedding/text_embedding_file.h"
#include "core/leapme.h"
#include "serve/json.h"
#include "tools/line_client.h"
#include "workload/arrival.h"
#include "workload/latency_recorder.h"
#include "workload/open_loop.h"

namespace {

using namespace leapme;
using tools::LineClient;

[[noreturn]] void Die(const std::string& message) {
  std::fprintf(stderr, "serve_client: %s\n", message.c_str());
  std::exit(1);
}

/// `--key value` / `--key=value` argument list; no positional arguments.
std::map<std::string, std::string> ParseArgs(int argc, char** argv) {
  std::map<std::string, std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) Die("unexpected argument '" + token + "'");
    token.erase(0, 2);
    const size_t equals = token.find('=');
    if (equals != std::string::npos) {
      args[token.substr(0, equals)] = token.substr(equals + 1);
    } else if (i + 1 < argc) {
      args[token] = argv[++i];
    } else {
      Die("--" + token + " needs a value");
    }
  }
  return args;
}

int64_t ArgInt(const std::map<std::string, std::string>& args,
               const std::string& key, int64_t fallback) {
  auto it = args.find(key);
  if (it == args.end()) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    Die("--" + key + " must be an integer, got '" + it->second + "'");
  }
  return parsed;
}

double ArgDouble(const std::map<std::string, std::string>& args,
                 const std::string& key, double fallback) {
  auto it = args.find(key);
  if (it == args.end()) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    Die("--" + key + " must be a number, got '" + it->second + "'");
  }
  return parsed;
}

std::string SpecJson(const data::Dataset& dataset, data::PropertyId id) {
  std::string out = "{\"name\":";
  serve::AppendJsonString(&out, dataset.property(id).name);
  out += ",\"values\":[";
  const auto& instances = dataset.instances(id);
  for (size_t i = 0; i < instances.size(); ++i) {
    if (i > 0) out += ',';
    serve::AppendJsonString(&out, instances[i].value);
  }
  out += "]}";
  return out;
}

struct SharedState {
  std::string host;
  int port = 0;
  size_t requests_per_client = 0;
  size_t pairs_per_request = 0;
  size_t retry_budget = 4;  // extra attempts per request
  const data::Dataset* dataset = nullptr;
  std::vector<data::PropertyPair> pairs;
  std::vector<double> expected;  // empty without --model
  workload::LatencyRecorder latency;
  std::atomic<uint64_t> requests_ok{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> retries{0};
  std::atomic<uint64_t> degraded{0};
};

/// Typed error codes the serve retry contract marks as transient: the
/// server refused or timed out, but the same request may succeed later.
bool RetryableCode(const std::string& code) {
  return code == "Unavailable" || code == "ResourceExhausted" ||
         code == "DeadlineExceeded";
}

/// The deterministic pair-list offset request (client, request) scores,
/// so the expected scores are known by offset in both modes.
size_t WindowStart(const SharedState& state, size_t client_index,
                   size_t request_index) {
  return (client_index * 131 + request_index * state.pairs_per_request) %
         state.pairs.size();
}

std::string RequestLine(const SharedState& state, size_t client_index,
                        size_t request_index, int64_t id) {
  const size_t start = WindowStart(state, client_index, request_index);
  std::string line =
      "{\"op\":\"score\",\"id\":" + std::to_string(id) + ",\"pairs\":[";
  for (size_t i = 0; i < state.pairs_per_request; ++i) {
    const auto& pair = state.pairs[(start + i) % state.pairs.size()];
    if (i > 0) line += ',';
    line += "{\"a\":" + SpecJson(*state.dataset, pair.a) +
            ",\"b\":" + SpecJson(*state.dataset, pair.b) + "}";
  }
  line += "]}";
  return line;
}

/// Validates a scored reply (shape, echoed id, per-pair scores, optional
/// bit-exact offline comparison), updating the shared counters. Returns
/// false when the reply is malformed or mismatched.
bool CheckScoredResponse(SharedState& state, size_t client_index,
                         size_t request_index, int64_t id,
                         const std::string& response) {
  auto parsed = serve::JsonValue::Parse(response);
  const serve::JsonValue* ok = parsed.ok() ? parsed->Find("ok") : nullptr;
  const serve::JsonValue* scores =
      parsed.ok() ? parsed->Find("scores") : nullptr;
  const serve::JsonValue* echoed_id =
      parsed.ok() ? parsed->Find("id") : nullptr;
  if (ok == nullptr || !ok->is_bool() || !ok->AsBool() ||
      scores == nullptr || !scores->is_array() ||
      scores->AsArray().size() != state.pairs_per_request ||
      echoed_id == nullptr || !echoed_id->is_number() ||
      echoed_id->AsNumber() != static_cast<double>(id)) {
    std::fprintf(stderr, "client %zu: bad response: %s\n", client_index,
                 response.c_str());
    state.errors.fetch_add(1);
    return false;
  }
  // A degraded response was scored with embedding features masked after
  // an injected lookup failure: the scores are finite and well formed
  // but intentionally differ from the full model, so they are exempt
  // from the bit-exact offline comparison.
  const serve::JsonValue* degraded_tag = parsed->Find("degraded");
  const bool degraded = degraded_tag != nullptr && degraded_tag->is_bool() &&
                        degraded_tag->AsBool();
  if (degraded) state.degraded.fetch_add(1);
  const size_t start = WindowStart(state, client_index, request_index);
  bool all_match = true;
  for (size_t i = 0; i < state.pairs_per_request; ++i) {
    const serve::JsonValue& score = scores->AsArray()[i];
    if (!score.is_number()) {
      all_match = false;
      break;
    }
    if (degraded || state.expected.empty()) continue;
    const double expected =
        state.expected[(start + i) % state.pairs.size()];
    if (score.AsNumber() != expected) {
      std::fprintf(stderr,
                   "client %zu: score mismatch at pair %zu: wire %.17g "
                   "!= offline %.17g\n",
                   client_index, (start + i) % state.pairs.size(),
                   score.AsNumber(), expected);
      all_match = false;
    }
  }
  if (all_match) {
    state.requests_ok.fetch_add(1);
  } else {
    state.mismatches.fetch_add(1);
  }
  return all_match;
}

/// One closed-loop client connection's worth of load; latencies (end to
/// end, including any retries and backoff) land in `state.latency`.
void RunClient(SharedState& state, size_t client_index) {
  auto client = std::make_unique<LineClient>(state.host, state.port);

  // Deterministic per-client jitter source (xorshift64*), so runs are
  // reproducible while clients still decorrelate their retry storms.
  uint64_t rng = 0x9e3779b97f4a7c15ull ^ (client_index + 1);
  const auto jitter = [&rng]() {  // uniform in [0.5, 1.5)
    rng ^= rng >> 12;
    rng ^= rng << 25;
    rng ^= rng >> 27;
    return 0.5 + static_cast<double>((rng * 0x2545f4914f6cdd1dull) >> 11) /
                     9007199254740992.0;
  };
  // Jittered exponential backoff, floored at the server's retry_after_ms
  // hint when the reply carried one.
  const auto backoff = [&](size_t attempt, uint64_t hint_ms) {
    const double exponential =
        std::min(1000.0, 10.0 * static_cast<double>(
                             uint64_t{1} << std::min<size_t>(attempt, 10)));
    const double delay_ms =
        std::max(static_cast<double>(hint_ms), exponential * jitter());
    state.retries.fetch_add(1);
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(delay_ms));
  };

  for (size_t request = 0; request < state.requests_per_client; ++request) {
    const int64_t id =
        static_cast<int64_t>(client_index * 100000 + request);
    const std::string line = RequestLine(state, client_index, request, id);

    const auto begin = std::chrono::steady_clock::now();
    std::string response;
    bool answered = false;
    bool fatal = false;
    for (size_t attempt = 0; attempt <= state.retry_budget; ++attempt) {
      if (client == nullptr || !client->connected()) {
        client = std::make_unique<LineClient>(state.host, state.port);
        if (!client->connected()) {
          client.reset();
          if (attempt < state.retry_budget) backoff(attempt, 0);
          continue;
        }
      }
      if (!client->SendLine(line) || !client->ReadLine(&response)) {
        // Connection lost mid-request (server deadline close, injected
        // read fault, ...). The request may have been dropped before
        // scoring — retry it on a fresh connection.
        client.reset();
        if (attempt < state.retry_budget) backoff(attempt, 0);
        continue;
      }
      auto parsed = serve::JsonValue::Parse(response);
      const serve::JsonValue* ok =
          parsed.ok() ? parsed->Find("ok") : nullptr;
      if (ok != nullptr && ok->is_bool() && !ok->AsBool()) {
        const serve::JsonValue* error = parsed->Find("error");
        const serve::JsonValue* code =
            error != nullptr && error->is_object() ? error->Find("code")
                                                   : nullptr;
        if (code != nullptr && code->is_string() &&
            RetryableCode(code->AsString())) {
          const serve::JsonValue* hint = error->Find("retry_after_ms");
          const uint64_t hint_ms =
              hint != nullptr && hint->is_number()
                  ? static_cast<uint64_t>(hint->AsNumber())
                  : 0;
          // The server may close after a typed rejection (deadline,
          // connection cap); probe cheaply by reconnecting next attempt
          // only if the send/read above fails.
          if (attempt < state.retry_budget) backoff(attempt, hint_ms);
          continue;
        }
        fatal = true;  // typed but non-retryable (InvalidArgument, ...)
      }
      answered = !fatal;
      break;
    }
    if (!answered) {
      std::fprintf(stderr, "client %zu: request %lld %s\n", client_index,
                   static_cast<long long>(id),
                   fatal ? ("failed: " + response).c_str()
                         : "exhausted its retry budget");
      state.errors.fetch_add(1);
      continue;
    }
    state.latency.RecordNanos(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - begin)
            .count()));
    CheckScoredResponse(state, client_index, request, id, response);
  }
}

void PrintSummaryLine(const char* label,
                      const workload::LatencyRecorder::Summary& summary) {
  std::printf("%s p50=%.0fus p95=%.0fus p99=%.0fus p999=%.0fus "
              "max=%.0fus\n",
              label, summary.p50_us, summary.p95_us, summary.p99_us,
              summary.p999_us, summary.max_us);
}

void PrintServerStats(const SharedState& state) {
  LineClient stats_client(state.host, state.port);
  std::string stats_line;
  if (stats_client.connected() &&
      stats_client.SendLine("{\"op\":\"stats\"}") &&
      stats_client.ReadLine(&stats_line)) {
    std::printf("server stats: %s\n", stats_line.c_str());
  }
}

/// Open-loop run: fire the arrival schedule, one attempt per event, and
/// report both latency clocks. Returns the process exit code.
int RunOpenLoopMode(SharedState& state, size_t clients, double target_rps,
                    double duration_s, uint64_t seed) {
  workload::ArrivalOptions arrival;
  arrival.target_rps = target_rps;
  arrival.duration_s = duration_s;
  arrival.seed = seed;
  auto schedule = workload::ArrivalSchedule::Build(arrival);
  if (!schedule.ok()) Die(schedule.status().ToString());

  std::printf("serve_client: open loop, %.0f rps x %.1fs (%zu arrivals) "
              "over %zu client threads against %s:%d\n",
              target_rps, duration_s, schedule->size(), clients,
              state.host.c_str(), state.port);

  workload::OpenLoopResult result;
  workload::RunOpenLoop(
      *schedule, static_cast<unsigned>(clients),
      [&](size_t event) {
        thread_local std::unique_ptr<LineClient> client;
        if (client == nullptr || !client->connected()) {
          client = std::make_unique<LineClient>(state.host, state.port);
        }
        if (!client->connected()) return workload::Outcome::kError;
        const size_t client_index = event % clients;
        const int64_t id = static_cast<int64_t>(event);
        std::string response;
        if (!client->RoundTrip(RequestLine(state, client_index, event, id),
                               &response)) {
          client.reset();
          return workload::Outcome::kError;
        }
        auto parsed = serve::JsonValue::Parse(response);
        const serve::JsonValue* ok =
            parsed.ok() ? parsed->Find("ok") : nullptr;
        if (ok != nullptr && ok->is_bool() && !ok->AsBool()) {
          const serve::JsonValue* error = parsed->Find("error");
          const serve::JsonValue* code =
              error != nullptr && error->is_object() ? error->Find("code")
                                                     : nullptr;
          const std::string name =
              code != nullptr && code->is_string() ? code->AsString() : "";
          if (name == "Unavailable" || name == "ResourceExhausted") {
            return workload::Outcome::kShed;
          }
          if (name == "DeadlineExceeded") return workload::Outcome::kDeadline;
          return workload::Outcome::kError;
        }
        const serve::JsonValue* degraded_tag =
            parsed.ok() ? parsed->Find("degraded") : nullptr;
        const bool degraded = degraded_tag != nullptr &&
                              degraded_tag->is_bool() &&
                              degraded_tag->AsBool();
        if (!CheckScoredResponse(state, client_index, event, id, response)) {
          return workload::Outcome::kError;
        }
        return degraded ? workload::Outcome::kDegraded
                        : workload::Outcome::kOk;
      },
      &result);

  const double achieved_rps =
      result.elapsed_s > 0.0
          ? static_cast<double>(result.sent) / result.elapsed_s
          : 0.0;
  std::printf("sent=%llu ok=%llu degraded=%llu shed=%llu deadline=%llu "
              "errors=%llu late_starts=%llu achieved=%.0frps\n",
              static_cast<unsigned long long>(result.sent),
              static_cast<unsigned long long>(result.ok),
              static_cast<unsigned long long>(result.degraded),
              static_cast<unsigned long long>(result.shed),
              static_cast<unsigned long long>(result.deadline),
              static_cast<unsigned long long>(result.errors),
              static_cast<unsigned long long>(result.late_starts),
              achieved_rps);
  PrintSummaryLine("latency (service)  ", result.service.Snapshot());
  PrintSummaryLine("latency (intended) ", result.intended.Snapshot());
  PrintServerStats(state);

  // Under deliberate overload shed / deadline / dropped-connection
  // outcomes are the server doing its job; only malformed replies and
  // score mismatches fail the run.
  const uint64_t malformed = state.errors.load();
  const uint64_t mismatches = state.mismatches.load();
  if (malformed > 0 || mismatches > 0) {
    std::fprintf(stderr,
                 "serve_client: %llu malformed, %llu mismatched\n",
                 static_cast<unsigned long long>(malformed),
                 static_cast<unsigned long long>(mismatches));
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = ParseArgs(argc, argv);
  if (args.count("port") == 0) {
    Die("--port is required (see the usage comment at the top of "
        "tools/serve_client.cc)");
  }

  SharedState state;
  state.host = args.count("host") ? args.at("host") : "127.0.0.1";
  state.port = static_cast<int>(ArgInt(args, "port", 0));
  const size_t clients = static_cast<size_t>(ArgInt(args, "clients", 8));
  state.requests_per_client =
      static_cast<size_t>(ArgInt(args, "requests", 20));
  state.pairs_per_request = static_cast<size_t>(ArgInt(args, "pairs", 8));
  if (state.port <= 0 || clients == 0 || state.requests_per_client == 0 ||
      state.pairs_per_request == 0) {
    Die("--port/--clients/--requests/--pairs must be positive");
  }
  const int64_t retry_budget = ArgInt(args, "retry-budget", 4);
  if (retry_budget < 0 || retry_budget > 64) {
    Die("--retry-budget must be in [0, 64]");
  }
  state.retry_budget = static_cast<size_t>(retry_budget);
  const double open_loop_rps = ArgDouble(args, "open-loop-rps", 0.0);
  const double duration_s = ArgDouble(args, "duration", 5.0);
  if (args.count("open-loop-rps") &&
      (open_loop_rps <= 0.0 || duration_s <= 0.0)) {
    Die("--open-loop-rps and --duration must be positive");
  }

  // The request corpus: a real TSV dataset or a generated catalog.
  data::Dataset dataset("");
  if (args.count("data")) {
    auto read = data::ReadDatasetTsv(args.at("data"));
    if (!read.ok()) Die(read.status().ToString());
    dataset = std::move(*read);
  } else {
    const std::string domain_name =
        args.count("domain") ? args.at("domain") : "tvs";
    const data::DomainSpec* domain = nullptr;
    for (const data::DomainSpec* candidate : data::AllDomains()) {
      if (candidate->name == domain_name) domain = candidate;
    }
    if (domain == nullptr) Die("unknown --domain '" + domain_name + "'");
    data::GeneratorOptions generator;
    generator.num_sources = static_cast<size_t>(ArgInt(args, "sources", 4));
    generator.min_entities_per_source =
        static_cast<size_t>(ArgInt(args, "entities", 8));
    generator.max_entities_per_source = generator.min_entities_per_source;
    generator.seed = static_cast<uint64_t>(ArgInt(args, "seed", 7));
    auto generated = data::GenerateCatalog(*domain, generator);
    if (!generated.ok()) Die(generated.status().ToString());
    dataset = std::move(*generated);
  }
  state.dataset = &dataset;
  state.pairs = dataset.AllCrossSourcePairs();
  if (state.pairs.empty()) Die("dataset has no cross-source pairs");

  // Optional offline reference: load the same model the server serves
  // and precompute the expected score of every pair.
  std::unique_ptr<embedding::EmbeddingModel> model;
  if (args.count("model")) {
    if (args.count("embeddings")) {
      auto loaded = embedding::TextEmbeddingFile::Load(args.at("embeddings"));
      if (!loaded.ok()) Die(loaded.status().ToString());
      model = std::make_unique<embedding::TextEmbeddingFile>(
          std::move(*loaded));
    } else {
      const std::string domain_name =
          args.count("domain") ? args.at("domain") : "tvs";
      const data::DomainSpec* domain = nullptr;
      for (const data::DomainSpec* candidate : data::AllDomains()) {
        if (candidate->name == domain_name) domain = candidate;
      }
      if (domain == nullptr) Die("unknown --domain '" + domain_name + "'");
      embedding::SyntheticModelOptions options;
      options.dimension = static_cast<size_t>(ArgInt(args, "emb-dim", 64));
      options.seed = static_cast<uint64_t>(ArgInt(args, "seed", 7));
      options.oov_policy = embedding::OovPolicy::kHashedVector;
      auto built = embedding::SyntheticEmbeddingModel::Build(
          data::DomainClusters(*domain), options);
      if (!built.ok()) Die(built.status().ToString());
      model = std::make_unique<embedding::SyntheticEmbeddingModel>(
          std::move(*built));
    }
    auto matcher = core::LeapmeMatcher::LoadModel(model.get(),
                                                  args.at("model"));
    if (!matcher.ok()) Die(matcher.status().ToString());
    auto expected = matcher->ScorePairsOn(dataset, state.pairs);
    if (!expected.ok()) Die(expected.status().ToString());
    state.expected = std::move(*expected);
  }

  // Readiness gate: poll the `ready` op with backoff rather than
  // sleeping after connect — the listener being open does not mean a
  // model is serving (startup, drain, mid-swap).
  const int ready_timeout_ms =
      static_cast<int>(ArgInt(args, "ready-timeout-ms", 10000));
  if (!tools::WaitForServerReady(state.host, state.port, ready_timeout_ms)) {
    Die("server at " + state.host + ":" + std::to_string(state.port) +
        " did not report ready within " + std::to_string(ready_timeout_ms) +
        "ms");
  }

  // Optional hot-reload chaos driver: fire `reload` ops at a fixed
  // cadence for the whole run. Every reply must be well formed, but
  // rejections (fault storms, canary refusals, concurrent reloads) are
  // the server working as designed and never fail the client.
  const int64_t reload_interval_ms = ArgInt(args, "reload-interval-ms", 0);
  std::atomic<bool> reload_stop{false};
  std::atomic<uint64_t> reloads_ok{0};
  std::atomic<uint64_t> reloads_rejected{0};
  std::thread reloader;
  if (reload_interval_ms > 0) {
    reloader = std::thread([&] {
      std::unique_ptr<LineClient> client;
      int64_t id = 9000000;
      while (!reload_stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(reload_interval_ms));
        if (reload_stop.load(std::memory_order_relaxed)) break;
        if (client == nullptr || !client->connected()) {
          client = std::make_unique<LineClient>(state.host, state.port);
          if (!client->connected()) {
            client.reset();
            continue;
          }
        }
        std::string response;
        if (!client->RoundTrip(
                "{\"op\":\"reload\",\"id\":" + std::to_string(++id) + "}",
                &response)) {
          client.reset();
          continue;
        }
        if (response.find("\"ok\":true") != std::string::npos) {
          reloads_ok.fetch_add(1);
        } else {
          reloads_rejected.fetch_add(1);
        }
      }
    });
  }
  const auto finish_reloader = [&] {
    if (!reloader.joinable()) return;
    reload_stop.store(true);
    reloader.join();
    std::printf("reloads driven: ok=%llu rejected=%llu\n",
                static_cast<unsigned long long>(reloads_ok.load()),
                static_cast<unsigned long long>(reloads_rejected.load()));
  };

  if (args.count("open-loop-rps")) {
    const int code =
        RunOpenLoopMode(state, clients, open_loop_rps, duration_s,
                        static_cast<uint64_t>(ArgInt(args, "seed", 7)));
    finish_reloader();
    return code;
  }

  std::printf("serve_client: %zu clients x %zu requests x %zu pairs "
              "against %s:%d (%zu distinct pairs%s)\n",
              clients, state.requests_per_client, state.pairs_per_request,
              state.host.c_str(), state.port, state.pairs.size(),
              state.expected.empty() ? ""
                                     : ", checking against offline scores");

  const auto begin = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&state, c] { RunClient(state, c); });
  }
  for (std::thread& thread : threads) thread.join();
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  finish_reloader();

  const uint64_t ok = state.requests_ok.load();
  const uint64_t errors = state.errors.load();
  const uint64_t mismatches = state.mismatches.load();
  const double pairs_per_sec =
      elapsed_s > 0.0 ? static_cast<double>(ok * state.pairs_per_request) /
                            elapsed_s
                      : 0.0;
  std::printf("requests ok=%llu errors=%llu mismatches=%llu retries=%llu "
              "degraded=%llu\n",
              static_cast<unsigned long long>(ok),
              static_cast<unsigned long long>(errors),
              static_cast<unsigned long long>(mismatches),
              static_cast<unsigned long long>(state.retries.load()),
              static_cast<unsigned long long>(state.degraded.load()));
  const workload::LatencyRecorder::Summary summary =
      state.latency.Snapshot();
  std::printf("throughput %.0f pairs/s, latency p50=%.0fus p95=%.0fus "
              "p99=%.0fus p999=%.0fus\n",
              pairs_per_sec, summary.p50_us, summary.p95_us, summary.p99_us,
              summary.p999_us);

  // Ask the server how the run looked from its side.
  PrintServerStats(state);

  return (errors == 0 && mismatches == 0) ? 0 : 1;
}
