#ifndef LEAPME_TOOLS_LINE_CLIENT_H_
#define LEAPME_TOOLS_LINE_CLIENT_H_

#include <arpa/inet.h>
#include <cerrno>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

namespace leapme::tools {

/// Blocking line-delimited client over one TCP connection, shared by the
/// load-generation tools and benches (serve_client, serve_bench,
/// soak_bench). Send and receive are EINTR-safe and handle partial I/O,
/// mirroring the server's reader/writer loops.
class LineClient {
 public:
  LineClient(const std::string& host, int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_in address = {};
    address.sin_family = AF_INET;
    address.sin_port = htons(static_cast<uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1 ||
        ::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                  sizeof(address)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  /// Non-blocking connect bounded by `timeout_ms`: initiates the TCP
  /// handshake without blocking, waits for writability with poll, and
  /// checks SO_ERROR before restoring blocking mode. A fleet opener can
  /// overlap many handshakes this way instead of paying one serial RTT
  /// per connection. Failure (refused, timeout) leaves connected() false.
  LineClient(const std::string& host, int port, int timeout_ms) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (fd_ < 0) return;
    sockaddr_in address = {};
    address.sin_family = AF_INET;
    address.sin_port = htons(static_cast<uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
      Fail();
      return;
    }
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                  sizeof(address)) != 0) {
      if (errno != EINPROGRESS) {
        Fail();
        return;
      }
      if (!FinishConnect(timeout_ms)) {
        Fail();
        return;
      }
    }
    // Back to blocking: SendLine/ReadLine expect blocking semantics.
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd_, F_SETFL, flags & ~O_NONBLOCK) != 0) {
      Fail();
    }
  }

  /// Adopts a socket whose handshake already completed (see
  /// StartConnect), restoring blocking mode for SendLine/ReadLine.
  explicit LineClient(int connected_fd) : fd_(connected_fd) {
    if (fd_ < 0) return;
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd_, F_SETFL, flags & ~O_NONBLOCK) != 0) {
      Fail();
    }
  }

  /// Initiates a non-blocking TCP handshake and returns the fd without
  /// waiting for completion (-1 when the socket/address setup fails).
  /// Fleet openers start a whole wave of these, then harvest each with
  /// poll(POLLOUT) + SO_ERROR — the kernel completes the handshakes
  /// concurrently while the wave is still being opened.
  static int StartConnect(const std::string& host, int port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (fd < 0) return -1;
    sockaddr_in address = {};
    address.sin_family = AF_INET;
    address.sin_port = htons(static_cast<uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
      ::close(fd);
      return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&address),
                  sizeof(address)) != 0 &&
        errno != EINPROGRESS) {
      ::close(fd);
      return -1;
    }
    return fd;
  }

  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  bool connected() const { return fd_ >= 0; }

  bool SendLine(const std::string& line) {
    std::string framed = line + "\n";
    size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t n = ::send(fd_, framed.data() + sent,
                               framed.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  bool ReadLine(std::string* out) {
    while (true) {
      const size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        *out = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  bool RoundTrip(const std::string& line, std::string* response) {
    return SendLine(line) && ReadLine(response);
  }

 private:
  bool FinishConnect(int timeout_ms) {
    pollfd pfd = {fd_, POLLOUT, 0};
    while (true) {
      const int ready = ::poll(&pfd, 1, timeout_ms);
      if (ready < 0 && errno == EINTR) continue;
      if (ready <= 0) return false;  // timeout or poll failure
      break;
    }
    int error = 0;
    socklen_t len = sizeof(error);
    return ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &error, &len) == 0 &&
           error == 0;
  }

  void Fail() {
    ::close(fd_);
    fd_ = -1;
  }

  int fd_ = -1;
  std::string buffer_;
};

/// Polls the server's `ready` op until it answers `"ready":true` or
/// `timeout_ms` elapses. Replaces blind connect-retry sleeps in the
/// warmup path of every load tool: readiness (not mere accept-ability)
/// is what matters, since a server drains or swaps models while the
/// listener stays open. Backoff doubles from 10ms to a 200ms cap.
inline bool WaitForServerReady(const std::string& host, int port,
                               int timeout_ms = 10000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  int backoff_ms = 10;
  uint64_t id = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    LineClient probe(host, port);
    if (probe.connected()) {
      std::string response;
      if (probe.RoundTrip("{\"op\":\"ready\",\"id\":" + std::to_string(++id) +
                              "}",
                          &response) &&
          response.find("\"ready\":true") != std::string::npos) {
        return true;
      }
    }
    struct timespec pause = {0, backoff_ms * 1000000L};
    ::nanosleep(&pause, nullptr);
    backoff_ms = std::min(backoff_ms * 2, 200);
  }
  return false;
}

/// Raises RLIMIT_NOFILE toward `needed` fds (hard limit too, when the
/// process may — root can push past it up to the kernel's fs.nr_open).
/// Returns the soft limit in effect afterwards; callers compare it
/// against their need and skip/shrink the fleet when it falls short.
inline size_t RaiseFdLimit(size_t needed) {
  rlimit limit = {};
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0) return 0;
  if (limit.rlim_cur >= needed) return static_cast<size_t>(limit.rlim_cur);
  rlimit raised = limit;
  raised.rlim_cur = needed;
  if (raised.rlim_max < needed) {
    raised.rlim_max = needed;  // only takes effect with CAP_SYS_RESOURCE
  }
  if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) {
    return needed;
  }
  // Could not raise the hard limit: settle for the full soft range.
  raised.rlim_max = limit.rlim_max;
  raised.rlim_cur = limit.rlim_max;
  if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) {
    return static_cast<size_t>(raised.rlim_cur);
  }
  return static_cast<size_t>(limit.rlim_cur);
}

/// Opens `count` keep-alive connections with overlapped non-blocking
/// handshakes, `batch` at a time so the server's listen backlog is never
/// overrun within one wave. Entries that fail to connect within
/// `timeout_ms` (per wave) are dropped, so the result can be shorter
/// than `count` (callers decide whether a partial fleet is acceptable).
inline std::vector<std::unique_ptr<LineClient>> ConnectFleet(
    const std::string& host, int port, size_t count, int timeout_ms,
    size_t batch = 256) {
  std::vector<std::unique_ptr<LineClient>> fleet;
  fleet.reserve(count);
  if (batch == 0) batch = 1;
  for (size_t opened = 0; opened < count; opened += batch) {
    const size_t n = std::min(batch, count - opened);
    // Initiate the whole wave before harvesting any of it: the kernel
    // completes the n handshakes concurrently.
    std::vector<int> fds;
    fds.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      fds.push_back(LineClient::StartConnect(host, port));
    }
    const auto wave_deadline = std::chrono::steady_clock::now() +
                               std::chrono::milliseconds(timeout_ms);
    for (int& fd : fds) {
      if (fd < 0) continue;
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          wave_deadline - std::chrono::steady_clock::now());
      pollfd pfd = {fd, POLLOUT, 0};
      const int ready =
          ::poll(&pfd, 1, static_cast<int>(std::max<int64_t>(left.count(), 0)));
      int error = 0;
      socklen_t len = sizeof(error);
      if (ready <= 0 ||
          ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &error, &len) != 0 ||
          error != 0) {
        ::close(fd);
        fd = -1;
        continue;
      }
      auto client = std::make_unique<LineClient>(fd);
      fd = -1;  // owned by the client now
      if (client->connected()) {
        fleet.push_back(std::move(client));
      }
    }
  }
  return fleet;
}

/// Holds `count` idle keep-alive connections open from a forked child
/// process, so the client half of a large fleet does not share the
/// parent's RLIMIT_NOFILE budget with the server half. With a 20000-fd
/// cap (and no CAP_SYS_RESOURCE to raise it), a 10k in-process loopback
/// fleet needs >20k fds in one process — split across two, each side
/// stays comfortably under its own limit.
///
/// The child connects via ConnectFleet, reports how many connections it
/// established through a pipe, then parks until the destructor signals
/// it (or the parent dies — the pipe EOF doubles as a dead-parent
/// switch, so no orphan holds sockets).
class ForkedIdleFleet {
 public:
  ForkedIdleFleet(const std::string& host, int port, size_t count,
                  int timeout_ms) {
    int to_parent[2] = {-1, -1};
    int to_child[2] = {-1, -1};
    if (::pipe(to_parent) != 0) return;
    if (::pipe(to_child) != 0) {
      ::close(to_parent[0]);
      ::close(to_parent[1]);
      return;
    }
    pid_ = ::fork();
    if (pid_ < 0) {
      for (const int fd : {to_parent[0], to_parent[1], to_child[0],
                           to_child[1]}) {
        ::close(fd);
      }
      return;
    }
    if (pid_ == 0) {
      ::close(to_parent[0]);
      ::close(to_child[1]);
      RaiseFdLimit(count + 64);
      auto fleet = ConnectFleet(host, port, count, timeout_ms);
      const uint64_t connected = fleet.size();
      size_t sent = 0;
      while (sent < sizeof(connected)) {
        const ssize_t n =
            ::write(to_parent[1],
                    reinterpret_cast<const char*>(&connected) + sent,
                    sizeof(connected) - sent);
        if (n <= 0) {
          if (n < 0 && errno == EINTR) continue;
          break;
        }
        sent += static_cast<size_t>(n);
      }
      char byte;
      while (::read(to_child[0], &byte, 1) < 0 && errno == EINTR) {
      }
      ::_exit(0);  // closes the whole fleet at once
    }
    ::close(to_parent[1]);
    ::close(to_child[0]);
    report_fd_ = to_parent[0];
    signal_fd_ = to_child[1];
    uint64_t reported = 0;
    size_t got = 0;
    while (got < sizeof(reported)) {
      const ssize_t n = ::read(report_fd_,
                               reinterpret_cast<char*>(&reported) + got,
                               sizeof(reported) - got);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return;  // child died before reporting; connected() stays 0
      }
      got += static_cast<size_t>(n);
    }
    connected_ = static_cast<size_t>(reported);
  }

  ~ForkedIdleFleet() {
    if (signal_fd_ >= 0) ::close(signal_fd_);  // EOF tells the child to exit
    if (report_fd_ >= 0) ::close(report_fd_);
    if (pid_ > 0) {
      int status = 0;
      while (::waitpid(pid_, &status, 0) < 0 && errno == EINTR) {
      }
    }
  }

  ForkedIdleFleet(const ForkedIdleFleet&) = delete;
  ForkedIdleFleet& operator=(const ForkedIdleFleet&) = delete;

  /// Connections the child actually established (0 when the fork or the
  /// whole fleet failed).
  size_t connected() const { return connected_; }

 private:
  pid_t pid_ = -1;
  int report_fd_ = -1;
  int signal_fd_ = -1;
  size_t connected_ = 0;
};

}  // namespace leapme::tools

#endif  // LEAPME_TOOLS_LINE_CLIENT_H_
