#ifndef LEAPME_TOOLS_LINE_CLIENT_H_
#define LEAPME_TOOLS_LINE_CLIENT_H_

#include <arpa/inet.h>
#include <cerrno>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>

namespace leapme::tools {

/// Blocking line-delimited client over one TCP connection, shared by the
/// load-generation tools and benches (serve_client, serve_bench,
/// soak_bench). Send and receive are EINTR-safe and handle partial I/O,
/// mirroring the server's reader/writer loops.
class LineClient {
 public:
  LineClient(const std::string& host, int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_in address = {};
    address.sin_family = AF_INET;
    address.sin_port = htons(static_cast<uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1 ||
        ::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                  sizeof(address)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  bool connected() const { return fd_ >= 0; }

  bool SendLine(const std::string& line) {
    std::string framed = line + "\n";
    size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t n = ::send(fd_, framed.data() + sent,
                               framed.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  bool ReadLine(std::string* out) {
    while (true) {
      const size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        *out = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  bool RoundTrip(const std::string& line, std::string* response) {
    return SendLine(line) && ReadLine(response);
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace leapme::tools

#endif  // LEAPME_TOOLS_LINE_CLIENT_H_
