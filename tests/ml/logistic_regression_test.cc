#include "ml/logistic_regression.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/metrics.h"

namespace leapme::ml {
namespace {

void MakeSeparable(size_t n, nn::Matrix* inputs, std::vector<int32_t>* labels,
                   uint64_t seed) {
  Rng rng(seed);
  inputs->Resize(n, 2);
  labels->resize(n);
  for (size_t i = 0; i < n; ++i) {
    double x0 = rng.NextDouble(-1, 1);
    double x1 = rng.NextDouble(-1, 1);
    (*inputs)(i, 0) = static_cast<float>(x0);
    (*inputs)(i, 1) = static_cast<float>(x1);
    (*labels)[i] = (2 * x0 - x1) > 0 ? 1 : 0;
  }
}

TEST(LogisticRegressionTest, LearnsLinearBoundary) {
  nn::Matrix inputs;
  std::vector<int32_t> labels;
  MakeSeparable(200, &inputs, &labels, 21);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(inputs, labels).ok());
  std::vector<int32_t> predictions = model.Predict(inputs);
  EXPECT_GT(Accuracy(predictions, labels), 0.95);
}

TEST(LogisticRegressionTest, ProbabilitiesInUnitInterval) {
  nn::Matrix inputs;
  std::vector<int32_t> labels;
  MakeSeparable(50, &inputs, &labels, 22);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(inputs, labels).ok());
  for (double p : model.PredictProbability(inputs)) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(LogisticRegressionTest, RejectsEmptyAndMismatched) {
  LogisticRegression model;
  nn::Matrix empty;
  EXPECT_FALSE(model.Fit(empty, {}).ok());
  nn::Matrix inputs(2, 1);
  EXPECT_FALSE(model.Fit(inputs, {1}).ok());
}

TEST(LogisticRegressionTest, AllPositiveLabelsPredictPositive) {
  nn::Matrix inputs(4, 1, {1, 2, 3, 4});
  std::vector<int32_t> labels{1, 1, 1, 1};
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(inputs, labels).ok());
  for (double p : model.PredictProbability(inputs)) {
    EXPECT_GT(p, 0.5);
  }
}

TEST(LogisticRegressionTest, ThresholdControlsDecisions) {
  nn::Matrix inputs;
  std::vector<int32_t> labels;
  MakeSeparable(100, &inputs, &labels, 23);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(inputs, labels).ok());
  std::vector<int32_t> strict = model.Predict(inputs, 0.99);
  std::vector<int32_t> lax = model.Predict(inputs, 0.01);
  size_t strict_positives = 0;
  size_t lax_positives = 0;
  for (size_t i = 0; i < strict.size(); ++i) {
    strict_positives += strict[i];
    lax_positives += lax[i];
  }
  EXPECT_LE(strict_positives, lax_positives);
}

TEST(LogisticRegressionTest, L2ShrinksWeights) {
  nn::Matrix inputs;
  std::vector<int32_t> labels;
  MakeSeparable(100, &inputs, &labels, 24);
  LogisticRegressionOptions strong;
  strong.l2 = 1.0;
  LogisticRegressionOptions weak;
  weak.l2 = 0.0;
  LogisticRegression strong_model(strong);
  LogisticRegression weak_model(weak);
  ASSERT_TRUE(strong_model.Fit(inputs, labels).ok());
  ASSERT_TRUE(weak_model.Fit(inputs, labels).ok());
  double strong_norm = 0.0;
  double weak_norm = 0.0;
  for (size_t i = 0; i < 2; ++i) {
    strong_norm += strong_model.weights()[i] * strong_model.weights()[i];
    weak_norm += weak_model.weights()[i] * weak_model.weights()[i];
  }
  EXPECT_LT(strong_norm, weak_norm);
}

}  // namespace
}  // namespace leapme::ml
