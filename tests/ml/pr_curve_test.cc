#include <gtest/gtest.h>

#include "ml/metrics.h"

namespace leapme::ml {
namespace {

TEST(PrCurveTest, PerfectRankingReachesPrecisionOne) {
  std::vector<double> scores{0.9, 0.8, 0.2, 0.1};
  std::vector<int32_t> labels{1, 1, 0, 0};
  auto curve = PrecisionRecallCurve(scores, labels);
  ASSERT_EQ(curve.size(), 4u);
  EXPECT_DOUBLE_EQ(curve[0].precision, 1.0);
  EXPECT_DOUBLE_EQ(curve[0].recall, 0.5);
  EXPECT_DOUBLE_EQ(curve[1].precision, 1.0);
  EXPECT_DOUBLE_EQ(curve[1].recall, 1.0);
  EXPECT_DOUBLE_EQ(curve[3].precision, 0.5);
  EXPECT_DOUBLE_EQ(curve[3].recall, 1.0);
}

TEST(PrCurveTest, ThresholdsDescendRecallNonDecreasing) {
  std::vector<double> scores{0.3, 0.9, 0.5, 0.7, 0.1, 0.6};
  std::vector<int32_t> labels{0, 1, 1, 0, 1, 0};
  auto curve = PrecisionRecallCurve(scores, labels);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LT(curve[i].threshold, curve[i - 1].threshold);
    EXPECT_GE(curve[i].recall, curve[i - 1].recall);
  }
}

TEST(PrCurveTest, TiedScoresCollapseToOnePoint) {
  std::vector<double> scores{0.5, 0.5, 0.5};
  std::vector<int32_t> labels{1, 0, 1};
  auto curve = PrecisionRecallCurve(scores, labels);
  ASSERT_EQ(curve.size(), 1u);
  EXPECT_NEAR(curve[0].precision, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(curve[0].recall, 1.0);
}

TEST(PrCurveTest, NoPositivesGivesZeroRecall) {
  std::vector<double> scores{0.9, 0.1};
  std::vector<int32_t> labels{0, 0};
  auto curve = PrecisionRecallCurve(scores, labels);
  for (const PrPoint& point : curve) {
    EXPECT_DOUBLE_EQ(point.recall, 0.0);
    EXPECT_DOUBLE_EQ(point.f1, 0.0);
  }
}

TEST(PrCurveTest, EmptyInputEmptyCurve) {
  EXPECT_TRUE(PrecisionRecallCurve({}, {}).empty());
}

TEST(AveragePrecisionTest, PerfectRankingIsOne) {
  EXPECT_DOUBLE_EQ(AveragePrecision({0.9, 0.8, 0.2}, {1, 1, 0}), 1.0);
}

TEST(AveragePrecisionTest, WorstRankingIsLow) {
  double ap = AveragePrecision({0.9, 0.8, 0.2}, {0, 0, 1});
  EXPECT_NEAR(ap, 1.0 / 3.0, 1e-12);
}

TEST(AveragePrecisionTest, NoPositivesIsZero) {
  EXPECT_DOUBLE_EQ(AveragePrecision({0.5, 0.6}, {0, 0}), 0.0);
}

TEST(AveragePrecisionTest, BetweenZeroAndOne) {
  std::vector<double> scores{0.9, 0.1, 0.8, 0.4, 0.6};
  std::vector<int32_t> labels{1, 1, 0, 1, 0};
  double ap = AveragePrecision(scores, labels);
  EXPECT_GT(ap, 0.0);
  EXPECT_LE(ap, 1.0);
}

TEST(BestF1PointTest, FindsOptimalThreshold) {
  // Scores: one high-scoring positive, one low-scoring positive and a
  // mid-scoring negative. Including both positives costs precision but
  // maximizes F1.
  std::vector<double> scores{0.9, 0.5, 0.3};
  std::vector<int32_t> labels{1, 0, 1};
  PrPoint best = BestF1Point(scores, labels);
  EXPECT_DOUBLE_EQ(best.recall, 1.0);
  EXPECT_NEAR(best.precision, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(best.threshold, 0.3);
}

TEST(BestF1PointTest, EmptyInputGivesZeroPoint) {
  PrPoint best = BestF1Point({}, {});
  EXPECT_DOUBLE_EQ(best.f1, 0.0);
}

}  // namespace
}  // namespace leapme::ml
