#include "ml/adaboost.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/metrics.h"

namespace leapme::ml {
namespace {

TEST(AdaBoostTest, LearnsSimpleThreshold) {
  nn::Matrix inputs(6, 1, {1, 2, 3, 10, 11, 12});
  std::vector<int32_t> labels{0, 0, 0, 1, 1, 1};
  AdaBoost model;
  ASSERT_TRUE(model.Fit(inputs, labels).ok());
  EXPECT_EQ(model.Predict(inputs), labels);
  EXPECT_GE(model.learner_count(), 1u);
}

TEST(AdaBoostTest, StumpsCombineBeyondSingleSplit) {
  // Interval concept: positive iff 3 < x < 7 — impossible for one stump,
  // learnable by boosting several.
  nn::Matrix inputs(10, 1, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  std::vector<int32_t> labels{0, 0, 0, 1, 1, 1, 0, 0, 0, 0};
  AdaBoost model;
  ASSERT_TRUE(model.Fit(inputs, labels).ok());
  EXPECT_GT(Accuracy(model.Predict(inputs), labels), 0.9);
  EXPECT_GT(model.learner_count(), 1u);
}

TEST(AdaBoostTest, PerfectStumpStopsEarly) {
  nn::Matrix inputs(4, 1, {0, 1, 10, 11});
  std::vector<int32_t> labels{0, 0, 1, 1};
  AdaBoostOptions options;
  options.rounds = 50;
  AdaBoost model(options);
  ASSERT_TRUE(model.Fit(inputs, labels).ok());
  EXPECT_EQ(model.learner_count(), 1u);
}

TEST(AdaBoostTest, ProbabilitiesAreOrdered) {
  nn::Matrix inputs(6, 1, {1, 2, 3, 10, 11, 12});
  std::vector<int32_t> labels{0, 0, 0, 1, 1, 1};
  AdaBoost model;
  ASSERT_TRUE(model.Fit(inputs, labels).ok());
  std::vector<double> probabilities = model.PredictProbability(inputs);
  EXPECT_LT(probabilities[0], 0.5);
  EXPECT_GT(probabilities[5], 0.5);
  for (double p : probabilities) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(AdaBoostTest, RejectsEmptyAndMismatched) {
  AdaBoost model;
  nn::Matrix empty;
  EXPECT_FALSE(model.Fit(empty, {}).ok());
  nn::Matrix inputs(2, 1);
  EXPECT_FALSE(model.Fit(inputs, {1}).ok());
}

TEST(AdaBoostTest, NoisyBlobsGeneralize) {
  Rng rng(41);
  const size_t n = 200;
  nn::Matrix inputs(n, 3);
  std::vector<int32_t> labels(n);
  for (size_t i = 0; i < n; ++i) {
    bool positive = rng.NextBool();
    inputs(i, 0) =
        static_cast<float>((positive ? 1.5 : -1.5) + rng.NextGaussian());
    inputs(i, 1) = static_cast<float>(rng.NextGaussian());  // noise feature
    inputs(i, 2) = static_cast<float>(rng.NextGaussian());  // noise feature
    labels[i] = positive ? 1 : 0;
  }
  AdaBoost model;
  ASSERT_TRUE(model.Fit(inputs, labels).ok());
  EXPECT_GT(Accuracy(model.Predict(inputs), labels), 0.85);
}

TEST(AdaBoostTest, NameIsAdaboost) {
  AdaBoost model;
  EXPECT_EQ(model.Name(), "adaboost");
}

}  // namespace
}  // namespace leapme::ml
