#include "ml/scaler.h"

#include <cmath>

#include <gtest/gtest.h>

namespace leapme::ml {
namespace {

TEST(ScalerTest, FitComputesMeanAndStddev) {
  nn::Matrix m(4, 2, {1, 10, 2, 20, 3, 30, 4, 40});
  StandardScaler scaler;
  ASSERT_TRUE(scaler.Fit(m).ok());
  EXPECT_FLOAT_EQ(scaler.mean()[0], 2.5f);
  EXPECT_FLOAT_EQ(scaler.mean()[1], 25.0f);
  EXPECT_NEAR(scaler.stddev()[0], std::sqrt(1.25), 1e-5);
}

TEST(ScalerTest, TransformStandardizesColumns) {
  nn::Matrix m(4, 1, {1, 2, 3, 4});
  StandardScaler scaler;
  ASSERT_TRUE(scaler.FitTransform(&m).ok());
  float sum = 0.0f;
  float sum_sq = 0.0f;
  for (size_t r = 0; r < 4; ++r) {
    sum += m(r, 0);
    sum_sq += m(r, 0) * m(r, 0);
  }
  EXPECT_NEAR(sum, 0.0f, 1e-5);
  EXPECT_NEAR(sum_sq / 4.0f, 1.0f, 1e-5);
}

TEST(ScalerTest, ConstantColumnDoesNotDivideByZero) {
  nn::Matrix m(3, 1, {5, 5, 5});
  StandardScaler scaler;
  ASSERT_TRUE(scaler.FitTransform(&m).ok());
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_FALSE(std::isnan(m(r, 0)));
    EXPECT_FLOAT_EQ(m(r, 0), 0.0f);
  }
}

TEST(ScalerTest, TransformUsesTrainingStatistics) {
  nn::Matrix train(2, 1, {0, 2});  // mean 1, std 1
  nn::Matrix test(1, 1, {3});
  StandardScaler scaler;
  ASSERT_TRUE(scaler.Fit(train).ok());
  ASSERT_TRUE(scaler.Transform(&test).ok());
  EXPECT_FLOAT_EQ(test(0, 0), 2.0f);  // (3 - 1) / 1
}

TEST(ScalerTest, TransformBeforeFitFails) {
  StandardScaler scaler;
  nn::Matrix m(1, 1, {1});
  EXPECT_TRUE(scaler.Transform(&m).IsFailedPrecondition());
}

TEST(ScalerTest, ColumnCountMismatchFails) {
  StandardScaler scaler;
  nn::Matrix train(2, 2);
  ASSERT_TRUE(scaler.Fit(train).ok());
  nn::Matrix wrong(2, 3);
  EXPECT_FALSE(scaler.Transform(&wrong).ok());
}

TEST(ScalerTest, EmptyMatrixFails) {
  StandardScaler scaler;
  nn::Matrix empty;
  EXPECT_FALSE(scaler.Fit(empty).ok());
}

}  // namespace
}  // namespace leapme::ml
