#include "ml/metrics.h"

#include <gtest/gtest.h>

namespace leapme::ml {
namespace {

TEST(ConfusionCountsTest, AddRoutesToQuadrants) {
  ConfusionCounts counts;
  counts.Add(true, true);
  counts.Add(true, false);
  counts.Add(false, true);
  counts.Add(false, false);
  EXPECT_EQ(counts.true_positives, 1u);
  EXPECT_EQ(counts.false_positives, 1u);
  EXPECT_EQ(counts.false_negatives, 1u);
  EXPECT_EQ(counts.true_negatives, 1u);
}

TEST(ComputeQualityTest, PerfectPrediction) {
  MatchQuality q = ComputeQuality({1, 0, 1, 0}, {1, 0, 1, 0});
  EXPECT_DOUBLE_EQ(q.precision, 1.0);
  EXPECT_DOUBLE_EQ(q.recall, 1.0);
  EXPECT_DOUBLE_EQ(q.f1, 1.0);
}

TEST(ComputeQualityTest, KnownMixedCase) {
  // predictions: TP, FP, FN, TN.
  MatchQuality q = ComputeQuality({1, 1, 0, 0}, {1, 0, 1, 0});
  EXPECT_DOUBLE_EQ(q.precision, 0.5);
  EXPECT_DOUBLE_EQ(q.recall, 0.5);
  EXPECT_DOUBLE_EQ(q.f1, 0.5);
}

TEST(ComputeQualityTest, NoPredictedPositives) {
  MatchQuality q = ComputeQuality({0, 0}, {1, 0});
  EXPECT_DOUBLE_EQ(q.precision, 0.0);
  EXPECT_DOUBLE_EQ(q.recall, 0.0);
  EXPECT_DOUBLE_EQ(q.f1, 0.0);
}

TEST(ComputeQualityTest, NoActualPositives) {
  MatchQuality q = ComputeQuality({1, 0}, {0, 0});
  EXPECT_DOUBLE_EQ(q.precision, 0.0);
  EXPECT_DOUBLE_EQ(q.recall, 0.0);
  EXPECT_DOUBLE_EQ(q.f1, 0.0);
}

TEST(ComputeQualityTest, F1IsHarmonicMean) {
  // P = 1.0, R = 0.5 -> F1 = 2*1*0.5/1.5 = 2/3.
  MatchQuality q = ComputeQuality({1, 0, 0}, {1, 1, 0});
  EXPECT_DOUBLE_EQ(q.precision, 1.0);
  EXPECT_DOUBLE_EQ(q.recall, 0.5);
  EXPECT_NEAR(q.f1, 2.0 / 3.0, 1e-12);
}

TEST(ComputeQualityTest, NonBinaryLabelsTreatedAsPositive) {
  MatchQuality q = ComputeQuality({2, 0}, {7, 0});
  EXPECT_DOUBLE_EQ(q.precision, 1.0);
  EXPECT_DOUBLE_EQ(q.recall, 1.0);
}

TEST(MeanQualityTest, AveragesComponentwise) {
  MatchQuality a{1.0, 0.5, 0.6, };
  MatchQuality b{0.0, 0.5, 0.2};
  MatchQuality mean = MeanQuality({a, b});
  EXPECT_DOUBLE_EQ(mean.precision, 0.5);
  EXPECT_DOUBLE_EQ(mean.recall, 0.5);
  EXPECT_DOUBLE_EQ(mean.f1, 0.4);
}

TEST(MeanQualityTest, EmptyIsZero) {
  MatchQuality mean = MeanQuality({});
  EXPECT_DOUBLE_EQ(mean.precision, 0.0);
  EXPECT_DOUBLE_EQ(mean.f1, 0.0);
}

TEST(AccuracyTest, Basics) {
  EXPECT_DOUBLE_EQ(Accuracy({1, 0, 1, 1}, {1, 0, 0, 1}), 0.75);
  EXPECT_DOUBLE_EQ(Accuracy({}, {}), 0.0);
}

TEST(MatchQualityTest, ToStringFormat) {
  MatchQuality q{0.5, 0.25, 0.333};
  EXPECT_EQ(q.ToString(), "P=0.50 R=0.25 F1=0.33");
}

}  // namespace
}  // namespace leapme::ml
