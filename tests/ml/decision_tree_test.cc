#include "ml/decision_tree.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/metrics.h"

namespace leapme::ml {
namespace {

TEST(DecisionTreeTest, LearnsAxisAlignedSplit) {
  nn::Matrix inputs(6, 1, {1, 2, 3, 10, 11, 12});
  std::vector<int32_t> labels{0, 0, 0, 1, 1, 1};
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(inputs, labels).ok());
  std::vector<int32_t> predictions = tree.Predict(inputs);
  EXPECT_EQ(predictions, labels);
}

TEST(DecisionTreeTest, LearnsXor) {
  // XOR needs depth >= 2; a working recursive splitter handles it.
  nn::Matrix inputs(4, 2, {0, 0, 0, 1, 1, 0, 1, 1});
  std::vector<int32_t> labels{0, 1, 1, 0};
  DecisionTreeOptions options;
  options.min_samples_split = 2;
  options.min_samples_leaf = 1;
  DecisionTree tree(options);
  ASSERT_TRUE(tree.Fit(inputs, labels).ok());
  EXPECT_EQ(tree.Predict(inputs), labels);
}

TEST(DecisionTreeTest, PureDataGivesSingleLeaf) {
  nn::Matrix inputs(3, 1, {1, 2, 3});
  std::vector<int32_t> labels{1, 1, 1};
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(inputs, labels).ok());
  EXPECT_EQ(tree.node_count(), 1u);
  for (double p : tree.PredictProbability(inputs)) {
    EXPECT_DOUBLE_EQ(p, 1.0);
  }
}

TEST(DecisionTreeTest, MaxDepthZeroIsMajorityVote) {
  nn::Matrix inputs(4, 1, {1, 2, 3, 4});
  std::vector<int32_t> labels{1, 1, 1, 0};
  DecisionTreeOptions options;
  options.max_depth = 0;
  DecisionTree tree(options);
  ASSERT_TRUE(tree.Fit(inputs, labels).ok());
  for (double p : tree.PredictProbability(inputs)) {
    EXPECT_DOUBLE_EQ(p, 0.75);
  }
}

TEST(DecisionTreeTest, WeightedFitRespectsWeights) {
  // One mislabeled point with huge weight flips the leaf probability.
  nn::Matrix inputs(3, 1, {1, 1, 1});
  std::vector<int32_t> labels{0, 0, 1};
  std::vector<double> weights{0.05, 0.05, 0.9};
  DecisionTree tree;
  ASSERT_TRUE(tree.FitWeighted(inputs, labels, weights).ok());
  EXPECT_GT(tree.PredictProbability(inputs)[0], 0.5);
}

TEST(DecisionTreeTest, RejectsBadWeights) {
  nn::Matrix inputs(2, 1, {1, 2});
  std::vector<int32_t> labels{0, 1};
  DecisionTree tree;
  EXPECT_FALSE(tree.FitWeighted(inputs, labels, {0.5, -0.5}).ok());
  EXPECT_FALSE(tree.FitWeighted(inputs, labels, {0.0, 0.0}).ok());
  EXPECT_FALSE(tree.FitWeighted(inputs, labels, {1.0}).ok());
}

TEST(DecisionTreeTest, RejectsEmpty) {
  DecisionTree tree;
  nn::Matrix empty;
  EXPECT_FALSE(tree.Fit(empty, {}).ok());
}

TEST(DecisionTreeTest, GeneralizationOnNoisyBlobs) {
  Rng rng(31);
  const size_t n = 300;
  nn::Matrix inputs(n, 2);
  std::vector<int32_t> labels(n);
  for (size_t i = 0; i < n; ++i) {
    bool positive = rng.NextBool();
    double cx = positive ? 2.0 : -2.0;
    inputs(i, 0) = static_cast<float>(cx + rng.NextGaussian());
    inputs(i, 1) = static_cast<float>(rng.NextGaussian());
    labels[i] = positive ? 1 : 0;
  }
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(inputs, labels).ok());
  EXPECT_GT(Accuracy(tree.Predict(inputs), labels), 0.9);
}

TEST(DecisionTreeTest, MinSamplesLeafLimitsNodeCount) {
  Rng rng(32);
  const size_t n = 100;
  nn::Matrix inputs(n, 1);
  std::vector<int32_t> labels(n);
  for (size_t i = 0; i < n; ++i) {
    inputs(i, 0) = static_cast<float>(rng.NextDouble());
    labels[i] = rng.NextBool() ? 1 : 0;  // pure noise
  }
  DecisionTreeOptions shallow;
  shallow.min_samples_leaf = 20;
  DecisionTreeOptions deep;
  deep.min_samples_leaf = 1;
  DecisionTree shallow_tree(shallow);
  DecisionTree deep_tree(deep);
  ASSERT_TRUE(shallow_tree.Fit(inputs, labels).ok());
  ASSERT_TRUE(deep_tree.Fit(inputs, labels).ok());
  EXPECT_LT(shallow_tree.node_count(), deep_tree.node_count());
}

}  // namespace
}  // namespace leapme::ml
