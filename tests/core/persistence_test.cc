// Tests for LeapmeMatcher model persistence (SaveModel / LoadModel).

#include <algorithm>
#include <fstream>

#include <gtest/gtest.h>

#include "core/leapme.h"
#include "data/domain.h"
#include "data/generator.h"
#include "embedding/synthetic_model.h"

namespace leapme::core {
namespace {

class PersistenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::GeneratorOptions generator;
    generator.num_sources = 4;
    generator.min_entities_per_source = 8;
    generator.max_entities_per_source = 8;
    generator.seed = 55;
    dataset_ = new data::Dataset(
        data::GenerateCatalog(data::TvDomain(), generator).value());
    model_ = new embedding::SyntheticEmbeddingModel(
        embedding::SyntheticEmbeddingModel::Build(
            data::DomainClusters(data::TvDomain()),
            {.dimension = 16,
             .seed = 56,
             .oov_policy = embedding::OovPolicy::kHashedVector})
            .value());
    Rng rng(57);
    std::vector<data::SourceId> sources{0, 1, 2};
    train_ = new std::vector<data::LabeledPair>(
        data::BuildTrainingPairs(*dataset_, sources, 2.0, rng).value());
  }

  static std::string Path(const char* name) {
    return ::testing::TempDir() + "/" + name;
  }

  static data::Dataset* dataset_;
  static embedding::SyntheticEmbeddingModel* model_;
  static std::vector<data::LabeledPair>* train_;
};

data::Dataset* PersistenceTest::dataset_ = nullptr;
embedding::SyntheticEmbeddingModel* PersistenceTest::model_ = nullptr;
std::vector<data::LabeledPair>* PersistenceTest::train_ = nullptr;

TEST_F(PersistenceTest, SaveBeforeFitFails) {
  LeapmeMatcher matcher(model_);
  EXPECT_TRUE(matcher.SaveModel(Path("nope.model")).IsFailedPrecondition());
}

TEST_F(PersistenceTest, RoundTripPreservesScores) {
  LeapmeMatcher matcher(model_);
  ASSERT_TRUE(matcher.Fit(*dataset_, *train_).ok());
  std::string path = Path("roundtrip.model");
  ASSERT_TRUE(matcher.SaveModel(path).ok());

  auto loaded = LeapmeMatcher::LoadModel(model_, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  std::vector<data::PropertyPair> pairs = dataset_->AllCrossSourcePairs();
  pairs.resize(std::min<size_t>(pairs.size(), 100));
  auto original = matcher.ScorePairs(pairs).value();
  // The loaded matcher has no cached property features; ScorePairsOn
  // recomputes them from the dataset.
  auto restored = loaded->ScorePairsOn(*dataset_, pairs).value();
  ASSERT_EQ(original.size(), restored.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR(original[i], restored[i], 1e-5) << "pair " << i;
  }
}

TEST_F(PersistenceTest, RoundTripPreservesOptions) {
  LeapmeOptions options;
  options.decision_threshold = 0.7;
  options.feature_config.origin = features::OriginSelection::kNamesOnly;
  LeapmeMatcher matcher(model_, options);
  ASSERT_TRUE(matcher.Fit(*dataset_, *train_).ok());
  std::string path = Path("options.model");
  ASSERT_TRUE(matcher.SaveModel(path).ok());
  auto loaded = LeapmeMatcher::LoadModel(model_, path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(loaded->options().decision_threshold, 0.7);
  EXPECT_EQ(loaded->options().feature_config.origin,
            features::OriginSelection::kNamesOnly);
  EXPECT_EQ(loaded->input_dimension(), matcher.input_dimension());
}

TEST_F(PersistenceTest, DimensionMismatchRejected) {
  LeapmeMatcher matcher(model_);
  ASSERT_TRUE(matcher.Fit(*dataset_, *train_).ok());
  std::string path = Path("dim.model");
  ASSERT_TRUE(matcher.SaveModel(path).ok());

  auto other_model = embedding::SyntheticEmbeddingModel::Build(
      data::DomainClusters(data::TvDomain()), {.dimension = 32, .seed = 58});
  ASSERT_TRUE(other_model.ok());
  auto loaded = LeapmeMatcher::LoadModel(&other_model.value(), path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInvalidArgument());
}

TEST_F(PersistenceTest, MissingFileFails) {
  EXPECT_FALSE(LeapmeMatcher::LoadModel(model_, "/nonexistent.model").ok());
}

TEST_F(PersistenceTest, CorruptHeaderFails) {
  std::string path = Path("corrupt.model");
  {
    std::ofstream out(path);
    out << "not-a-matcher 9\n";
  }
  auto loaded = LeapmeMatcher::LoadModel(model_, path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace leapme::core
