// Tests for LeapmeMatcher model persistence (SaveModel / LoadModel).

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iterator>

#include <gtest/gtest.h>

#include "core/leapme.h"
#include "data/domain.h"
#include "data/generator.h"
#include "embedding/synthetic_model.h"

namespace leapme::core {
namespace {

class PersistenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::GeneratorOptions generator;
    generator.num_sources = 4;
    generator.min_entities_per_source = 8;
    generator.max_entities_per_source = 8;
    generator.seed = 55;
    dataset_ = new data::Dataset(
        data::GenerateCatalog(data::TvDomain(), generator).value());
    model_ = new embedding::SyntheticEmbeddingModel(
        embedding::SyntheticEmbeddingModel::Build(
            data::DomainClusters(data::TvDomain()),
            {.dimension = 16,
             .seed = 56,
             .oov_policy = embedding::OovPolicy::kHashedVector})
            .value());
    Rng rng(57);
    std::vector<data::SourceId> sources{0, 1, 2};
    train_ = new std::vector<data::LabeledPair>(
        data::BuildTrainingPairs(*dataset_, sources, 2.0, rng).value());
  }

  static std::string Path(const char* name) {
    return ::testing::TempDir() + "/" + name;
  }

  static data::Dataset* dataset_;
  static embedding::SyntheticEmbeddingModel* model_;
  static std::vector<data::LabeledPair>* train_;
};

data::Dataset* PersistenceTest::dataset_ = nullptr;
embedding::SyntheticEmbeddingModel* PersistenceTest::model_ = nullptr;
std::vector<data::LabeledPair>* PersistenceTest::train_ = nullptr;

TEST_F(PersistenceTest, SaveBeforeFitFails) {
  LeapmeMatcher matcher(model_);
  EXPECT_TRUE(matcher.SaveModel(Path("nope.model")).IsFailedPrecondition());
}

TEST_F(PersistenceTest, RoundTripPreservesScores) {
  LeapmeMatcher matcher(model_);
  ASSERT_TRUE(matcher.Fit(*dataset_, *train_).ok());
  std::string path = Path("roundtrip.model");
  ASSERT_TRUE(matcher.SaveModel(path).ok());

  auto loaded = LeapmeMatcher::LoadModel(model_, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  std::vector<data::PropertyPair> pairs = dataset_->AllCrossSourcePairs();
  pairs.resize(std::min<size_t>(pairs.size(), 100));
  auto original = matcher.ScorePairs(pairs).value();
  // The loaded matcher has no cached property features; ScorePairsOn
  // recomputes them from the dataset.
  auto restored = loaded->ScorePairsOn(*dataset_, pairs).value();
  ASSERT_EQ(original.size(), restored.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR(original[i], restored[i], 1e-5) << "pair " << i;
  }
}

TEST_F(PersistenceTest, RoundTripPreservesOptions) {
  LeapmeOptions options;
  options.decision_threshold = 0.7;
  options.feature_config.origin = features::OriginSelection::kNamesOnly;
  LeapmeMatcher matcher(model_, options);
  ASSERT_TRUE(matcher.Fit(*dataset_, *train_).ok());
  std::string path = Path("options.model");
  ASSERT_TRUE(matcher.SaveModel(path).ok());
  auto loaded = LeapmeMatcher::LoadModel(model_, path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(loaded->options().decision_threshold, 0.7);
  EXPECT_EQ(loaded->options().feature_config.origin,
            features::OriginSelection::kNamesOnly);
  EXPECT_EQ(loaded->input_dimension(), matcher.input_dimension());
}

TEST_F(PersistenceTest, DimensionMismatchRejected) {
  LeapmeMatcher matcher(model_);
  ASSERT_TRUE(matcher.Fit(*dataset_, *train_).ok());
  std::string path = Path("dim.model");
  ASSERT_TRUE(matcher.SaveModel(path).ok());

  auto other_model = embedding::SyntheticEmbeddingModel::Build(
      data::DomainClusters(data::TvDomain()), {.dimension = 32, .seed = 58});
  ASSERT_TRUE(other_model.ok());
  auto loaded = LeapmeMatcher::LoadModel(&other_model.value(), path);
  EXPECT_FALSE(loaded.ok());
  // Typed so serving entry points can distinguish "wrong deployment"
  // from a corrupt file.
  EXPECT_TRUE(loaded.status().IsFailedPrecondition());
}

// Rewrites the main model file at `path` through `edit` (a line-list
// transform), leaving the .mlp side file untouched.
void RewriteModelFile(const std::string& path,
                      const std::function<void(std::vector<std::string>*)>&
                          edit) {
  std::vector<std::string> lines;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  edit(&lines);
  std::ofstream out(path, std::ios::trunc);
  for (const std::string& line : lines) out << line << "\n";
}

TEST_F(PersistenceTest, V1ModelStillLoadsAndScoresIdentically) {
  LeapmeMatcher matcher(model_);
  ASSERT_TRUE(matcher.Fit(*dataset_, *train_).ok());
  std::string path = Path("v1compat.model");
  ASSERT_TRUE(matcher.SaveModel(path).ok());

  // Downgrade the file to the pre-fingerprint v1 format: old header, no
  // fingerprint / max_instances keys.
  RewriteModelFile(path, [](std::vector<std::string>* lines) {
    ASSERT_FALSE(lines->empty());
    (*lines)[0] = "leapme-matcher 1";
    lines->erase(std::remove_if(lines->begin(), lines->end(),
                                [](const std::string& line) {
                                  return line.rfind("fingerprint ", 0) == 0 ||
                                         line.rfind("max_instances ", 0) == 0;
                                }),
                 lines->end());
  });

  auto loaded = LeapmeMatcher::LoadModel(model_, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  std::vector<data::PropertyPair> pairs = dataset_->AllCrossSourcePairs();
  pairs.resize(std::min<size_t>(pairs.size(), 50));
  auto original = matcher.ScorePairs(pairs).value();
  auto restored = loaded->ScorePairsOn(*dataset_, pairs).value();
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(original[i], restored[i]) << "pair " << i;
  }
}

TEST_F(PersistenceTest, FingerprintMismatchRejected) {
  LeapmeMatcher matcher(model_);
  ASSERT_TRUE(matcher.Fit(*dataset_, *train_).ok());
  std::string path = Path("fingerprint_mismatch.model");
  ASSERT_TRUE(matcher.SaveModel(path).ok());

  // A model trained against a different feature schema (e.g. a stage
  // version bumped since training) carries a different fingerprint.
  RewriteModelFile(path, [](std::vector<std::string>* lines) {
    for (std::string& line : *lines) {
      if (line.rfind("fingerprint ", 0) == 0) {
        line = "fingerprint lmf1-00000000deadbeef";
      }
    }
  });

  auto loaded = LeapmeMatcher::LoadModel(model_, path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsFailedPrecondition());
  EXPECT_NE(loaded.status().message().find("lmf1-00000000deadbeef"),
            std::string::npos)
      << loaded.status();
}

TEST_F(PersistenceTest, V2WithoutFingerprintIsCorrupt) {
  LeapmeMatcher matcher(model_);
  ASSERT_TRUE(matcher.Fit(*dataset_, *train_).ok());
  std::string path = Path("v2_no_fingerprint.model");
  ASSERT_TRUE(matcher.SaveModel(path).ok());

  RewriteModelFile(path, [](std::vector<std::string>* lines) {
    lines->erase(std::remove_if(lines->begin(), lines->end(),
                                [](const std::string& line) {
                                  return line.rfind("fingerprint ", 0) == 0;
                                }),
                 lines->end());
  });

  auto loaded = LeapmeMatcher::LoadModel(model_, path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(PersistenceTest, MissingEndMarkerIsCorrupt) {
  LeapmeMatcher matcher(model_);
  ASSERT_TRUE(matcher.Fit(*dataset_, *train_).ok());
  std::string path = Path("no_end.model");
  ASSERT_TRUE(matcher.SaveModel(path).ok());

  // A v2 file must end with the "end leapme" sentinel; without it the
  // file is indistinguishable from a torn write and must not load.
  RewriteModelFile(path, [](std::vector<std::string>* lines) {
    lines->erase(std::remove_if(lines->begin(), lines->end(),
                                [](const std::string& line) {
                                  return line.rfind("end ", 0) == 0;
                                }),
                 lines->end());
  });

  auto loaded = LeapmeMatcher::LoadModel(model_, path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(PersistenceTest, StageSelectionRoundTrips) {
  LeapmeOptions options;
  options.feature_stages = {"name_embedding", "string_distances"};
  LeapmeMatcher matcher(model_, options);
  ASSERT_TRUE(matcher.Fit(*dataset_, *train_).ok());
  // d + 8 string distances.
  EXPECT_EQ(matcher.input_dimension(), 16u + 8u);
  std::string path = Path("stages.model");
  ASSERT_TRUE(matcher.SaveModel(path).ok());

  auto loaded = LeapmeMatcher::LoadModel(model_, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->options().feature_stages, options.feature_stages);
  EXPECT_EQ(loaded->input_dimension(), matcher.input_dimension());

  std::vector<data::PropertyPair> pairs = dataset_->AllCrossSourcePairs();
  pairs.resize(std::min<size_t>(pairs.size(), 50));
  auto original = matcher.ScorePairs(pairs).value();
  auto restored = loaded->ScorePairsOn(*dataset_, pairs).value();
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(original[i], restored[i]) << "pair " << i;
  }
}

TEST_F(PersistenceTest, MaxInstancesCapRoundTrips) {
  LeapmeOptions options;
  options.pair_features.max_instances_per_property = 3;
  LeapmeMatcher matcher(model_, options);
  ASSERT_TRUE(matcher.Fit(*dataset_, *train_).ok());
  std::string path = Path("max_instances.model");
  ASSERT_TRUE(matcher.SaveModel(path).ok());

  auto loaded = LeapmeMatcher::LoadModel(model_, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->options().pair_features.max_instances_per_property, 3u);
  // The cap is part of the fingerprint, so the loaded pipeline recomputes
  // features under the same cap and reproduces the scores exactly.
  std::vector<data::PropertyPair> pairs = dataset_->AllCrossSourcePairs();
  pairs.resize(std::min<size_t>(pairs.size(), 50));
  auto original = matcher.ScorePairs(pairs).value();
  auto restored = loaded->ScorePairsOn(*dataset_, pairs).value();
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(original[i], restored[i]) << "pair " << i;
  }
}

TEST_F(PersistenceTest, MissingFileFails) {
  EXPECT_FALSE(LeapmeMatcher::LoadModel(model_, "/nonexistent.model").ok());
}

TEST_F(PersistenceTest, CorruptHeaderFails) {
  std::string path = Path("corrupt.model");
  {
    std::ofstream out(path);
    out << "not-a-matcher 9\n";
  }
  auto loaded = LeapmeMatcher::LoadModel(model_, path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(PersistenceTest, RoundTripScoresAreBitIdentical) {
  LeapmeMatcher matcher(model_);
  ASSERT_TRUE(matcher.Fit(*dataset_, *train_).ok());
  std::string path = Path("bitexact.model");
  ASSERT_TRUE(matcher.SaveModel(path).ok());
  auto loaded = LeapmeMatcher::LoadModel(model_, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  std::vector<data::PropertyPair> pairs = dataset_->AllCrossSourcePairs();
  pairs.resize(std::min<size_t>(pairs.size(), 100));
  auto original = matcher.ScorePairs(pairs).value();
  auto restored = loaded->ScorePairsOn(*dataset_, pairs).value();
  ASSERT_EQ(original.size(), restored.size());
  // Weights, scaler statistics and threshold are persisted with full
  // round-trip precision, so the restored matcher reproduces every score
  // exactly — the guarantee the online service builds on.
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(original[i], restored[i]) << "pair " << i;
  }
  EXPECT_EQ(loaded->decision_threshold(), matcher.decision_threshold());
}

TEST_F(PersistenceTest, TruncatedFilesFailCleanly) {
  LeapmeMatcher matcher(model_);
  ASSERT_TRUE(matcher.Fit(*dataset_, *train_).ok());
  std::string path = Path("truncate.model");
  ASSERT_TRUE(matcher.SaveModel(path).ok());

  // Truncate both the matcher file and the network weights at several
  // points; every prefix must come back as a Status, never a crash.
  for (const std::string& victim : {path, path + ".mlp"}) {
    std::string contents;
    {
      std::ifstream in(victim, std::ios::binary);
      contents.assign(std::istreambuf_iterator<char>(in),
                      std::istreambuf_iterator<char>());
    }
    ASSERT_FALSE(contents.empty());
    // Cut points land inside the count-driven weight / column / scaler
    // regions, where a shortfall must surface as !in.
    for (size_t keep : {contents.size() / 3, contents.size() / 2}) {
      std::string clipped_path = Path("clipped.model");
      // Keep the side file intact so the failure is the clipped one.
      {
        std::ofstream main_out(clipped_path, std::ios::binary);
        std::ofstream mlp_out(clipped_path + ".mlp", std::ios::binary);
        std::ifstream main_in(path, std::ios::binary);
        std::ifstream mlp_in(path + ".mlp", std::ios::binary);
        main_out << main_in.rdbuf();
        mlp_out << mlp_in.rdbuf();
      }
      {
        std::ofstream out(victim == path ? clipped_path
                                         : clipped_path + ".mlp",
                          std::ios::binary | std::ios::trunc);
        out.write(contents.data(), static_cast<std::streamsize>(keep));
      }
      auto loaded = LeapmeMatcher::LoadModel(model_, clipped_path);
      EXPECT_FALSE(loaded.ok())
          << victim << " truncated to " << keep << " bytes";
    }
  }
}

TEST_F(PersistenceTest, HostileColumnCountRejectedWithoutAllocating) {
  std::string path = Path("hostile_columns.model");
  {
    std::ofstream out(path);
    out << "leapme-matcher 1\n";
    out << "embedding_dim 16\n";
    out << "columns 92233720368547758\n";  // would be an 8 PB resize
  }
  auto loaded = LeapmeMatcher::LoadModel(model_, path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(PersistenceTest, HostileScalerCountRejectedWithoutAllocating) {
  std::string path = Path("hostile_scaler.model");
  {
    std::ofstream out(path);
    out << "leapme-matcher 1\n";
    out << "embedding_dim 16\n";
    out << "scaler 92233720368547758\n";
  }
  auto loaded = LeapmeMatcher::LoadModel(model_, path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(PersistenceTest, HostileMlpShapesRejected) {
  LeapmeMatcher matcher(model_);
  ASSERT_TRUE(matcher.Fit(*dataset_, *train_).ok());
  std::string path = Path("hostile_mlp.model");
  ASSERT_TRUE(matcher.SaveModel(path).ok());

  {
    std::ofstream out(path + ".mlp", std::ios::trunc);
    out << "leapme-mlp 1\n99999999\n";  // absurd layer count
  }
  auto huge_layers = LeapmeMatcher::LoadModel(model_, path);
  ASSERT_FALSE(huge_layers.ok());
  EXPECT_EQ(huge_layers.status().code(), StatusCode::kCorruption);

  {
    std::ofstream out(path + ".mlp", std::ios::trunc);
    out << "leapme-mlp 1\n1\ndense\n1048576 1048576\n";  // 4 TB of weights
  }
  auto huge_dense = LeapmeMatcher::LoadModel(model_, path);
  ASSERT_FALSE(huge_dense.ok());
  EXPECT_EQ(huge_dense.status().code(), StatusCode::kCorruption);
}

TEST_F(PersistenceTest, MissingWeightsFileFails) {
  LeapmeMatcher matcher(model_);
  ASSERT_TRUE(matcher.Fit(*dataset_, *train_).ok());
  std::string path = Path("no_weights.model");
  ASSERT_TRUE(matcher.SaveModel(path).ok());
  ASSERT_EQ(std::remove((path + ".mlp").c_str()), 0);
  EXPECT_FALSE(LeapmeMatcher::LoadModel(model_, path).ok());
}

}  // namespace
}  // namespace leapme::core
