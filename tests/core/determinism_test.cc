// The determinism contract of the execution engine, end to end: training
// and scoring a LEAPME matcher must be bit-identical at any thread count
// (DESIGN.md "Execution model"). Runs the full Fit + ScorePairs +
// ScorePairsOn path at 1, 2 and 4 threads and compares exact doubles.

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "core/leapme.h"
#include "data/domain.h"
#include "data/generator.h"
#include "embedding/synthetic_model.h"
#include "features/feature_pipeline.h"
#include "nn/matrix.h"

namespace leapme::core {
namespace {

/// Small headphone catalog + embedding space shared across the runs.
class DeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::GeneratorOptions generator;
    generator.num_sources = 5;
    generator.min_entities_per_source = 10;
    generator.max_entities_per_source = 10;
    generator.seed = 91;
    dataset_ = new data::Dataset(
        data::GenerateCatalog(data::HeadphoneDomain(), generator).value());

    embedding::SyntheticModelOptions embedding;
    embedding.dimension = 16;
    embedding.seed = 92;
    embedding.oov_policy = embedding::OovPolicy::kHashedVector;
    model_ = new embedding::SyntheticEmbeddingModel(
        embedding::SyntheticEmbeddingModel::Build(
            data::DomainClusters(data::HeadphoneDomain()), embedding)
            .value());

    Rng rng(93);
    split_ = new data::SourceSplit(data::SplitSources(*dataset_, 0.6, rng));
    train_pairs_ = new std::vector<data::LabeledPair>(
        data::BuildTrainingPairs(*dataset_, split_->train_sources, 2.0, rng)
            .value());
    test_pairs_ = new std::vector<data::LabeledPair>(
        data::BuildTestPairs(*dataset_, split_->train_sources));
  }

  void TearDown() override { SetGlobalThreadCount(0); }

  /// One full run at the given pool width: fresh matcher, Fit, ScorePairs
  /// on the test pairs, ScorePairsOn against the same dataset (the
  /// transfer path), returning everything that could diverge.
  struct RunResult {
    std::vector<double> losses;
    std::vector<double> scores;
    std::vector<double> transfer_scores;
  };

  static RunResult RunAt(size_t threads, size_t batch_size) {
    SetGlobalThreadCount(threads);
    LeapmeOptions options;
    options.score_batch_size = batch_size;
    LeapmeMatcher matcher(model_, options);
    EXPECT_TRUE(matcher.Fit(*dataset_, *train_pairs_).ok());

    std::vector<data::PropertyPair> pairs;
    for (const data::LabeledPair& labeled : *test_pairs_) {
      pairs.push_back(labeled.pair);
    }
    RunResult result;
    result.losses = matcher.training_losses();
    result.scores = matcher.ScorePairs(pairs).value();
    result.transfer_scores = matcher.ScorePairsOn(*dataset_, pairs).value();
    return result;
  }

  static data::Dataset* dataset_;
  static embedding::SyntheticEmbeddingModel* model_;
  static data::SourceSplit* split_;
  static std::vector<data::LabeledPair>* train_pairs_;
  static std::vector<data::LabeledPair>* test_pairs_;
};

data::Dataset* DeterminismTest::dataset_ = nullptr;
embedding::SyntheticEmbeddingModel* DeterminismTest::model_ = nullptr;
data::SourceSplit* DeterminismTest::split_ = nullptr;
std::vector<data::LabeledPair>* DeterminismTest::train_pairs_ = nullptr;
std::vector<data::LabeledPair>* DeterminismTest::test_pairs_ = nullptr;

/// Exact (bitwise) comparison: EXPECT_EQ on doubles is exact equality,
/// which is precisely the contract under test.
void ExpectIdentical(const std::vector<double>& a,
                     const std::vector<double>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << what << " diverges at index " << i;
  }
}

TEST_F(DeterminismTest, FitAndScoreBitIdenticalAcrossThreadCounts) {
  const RunResult at1 = RunAt(1, 4096);
  const RunResult at2 = RunAt(2, 4096);
  const RunResult at4 = RunAt(4, 4096);
  ASSERT_FALSE(at1.scores.empty());

  ExpectIdentical(at1.losses, at2.losses, "training losses (2 threads)");
  ExpectIdentical(at1.losses, at4.losses, "training losses (4 threads)");
  ExpectIdentical(at1.scores, at2.scores, "scores (2 threads)");
  ExpectIdentical(at1.scores, at4.scores, "scores (4 threads)");
  ExpectIdentical(at1.transfer_scores, at2.transfer_scores,
                  "transfer scores (2 threads)");
  ExpectIdentical(at1.transfer_scores, at4.transfer_scores,
                  "transfer scores (4 threads)");
}

TEST_F(DeterminismTest, ScoresIndependentOfBatchSize) {
  // The batch size is a scheduling knob: scoring in batches of 7 must
  // match scoring in one big batch. (Per-batch standardization and
  // inference touch each row independently.)
  const RunResult big = RunAt(4, 4096);
  const RunResult small = RunAt(4, 7);
  ExpectIdentical(big.scores, small.scores, "scores (batch 4096 vs 7)");
}

TEST_F(DeterminismTest, GemmBitIdenticalAcrossThreadCounts) {
  // Direct check of the GEMM parallel path at a size above its threshold.
  const size_t n = 160;  // 160^3 = 4.1M MACs > the 2M parallel threshold
  nn::Matrix a(n, n);
  nn::Matrix b(n, n);
  Rng rng(7);
  for (size_t i = 0; i < a.size(); ++i) {
    a.data()[i] = static_cast<float>(rng.NextDouble(-1, 1));
    b.data()[i] = static_cast<float>(rng.NextDouble(-1, 1));
  }
  SetGlobalThreadCount(1);
  nn::Matrix sequential;
  nn::Gemm(a, b, &sequential);
  SetGlobalThreadCount(4);
  nn::Matrix parallel;
  nn::Gemm(a, b, &parallel);
  ASSERT_EQ(sequential.rows(), parallel.rows());
  ASSERT_EQ(sequential.cols(), parallel.cols());
  for (size_t i = 0; i < sequential.size(); ++i) {
    ASSERT_EQ(sequential.data()[i], parallel.data()[i]) << "element " << i;
  }
}

TEST_F(DeterminismTest, DesignMatrixBitIdenticalAcrossThreadCounts) {
  features::FeaturePipeline pipeline(model_);
  std::vector<features::PropertyFeatures> properties;
  std::vector<std::string> values = {"40 mm driver", "32 ohm", "wireless"};
  for (data::PropertyId id = 0; id < dataset_->property_count(); ++id) {
    properties.push_back(
        pipeline.ComputeProperty(dataset_->property(id).name, values));
  }
  std::vector<const features::PropertyFeatures*> lhs;
  std::vector<const features::PropertyFeatures*> rhs;
  for (size_t i = 0; i < properties.size(); ++i) {
    for (size_t j = i + 1; j < properties.size(); ++j) {
      lhs.push_back(&properties[i]);
      rhs.push_back(&properties[j]);
    }
  }
  nn::Matrix at1 = pipeline.BuildDesignMatrix(lhs, rhs, {}, /*max_threads=*/1);
  nn::Matrix at4 = pipeline.BuildDesignMatrix(lhs, rhs, {}, /*max_threads=*/4);
  ASSERT_EQ(at1.rows(), at4.rows());
  ASSERT_EQ(at1.cols(), at4.cols());
  for (size_t i = 0; i < at1.size(); ++i) {
    ASSERT_EQ(at1.data()[i], at4.data()[i]) << "element " << i;
  }
}

}  // namespace
}  // namespace leapme::core
