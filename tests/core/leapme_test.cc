#include "core/leapme.h"

#include <gtest/gtest.h>

#include "data/domain.h"
#include "data/generator.h"
#include "embedding/synthetic_model.h"
#include "ml/metrics.h"

namespace leapme::core {
namespace {

// Small but realistic fixture: a generated headphone catalog plus its
// synthetic embedding space, shared across tests (generation is cheap but
// not free).
class LeapmeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::GeneratorOptions generator;
    generator.num_sources = 5;
    generator.min_entities_per_source = 12;
    generator.max_entities_per_source = 12;
    generator.seed = 71;
    dataset_ = new data::Dataset(
        data::GenerateCatalog(data::HeadphoneDomain(), generator).value());

    embedding::SyntheticModelOptions embedding;
    embedding.dimension = 16;
    embedding.seed = 72;
    embedding.oov_policy = embedding::OovPolicy::kHashedVector;
    model_ = new embedding::SyntheticEmbeddingModel(
        embedding::SyntheticEmbeddingModel::Build(
            data::DomainClusters(data::HeadphoneDomain()), embedding)
            .value());

    Rng rng(73);
    split_ = new data::SourceSplit(data::SplitSources(*dataset_, 0.6, rng));
    train_pairs_ = new std::vector<data::LabeledPair>(
        data::BuildTrainingPairs(*dataset_, split_->train_sources, 2.0, rng)
            .value());
    test_pairs_ = new std::vector<data::LabeledPair>(
        data::BuildTestPairs(*dataset_, split_->train_sources));
  }

  static data::Dataset* dataset_;
  static embedding::SyntheticEmbeddingModel* model_;
  static data::SourceSplit* split_;
  static std::vector<data::LabeledPair>* train_pairs_;
  static std::vector<data::LabeledPair>* test_pairs_;
};

data::Dataset* LeapmeTest::dataset_ = nullptr;
embedding::SyntheticEmbeddingModel* LeapmeTest::model_ = nullptr;
data::SourceSplit* LeapmeTest::split_ = nullptr;
std::vector<data::LabeledPair>* LeapmeTest::train_pairs_ = nullptr;
std::vector<data::LabeledPair>* LeapmeTest::test_pairs_ = nullptr;

TEST_F(LeapmeTest, DefaultOptionsMatchPaper) {
  LeapmeOptions options;
  EXPECT_EQ(options.hidden_sizes, (std::vector<size_t>{128, 64}));
  EXPECT_EQ(options.trainer.batch_size, 32u);
  EXPECT_EQ(options.trainer.schedule.size(), 3u);
  EXPECT_DOUBLE_EQ(options.decision_threshold, 0.5);
  EXPECT_EQ(options.feature_config.origin,
            features::OriginSelection::kBoth);
}

TEST_F(LeapmeTest, FitAndScoreEndToEnd) {
  LeapmeMatcher matcher(model_);
  ASSERT_TRUE(matcher.Fit(*dataset_, *train_pairs_).ok());
  EXPECT_FALSE(matcher.training_losses().empty());
  EXPECT_EQ(matcher.training_losses().size(), 20u);

  std::vector<data::PropertyPair> pairs;
  std::vector<int32_t> labels;
  for (const auto& labeled : *test_pairs_) {
    pairs.push_back(labeled.pair);
    labels.push_back(labeled.label);
  }
  auto scores = matcher.ScorePairs(pairs);
  ASSERT_TRUE(scores.ok());
  ASSERT_EQ(scores->size(), pairs.size());
  for (double score : *scores) {
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 1.0);
  }

  auto decisions = matcher.ClassifyPairs(pairs);
  ASSERT_TRUE(decisions.ok());
  ml::MatchQuality quality = ml::ComputeQuality(*decisions, labels);
  // The matcher must far outperform chance on this small dataset.
  EXPECT_GT(quality.f1, 0.4);
}

TEST_F(LeapmeTest, TrainingLossDecreases) {
  LeapmeMatcher matcher(model_);
  ASSERT_TRUE(matcher.Fit(*dataset_, *train_pairs_).ok());
  const auto& losses = matcher.training_losses();
  EXPECT_LT(losses.back(), losses.front());
}

TEST_F(LeapmeTest, ScoreBeforeFitFails) {
  LeapmeMatcher matcher(model_);
  auto scores = matcher.ScorePairs({{0, 1}});
  EXPECT_FALSE(scores.ok());
  EXPECT_TRUE(scores.status().IsFailedPrecondition());
}

TEST_F(LeapmeTest, EmptyTrainingPairsRejected) {
  LeapmeMatcher matcher(model_);
  EXPECT_FALSE(matcher.Fit(*dataset_, {}).ok());
}

TEST_F(LeapmeTest, OutOfRangeTrainingPairRejected) {
  LeapmeMatcher matcher(model_);
  std::vector<data::LabeledPair> bad{
      {{0, static_cast<data::PropertyId>(dataset_->property_count() + 5)},
       1}};
  EXPECT_FALSE(matcher.Fit(*dataset_, bad).ok());
}

TEST_F(LeapmeTest, OutOfRangeScorePairRejected) {
  LeapmeMatcher matcher(model_);
  ASSERT_TRUE(matcher.Fit(*dataset_, *train_pairs_).ok());
  auto scores = matcher.ScorePairs(
      {{0, static_cast<data::PropertyId>(dataset_->property_count())}});
  EXPECT_FALSE(scores.ok());
}

TEST_F(LeapmeTest, InputDimensionFollowsFeatureConfig) {
  for (const features::FeatureConfig& config :
       features::AllFeatureConfigs()) {
    LeapmeOptions options;
    options.feature_config = config;
    LeapmeMatcher matcher(model_, options);
    EXPECT_GT(matcher.input_dimension(), 0u) << config.ToString();
    EXPECT_LE(matcher.input_dimension(),
              features::FeatureSchema::PairDimension(model_->dimension()));
  }
}

TEST_F(LeapmeTest, AllNineConfigsTrainSuccessfully) {
  for (const features::FeatureConfig& config :
       features::AllFeatureConfigs()) {
    LeapmeOptions options;
    options.feature_config = config;
    LeapmeMatcher matcher(model_, options);
    EXPECT_TRUE(matcher.Fit(*dataset_, *train_pairs_).ok())
        << config.ToString();
  }
}

TEST_F(LeapmeTest, BuildSimilarityGraphThresholdsEdges) {
  LeapmeMatcher matcher(model_);
  ASSERT_TRUE(matcher.Fit(*dataset_, *train_pairs_).ok());
  std::vector<data::PropertyPair> pairs;
  for (const auto& labeled : *test_pairs_) {
    pairs.push_back(labeled.pair);
  }
  auto graph = matcher.BuildSimilarityGraph(pairs);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_properties(), dataset_->property_count());
  for (const auto& edge : graph->edges()) {
    EXPECT_GE(edge.score, matcher.options().decision_threshold);
  }
}

TEST_F(LeapmeTest, DeterministicWithFixedSeeds) {
  auto run = [&]() {
    LeapmeMatcher matcher(model_);
    EXPECT_TRUE(matcher.Fit(*dataset_, *train_pairs_).ok());
    std::vector<data::PropertyPair> pairs;
    for (size_t i = 0; i < 20 && i < test_pairs_->size(); ++i) {
      pairs.push_back((*test_pairs_)[i].pair);
    }
    return matcher.ScorePairs(pairs).value();
  };
  EXPECT_EQ(run(), run());
}

TEST_F(LeapmeTest, StandardizationOffStillTrains) {
  LeapmeOptions options;
  options.standardize_features = false;
  LeapmeMatcher matcher(model_, options);
  EXPECT_TRUE(matcher.Fit(*dataset_, *train_pairs_).ok());
}

TEST_F(LeapmeTest, ThresholdCalibrationAdjustsThreshold) {
  LeapmeOptions options;
  options.calibration_fraction = 0.25;
  LeapmeMatcher matcher(model_, options);
  ASSERT_TRUE(matcher.Fit(*dataset_, *train_pairs_).ok());
  // Calibration replaces the fixed 0.5 with the holdout's best-F1 point.
  EXPECT_GT(matcher.decision_threshold(), 0.0);
  EXPECT_LT(matcher.decision_threshold(), 1.0);

  std::vector<data::PropertyPair> pairs;
  std::vector<int32_t> labels;
  for (const auto& labeled : *test_pairs_) {
    pairs.push_back(labeled.pair);
    labels.push_back(labeled.label);
  }
  auto decisions = matcher.ClassifyPairs(pairs);
  ASSERT_TRUE(decisions.ok());
  EXPECT_GT(ml::ComputeQuality(*decisions, labels).f1, 0.4);
}

TEST_F(LeapmeTest, CalibrationFractionValidated) {
  LeapmeOptions options;
  options.calibration_fraction = 1.5;
  LeapmeMatcher matcher(model_, options);
  EXPECT_FALSE(matcher.Fit(*dataset_, *train_pairs_).ok());
}

TEST_F(LeapmeTest, WithoutCalibrationThresholdIsConfigured) {
  LeapmeOptions options;
  options.decision_threshold = 0.42;
  LeapmeMatcher matcher(model_, options);
  ASSERT_TRUE(matcher.Fit(*dataset_, *train_pairs_).ok());
  EXPECT_DOUBLE_EQ(matcher.decision_threshold(), 0.42);
}

TEST_F(LeapmeTest, HigherThresholdNeverIncreasesPositives) {
  LeapmeOptions lax;
  lax.decision_threshold = 0.3;
  LeapmeOptions strict;
  strict.decision_threshold = 0.9;
  std::vector<data::PropertyPair> pairs;
  for (const auto& labeled : *test_pairs_) {
    pairs.push_back(labeled.pair);
  }
  LeapmeMatcher lax_matcher(model_, lax);
  LeapmeMatcher strict_matcher(model_, strict);
  ASSERT_TRUE(lax_matcher.Fit(*dataset_, *train_pairs_).ok());
  ASSERT_TRUE(strict_matcher.Fit(*dataset_, *train_pairs_).ok());
  auto lax_decisions = lax_matcher.ClassifyPairs(pairs).value();
  auto strict_decisions = strict_matcher.ClassifyPairs(pairs).value();
  size_t lax_count = 0;
  size_t strict_count = 0;
  for (size_t i = 0; i < pairs.size(); ++i) {
    lax_count += lax_decisions[i];
    strict_count += strict_decisions[i];
  }
  EXPECT_LE(strict_count, lax_count);
}

}  // namespace
}  // namespace leapme::core
