// Integration tests spanning the whole system: dataset generation ->
// embedding space -> feature pipeline -> LEAPME training -> matching ->
// clustering, plus the baseline comparison claims of the paper at a
// miniature scale.

#include <gtest/gtest.h>

#include "baselines/aml.h"
#include "baselines/fca_map.h"
#include "baselines/lsh.h"
#include "baselines/nezhadi.h"
#include "baselines/semprop.h"
#include "core/leapme.h"
#include "data/tsv_io.h"
#include "eval/experiment.h"
#include "eval/leapme_adapter.h"
#include "graph/similarity_graph.h"

namespace leapme {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto specs = eval::DefaultDatasetSpecs(eval::EvalScale::kTest);
    built_ = new eval::EvalDataset(
        std::move(eval::BuildEvalDataset(specs[0])).value());
  }

  static eval::EvalDataset* built_;
};

eval::EvalDataset* EndToEndTest::built_ = nullptr;

TEST_F(EndToEndTest, LeapmeBeatsUnsupervisedBaselinesOnF1) {
  eval::EvaluationOptions options;
  options.repetitions = 2;
  options.train_fraction = 0.8;

  auto evaluate = [&](eval::MatcherFactory factory) {
    auto result = eval::EvaluateMatcher(factory, *built_, options);
    EXPECT_TRUE(result.ok()) << result.status();
    return result->mean;
  };

  ml::MatchQuality leapme = evaluate(
      [](const embedding::EmbeddingModel& model)
          -> std::unique_ptr<baselines::PairMatcher> {
        return std::make_unique<eval::LeapmeAdapter>(
            &model, core::LeapmeOptions{}, "LEAPME");
      });
  ml::MatchQuality fca = evaluate(
      [](const embedding::EmbeddingModel&)
          -> std::unique_ptr<baselines::PairMatcher> {
        return std::make_unique<baselines::FcaMapMatcher>();
      });
  ml::MatchQuality lsh = evaluate(
      [](const embedding::EmbeddingModel&)
          -> std::unique_ptr<baselines::PairMatcher> {
        return std::make_unique<baselines::LshMatcher>();
      });

  // The paper's headline claim at miniature scale: supervised LEAPME with
  // all features beats the unsupervised baselines on F1.
  EXPECT_GT(leapme.f1, fca.f1);
  EXPECT_GT(leapme.f1, lsh.f1);
}

TEST_F(EndToEndTest, UnsupervisedNameMatchersHavePrecisionOverRecall) {
  eval::EvaluationOptions options;
  options.repetitions = 2;
  options.train_fraction = 0.8;
  auto result = eval::EvaluateMatcher(
      [](const embedding::EmbeddingModel&)
          -> std::unique_ptr<baselines::PairMatcher> {
        return std::make_unique<baselines::FcaMapMatcher>();
      },
      *built_, options);
  ASSERT_TRUE(result.ok());
  // FCA-Map: very high precision, limited recall (paper observation 1).
  EXPECT_GT(result->mean.precision, 0.8);
  EXPECT_LT(result->mean.recall, 0.8);
  EXPECT_GT(result->mean.precision, result->mean.recall);
}

TEST_F(EndToEndTest, SimilarityGraphClusteringRecoversReferences) {
  Rng rng(5);
  data::SourceSplit split =
      data::SplitSources(built_->dataset, 0.8, rng);
  auto train = data::BuildTrainingPairs(built_->dataset,
                                        split.train_sources, 2.0, rng);
  ASSERT_TRUE(train.ok());

  core::LeapmeMatcher matcher(built_->model.get());
  ASSERT_TRUE(matcher.Fit(built_->dataset, *train).ok());
  auto graph =
      matcher.BuildSimilarityGraph(built_->dataset.AllCrossSourcePairs());
  ASSERT_TRUE(graph.ok());
  EXPECT_GT(graph->edge_count(), 0u);

  graph::Clusters clusters =
      graph::StarClusters(*graph, matcher.options().decision_threshold);
  graph::ClusterQuality quality =
      graph::EvaluateClusters(clusters, built_->dataset);
  EXPECT_GT(quality.f1, 0.3);
  EXPECT_GT(quality.non_singleton_clusters, 3u);
}

TEST_F(EndToEndTest, TsvRoundTripPreservesEvaluationResult) {
  std::string path = ::testing::TempDir() + "/e2e_dataset.tsv";
  ASSERT_TRUE(data::WriteDatasetTsv(built_->dataset, path).ok());
  auto loaded = data::ReadDatasetTsv(path, built_->dataset.name());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->property_count(), built_->dataset.property_count());
  EXPECT_EQ(loaded->CountMatchingPairs(),
            built_->dataset.CountMatchingPairs());

  // An unsupervised matcher produces identical decisions on the reloaded
  // dataset (property ids are assigned in file order, which round-trips).
  baselines::AmlMatcher original;
  baselines::AmlMatcher reloaded;
  ASSERT_TRUE(original.Fit(built_->dataset, {}).ok());
  ASSERT_TRUE(reloaded.Fit(*loaded, {}).ok());
  auto pairs = built_->dataset.AllCrossSourcePairs();
  std::vector<data::PropertyPair> sample(
      pairs.begin(), pairs.begin() + std::min<size_t>(200, pairs.size()));
  EXPECT_EQ(original.ClassifyPairs(sample).value(),
            reloaded.ClassifyPairs(sample).value());
}

TEST_F(EndToEndTest, TransferAcrossDomainsRunsEndToEnd) {
  // Train on cameras, apply the trained feature+classifier stack to
  // headphones via a fresh Fit (the transfer bench measures quality; here
  // we assert the mechanics work on a second domain).
  auto specs = eval::DefaultDatasetSpecs(eval::EvalScale::kTest);
  auto headphones = eval::BuildEvalDataset(specs[1]);
  ASSERT_TRUE(headphones.ok());
  Rng rng(6);
  data::SourceSplit split =
      data::SplitSources(headphones->dataset, 0.6, rng);
  auto train = data::BuildTrainingPairs(headphones->dataset,
                                        split.train_sources, 2.0, rng);
  ASSERT_TRUE(train.ok());
  core::LeapmeMatcher matcher(headphones->model.get());
  ASSERT_TRUE(matcher.Fit(headphones->dataset, *train).ok());
  auto test = data::BuildTestPairs(headphones->dataset,
                                   split.train_sources);
  std::vector<data::PropertyPair> pairs;
  for (const auto& labeled : test) pairs.push_back(labeled.pair);
  EXPECT_TRUE(matcher.ScorePairs(pairs).ok());
}

}  // namespace
}  // namespace leapme
