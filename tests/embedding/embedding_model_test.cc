#include "embedding/embedding_model.h"

#include <gtest/gtest.h>

#include "embedding/text_embedding_file.h"
#include "embedding/vector_ops.h"

namespace leapme::embedding {
namespace {

TextEmbeddingFile MakeModel(OovPolicy policy = OovPolicy::kZeroVector) {
  auto model = TextEmbeddingFile::FromEntries(
      {{"camera", {1.0f, 0.0f}},
       {"resolution", {0.0f, 1.0f}},
       {"mp", {0.0f, 0.5f}}},
      policy);
  return std::move(model).value();
}

TEST(AverageEmbeddingTest, AveragesKnownWords) {
  TextEmbeddingFile model = MakeModel();
  Vector avg = AverageEmbedding(model, {"camera", "resolution"});
  EXPECT_FLOAT_EQ(avg[0], 0.5f);
  EXPECT_FLOAT_EQ(avg[1], 0.5f);
}

TEST(AverageEmbeddingTest, EmptyWordListIsZero) {
  TextEmbeddingFile model = MakeModel();
  Vector avg = AverageEmbedding(model, {});
  EXPECT_FLOAT_EQ(avg[0], 0.0f);
  EXPECT_FLOAT_EQ(avg[1], 0.0f);
}

TEST(AverageEmbeddingTest, OovWordsCountTowardAverage) {
  // Paper policy: unknown words map to the zero vector AND count in the
  // denominator, diluting the average.
  TextEmbeddingFile model = MakeModel();
  Vector with_oov = AverageEmbedding(model, {"camera", "zzz"});
  EXPECT_FLOAT_EQ(with_oov[0], 0.5f);
  EXPECT_FLOAT_EQ(with_oov[1], 0.0f);
}

TEST(AverageEmbeddingTest, SingleWordEqualsItsVector) {
  TextEmbeddingFile model = MakeModel();
  Vector avg = AverageEmbedding(model, {"mp"});
  EXPECT_EQ(avg, model.Embed("mp"));
}

TEST(HashedWordVectorTest, UnitNormAndDeterminism) {
  Vector a(16, 0.0f);
  Vector b(16, 0.0f);
  HashedWordVector("some-word", a);
  HashedWordVector("some-word", b);
  EXPECT_EQ(a, b);
  EXPECT_NEAR(Norm(a), 1.0f, 1e-5);
  Vector c(16, 0.0f);
  HashedWordVector("other-word", c);
  EXPECT_LT(CosineSimilarity(a, c), 0.9f);
}

TEST(EmbedTest, ReturnsFreshVector) {
  TextEmbeddingFile model = MakeModel();
  Vector v = model.Embed("camera");
  EXPECT_EQ(v.size(), model.dimension());
  EXPECT_FLOAT_EQ(v[0], 1.0f);
}

}  // namespace
}  // namespace leapme::embedding
