#include "embedding/text_embedding_file.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace leapme::embedding {
namespace {

class TextEmbeddingFileTest : public ::testing::Test {
 protected:
  std::string WriteTempFile(const std::string& contents) {
    std::string path = ::testing::TempDir() + "/" +
                       ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name() +
                       ".vec";
    std::ofstream out(path);
    out << contents;
    return path;
  }
};

TEST_F(TextEmbeddingFileTest, LoadsGloveFormat) {
  std::string path = WriteTempFile(
      "resolution 0.1 0.2 0.3\n"
      "mp 0.1 0.25 0.28\n"
      "weight -0.9 0.0 0.4\n");
  auto model = TextEmbeddingFile::Load(path);
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_EQ(model->dimension(), 3u);
  EXPECT_EQ(model->vocabulary_size(), 3u);
  EXPECT_TRUE(model->Contains("resolution"));
  Vector v = model->Embed("weight");
  EXPECT_FLOAT_EQ(v[0], -0.9f);
  EXPECT_FLOAT_EQ(v[2], 0.4f);
}

TEST_F(TextEmbeddingFileTest, SkipsWord2VecHeader) {
  std::string path = WriteTempFile(
      "2 3\n"
      "a 1 2 3\n"
      "b 4 5 6\n");
  auto model = TextEmbeddingFile::Load(path);
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_EQ(model->vocabulary_size(), 2u);
  EXPECT_EQ(model->dimension(), 3u);
}

TEST_F(TextEmbeddingFileTest, MissingFileIsIoError) {
  auto model = TextEmbeddingFile::Load("/nonexistent/path.vec");
  EXPECT_FALSE(model.ok());
  EXPECT_TRUE(model.status().IsIoError());
}

TEST_F(TextEmbeddingFileTest, DimensionMismatchIsCorruption) {
  std::string path = WriteTempFile(
      "a 1 2 3\n"
      "b 4 5\n");
  auto model = TextEmbeddingFile::Load(path);
  EXPECT_FALSE(model.ok());
  EXPECT_EQ(model.status().code(), StatusCode::kCorruption);
}

TEST_F(TextEmbeddingFileTest, BadFloatIsCorruption) {
  std::string path = WriteTempFile("a 1 two 3\n");
  EXPECT_FALSE(TextEmbeddingFile::Load(path).ok());
}

TEST_F(TextEmbeddingFileTest, EmptyFileIsError) {
  std::string path = WriteTempFile("");
  EXPECT_FALSE(TextEmbeddingFile::Load(path).ok());
}

TEST_F(TextEmbeddingFileTest, OovZeroVectorByDefault) {
  std::string path = WriteTempFile("a 1 2\n");
  auto model = TextEmbeddingFile::Load(path);
  ASSERT_TRUE(model.ok());
  Vector oov = model->Embed("missing");
  EXPECT_FLOAT_EQ(oov[0], 0.0f);
  EXPECT_FLOAT_EQ(oov[1], 0.0f);
}

TEST_F(TextEmbeddingFileTest, OovHashedPolicy) {
  std::string path = WriteTempFile("a 1 2\n");
  auto model = TextEmbeddingFile::Load(path, OovPolicy::kHashedVector);
  ASSERT_TRUE(model.ok());
  Vector oov = model->Embed("missing");
  EXPECT_NE(oov[0], 0.0f);
}

TEST(TextEmbeddingFileFromEntriesTest, BuildsInMemoryModel) {
  auto model = TextEmbeddingFile::FromEntries(
      {{"x", {1.0f, 0.0f}}, {"y", {0.0f, 1.0f}}});
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->dimension(), 2u);
  EXPECT_TRUE(model->Contains("x"));
  EXPECT_FALSE(model->Contains("z"));
}

TEST(TextEmbeddingFileFromEntriesTest, RejectsEmptyAndMismatched) {
  EXPECT_FALSE(TextEmbeddingFile::FromEntries({}).ok());
  EXPECT_FALSE(TextEmbeddingFile::FromEntries(
                   {{"a", {1.0f}}, {"b", {1.0f, 2.0f}}})
                   .ok());
}

}  // namespace
}  // namespace leapme::embedding
