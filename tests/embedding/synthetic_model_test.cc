#include "embedding/synthetic_model.h"

#include <gtest/gtest.h>

#include "embedding/vector_ops.h"

namespace leapme::embedding {
namespace {

std::vector<SemanticCluster> TestClusters() {
  return {
      {"resolution", {"resolution", "megapixels", "mp"}},
      {"weight", {"weight", "mass", "grams"}},
      {"zoom", {"zoom", "magnification"}},
  };
}

SyntheticModelOptions SmallOptions() {
  SyntheticModelOptions options;
  options.dimension = 32;
  options.seed = 7;
  return options;
}

TEST(SyntheticModelTest, BuildSucceeds) {
  auto model = SyntheticEmbeddingModel::Build(TestClusters(), SmallOptions());
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->dimension(), 32u);
  EXPECT_EQ(model->vocabulary_size(), 8u);
  EXPECT_EQ(model->cluster_count(), 3u);
}

TEST(SyntheticModelTest, RejectsZeroDimension) {
  SyntheticModelOptions options;
  options.dimension = 0;
  EXPECT_FALSE(SyntheticEmbeddingModel::Build(TestClusters(), options).ok());
}

TEST(SyntheticModelTest, RejectsEmptyCluster) {
  std::vector<SemanticCluster> clusters{{"empty", {}}};
  EXPECT_FALSE(
      SyntheticEmbeddingModel::Build(clusters, SmallOptions()).ok());
}

TEST(SyntheticModelTest, RejectsEmptyWord) {
  std::vector<SemanticCluster> clusters{{"bad", {"ok", ""}}};
  EXPECT_FALSE(
      SyntheticEmbeddingModel::Build(clusters, SmallOptions()).ok());
}

TEST(SyntheticModelTest, SynonymsAreCloserThanStrangers) {
  auto model = SyntheticEmbeddingModel::Build(TestClusters(), SmallOptions());
  ASSERT_TRUE(model.ok());
  Vector resolution = model->Embed("resolution");
  Vector megapixels = model->Embed("megapixels");
  Vector weight = model->Embed("weight");
  float synonym_sim = CosineSimilarity(resolution, megapixels);
  float stranger_sim = CosineSimilarity(resolution, weight);
  EXPECT_GT(synonym_sim, 0.7f);
  EXPECT_LT(stranger_sim, 0.5f);
  EXPECT_GT(synonym_sim, stranger_sim);
}

TEST(SyntheticModelTest, LookupIsCaseInsensitive) {
  auto model = SyntheticEmbeddingModel::Build(TestClusters(), SmallOptions());
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(model->Contains("MP"));
  Vector upper = model->Embed("MP");
  Vector lower = model->Embed("mp");
  EXPECT_EQ(upper, lower);
}

TEST(SyntheticModelTest, DeterministicAcrossBuilds) {
  auto a = SyntheticEmbeddingModel::Build(TestClusters(), SmallOptions());
  auto b = SyntheticEmbeddingModel::Build(TestClusters(), SmallOptions());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->Embed("zoom"), b->Embed("zoom"));
}

TEST(SyntheticModelTest, DifferentSeedsDifferentSpaces) {
  SyntheticModelOptions other = SmallOptions();
  other.seed = 99;
  auto a = SyntheticEmbeddingModel::Build(TestClusters(), SmallOptions());
  auto b = SyntheticEmbeddingModel::Build(TestClusters(), other);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->Embed("zoom"), b->Embed("zoom"));
}

TEST(SyntheticModelTest, AddingClustersDoesNotMoveExistingWords) {
  auto small =
      SyntheticEmbeddingModel::Build(TestClusters(), SmallOptions());
  auto clusters = TestClusters();
  clusters.push_back({"price", {"price", "cost"}});
  auto large = SyntheticEmbeddingModel::Build(clusters, SmallOptions());
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_EQ(small->Embed("weight"), large->Embed("weight"));
}

TEST(SyntheticModelTest, PolysemousWordAveragesClusters) {
  std::vector<SemanticCluster> clusters{
      {"a", {"shared", "alpha"}},
      {"b", {"shared", "beta"}},
  };
  auto model = SyntheticEmbeddingModel::Build(clusters, SmallOptions());
  ASSERT_TRUE(model.ok());
  Vector shared = model->Embed("shared");
  Vector alpha = model->Embed("alpha");
  Vector beta = model->Embed("beta");
  // The polysemous word correlates with both senses.
  EXPECT_GT(CosineSimilarity(shared, alpha), 0.3f);
  EXPECT_GT(CosineSimilarity(shared, beta), 0.3f);
}

TEST(SyntheticModelTest, ZeroVectorOovPolicy) {
  auto model = SyntheticEmbeddingModel::Build(TestClusters(), SmallOptions());
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model->Contains("unknownword"));
  Vector oov = model->Embed("unknownword");
  EXPECT_FLOAT_EQ(Norm(oov), 0.0f);
}

TEST(SyntheticModelTest, HashedOovPolicy) {
  SyntheticModelOptions options = SmallOptions();
  options.oov_policy = OovPolicy::kHashedVector;
  auto model = SyntheticEmbeddingModel::Build(TestClusters(), options);
  ASSERT_TRUE(model.ok());
  Vector a = model->Embed("unknown_a");
  Vector b = model->Embed("unknown_b");
  Vector a_again = model->Embed("unknown_a");
  EXPECT_NEAR(Norm(a), 1.0f, 1e-5);
  EXPECT_EQ(a, a_again);   // deterministic per word
  EXPECT_NE(a, b);         // distinct words disagree
}

TEST(SyntheticModelTest, MavericksLandFarFromCluster) {
  // With maverick_fraction = 1 every word is displaced; synonym cosine
  // similarity collapses compared to the tight configuration.
  SyntheticModelOptions tight = SmallOptions();
  tight.intra_cluster_sigma = 0.1;
  SyntheticModelOptions scattered = SmallOptions();
  scattered.maverick_fraction = 1.0;
  scattered.maverick_sigma = 3.0;
  auto tight_model = SyntheticEmbeddingModel::Build(TestClusters(), tight);
  auto scattered_model =
      SyntheticEmbeddingModel::Build(TestClusters(), scattered);
  ASSERT_TRUE(tight_model.ok());
  ASSERT_TRUE(scattered_model.ok());
  float tight_sim = CosineSimilarity(tight_model->Embed("resolution"),
                                     tight_model->Embed("megapixels"));
  float scattered_sim =
      CosineSimilarity(scattered_model->Embed("resolution"),
                       scattered_model->Embed("megapixels"));
  EXPECT_GT(tight_sim, 0.9f);
  EXPECT_LT(scattered_sim, tight_sim);
}

}  // namespace
}  // namespace leapme::embedding
