#include "embedding/vector_ops.h"

#include <cmath>

#include <gtest/gtest.h>

namespace leapme::embedding {
namespace {

TEST(VectorOpsTest, AddInPlace) {
  Vector a{1.0f, 2.0f, 3.0f};
  Vector b{0.5f, -1.0f, 2.0f};
  AddInPlace(a, b);
  EXPECT_FLOAT_EQ(a[0], 1.5f);
  EXPECT_FLOAT_EQ(a[1], 1.0f);
  EXPECT_FLOAT_EQ(a[2], 5.0f);
}

TEST(VectorOpsTest, ScaleInPlace) {
  Vector a{2.0f, -4.0f};
  ScaleInPlace(a, 0.5f);
  EXPECT_FLOAT_EQ(a[0], 1.0f);
  EXPECT_FLOAT_EQ(a[1], -2.0f);
}

TEST(VectorOpsTest, DotAndNorm) {
  Vector a{3.0f, 4.0f};
  Vector b{1.0f, 0.0f};
  EXPECT_FLOAT_EQ(Dot(a, b), 3.0f);
  EXPECT_FLOAT_EQ(Norm(a), 5.0f);
  EXPECT_FLOAT_EQ(Norm(Vector{0.0f, 0.0f}), 0.0f);
}

TEST(VectorOpsTest, CosineSimilarityBasics) {
  Vector a{1.0f, 0.0f};
  Vector b{0.0f, 1.0f};
  Vector c{2.0f, 0.0f};
  Vector d{-1.0f, 0.0f};
  EXPECT_FLOAT_EQ(CosineSimilarity(a, b), 0.0f);
  EXPECT_FLOAT_EQ(CosineSimilarity(a, c), 1.0f);
  EXPECT_FLOAT_EQ(CosineSimilarity(a, d), -1.0f);
}

TEST(VectorOpsTest, CosineSimilarityZeroVectorIsZero) {
  Vector zero{0.0f, 0.0f};
  Vector a{1.0f, 2.0f};
  EXPECT_FLOAT_EQ(CosineSimilarity(zero, a), 0.0f);
  EXPECT_FLOAT_EQ(CosineSimilarity(zero, zero), 0.0f);
}

TEST(VectorOpsTest, EuclideanDistance) {
  Vector a{0.0f, 0.0f};
  Vector b{3.0f, 4.0f};
  EXPECT_FLOAT_EQ(EuclideanDistance(a, b), 5.0f);
  EXPECT_FLOAT_EQ(EuclideanDistance(b, b), 0.0f);
}

TEST(VectorOpsTest, NormalizeInPlace) {
  Vector a{3.0f, 4.0f};
  NormalizeInPlace(a);
  EXPECT_NEAR(Norm(a), 1.0f, 1e-6);
  EXPECT_NEAR(a[0], 0.6f, 1e-6);
  Vector zero{0.0f, 0.0f};
  NormalizeInPlace(zero);  // must not divide by zero
  EXPECT_FLOAT_EQ(zero[0], 0.0f);
}

}  // namespace
}  // namespace leapme::embedding
