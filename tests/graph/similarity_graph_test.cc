#include "graph/similarity_graph.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace leapme::graph {
namespace {

// A dataset with two reference properties across three sources:
// properties 0,2,4 -> "resolution"; 1,3,5 -> "weight".
data::Dataset MakeDataset() {
  data::Dataset dataset("g");
  for (int s = 0; s < 3; ++s) {
    data::SourceId source = dataset.AddSource("s" + std::to_string(s));
    dataset.AddProperty(source, "res" + std::to_string(s), "resolution");
    dataset.AddProperty(source, "wgt" + std::to_string(s), "weight");
  }
  return dataset;
}

TEST(SimilarityGraphTest, AddAndFilterEdges) {
  SimilarityGraph graph(4);
  graph.AddEdge(0, 1, 0.9);
  graph.AddEdge(1, 2, 0.4);
  graph.AddEdge(2, 3, 0.95);
  EXPECT_EQ(graph.edge_count(), 3u);
  EXPECT_EQ(graph.EdgesAbove(0.5).size(), 2u);
  EXPECT_EQ(graph.EdgesAbove(0.0).size(), 3u);
  EXPECT_TRUE(graph.EdgesAbove(0.99).empty());
}

TEST(ConnectedComponentsTest, GroupsLinkedNodes) {
  SimilarityGraph graph(6);
  graph.AddEdge(0, 2, 0.9);
  graph.AddEdge(2, 4, 0.8);
  graph.AddEdge(1, 3, 0.9);
  Clusters clusters = ConnectedComponentClusters(graph, 0.5);
  // {0,2,4}, {1,3}, {5}.
  EXPECT_EQ(clusters.size(), 3u);
  size_t total = 0;
  for (const auto& cluster : clusters) {
    total += cluster.size();
  }
  EXPECT_EQ(total, 6u);
}

TEST(ConnectedComponentsTest, ThresholdPrunesEdges) {
  SimilarityGraph graph(3);
  graph.AddEdge(0, 1, 0.3);
  graph.AddEdge(1, 2, 0.9);
  Clusters clusters = ConnectedComponentClusters(graph, 0.5);
  EXPECT_EQ(clusters.size(), 2u);  // {0}, {1,2}
}

TEST(ConnectedComponentsTest, EmptyGraphAllSingletons) {
  SimilarityGraph graph(4);
  Clusters clusters = ConnectedComponentClusters(graph, 0.5);
  EXPECT_EQ(clusters.size(), 4u);
  for (const auto& cluster : clusters) {
    EXPECT_EQ(cluster.size(), 1u);
  }
}

TEST(StarClustersTest, CenterAbsorbsNeighbors) {
  SimilarityGraph graph(4);
  // Node 0 is the hub.
  graph.AddEdge(0, 1, 0.9);
  graph.AddEdge(0, 2, 0.9);
  graph.AddEdge(0, 3, 0.9);
  Clusters clusters = StarClusters(graph, 0.5);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].size(), 4u);
  EXPECT_EQ(clusters[0][0], 0u);  // hub chosen as center
}

TEST(StarClustersTest, BridgeDoesNotMergeTwoStars) {
  // Two dense stars joined by one weak bridge: connected components merge
  // them, star clustering keeps them apart.
  SimilarityGraph graph(7);
  graph.AddEdge(0, 1, 0.95);
  graph.AddEdge(0, 2, 0.95);
  graph.AddEdge(3, 4, 0.95);
  graph.AddEdge(3, 5, 0.95);
  graph.AddEdge(2, 6, 0.55);
  graph.AddEdge(6, 4, 0.55);
  Clusters components = ConnectedComponentClusters(graph, 0.5);
  Clusters stars = StarClusters(graph, 0.5);
  EXPECT_EQ(components.size(), 1u);
  EXPECT_GT(stars.size(), 1u);
}

TEST(StarClustersTest, AllNodesAssignedExactlyOnce) {
  SimilarityGraph graph(5);
  graph.AddEdge(0, 1, 0.8);
  graph.AddEdge(1, 2, 0.8);
  graph.AddEdge(3, 4, 0.8);
  Clusters clusters = StarClusters(graph, 0.5);
  std::vector<bool> seen(5, false);
  for (const auto& cluster : clusters) {
    for (data::PropertyId id : cluster) {
      EXPECT_FALSE(seen[id]);
      seen[id] = true;
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                          [](bool b) { return b; }));
}

TEST(EvaluateClustersTest, PerfectClustering) {
  data::Dataset dataset = MakeDataset();
  Clusters clusters{{0, 2, 4}, {1, 3, 5}};
  ClusterQuality quality = EvaluateClusters(clusters, dataset);
  EXPECT_DOUBLE_EQ(quality.precision, 1.0);
  EXPECT_DOUBLE_EQ(quality.recall, 1.0);
  EXPECT_DOUBLE_EQ(quality.f1, 1.0);
  EXPECT_EQ(quality.cluster_count, 2u);
  EXPECT_EQ(quality.non_singleton_clusters, 2u);
}

TEST(EvaluateClustersTest, AllSingletonsZeroRecall) {
  data::Dataset dataset = MakeDataset();
  Clusters clusters{{0}, {1}, {2}, {3}, {4}, {5}};
  ClusterQuality quality = EvaluateClusters(clusters, dataset);
  EXPECT_DOUBLE_EQ(quality.recall, 0.0);
  EXPECT_DOUBLE_EQ(quality.precision, 0.0);
  EXPECT_EQ(quality.non_singleton_clusters, 0u);
}

TEST(EvaluateClustersTest, MixedClusterLowersPrecision) {
  data::Dataset dataset = MakeDataset();
  // One big cluster mixing both references.
  Clusters clusters{{0, 1, 2, 3, 4, 5}};
  ClusterQuality quality = EvaluateClusters(clusters, dataset);
  EXPECT_DOUBLE_EQ(quality.recall, 1.0);
  // Cluster of 6 nodes: 12 cross-source pairs, 6 correct.
  EXPECT_DOUBLE_EQ(quality.precision, 0.5);
  EXPECT_LT(quality.f1, 1.0);
}

TEST(EvaluateClustersTest, SameSourcePairsDoNotCount) {
  data::Dataset dataset = MakeDataset();
  // Cluster containing both properties of source 0 only: the same-source
  // pair is skipped, so nothing is predicted.
  Clusters clusters{{0, 1}, {2}, {3}, {4}, {5}};
  ClusterQuality quality = EvaluateClusters(clusters, dataset);
  EXPECT_DOUBLE_EQ(quality.precision, 0.0);
}

TEST(SimilarityGraphDeathTest, RejectsOutOfRangeAndSelfEdges) {
  SimilarityGraph graph(2);
  EXPECT_DEATH(graph.AddEdge(0, 5, 0.5), "Check failed");
  EXPECT_DEATH(graph.AddEdge(1, 1, 0.5), "Check failed");
}

}  // namespace
}  // namespace leapme::graph
