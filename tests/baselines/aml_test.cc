#include "baselines/aml.h"

#include <gtest/gtest.h>

namespace leapme::baselines {
namespace {

data::Dataset MakeDataset() {
  data::Dataset dataset("aml");
  data::SourceId s0 = dataset.AddSource("a");
  data::SourceId s1 = dataset.AddSource("b");
  dataset.AddProperty(s0, "resolution", "resolution");        // 0
  dataset.AddProperty(s0, "weight", "weight");                // 1
  dataset.AddProperty(s1, "Resolution", "resolution");        // 2
  dataset.AddProperty(s1, "product weight", "weight");        // 3
  dataset.AddProperty(s1, "megapixels", "resolution");        // 4
  return dataset;
}

TEST(AmlNameSimilarityTest, ExactAndCaseInsensitive) {
  EXPECT_DOUBLE_EQ(AmlMatcher::NameSimilarity("weight", "weight"), 1.0);
  EXPECT_DOUBLE_EQ(AmlMatcher::NameSimilarity("Weight", "WEIGHT"), 1.0);
  EXPECT_DOUBLE_EQ(AmlMatcher::NameSimilarity("screen_size", "screen size"),
                   1.0);
}

TEST(AmlNameSimilarityTest, DisjointNamesLow) {
  EXPECT_LT(AmlMatcher::NameSimilarity("megapixels", "qqq"), 0.5);
}

TEST(AmlNameSimilarityTest, SingleSharedHeadWordIsWeakEvidence) {
  // "resolution" vs "screen resolution": one-word containment is damped.
  double sim = AmlMatcher::NameSimilarity("resolution",
                                          "screen resolution");
  EXPECT_LT(sim, 0.9);
}

TEST(AmlNameSimilarityTest, MultiWordContainmentIsStrongEvidence) {
  double sim = AmlMatcher::NameSimilarity("battery life",
                                          "battery life hours");
  EXPECT_GE(sim, 0.9);
}

TEST(AmlTokenSimilarityTest, ZeroWithoutSharedTokens) {
  EXPECT_DOUBLE_EQ(AmlMatcher::TokenSimilarity("weight", "price"), 0.0);
  EXPECT_GT(AmlMatcher::TokenSimilarity("screen size", "screen type"), 0.0);
}

TEST(AmlMatcherTest, MatchesExactNamesOnly) {
  data::Dataset dataset = MakeDataset();
  AmlMatcher matcher;
  ASSERT_TRUE(matcher.Fit(dataset, {}).ok());
  auto decisions =
      matcher.ClassifyPairs({{0, 2}, {1, 3}, {0, 4}, {1, 2}});
  ASSERT_TRUE(decisions.ok());
  EXPECT_EQ((*decisions)[0], 1);  // resolution ~ Resolution
  EXPECT_EQ((*decisions)[2], 0);  // resolution ~ megapixels (synonym)
  EXPECT_EQ((*decisions)[3], 0);  // weight ~ Resolution
}

TEST(AmlMatcherTest, ClassifyBeforeFitFails) {
  AmlMatcher matcher;
  EXPECT_FALSE(matcher.ClassifyPairs({{0, 1}}).ok());
}

TEST(AmlMatcherTest, ScoresAreSimilarities) {
  data::Dataset dataset = MakeDataset();
  AmlMatcher matcher;
  ASSERT_TRUE(matcher.Fit(dataset, {}).ok());
  auto scores = matcher.ScorePairs({{0, 2}, {0, 4}});
  ASSERT_TRUE(scores.ok());
  EXPECT_DOUBLE_EQ((*scores)[0], 1.0);
  EXPECT_LT((*scores)[1], 1.0);
}

TEST(AmlMatcherTest, ThresholdOptionControlsDecision) {
  data::Dataset dataset = MakeDataset();
  AmlOptions lax;
  lax.threshold = 0.1;
  AmlMatcher lax_matcher(lax);
  ASSERT_TRUE(lax_matcher.Fit(dataset, {}).ok());
  // With an absurdly low threshold, even weak pairs match.
  auto decisions = lax_matcher.ClassifyPairs({{1, 3}});
  ASSERT_TRUE(decisions.ok());
  EXPECT_EQ((*decisions)[0], 1);
}

TEST(AmlMatcherTest, IsUnsupervised) {
  AmlMatcher matcher;
  EXPECT_FALSE(matcher.IsSupervised());
  EXPECT_EQ(matcher.Name(), "AML");
}

}  // namespace
}  // namespace leapme::baselines
