#include "baselines/semprop.h"

#include <gtest/gtest.h>

#include "embedding/text_embedding_file.h"

namespace leapme::baselines {
namespace {

embedding::TextEmbeddingFile MakeModel() {
  // "resolution" and "megapixels" are semantically close; "weight" is far.
  auto model = embedding::TextEmbeddingFile::FromEntries(
      {{"resolution", {1.0f, 0.0f, 0.0f}},
       {"megapixels", {0.95f, 0.3f, 0.0f}},
       {"weight", {0.0f, 0.0f, 1.0f}},
       {"mass", {0.1f, 0.0f, 0.95f}},
       {"screen", {0.3f, 0.9f, 0.0f}}});
  return std::move(model).value();
}

data::Dataset MakeDataset() {
  data::Dataset dataset("semprop");
  data::SourceId s0 = dataset.AddSource("a");
  data::SourceId s1 = dataset.AddSource("b");
  dataset.AddProperty(s0, "resolution", "resolution");  // 0
  dataset.AddProperty(s0, "weight", "weight");          // 1
  dataset.AddProperty(s1, "megapixels", "resolution");  // 2
  dataset.AddProperty(s1, "mass", "weight");            // 3
  return dataset;
}

TEST(SemPropTest, MatchesSemanticSynonyms) {
  embedding::TextEmbeddingFile model = MakeModel();
  data::Dataset dataset = MakeDataset();
  SemPropMatcher matcher(&model);
  ASSERT_TRUE(matcher.Fit(dataset, {}).ok());
  auto decisions = matcher.ClassifyPairs({{0, 2}, {1, 3}, {0, 3}, {1, 2}});
  ASSERT_TRUE(decisions.ok());
  EXPECT_EQ((*decisions)[0], 1);  // resolution ~ megapixels (SeMa+)
  EXPECT_EQ((*decisions)[1], 1);  // weight ~ mass (SeMa+)
  EXPECT_EQ((*decisions)[2], 0);  // resolution ~ mass
  EXPECT_EQ((*decisions)[3], 0);  // weight ~ megapixels
}

TEST(SemPropTest, SemaPositiveThresholdRespected) {
  embedding::TextEmbeddingFile model = MakeModel();
  data::Dataset dataset = MakeDataset();
  SemPropOptions options;
  options.sema_positive_threshold = 0.999;  // nothing passes
  options.synm_threshold = 1.1;             // nothing passes
  SemPropMatcher matcher(&model, options);
  ASSERT_TRUE(matcher.Fit(dataset, {}).ok());
  std::vector<int32_t> decisions =
      matcher.ClassifyPairs({{0, 2}, {1, 3}}).value();
  for (int32_t decision : decisions) {
    EXPECT_EQ(decision, 0);
  }
}

TEST(SemPropTest, SynMArmRequiresSemaNegativeSurvival) {
  embedding::TextEmbeddingFile model = MakeModel();
  data::Dataset dataset("x");
  data::SourceId s0 = dataset.AddSource("a");
  data::SourceId s1 = dataset.AddSource("b");
  // Names share a token ("screen") so SynM fires; but embeddings are
  // opposed -> the SeMa(-) filter must reject when its threshold is high.
  dataset.AddProperty(s0, "screen weight", "");
  dataset.AddProperty(s1, "screen resolution", "");
  SemPropOptions strict;
  strict.sema_positive_threshold = 2.0;   // disable SeMa+ arm
  strict.sema_negative_threshold = 0.99;  // nothing survives
  SemPropMatcher strict_matcher(&model, strict);
  ASSERT_TRUE(strict_matcher.Fit(dataset, {}).ok());
  EXPECT_EQ(strict_matcher.ClassifyPairs({{0, 1}}).value()[0], 0);

  SemPropOptions lax;
  lax.sema_positive_threshold = 2.0;
  lax.sema_negative_threshold = -1.0;  // everything survives
  SemPropMatcher lax_matcher(&model, lax);
  ASSERT_TRUE(lax_matcher.Fit(dataset, {}).ok());
  EXPECT_EQ(lax_matcher.ClassifyPairs({{0, 1}}).value()[0], 1);
}

TEST(SemPropTest, PaperThresholdDefaults) {
  SemPropOptions options;
  EXPECT_DOUBLE_EQ(options.synm_threshold, 0.2);
  EXPECT_DOUBLE_EQ(options.sema_negative_threshold, 0.2);
  EXPECT_DOUBLE_EQ(options.sema_positive_threshold, 0.4);
}

TEST(SemPropTest, ScoresInUnitInterval) {
  embedding::TextEmbeddingFile model = MakeModel();
  data::Dataset dataset = MakeDataset();
  SemPropMatcher matcher(&model);
  ASSERT_TRUE(matcher.Fit(dataset, {}).ok());
  std::vector<double> scores =
      matcher.ScorePairs({{0, 2}, {0, 3}, {1, 2}, {1, 3}}).value();
  for (double score : scores) {
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 1.0);
  }
}

TEST(SemPropTest, ClassifyBeforeFitFails) {
  embedding::TextEmbeddingFile model = MakeModel();
  SemPropMatcher matcher(&model);
  EXPECT_FALSE(matcher.ClassifyPairs({{0, 1}}).ok());
}

TEST(SemPropTest, IsUnsupervised) {
  embedding::TextEmbeddingFile model = MakeModel();
  SemPropMatcher matcher(&model);
  EXPECT_FALSE(matcher.IsSupervised());
  EXPECT_EQ(matcher.Name(), "SemProp");
}

}  // namespace
}  // namespace leapme::baselines
