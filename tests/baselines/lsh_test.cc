#include "baselines/lsh.h"

#include <gtest/gtest.h>

namespace leapme::baselines {
namespace {

// Two sources describing overlapping products: weight values overlap
// heavily across sources, prices do not overlap with weights.
data::Dataset MakeDataset() {
  data::Dataset dataset("lsh");
  data::SourceId s0 = dataset.AddSource("a");
  data::SourceId s1 = dataset.AddSource("b");
  data::PropertyId w0 = dataset.AddProperty(s0, "weight", "weight");    // 0
  data::PropertyId p0 = dataset.AddProperty(s0, "price", "price");     // 1
  data::PropertyId w1 = dataset.AddProperty(s1, "mass", "weight");     // 2
  data::PropertyId p1 = dataset.AddProperty(s1, "cost", "price");      // 3
  const char* weights[] = {"520 g", "610 g", "480 g", "730 g", "555 g"};
  const char* prices[] = {"$ 499", "$ 1299", "$ 899", "$ 650", "$ 720"};
  for (int i = 0; i < 5; ++i) {
    dataset.AddInstance(w0, "e" + std::to_string(i), weights[i]);
    dataset.AddInstance(w1, "x" + std::to_string(i), weights[i]);
    dataset.AddInstance(p0, "e" + std::to_string(i), prices[i]);
    dataset.AddInstance(p1, "x" + std::to_string(i), prices[i]);
  }
  return dataset;
}

TEST(LshTest, MatchesOverlappingValueSets) {
  data::Dataset dataset = MakeDataset();
  LshMatcher matcher;
  ASSERT_TRUE(matcher.Fit(dataset, {}).ok());
  auto decisions = matcher.ClassifyPairs({{0, 2}, {1, 3}, {0, 3}, {1, 2}});
  ASSERT_TRUE(decisions.ok());
  EXPECT_EQ((*decisions)[0], 1);  // weight ~ mass: identical token sets
  EXPECT_EQ((*decisions)[1], 1);  // price ~ cost
  EXPECT_EQ((*decisions)[2], 0);  // weight ~ cost: disjoint values
  EXPECT_EQ((*decisions)[3], 0);
}

TEST(LshTest, EstimatedJaccardTracksTrueOverlap) {
  data::Dataset dataset = MakeDataset();
  LshMatcher matcher;
  ASSERT_TRUE(matcher.Fit(dataset, {}).ok());
  double same = matcher.EstimatedJaccard(0, 2);     // identical sets
  double disjoint = matcher.EstimatedJaccard(0, 3);  // disjoint sets
  EXPECT_NEAR(same, 1.0, 1e-9);
  EXPECT_LT(disjoint, 0.3);
}

TEST(LshTest, MinTokensGate) {
  data::Dataset dataset("x");
  data::SourceId s0 = dataset.AddSource("a");
  data::SourceId s1 = dataset.AddSource("b");
  data::PropertyId p0 = dataset.AddProperty(s0, "flag", "");
  data::PropertyId p1 = dataset.AddProperty(s1, "flag2", "");
  dataset.AddInstance(p0, "e", "yes");
  dataset.AddInstance(p1, "x", "yes");
  LshOptions options;
  options.min_tokens = 3;
  LshMatcher matcher(options);
  ASSERT_TRUE(matcher.Fit(dataset, {}).ok());
  // Identical but tiny token sets never match under the gate.
  EXPECT_EQ(matcher.ClassifyPairs({{p0, p1}}).value()[0], 0);
}

TEST(LshTest, DeterministicForFixedSeed) {
  data::Dataset dataset = MakeDataset();
  LshMatcher a;
  LshMatcher b;
  ASSERT_TRUE(a.Fit(dataset, {}).ok());
  ASSERT_TRUE(b.Fit(dataset, {}).ok());
  EXPECT_EQ(a.ClassifyPairs({{0, 2}, {0, 3}}).value(),
            b.ClassifyPairs({{0, 2}, {0, 3}}).value());
}

TEST(LshTest, RejectsZeroBandsOrBandSize) {
  data::Dataset dataset = MakeDataset();
  LshOptions no_bands;
  no_bands.bands = 0;
  EXPECT_FALSE(LshMatcher(no_bands).Fit(dataset, {}).ok());
  LshOptions no_rows;
  no_rows.band_size = 0;
  EXPECT_FALSE(LshMatcher(no_rows).Fit(dataset, {}).ok());
}

TEST(LshTest, ClassifyBeforeFitFails) {
  LshMatcher matcher;
  EXPECT_FALSE(matcher.ClassifyPairs({{0, 1}}).ok());
}

TEST(LshTest, MoreBandsIncreaseSensitivity) {
  // A pair with partial overlap: the candidate probability rises with the
  // number of bands.
  data::Dataset dataset("partial");
  data::SourceId s0 = dataset.AddSource("a");
  data::SourceId s1 = dataset.AddSource("b");
  data::PropertyId p0 = dataset.AddProperty(s0, "p", "");
  data::PropertyId p1 = dataset.AddProperty(s1, "q", "");
  for (int i = 0; i < 20; ++i) {
    dataset.AddInstance(p0, "e", "tok" + std::to_string(i));
    dataset.AddInstance(p1, "x", "tok" + std::to_string(i + 14));  // ~18% J
  }
  LshOptions few;
  few.bands = 1;
  few.band_size = 2;
  LshOptions many;
  many.bands = 64;
  many.band_size = 2;
  LshMatcher few_matcher(few);
  LshMatcher many_matcher(many);
  ASSERT_TRUE(few_matcher.Fit(dataset, {}).ok());
  ASSERT_TRUE(many_matcher.Fit(dataset, {}).ok());
  EXPECT_LE(few_matcher.ClassifyPairs({{p0, p1}}).value()[0],
            many_matcher.ClassifyPairs({{p0, p1}}).value()[0]);
}

TEST(LshTest, IsUnsupervisedInstanceBased) {
  LshMatcher matcher;
  EXPECT_FALSE(matcher.IsSupervised());
  EXPECT_EQ(matcher.Name(), "LSH");
}

}  // namespace
}  // namespace leapme::baselines
