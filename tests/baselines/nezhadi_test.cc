#include "baselines/nezhadi.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/domain.h"
#include "data/generator.h"
#include "data/splitting.h"
#include "ml/metrics.h"

namespace leapme::baselines {
namespace {

TEST(NezhadiFeaturesTest, IdenticalNamesAllSimilarityOne) {
  std::vector<float> features(NezhadiMatcher::kFeatureCount);
  NezhadiMatcher::PairFeatures("weight", "weight", features);
  for (float value : features) {
    EXPECT_FLOAT_EQ(value, 1.0f);
  }
}

TEST(NezhadiFeaturesTest, DisjointNamesLowSimilarity) {
  std::vector<float> features(NezhadiMatcher::kFeatureCount);
  NezhadiMatcher::PairFeatures("abc", "wxyzuv", features);
  // All similarity features are low; the final slot is the length ratio
  // (3/6 here), which is a shape signal rather than a similarity.
  for (size_t i = 0; i + 1 < features.size(); ++i) {
    EXPECT_LE(features[i], 0.2f) << "feature " << i;
  }
  EXPECT_FLOAT_EQ(features.back(), 0.5f);
}

TEST(NezhadiFeaturesTest, FeaturesInUnitInterval) {
  std::vector<float> features(NezhadiMatcher::kFeatureCount);
  for (const auto& [a, b] :
       std::vector<std::pair<const char*, const char*>>{
           {"screen size", "display size"},
           {"", "x"},
           {"battery life", "battery"},
           {"optical zoom", "zoom"}}) {
    NezhadiMatcher::PairFeatures(a, b, features);
    for (float value : features) {
      EXPECT_GE(value, 0.0f);
      EXPECT_LE(value, 1.0f + 1e-6);
    }
  }
}

TEST(NezhadiMatcherTest, RequiresTraining) {
  data::Dataset dataset("x");
  data::SourceId s0 = dataset.AddSource("a");
  dataset.AddProperty(s0, "p", "r");
  NezhadiMatcher matcher;
  EXPECT_TRUE(matcher.IsSupervised());
  EXPECT_FALSE(matcher.Fit(dataset, {}).ok());
  EXPECT_FALSE(matcher.ClassifyPairs({{0, 0}}).ok());
}

class NezhadiEndToEndTest
    : public ::testing::TestWithParam<NezhadiLearner> {};

TEST_P(NezhadiEndToEndTest, LearnsNameMatchingOnGeneratedData) {
  data::GeneratorOptions options;
  options.num_sources = 6;
  options.min_entities_per_source = 4;
  options.max_entities_per_source = 4;
  options.seed = 91;
  auto dataset = data::GenerateCatalog(data::TvDomain(), options);
  ASSERT_TRUE(dataset.ok());
  Rng rng(92);
  data::SourceSplit split = data::SplitSources(*dataset, 0.6, rng);
  auto train =
      data::BuildTrainingPairs(*dataset, split.train_sources, 2.0, rng);
  ASSERT_TRUE(train.ok());
  auto test = data::BuildTestPairs(*dataset, split.train_sources);

  NezhadiOptions matcher_options;
  matcher_options.learner = GetParam();
  NezhadiMatcher matcher(matcher_options);
  ASSERT_TRUE(matcher.Fit(*dataset, *train).ok());

  std::vector<data::PropertyPair> pairs;
  std::vector<int32_t> labels;
  for (const auto& labeled : test) {
    pairs.push_back(labeled.pair);
    labels.push_back(labeled.label);
  }
  auto decisions = matcher.ClassifyPairs(pairs);
  ASSERT_TRUE(decisions.ok());
  ml::MatchQuality quality = ml::ComputeQuality(*decisions, labels);
  EXPECT_GT(quality.f1, 0.3);
}

INSTANTIATE_TEST_SUITE_P(Learners, NezhadiEndToEndTest,
                         ::testing::Values(NezhadiLearner::kAdaBoost,
                                           NezhadiLearner::kDecisionTree,
                                           NezhadiLearner::kLogisticRegression),
                         [](const auto& info) {
                           switch (info.param) {
                             case NezhadiLearner::kAdaBoost:
                               return "AdaBoost";
                             case NezhadiLearner::kDecisionTree:
                               return "DecisionTree";
                             default:
                               return "LogisticRegression";
                           }
                         });

TEST(NezhadiMatcherTest, ScoresAreProbabilities) {
  data::Dataset dataset("x");
  data::SourceId s0 = dataset.AddSource("a");
  data::SourceId s1 = dataset.AddSource("b");
  dataset.AddProperty(s0, "weight", "weight");
  dataset.AddProperty(s0, "price", "price");
  dataset.AddProperty(s1, "weight", "weight");
  dataset.AddProperty(s1, "price", "price");
  std::vector<data::LabeledPair> train{
      {{0, 2}, 1}, {{1, 3}, 1}, {{0, 3}, 0}, {{1, 2}, 0}};
  NezhadiMatcher matcher;
  ASSERT_TRUE(matcher.Fit(dataset, train).ok());
  auto scores = matcher.ScorePairs({{0, 2}, {0, 3}});
  ASSERT_TRUE(scores.ok());
  EXPECT_GT((*scores)[0], (*scores)[1]);
}

}  // namespace
}  // namespace leapme::baselines
