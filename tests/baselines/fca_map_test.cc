#include "baselines/fca_map.h"

#include <gtest/gtest.h>

namespace leapme::baselines {
namespace {

data::Dataset MakeDataset() {
  data::Dataset dataset("fca");
  data::SourceId s0 = dataset.AddSource("a");
  data::SourceId s1 = dataset.AddSource("b");
  dataset.AddProperty(s0, "screen size", "screen size");       // 0
  dataset.AddProperty(s0, "weight", "weight");                 // 1
  dataset.AddProperty(s1, "Screen Size", "screen size");       // 2
  dataset.AddProperty(s1, "screen size info", "screen size");  // 3
  dataset.AddProperty(s1, "display size", "screen size");      // 4
  return dataset;
}

TEST(FcaMapTest, MatchesIdenticalTokenIntents) {
  data::Dataset dataset = MakeDataset();
  FcaMapMatcher matcher;
  ASSERT_TRUE(matcher.Fit(dataset, {}).ok());
  auto decisions = matcher.ClassifyPairs({{0, 2}, {0, 4}, {1, 2}});
  ASSERT_TRUE(decisions.ok());
  EXPECT_EQ((*decisions)[0], 1);  // same tokens modulo case
  EXPECT_EQ((*decisions)[1], 0);  // display size: different intent
  EXPECT_EQ((*decisions)[2], 0);  // weight vs screen size
}

TEST(FcaMapTest, SubsetIntentsOffByDefault) {
  data::Dataset dataset = MakeDataset();
  FcaMapMatcher matcher;
  ASSERT_TRUE(matcher.Fit(dataset, {}).ok());
  auto decisions = matcher.ClassifyPairs({{0, 3}});
  ASSERT_TRUE(decisions.ok());
  EXPECT_EQ((*decisions)[0], 0);  // "screen size" subset of "... info"
}

TEST(FcaMapTest, SubsetIntentsOptIn) {
  data::Dataset dataset = MakeDataset();
  FcaMapOptions options;
  options.allow_subset_intents = true;
  FcaMapMatcher matcher(options);
  ASSERT_TRUE(matcher.Fit(dataset, {}).ok());
  auto decisions = matcher.ClassifyPairs({{0, 3}, {1, 3}});
  ASSERT_TRUE(decisions.ok());
  EXPECT_EQ((*decisions)[0], 1);
  EXPECT_EQ((*decisions)[1], 0);
}

TEST(FcaMapTest, EmptyTokenSetsNeverMatch) {
  data::Dataset dataset("x");
  data::SourceId s0 = dataset.AddSource("a");
  data::SourceId s1 = dataset.AddSource("b");
  dataset.AddProperty(s0, "...", "");
  dataset.AddProperty(s1, "---", "");
  FcaMapMatcher matcher;
  ASSERT_TRUE(matcher.Fit(dataset, {}).ok());
  auto decisions = matcher.ClassifyPairs({{0, 1}});
  ASSERT_TRUE(decisions.ok());
  EXPECT_EQ((*decisions)[0], 0);
}

TEST(FcaMapTest, TokenOrderIrrelevant) {
  data::Dataset dataset("x");
  data::SourceId s0 = dataset.AddSource("a");
  data::SourceId s1 = dataset.AddSource("b");
  dataset.AddProperty(s0, "size screen", "");
  dataset.AddProperty(s1, "screen size", "");
  FcaMapMatcher matcher;
  ASSERT_TRUE(matcher.Fit(dataset, {}).ok());
  EXPECT_EQ(matcher.ClassifyPairs({{0, 1}}).value()[0], 1);
}

TEST(FcaMapTest, ClassifyBeforeFitFails) {
  FcaMapMatcher matcher;
  EXPECT_FALSE(matcher.ClassifyPairs({{0, 1}}).ok());
}

TEST(FcaMapTest, IsUnsupervised) {
  FcaMapMatcher matcher;
  EXPECT_FALSE(matcher.IsSupervised());
  EXPECT_EQ(matcher.Name(), "FCA-Map");
}

}  // namespace
}  // namespace leapme::baselines
