#include <cmath>

#include <gtest/gtest.h>

#include "nn/activation.h"
#include "nn/mlp.h"
#include "nn/trainer.h"

namespace leapme::nn {
namespace {

TEST(DropoutTest, InferenceModeIsIdentity) {
  DropoutLayer dropout(0.5);
  dropout.SetTraining(false);
  Matrix input(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix output;
  dropout.Forward(input, &output);
  for (size_t i = 0; i < input.size(); ++i) {
    EXPECT_FLOAT_EQ(output.data()[i], input.data()[i]);
  }
}

TEST(DropoutTest, ZeroRateIsIdentityInTraining) {
  DropoutLayer dropout(0.0);
  dropout.SetTraining(true);
  Matrix input(1, 4, {1, 2, 3, 4});
  Matrix output;
  dropout.Forward(input, &output);
  for (size_t i = 0; i < input.size(); ++i) {
    EXPECT_FLOAT_EQ(output.data()[i], input.data()[i]);
  }
}

TEST(DropoutTest, TrainingDropsApproximatelyRateFraction) {
  DropoutLayer dropout(0.4, /*seed=*/9);
  dropout.SetTraining(true);
  Matrix input(100, 100);
  input.Fill(1.0f);
  Matrix output;
  dropout.Forward(input, &output);
  size_t zeros = 0;
  for (size_t i = 0; i < output.size(); ++i) {
    if (output.data()[i] == 0.0f) {
      ++zeros;
    } else {
      // Survivors are scaled by 1/(1-rate).
      EXPECT_NEAR(output.data()[i], 1.0f / 0.6f, 1e-5);
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / output.size(), 0.4, 0.02);
}

TEST(DropoutTest, ExpectedValuePreserved) {
  // Inverted dropout keeps E[output] = input.
  DropoutLayer dropout(0.3, /*seed=*/10);
  dropout.SetTraining(true);
  Matrix input(200, 50);
  input.Fill(2.0f);
  Matrix output;
  dropout.Forward(input, &output);
  double sum = 0.0;
  for (size_t i = 0; i < output.size(); ++i) {
    sum += output.data()[i];
  }
  EXPECT_NEAR(sum / output.size(), 2.0, 0.05);
}

TEST(DropoutTest, BackwardUsesSameMask) {
  DropoutLayer dropout(0.5, /*seed=*/11);
  dropout.SetTraining(true);
  Matrix input(1, 64);
  input.Fill(1.0f);
  Matrix output;
  dropout.Forward(input, &output);
  Matrix grad_out(1, 64);
  grad_out.Fill(1.0f);
  Matrix grad_in;
  dropout.Backward(grad_out, &grad_in);
  for (size_t i = 0; i < output.size(); ++i) {
    // Gradient flows exactly where the activation survived.
    EXPECT_FLOAT_EQ(grad_in.data()[i], output.data()[i]);
  }
}

TEST(DropoutTest, BuildMlpInsertsDropoutLayers) {
  Rng rng(12);
  Mlp mlp = BuildMlp(4, {8, 8}, 2, rng, /*dropout_rate=*/0.2);
  // Dense-ReLU-Dropout-Dense-ReLU-Dropout-Dense.
  ASSERT_EQ(mlp.layer_count(), 7u);
  EXPECT_EQ(mlp.layer(2).TypeName(), "dropout");
  EXPECT_EQ(mlp.layer(5).TypeName(), "dropout");
}

TEST(DropoutTest, PredictIsDeterministicDespiteDropout) {
  Rng rng(13);
  Mlp mlp = BuildMlp(4, {8}, 2, rng, /*dropout_rate=*/0.5);
  Matrix input(3, 4);
  input.Fill(0.5f);
  Matrix first;
  Matrix second;
  mlp.Predict(input, &first);
  mlp.Predict(input, &second);
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_FLOAT_EQ(first.data()[i], second.data()[i]);
  }
}

TEST(DropoutTest, SerializationRoundTrip) {
  Rng rng(14);
  Mlp mlp = BuildMlp(3, {4}, 2, rng, /*dropout_rate=*/0.25);
  std::string path = ::testing::TempDir() + "/dropout_mlp.txt";
  ASSERT_TRUE(SaveMlp(mlp, path).ok());
  auto loaded = LoadMlp(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->layer_count(), mlp.layer_count());
  EXPECT_EQ(loaded->layer(2).TypeName(), "dropout");
  // Predictions agree (dropout disabled at inference).
  Matrix input(2, 3, {0.1f, 0.2f, 0.3f, -0.1f, 0.0f, 0.5f});
  Matrix a, b;
  mlp.Predict(input, &a);
  loaded->Predict(input, &b);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a.data()[i], b.data()[i], 1e-5);
  }
}

TEST(DropoutDeathTest, RejectsInvalidRate) {
  EXPECT_DEATH(DropoutLayer(1.0), "Check failed");
  EXPECT_DEATH(DropoutLayer(-0.1), "Check failed");
}

TEST(EarlyStoppingTest, StopsBeforeFullSchedule) {
  // Random labels: validation loss cannot keep improving, so training
  // stops early with patience 2.
  Rng rng(15);
  Matrix inputs(300, 4);
  std::vector<int32_t> labels(300);
  for (size_t i = 0; i < inputs.size(); ++i) {
    inputs.data()[i] = static_cast<float>(rng.NextDouble(-1, 1));
  }
  for (auto& label : labels) {
    label = static_cast<int32_t>(rng.NextBounded(2));
  }
  TrainerOptions options;
  options.validation_fraction = 0.25;
  options.patience = 2;
  options.schedule = {{50, 1e-3}};
  Trainer trainer(options);
  Mlp mlp = BuildMlp(4, {16}, 2, rng);
  auto losses = trainer.Fit(mlp, inputs, labels);
  ASSERT_TRUE(losses.ok());
  EXPECT_LT(losses->size(), 50u);
}

TEST(EarlyStoppingTest, SeparableDataRunsFullSchedule) {
  Rng rng(16);
  Matrix inputs(200, 1);
  std::vector<int32_t> labels(200);
  for (size_t i = 0; i < 200; ++i) {
    double x = rng.NextDouble(-1, 1);
    inputs(i, 0) = static_cast<float>(x);
    labels[i] = x > 0 ? 1 : 0;
  }
  TrainerOptions options;
  options.validation_fraction = 0.2;
  options.patience = 5;
  Trainer trainer(options);
  Mlp mlp = BuildMlp(1, {8}, 2, rng);
  auto losses = trainer.Fit(mlp, inputs, labels);
  ASSERT_TRUE(losses.ok());
  // On cleanly learnable data validation keeps improving long enough to
  // finish (or nearly finish) the 20-epoch schedule.
  EXPECT_GE(losses->size(), 10u);
}

TEST(EarlyStoppingTest, InvalidFractionRejected) {
  TrainerOptions options;
  options.validation_fraction = 1.5;
  Trainer trainer(options);
  Rng rng(17);
  Mlp mlp = BuildMlp(1, {4}, 2, rng);
  Matrix inputs(4, 1);
  std::vector<int32_t> labels{0, 1, 0, 1};
  EXPECT_FALSE(trainer.Fit(mlp, inputs, labels).ok());
}

}  // namespace
}  // namespace leapme::nn
