#include "nn/loss.h"

#include <cmath>

#include <gtest/gtest.h>

namespace leapme::nn {
namespace {

TEST(SoftmaxTest, RowsSumToOne) {
  Matrix logits(2, 3, {1, 2, 3, -1, 0, 1});
  Matrix probabilities;
  Softmax(logits, &probabilities);
  for (size_t r = 0; r < 2; ++r) {
    float sum = 0.0f;
    for (size_t c = 0; c < 3; ++c) {
      sum += probabilities(r, c);
      EXPECT_GT(probabilities(r, c), 0.0f);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-6);
  }
}

TEST(SoftmaxTest, InvariantToConstantShift) {
  Matrix a(1, 2, {1, 2});
  Matrix b(1, 2, {101, 102});
  Matrix pa, pb;
  Softmax(a, &pa);
  Softmax(b, &pb);
  EXPECT_NEAR(pa(0, 0), pb(0, 0), 1e-6);
}

TEST(SoftmaxTest, NumericallyStableForLargeLogits) {
  Matrix logits(1, 2, {1000.0f, 0.0f});
  Matrix probabilities;
  Softmax(logits, &probabilities);
  EXPECT_NEAR(probabilities(0, 0), 1.0f, 1e-6);
  EXPECT_FALSE(std::isnan(probabilities(0, 1)));
}

TEST(SoftmaxCrossEntropyTest, UniformLogitsGiveLogK) {
  SoftmaxCrossEntropy loss;
  Matrix logits(1, 2, {0, 0});
  std::vector<int32_t> labels{1};
  Matrix probabilities;
  double value = loss.Forward(logits, labels, &probabilities);
  EXPECT_NEAR(value, std::log(2.0), 1e-6);
}

TEST(SoftmaxCrossEntropyTest, ConfidentCorrectLowLoss) {
  SoftmaxCrossEntropy loss;
  Matrix logits(1, 2, {-10, 10});
  std::vector<int32_t> labels{1};
  Matrix probabilities;
  EXPECT_LT(loss.Forward(logits, labels, &probabilities), 1e-4);
}

TEST(SoftmaxCrossEntropyTest, ConfidentWrongHighLoss) {
  SoftmaxCrossEntropy loss;
  Matrix logits(1, 2, {10, -10});
  std::vector<int32_t> labels{1};
  Matrix probabilities;
  EXPECT_GT(loss.Forward(logits, labels, &probabilities), 5.0);
}

TEST(SoftmaxCrossEntropyTest, MeanOverBatch) {
  SoftmaxCrossEntropy loss;
  Matrix logits(2, 2, {0, 0, 0, 0});
  std::vector<int32_t> labels{0, 1};
  Matrix probabilities;
  EXPECT_NEAR(loss.Forward(logits, labels, &probabilities), std::log(2.0),
              1e-6);
}

TEST(SoftmaxCrossEntropyTest, BackwardIsSoftmaxMinusOneHotOverBatch) {
  SoftmaxCrossEntropy loss;
  Matrix logits(2, 2, {0, 0, 0, 0});
  std::vector<int32_t> labels{0, 1};
  Matrix probabilities;
  loss.Forward(logits, labels, &probabilities);
  Matrix grad;
  loss.Backward(probabilities, labels, &grad);
  // softmax = 0.5 everywhere; gradient = (0.5 - onehot)/2.
  EXPECT_NEAR(grad(0, 0), (0.5 - 1.0) / 2.0, 1e-6);
  EXPECT_NEAR(grad(0, 1), 0.5 / 2.0, 1e-6);
  EXPECT_NEAR(grad(1, 0), 0.5 / 2.0, 1e-6);
  EXPECT_NEAR(grad(1, 1), (0.5 - 1.0) / 2.0, 1e-6);
}

TEST(SoftmaxCrossEntropyTest, GradientRowsSumToZero) {
  SoftmaxCrossEntropy loss;
  Matrix logits(3, 4, {1, 2, 3, 4, -1, 0, 1, 2, 5, 5, 5, 5});
  std::vector<int32_t> labels{0, 3, 2};
  Matrix probabilities;
  loss.Forward(logits, labels, &probabilities);
  Matrix grad;
  loss.Backward(probabilities, labels, &grad);
  for (size_t r = 0; r < 3; ++r) {
    float sum = 0.0f;
    for (size_t c = 0; c < 4; ++c) {
      sum += grad(r, c);
    }
    EXPECT_NEAR(sum, 0.0f, 1e-6);
  }
}

}  // namespace
}  // namespace leapme::nn
