#include "nn/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

namespace leapme::nn {
namespace {

// A single scalar parameter with a quadratic loss L(w) = 0.5 * w^2, whose
// gradient is w itself: any sane optimizer drives w toward 0.
struct ScalarProblem {
  Matrix value{1, 1, {5.0f}};
  Matrix gradient{1, 1};

  std::vector<Parameter> params() {
    return {{"w", &value, &gradient}};
  }
  void ComputeGradient() { gradient(0, 0) = value(0, 0); }
  float w() const { return value(0, 0); }
};

TEST(SgdTest, SingleStep) {
  ScalarProblem problem;
  SgdOptimizer sgd(0.1);
  problem.ComputeGradient();
  sgd.Step(problem.params());
  EXPECT_FLOAT_EQ(problem.w(), 5.0f - 0.1f * 5.0f);
}

TEST(SgdTest, ConvergesOnQuadratic) {
  ScalarProblem problem;
  SgdOptimizer sgd(0.1);
  for (int i = 0; i < 200; ++i) {
    problem.ComputeGradient();
    sgd.Step(problem.params());
  }
  EXPECT_NEAR(problem.w(), 0.0f, 1e-4);
}

TEST(MomentumTest, ConvergesOnQuadratic) {
  ScalarProblem problem;
  MomentumOptimizer momentum(0.05, 0.9);
  for (int i = 0; i < 300; ++i) {
    problem.ComputeGradient();
    momentum.Step(problem.params());
  }
  EXPECT_NEAR(problem.w(), 0.0f, 1e-3);
}

TEST(MomentumTest, AcceleratesVersusPlainSgdEarly) {
  ScalarProblem sgd_problem;
  ScalarProblem momentum_problem;
  SgdOptimizer sgd(0.01);
  MomentumOptimizer momentum(0.01, 0.9);
  for (int i = 0; i < 20; ++i) {
    sgd_problem.ComputeGradient();
    sgd.Step(sgd_problem.params());
    momentum_problem.ComputeGradient();
    momentum.Step(momentum_problem.params());
  }
  EXPECT_LT(momentum_problem.w(), sgd_problem.w());
}

TEST(AdamTest, ConvergesOnQuadratic) {
  ScalarProblem problem;
  AdamOptimizer adam(0.3);
  for (int i = 0; i < 400; ++i) {
    problem.ComputeGradient();
    adam.Step(problem.params());
  }
  EXPECT_NEAR(problem.w(), 0.0f, 1e-2);
}

TEST(AdamTest, FirstStepSizeIsLearningRate) {
  // With bias correction, the very first Adam step has magnitude ~lr.
  ScalarProblem problem;
  AdamOptimizer adam(0.1);
  problem.ComputeGradient();
  adam.Step(problem.params());
  EXPECT_NEAR(problem.w(), 5.0f - 0.1f, 1e-3);
}

TEST(OptimizerTest, LearningRateMutable) {
  SgdOptimizer sgd(0.1);
  EXPECT_DOUBLE_EQ(sgd.learning_rate(), 0.1);
  sgd.set_learning_rate(0.01);
  EXPECT_DOUBLE_EQ(sgd.learning_rate(), 0.01);
}

TEST(MakeOptimizerTest, CreatesRequestedKind) {
  EXPECT_NE(MakeOptimizer(OptimizerKind::kSgd, 0.1), nullptr);
  EXPECT_NE(MakeOptimizer(OptimizerKind::kMomentum, 0.1), nullptr);
  EXPECT_NE(MakeOptimizer(OptimizerKind::kAdam, 0.1), nullptr);
}

TEST(OptimizerTest, MultipleParametersUpdatedIndependently) {
  Matrix w1(1, 1, {1.0f});
  Matrix g1(1, 1, {1.0f});
  Matrix w2(1, 1, {2.0f});
  Matrix g2(1, 1, {-1.0f});
  std::vector<Parameter> params{{"w1", &w1, &g1}, {"w2", &w2, &g2}};
  SgdOptimizer sgd(0.5);
  sgd.Step(params);
  EXPECT_FLOAT_EQ(w1(0, 0), 0.5f);
  EXPECT_FLOAT_EQ(w2(0, 0), 2.5f);
}

}  // namespace
}  // namespace leapme::nn
