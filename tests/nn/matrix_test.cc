#include "nn/matrix.h"

#include <cmath>
#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

namespace leapme::nn {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_FLOAT_EQ(m(1, 2), 0.0f);
  m(1, 2) = 5.0f;
  EXPECT_FLOAT_EQ(m(1, 2), 5.0f);
}

TEST(MatrixTest, FromValues) {
  Matrix m(2, 2, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(m(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(m(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(m(1, 0), 3.0f);
  EXPECT_FLOAT_EQ(m(1, 1), 4.0f);
}

TEST(MatrixTest, RowView) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  auto row = m.row(1);
  EXPECT_EQ(row.size(), 3u);
  EXPECT_FLOAT_EQ(row[0], 4.0f);
  row[0] = 9.0f;
  EXPECT_FLOAT_EQ(m(1, 0), 9.0f);
}

TEST(MatrixTest, ResizeZeroes) {
  Matrix m(1, 1, {7});
  m.Resize(2, 2);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_FLOAT_EQ(m(0, 0), 0.0f);
}

TEST(MatrixTest, FillAndScale) {
  Matrix m(2, 2);
  m.Fill(3.0f);
  m.ScaleInPlace(2.0f);
  EXPECT_FLOAT_EQ(m(1, 1), 6.0f);
}

TEST(MatrixTest, RowSlice) {
  Matrix m(3, 2, {1, 2, 3, 4, 5, 6});
  Matrix slice = m.RowSlice(1, 3);
  EXPECT_EQ(slice.rows(), 2u);
  EXPECT_FLOAT_EQ(slice(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(slice(1, 1), 6.0f);
}

TEST(MatrixTest, AddInPlace) {
  Matrix a(1, 2, {1, 2});
  Matrix b(1, 2, {10, 20});
  a.AddInPlace(b);
  EXPECT_FLOAT_EQ(a(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(a(0, 1), 22.0f);
}

TEST(MatrixTest, SquaredNorm) {
  Matrix m(1, 3, {1, 2, 2});
  EXPECT_DOUBLE_EQ(m.SquaredNorm(), 9.0);
}

TEST(MatrixTest, ShapeString) {
  EXPECT_EQ(Matrix(3, 4).ShapeString(), "3x4");
}

TEST(GemmTest, KnownProduct) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix b(3, 2, {7, 8, 9, 10, 11, 12});
  Matrix out;
  Gemm(a, b, &out);
  // [1 2 3; 4 5 6] * [7 8; 9 10; 11 12] = [58 64; 139 154]
  EXPECT_FLOAT_EQ(out(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(out(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(out(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(out(1, 1), 154.0f);
}

TEST(GemmTest, IdentityPreserves) {
  Matrix identity(2, 2, {1, 0, 0, 1});
  Matrix a(2, 2, {3, 4, 5, 6});
  Matrix out;
  Gemm(a, identity, &out);
  EXPECT_FLOAT_EQ(out(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(out(1, 1), 6.0f);
}

TEST(GemmTransposeATest, MatchesManualTranspose) {
  Matrix a(3, 2, {1, 2, 3, 4, 5, 6});  // a^T is 2x3
  Matrix b(3, 2, {1, 0, 0, 1, 1, 1});
  Matrix out;
  GemmTransposeA(a, b, &out);
  // a^T * b = [[1 3 5],[2 4 6]] * [[1 0],[0 1],[1 1]] = [[6 8],[8 10]]
  EXPECT_FLOAT_EQ(out(0, 0), 6.0f);
  EXPECT_FLOAT_EQ(out(0, 1), 8.0f);
  EXPECT_FLOAT_EQ(out(1, 0), 8.0f);
  EXPECT_FLOAT_EQ(out(1, 1), 10.0f);
}

TEST(GemmTransposeBTest, MatchesManualTranspose) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix b(2, 3, {1, 0, 1, 0, 1, 0});  // b^T is 3x2
  Matrix out;
  GemmTransposeB(a, b, &out);
  // a * b^T = [[1+3, 2],[4+6, 5]] = [[4 2],[10 5]]
  EXPECT_FLOAT_EQ(out(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(out(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(out(1, 0), 10.0f);
  EXPECT_FLOAT_EQ(out(1, 1), 5.0f);
}

TEST(GemmTest, ZeroTimesNonFinitePropagatesNaN) {
  // Regression: the old i-k-j loop skipped a_ik == 0 multipliers, which
  // silently dropped NaN/Inf from B (IEEE 754: 0 * NaN = NaN and
  // 0 * Inf = NaN). All three GEMM variants must propagate.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  Matrix a(2, 2, {0, 0, 0, 0});
  Matrix b(2, 2, {nan, inf, 1, 1});
  Matrix out;
  Gemm(a, b, &out);
  EXPECT_TRUE(std::isnan(out(0, 0)));
  EXPECT_TRUE(std::isnan(out(0, 1)));  // 0*inf + 0*1 = nan
  EXPECT_TRUE(std::isnan(out(1, 0)));

  GemmTransposeA(a, b, &out);
  EXPECT_TRUE(std::isnan(out(0, 0)));
  EXPECT_TRUE(std::isnan(out(1, 1)));

  GemmTransposeB(a, b, &out);
  EXPECT_TRUE(std::isnan(out(0, 0)));
  EXPECT_TRUE(std::isnan(out(1, 0)));
}

TEST(MatrixTest, StorageIsCacheLineAligned) {
  // The kernel layer is entitled to assume data() starts on a 64-byte
  // boundary (common/kernels/aligned.h).
  for (size_t rows : {1u, 3u, 17u}) {
    Matrix m(rows, 5);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(m.data()) %
                  leapme::kernels::kStorageAlignment,
              0u);
    m.Resize(rows + 1, 9);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(m.data()) %
                  leapme::kernels::kStorageAlignment,
              0u);
  }
}

TEST(ColumnSumsTest, SumsColumns) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  std::vector<float> sums;
  ColumnSums(m, &sums);
  EXPECT_EQ(sums, (std::vector<float>{5, 7, 9}));
}

TEST(AddRowVectorTest, AddsToEveryRow) {
  Matrix m(2, 2, {1, 1, 2, 2});
  std::vector<float> bias{10, 20};
  AddRowVector(&m, bias);
  EXPECT_FLOAT_EQ(m(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(m(0, 1), 21.0f);
  EXPECT_FLOAT_EQ(m(1, 0), 12.0f);
  EXPECT_FLOAT_EQ(m(1, 1), 22.0f);
}

}  // namespace
}  // namespace leapme::nn
