#include "nn/activation.h"

#include <cmath>

#include <gtest/gtest.h>

namespace leapme::nn {
namespace {

TEST(ReluTest, ForwardClampsNegatives) {
  ReluLayer relu;
  Matrix input(1, 4, {-2, -0.5, 0, 3});
  Matrix output;
  relu.Forward(input, &output);
  EXPECT_FLOAT_EQ(output(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(output(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(output(0, 2), 0.0f);
  EXPECT_FLOAT_EQ(output(0, 3), 3.0f);
}

TEST(ReluTest, BackwardMasksGradient) {
  ReluLayer relu;
  Matrix input(1, 4, {-2, -0.5, 0, 3});
  Matrix output;
  relu.Forward(input, &output);
  Matrix grad_out(1, 4, {1, 1, 1, 1});
  Matrix grad_in;
  relu.Backward(grad_out, &grad_in);
  EXPECT_FLOAT_EQ(grad_in(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(grad_in(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(grad_in(0, 2), 0.0f);  // gradient at exactly 0 is 0
  EXPECT_FLOAT_EQ(grad_in(0, 3), 1.0f);
}

TEST(ReluTest, OutputDimIsIdentity) {
  ReluLayer relu;
  EXPECT_EQ(relu.OutputDim(17), 17u);
  EXPECT_TRUE(relu.Parameters().empty());
  EXPECT_EQ(relu.TypeName(), "relu");
}

TEST(TanhTest, ForwardAppliesTanh) {
  TanhLayer tanh_layer;
  Matrix input(1, 3, {-1, 0, 2});
  Matrix output;
  tanh_layer.Forward(input, &output);
  EXPECT_NEAR(output(0, 0), std::tanh(-1.0), 1e-6);
  EXPECT_NEAR(output(0, 1), 0.0, 1e-6);
  EXPECT_NEAR(output(0, 2), std::tanh(2.0), 1e-6);
}

TEST(TanhTest, BackwardUsesDerivative) {
  TanhLayer tanh_layer;
  Matrix input(1, 2, {0, 1});
  Matrix output;
  tanh_layer.Forward(input, &output);
  Matrix grad_out(1, 2, {1, 1});
  Matrix grad_in;
  tanh_layer.Backward(grad_out, &grad_in);
  // d tanh(0) = 1; d tanh(1) = 1 - tanh(1)^2.
  EXPECT_NEAR(grad_in(0, 0), 1.0, 1e-6);
  double t = std::tanh(1.0);
  EXPECT_NEAR(grad_in(0, 1), 1.0 - t * t, 1e-6);
}

}  // namespace
}  // namespace leapme::nn
