#include "nn/trainer.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace leapme::nn {
namespace {

// A small separable binary problem: label = (x0 + x1 > 0).
void MakeProblem(size_t n, Matrix* inputs, std::vector<int32_t>* labels,
                 uint64_t seed) {
  Rng rng(seed);
  inputs->Resize(n, 2);
  labels->resize(n);
  for (size_t i = 0; i < n; ++i) {
    double x0 = rng.NextDouble(-1, 1);
    double x1 = rng.NextDouble(-1, 1);
    (*inputs)(i, 0) = static_cast<float>(x0);
    (*inputs)(i, 1) = static_cast<float>(x1);
    (*labels)[i] = (x0 + x1) > 0 ? 1 : 0;
  }
}

TEST(TrainerTest, DefaultScheduleMatchesPaper) {
  TrainerOptions options;
  EXPECT_EQ(options.batch_size, 32u);
  ASSERT_EQ(options.schedule.size(), 3u);
  EXPECT_EQ(options.schedule[0].epochs, 10u);
  EXPECT_DOUBLE_EQ(options.schedule[0].learning_rate, 1e-3);
  EXPECT_EQ(options.schedule[1].epochs, 5u);
  EXPECT_DOUBLE_EQ(options.schedule[1].learning_rate, 1e-4);
  EXPECT_EQ(options.schedule[2].epochs, 5u);
  EXPECT_DOUBLE_EQ(options.schedule[2].learning_rate, 1e-5);
}

TEST(TrainerTest, FitReturnsOneLossPerEpoch) {
  Matrix inputs;
  std::vector<int32_t> labels;
  MakeProblem(128, &inputs, &labels, 3);
  Rng rng(9);
  Mlp mlp = BuildMlp(2, {8}, 2, rng);
  Trainer trainer;
  auto losses = trainer.Fit(mlp, inputs, labels);
  ASSERT_TRUE(losses.ok());
  EXPECT_EQ(losses->size(), 20u);  // 10 + 5 + 5
}

TEST(TrainerTest, LossDecreasesOverTraining) {
  Matrix inputs;
  std::vector<int32_t> labels;
  // Large enough that the paper's 20-epoch schedule performs a healthy
  // number of optimizer steps (batch 32 -> ~40 steps per epoch).
  MakeProblem(1280, &inputs, &labels, 4);
  Rng rng(10);
  Mlp mlp = BuildMlp(2, {8}, 2, rng);
  Trainer trainer;
  auto losses = trainer.Fit(mlp, inputs, labels);
  ASSERT_TRUE(losses.ok());
  EXPECT_LT(losses->back(), losses->front());
  EXPECT_LT(losses->back(), 0.3);
}

TEST(TrainerTest, RejectsEmptyInput) {
  Rng rng(11);
  Mlp mlp = BuildMlp(2, {4}, 2, rng);
  Trainer trainer;
  Matrix empty;
  std::vector<int32_t> labels;
  EXPECT_FALSE(trainer.Fit(mlp, empty, labels).ok());
}

TEST(TrainerTest, RejectsMismatchedLabels) {
  Rng rng(12);
  Mlp mlp = BuildMlp(2, {4}, 2, rng);
  Trainer trainer;
  Matrix inputs(4, 2);
  std::vector<int32_t> labels{0, 1};
  EXPECT_FALSE(trainer.Fit(mlp, inputs, labels).ok());
}

TEST(TrainerTest, RejectsZeroBatchSize) {
  TrainerOptions options;
  options.batch_size = 0;
  Trainer trainer(options);
  Rng rng(13);
  Mlp mlp = BuildMlp(2, {4}, 2, rng);
  Matrix inputs(4, 2);
  std::vector<int32_t> labels{0, 1, 0, 1};
  EXPECT_FALSE(trainer.Fit(mlp, inputs, labels).ok());
}

TEST(TrainerTest, RejectsEmptySchedule) {
  TrainerOptions options;
  options.schedule.clear();
  Trainer trainer(options);
  Rng rng(14);
  Mlp mlp = BuildMlp(2, {4}, 2, rng);
  Matrix inputs(4, 2);
  std::vector<int32_t> labels{0, 1, 0, 1};
  EXPECT_FALSE(trainer.Fit(mlp, inputs, labels).ok());
}

TEST(TrainerTest, DeterministicWithSameSeeds) {
  Matrix inputs;
  std::vector<int32_t> labels;
  MakeProblem(64, &inputs, &labels, 5);
  auto train_once = [&]() {
    Rng rng(15);
    Mlp mlp = BuildMlp(2, {8}, 2, rng);
    Trainer trainer;
    auto losses = trainer.Fit(mlp, inputs, labels);
    return losses->back();
  };
  EXPECT_DOUBLE_EQ(train_once(), train_once());
}

TEST(TrainerTest, BatchLargerThanDatasetWorks) {
  TrainerOptions options;
  options.batch_size = 1000;
  Trainer trainer(options);
  Matrix inputs;
  std::vector<int32_t> labels;
  MakeProblem(10, &inputs, &labels, 6);
  Rng rng(16);
  Mlp mlp = BuildMlp(2, {4}, 2, rng);
  auto losses = trainer.Fit(mlp, inputs, labels);
  EXPECT_TRUE(losses.ok());
}

TEST(TrainerTest, NoShuffleOptionStillTrains) {
  TrainerOptions options;
  options.shuffle = false;
  Trainer trainer(options);
  Matrix inputs;
  std::vector<int32_t> labels;
  MakeProblem(64, &inputs, &labels, 7);
  Rng rng(17);
  Mlp mlp = BuildMlp(2, {8}, 2, rng);
  auto losses = trainer.Fit(mlp, inputs, labels);
  ASSERT_TRUE(losses.ok());
  EXPECT_LT(losses->back(), losses->front());
}

}  // namespace
}  // namespace leapme::nn
