#include "nn/dense_layer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/loss.h"

namespace leapme::nn {
namespace {

TEST(DenseLayerTest, ForwardAppliesWeightsAndBias) {
  Matrix weights(2, 2, {1, 2, 3, 4});
  DenseLayer layer(weights, {10, 20});
  Matrix input(1, 2, {1, 1});
  Matrix output;
  layer.Forward(input, &output);
  EXPECT_FLOAT_EQ(output(0, 0), 1 + 3 + 10);
  EXPECT_FLOAT_EQ(output(0, 1), 2 + 4 + 20);
}

TEST(DenseLayerTest, InitializedWithinHeUniformBounds) {
  Rng rng(3);
  DenseLayer layer(100, 50, rng);
  const double limit = std::sqrt(6.0 / 100.0);
  const Matrix& w = layer.weights();
  float max_abs = 0.0f;
  for (size_t i = 0; i < w.rows(); ++i) {
    for (size_t j = 0; j < w.cols(); ++j) {
      max_abs = std::max(max_abs, std::fabs(w(i, j)));
    }
  }
  EXPECT_LE(max_abs, limit);
  EXPECT_GT(max_abs, limit * 0.5);  // not all tiny
  for (size_t j = 0; j < layer.bias().cols(); ++j) {
    EXPECT_FLOAT_EQ(layer.bias()(0, j), 0.0f);
  }
}

TEST(DenseLayerTest, OutputDimChecksInput) {
  Rng rng(5);
  DenseLayer layer(4, 7, rng);
  EXPECT_EQ(layer.OutputDim(4), 7u);
  EXPECT_EQ(layer.input_dim(), 4u);
  EXPECT_EQ(layer.output_dim(), 7u);
}

TEST(DenseLayerTest, ParametersExposeWeightAndBias) {
  Rng rng(7);
  DenseLayer layer(3, 2, rng);
  auto params = layer.Parameters();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0].name, "weights");
  EXPECT_EQ(params[1].name, "bias");
  EXPECT_EQ(params[0].value->rows(), 3u);
  EXPECT_EQ(params[1].value->cols(), 2u);
}

// Numerical gradient check: perturb each parameter, compare the measured
// loss slope against the analytic gradient from Backward.
TEST(DenseLayerTest, GradientsMatchNumericalDifferentiation) {
  Rng rng(11);
  DenseLayer layer(3, 2, rng);
  SoftmaxCrossEntropy loss;
  Matrix input(4, 3);
  for (size_t i = 0; i < input.size(); ++i) {
    input.data()[i] = static_cast<float>(rng.NextDouble(-1.0, 1.0));
  }
  std::vector<int32_t> labels{0, 1, 1, 0};

  auto compute_loss = [&]() {
    Matrix logits;
    layer.Forward(input, &logits);
    Matrix probabilities;
    return loss.Forward(logits, labels, &probabilities);
  };

  // Analytic gradients.
  Matrix logits;
  layer.Forward(input, &logits);
  Matrix probabilities;
  loss.Forward(logits, labels, &probabilities);
  Matrix grad_logits;
  loss.Backward(probabilities, labels, &grad_logits);
  Matrix grad_input;
  layer.Backward(grad_logits, &grad_input);

  auto params = layer.Parameters();
  const double epsilon = 1e-3;
  for (const Parameter& p : params) {
    for (size_t i = 0; i < p.value->size(); ++i) {
      float original = p.value->data()[i];
      p.value->data()[i] = original + static_cast<float>(epsilon);
      double loss_plus = compute_loss();
      p.value->data()[i] = original - static_cast<float>(epsilon);
      double loss_minus = compute_loss();
      p.value->data()[i] = original;
      double numerical = (loss_plus - loss_minus) / (2 * epsilon);
      double analytic = p.gradient->data()[i];
      EXPECT_NEAR(analytic, numerical, 5e-3)
          << p.name << " element " << i;
    }
  }
}

TEST(DenseLayerTest, InputGradientMatchesNumerical) {
  Rng rng(13);
  DenseLayer layer(3, 2, rng);
  SoftmaxCrossEntropy loss;
  Matrix input(2, 3);
  for (size_t i = 0; i < input.size(); ++i) {
    input.data()[i] = static_cast<float>(rng.NextDouble(-1.0, 1.0));
  }
  std::vector<int32_t> labels{1, 0};

  Matrix logits;
  layer.Forward(input, &logits);
  Matrix probabilities;
  loss.Forward(logits, labels, &probabilities);
  Matrix grad_logits;
  loss.Backward(probabilities, labels, &grad_logits);
  Matrix grad_input;
  layer.Backward(grad_logits, &grad_input);

  const double epsilon = 1e-3;
  for (size_t i = 0; i < input.size(); ++i) {
    float original = input.data()[i];
    input.data()[i] = original + static_cast<float>(epsilon);
    Matrix l1;
    layer.Forward(input, &l1);
    Matrix p1;
    double loss_plus = loss.Forward(l1, labels, &p1);
    input.data()[i] = original - static_cast<float>(epsilon);
    Matrix l2;
    layer.Forward(input, &l2);
    Matrix p2;
    double loss_minus = loss.Forward(l2, labels, &p2);
    input.data()[i] = original;
    double numerical = (loss_plus - loss_minus) / (2 * epsilon);
    EXPECT_NEAR(grad_input.data()[i], numerical, 5e-3) << "input " << i;
  }
}

}  // namespace
}  // namespace leapme::nn
