#include "nn/mlp.h"

#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace leapme::nn {
namespace {

Matrix XorInputs() {
  return Matrix(4, 2, {0, 0, 0, 1, 1, 0, 1, 1});
}

std::vector<int32_t> XorLabels() { return {0, 1, 1, 0}; }

TEST(MlpTest, BuildMlpLayerStructure) {
  Rng rng(1);
  Mlp mlp = BuildMlp(10, {128, 64}, 2, rng);
  // Dense-ReLU-Dense-ReLU-Dense.
  ASSERT_EQ(mlp.layer_count(), 5u);
  EXPECT_EQ(mlp.layer(0).TypeName(), "dense");
  EXPECT_EQ(mlp.layer(1).TypeName(), "relu");
  EXPECT_EQ(mlp.layer(2).TypeName(), "dense");
  EXPECT_EQ(mlp.layer(3).TypeName(), "relu");
  EXPECT_EQ(mlp.layer(4).TypeName(), "dense");
}

TEST(MlpTest, ForwardShape) {
  Rng rng(2);
  Mlp mlp = BuildMlp(3, {8}, 2, rng);
  Matrix input(5, 3);
  Matrix logits;
  mlp.Forward(input, &logits);
  EXPECT_EQ(logits.rows(), 5u);
  EXPECT_EQ(logits.cols(), 2u);
}

TEST(MlpTest, PredictProducesProbabilities) {
  Rng rng(3);
  Mlp mlp = BuildMlp(2, {4}, 2, rng);
  Matrix probabilities;
  mlp.Predict(XorInputs(), &probabilities);
  for (size_t r = 0; r < 4; ++r) {
    EXPECT_NEAR(probabilities(r, 0) + probabilities(r, 1), 1.0f, 1e-5);
  }
}

TEST(MlpTest, LearnsXor) {
  // XOR is not linearly separable: passing this test requires working
  // hidden-layer backpropagation.
  Rng rng(4);
  Mlp mlp = BuildMlp(2, {8}, 2, rng);
  AdamOptimizer adam(0.05);
  Matrix inputs = XorInputs();
  std::vector<int32_t> labels = XorLabels();
  double loss = 0.0;
  for (int epoch = 0; epoch < 500; ++epoch) {
    loss = mlp.TrainBatch(inputs, labels, adam);
  }
  EXPECT_LT(loss, 0.05);
  Matrix probabilities;
  mlp.Predict(inputs, &probabilities);
  for (size_t r = 0; r < 4; ++r) {
    int32_t predicted = probabilities(r, 1) >= 0.5f ? 1 : 0;
    EXPECT_EQ(predicted, labels[r]) << "row " << r;
  }
}

TEST(MlpTest, TrainBatchDecreasesLossOnSeparableData) {
  Rng rng(5);
  Mlp mlp = BuildMlp(1, {4}, 2, rng);
  Matrix inputs(4, 1, {-2, -1, 1, 2});
  std::vector<int32_t> labels{0, 0, 1, 1};
  AdamOptimizer adam(0.05);
  double first = mlp.TrainBatch(inputs, labels, adam);
  double last = first;
  for (int i = 0; i < 100; ++i) {
    last = mlp.TrainBatch(inputs, labels, adam);
  }
  EXPECT_LT(last, first);
  EXPECT_LT(last, 0.1);
}

TEST(MlpTest, ParametersCoverAllDenseLayers) {
  Rng rng(6);
  Mlp mlp = BuildMlp(3, {5, 4}, 2, rng);
  // Three dense layers, two parameters each.
  EXPECT_EQ(mlp.Parameters().size(), 6u);
}

TEST(MlpSerializationTest, SaveLoadRoundTrip) {
  Rng rng(7);
  Mlp mlp = BuildMlp(3, {4}, 2, rng);
  Matrix input(2, 3, {0.1f, -0.2f, 0.3f, 0.5f, 0.0f, -0.7f});
  Matrix before;
  mlp.Predict(input, &before);

  std::string path = ::testing::TempDir() + "/mlp_roundtrip.txt";
  ASSERT_TRUE(SaveMlp(mlp, path).ok());
  auto loaded = LoadMlp(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  Matrix after;
  loaded->Predict(input, &after);
  ASSERT_EQ(after.rows(), before.rows());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_NEAR(after.data()[i], before.data()[i], 1e-5);
  }
}

TEST(MlpSerializationTest, LoadMissingFileFails) {
  EXPECT_FALSE(LoadMlp("/nonexistent/model.txt").ok());
}

TEST(MlpSerializationTest, LoadRejectsBadHeader) {
  std::string path = ::testing::TempDir() + "/bad_header.txt";
  {
    std::ofstream out(path);
    out << "not-a-model 1\n";
  }
  auto loaded = LoadMlp(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(MlpSerializationTest, LoadRejectsTruncatedModel) {
  std::string path = ::testing::TempDir() + "/truncated.txt";
  {
    std::ofstream out(path);
    out << "leapme-mlp 1\n1\ndense\n2 2\n1 2 3\n";  // missing values
  }
  EXPECT_FALSE(LoadMlp(path).ok());
}

TEST(MlpSerializationTest, LoadRejectsUnknownLayerType) {
  std::string path = ::testing::TempDir() + "/unknown_layer.txt";
  {
    std::ofstream out(path);
    out << "leapme-mlp 1\n1\nconv2d\n";
  }
  EXPECT_FALSE(LoadMlp(path).ok());
}

}  // namespace
}  // namespace leapme::nn
