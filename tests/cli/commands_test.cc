#include "cli/commands.h"

#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/tsv_io.h"

namespace leapme::cli {
namespace {

StatusOr<Flags> ParseArgs(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "leapme");
  return Flags::Parse(static_cast<int>(argv.size()), argv.data());
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(GenerateCommandTest, WritesReadableTsv) {
  std::string out = TempPath("cli_gen.tsv");
  auto flags = ParseArgs({"generate", "--domain", "headphones", "--sources",
                          "4", "--entities", "6", "--seed", "3", "--out",
                          out.c_str()});
  ASSERT_TRUE(flags.ok());
  ASSERT_TRUE(RunGenerate(*flags).ok());
  auto dataset = data::ReadDatasetTsv(out);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->source_count(), 4u);
  EXPECT_GT(dataset->CountMatchingPairs(), 0u);
}

TEST(GenerateCommandTest, UnknownDomainFails) {
  auto flags = ParseArgs({"generate", "--domain", "spaceships"});
  ASSERT_TRUE(flags.ok());
  EXPECT_FALSE(RunGenerate(*flags).ok());
}

TEST(GenerateCommandTest, UnknownFlagFails) {
  auto flags = ParseArgs({"generate", "--domain", "tvs", "--sorces", "4"});
  ASSERT_TRUE(flags.ok());
  EXPECT_TRUE(RunGenerate(*flags).IsInvalidArgument());
}

class PipelineCommandsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_path_ = new std::string(TempPath("cli_pipeline.tsv"));
    auto flags =
        ParseArgs({"generate", "--domain", "tvs", "--sources", "5",
                   "--entities", "8", "--seed", "21", "--out",
                   data_path_->c_str()});
    ASSERT_TRUE(RunGenerate(*flags).ok());
  }

  static StatusOr<Flags> ParseArgs(std::vector<const char*> argv) {
    return cli::ParseArgs(std::move(argv));
  }

  static std::string* data_path_;
};

std::string* PipelineCommandsTest::data_path_ = nullptr;

TEST_F(PipelineCommandsTest, EvaluateRuns) {
  auto flags = ParseArgs({"evaluate", "--data", data_path_->c_str(),
                          "--domain", "tvs", "--emb-dim", "16",
                          "--train-fraction", "0.6"});
  ASSERT_TRUE(flags.ok());
  EXPECT_TRUE(RunEvaluate(*flags).ok());
}

TEST_F(PipelineCommandsTest, EvaluateWithoutDataFails) {
  auto flags = ParseArgs({"evaluate", "--domain", "tvs"});
  ASSERT_TRUE(flags.ok());
  EXPECT_TRUE(RunEvaluate(*flags).IsInvalidArgument());
}

TEST_F(PipelineCommandsTest, EvaluateBadFeaturesFails) {
  auto flags = ParseArgs({"evaluate", "--data", data_path_->c_str(),
                          "--features", "everything/nothing"});
  ASSERT_TRUE(flags.ok());
  EXPECT_FALSE(RunEvaluate(*flags).ok());
}

TEST_F(PipelineCommandsTest, MatchRuns) {
  auto flags = ParseArgs({"match", "--data", data_path_->c_str(),
                          "--domain", "tvs", "--emb-dim", "16",
                          "--limit", "3"});
  ASSERT_TRUE(flags.ok());
  EXPECT_TRUE(RunMatch(*flags).ok());
}

TEST_F(PipelineCommandsTest, ClusterRuns) {
  auto flags = ParseArgs({"cluster", "--data", data_path_->c_str(),
                          "--domain", "tvs", "--emb-dim", "16"});
  ASSERT_TRUE(flags.ok());
  EXPECT_TRUE(RunCluster(*flags).ok());
}

TEST_F(PipelineCommandsTest, StatsRuns) {
  auto flags = ParseArgs({"stats", "--data", data_path_->c_str()});
  ASSERT_TRUE(flags.ok());
  EXPECT_TRUE(RunStats(*flags).ok());
}

TEST_F(PipelineCommandsTest, StatsRequiresData) {
  auto flags = ParseArgs({"stats"});
  ASSERT_TRUE(flags.ok());
  EXPECT_TRUE(RunStats(*flags).IsInvalidArgument());
}

TEST_F(PipelineCommandsTest, ModelOutWritesModel) {
  std::string model_path = TempPath("cli_model.model");
  auto flags = ParseArgs({"evaluate", "--data", data_path_->c_str(),
                          "--domain", "tvs", "--emb-dim", "16",
                          "--model-out", model_path.c_str()});
  ASSERT_TRUE(flags.ok());
  ASSERT_TRUE(RunEvaluate(*flags).ok());
  std::ifstream check(model_path);
  EXPECT_TRUE(check.good());
}

TEST(RunCliTest, DispatchesAndReportsUsage) {
  const char* help[] = {"leapme"};
  EXPECT_EQ(RunCli(1, help), 0);  // bare invocation prints usage, exit 0
  const char* unknown[] = {"leapme", "frobnicate"};
  EXPECT_EQ(RunCli(2, unknown), 2);
  const char* bad_flag[] = {"leapme", "generate", "--out"};
  EXPECT_EQ(RunCli(3, bad_flag), 2);
  const char* failing[] = {"leapme", "evaluate", "--data", "/nonexistent"};
  EXPECT_EQ(RunCli(4, failing), 1);
}

}  // namespace
}  // namespace leapme::cli
