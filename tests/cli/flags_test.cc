#include "cli/flags.h"

#include <gtest/gtest.h>

namespace leapme::cli {
namespace {

StatusOr<Flags> ParseArgs(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "leapme");
  return Flags::Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, ParsesCommandAndFlags) {
  auto flags = ParseArgs({"generate", "--domain", "tvs", "--sources", "6"});
  ASSERT_TRUE(flags.ok()) << flags.status();
  EXPECT_EQ(flags->command(), "generate");
  EXPECT_EQ(flags->GetString("domain", ""), "tvs");
  EXPECT_EQ(flags->GetInt("sources", 0), 6);
}

TEST(FlagsTest, EqualsSyntax) {
  auto flags = ParseArgs({"match", "--threshold=0.7", "--data=x.tsv"});
  ASSERT_TRUE(flags.ok());
  EXPECT_DOUBLE_EQ(flags->GetDouble("threshold", 0.0), 0.7);
  EXPECT_EQ(flags->GetString("data", ""), "x.tsv");
}

TEST(FlagsTest, EmptyArgvIsUsageCase) {
  auto flags = ParseArgs({});
  ASSERT_TRUE(flags.ok());
  EXPECT_TRUE(flags->command().empty());
}

TEST(FlagsTest, MissingValueFails) {
  auto flags = ParseArgs({"evaluate", "--data"});
  EXPECT_FALSE(flags.ok());
}

TEST(FlagsTest, NonFlagTokenAfterCommandFails) {
  auto flags = ParseArgs({"evaluate", "stray"});
  EXPECT_FALSE(flags.ok());
}

TEST(FlagsTest, FallbacksUsedForMissingAndMalformed) {
  auto flags = ParseArgs({"evaluate", "--reps", "abc"});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->GetInt("reps", 5), 5);       // malformed -> fallback
  EXPECT_EQ(flags->GetInt("missing", 9), 9);    // absent -> fallback
  EXPECT_DOUBLE_EQ(flags->GetDouble("missing", 0.5), 0.5);
}

TEST(FlagsTest, HasReflectsPresence) {
  auto flags = ParseArgs({"evaluate", "--data", "x"});
  ASSERT_TRUE(flags.ok());
  EXPECT_TRUE(flags->Has("data"));
  EXPECT_FALSE(flags->Has("domain"));
}

TEST(FlagsTest, CheckAllowedCatchesTypos) {
  auto flags = ParseArgs({"evaluate", "--datq", "x"});
  ASSERT_TRUE(flags.ok());
  EXPECT_TRUE(flags->CheckAllowed({"data", "seed"}).IsInvalidArgument());
  EXPECT_TRUE(flags->CheckAllowed({"datq"}).ok());
}

TEST(FlagsTest, LastValueWinsOnRepeat) {
  auto flags = ParseArgs({"evaluate", "--seed", "1", "--seed", "2"});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->GetInt("seed", 0), 2);
}

}  // namespace
}  // namespace leapme::cli
