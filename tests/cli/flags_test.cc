#include "cli/flags.h"

#include <gtest/gtest.h>

namespace leapme::cli {
namespace {

StatusOr<Flags> ParseArgs(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "leapme");
  return Flags::Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, ParsesCommandAndFlags) {
  auto flags = ParseArgs({"generate", "--domain", "tvs", "--sources", "6"});
  ASSERT_TRUE(flags.ok()) << flags.status();
  EXPECT_EQ(flags->command(), "generate");
  EXPECT_EQ(flags->GetString("domain", ""), "tvs");
  EXPECT_EQ(flags->GetInt("sources", 0), 6);
}

TEST(FlagsTest, EqualsSyntax) {
  auto flags = ParseArgs({"match", "--threshold=0.7", "--data=x.tsv"});
  ASSERT_TRUE(flags.ok());
  EXPECT_DOUBLE_EQ(flags->GetDouble("threshold", 0.0), 0.7);
  EXPECT_EQ(flags->GetString("data", ""), "x.tsv");
}

TEST(FlagsTest, EmptyArgvIsUsageCase) {
  auto flags = ParseArgs({});
  ASSERT_TRUE(flags.ok());
  EXPECT_TRUE(flags->command().empty());
}

TEST(FlagsTest, MissingValueFails) {
  auto flags = ParseArgs({"evaluate", "--data"});
  EXPECT_FALSE(flags.ok());
}

TEST(FlagsTest, NonFlagTokenAfterCommandFails) {
  auto flags = ParseArgs({"evaluate", "stray"});
  EXPECT_FALSE(flags.ok());
}

TEST(FlagsTest, FallbacksUsedForMissingAndMalformed) {
  auto flags = ParseArgs({"evaluate", "--reps", "abc"});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->GetInt("reps", 5), 5);       // malformed -> fallback
  EXPECT_EQ(flags->GetInt("missing", 9), 9);    // absent -> fallback
  EXPECT_DOUBLE_EQ(flags->GetDouble("missing", 0.5), 0.5);
}

TEST(FlagsTest, HasReflectsPresence) {
  auto flags = ParseArgs({"evaluate", "--data", "x"});
  ASSERT_TRUE(flags.ok());
  EXPECT_TRUE(flags->Has("data"));
  EXPECT_FALSE(flags->Has("domain"));
}

TEST(FlagsTest, CheckAllowedCatchesTypos) {
  auto flags = ParseArgs({"evaluate", "--datq", "x"});
  ASSERT_TRUE(flags.ok());
  EXPECT_TRUE(flags->CheckAllowed({"data", "seed"}).IsInvalidArgument());
  EXPECT_TRUE(flags->CheckAllowed({"datq"}).ok());
}

TEST(FlagsTest, LastValueWinsOnRepeat) {
  auto flags = ParseArgs({"evaluate", "--seed", "1", "--seed", "2"});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->GetInt("seed", 0), 2);
}

TEST(FlagsTest, GetIntInRangeAcceptsValidValues) {
  auto flags = ParseArgs({"serve", "--port", "8080", "--max-batch=64"});
  ASSERT_TRUE(flags.ok());
  auto port = flags->GetIntInRange("port", 7207, 1, 65535);
  ASSERT_TRUE(port.ok()) << port.status();
  EXPECT_EQ(*port, 8080);
  auto batch = flags->GetIntInRange("max-batch", 256, 1, 65536);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(*batch, 64);
  // Absent flag yields the fallback, even when the fallback is outside
  // the range (0 = "unset" for --threads).
  auto absent = flags->GetIntInRange("threads", 0, 1, 65536);
  ASSERT_TRUE(absent.ok());
  EXPECT_EQ(*absent, 0);
}

TEST(FlagsTest, GetIntInRangeRejectsInsteadOfFallingBack) {
  auto flags = ParseArgs({"serve", "--port", "0", "--threads", "x",
                          "--max-batch", "2.5", "--seed", "-1"});
  ASSERT_TRUE(flags.ok());
  // Zero / out of range.
  auto port = flags->GetIntInRange("port", 7207, 1, 65535);
  ASSERT_FALSE(port.ok());
  EXPECT_TRUE(port.status().IsInvalidArgument());
  EXPECT_NE(port.status().message().find("port"), std::string::npos);
  // Non-numeric.
  auto threads = flags->GetIntInRange("threads", 0, 1, 65536);
  ASSERT_FALSE(threads.ok());
  EXPECT_TRUE(threads.status().IsInvalidArgument());
  EXPECT_NE(threads.status().message().find("threads"), std::string::npos);
  // Fractional.
  EXPECT_FALSE(flags->GetIntInRange("max-batch", 256, 1, 65536).ok());
  // Negative below min.
  EXPECT_FALSE(flags->GetIntInRange("seed", 7, 0, 1000).ok());
}

TEST(FlagsTest, GetDoubleInRangeValidatesPresentValues) {
  auto flags = ParseArgs({"evaluate", "--train-fraction", "0.8",
                          "--threshold", "abc", "--negative-ratio", "-2"});
  ASSERT_TRUE(flags.ok());
  auto fraction = flags->GetDoubleInRange("train-fraction", 0.5, 0.0, 1.0);
  ASSERT_TRUE(fraction.ok());
  EXPECT_DOUBLE_EQ(*fraction, 0.8);
  EXPECT_DOUBLE_EQ(*flags->GetDoubleInRange("missing", 0.5, 0.0, 1.0), 0.5);
  auto threshold = flags->GetDoubleInRange("threshold", 0.5, 0.0, 1.0);
  ASSERT_FALSE(threshold.ok());
  EXPECT_TRUE(threshold.status().IsInvalidArgument());
  EXPECT_NE(threshold.status().message().find("threshold"),
            std::string::npos);
  EXPECT_FALSE(flags->GetDoubleInRange("negative-ratio", 2.0, 0.0, 1e6).ok());
}

}  // namespace
}  // namespace leapme::cli
