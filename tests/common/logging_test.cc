#include "common/logging.h"

#include <gtest/gtest.h>

namespace leapme {
namespace {

TEST(LoggingTest, MinSeverityRoundTrip) {
  LogSeverity original = MinLogSeverity();
  SetMinLogSeverity(LogSeverity::kError);
  EXPECT_EQ(MinLogSeverity(), LogSeverity::kError);
  SetMinLogSeverity(original);
}

TEST(LoggingTest, InfoBelowThresholdDoesNotCrash) {
  LogSeverity original = MinLogSeverity();
  SetMinLogSeverity(LogSeverity::kError);
  LEAPME_LOG(Info) << "suppressed message";
  LEAPME_LOG(Warning) << "also suppressed";
  SetMinLogSeverity(original);
}

TEST(LoggingTest, CheckPassesOnTrueCondition) {
  LEAPME_CHECK(1 + 1 == 2) << "never shown";
  LEAPME_CHECK_EQ(4, 4);
  LEAPME_CHECK_NE(4, 5);
  LEAPME_CHECK_LT(1, 2);
  LEAPME_CHECK_LE(2, 2);
  LEAPME_CHECK_GT(3, 2);
  LEAPME_CHECK_GE(3, 3);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ LEAPME_CHECK(false) << "boom"; }, "Check failed");
}

TEST(LoggingDeathTest, CheckEqFailureAborts) {
  EXPECT_DEATH({ LEAPME_CHECK_EQ(1, 2); }, "Check failed");
}

TEST(LoggingDeathTest, FatalAborts) {
  EXPECT_DEATH({ LEAPME_LOG(Fatal) << "fatal message"; }, "fatal message");
}

}  // namespace
}  // namespace leapme
