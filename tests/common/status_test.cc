#include "common/status.h"

#include <gtest/gtest.h>

namespace leapme {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.message(), "");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "OK");
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  Status status = Status::InvalidArgument("bad input");
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad input");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::NotFound("x").ToString(), "NotFound: x");
  EXPECT_EQ(Status::IoError("disk").ToString(), "IoError: disk");
  EXPECT_EQ(Status::Corruption("bits").ToString(), "Corruption: bits");
}

TEST(StatusTest, PredicatesMatchOnlyOwnCode) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_FALSE(Status::NotFound("x").IsInvalidArgument());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CopyPreservesState) {
  Status original = Status::OutOfRange("index 7");
  Status copy = original;
  EXPECT_EQ(copy, original);
  EXPECT_EQ(copy.message(), "index 7");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int code = 0; code <= 9; ++code) {
    EXPECT_NE(StatusCodeToString(static_cast<StatusCode>(code)), "Unknown");
  }
}

Status FailingFunction() { return Status::Internal("inner"); }

Status Propagating() {
  LEAPME_RETURN_IF_ERROR(FailingFunction());
  return Status::OK();
}

Status NotPropagating() {
  LEAPME_RETURN_IF_ERROR(Status::OK());
  return Status::AlreadyExists("reached end");
}

TEST(StatusTest, ReturnIfErrorPropagatesFailure) {
  EXPECT_EQ(Propagating(), Status::Internal("inner"));
}

TEST(StatusTest, ReturnIfErrorPassesThroughOk) {
  EXPECT_EQ(NotPropagating(), Status::AlreadyExists("reached end"));
}

}  // namespace
}  // namespace leapme
