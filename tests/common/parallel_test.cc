#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

namespace leapme {
namespace {

/// Runs every test against a 4-wide global pool (the pool still works on a
/// single-core machine; workers just time-share) and restores the
/// environment-driven default afterwards.
class ParallelForTest : public ::testing::Test {
 protected:
  void SetUp() override { SetGlobalThreadCount(4); }
  void TearDown() override { SetGlobalThreadCount(0); }
};

TEST_F(ParallelForTest, CoversEveryIndexExactlyOnce) {
  constexpr size_t kN = 1013;  // prime: exercises a ragged tail chunk
  std::vector<std::atomic<int>> counts(kN);
  ParallelFor(0, kN, /*grain=*/7, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      counts[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST_F(ParallelForTest, EmptyRangeNeverInvokesBody) {
  std::atomic<int> calls{0};
  ParallelFor(5, 5, 1, [&](size_t, size_t) { ++calls; });
  ParallelFor(7, 3, 1, [&](size_t, size_t) { ++calls; });  // end < begin
  EXPECT_EQ(calls.load(), 0);
}

TEST_F(ParallelForTest, GrainLargerThanRangeRunsOneChunk) {
  std::mutex mu;
  std::vector<std::pair<size_t, size_t>> chunks;
  ParallelFor(10, 20, /*grain=*/100, [&](size_t begin, size_t end) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(begin, end);
  });
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].first, 10u);
  EXPECT_EQ(chunks[0].second, 20u);
}

TEST_F(ParallelForTest, GrainZeroIsTreatedAsOne) {
  std::atomic<size_t> calls{0};
  ParallelFor(0, 5, /*grain=*/0, [&](size_t begin, size_t end) {
    EXPECT_EQ(end, begin + 1);
    ++calls;
  });
  EXPECT_EQ(calls.load(), 5u);
}

TEST_F(ParallelForTest, ChunkBoundariesDependOnlyOnGrain) {
  // The determinism contract: the same (range, grain) yields the same
  // chunk set at any thread count.
  auto collect = [](size_t max_threads) {
    std::mutex mu;
    std::set<std::pair<size_t, size_t>> chunks;
    ParallelFor(3, 103, /*grain=*/9, max_threads,
                [&](size_t begin, size_t end) {
                  std::lock_guard<std::mutex> lock(mu);
                  chunks.emplace(begin, end);
                });
    return chunks;
  };
  const auto sequential = collect(1);
  const auto parallel = collect(4);
  EXPECT_EQ(sequential, parallel);
  EXPECT_EQ(sequential.size(), 12u);  // ceil(100 / 9)
}

TEST_F(ParallelForTest, PropagatesBodyException) {
  EXPECT_THROW(ParallelFor(0, 64, 1,
                           [&](size_t begin, size_t) {
                             if (begin == 17) {
                               throw std::runtime_error("chunk 17 failed");
                             }
                           }),
               std::runtime_error);
}

TEST_F(ParallelForTest, InlinePathReportsFirstException) {
  // max_threads == 1 claims chunks in ascending order, so the earliest
  // failing chunk's exception is the one observed.
  try {
    ParallelFor(0, 100, 10, /*max_threads=*/1, [&](size_t begin, size_t) {
      throw std::runtime_error("failed at " + std::to_string(begin));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "failed at 0");
  }
}

TEST_F(ParallelForTest, NestedCallsRunInlineWithoutDeadlock) {
  constexpr size_t kOuter = 8;
  constexpr size_t kInner = 32;
  std::vector<std::atomic<int>> counts(kOuter * kInner);
  ParallelFor(0, kOuter, 1, [&](size_t outer_begin, size_t outer_end) {
    for (size_t outer = outer_begin; outer < outer_end; ++outer) {
      ParallelFor(0, kInner, 4, [&](size_t begin, size_t end) {
        for (size_t inner = begin; inner < end; ++inner) {
          counts[outer * kInner + inner].fetch_add(1);
        }
      });
    }
  });
  for (size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "slot " << i;
  }
}

TEST_F(ParallelForTest, MaxThreadsOneStaysOnCallingThread) {
  const std::thread::id self = std::this_thread::get_id();
  ParallelFor(0, 100, 3, /*max_threads=*/1, [&](size_t, size_t) {
    EXPECT_EQ(std::this_thread::get_id(), self);
  });
}

TEST_F(ParallelForTest, StatusOkWhenAllChunksSucceed) {
  std::atomic<size_t> sum{0};
  Status status = ParallelForStatus(1, 101, 10, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    }
    return Status::OK();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(sum.load(), 5050u);
}

TEST_F(ParallelForTest, StatusReportsLowestFailingChunkSequentially) {
  Status status = ParallelForStatus(
      0, 100, 10,
      [&](size_t begin, size_t) -> Status {
        if (begin >= 30) {
          return Status::Internal("chunk at " + std::to_string(begin));
        }
        return Status::OK();
      },
      /*max_threads=*/1);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("chunk at 30"), std::string::npos)
      << status.ToString();
}

TEST_F(ParallelForTest, StatusFailurePropagatesInParallel) {
  Status status = ParallelForStatus(0, 256, 1, [&](size_t begin, size_t) {
    return begin == 200 ? Status::Internal("boom") : Status::OK();
  });
  EXPECT_FALSE(status.ok());
}

TEST(ThreadPoolTest, DirectPoolComputesCorrectSum) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(1, 100001, 64, /*max_threads=*/0,
                   [&](size_t begin, size_t end) {
                     uint64_t local = 0;
                     for (size_t i = begin; i < end; ++i) local += i;
                     sum.fetch_add(local, std::memory_order_relaxed);
                   });
  EXPECT_EQ(sum.load(), 5000050000ull);
}

TEST(ThreadPoolTest, ConcurrentSubmittersSerializeSafely) {
  ThreadPool pool(3);
  constexpr size_t kSubmitters = 4;
  constexpr size_t kN = 512;
  std::vector<std::vector<int>> hits(kSubmitters, std::vector<int>(kN, 0));
  std::vector<std::thread> submitters;
  for (size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      pool.ParallelFor(0, kN, 16, /*max_threads=*/0,
                       [&, s](size_t begin, size_t end) {
                         for (size_t i = begin; i < end; ++i) ++hits[s][i];
                       });
    });
  }
  for (std::thread& submitter : submitters) submitter.join();
  for (size_t s = 0; s < kSubmitters; ++s) {
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[s][i], 1) << "submitter " << s << " index " << i;
    }
  }
}

TEST(ParallelEnvTest, DefaultThreadCountParsesEnvironment) {
  const char* saved = std::getenv("LEAPME_THREADS");
  std::string saved_value = saved != nullptr ? saved : "";

  ::setenv("LEAPME_THREADS", "3", 1);
  EXPECT_EQ(DefaultThreadCount(), 3u);
  ::setenv("LEAPME_THREADS", "not-a-number", 1);
  EXPECT_GE(DefaultThreadCount(), 1u);  // falls back to hardware
  ::setenv("LEAPME_THREADS", "-2", 1);
  EXPECT_GE(DefaultThreadCount(), 1u);

  if (saved != nullptr) {
    ::setenv("LEAPME_THREADS", saved_value.c_str(), 1);
  } else {
    ::unsetenv("LEAPME_THREADS");
  }
}

TEST(ParallelEnvTest, SetGlobalThreadCountOverridesAndRestores) {
  SetGlobalThreadCount(2);
  EXPECT_EQ(GlobalThreadCount(), 2u);
  auto pool = GlobalThreadPool();
  EXPECT_EQ(pool->thread_count(), 2u);
  SetGlobalThreadCount(0);
  EXPECT_EQ(GlobalThreadCount(), DefaultThreadCount());
}

}  // namespace
}  // namespace leapme
