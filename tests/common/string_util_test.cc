#include "common/string_util.h"

#include <gtest/gtest.h>

namespace leapme {
namespace {

TEST(AsciiCaseTest, LowerAndUpper) {
  EXPECT_EQ(AsciiToLower("Hello World 42!"), "hello world 42!");
  EXPECT_EQ(AsciiToUpper("Hello World 42!"), "HELLO WORLD 42!");
  EXPECT_EQ(AsciiToLower(""), "");
}

TEST(StripWhitespaceTest, TrimsBothEnds) {
  EXPECT_EQ(StripAsciiWhitespace("  abc  "), "abc");
  EXPECT_EQ(StripAsciiWhitespace("\t\nabc\r "), "abc");
  EXPECT_EQ(StripAsciiWhitespace("abc"), "abc");
  EXPECT_EQ(StripAsciiWhitespace("   "), "");
  EXPECT_EQ(StripAsciiWhitespace(""), "");
}

TEST(SplitStringTest, KeepsEmptyPieces) {
  EXPECT_EQ(SplitString("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitString("a,,c", ','),
            (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(SplitString(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
}

TEST(SplitWhitespaceTest, DropsEmptyPieces) {
  EXPECT_EQ(SplitWhitespace("  a  b\tc \n"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(JoinStringsTest, Basics) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({"solo"}, "-"), "solo");
  EXPECT_EQ(JoinStrings({}, "-"), "");
}

TEST(ParseDoubleTest, ValidNumbers) {
  EXPECT_EQ(ParseDouble("3.5"), 3.5);
  EXPECT_EQ(ParseDouble("-2"), -2.0);
  EXPECT_EQ(ParseDouble("  42  "), 42.0);
  EXPECT_EQ(ParseDouble("1e3"), 1000.0);
  EXPECT_EQ(ParseDouble("0"), 0.0);
}

TEST(ParseDoubleTest, RejectsPartialAndInvalid) {
  EXPECT_FALSE(ParseDouble("3.5 MP").has_value());
  EXPECT_FALSE(ParseDouble("abc").has_value());
  EXPECT_FALSE(ParseDouble("").has_value());
  EXPECT_FALSE(ParseDouble("   ").has_value());
  EXPECT_FALSE(ParseDouble("12abc").has_value());
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("screen size", "screen"));
  EXPECT_FALSE(StartsWith("screen", "screen size"));
  EXPECT_TRUE(EndsWith("screen size", "size"));
  EXPECT_FALSE(EndsWith("size", "screen size"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_TRUE(EndsWith("abc", ""));
}

TEST(ReplaceAllTest, ReplacesEveryOccurrence) {
  EXPECT_EQ(ReplaceAll("a b c", " ", "_"), "a_b_c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");
  EXPECT_EQ(ReplaceAll("abc", "x", "y"), "abc");
  EXPECT_EQ(ReplaceAll("abc", "", "y"), "abc");
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("%s", ""), "");
  // Long output exceeding any small internal buffer.
  std::string long_output = StrFormat("%0512d", 1);
  EXPECT_EQ(long_output.size(), 512u);
}

}  // namespace
}  // namespace leapme
