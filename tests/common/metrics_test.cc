// Tests for the serving metrics primitives (common/metrics.h).

#include "common/metrics.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace leapme {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(CounterTest, ConcurrentIncrementsAreLossless) {
  Counter counter;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), static_cast<uint64_t>(kThreads * kPerThread));
}

TEST(BucketHistogramTest, PowerOfTwoBucketing) {
  BucketHistogram histogram(4);
  // bucket 0: 1, bucket 1: 2-3, bucket 2: 4-7, bucket 3: 8+ (open-ended).
  histogram.Record(1);
  histogram.Record(2);
  histogram.Record(3);
  histogram.Record(4);
  histogram.Record(7);
  histogram.Record(8);
  histogram.Record(1000);
  std::vector<uint64_t> counts = histogram.Snapshot();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 2u);
  EXPECT_EQ(counts[3], 2u);
}

TEST(BucketHistogramTest, ZeroCountsAsOne) {
  BucketHistogram histogram(3);
  histogram.Record(0);
  EXPECT_EQ(histogram.Snapshot()[0], 1u);
}

TEST(BucketHistogramTest, LabelsDescribeRanges) {
  BucketHistogram histogram(4);
  EXPECT_EQ(histogram.BucketLabel(0), "1");
  EXPECT_EQ(histogram.BucketLabel(1), "2-3");
  EXPECT_EQ(histogram.BucketLabel(2), "4-7");
  EXPECT_EQ(histogram.BucketLabel(3), "8+");
}

TEST(LatencyRecorderTest, EmptyWindowIsAllZero) {
  LatencyRecorder recorder(16);
  LatencyRecorder::Percentiles p = recorder.Snapshot();
  EXPECT_EQ(p.samples, 0u);
  EXPECT_EQ(p.p50, 0.0);
  EXPECT_EQ(p.p99, 0.0);
}

TEST(LatencyRecorderTest, PercentilesFromSortedWindow) {
  LatencyRecorder recorder(100);
  for (int i = 1; i <= 100; ++i) {
    recorder.Record(static_cast<double>(i));
  }
  LatencyRecorder::Percentiles p = recorder.Snapshot();
  EXPECT_EQ(p.samples, 100u);
  EXPECT_EQ(recorder.total_recorded(), 100u);
  // Nearest-rank percentiles over 1..100.
  EXPECT_GE(p.p50, 49.0);
  EXPECT_LE(p.p50, 51.0);
  EXPECT_GE(p.p95, 94.0);
  EXPECT_LE(p.p95, 96.0);
  EXPECT_GE(p.p99, 98.0);
  EXPECT_LE(p.p99, 100.0);
  EXPECT_EQ(p.max, 100.0);
}

TEST(LatencyRecorderTest, WindowEvictsOldestSamples) {
  LatencyRecorder recorder(4);
  for (int i = 0; i < 100; ++i) {
    recorder.Record(1000.0);  // all evicted below
  }
  recorder.Record(1.0);
  recorder.Record(2.0);
  recorder.Record(3.0);
  recorder.Record(4.0);
  LatencyRecorder::Percentiles p = recorder.Snapshot();
  EXPECT_EQ(p.samples, 4u);
  EXPECT_EQ(p.max, 4.0);
  EXPECT_EQ(recorder.total_recorded(), 104u);
}

TEST(LatencyRecorderTest, ConcurrentRecordsDoNotCrash) {
  LatencyRecorder recorder(64);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&recorder] {
      for (int i = 0; i < 1000; ++i) {
        recorder.Record(static_cast<double>(i));
        if (i % 100 == 0) recorder.Snapshot();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(recorder.total_recorded(), 4000u);
  EXPECT_EQ(recorder.Snapshot().samples, 64u);
}

}  // namespace
}  // namespace leapme
