#include "common/status_or.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace leapme {
namespace {

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(Status::NotFound("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST(StatusOrTest, OkStatusBecomesInternalError) {
  StatusOr<int> result{Status::OK()};
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(StatusOrTest, ValueOrReturnsFallbackOnError) {
  StatusOr<int> error(Status::Internal("x"));
  EXPECT_EQ(error.value_or(-1), -1);
  StatusOr<int> ok(5);
  EXPECT_EQ(ok.value_or(-1), 5);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> result(std::string("payload"));
  std::string extracted = std::move(result).value();
  EXPECT_EQ(extracted, "payload");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> result(std::string("abc"));
  EXPECT_EQ(result->size(), 3u);
}

TEST(StatusOrTest, WorksWithMoveOnlyTypes) {
  StatusOr<std::unique_ptr<int>> result(std::make_unique<int>(9));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 9);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status UseAssignOrReturn(int x, int* out) {
  LEAPME_ASSIGN_OR_RETURN(int value, ParsePositive(x));
  *out = value * 2;
  return Status::OK();
}

TEST(StatusOrTest, AssignOrReturnAssignsOnSuccess) {
  int out = 0;
  ASSERT_TRUE(UseAssignOrReturn(21, &out).ok());
  EXPECT_EQ(out, 42);
}

TEST(StatusOrTest, AssignOrReturnPropagatesError) {
  int out = 0;
  Status status = UseAssignOrReturn(-1, &out);
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_EQ(out, 0);
}

TEST(StatusOrTest, CopyableWhenValueCopyable) {
  StatusOr<std::string> a(std::string("x"));
  StatusOr<std::string> b = a;
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(b.ok());
  EXPECT_EQ(b.value(), "x");
}

}  // namespace
}  // namespace leapme
