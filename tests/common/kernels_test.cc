// Kernel parity suite (ctest label `kernels`): every entry of the
// dispatched kernel table must produce bit-identical results on the
// scalar and AVX2 paths — the canonical reduction-order contract of
// common/kernels/kernels.h, which is what keeps golden feature hashes
// and persisted models stable across machines. Runs in CI under both
// LEAPME_KERNEL=scalar and the default dispatch.

#include "common/kernels/kernels.h"

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/kernels/aligned.h"
#include "common/rng.h"

namespace leapme::kernels {
namespace {

// Odd sizes straddle every remainder-lane case of the 8-wide kernels;
// 300/301 are the GloVe-sized hot case.
const size_t kSizes[] = {1, 2, 7, 8, 9, 15, 16, 17, 63, 300, 301};

uint32_t Bits(float x) { return std::bit_cast<uint32_t>(x); }
uint64_t Bits(double x) { return std::bit_cast<uint64_t>(x); }

/// Fills `out` with a reproducible mix of magnitudes, signs, and exact
/// zeros (zeros exercise the no-zero-skip contract).
void FillMixed(Rng& rng, float* out, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const double mag = rng.NextDouble(-4.0, 4.0);
    out[i] = i % 13 == 0 ? 0.0f
                         : static_cast<float>(rng.NextDouble(-1.5, 1.5) *
                                              std::pow(10.0, mag));
  }
}

// Skips the current test on non-AVX2 hardware (the scalar-vs-scalar
// comparison would be vacuous). Must expand directly in the TEST body.
#define AVX2_OR_SKIP(var)                                             \
  const KernelTable* var = Avx2Kernels();                             \
  if (var == nullptr) {                                               \
    GTEST_SKIP() << "CPU lacks AVX2+FMA; nothing to compare against"; \
  }

class KernelParityTest : public ::testing::TestWithParam<size_t> {
 protected:
  void SetUp() override {
    const size_t n = GetParam();
    Rng rng(1234 + n);
    a_.resize(n);
    b_.resize(n);
    FillMixed(rng, a_.data(), n);
    FillMixed(rng, b_.data(), n);
  }

  AlignedFloatVector a_;
  AlignedFloatVector b_;
};

TEST_P(KernelParityTest, DotBitIdentical) {
  AVX2_OR_SKIP(avx2);
  const KernelTable& scalar = ScalarKernels();
  const size_t n = GetParam();
  EXPECT_EQ(Bits(scalar.dot(a_.data(), b_.data(), n)),
            Bits(avx2->dot(a_.data(), b_.data(), n)));
  EXPECT_EQ(Bits(scalar.squared_l2(a_.data(), b_.data(), n)),
            Bits(avx2->squared_l2(a_.data(), b_.data(), n)));
  float scalar3[3];
  float avx23[3];
  scalar.dot3(a_.data(), b_.data(), n, scalar3);
  avx2->dot3(a_.data(), b_.data(), n, avx23);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(Bits(scalar3[i]), Bits(avx23[i])) << "dot3[" << i << "]";
  }
  // dot3's fused pass must equal three independent dots, bit for bit —
  // CosineSimilarity relies on this to match its historical composition.
  EXPECT_EQ(Bits(scalar3[0]), Bits(scalar.dot(a_.data(), b_.data(), n)));
  EXPECT_EQ(Bits(scalar3[1]), Bits(scalar.dot(a_.data(), a_.data(), n)));
  EXPECT_EQ(Bits(scalar3[2]), Bits(scalar.dot(b_.data(), b_.data(), n)));
}

TEST_P(KernelParityTest, MixedPrecisionBitIdentical) {
  AVX2_OR_SKIP(avx2);
  const KernelTable& scalar = ScalarKernels();
  const size_t n = GetParam();
  Rng rng(99 + n);
  std::vector<double> w(n);
  for (size_t i = 0; i < n; ++i) w[i] = rng.NextDouble(-2.0, 2.0);
  EXPECT_EQ(Bits(scalar.dot_f32_f64(a_.data(), w.data(), n)),
            Bits(avx2->dot_f32_f64(a_.data(), w.data(), n)));

  std::vector<double> y_scalar = w;
  std::vector<double> y_avx2 = w;
  scalar.axpy_f32_f64(0.37, a_.data(), y_scalar.data(), n);
  avx2->axpy_f32_f64(0.37, a_.data(), y_avx2.data(), n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(Bits(y_scalar[i]), Bits(y_avx2[i])) << "axpy_f32_f64[" << i
                                                  << "]";
  }

  std::vector<double> sum_scalar(n, 0.25), sum_avx2(n, 0.25);
  std::vector<double> sq_scalar(n, 0.5), sq_avx2(n, 0.5);
  scalar.moments(a_.data(), sum_scalar.data(), sq_scalar.data(), n);
  avx2->moments(a_.data(), sum_avx2.data(), sq_avx2.data(), n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(Bits(sum_scalar[i]), Bits(sum_avx2[i])) << "sum[" << i << "]";
    EXPECT_EQ(Bits(sq_scalar[i]), Bits(sq_avx2[i])) << "sum_sq[" << i << "]";
  }
}

TEST_P(KernelParityTest, ElementwiseBitIdentical) {
  AVX2_OR_SKIP(avx2);
  const KernelTable& scalar = ScalarKernels();
  const size_t n = GetParam();

  auto expect_same = [n](const float* x, const float* y, const char* what) {
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(Bits(x[i]), Bits(y[i])) << what << "[" << i << "]";
    }
  };

  AlignedFloatVector y_scalar(a_.begin(), a_.end());
  AlignedFloatVector y_avx2(a_.begin(), a_.end());
  scalar.axpy(1.75f, b_.data(), y_scalar.data(), n);
  avx2->axpy(1.75f, b_.data(), y_avx2.data(), n);
  expect_same(y_scalar.data(), y_avx2.data(), "axpy");

  scalar.add(b_.data(), y_scalar.data(), n);
  avx2->add(b_.data(), y_avx2.data(), n);
  expect_same(y_scalar.data(), y_avx2.data(), "add");

  scalar.scale(0.125f, y_scalar.data(), n);
  avx2->scale(0.125f, y_avx2.data(), n);
  expect_same(y_scalar.data(), y_avx2.data(), "scale");

  AlignedFloatVector out_scalar(n), out_avx2(n);
  scalar.sub(a_.data(), b_.data(), out_scalar.data(), n);
  avx2->sub(a_.data(), b_.data(), out_avx2.data(), n);
  expect_same(out_scalar.data(), out_avx2.data(), "sub");

  scalar.abs_diff(a_.data(), b_.data(), out_scalar.data(), n);
  avx2->abs_diff(a_.data(), b_.data(), out_avx2.data(), n);
  expect_same(out_scalar.data(), out_avx2.data(), "abs_diff");

  // standardize: mean from a_, stddev strictly positive.
  AlignedFloatVector stddev(n);
  for (size_t i = 0; i < n; ++i) {
    stddev[i] = 0.5f + std::fabs(b_[i]);
  }
  AlignedFloatVector row_scalar(b_.begin(), b_.end());
  AlignedFloatVector row_avx2(b_.begin(), b_.end());
  scalar.standardize(a_.data(), stddev.data(), row_scalar.data(), n);
  avx2->standardize(a_.data(), stddev.data(), row_avx2.data(), n);
  expect_same(row_scalar.data(), row_avx2.data(), "standardize");
}

TEST_P(KernelParityTest, GemmTransposeBBitIdentical) {
  AVX2_OR_SKIP(avx2);
  const KernelTable& scalar = ScalarKernels();
  const size_t k = GetParam();
  // Odd row/column counts exercise the 2x4 micro-kernel's edge handling.
  const size_t rows = 5;
  const size_t m = 7;
  Rng rng(4321 + k);
  AlignedFloatVector a(rows * k);
  AlignedFloatVector b(m * k);
  FillMixed(rng, a.data(), a.size());
  FillMixed(rng, b.data(), b.size());
  AlignedFloatVector out_scalar(rows * m), out_avx2(rows * m);
  scalar.gemm_tb(a.data(), b.data(), out_scalar.data(), rows, k, m);
  avx2->gemm_tb(a.data(), b.data(), out_avx2.data(), rows, k, m);
  for (size_t i = 0; i < out_scalar.size(); ++i) {
    EXPECT_EQ(Bits(out_scalar[i]), Bits(out_avx2[i])) << "out[" << i << "]";
  }
  // Every output element must equal the table's own dot of the row pair:
  // the blocked micro-kernel may reorder which elements it computes when,
  // but never the per-element reduction order.
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < m; ++j) {
      EXPECT_EQ(Bits(out_scalar[i * m + j]),
                Bits(scalar.dot(a.data() + i * k, b.data() + j * k, k)))
          << "element (" << i << "," << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSizes, KernelParityTest,
                         ::testing::ValuesIn(kSizes));

// Tag probing is integer-exact, so "parity" here is a full functional
// check of both implementations against a reference loop: every needle
// value over randomized tag lines, plus the all-match / no-match edges.
TEST(TagProbeParityTest, MatchesReferenceOnBothPaths) {
  const KernelTable& scalar = ScalarKernels();
  const KernelTable* avx2 = Avx2Kernels();
  Rng rng(977);
  uint8_t tags[16];
  for (int round = 0; round < 64; ++round) {
    for (auto& t : tags) {
      // A narrow byte range forces plenty of duplicate-tag collisions.
      t = static_cast<uint8_t>(rng.NextInt(0, round % 2 == 0 ? 255 : 7));
    }
    for (int needle = 0; needle <= 255; ++needle) {
      const auto tag = static_cast<uint8_t>(needle);
      uint32_t want = 0;
      for (size_t i = 0; i < 16; ++i) {
        want |= static_cast<uint32_t>(tags[i] == tag) << i;
      }
      ASSERT_EQ(scalar.tag_probe16(tags, tag), want) << "round " << round;
      if (avx2 != nullptr) {
        ASSERT_EQ(avx2->tag_probe16(tags, tag), want) << "round " << round;
      }
    }
  }
}

TEST(TagProbeParityTest, AllMatchAndNoMatchEdges) {
  const KernelTable& scalar = ScalarKernels();
  const KernelTable* avx2 = Avx2Kernels();
  uint8_t tags[16];
  std::memset(tags, 0xAB, sizeof(tags));
  EXPECT_EQ(scalar.tag_probe16(tags, 0xAB), 0xFFFFu);
  EXPECT_EQ(scalar.tag_probe16(tags, 0xAC), 0u);
  if (avx2 != nullptr) {
    EXPECT_EQ(avx2->tag_probe16(tags, 0xAB), 0xFFFFu);
    EXPECT_EQ(avx2->tag_probe16(tags, 0xAC), 0u);
  }
  // The active table (whatever LEAPME_KERNEL selected) agrees too.
  EXPECT_EQ(Active().tag_probe16(tags, 0xAB), 0xFFFFu);
}

TEST(KernelEdgeCaseTest, AllZeroVectors) {
  const KernelTable& scalar = ScalarKernels();
  const size_t n = 301;
  AlignedFloatVector zeros(n, 0.0f);
  EXPECT_EQ(Bits(scalar.dot(zeros.data(), zeros.data(), n)), Bits(0.0f));
  if (const KernelTable* avx2 = Avx2Kernels()) {
    EXPECT_EQ(Bits(avx2->dot(zeros.data(), zeros.data(), n)), Bits(0.0f));
    EXPECT_EQ(Bits(avx2->squared_l2(zeros.data(), zeros.data(), n)),
              Bits(0.0f));
  }
}

TEST(KernelEdgeCaseTest, DenormalInputsBitIdentical) {
  AVX2_OR_SKIP(avx2);
  const KernelTable& scalar = ScalarKernels();
  const size_t n = 19;
  AlignedFloatVector a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    // Denormal magnitudes around FLT_MIN / 2^20, alternating signs.
    a[i] = std::ldexp(1.0f + static_cast<float>(i) * 0.25f, -146) *
           (i % 2 == 0 ? 1.0f : -1.0f);
    b[i] = std::ldexp(3.0f + static_cast<float>(i), -140);
  }
  EXPECT_EQ(Bits(scalar.dot(a.data(), b.data(), n)),
            Bits(avx2->dot(a.data(), b.data(), n)));
  AlignedFloatVector y_scalar(b.begin(), b.end());
  AlignedFloatVector y_avx2(b.begin(), b.end());
  scalar.axpy(0.5f, a.data(), y_scalar.data(), n);
  avx2->axpy(0.5f, a.data(), y_avx2.data(), n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(Bits(y_scalar[i]), Bits(y_avx2[i])) << i;
  }
}

TEST(KernelEdgeCaseTest, NonFiniteValuesPropagate) {
  // 0 * NaN = NaN and 0 * Inf = NaN: kernels must never shortcut a zero
  // multiplier (the bug the GEMM zero-skip removal fixed).
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  const size_t n = 9;
  AlignedFloatVector x(n, nan);
  x[4] = inf;
  for (const KernelTable* table :
       {&ScalarKernels(), Avx2Kernels()}) {
    if (table == nullptr) continue;
    AlignedFloatVector y(n, 1.0f);
    table->axpy(0.0f, x.data(), y.data(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(std::isnan(y[i])) << table->name << " y[" << i << "]";
    }
    AlignedFloatVector ones(n, 1.0f);
    EXPECT_TRUE(std::isnan(table->dot(x.data(), ones.data(), n)))
        << table->name;
  }
}

TEST(KernelReductionOrderTest, DotFollowsCanonicalContract) {
  // Reference implementation of the documented contract: element i
  // accumulates into lane (i mod 8); lanes combine as
  // ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)).
  const size_t n = 301;
  Rng rng(7);
  AlignedFloatVector a(n), b(n);
  FillMixed(rng, a.data(), n);
  FillMixed(rng, b.data(), n);
  float lanes[8] = {0};
  for (size_t i = 0; i < n; ++i) {
    lanes[i % 8] += a[i] * b[i];
  }
  const float t0 = lanes[0] + lanes[4];
  const float t1 = lanes[1] + lanes[5];
  const float t2 = lanes[2] + lanes[6];
  const float t3 = lanes[3] + lanes[7];
  const float expected = (t0 + t2) + (t1 + t3);
  EXPECT_EQ(Bits(ScalarKernels().dot(a.data(), b.data(), n)),
            Bits(expected));
  if (const KernelTable* avx2 = Avx2Kernels()) {
    EXPECT_EQ(Bits(avx2->dot(a.data(), b.data(), n)), Bits(expected));
  }
}

TEST(KernelDispatchTest, ActiveRespectsEnvironment) {
  const KernelTable& active = Active();
  EXPECT_TRUE(std::strcmp(active.name, "scalar") == 0 ||
              std::strcmp(active.name, "avx2") == 0)
      << active.name;
  EXPECT_STREQ(ActiveKernelName(), active.name);
  const char* requested = std::getenv("LEAPME_KERNEL");
  if (requested != nullptr && std::strcmp(requested, "scalar") == 0) {
    EXPECT_STREQ(active.name, "scalar");
  }
  if (Avx2Kernels() == nullptr) {
    EXPECT_STREQ(active.name, "scalar");
  }
  // Dispatch is decided once: repeated calls return the same table.
  EXPECT_EQ(&Active(), &active);
}

}  // namespace
}  // namespace leapme::kernels
