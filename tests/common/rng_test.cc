#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace leapme {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDifferentStreams) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ReseedResetsStream) {
  Rng rng(7);
  uint64_t first = rng.Next();
  rng.Next();
  rng.Seed(7);
  EXPECT_EQ(rng.Next(), first);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(5);
  for (uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1000000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedOneAlwaysZero) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.NextBounded(1), 0u);
  }
}

TEST(RngTest, NextBoundedCoversAllResidues) {
  Rng rng(13);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    seen.insert(rng.NextBounded(5));
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(17);
  for (int i = 0; i < 300; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoubleRangeRespectsBounds) {
  Rng rng(23);
  for (int i = 0; i < 500; ++i) {
    double v = rng.NextDouble(-2.5, 4.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 4.5);
  }
}

TEST(RngTest, NextDoubleIsRoughlyUniform) {
  Rng rng(29);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextDouble();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, GaussianHasZeroMeanUnitVariance) {
  Rng rng(31);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  double mean = sum / n;
  double variance = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(variance, 1.0, 0.1);
}

TEST(RngTest, NextBoolProbability) {
  Rng rng(37);
  int positives = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBool(0.3)) ++positives;
  }
  EXPECT_NEAR(positives / static_cast<double>(n), 0.3, 0.03);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(41);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(43);
  std::vector<int> empty;
  rng.Shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{9};
  rng.Shuffle(one);
  EXPECT_EQ(one, std::vector<int>{9});
}

TEST(RngTest, SampleIndicesDistinct) {
  Rng rng(47);
  std::vector<size_t> sample = rng.SampleIndices(20, 8);
  EXPECT_EQ(sample.size(), 8u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 8u);
  for (size_t index : sample) {
    EXPECT_LT(index, 20u);
  }
}

TEST(RngTest, SampleIndicesMoreThanAvailableReturnsPermutation) {
  Rng rng(53);
  std::vector<size_t> sample = rng.SampleIndices(5, 50);
  EXPECT_EQ(sample.size(), 5u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(61);
  Rng child = parent.Fork();
  // The child stream differs from the parent's continued stream.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.Next() == child.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~uint64_t{0});
  Rng rng(67);
  std::vector<int> v{1, 2, 3};
  std::shuffle(v.begin(), v.end(), rng);  // compiles and runs
  EXPECT_EQ(v.size(), 3u);
}

TEST(Mix64Test, DeterministicAndSpread) {
  EXPECT_EQ(Mix64(42), Mix64(42));
  EXPECT_NE(Mix64(42), Mix64(43));
}

TEST(HashBytesTest, KnownProperties) {
  EXPECT_EQ(HashBytes("abc", 3), HashBytes("abc", 3));
  EXPECT_NE(HashBytes("abc", 3), HashBytes("abd", 3));
  EXPECT_NE(HashBytes("", 0), HashBytes("a", 1));
}

}  // namespace
}  // namespace leapme
