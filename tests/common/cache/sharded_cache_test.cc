// Tests for the sharded set-associative cache: geometry resolution,
// single-key LRU-equivalent semantics (CLOCK second chance), capacity
// and eviction accounting, batched-vs-sequential probe parity, the
// allocation-free hit path, a many-thread stress hammer (the TSan
// target), and a chaos re-run proving degraded scores are never cached.

#include "common/cache/sharded_cache.h"

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/deadline.h"
#include "common/faults/fault_injector.h"
#include "common/rng.h"
#include "core/leapme.h"
#include "data/domain.h"
#include "data/generator.h"
#include "data/splitting.h"
#include "embedding/caching_model.h"
#include "embedding/synthetic_model.h"
#include "serve/matcher_service.h"

namespace {
/// Counts every scalar operator-new in this binary. The hit-path tests
/// snapshot it around a probe window and assert the delta is zero —
/// the direct form of "a cache hit allocates nothing".
std::atomic<uint64_t> g_allocations{0};
}  // namespace

// GCC pairs the replaced operator new with the replaced delete at some
// call sites and then flags the malloc/free inside them as mismatched;
// the shim is the canonical malloc-backed replacement, so silence it.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* ptr = std::malloc(size)) {
    return ptr;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* ptr = std::malloc(size)) {
    return ptr;
  }
  throw std::bad_alloc();
}
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
#pragma GCC diagnostic pop

namespace leapme::cache {
namespace {

TEST(CacheShapeTest, ResolvesDefaultGeometriesExactly) {
  // The serve defaults: 65536-entry embedding cache, 4096-entry property
  // cache, both at the default 16 shards.
  const CacheShape embedding = ComputeCacheShape(1 << 16, 16);
  EXPECT_EQ(embedding.shards, 16u);
  EXPECT_EQ(embedding.buckets_per_shard, 256u);
  EXPECT_EQ(embedding.slot_capacity, 1u << 16);

  const CacheShape property = ComputeCacheShape(4096, 16);
  EXPECT_EQ(property.shards, 16u);
  EXPECT_EQ(property.buckets_per_shard, 16u);
  EXPECT_EQ(property.slot_capacity, 4096u);
}

TEST(CacheShapeTest, RoundsUpToBucketGridAndClampsTinyCaches) {
  // Non-power-of-two capacity rounds up to whole power-of-two buckets.
  const CacheShape odd = ComputeCacheShape(1000, 4);
  EXPECT_EQ(odd.shards, 4u);
  EXPECT_GE(odd.slot_capacity, 1000u);
  EXPECT_EQ(odd.slot_capacity,
            odd.shards * odd.buckets_per_shard * kSlotsPerBucket);
  EXPECT_EQ(std::popcount(odd.buckets_per_shard), 1);

  // A tiny cache cannot be multiplied by a big shard request: shards
  // are clamped to capacity / 16.
  const CacheShape tiny = ComputeCacheShape(16, 1024);
  EXPECT_EQ(tiny.shards, 1u);
  EXPECT_EQ(tiny.slot_capacity, 16u);
  const CacheShape one = ComputeCacheShape(1, 0);
  EXPECT_EQ(one.shards, 1u);
  EXPECT_EQ(one.slot_capacity, 16u);

  // Shard requests round down to a power of two.
  EXPECT_EQ(ComputeCacheShape(1 << 16, 12).shards, 8u);
}

TEST(CacheShapeTest, DefaultShardsComeFromEnvironment) {
  const char* saved = std::getenv("LEAPME_CACHE_SHARDS");
  const std::string restore = saved ? saved : "";

  ::unsetenv("LEAPME_CACHE_SHARDS");
  EXPECT_EQ(DefaultCacheShards(), 16u);
  ::setenv("LEAPME_CACHE_SHARDS", "8", 1);
  EXPECT_EQ(DefaultCacheShards(), 8u);
  ::setenv("LEAPME_CACHE_SHARDS", "12", 1);  // rounds down to pow2
  EXPECT_EQ(DefaultCacheShards(), 8u);
  ::setenv("LEAPME_CACHE_SHARDS", "4096", 1);  // clamped to 1024
  EXPECT_EQ(DefaultCacheShards(), 1024u);
  ::setenv("LEAPME_CACHE_SHARDS", "zero", 1);  // malformed -> default
  EXPECT_EQ(DefaultCacheShards(), 16u);

  if (saved) {
    ::setenv("LEAPME_CACHE_SHARDS", restore.c_str(), 1);
  } else {
    ::unsetenv("LEAPME_CACHE_SHARDS");
  }
}

TEST(ShardedCacheTest, InsertThenLookupRoundTripsWithExactCounters) {
  ShardedCache<uint64_t> cache(256, 4);
  uint64_t value = 0;
  auto read = [&value](const uint64_t& v) { value = v; };

  EXPECT_FALSE(cache.Lookup("absent", read));
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);

  cache.Insert("alpha", 41);
  cache.Insert("beta", 42);
  ASSERT_TRUE(cache.Lookup("alpha", read));
  EXPECT_EQ(value, 41u);
  ASSERT_TRUE(cache.Lookup("beta", read));
  EXPECT_EQ(value, 42u);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_LE(cache.max_probe(), kSlotsPerBucket);

  // Duplicate inserts are dropped, first writer wins (the LRU contract).
  cache.Insert("alpha", 99);
  ASSERT_TRUE(cache.Lookup("alpha", read));
  EXPECT_EQ(value, 41u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ShardedCacheTest, SecondChanceKeepsRecentlyTouchedKeys) {
  // One shard, one 16-slot bucket: every key contends for the same
  // bucket, so CLOCK eviction order is fully deterministic.
  ShardedCache<int> cache(kSlotsPerBucket, 1);
  ASSERT_EQ(cache.capacity(), kSlotsPerBucket);
  auto ignore = [](const int&) {};
  auto key = [](size_t i) { return "key" + std::to_string(i); };
  for (size_t i = 0; i < kSlotsPerBucket; ++i) {
    cache.Insert(key(i), static_cast<int>(i));
  }
  // Every slot is referenced, so the first overflow insert sweeps the
  // whole clock (clearing all reference bytes) and evicts slot 0.
  cache.Insert("new0", -1);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(cache.Peek(key(0), ignore));

  // Touch keys 1..8; they regain their reference byte. The next
  // overflow insert must skip all of them and evict the first cold
  // slot — key 9 — even though key 9 was inserted after keys 1..8.
  for (size_t i = 1; i <= 8; ++i) {
    ASSERT_TRUE(cache.Lookup(key(i), ignore)) << i;
  }
  cache.Insert("new1", -2);
  EXPECT_EQ(cache.evictions(), 2u);
  EXPECT_FALSE(cache.Peek(key(9), ignore));
  for (size_t i = 1; i <= 8; ++i) {
    EXPECT_TRUE(cache.Peek(key(i), ignore)) << i;
  }
  EXPECT_TRUE(cache.Peek("new0", ignore));
  EXPECT_TRUE(cache.Peek("new1", ignore));
}

TEST(ShardedCacheTest, PeekLeavesCountersAndClockUntouched) {
  ShardedCache<int> cache(kSlotsPerBucket, 1);
  auto ignore = [](const int&) {};
  auto key = [](size_t i) { return "key" + std::to_string(i); };
  for (size_t i = 0; i < kSlotsPerBucket; ++i) {
    cache.Insert(key(i), static_cast<int>(i));
  }
  cache.Insert("new0", -1);  // full sweep, evicts slot 0, hand at 1

  // Peeking key 1 must not set its reference byte: the next eviction
  // still takes it, exactly as if it had never been looked at.
  for (int round = 0; round < 4; ++round) {
    EXPECT_TRUE(cache.Peek(key(1), ignore));
  }
  const uint64_t hits = cache.hits();
  const uint64_t misses = cache.misses();
  EXPECT_FALSE(cache.Peek("absent", ignore));
  EXPECT_EQ(cache.hits(), hits);
  EXPECT_EQ(cache.misses(), misses);

  cache.Insert("new1", -2);
  EXPECT_FALSE(cache.Peek(key(1), ignore));
}

TEST(ShardedCacheTest, CapacityAndEvictionBoundsHoldUnderChurn) {
  constexpr size_t kCapacity = 256;
  ShardedCache<uint64_t> cache(kCapacity, 8);
  ASSERT_EQ(cache.capacity(), kCapacity);
  const size_t inserted = 10 * kCapacity;
  for (size_t i = 0; i < inserted; ++i) {
    cache.Insert("churn-key-" + std::to_string(i), i);
  }
  // Every insert of a distinct key either filled an empty slot or
  // evicted exactly one resident, so the books must balance.
  EXPECT_LE(cache.size(), cache.capacity());
  EXPECT_EQ(cache.size() + cache.evictions(), inserted);
  EXPECT_GT(cache.evictions(), 0u);
  EXPECT_LE(cache.max_probe(), kSlotsPerBucket);
}

TEST(ShardedCacheTest, BatchedLookupMatchesSequentialProbes) {
  constexpr size_t kKeys = 512;
  ShardedCache<uint64_t> batched(1024, 8);
  ShardedCache<uint64_t> sequential(1024, 8);
  std::vector<std::string> keys;
  for (size_t i = 0; i < kKeys; ++i) {
    keys.push_back("parity-key-" + std::to_string(i));
  }
  // Populate even keys only; odd keys probe as misses.
  for (size_t i = 0; i < kKeys; i += 2) {
    batched.Insert(keys[i], i * 31);
    sequential.Insert(keys[i], i * 31);
  }

  std::vector<std::string_view> views(keys.begin(), keys.end());
  std::vector<uint8_t> found(kKeys, 2);
  std::vector<uint64_t> values(kKeys, 0);
  const uint64_t misses_before = batched.misses();
  const size_t hit_count = batched.LookupBatch(
      views, found.data(),
      [&values](size_t i, const uint64_t& v) { values[i] = v; });

  size_t expected_hits = 0;
  for (size_t i = 0; i < kKeys; ++i) {
    uint64_t expected = 0;
    const bool present = sequential.Lookup(
        keys[i], [&expected](const uint64_t& v) { expected = v; });
    ASSERT_EQ(found[i] != 0, present) << keys[i];
    if (present) {
      EXPECT_EQ(values[i], expected) << keys[i];
      ++expected_hits;
    }
  }
  EXPECT_EQ(hit_count, expected_hits);
  // The counter contract: a batch counts its hits but leaves misses to
  // the caller's counted resolve step.
  EXPECT_EQ(batched.hits(), expected_hits);
  EXPECT_EQ(batched.misses(), misses_before);
}

TEST(ShardedCacheTest, HitPathDoesNotAllocate) {
  constexpr size_t kKeys = 64;
  ShardedCache<uint64_t> cache(256, 4);
  std::vector<std::string> keys;
  for (size_t i = 0; i < kKeys; ++i) {
    keys.push_back("hot-key-" + std::to_string(i));
  }
  for (size_t i = 0; i < kKeys; ++i) {
    cache.Insert(keys[i], i);
  }
  // Everything the probes need is built before the window opens.
  std::vector<std::string_view> views(keys.begin(), keys.end());
  uint8_t found[kKeys];
  uint64_t sink = 0;
  size_t hits = 0;

  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int round = 0; round < 100; ++round) {
    for (size_t i = 0; i < kKeys; ++i) {
      hits += cache.Lookup(views[i],
                           [&sink](const uint64_t& v) { sink += v; })
                  ? 1
                  : 0;
    }
    hits += cache.LookupBatch(
        views, found, [&sink](size_t, const uint64_t& v) { sink += v; });
  }
  const uint64_t after = g_allocations.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u) << "cache hits allocated";
  EXPECT_EQ(hits, 100u * kKeys * 2);
  EXPECT_NE(sink, 0u);
}

TEST(ShardedCacheTest, ManyThreadsHammerOverlappingKeys) {
  // Thread count from LEAPME_CACHE_THREADS (ci runs 1 and 8; default 16
  // to keep the race surface wide under TSan). The key space is ~2x the
  // capacity so lookups, inserts, batches, and evictions all interleave
  // on overlapping shards; each value encodes its key index, so any
  // torn or misfiled read fails loudly.
  size_t threads = 16;
  if (const char* env = std::getenv("LEAPME_CACHE_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1 && parsed <= 64) {
      threads = static_cast<size_t>(parsed);
    }
  }
  constexpr size_t kKeySpace = 512;
  constexpr size_t kIterations = 4000;
  ShardedCache<uint64_t> cache(kKeySpace / 2, 8);
  std::vector<std::string> keys;
  for (size_t i = 0; i < kKeySpace; ++i) {
    keys.push_back("stress-key-" + std::to_string(i));
  }
  auto value_of = [](size_t i) {
    return static_cast<uint64_t>(i) * 2654435761u + 7;
  };

  std::atomic<uint64_t> bad_values{0};
  std::vector<std::thread> workers;
  for (size_t tid = 0; tid < threads; ++tid) {
    workers.emplace_back([&, tid] {
      Rng rng(1000 + tid);
      std::vector<std::string_view> wave(16);
      uint8_t found[16];
      for (size_t iter = 0; iter < kIterations; ++iter) {
        const auto pick =
            static_cast<size_t>(rng.NextInt(0, kKeySpace - 1));
        const auto op = rng.NextInt(0, 9);
        if (op < 5) {
          cache.Lookup(keys[pick], [&](const uint64_t& v) {
            if (v != value_of(pick)) {
              bad_values.fetch_add(1, std::memory_order_relaxed);
            }
          });
        } else if (op < 8) {
          cache.Insert(keys[pick], value_of(pick));
        } else {
          for (size_t i = 0; i < wave.size(); ++i) {
            wave[i] = keys[(pick + i * 7) % kKeySpace];
          }
          cache.LookupBatch(wave, found, [&](size_t i, const uint64_t& v) {
            if (v != value_of((pick + i * 7) % kKeySpace)) {
              bad_values.fetch_add(1, std::memory_order_relaxed);
            }
          });
        }
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }

  EXPECT_EQ(bad_values.load(), 0u);
  const CacheCounters counters = cache.Counters();
  EXPECT_LE(counters.size, cache.capacity());
  EXPECT_LE(counters.max_probe, kSlotsPerBucket);
  EXPECT_GT(counters.hits + counters.misses, 0u);

  // Allocation-free hit path holds after arbitrary concurrent churn,
  // not just on a fresh cache: re-insert one key, then spin hits on it
  // inside an allocation-counting window.
  cache.Insert(keys[0], value_of(0));
  const std::string_view hot = keys[0];
  uint64_t sink = 0;
  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int round = 0; round < 1000; ++round) {
    cache.Lookup(hot, [&sink](const uint64_t& v) { sink += v; });
  }
  const uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u) << "post-stress cache hits allocated";
  EXPECT_NE(sink, 0u);
}

/// Arms the process-wide injector for one scope (same shape as the
/// chaos suite); always disarms so a failure cannot poison later tests.
class ScopedFaults {
 public:
  explicit ScopedFaults(const std::string& spec) {
    EXPECT_TRUE(faults::FaultInjector::Global().Arm(spec).ok()) << spec;
  }
  ~ScopedFaults() { faults::FaultInjector::Global().Disarm(); }
};

serve::PropertySpec SpecOf(const data::Dataset& dataset,
                           data::PropertyId id) {
  serve::PropertySpec spec;
  spec.name = dataset.property(id).name;
  for (const data::InstanceValue& instance : dataset.instances(id)) {
    spec.values.push_back(instance.value);
  }
  return spec;
}

TEST(ShardedCacheChaosTest, DegradedScoresAreNeverCached) {
  // Chaos re-run at the service layer: a fault storm on embedding
  // lookups produces degraded scores, and nothing computed under the
  // storm may enter the property cache — the healthy pass after the
  // storm must miss (recompute), and only the pass after that may hit,
  // with bit-identical scores between the two.
  data::GeneratorOptions generator;
  generator.num_sources = 3;
  generator.min_entities_per_source = 6;
  generator.max_entities_per_source = 6;
  generator.seed = 91;
  const data::Dataset dataset =
      data::GenerateCatalog(data::TvDomain(), generator).value();
  const embedding::SyntheticEmbeddingModel base =
      embedding::SyntheticEmbeddingModel::Build(
          data::DomainClusters(data::TvDomain()),
          {.dimension = 16,
           .seed = 92,
           .oov_policy = embedding::OovPolicy::kHashedVector})
          .value();
  embedding::CachingEmbeddingModel cached(&base, 4096);
  Rng rng(93);
  std::vector<data::SourceId> sources{0, 1};
  core::LeapmeMatcher matcher(&cached);
  ASSERT_TRUE(
      matcher
          .Fit(dataset, data::BuildTrainingPairs(dataset, sources, 2.0, rng)
                            .value())
          .ok());
  serve::MatcherService service(&matcher, &cached);

  std::vector<data::PropertyPair> pairs = dataset.AllCrossSourcePairs();
  pairs.resize(std::min<size_t>(pairs.size(), 8));
  std::vector<serve::PropertyPairSpec> specs;
  for (const data::PropertyPair& pair : pairs) {
    specs.push_back({SpecOf(dataset, pair.a), SpecOf(dataset, pair.b)});
  }

  bool degraded = false;
  {
    ScopedFaults faults("embedding.lookup:error");
    auto storm = service.Score(specs, Deadline::Infinite(), &degraded);
    ASSERT_TRUE(storm.ok()) << storm.status();
    EXPECT_TRUE(degraded);
  }
  const serve::ServiceStats after_storm = service.Snapshot();
  EXPECT_GT(after_storm.property_cache_misses, 0u);
  // Nothing was cached during the storm, so even within-request
  // duplicate properties could not hit.
  EXPECT_EQ(after_storm.property_cache_hits, 0u);

  // Reference: the same request against a never-stormed twin service.
  // Its hit/miss profile is what a truly cold cache produces (duplicate
  // properties within the request hit once their first resolve lands).
  serve::MatcherService twin(&matcher, &cached);
  ASSERT_TRUE(twin.Score(specs, Deadline::Infinite(), &degraded).ok());
  const serve::ServiceStats cold = twin.Snapshot();

  // Healthy pass on the stormed service: had any degraded feature been
  // cached, it would hit more (and miss less) than the cold twin.
  degraded = false;
  auto healthy = service.Score(specs, Deadline::Infinite(), &degraded);
  ASSERT_TRUE(healthy.ok()) << healthy.status();
  EXPECT_FALSE(degraded);
  const serve::ServiceStats after_healthy = service.Snapshot();
  EXPECT_EQ(after_healthy.property_cache_hits, cold.property_cache_hits);
  EXPECT_EQ(after_healthy.property_cache_misses -
                after_storm.property_cache_misses,
            cold.property_cache_misses);

  // Cached pass: all hits, no new misses, scores bit-identical to the
  // uncached healthy pass.
  auto cached_pass = service.Score(specs, Deadline::Infinite(), &degraded);
  ASSERT_TRUE(cached_pass.ok()) << cached_pass.status();
  const serve::ServiceStats after_cached = service.Snapshot();
  EXPECT_GT(after_cached.property_cache_hits, 0u);
  EXPECT_EQ(after_cached.property_cache_misses,
            after_healthy.property_cache_misses);
  ASSERT_EQ(cached_pass->size(), healthy->size());
  for (size_t i = 0; i < healthy->size(); ++i) {
    EXPECT_EQ((*cached_pass)[i], (*healthy)[i]) << "pair " << i;
  }
}

}  // namespace
}  // namespace leapme::cache
