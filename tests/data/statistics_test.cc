#include "data/statistics.h"

#include <gtest/gtest.h>

#include "data/domain.h"
#include "data/generator.h"

namespace leapme::data {
namespace {

Dataset MakeSmallDataset() {
  Dataset dataset("stats");
  SourceId s0 = dataset.AddSource("a");
  SourceId s1 = dataset.AddSource("b");
  PropertyId p0 = dataset.AddProperty(s0, "weight", "weight");
  PropertyId p1 = dataset.AddProperty(s0, "col_1", "");
  PropertyId p2 = dataset.AddProperty(s1, "mass", "weight");
  dataset.AddInstance(p0, "e1", "10 g");
  dataset.AddInstance(p0, "e2", "20 g");
  dataset.AddInstance(p1, "e1", "x");
  dataset.AddInstance(p2, "y1", "0.5 kg");
  return dataset;
}

TEST(StatisticsTest, CountsBasics) {
  DatasetStatistics stats = ComputeStatistics(MakeSmallDataset());
  EXPECT_EQ(stats.name, "stats");
  EXPECT_EQ(stats.sources, 2u);
  EXPECT_EQ(stats.properties, 3u);
  EXPECT_EQ(stats.aligned_properties, 2u);
  EXPECT_EQ(stats.instances, 4u);
  EXPECT_EQ(stats.matching_pairs, 1u);
  EXPECT_EQ(stats.cross_source_pairs, 2u);
  EXPECT_EQ(stats.distinct_references, 1u);
}

TEST(StatisticsTest, EntityBalance) {
  DatasetStatistics stats = ComputeStatistics(MakeSmallDataset());
  EXPECT_EQ(stats.min_entities_per_source, 1u);  // source b: {y1}
  EXPECT_EQ(stats.max_entities_per_source, 2u);  // source a: {e1, e2}
}

TEST(StatisticsTest, PerSourceBreakdown) {
  DatasetStatistics stats = ComputeStatistics(MakeSmallDataset());
  ASSERT_EQ(stats.per_source.size(), 2u);
  EXPECT_EQ(stats.per_source[0].name, "a");
  EXPECT_EQ(stats.per_source[0].properties, 2u);
  EXPECT_EQ(stats.per_source[0].aligned_properties, 1u);
  EXPECT_EQ(stats.per_source[0].instances, 3u);
  EXPECT_EQ(stats.per_source[1].properties, 1u);
}

TEST(StatisticsTest, MeanInstancesPerProperty) {
  DatasetStatistics stats = ComputeStatistics(MakeSmallDataset());
  EXPECT_NEAR(stats.mean_instances_per_property, 4.0 / 3.0, 1e-12);
}

TEST(StatisticsTest, EmptyDataset) {
  Dataset empty("empty");
  DatasetStatistics stats = ComputeStatistics(empty);
  EXPECT_EQ(stats.sources, 0u);
  EXPECT_EQ(stats.min_entities_per_source, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_instances_per_property, 0.0);
}

TEST(StatisticsTest, BalancedGeneratorReportsBalanced) {
  GeneratorOptions options = HighQualityOptions(4, 10);
  options.seed = 3;
  auto dataset = GenerateCatalog(CameraDomain(), options);
  ASSERT_TRUE(dataset.ok());
  DatasetStatistics stats = ComputeStatistics(*dataset);
  EXPECT_EQ(stats.min_entities_per_source, stats.max_entities_per_source);
  EXPECT_NE(stats.ToString().find("(balanced)"), std::string::npos);
}

TEST(StatisticsTest, ToStringContainsHeadlineNumbers) {
  DatasetStatistics stats = ComputeStatistics(MakeSmallDataset());
  std::string text = stats.ToString();
  EXPECT_NE(text.find("sources:"), std::string::npos);
  EXPECT_NE(text.find("(imbalanced)"), std::string::npos);
  EXPECT_NE(text.find("1 matching"), std::string::npos);
}

}  // namespace
}  // namespace leapme::data
