#include "data/tsv_io.h"

#include <fstream>

#include <gtest/gtest.h>

namespace leapme::data {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  out << contents;
}

TEST(TsvIoTest, ReadsWellFormedFile) {
  std::string path = TempPath("well_formed.tsv");
  WriteFile(path,
            "source\tentity\tproperty\tvalue\treference\n"
            "shop_a\te1\tresolution\t24.3 MP\tresolution\n"
            "shop_a\te2\tresolution\t20 MP\tresolution\n"
            "shop_b\tx1\tmegapixels\t24 MP\tresolution\n"
            "shop_b\tx1\tcol_3\tzz\t\n");
  auto dataset = ReadDatasetTsv(path, "cams");
  ASSERT_TRUE(dataset.ok()) << dataset.status();
  EXPECT_EQ(dataset->name(), "cams");
  EXPECT_EQ(dataset->source_count(), 2u);
  EXPECT_EQ(dataset->property_count(), 3u);
  EXPECT_EQ(dataset->instance_count(), 4u);
  EXPECT_EQ(dataset->instances(0).size(), 2u);
  EXPECT_TRUE(dataset->IsMatch(0, 1));
  EXPECT_EQ(dataset->property(2).reference, "");
}

TEST(TsvIoTest, FourColumnLinesHaveEmptyReference) {
  std::string path = TempPath("four_cols.tsv");
  WriteFile(path,
            "source\tentity\tproperty\tvalue\treference\n"
            "s\te\tp\tv\n");
  auto dataset = ReadDatasetTsv(path);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->property(0).reference, "");
}

TEST(TsvIoTest, MissingFileIsIoError) {
  auto dataset = ReadDatasetTsv("/nonexistent/data.tsv");
  EXPECT_FALSE(dataset.ok());
  EXPECT_TRUE(dataset.status().IsIoError());
}

TEST(TsvIoTest, MissingHeaderIsCorruption) {
  std::string path = TempPath("no_header.tsv");
  WriteFile(path, "shop_a\te1\tresolution\t24.3 MP\tr\n");
  auto dataset = ReadDatasetTsv(path);
  EXPECT_FALSE(dataset.ok());
  EXPECT_EQ(dataset.status().code(), StatusCode::kCorruption);
}

TEST(TsvIoTest, WrongFieldCountIsCorruption) {
  std::string path = TempPath("bad_fields.tsv");
  WriteFile(path,
            "source\tentity\tproperty\tvalue\treference\n"
            "only\ttwo\n");
  EXPECT_FALSE(ReadDatasetTsv(path).ok());
}

TEST(TsvIoTest, EmptySourceOrPropertyIsCorruption) {
  std::string path = TempPath("empty_source.tsv");
  WriteFile(path,
            "source\tentity\tproperty\tvalue\treference\n"
            "\te\tp\tv\tr\n");
  EXPECT_FALSE(ReadDatasetTsv(path).ok());
}

TEST(TsvIoTest, EmptyFileIsCorruption) {
  std::string path = TempPath("empty.tsv");
  WriteFile(path, "");
  EXPECT_FALSE(ReadDatasetTsv(path).ok());
}

TEST(TsvIoTest, HandlesCrLfLineEndings) {
  std::string path = TempPath("crlf.tsv");
  WriteFile(path,
            "source\tentity\tproperty\tvalue\treference\r\n"
            "s\te\tp\tv\tr\r\n");
  auto dataset = ReadDatasetTsv(path);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->instances(0)[0].value, "v");
}

TEST(TsvIoTest, RoundTripPreservesContent) {
  Dataset original("roundtrip");
  SourceId s0 = original.AddSource("shop_a");
  SourceId s1 = original.AddSource("shop_b");
  PropertyId p0 = original.AddProperty(s0, "weight", "weight");
  PropertyId p1 = original.AddProperty(s1, "mass", "weight");
  original.AddInstance(p0, "e1", "520 g");
  original.AddInstance(p0, "e2", "610 g");
  original.AddInstance(p1, "x1", "0.5 kg");

  std::string path = TempPath("roundtrip.tsv");
  ASSERT_TRUE(WriteDatasetTsv(original, path).ok());
  auto loaded = ReadDatasetTsv(path, "roundtrip");
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->source_count(), original.source_count());
  EXPECT_EQ(loaded->property_count(), original.property_count());
  EXPECT_EQ(loaded->instance_count(), original.instance_count());
  EXPECT_EQ(loaded->property(0).reference, "weight");
  EXPECT_TRUE(loaded->IsMatch(0, 1));
  EXPECT_EQ(loaded->instances(0)[1].value, "610 g");
}

TEST(TsvIoTest, WriteSanitizesTabsAndNewlines) {
  Dataset original("dirty");
  SourceId s0 = original.AddSource("shop");
  PropertyId p0 = original.AddProperty(s0, "notes", "");
  original.AddInstance(p0, "e1", "line1\nline2\twith tab");

  std::string path = TempPath("sanitized.tsv");
  ASSERT_TRUE(WriteDatasetTsv(original, path).ok());
  auto loaded = ReadDatasetTsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->instances(0)[0].value, "line1 line2 with tab");
}

TEST(TsvIoTest, WriteToUnwritablePathFails) {
  Dataset dataset("x");
  EXPECT_FALSE(WriteDatasetTsv(dataset, "/nonexistent/dir/file.tsv").ok());
}

}  // namespace
}  // namespace leapme::data
