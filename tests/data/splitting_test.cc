#include "data/splitting.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "data/domain.h"
#include "data/generator.h"

namespace leapme::data {
namespace {

Dataset MakeDataset(size_t num_sources = 6) {
  GeneratorOptions options;
  options.num_sources = num_sources;
  options.min_entities_per_source = 6;
  options.max_entities_per_source = 6;
  options.seed = 31;
  auto dataset = GenerateCatalog(HeadphoneDomain(), options);
  return std::move(dataset).value();
}

TEST(SplitSourcesTest, PartitionIsCompleteAndDisjoint) {
  Dataset dataset = MakeDataset();
  Rng rng(1);
  SourceSplit split = SplitSources(dataset, 0.5, rng);
  std::set<SourceId> all(split.train_sources.begin(),
                         split.train_sources.end());
  for (SourceId id : split.test_sources) {
    EXPECT_TRUE(all.insert(id).second);  // disjoint
  }
  EXPECT_EQ(all.size(), dataset.source_count());
}

TEST(SplitSourcesTest, FractionControlsTrainCount) {
  Dataset dataset = MakeDataset(10);
  Rng rng(2);
  SourceSplit split = SplitSources(dataset, 0.8, rng);
  EXPECT_EQ(split.train_sources.size(), 8u);
  EXPECT_EQ(split.test_sources.size(), 2u);
}

TEST(SplitSourcesTest, AtLeastTwoTrainSources) {
  Dataset dataset = MakeDataset(6);
  Rng rng(3);
  SourceSplit split = SplitSources(dataset, 0.01, rng);
  EXPECT_GE(split.train_sources.size(), 2u);
}

TEST(SplitSourcesTest, AtLeastOneTestSource) {
  Dataset dataset = MakeDataset(6);
  Rng rng(4);
  SourceSplit split = SplitSources(dataset, 1.0, rng);
  EXPECT_GE(split.test_sources.size(), 1u);
}

TEST(SplitSourcesTest, DifferentSeedsGiveDifferentSplits) {
  Dataset dataset = MakeDataset(10);
  Rng rng_a(5);
  Rng rng_b(6);
  SourceSplit a = SplitSources(dataset, 0.5, rng_a);
  SourceSplit b = SplitSources(dataset, 0.5, rng_b);
  EXPECT_NE(a.train_sources, b.train_sources);
}

TEST(BuildTrainingPairsTest, RespectsNegativeRatio) {
  Dataset dataset = MakeDataset();
  Rng rng(7);
  SourceSplit split = SplitSources(dataset, 0.5, rng);
  auto pairs = BuildTrainingPairs(dataset, split.train_sources, 2.0, rng);
  ASSERT_TRUE(pairs.ok()) << pairs.status();
  size_t positives = 0;
  size_t negatives = 0;
  for (const LabeledPair& pair : *pairs) {
    if (pair.label != 0) {
      ++positives;
    } else {
      ++negatives;
    }
  }
  EXPECT_GT(positives, 0u);
  // Ratio holds unless the negative pool was exhausted.
  EXPECT_LE(negatives, 2 * positives);
  EXPECT_GE(negatives, positives);  // plenty of negatives available here
}

TEST(BuildTrainingPairsTest, PairsComeFromTrainSourcesOnly) {
  Dataset dataset = MakeDataset();
  Rng rng(8);
  SourceSplit split = SplitSources(dataset, 0.5, rng);
  std::set<SourceId> train(split.train_sources.begin(),
                           split.train_sources.end());
  auto pairs = BuildTrainingPairs(dataset, split.train_sources, 2.0, rng);
  ASSERT_TRUE(pairs.ok());
  for (const LabeledPair& pair : *pairs) {
    EXPECT_TRUE(train.count(dataset.property(pair.pair.a).source) > 0);
    EXPECT_TRUE(train.count(dataset.property(pair.pair.b).source) > 0);
    EXPECT_NE(dataset.property(pair.pair.a).source,
              dataset.property(pair.pair.b).source);
  }
}

TEST(BuildTrainingPairsTest, LabelsMatchGroundTruth) {
  Dataset dataset = MakeDataset();
  Rng rng(9);
  SourceSplit split = SplitSources(dataset, 0.5, rng);
  auto pairs = BuildTrainingPairs(dataset, split.train_sources, 1.0, rng);
  ASSERT_TRUE(pairs.ok());
  for (const LabeledPair& pair : *pairs) {
    EXPECT_EQ(pair.label != 0, dataset.IsMatch(pair.pair.a, pair.pair.b));
  }
}

TEST(BuildTrainingPairsTest, ZeroNegativeRatioGivesOnlyPositives) {
  Dataset dataset = MakeDataset();
  Rng rng(10);
  SourceSplit split = SplitSources(dataset, 0.5, rng);
  auto pairs = BuildTrainingPairs(dataset, split.train_sources, 0.0, rng);
  ASSERT_TRUE(pairs.ok());
  for (const LabeledPair& pair : *pairs) {
    EXPECT_EQ(pair.label, 1);
  }
}

TEST(BuildTrainingPairsTest, NegativeRatioRejected) {
  Dataset dataset = MakeDataset();
  Rng rng(11);
  SourceSplit split = SplitSources(dataset, 0.5, rng);
  EXPECT_FALSE(
      BuildTrainingPairs(dataset, split.train_sources, -1.0, rng).ok());
}

TEST(BuildTrainingPairsTest, FailsWithoutPositives) {
  // A dataset with no aligned properties has no positive pairs.
  Dataset dataset("empty");
  SourceId s0 = dataset.AddSource("a");
  SourceId s1 = dataset.AddSource("b");
  dataset.AddProperty(s0, "x", "");
  dataset.AddProperty(s1, "y", "");
  Rng rng(12);
  auto pairs = BuildTrainingPairs(dataset, {s0, s1}, 2.0, rng);
  EXPECT_FALSE(pairs.ok());
  EXPECT_TRUE(pairs.status().IsFailedPrecondition());
}

TEST(BuildTestPairsTest, ExcludesTrainOnlyPairs) {
  Dataset dataset = MakeDataset();
  Rng rng(13);
  SourceSplit split = SplitSources(dataset, 0.5, rng);
  std::set<SourceId> train(split.train_sources.begin(),
                           split.train_sources.end());
  std::vector<LabeledPair> pairs = BuildTestPairs(dataset,
                                                  split.train_sources);
  EXPECT_FALSE(pairs.empty());
  for (const LabeledPair& pair : pairs) {
    SourceId sa = dataset.property(pair.pair.a).source;
    SourceId sb = dataset.property(pair.pair.b).source;
    EXPECT_NE(sa, sb);
    EXPECT_FALSE(train.count(sa) > 0 && train.count(sb) > 0);
  }
}

TEST(BuildTestPairsTest, TrainAndTestPairsPartitionCrossPairs) {
  Dataset dataset = MakeDataset();
  Rng rng(14);
  SourceSplit split = SplitSources(dataset, 0.5, rng);
  std::vector<LabeledPair> test_pairs =
      BuildTestPairs(dataset, split.train_sources);
  // Every cross-source pair is either within the training sources or in
  // the test pairs.
  size_t train_pair_count = 0;
  std::set<SourceId> train(split.train_sources.begin(),
                           split.train_sources.end());
  for (const PropertyPair& pair : dataset.AllCrossSourcePairs()) {
    if (train.count(dataset.property(pair.a).source) > 0 &&
        train.count(dataset.property(pair.b).source) > 0) {
      ++train_pair_count;
    }
  }
  EXPECT_EQ(train_pair_count + test_pairs.size(),
            dataset.AllCrossSourcePairs().size());
}

TEST(BuildTestPairsTest, LabelsMatchGroundTruth) {
  Dataset dataset = MakeDataset();
  Rng rng(15);
  SourceSplit split = SplitSources(dataset, 0.5, rng);
  for (const LabeledPair& pair :
       BuildTestPairs(dataset, split.train_sources)) {
    EXPECT_EQ(pair.label != 0, dataset.IsMatch(pair.pair.a, pair.pair.b));
  }
}

}  // namespace
}  // namespace leapme::data
