#include "data/domain.h"

#include <set>

#include <gtest/gtest.h>

namespace leapme::data {
namespace {

TEST(DomainTest, SixDomainsExist) {
  auto domains = AllDomains();
  ASSERT_EQ(domains.size(), 6u);
  EXPECT_EQ(domains[0]->name, "cameras");
  EXPECT_EQ(domains[1]->name, "headphones");
  EXPECT_EQ(domains[2]->name, "phones");
  EXPECT_EQ(domains[3]->name, "tvs");
  EXPECT_EQ(domains[4]->name, "groceries");
  EXPECT_EQ(domains[5]->name, "autos");
}

TEST(DomainTest, CamerasIsTheLargestDomain) {
  // Cameras is the paper's largest dataset (DI2KG, >3200 properties).
  for (const DomainSpec* domain : AllDomains()) {
    EXPECT_LE(domain->properties.size(), CameraDomain().properties.size());
  }
  EXPECT_GE(CameraDomain().properties.size(), 30u);
}

// Structural invariants every domain must satisfy.
class DomainInvariantsTest
    : public ::testing::TestWithParam<const DomainSpec*> {};

TEST_P(DomainInvariantsTest, PropertiesNonEmptyWithUniqueReferences) {
  const DomainSpec& domain = *GetParam();
  EXPECT_GE(domain.properties.size(), 15u);
  std::set<std::string> references;
  for (const ReferenceProperty& property : domain.properties) {
    EXPECT_FALSE(property.reference.empty());
    EXPECT_TRUE(references.insert(property.reference).second)
        << "duplicate reference " << property.reference;
  }
}

TEST_P(DomainInvariantsTest, EveryPropertyHasSurfaceNames) {
  for (const ReferenceProperty& property : GetParam()->properties) {
    EXPECT_GE(property.surface_names.size(), 2u) << property.reference;
    for (const std::string& name : property.surface_names) {
      EXPECT_FALSE(name.empty());
    }
  }
}

TEST_P(DomainInvariantsTest, RatesAreProbabilities) {
  for (const ReferenceProperty& property : GetParam()->properties) {
    EXPECT_GT(property.source_prevalence, 0.0);
    EXPECT_LE(property.source_prevalence, 1.0);
    EXPECT_GT(property.fill_rate, 0.0);
    EXPECT_LE(property.fill_rate, 1.0);
  }
}

TEST_P(DomainInvariantsTest, NumericSpecsHaveValidRanges) {
  for (const ReferenceProperty& property : GetParam()->properties) {
    if (const auto* numeric =
            std::get_if<NumericValueSpec>(&property.value)) {
      EXPECT_LT(numeric->min, numeric->max) << property.reference;
      EXPECT_GE(numeric->decimals, 0);
    }
    if (const auto* enumeration =
            std::get_if<EnumValueSpec>(&property.value)) {
      EXPECT_GE(enumeration->values.size(), 2u) << property.reference;
      for (const auto& renderings : enumeration->values) {
        EXPECT_FALSE(renderings.empty());
      }
    }
  }
}

TEST_P(DomainInvariantsTest, HasDecorationPools) {
  EXPECT_FALSE(GetParam()->decoration_prefixes.empty());
  EXPECT_FALSE(GetParam()->decoration_suffixes.empty());
}

INSTANTIATE_TEST_SUITE_P(AllDomains, DomainInvariantsTest,
                         ::testing::ValuesIn(AllDomains()),
                         [](const auto& info) { return info.param->name; });

TEST(DomainClustersTest, OneClusterPerPropertyPlusShared) {
  const DomainSpec& domain = CameraDomain();
  auto clusters = DomainClusters(domain);
  // Property clusters + decorations + booleans.
  EXPECT_EQ(clusters.size(), domain.properties.size() + 2);
}

TEST(DomainClustersTest, ClustersContainSurfaceNameWords) {
  auto clusters = DomainClusters(CameraDomain());
  bool found_resolution = false;
  for (const auto& cluster : clusters) {
    for (const std::string& word : cluster.words) {
      if (word == "megapixels") found_resolution = true;
      EXPECT_FALSE(word.empty());
      // Vocabulary is lower-case.
      for (char c : word) {
        EXPECT_FALSE(c >= 'A' && c <= 'Z');
      }
    }
  }
  EXPECT_TRUE(found_resolution);
}

TEST(DomainClustersTest, NumbersExcludedFromVocabulary) {
  for (const auto& cluster : DomainClusters(PhoneDomain())) {
    for (const std::string& word : cluster.words) {
      bool all_digits = !word.empty();
      for (char c : word) {
        if (c < '0' || c > '9') {
          all_digits = false;
          break;
        }
      }
      EXPECT_FALSE(all_digits) << "numeric token in vocabulary: " << word;
    }
  }
}

TEST(DomainClustersTest, BooleanClusterPresent) {
  auto clusters = DomainClusters(TvDomain());
  bool found = false;
  for (const auto& cluster : clusters) {
    if (cluster.name == "tvs/booleans") {
      found = true;
      EXPECT_GE(cluster.words.size(), 4u);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace leapme::data
