#include "data/generator.h"

#include <set>

#include <gtest/gtest.h>

#include "data/domain.h"

namespace leapme::data {
namespace {

GeneratorOptions SmallOptions() {
  GeneratorOptions options;
  options.num_sources = 4;
  options.min_entities_per_source = 10;
  options.max_entities_per_source = 10;
  options.seed = 99;
  return options;
}

TEST(GeneratorTest, ProducesRequestedSources) {
  auto dataset = GenerateCatalog(CameraDomain(), SmallOptions());
  ASSERT_TRUE(dataset.ok()) << dataset.status();
  EXPECT_EQ(dataset->source_count(), 4u);
  EXPECT_GT(dataset->property_count(), 20u);
  EXPECT_GT(dataset->instance_count(), 100u);
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  auto a = GenerateCatalog(HeadphoneDomain(), SmallOptions());
  auto b = GenerateCatalog(HeadphoneDomain(), SmallOptions());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->property_count(), b->property_count());
  for (PropertyId id = 0; id < a->property_count(); ++id) {
    EXPECT_EQ(a->property(id).name, b->property(id).name);
    ASSERT_EQ(a->instances(id).size(), b->instances(id).size());
    for (size_t i = 0; i < a->instances(id).size(); ++i) {
      EXPECT_EQ(a->instances(id)[i].value, b->instances(id)[i].value);
    }
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  GeneratorOptions other = SmallOptions();
  other.seed = 1234;
  auto a = GenerateCatalog(PhoneDomain(), SmallOptions());
  auto b = GenerateCatalog(PhoneDomain(), other);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Some property set or instance content must differ.
  bool differs = a->property_count() != b->property_count();
  if (!differs) {
    for (PropertyId id = 0; id < a->property_count() && !differs; ++id) {
      differs = a->property(id).name != b->property(id).name;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(GeneratorTest, PropertyNamesUniqueWithinSource) {
  auto dataset = GenerateCatalog(TvDomain(), SmallOptions());
  ASSERT_TRUE(dataset.ok());
  for (SourceId s = 0; s < dataset->source_count(); ++s) {
    std::set<std::string> names;
    for (PropertyId id : dataset->PropertiesOfSource(s)) {
      EXPECT_TRUE(names.insert(dataset->property(id).name).second)
          << "duplicate name in source " << s << ": "
          << dataset->property(id).name;
    }
  }
}

TEST(GeneratorTest, GroundTruthHasMatchingPairs) {
  auto dataset = GenerateCatalog(CameraDomain(), SmallOptions());
  ASSERT_TRUE(dataset.ok());
  EXPECT_GT(dataset->CountMatchingPairs(), 20u);
}

TEST(GeneratorTest, SharedUniverseCreatesValueOverlap) {
  // Two sources listing the same product report the same model code, so
  // matching code properties must share at least one exact value.
  GeneratorOptions options = SmallOptions();
  options.num_sources = 2;
  options.min_entities_per_source = 40;
  options.max_entities_per_source = 40;
  options.universe_entities = 50;  // high overlap
  auto dataset = GenerateCatalog(CameraDomain(), options);
  ASSERT_TRUE(dataset.ok());
  // Find the "model" property in both sources.
  std::vector<PropertyId> model_props;
  for (PropertyId id = 0; id < dataset->property_count(); ++id) {
    if (dataset->property(id).reference == "model") {
      model_props.push_back(id);
    }
  }
  if (model_props.size() == 2) {
    std::set<std::string> values_a;
    for (const auto& instance : dataset->instances(model_props[0])) {
      values_a.insert(instance.value);
    }
    size_t shared = 0;
    for (const auto& instance : dataset->instances(model_props[1])) {
      if (values_a.count(instance.value) > 0) ++shared;
    }
    EXPECT_GT(shared, 0u);
  }
}

TEST(GeneratorTest, EntitiesComeFromSharedUniverse) {
  GeneratorOptions options = SmallOptions();
  options.universe_entities = 15;
  auto dataset = GenerateCatalog(HeadphoneDomain(), options);
  ASSERT_TRUE(dataset.ok());
  std::set<std::string> entities;
  for (PropertyId id = 0; id < dataset->property_count(); ++id) {
    for (const auto& instance : dataset->instances(id)) {
      entities.insert(instance.entity);
    }
  }
  EXPECT_LE(entities.size(), 15u);
}

TEST(GeneratorTest, ImbalancedOptionsVaryEntityCounts) {
  GeneratorOptions options = LowQualityOptions(6);
  options.seed = 5;
  auto dataset = GenerateCatalog(PhoneDomain(), options);
  ASSERT_TRUE(dataset.ok());
  // Count per-source entities; min and max should differ notably.
  std::set<std::string> per_source_min_check;
  size_t min_count = SIZE_MAX;
  size_t max_count = 0;
  for (SourceId s = 0; s < dataset->source_count(); ++s) {
    std::set<std::string> entities;
    for (PropertyId id : dataset->PropertiesOfSource(s)) {
      for (const auto& instance : dataset->instances(id)) {
        entities.insert(instance.entity);
      }
    }
    min_count = std::min(min_count, entities.size());
    max_count = std::max(max_count, entities.size());
  }
  EXPECT_LT(min_count, max_count);
}

TEST(GeneratorTest, RejectsInvalidOptions) {
  GeneratorOptions one_source = SmallOptions();
  one_source.num_sources = 1;
  EXPECT_FALSE(GenerateCatalog(CameraDomain(), one_source).ok());

  GeneratorOptions zero_entities = SmallOptions();
  zero_entities.min_entities_per_source = 0;
  EXPECT_FALSE(GenerateCatalog(CameraDomain(), zero_entities).ok());

  GeneratorOptions inverted = SmallOptions();
  inverted.min_entities_per_source = 50;
  inverted.max_entities_per_source = 10;
  EXPECT_FALSE(GenerateCatalog(CameraDomain(), inverted).ok());

  GeneratorOptions tiny_universe = SmallOptions();
  tiny_universe.universe_entities = 2;
  EXPECT_FALSE(GenerateCatalog(CameraDomain(), tiny_universe).ok());

  DomainSpec empty_domain;
  empty_domain.name = "empty";
  EXPECT_FALSE(GenerateCatalog(empty_domain, SmallOptions()).ok());
}

TEST(GeneratorTest, HighQualityOptionsAreBalanced) {
  GeneratorOptions options = HighQualityOptions(24, 100);
  EXPECT_EQ(options.num_sources, 24u);
  EXPECT_EQ(options.min_entities_per_source,
            options.max_entities_per_source);
}

TEST(GeneratorTest, LowQualityOptionsAreImbalancedAndNoisier) {
  GeneratorOptions low = LowQualityOptions();
  GeneratorOptions high = HighQualityOptions();
  EXPECT_LT(low.min_entities_per_source, low.max_entities_per_source);
  EXPECT_GT(low.value_noise_probability, high.value_noise_probability);
  EXPECT_GT(low.homonym_probability, high.homonym_probability);
}

TEST(BooleanStylesTest, NonEmptyDistinctPairs) {
  const auto& styles = BooleanStyles();
  EXPECT_GE(styles.size(), 3u);
  for (const auto& [yes, no] : styles) {
    EXPECT_FALSE(yes.empty());
    EXPECT_FALSE(no.empty());
    EXPECT_NE(yes, no);
  }
}

// Property sweep over all four domains: generation invariants that must
// hold regardless of the ontology content.
class GeneratorDomainPropertyTest
    : public ::testing::TestWithParam<const DomainSpec*> {};

TEST_P(GeneratorDomainPropertyTest, GeneratesValidatableDataset) {
  GeneratorOptions options = SmallOptions();
  auto dataset = GenerateCatalog(*GetParam(), options);
  ASSERT_TRUE(dataset.ok()) << dataset.status();
  EXPECT_TRUE(dataset->Validate().ok());
}

TEST_P(GeneratorDomainPropertyTest, AlignedPropertiesReferenceTheDomain) {
  auto dataset = GenerateCatalog(*GetParam(), SmallOptions());
  ASSERT_TRUE(dataset.ok());
  std::set<std::string> known;
  for (const ReferenceProperty& property : GetParam()->properties) {
    known.insert(property.reference);
  }
  for (PropertyId id = 0; id < dataset->property_count(); ++id) {
    const std::string& reference = dataset->property(id).reference;
    if (!reference.empty()) {
      EXPECT_TRUE(known.count(reference) > 0) << reference;
    }
  }
}

TEST_P(GeneratorDomainPropertyTest, NonEmptyValuesEverywhere) {
  auto dataset = GenerateCatalog(*GetParam(), SmallOptions());
  ASSERT_TRUE(dataset.ok());
  for (PropertyId id = 0; id < dataset->property_count(); ++id) {
    for (const InstanceValue& instance : dataset->instances(id)) {
      EXPECT_FALSE(instance.value.empty());
      EXPECT_FALSE(instance.entity.empty());
    }
  }
}

TEST_P(GeneratorDomainPropertyTest, MatchingPairsShareReference) {
  auto dataset = GenerateCatalog(*GetParam(), SmallOptions());
  ASSERT_TRUE(dataset.ok());
  size_t checked = 0;
  for (PropertyId a = 0; a < dataset->property_count() && checked < 500;
       ++a) {
    for (PropertyId b = a + 1; b < dataset->property_count(); ++b) {
      if (dataset->IsMatch(a, b)) {
        EXPECT_EQ(dataset->property(a).reference,
                  dataset->property(b).reference);
        EXPECT_NE(dataset->property(a).source, dataset->property(b).source);
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllDomains, GeneratorDomainPropertyTest,
                         ::testing::ValuesIn(AllDomains()),
                         [](const auto& info) { return info.param->name; });

}  // namespace
}  // namespace leapme::data
