#include "data/dataset.h"

#include <gtest/gtest.h>

namespace leapme::data {
namespace {

Dataset MakeTwoSourceDataset() {
  Dataset dataset("test");
  SourceId s0 = dataset.AddSource("source_a");
  SourceId s1 = dataset.AddSource("source_b");
  PropertyId p0 = dataset.AddProperty(s0, "resolution", "resolution");
  PropertyId p1 = dataset.AddProperty(s0, "weight", "weight");
  PropertyId p2 = dataset.AddProperty(s1, "megapixels", "resolution");
  PropertyId p3 = dataset.AddProperty(s1, "col_9", "");
  dataset.AddInstance(p0, "e1", "24.3 MP");
  dataset.AddInstance(p0, "e2", "20.1 MP");
  dataset.AddInstance(p1, "e1", "520 g");
  dataset.AddInstance(p2, "x1", "24 megapixels");
  dataset.AddInstance(p3, "x1", "zz91");
  return dataset;
}

TEST(DatasetTest, CountsAndNames) {
  Dataset dataset = MakeTwoSourceDataset();
  EXPECT_EQ(dataset.name(), "test");
  EXPECT_EQ(dataset.source_count(), 2u);
  EXPECT_EQ(dataset.property_count(), 4u);
  EXPECT_EQ(dataset.instance_count(), 5u);
  EXPECT_EQ(dataset.source_name(0), "source_a");
  EXPECT_EQ(dataset.property(2).name, "megapixels");
  EXPECT_EQ(dataset.property(2).source, 1u);
}

TEST(DatasetTest, InstancesGroupedByProperty) {
  Dataset dataset = MakeTwoSourceDataset();
  const auto& instances = dataset.instances(0);
  ASSERT_EQ(instances.size(), 2u);
  EXPECT_EQ(instances[0].entity, "e1");
  EXPECT_EQ(instances[0].value, "24.3 MP");
  EXPECT_TRUE(dataset.instances(3).size() == 1);
}

TEST(DatasetTest, IsMatchRequiresDifferentSourceSameReference) {
  Dataset dataset = MakeTwoSourceDataset();
  EXPECT_TRUE(dataset.IsMatch(0, 2));   // resolution across sources
  EXPECT_TRUE(dataset.IsMatch(2, 0));   // symmetric
  EXPECT_FALSE(dataset.IsMatch(0, 1));  // same source
  EXPECT_FALSE(dataset.IsMatch(1, 2));  // different references
}

TEST(DatasetTest, UnalignedPropertiesNeverMatch) {
  Dataset dataset("x");
  SourceId s0 = dataset.AddSource("a");
  SourceId s1 = dataset.AddSource("b");
  PropertyId p0 = dataset.AddProperty(s0, "col_1", "");
  PropertyId p1 = dataset.AddProperty(s1, "col_1", "");
  EXPECT_FALSE(dataset.IsMatch(p0, p1));
}

TEST(DatasetTest, PropertiesOfSource) {
  Dataset dataset = MakeTwoSourceDataset();
  EXPECT_EQ(dataset.PropertiesOfSource(0),
            (std::vector<PropertyId>{0, 1}));
  EXPECT_EQ(dataset.PropertiesOfSource(1),
            (std::vector<PropertyId>{2, 3}));
}

TEST(DatasetTest, AllCrossSourcePairsExcludeSameSource) {
  Dataset dataset = MakeTwoSourceDataset();
  std::vector<PropertyPair> pairs = dataset.AllCrossSourcePairs();
  // 2 properties in s0 x 2 in s1 = 4 cross pairs.
  EXPECT_EQ(pairs.size(), 4u);
  for (const PropertyPair& pair : pairs) {
    EXPECT_NE(dataset.property(pair.a).source,
              dataset.property(pair.b).source);
    EXPECT_LT(pair.a, pair.b);
  }
}

TEST(DatasetTest, CountMatchingPairs) {
  Dataset dataset = MakeTwoSourceDataset();
  EXPECT_EQ(dataset.CountMatchingPairs(), 1u);
}

TEST(DatasetTest, ValidateAcceptsConsistentDataset) {
  Dataset dataset = MakeTwoSourceDataset();
  EXPECT_TRUE(dataset.Validate().ok());
  EXPECT_TRUE(dataset.Validate(/*require_instances=*/true).ok());
}

TEST(DatasetTest, ValidateRejectsEmptyPropertyWithRequireInstances) {
  Dataset dataset("x");
  SourceId s0 = dataset.AddSource("a");
  dataset.AddProperty(s0, "lonely", "");
  EXPECT_TRUE(dataset.Validate().ok());
  EXPECT_FALSE(dataset.Validate(/*require_instances=*/true).ok());
}

TEST(DatasetTest, EmptyDatasetIsValid) {
  Dataset dataset;
  EXPECT_TRUE(dataset.Validate().ok());
  EXPECT_EQ(dataset.CountMatchingPairs(), 0u);
  EXPECT_TRUE(dataset.AllCrossSourcePairs().empty());
}

TEST(PropertyPairTest, Equality) {
  EXPECT_EQ((PropertyPair{1, 2}), (PropertyPair{1, 2}));
  EXPECT_FALSE((PropertyPair{1, 2}) == (PropertyPair{2, 1}));
}

}  // namespace
}  // namespace leapme::data
