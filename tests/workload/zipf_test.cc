#include "workload/zipf.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace leapme::workload {
namespace {

TEST(ZipfDistributionTest, PmfSumsToOne) {
  for (const double s : {0.0, 0.5, 1.0, 1.5}) {
    ZipfDistribution zipf(200, s);
    double total = 0.0;
    for (size_t i = 0; i < zipf.size(); ++i) total += zipf.pmf(i);
    EXPECT_NEAR(total, 1.0, 1e-12) << "s=" << s;
  }
}

TEST(ZipfDistributionTest, ZeroExponentIsUniform) {
  ZipfDistribution zipf(64, 0.0);
  for (size_t i = 0; i < zipf.size(); ++i) {
    EXPECT_NEAR(zipf.pmf(i), 1.0 / 64.0, 1e-12);
  }
  // Negative exponents clamp to uniform rather than inverting the skew.
  ZipfDistribution clamped(64, -2.0);
  EXPECT_NEAR(clamped.pmf(0), clamped.pmf(63), 1e-12);
}

TEST(ZipfDistributionTest, PmfIsMonotoneDecreasingWhenSkewed) {
  ZipfDistribution zipf(100, 1.0);
  for (size_t i = 1; i < zipf.size(); ++i) {
    EXPECT_GT(zipf.pmf(i - 1), zipf.pmf(i));
  }
  // At s=1 over 100 ranks the head carries web-like weight: rank 0
  // alone is ~19% of all traffic.
  EXPECT_GT(zipf.pmf(0), 0.15);
}

TEST(ZipfDistributionTest, SampleIsMonotoneInU) {
  ZipfDistribution zipf(50, 1.2);
  EXPECT_EQ(zipf.Sample(0.0), 0u);
  size_t previous = 0;
  for (int step = 0; step <= 1000; ++step) {
    const size_t rank = zipf.Sample(static_cast<double>(step) / 1001.0);
    EXPECT_GE(rank, previous);
    EXPECT_LT(rank, zipf.size());
    previous = rank;
  }
  EXPECT_EQ(zipf.Sample(std::nextafter(1.0, 0.0)), zipf.size() - 1);
}

// The core frequency contract: sampling on a uniform grid of u values
// must reproduce the analytic pmf to within grid resolution. A grid
// (rather than random draws) makes the bound deterministic — the number
// of grid points inside [cdf(i-1), cdf(i)) differs from n_draws * pmf(i)
// by at most 1 on each boundary.
TEST(ZipfDistributionTest, GridFrequenciesMatchAnalyticPmf) {
  const size_t kRanks = 100;
  const size_t kDraws = 100000;
  for (const double s : {0.0, 0.8, 1.0}) {
    ZipfDistribution zipf(kRanks, s);
    std::vector<size_t> counts(kRanks, 0);
    for (size_t i = 0; i < kDraws; ++i) {
      const double u = (static_cast<double>(i) + 0.5) / kDraws;
      ++counts[zipf.Sample(u)];
    }
    for (size_t rank = 0; rank < kRanks; ++rank) {
      const double expected = static_cast<double>(kDraws) * zipf.pmf(rank);
      EXPECT_NEAR(static_cast<double>(counts[rank]), expected, 2.0)
          << "s=" << s << " rank=" << rank;
    }
  }
}

TEST(ZipfDistributionTest, SingleRankAlwaysSamplesZero) {
  ZipfDistribution zipf(1, 1.0);
  EXPECT_EQ(zipf.size(), 1u);
  EXPECT_NEAR(zipf.pmf(0), 1.0, 1e-12);
  EXPECT_EQ(zipf.Sample(0.0), 0u);
  EXPECT_EQ(zipf.Sample(0.999), 0u);
}

}  // namespace
}  // namespace leapme::workload
