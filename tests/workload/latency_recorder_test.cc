#include "workload/latency_recorder.h"

#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace leapme::workload {
namespace {

// The histogram's accuracy contract: every quantile lands within
// 2^-kSubBucketBits (~1.6%) of the true value.
constexpr double kRelativeError = 0.017;

TEST(LatencyRecorderTest, EmptyRecorderReportsZeros) {
  LatencyRecorder recorder;
  EXPECT_EQ(recorder.count(), 0u);
  EXPECT_EQ(recorder.QuantileUs(0.5), 0.0);
  EXPECT_EQ(recorder.MaxUs(), 0.0);
  EXPECT_EQ(recorder.MeanUs(), 0.0);
}

TEST(LatencyRecorderTest, SingleValueDominatesEveryQuantile) {
  LatencyRecorder recorder;
  const uint64_t nanos = 1234567;  // 1.234567 ms
  recorder.RecordNanos(nanos);
  const double us = static_cast<double>(nanos) / 1000.0;
  for (const double q : {0.0, 0.5, 0.95, 0.99, 0.999, 1.0}) {
    EXPECT_NEAR(recorder.QuantileUs(q), us, us * kRelativeError) << q;
  }
  // Max and mean are kept exactly, not bucket-rounded.
  EXPECT_EQ(recorder.MaxUs(), us);
  EXPECT_EQ(recorder.MeanUs(), us);
}

TEST(LatencyRecorderTest, QuantilesOfBimodalLoad) {
  // 900 fast (1ms) and 100 slow (100ms) samples: p50 must sit on the
  // fast mode, p95 and above on the slow one — the exact shape tail
  // accounting must preserve.
  LatencyRecorder recorder;
  for (int i = 0; i < 900; ++i) recorder.RecordNanos(1000000);
  for (int i = 0; i < 100; ++i) recorder.RecordNanos(100000000);
  EXPECT_NEAR(recorder.QuantileUs(0.50), 1000.0, 1000.0 * kRelativeError);
  EXPECT_NEAR(recorder.QuantileUs(0.95), 100000.0,
              100000.0 * kRelativeError);
  EXPECT_NEAR(recorder.QuantileUs(0.999), 100000.0,
              100000.0 * kRelativeError);
  // Mean uses the exact sum: (900 * 1 + 100 * 100) ms / 1000 = 10.9 ms.
  EXPECT_DOUBLE_EQ(recorder.MeanUs(), 10900.0);
  EXPECT_DOUBLE_EQ(recorder.MaxUs(), 100000.0);
  EXPECT_EQ(recorder.count(), 1000u);
}

TEST(LatencyRecorderTest, LinearRampQuantilesAreProportional) {
  LatencyRecorder recorder;
  const uint64_t kSamples = 10000;
  for (uint64_t i = 1; i <= kSamples; ++i) {
    recorder.RecordNanos(i * 10000);  // 10us .. 100ms, uniformly
  }
  for (const double q : {0.10, 0.50, 0.90, 0.99}) {
    const double expected_us = q * 100000.0;
    EXPECT_NEAR(recorder.QuantileUs(q), expected_us,
                expected_us * (kRelativeError + 1.0 / kSamples))
        << q;
  }
}

TEST(LatencyRecorderTest, ExtremeValuesDoNotOverflowTheTable) {
  LatencyRecorder recorder;
  recorder.RecordNanos(0);  // clamps to 1ns rather than dropping
  recorder.RecordNanos(1);
  recorder.RecordNanos(7200000000000ull);  // two hours
  EXPECT_EQ(recorder.count(), 3u);
  EXPECT_DOUBLE_EQ(recorder.MaxUs(), 7200000000.0);
  EXPECT_NEAR(recorder.QuantileUs(1.0), 7200000000.0,
              7200000000.0 * kRelativeError);
}

TEST(LatencyRecorderTest, MergeMatchesRecordingIntoOneHistogram) {
  LatencyRecorder combined;
  LatencyRecorder left;
  LatencyRecorder right;
  for (uint64_t i = 1; i <= 5000; ++i) {
    const uint64_t nanos = i * 37 + (i * i) % 9001;
    combined.RecordNanos(nanos);
    (i % 2 == 0 ? left : right).RecordNanos(nanos);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), combined.count());
  EXPECT_DOUBLE_EQ(left.MaxUs(), combined.MaxUs());
  EXPECT_DOUBLE_EQ(left.MeanUs(), combined.MeanUs());
  for (const double q : {0.5, 0.95, 0.99, 0.999}) {
    EXPECT_DOUBLE_EQ(left.QuantileUs(q), combined.QuantileUs(q)) << q;
  }
}

TEST(LatencyRecorderTest, ConcurrentRecordersLoseNothing) {
  LatencyRecorder recorder;
  const unsigned kThreads = 4;
  const uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        recorder.RecordNanos((t + 1) * 1000000ull);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(recorder.count(), kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(recorder.MaxUs(), 4000.0);
  // Mean of equal shares of 1/2/3/4 ms.
  EXPECT_DOUBLE_EQ(recorder.MeanUs(), 2500.0);
}

TEST(LatencyRecorderTest, SnapshotPackagesTheStandardPercentiles) {
  LatencyRecorder recorder;
  for (int i = 0; i < 1000; ++i) recorder.RecordNanos(2000000);
  const LatencyRecorder::Summary summary = recorder.Snapshot();
  EXPECT_EQ(summary.count, 1000u);
  EXPECT_NEAR(summary.p50_us, 2000.0, 2000.0 * kRelativeError);
  EXPECT_NEAR(summary.p999_us, 2000.0, 2000.0 * kRelativeError);
  EXPECT_DOUBLE_EQ(summary.max_us, 2000.0);
  EXPECT_DOUBLE_EQ(summary.mean_us, 2000.0);
}

}  // namespace
}  // namespace leapme::workload
