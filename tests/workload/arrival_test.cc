#include "workload/arrival.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace leapme::workload {
namespace {

TEST(ArrivalScheduleTest, RejectsNonPositiveShapes) {
  EXPECT_FALSE(ArrivalSchedule::Build({.target_rps = 0.0}).ok());
  EXPECT_FALSE(ArrivalSchedule::Build({.target_rps = -5.0}).ok());
  EXPECT_FALSE(
      ArrivalSchedule::Build({.target_rps = 100.0, .duration_s = 0.0}).ok());
  // rps * duration below half an event rounds to zero arrivals.
  EXPECT_FALSE(
      ArrivalSchedule::Build({.target_rps = 0.1, .duration_s = 1.0}).ok());
}

TEST(ArrivalScheduleTest, EventCountIsRateTimesDuration) {
  auto schedule =
      ArrivalSchedule::Build({.target_rps = 250.0, .duration_s = 4.0});
  ASSERT_TRUE(schedule.ok());
  EXPECT_EQ(schedule->size(), 1000u);
}

TEST(ArrivalScheduleTest, MetronomeSpacingIsExact) {
  auto schedule = ArrivalSchedule::Build(
      {.target_rps = 1000.0, .duration_s = 0.1, .poisson = false});
  ASSERT_TRUE(schedule.ok());
  ASSERT_EQ(schedule->size(), 100u);
  for (size_t i = 0; i < schedule->size(); ++i) {
    EXPECT_EQ(schedule->intended_nanos(i), i * 1000000u);
  }
}

TEST(ArrivalScheduleTest, PoissonGapsAverageTheMeanGap) {
  auto schedule = ArrivalSchedule::Build(
      {.target_rps = 500.0, .duration_s = 20.0, .poisson = true, .seed = 3});
  ASSERT_TRUE(schedule.ok());
  ASSERT_EQ(schedule->size(), 10000u);
  EXPECT_EQ(schedule->intended_nanos(0), 0u);
  for (size_t i = 1; i < schedule->size(); ++i) {
    EXPECT_GE(schedule->intended_nanos(i), schedule->intended_nanos(i - 1));
  }
  // The last intended time is the sum of n-1 exponential gaps: mean
  // (n-1)/rps seconds, stddev sqrt(n-1)/rps — 10 sigma here is ~5% slack.
  const double last_s =
      static_cast<double>(schedule->intended_nanos(schedule->size() - 1)) /
      1e9;
  EXPECT_NEAR(last_s, 20.0, 1.0);
  // And the gaps must actually vary — a metronome in disguise would
  // defeat the memoryless-traffic point of the Poisson mode.
  std::vector<uint64_t> gaps;
  for (size_t i = 1; i < 1000; ++i) {
    gaps.push_back(schedule->intended_nanos(i) -
                   schedule->intended_nanos(i - 1));
  }
  double mean = 0.0;
  for (const uint64_t gap : gaps) mean += static_cast<double>(gap);
  mean /= static_cast<double>(gaps.size());
  double variance = 0.0;
  for (const uint64_t gap : gaps) {
    const double d = static_cast<double>(gap) - mean;
    variance += d * d;
  }
  variance /= static_cast<double>(gaps.size());
  // Exponential gaps have stddev == mean; require at least half that.
  EXPECT_GT(std::sqrt(variance), 0.5 * mean);
}

TEST(ArrivalScheduleTest, SameSeedReproducesTheSchedule) {
  const ArrivalOptions options{
      .target_rps = 200.0, .duration_s = 2.0, .poisson = true, .seed = 17};
  auto a = ArrivalSchedule::Build(options);
  auto b = ArrivalSchedule::Build(options);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ(a->intended_nanos(i), b->intended_nanos(i));
  }
  auto c = ArrivalSchedule::Build({.target_rps = 200.0,
                                   .duration_s = 2.0,
                                   .poisson = true,
                                   .seed = 18});
  ASSERT_TRUE(c.ok());
  size_t differences = 0;
  for (size_t i = 1; i < c->size(); ++i) {
    if (c->intended_nanos(i) != a->intended_nanos(i)) ++differences;
  }
  EXPECT_GT(differences, c->size() / 2);
}

}  // namespace
}  // namespace leapme::workload
