// Coordinated-omission stall tests: when the server (or the fire
// callback) stalls, the intended-start clock must absorb the backlog
// the schedule kept offering, while the send-start clock — the one a
// closed-loop harness reports — stays blind to it. These are the tests
// that justify carrying two histograms through the open-loop runner.

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/faults/fault_injector.h"
#include "core/leapme.h"
#include "data/domain.h"
#include "data/generator.h"
#include "data/splitting.h"
#include "embedding/caching_model.h"
#include "embedding/synthetic_model.h"
#include "serve/json.h"
#include "serve/matcher_service.h"
#include "serve/tcp_server.h"
#include "tools/line_client.h"
#include "workload/arrival.h"
#include "workload/open_loop.h"

namespace leapme::workload {
namespace {

// A stalled fire callback, no server involved: 3 events block for 450ms
// each while the metronome keeps scheduling arrivals. The ~270 events
// that pile up behind the 1.35s stall fire late, so their intended-clock
// latency carries the backlog even though each call itself is instant.
TEST(OpenLoopRunnerTest, StalledFireInflatesTheIntendedClock) {
  auto schedule = ArrivalSchedule::Build(
      {.target_rps = 200.0, .duration_s = 2.0, .poisson = false});
  ASSERT_TRUE(schedule.ok());
  OpenLoopResult result;
  RunOpenLoop(
      *schedule, 1,
      [](size_t event) {
        if (event < 3) {
          std::this_thread::sleep_for(std::chrono::milliseconds(450));
        }
        return Outcome::kOk;
      },
      &result);
  EXPECT_EQ(result.sent, schedule->size());
  EXPECT_EQ(result.ok, result.sent);
  EXPECT_GT(result.late_starts, 50u);

  const LatencyRecorder::Summary intended = result.intended.Snapshot();
  const LatencyRecorder::Summary service = result.service.Snapshot();
  // The stalls total 1.35s, so ~2/3 of the 400 intended arrivals queue
  // up behind them and fire late. On the send-start clock 99% of events
  // are no-ops (3 of 400 stalled is under the p99 rank), so the
  // closed-loop view stays flat — that asymmetry is coordinated
  // omission.
  EXPECT_GT(intended.p99_us, 300000.0);
  EXPECT_GT(intended.p50_us, 100000.0);
  EXPECT_GT(intended.p99_us, 10.0 * service.p99_us);
}

TEST(OpenLoopRunnerTest, OutcomesAreTalliedPerClass) {
  auto schedule = ArrivalSchedule::Build(
      {.target_rps = 1000.0, .duration_s = 0.01, .poisson = false});
  ASSERT_TRUE(schedule.ok());
  ASSERT_EQ(schedule->size(), 10u);
  OpenLoopResult result;
  RunOpenLoop(
      *schedule, 2,
      [](size_t event) {
        switch (event % 5) {
          case 0: return Outcome::kOk;
          case 1: return Outcome::kDegraded;
          case 2: return Outcome::kShed;
          case 3: return Outcome::kDeadline;
          default: return Outcome::kError;
        }
      },
      &result);
  EXPECT_EQ(result.sent, 10u);
  EXPECT_EQ(result.ok, 2u);
  EXPECT_EQ(result.degraded, 2u);
  EXPECT_EQ(result.shed, 2u);
  EXPECT_EQ(result.deadline, 2u);
  EXPECT_EQ(result.errors, 2u);
  // Every outcome still lands in both histograms: shed and errored
  // arrivals are part of the traffic the server was offered.
  EXPECT_EQ(result.intended.count(), 10u);
  EXPECT_EQ(result.service.count(), 10u);
}

// ---------------------------------------------------------------------
// The same property through the real serve stack, with the stall coming
// from an injected LEAPME_FAULTS-style read delay.

class SoakStallTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::GeneratorOptions generator;
    generator.num_sources = 3;
    generator.min_entities_per_source = 6;
    generator.max_entities_per_source = 6;
    generator.seed = 71;
    dataset_ = new data::Dataset(
        data::GenerateCatalog(data::TvDomain(), generator).value());
    base_model_ = new embedding::SyntheticEmbeddingModel(
        embedding::SyntheticEmbeddingModel::Build(
            data::DomainClusters(data::TvDomain()),
            {.dimension = 16,
             .seed = 72,
             .oov_policy = embedding::OovPolicy::kHashedVector})
            .value());
    cached_model_ = new embedding::CachingEmbeddingModel(base_model_, 4096);
    Rng rng(73);
    std::vector<data::SourceId> sources{0, 1};
    auto training =
        data::BuildTrainingPairs(*dataset_, sources, 2.0, rng).value();
    matcher_ = new core::LeapmeMatcher(cached_model_);
    ASSERT_TRUE(matcher_->Fit(*dataset_, training).ok());
  }

  void TearDown() override { faults::FaultInjector::Global().Disarm(); }

  static std::string ScoreLine(size_t event) {
    const auto pairs = dataset_->AllCrossSourcePairs();
    std::string line = "{\"op\":\"score\",\"id\":" + std::to_string(event) +
                       ",\"pairs\":[";
    for (size_t i = 0; i < 2; ++i) {
      const auto& pair = pairs[(event * 2 + i) % pairs.size()];
      if (i > 0) line += ',';
      for (const data::PropertyId id : {pair.a, pair.b}) {
        line += (id == pair.a) ? "{\"a\":" : ",\"b\":";
        line += "{\"name\":";
        serve::AppendJsonString(&line, dataset_->property(id).name);
        line += ",\"values\":[";
        const auto& instances = dataset_->instances(id);
        for (size_t v = 0; v < instances.size(); ++v) {
          if (v > 0) line += ',';
          serve::AppendJsonString(&line, instances[v].value);
        }
        line += "]}";
      }
      line += "}";
    }
    line += "]}";
    return line;
  }

  static data::Dataset* dataset_;
  static embedding::SyntheticEmbeddingModel* base_model_;
  static embedding::CachingEmbeddingModel* cached_model_;
  static core::LeapmeMatcher* matcher_;
};

data::Dataset* SoakStallTest::dataset_ = nullptr;
embedding::SyntheticEmbeddingModel* SoakStallTest::base_model_ = nullptr;
embedding::CachingEmbeddingModel* SoakStallTest::cached_model_ = nullptr;
core::LeapmeMatcher* SoakStallTest::matcher_ = nullptr;

TEST_F(SoakStallTest, InjectedReadDelayInflatesTheIntendedP99) {
  serve::MatcherService service(matcher_, cached_model_);
  serve::ServerOptions server_options;
  server_options.port = 0;
  server_options.deadline_ms = 10000;  // never the thing that fires here
  serve::TcpServer server(&service, server_options);
  ASSERT_TRUE(server.Start().ok());
  const int port = server.port();

  // Three 250ms read stalls early in the run: 750ms of backlog against
  // a 1.5s schedule. p=1 + n=3 makes the stall deterministic.
  ASSERT_TRUE(faults::FaultInjector::Global()
                  .Arm("seed=5;serve.read:delay:p=1:ms=250:n=3")
                  .ok());

  auto schedule = ArrivalSchedule::Build(
      {.target_rps = 60.0, .duration_s = 1.5, .poisson = true, .seed = 74});
  ASSERT_TRUE(schedule.ok());
  OpenLoopResult result;
  RunOpenLoop(
      *schedule, 1,
      [&](size_t event) {
        thread_local std::unique_ptr<tools::LineClient> client;
        if (client == nullptr || !client->connected()) {
          client = std::make_unique<tools::LineClient>("127.0.0.1", port);
        }
        if (!client->connected()) return Outcome::kError;
        std::string response;
        if (!client->RoundTrip(ScoreLine(event), &response)) {
          client.reset();
          return Outcome::kError;
        }
        return response.find("\"ok\":true") != std::string::npos
                   ? Outcome::kOk
                   : Outcome::kError;
      },
      &result);
  faults::FaultInjector::Global().Disarm();
  server.Stop();

  EXPECT_EQ(result.sent, schedule->size());
  EXPECT_EQ(result.ok + result.degraded + result.shed + result.deadline +
                result.errors,
            result.sent);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_GT(faults::FaultInjector::Global().injected(), 0u);

  const LatencyRecorder::Summary intended = result.intended.Snapshot();
  const LatencyRecorder::Summary service_clock = result.service.Snapshot();
  // The acceptance property for the whole subsystem: the injected stall
  // must show up in the intended-clock tail. 750ms of stall against
  // ~17ms mean gaps late-fires tens of requests, so the intended p99
  // sits above 100ms regardless of how fast the host is — a slower host
  // only deepens the backlog. No upper-bound assert on the service
  // clock: the three stalled requests themselves may straddle its p99.
  EXPECT_GT(intended.p99_us, 100000.0);
  EXPECT_GE(intended.p50_us, service_clock.p50_us);
  EXPECT_GT(result.late_starts, 10u);
}

}  // namespace
}  // namespace leapme::workload
