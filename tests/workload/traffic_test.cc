#include "workload/traffic.h"

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "workload/arrival.h"

namespace leapme::workload {
namespace {

TEST(RequestSamplerTest, RejectsEmptyCatalog) {
  EXPECT_FALSE(RequestSampler::Build({.catalog_size = 0}).ok());
}

TEST(RequestSamplerTest, DrawsStayInsideTheCatalog) {
  auto sampler =
      RequestSampler::Build({.catalog_size = 37, .zipf_s = 1.0, .seed = 5});
  ASSERT_TRUE(sampler.ok());
  for (size_t i = 0; i < 5000; ++i) {
    EXPECT_LT(sampler->PropertyAt(i), 37u);
    EXPECT_LT(sampler->PairPropertyAt(i), 37u);
    EXPECT_LT(sampler->RankAt(i), 37u);
  }
}

TEST(RequestSamplerTest, HotRanksScatterAcrossTheCatalog) {
  // The popularity permutation must cover every property exactly once:
  // walking all ranks through PropertyAt's mapping (via events that hit
  // each rank) touches each property id at most once per rank. Checked
  // indirectly: over many events the distinct-property count approaches
  // the catalog, which a broken (non-bijective) mapping would cap.
  auto sampler =
      RequestSampler::Build({.catalog_size = 64, .zipf_s = 0.0, .seed = 9});
  ASSERT_TRUE(sampler.ok());
  std::set<size_t> seen;
  for (size_t i = 0; i < 20000; ++i) seen.insert(sampler->PropertyAt(i));
  EXPECT_EQ(seen.size(), 64u);
}

TEST(RequestSamplerTest, SeedChangesThePermutation) {
  auto a =
      RequestSampler::Build({.catalog_size = 500, .zipf_s = 1.0, .seed = 1});
  auto b =
      RequestSampler::Build({.catalog_size = 500, .zipf_s = 1.0, .seed = 2});
  ASSERT_TRUE(a.ok() && b.ok());
  size_t differences = 0;
  for (size_t i = 0; i < 200; ++i) {
    if (a->PropertyAt(i) != b->PropertyAt(i)) ++differences;
  }
  EXPECT_GT(differences, 100u);
}

// The determinism property the open-loop runner depends on: draws are a
// pure function of the event index, so client threads that stride over
// the schedule (thread t takes events i % T == t) collectively offer
// exactly the traffic a single thread would.
TEST(RequestSamplerTest, StridePartitionReassemblesTheSingleThreadStream) {
  auto sampler = RequestSampler::Build(
      {.catalog_size = 1000, .zipf_s = 1.0, .seed = 42});
  ASSERT_TRUE(sampler.ok());
  const size_t kEvents = 4000;
  std::vector<size_t> single(kEvents);
  for (size_t i = 0; i < kEvents; ++i) single[i] = sampler->PropertyAt(i);

  const unsigned kThreads = 4;
  std::vector<size_t> reassembled(kEvents, ~size_t{0});
  for (unsigned thread = 0; thread < kThreads; ++thread) {
    for (size_t i = thread; i < kEvents; i += kThreads) {
      reassembled[i] = sampler->PropertyAt(i);
    }
  }
  EXPECT_EQ(single, reassembled);
}

TEST(RequestSamplerTest, EmpiricalRankFrequenciesTrackThePmf) {
  auto sampler = RequestSampler::Build(
      {.catalog_size = 200, .zipf_s = 1.0, .seed = 7});
  ASSERT_TRUE(sampler.ok());
  const size_t kEvents = 200000;
  std::vector<size_t> counts(200, 0);
  for (size_t i = 0; i < kEvents; ++i) ++counts[sampler->RankAt(i)];
  // The head ranks carry enough mass for tight relative bounds; the
  // deep tail is checked in aggregate.
  double tail_mass = 0.0;
  double tail_frequency = 0.0;
  for (size_t rank = 0; rank < 200; ++rank) {
    const double pmf = sampler->distribution().pmf(rank);
    const double frequency =
        static_cast<double>(counts[rank]) / static_cast<double>(kEvents);
    if (rank < 10) {
      EXPECT_NEAR(frequency, pmf, 0.1 * pmf) << "rank=" << rank;
    } else {
      tail_mass += pmf;
      tail_frequency += frequency;
    }
  }
  EXPECT_NEAR(tail_frequency, tail_mass, 0.02 * tail_mass);
}

TEST(RequestSamplerTest, PairDrawDecorrelatesFromPrimaryDraw) {
  auto sampler = RequestSampler::Build(
      {.catalog_size = 100, .zipf_s = 0.0, .seed = 11});
  ASSERT_TRUE(sampler.ok());
  size_t coincidences = 0;
  const size_t kEvents = 10000;
  for (size_t i = 0; i < kEvents; ++i) {
    if (sampler->PropertyAt(i) == sampler->PairPropertyAt(i)) ++coincidences;
  }
  // Independent uniform draws over 100 properties coincide ~1% of the
  // time; perfectly correlated streams would coincide always.
  EXPECT_LT(coincidences, kEvents / 20);
}

}  // namespace
}  // namespace leapme::workload
