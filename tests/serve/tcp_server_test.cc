// End-to-end tests for the TCP scoring server: ephemeral-port startup,
// concurrent clients with bit-identical wire scores, protocol abuse
// (malformed JSON, oversized lines, half-closed connections), stats, and
// graceful shutdown.

#include "serve/tcp_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/leapme.h"
#include "data/domain.h"
#include "data/generator.h"
#include "data/splitting.h"
#include "embedding/caching_model.h"
#include "embedding/synthetic_model.h"
#include "serve/json.h"

namespace leapme::serve {
namespace {

/// Minimal blocking line client for tests.
class TestClient {
 public:
  explicit TestClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_in address = {};
    address.sin_family = AF_INET;
    address.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                  sizeof(address)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return fd_ >= 0; }

  bool SendRaw(std::string_view bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent,
                               bytes.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  bool SendLine(const std::string& line) { return SendRaw(line + "\n"); }

  /// Reads until '\n'; false on EOF before a complete line.
  bool ReadLine(std::string* out) {
    while (true) {
      const size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        *out = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  /// True once the server closes its side (EOF on a fresh read).
  bool AtEof() {
    char byte;
    return ::recv(fd_, &byte, 1, 0) == 0;
  }

  void HalfCloseWrites() { ::shutdown(fd_, SHUT_WR); }

 private:
  int fd_ = -1;
  std::string buffer_;
};

std::string SpecJson(const data::Dataset& dataset, data::PropertyId id) {
  std::string out = "{\"name\":";
  AppendJsonString(&out, dataset.property(id).name);
  out += ",\"values\":[";
  const auto& instances = dataset.instances(id);
  for (size_t i = 0; i < instances.size(); ++i) {
    if (i > 0) out += ',';
    AppendJsonString(&out, instances[i].value);
  }
  out += "]}";
  return out;
}

std::string ScoreRequestJson(const data::Dataset& dataset,
                             const std::vector<data::PropertyPair>& pairs,
                             int64_t id) {
  std::string line = "{\"op\":\"score\",\"id\":" + std::to_string(id) +
                     ",\"pairs\":[";
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (i > 0) line += ',';
    line += "{\"a\":" + SpecJson(dataset, pairs[i].a) +
            ",\"b\":" + SpecJson(dataset, pairs[i].b) + "}";
  }
  line += "]}";
  return line;
}

class TcpServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::GeneratorOptions generator;
    generator.num_sources = 4;
    generator.min_entities_per_source = 8;
    generator.max_entities_per_source = 8;
    generator.seed = 81;
    dataset_ = new data::Dataset(
        data::GenerateCatalog(data::TvDomain(), generator).value());
    base_model_ = new embedding::SyntheticEmbeddingModel(
        embedding::SyntheticEmbeddingModel::Build(
            data::DomainClusters(data::TvDomain()),
            {.dimension = 16,
             .seed = 82,
             .oov_policy = embedding::OovPolicy::kHashedVector})
            .value());
    cached_model_ = new embedding::CachingEmbeddingModel(base_model_, 4096);
    Rng rng(83);
    std::vector<data::SourceId> sources{0, 1, 2};
    auto training =
        data::BuildTrainingPairs(*dataset_, sources, 2.0, rng).value();
    core::LeapmeMatcher trained(base_model_);
    ASSERT_TRUE(trained.Fit(*dataset_, training).ok());
    // Per-process name: ctest runs each test in its own process, and
    // concurrent SetUpTestSuite calls must not race on one file.
    const std::string path = ::testing::TempDir() + "/tcp." +
                             std::to_string(::getpid()) + ".model";
    ASSERT_TRUE(trained.SaveModel(path).ok());
    matcher_ = new core::LeapmeMatcher(
        core::LeapmeMatcher::LoadModel(cached_model_, path).value());
  }

  static data::Dataset* dataset_;
  static embedding::SyntheticEmbeddingModel* base_model_;
  static embedding::CachingEmbeddingModel* cached_model_;
  static core::LeapmeMatcher* matcher_;
};

data::Dataset* TcpServerTest::dataset_ = nullptr;
embedding::SyntheticEmbeddingModel* TcpServerTest::base_model_ = nullptr;
embedding::CachingEmbeddingModel* TcpServerTest::cached_model_ = nullptr;
core::LeapmeMatcher* TcpServerTest::matcher_ = nullptr;

TEST_F(TcpServerTest, StartsOnEphemeralPortAndAnswersPing) {
  MatcherService service(matcher_, cached_model_);
  TcpServer server(&service);  // port 0 = ephemeral
  ASSERT_TRUE(server.Start().ok());
  EXPECT_GT(server.port(), 0);

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.SendLine(R"({"op":"ping","id":1})"));
  std::string response;
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_EQ(response, R"({"id":1,"ok":true,"op":"ping"})");
  server.Stop();
}

TEST_F(TcpServerTest, StartFailsOnBusyPort) {
  MatcherService service(matcher_, cached_model_);
  TcpServer first(&service);
  ASSERT_TRUE(first.Start().ok());
  ServerOptions options;
  options.port = first.port();
  TcpServer second(&service, options);
  EXPECT_FALSE(second.Start().ok());
  first.Stop();
}

TEST_F(TcpServerTest, WireScoresBitIdenticalUnderConcurrentClients) {
  MatcherService service(matcher_, cached_model_);
  TcpServer server(&service);
  ASSERT_TRUE(server.Start().ok());

  std::vector<data::PropertyPair> pairs = dataset_->AllCrossSourcePairs();
  pairs.resize(std::min<size_t>(pairs.size(), 16));
  const std::vector<double> offline =
      matcher_->ScorePairsOn(*dataset_, pairs).value();

  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 3;
  std::vector<std::vector<std::string>> responses(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      TestClient client(server.port());
      ASSERT_TRUE(client.connected());
      for (int r = 0; r < kRequestsPerClient; ++r) {
        ASSERT_TRUE(client.SendLine(
            ScoreRequestJson(*dataset_, pairs, c * 100 + r)));
        std::string response;
        ASSERT_TRUE(client.ReadLine(&response));
        responses[c].push_back(std::move(response));
      }
    });
  }
  for (auto& client : clients) client.join();

  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(responses[c].size(), static_cast<size_t>(kRequestsPerClient));
    for (int r = 0; r < kRequestsPerClient; ++r) {
      auto parsed = JsonValue::Parse(responses[c][r]);
      ASSERT_TRUE(parsed.ok()) << responses[c][r];
      ASSERT_TRUE(parsed->Find("ok")->AsBool()) << responses[c][r];
      EXPECT_DOUBLE_EQ(parsed->Find("id")->AsNumber(), c * 100 + r);
      const auto& scores = parsed->Find("scores")->AsArray();
      ASSERT_EQ(scores.size(), offline.size());
      for (size_t i = 0; i < offline.size(); ++i) {
        // Bit-identical across the wire, for every client and request.
        EXPECT_EQ(scores[i].AsNumber(), offline[i])
            << "client " << c << " request " << r << " pair " << i;
      }
    }
  }
  server.Stop();
}

TEST_F(TcpServerTest, StatsShowBatchingAndCacheHits) {
  ServiceOptions service_options;
  service_options.batch_window_us = 2000;  // encourage coalescing
  MatcherService service(matcher_, cached_model_, service_options);
  TcpServer server(&service);
  ASSERT_TRUE(server.Start().ok());

  std::vector<data::PropertyPair> pairs = dataset_->AllCrossSourcePairs();
  pairs.resize(std::min<size_t>(pairs.size(), 12));
  {
    TestClient client(server.port());
    ASSERT_TRUE(client.connected());
    for (int r = 0; r < 2; ++r) {
      ASSERT_TRUE(client.SendLine(ScoreRequestJson(*dataset_, pairs, r)));
      std::string response;
      ASSERT_TRUE(client.ReadLine(&response));
    }
    ASSERT_TRUE(client.SendLine(R"({"op":"stats","id":9})"));
    std::string response;
    ASSERT_TRUE(client.ReadLine(&response));
    auto parsed = JsonValue::Parse(response);
    ASSERT_TRUE(parsed.ok()) << response;
    const JsonValue* stats = parsed->Find("stats");
    ASSERT_NE(stats, nullptr);
    EXPECT_GE(stats->Find("score_requests")->AsNumber(), 2.0);
    EXPECT_GE(stats->Find("pairs_scored")->AsNumber(),
              static_cast<double>(2 * pairs.size()));
    // A 12-pair request lands in one micro-batch, so the histogram has
    // entries beyond the size-1 bucket.
    const JsonValue* histogram = stats->Find("batch_histogram");
    ASSERT_NE(histogram, nullptr);
    bool has_multi_pair_bucket = false;
    for (const std::string& key : histogram->ObjectKeys()) {
      if (key != "1") has_multi_pair_bucket = true;
    }
    EXPECT_TRUE(has_multi_pair_bucket);
    // Same properties twice: both caches must be hitting.
    EXPECT_GT(stats->Find("property_cache_hits")->AsNumber(), 0.0);
    EXPECT_GT(stats->Find("embedding_cache_hits")->AsNumber(), 0.0);
    EXPECT_GE(stats->Find("connections_active")->AsNumber(), 1.0);
    EXPECT_GE(stats->Find("latency_samples")->AsNumber(), 2.0);
  }
  server.Stop();
}

TEST_F(TcpServerTest, MalformedLinesGetErrorsConnectionSurvives) {
  MatcherService service(matcher_, cached_model_);
  TcpServer server(&service);
  ASSERT_TRUE(server.Start().ok());

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  for (const char* bad :
       {"garbage", "{\"op\":\"score\"}", "[]", "{\"op\":\"ping\",\"id\":\"x\"}",
        "{\"op\":\"frob\"}"}) {
    ASSERT_TRUE(client.SendLine(bad));
    std::string response;
    ASSERT_TRUE(client.ReadLine(&response)) << bad;
    auto parsed = JsonValue::Parse(response);
    ASSERT_TRUE(parsed.ok()) << response;
    EXPECT_FALSE(parsed->Find("ok")->AsBool()) << bad;
  }
  // The connection is still usable afterwards.
  ASSERT_TRUE(client.SendLine(R"({"op":"ping"})"));
  std::string response;
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_EQ(response, R"({"ok":true,"op":"ping"})");
  server.Stop();
}

TEST_F(TcpServerTest, BlankAndCrlfLinesAreTolerated) {
  MatcherService service(matcher_, cached_model_);
  TcpServer server(&service);
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  // Empty lines are skipped, CR is stripped; both pings get answers.
  ASSERT_TRUE(client.SendRaw("\n\r\n{\"op\":\"ping\",\"id\":1}\r\n"
                             "{\"op\":\"ping\",\"id\":2}\n"));
  std::string response;
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_EQ(response, R"({"id":1,"ok":true,"op":"ping"})");
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_EQ(response, R"({"id":2,"ok":true,"op":"ping"})");
  server.Stop();
}

TEST_F(TcpServerTest, OversizedLineGetsErrorThenClose) {
  MatcherService service(matcher_, cached_model_);
  ServerOptions options;
  options.max_line_bytes = 1024;
  TcpServer server(&service, options);
  ASSERT_TRUE(server.Start().ok());

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  // 8 KiB without a newline blows the frame limit.
  std::string huge(8192, 'x');
  ASSERT_TRUE(client.SendRaw(huge));
  std::string response;
  ASSERT_TRUE(client.ReadLine(&response));
  auto parsed = JsonValue::Parse(response);
  ASSERT_TRUE(parsed.ok()) << response;
  EXPECT_FALSE(parsed->Find("ok")->AsBool());
  EXPECT_TRUE(client.AtEof());
  server.Stop();
}

TEST_F(TcpServerTest, HalfClosedConnectionStillGetsResponses) {
  MatcherService service(matcher_, cached_model_);
  TcpServer server(&service);
  ASSERT_TRUE(server.Start().ok());

  std::vector<data::PropertyPair> pairs = dataset_->AllCrossSourcePairs();
  pairs.resize(std::min<size_t>(pairs.size(), 4));
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.SendLine(ScoreRequestJson(*dataset_, pairs, 1)));
  client.HalfCloseWrites();  // we will not send anything else
  std::string response;
  ASSERT_TRUE(client.ReadLine(&response));
  auto parsed = JsonValue::Parse(response);
  ASSERT_TRUE(parsed.ok()) << response;
  EXPECT_TRUE(parsed->Find("ok")->AsBool());
  EXPECT_TRUE(client.AtEof());
  server.Stop();
}

TEST_F(TcpServerTest, AbruptDisconnectsDoNotBreakTheServer) {
  MatcherService service(matcher_, cached_model_);
  TcpServer server(&service);
  ASSERT_TRUE(server.Start().ok());
  for (int i = 0; i < 5; ++i) {
    TestClient client(server.port());
    ASSERT_TRUE(client.connected());
    // Drop the connection mid-request (no newline sent).
    client.SendRaw("{\"op\":\"ping\"");
  }
  // Server still serves new clients.
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.SendLine(R"({"op":"ping"})"));
  std::string response;
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_EQ(response, R"({"ok":true,"op":"ping"})");
  server.Stop();
}

TEST_F(TcpServerTest, RequestLargerThanQueueBoundIsShedWithRetryHint) {
  ServiceOptions service_options;
  service_options.max_queue_pairs = 4;
  MatcherService service(matcher_, cached_model_, service_options);
  TcpServer server(&service);
  ASSERT_TRUE(server.Start().ok());

  std::vector<data::PropertyPair> pairs = dataset_->AllCrossSourcePairs();
  pairs.resize(std::min<size_t>(pairs.size(), 8));  // 8 pairs > bound 4
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.SendLine(ScoreRequestJson(*dataset_, pairs, 1)));
  std::string response;
  ASSERT_TRUE(client.ReadLine(&response));
  auto parsed = JsonValue::Parse(response);
  ASSERT_TRUE(parsed.ok()) << response;
  EXPECT_FALSE(parsed->Find("ok")->AsBool()) << response;
  const JsonValue* error = parsed->Find("error");
  ASSERT_NE(error, nullptr) << response;
  EXPECT_EQ(error->Find("code")->AsString(), "ResourceExhausted");
  ASSERT_NE(error->Find("retry_after_ms"), nullptr) << response;
  EXPECT_GT(error->Find("retry_after_ms")->AsNumber(), 0.0);

  // Shedding is per request, not per connection: a request that fits the
  // bound scores normally on the same socket.
  pairs.resize(2);
  ASSERT_TRUE(client.SendLine(ScoreRequestJson(*dataset_, pairs, 2)));
  ASSERT_TRUE(client.ReadLine(&response));
  parsed = JsonValue::Parse(response);
  ASSERT_TRUE(parsed.ok()) << response;
  EXPECT_TRUE(parsed->Find("ok")->AsBool()) << response;
  EXPECT_GE(service.Snapshot().rejected_overload, 1u);
  server.Stop();
}

TEST_F(TcpServerTest, SaturationPastQueueBoundNeverHangsOrDropsSilently) {
  ServiceOptions service_options;
  service_options.max_queue_pairs = 16;
  service_options.batch_window_us = 20000;  // keep the queue occupied
  MatcherService service(matcher_, cached_model_, service_options);
  TcpServer server(&service);
  ASSERT_TRUE(server.Start().ok());

  std::vector<data::PropertyPair> pairs = dataset_->AllCrossSourcePairs();
  pairs.resize(std::min<size_t>(pairs.size(), 8));
  const std::vector<double> offline =
      matcher_->ScorePairsOn(*dataset_, pairs).value();

  // 8 clients x 3 requests x 8 pairs against a 16-pair admission queue:
  // well past saturation. The contract under test: every connection gets
  // either a bit-identical scored reply or a well-formed typed rejection
  // carrying a retry hint — never a hang or a silent drop.
  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 3;
  std::atomic<int> scored{0};
  std::atomic<int> shed{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      TestClient client(server.port());
      ASSERT_TRUE(client.connected());
      for (int r = 0; r < kRequestsPerClient; ++r) {
        ASSERT_TRUE(client.SendLine(
            ScoreRequestJson(*dataset_, pairs, c * 100 + r)));
        std::string response;
        ASSERT_TRUE(client.ReadLine(&response)) << "client " << c;
        auto parsed = JsonValue::Parse(response);
        ASSERT_TRUE(parsed.ok()) << response;
        if (parsed->Find("ok")->AsBool()) {
          const auto& scores = parsed->Find("scores")->AsArray();
          ASSERT_EQ(scores.size(), offline.size());
          for (size_t i = 0; i < offline.size(); ++i) {
            EXPECT_EQ(scores[i].AsNumber(), offline[i])
                << "client " << c << " request " << r << " pair " << i;
          }
          scored.fetch_add(1);
        } else {
          const JsonValue* error = parsed->Find("error");
          ASSERT_NE(error, nullptr) << response;
          const std::string code = error->Find("code")->AsString();
          EXPECT_TRUE(code == "ResourceExhausted" || code == "Unavailable")
              << response;
          ASSERT_NE(error->Find("retry_after_ms"), nullptr) << response;
          shed.fetch_add(1);
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  EXPECT_EQ(scored.load() + shed.load(), kClients * kRequestsPerClient);
  EXPECT_GT(scored.load(), 0);  // the server kept making progress
  server.Stop();
}

TEST_F(TcpServerTest, ConnectionCapRejectsInlineThenRecovers) {
  MatcherService service(matcher_, cached_model_);
  ServerOptions options;
  options.max_connections = 1;
  TcpServer server(&service, options);
  ASSERT_TRUE(server.Start().ok());

  {
    TestClient occupant(server.port());
    ASSERT_TRUE(occupant.connected());
    ASSERT_TRUE(occupant.SendLine(R"({"op":"ping","id":1})"));
    std::string response;
    ASSERT_TRUE(occupant.ReadLine(&response));  // definitely registered

    // Past the cap: one inline Unavailable reply with a hint, then EOF.
    TestClient second(server.port());
    ASSERT_TRUE(second.connected());
    ASSERT_TRUE(second.ReadLine(&response));
    auto parsed = JsonValue::Parse(response);
    ASSERT_TRUE(parsed.ok()) << response;
    EXPECT_FALSE(parsed->Find("ok")->AsBool()) << response;
    const JsonValue* error = parsed->Find("error");
    ASSERT_NE(error, nullptr) << response;
    EXPECT_EQ(error->Find("code")->AsString(), "Unavailable");
    ASSERT_NE(error->Find("retry_after_ms"), nullptr) << response;
    EXPECT_TRUE(second.AtEof());
    EXPECT_GE(service.Snapshot().connections_rejected, 1u);
  }

  // The occupant closed; once its worker notices, capacity frees up.
  bool served = false;
  for (int attempt = 0; attempt < 100 && !served; ++attempt) {
    TestClient retry(server.port());
    std::string response;
    if (retry.connected() && retry.SendLine(R"({"op":"ping","id":2})") &&
        retry.ReadLine(&response)) {
      auto parsed = JsonValue::Parse(response);
      served = parsed.ok() && parsed->Find("ok")->AsBool();
    }
    if (!served) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_TRUE(served);
  server.Stop();
}

TEST_F(TcpServerTest, StalledRequestLineHitsDeadlineWithTypedReply) {
  MatcherService service(matcher_, cached_model_);
  ServerOptions options;
  options.deadline_ms = 100;
  TcpServer server(&service, options);
  ASSERT_TRUE(server.Start().ok());

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  // Start a request line but never finish it: the budget starts with the
  // first bytes and expires waiting for the rest.
  ASSERT_TRUE(client.SendRaw("{\"op\":\"ping\""));
  std::string response;
  ASSERT_TRUE(client.ReadLine(&response));
  auto parsed = JsonValue::Parse(response);
  ASSERT_TRUE(parsed.ok()) << response;
  EXPECT_FALSE(parsed->Find("ok")->AsBool()) << response;
  EXPECT_EQ(parsed->Find("error")->Find("code")->AsString(),
            "DeadlineExceeded");
  EXPECT_TRUE(client.AtEof());
  EXPECT_GE(service.Snapshot().deadline_exceeded, 1u);

  // An idle connection never times out, and a prompt request is
  // unaffected by the budget.
  TestClient quick(server.port());
  ASSERT_TRUE(quick.connected());
  std::this_thread::sleep_for(std::chrono::milliseconds(150));  // idle > budget
  ASSERT_TRUE(quick.SendLine(R"({"op":"ping","id":9})"));
  ASSERT_TRUE(quick.ReadLine(&response));
  EXPECT_EQ(response, R"({"id":9,"ok":true,"op":"ping"})");
  server.Stop();
}

TEST_F(TcpServerTest, StopWithOpenConnectionsDrainsGracefully) {
  MatcherService service(matcher_, cached_model_);
  TcpServer server(&service);
  ASSERT_TRUE(server.Start().ok());
  TestClient idle(server.port());
  ASSERT_TRUE(idle.connected());
  // Give the accept loop a moment to register the connection.
  ASSERT_TRUE(idle.SendLine(R"({"op":"ping"})"));
  std::string response;
  ASSERT_TRUE(idle.ReadLine(&response));
  server.Stop();  // must not hang on the idle connection
  EXPECT_TRUE(idle.AtEof());
  // Stop is idempotent.
  server.Stop();
}

}  // namespace
}  // namespace leapme::serve
