// Tests for MatcherService: micro-batched scoring that is bit-identical
// to the offline scorer, the property-feature LRU, top-k ordering, and
// the HandleLine protocol dispatch.

#include "serve/matcher_service.h"

#include <unistd.h>

#include <algorithm>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/kernels/kernels.h"
#include "core/leapme.h"
#include "data/domain.h"
#include "data/generator.h"
#include "data/splitting.h"
#include "embedding/caching_model.h"
#include "embedding/synthetic_model.h"
#include "serve/json.h"

namespace leapme::serve {
namespace {

/// The client-side view of a dataset property: surface name plus instance
/// values, exactly what ScorePairsOn derives features from.
PropertySpec SpecOf(const data::Dataset& dataset, data::PropertyId id) {
  PropertySpec spec;
  spec.name = dataset.property(id).name;
  for (const data::InstanceValue& instance : dataset.instances(id)) {
    spec.values.push_back(instance.value);
  }
  return spec;
}

class MatcherServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::GeneratorOptions generator;
    generator.num_sources = 4;
    generator.min_entities_per_source = 8;
    generator.max_entities_per_source = 8;
    generator.seed = 71;
    dataset_ = new data::Dataset(
        data::GenerateCatalog(data::TvDomain(), generator).value());
    base_model_ = new embedding::SyntheticEmbeddingModel(
        embedding::SyntheticEmbeddingModel::Build(
            data::DomainClusters(data::TvDomain()),
            {.dimension = 16,
             .seed = 72,
             .oov_policy = embedding::OovPolicy::kHashedVector})
            .value());
    cached_model_ =
        new embedding::CachingEmbeddingModel(base_model_, 4096);

    // Train offline, persist, and restore through the embedding cache —
    // the exact path `leapme serve` takes.
    Rng rng(73);
    std::vector<data::SourceId> sources{0, 1, 2};
    auto training =
        data::BuildTrainingPairs(*dataset_, sources, 2.0, rng).value();
    core::LeapmeMatcher trained(base_model_);
    ASSERT_TRUE(trained.Fit(*dataset_, training).ok());
    // Per-process name: ctest runs each test in its own process, and
    // concurrent SetUpTestSuite calls must not race on one file.
    const std::string path = ::testing::TempDir() + "/service." +
                             std::to_string(::getpid()) + ".model";
    ASSERT_TRUE(trained.SaveModel(path).ok());
    matcher_ = new core::LeapmeMatcher(
        core::LeapmeMatcher::LoadModel(cached_model_, path).value());
  }

  /// Offline reference scores for cross-source pairs, via the restored
  /// matcher's batch path.
  static std::vector<double> OfflineScores(
      const std::vector<data::PropertyPair>& pairs) {
    return matcher_->ScorePairsOn(*dataset_, pairs).value();
  }

  static data::Dataset* dataset_;
  static embedding::SyntheticEmbeddingModel* base_model_;
  static embedding::CachingEmbeddingModel* cached_model_;
  static core::LeapmeMatcher* matcher_;
};

data::Dataset* MatcherServiceTest::dataset_ = nullptr;
embedding::SyntheticEmbeddingModel* MatcherServiceTest::base_model_ = nullptr;
embedding::CachingEmbeddingModel* MatcherServiceTest::cached_model_ = nullptr;
core::LeapmeMatcher* MatcherServiceTest::matcher_ = nullptr;

TEST_F(MatcherServiceTest, ScoresAreBitIdenticalToOffline) {
  MatcherService service(matcher_, cached_model_);
  std::vector<data::PropertyPair> pairs = dataset_->AllCrossSourcePairs();
  pairs.resize(std::min<size_t>(pairs.size(), 40));
  const std::vector<double> offline = OfflineScores(pairs);

  std::vector<PropertyPairSpec> specs;
  for (const data::PropertyPair& pair : pairs) {
    specs.push_back({SpecOf(*dataset_, pair.a), SpecOf(*dataset_, pair.b)});
  }
  auto scores = service.Score(specs);
  ASSERT_TRUE(scores.ok()) << scores.status();
  ASSERT_EQ(scores->size(), offline.size());
  for (size_t i = 0; i < offline.size(); ++i) {
    EXPECT_EQ((*scores)[i], offline[i]) << "pair " << i;
  }
}

TEST_F(MatcherServiceTest, OneRequestFormsOneBatch) {
  ServiceOptions options;
  options.max_batch = 64;
  options.batch_window_us = 1000;
  MatcherService service(matcher_, cached_model_, options);
  std::vector<data::PropertyPair> pairs = dataset_->AllCrossSourcePairs();
  pairs.resize(std::min<size_t>(pairs.size(), 10));
  std::vector<PropertyPairSpec> specs;
  for (const data::PropertyPair& pair : pairs) {
    specs.push_back({SpecOf(*dataset_, pair.a), SpecOf(*dataset_, pair.b)});
  }
  ASSERT_TRUE(service.Score(specs).ok());
  const ServiceStats stats = service.Snapshot();
  EXPECT_EQ(stats.pairs_scored, specs.size());
  // All pairs of the request were enqueued together, so the batcher took
  // them in one (or at most a few) Infer calls — never one per pair.
  EXPECT_LT(stats.batches, specs.size());
  uint64_t multi_pair_batches = 0;
  for (size_t i = 1; i < stats.batch_histogram.size(); ++i) {
    multi_pair_batches += stats.batch_histogram[i];
  }
  EXPECT_GT(multi_pair_batches, 0u) << "no batch with size > 1";
}

TEST_F(MatcherServiceTest, MaxBatchSplitsLargeRequests) {
  ServiceOptions options;
  options.max_batch = 4;
  options.batch_window_us = 0;
  MatcherService service(matcher_, cached_model_, options);
  std::vector<data::PropertyPair> pairs = dataset_->AllCrossSourcePairs();
  pairs.resize(std::min<size_t>(pairs.size(), 10));
  const std::vector<double> offline = OfflineScores(pairs);
  std::vector<PropertyPairSpec> specs;
  for (const data::PropertyPair& pair : pairs) {
    specs.push_back({SpecOf(*dataset_, pair.a), SpecOf(*dataset_, pair.b)});
  }
  auto scores = service.Score(specs);
  ASSERT_TRUE(scores.ok());
  // Splitting into max_batch-sized chunks does not change any score.
  for (size_t i = 0; i < offline.size(); ++i) {
    EXPECT_EQ((*scores)[i], offline[i]);
  }
  EXPECT_GE(service.Snapshot().batches, 3u);  // ceil(10 / 4)
}

TEST_F(MatcherServiceTest, PropertyCacheHitsOnRepeatedProperties) {
  MatcherService service(matcher_, cached_model_);
  std::vector<data::PropertyPair> pairs = dataset_->AllCrossSourcePairs();
  pairs.resize(std::min<size_t>(pairs.size(), 10));
  std::vector<PropertyPairSpec> specs;
  for (const data::PropertyPair& pair : pairs) {
    specs.push_back({SpecOf(*dataset_, pair.a), SpecOf(*dataset_, pair.b)});
  }
  ASSERT_TRUE(service.Score(specs).ok());
  const uint64_t misses_after_first = service.Snapshot().property_cache_misses;
  ASSERT_TRUE(service.Score(specs).ok());
  const ServiceStats stats = service.Snapshot();
  // Second pass re-used every cached feature vector.
  EXPECT_EQ(stats.property_cache_misses, misses_after_first);
  EXPECT_GE(stats.property_cache_hits, specs.size());
}

TEST_F(MatcherServiceTest, TinyCacheStillScoresCorrectly) {
  ServiceOptions options;
  options.property_cache_capacity = 1;  // constant eviction
  MatcherService service(matcher_, cached_model_, options);
  std::vector<data::PropertyPair> pairs = dataset_->AllCrossSourcePairs();
  pairs.resize(std::min<size_t>(pairs.size(), 10));
  const std::vector<double> offline = OfflineScores(pairs);
  std::vector<PropertyPairSpec> specs;
  for (const data::PropertyPair& pair : pairs) {
    specs.push_back({SpecOf(*dataset_, pair.a), SpecOf(*dataset_, pair.b)});
  }
  auto scores = service.Score(specs);
  ASSERT_TRUE(scores.ok());
  for (size_t i = 0; i < offline.size(); ++i) {
    EXPECT_EQ((*scores)[i], offline[i]);
  }
}

TEST_F(MatcherServiceTest, EmbeddingCacheGetsHits) {
  MatcherService service(matcher_, cached_model_);
  std::vector<data::PropertyPair> pairs = dataset_->AllCrossSourcePairs();
  pairs.resize(std::min<size_t>(pairs.size(), 20));
  std::vector<PropertyPairSpec> specs;
  for (const data::PropertyPair& pair : pairs) {
    specs.push_back({SpecOf(*dataset_, pair.a), SpecOf(*dataset_, pair.b)});
  }
  ASSERT_TRUE(service.Score(specs).ok());
  // Product vocabularies repeat tokens across properties, so the token
  // cache must be hitting by now.
  EXPECT_GT(service.Snapshot().embedding_cache_hits, 0u);
}

TEST_F(MatcherServiceTest, ConcurrentCallersGetBitIdenticalScores) {
  MatcherService service(matcher_, cached_model_);
  std::vector<data::PropertyPair> pairs = dataset_->AllCrossSourcePairs();
  pairs.resize(std::min<size_t>(pairs.size(), 24));
  const std::vector<double> offline = OfflineScores(pairs);
  std::vector<PropertyPairSpec> specs;
  for (const data::PropertyPair& pair : pairs) {
    specs.push_back({SpecOf(*dataset_, pair.a), SpecOf(*dataset_, pair.b)});
  }

  constexpr int kThreads = 8;
  std::vector<std::vector<double>> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Different slices per thread so batches mix pairs from different
      // requests.
      std::vector<PropertyPairSpec> slice(
          specs.begin() + (t % 3), specs.end());
      auto scores = service.Score(slice);
      ASSERT_TRUE(scores.ok()) << scores.status();
      results[t] = std::move(scores).value();
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    const size_t offset = t % 3;
    ASSERT_EQ(results[t].size(), specs.size() - offset);
    for (size_t i = 0; i < results[t].size(); ++i) {
      EXPECT_EQ(results[t][i], offline[i + offset])
          << "thread " << t << " pair " << i;
    }
  }
}

TEST_F(MatcherServiceTest, TopKOrdersByScoreThenIndex) {
  MatcherService service(matcher_, cached_model_);
  const data::PropertyId query_id = 0;
  std::vector<data::PropertyId> candidate_ids;
  for (data::PropertyId id = 1;
       id < dataset_->property_count() && candidate_ids.size() < 12; ++id) {
    candidate_ids.push_back(id);
  }
  ASSERT_GE(candidate_ids.size(), 4u);

  std::vector<data::PropertyPair> pairs;
  for (data::PropertyId id : candidate_ids) {
    pairs.push_back({query_id, id});
  }
  const std::vector<double> offline = OfflineScores(pairs);

  std::vector<PropertySpec> candidates;
  for (data::PropertyId id : candidate_ids) {
    candidates.push_back(SpecOf(*dataset_, id));
  }
  const size_t k = 4;
  auto matches =
      service.TopK(SpecOf(*dataset_, query_id), candidates, k);
  ASSERT_TRUE(matches.ok()) << matches.status();
  ASSERT_EQ(matches->size(), k);
  for (size_t i = 0; i < matches->size(); ++i) {
    EXPECT_EQ((*matches)[i].score, offline[(*matches)[i].index]);
    if (i > 0) {
      const MatchResult& prev = (*matches)[i - 1];
      const MatchResult& curr = (*matches)[i];
      EXPECT_TRUE(prev.score > curr.score ||
                  (prev.score == curr.score && prev.index < curr.index));
    }
  }
  // The k-th result dominates every unreturned candidate.
  double kth = matches->back().score;
  for (size_t i = 0; i < offline.size(); ++i) {
    bool returned = false;
    for (const MatchResult& match : *matches) {
      if (match.index == i) returned = true;
    }
    if (!returned) {
      EXPECT_LE(offline[i], kth);
    }
  }
}

TEST_F(MatcherServiceTest, RejectsEmptyRequests) {
  MatcherService service(matcher_, cached_model_);
  EXPECT_TRUE(service.Score({}).status().IsInvalidArgument());
  EXPECT_TRUE(service.TopK(PropertySpec{"q", {}}, {}, 3)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(service.TopK(PropertySpec{"q", {}},
                           {PropertySpec{"c", {}}}, 0)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(MatcherServiceTest, HandleLineDispatchesAndNeverThrows) {
  MatcherService service(matcher_, cached_model_);
  // ping
  auto ping = JsonValue::Parse(service.HandleLine(R"({"op":"ping","id":1})"));
  ASSERT_TRUE(ping.ok());
  EXPECT_TRUE(ping->Find("ok")->AsBool());
  // score, checked against the offline scorer
  std::vector<data::PropertyPair> pairs = {dataset_->AllCrossSourcePairs()[0]};
  const double offline = OfflineScores(pairs)[0];
  std::string line = R"({"op":"score","id":2,"pairs":[{"a":)";
  auto append_spec = [&](const PropertySpec& spec) {
    line += R"({"name":)";
    AppendJsonString(&line, spec.name);
    line += R"(,"values":[)";
    for (size_t i = 0; i < spec.values.size(); ++i) {
      if (i > 0) line += ',';
      AppendJsonString(&line, spec.values[i]);
    }
    line += "]}";
  };
  append_spec(SpecOf(*dataset_, pairs[0].a));
  line += R"(,"b":)";
  append_spec(SpecOf(*dataset_, pairs[0].b));
  line += "}]}";
  auto response = JsonValue::Parse(service.HandleLine(line));
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response->Find("ok")->AsBool());
  EXPECT_EQ(response->Find("scores")->AsArray()[0].AsNumber(), offline);
  // stats
  auto stats = JsonValue::Parse(service.HandleLine(R"({"op":"stats"})"));
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->Find("ok")->AsBool());
  // The active kernel dispatch path is reported and matches the process
  // wide choice made at startup.
  const JsonValue* kernel = stats->Find("stats")->Find("kernel");
  ASSERT_NE(kernel, nullptr);
  EXPECT_EQ(kernel->AsString(), kernels::ActiveKernelName());
  // garbage comes back as ok:false, never a crash
  for (const char* bad :
       {"", "garbage", "{}", R"({"op":"score","pairs":"x"})",
        R"({"op":"nope"})", "[1,2,3]", "{\"op\":\"ping\"", "\x01\x02"}) {
    auto error = JsonValue::Parse(service.HandleLine(bad));
    ASSERT_TRUE(error.ok()) << bad;
    EXPECT_FALSE(error->Find("ok")->AsBool()) << bad;
  }
  EXPECT_GT(service.Snapshot().request_errors, 0u);
}

TEST_F(MatcherServiceTest, CreateValidatesMatcherAndCache) {
  // Happy path: the fitted matcher and its own cache are accepted.
  auto service = MatcherService::Create(matcher_, cached_model_);
  ASSERT_TRUE(service.ok()) << service.status();
  ASSERT_NE(*service, nullptr);

  EXPECT_TRUE(MatcherService::Create(nullptr, cached_model_)
                  .status()
                  .IsInvalidArgument());

  core::LeapmeMatcher unfitted(base_model_);
  EXPECT_TRUE(MatcherService::Create(&unfitted, cached_model_)
                  .status()
                  .IsFailedPrecondition());

  // A cache over a 32-d embedding model cannot front a 16-d pipeline.
  auto wide_model = embedding::SyntheticEmbeddingModel::Build(
                        data::DomainClusters(data::TvDomain()),
                        {.dimension = 32,
                         .seed = 72,
                         .oov_policy = embedding::OovPolicy::kHashedVector})
                        .value();
  embedding::CachingEmbeddingModel wide_cache(&wide_model, 64);
  auto mismatched = MatcherService::Create(matcher_, &wide_cache);
  ASSERT_FALSE(mismatched.ok());
  EXPECT_TRUE(mismatched.status().IsFailedPrecondition());
  EXPECT_NE(mismatched.status().message().find("32"), std::string::npos)
      << mismatched.status();
}

TEST_F(MatcherServiceTest, StatsReportPerStageFeatureTimings) {
  MatcherService service(matcher_, cached_model_);
  std::vector<data::PropertyPair> pairs = dataset_->AllCrossSourcePairs();
  pairs.resize(std::min<size_t>(pairs.size(), 8));
  std::vector<PropertyPairSpec> specs;
  for (const data::PropertyPair& pair : pairs) {
    specs.push_back({SpecOf(*dataset_, pair.a), SpecOf(*dataset_, pair.b)});
  }
  ASSERT_TRUE(service.Score(specs).ok());

  const ServiceStats stats = service.Snapshot();
  ASSERT_EQ(stats.feature_stages.size(), 6u);
  uint64_t total_pair_calls = 0;
  for (const StageTimingStat& stage : stats.feature_stages) {
    EXPECT_EQ(stage.version, 1);
    total_pair_calls += stage.pair_calls;
  }
  EXPECT_GE(total_pair_calls, 6 * specs.size());

  // The stats op exposes the same counters over the wire.
  const std::string response = service.HandleLine(R"({"op":"stats"})");
  auto json = JsonValue::Parse(response);
  ASSERT_TRUE(json.ok()) << response;
  EXPECT_TRUE(json->Find("ok")->AsBool());
  for (const char* name :
       {"feature_stages", "char_class_meta", "token_class_meta",
        "numeric_value", "value_embedding", "name_embedding",
        "string_distances", "pair_ns"}) {
    EXPECT_NE(response.find(name), std::string::npos)
        << "stats response missing " << name << ": " << response;
  }
}

}  // namespace
}  // namespace leapme::serve
