// Tests for the versioned model registry behind hot reload: generation
// hand-out, staged admission (validation + shadow canary), bit-identical
// serving across reloads of the same file, v1-format models through the
// serve path, and torn-free swaps under concurrent scoring.

#include "serve/model_registry.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/leapme.h"
#include "data/domain.h"
#include "data/generator.h"
#include "data/splitting.h"
#include "embedding/caching_model.h"
#include "embedding/synthetic_model.h"
#include "serve/matcher_service.h"

namespace leapme::serve {
namespace {

PropertySpec SpecOf(const data::Dataset& dataset, data::PropertyId id) {
  PropertySpec spec;
  spec.name = dataset.property(id).name;
  for (const data::InstanceValue& instance : dataset.instances(id)) {
    spec.values.push_back(instance.value);
  }
  return spec;
}

/// Rewrites the main model file at `path` through `edit` (a line-list
/// transform), leaving the .mlp side file untouched.
void RewriteModelFile(const std::string& path,
                      const std::function<void(std::vector<std::string>*)>&
                          edit) {
  std::vector<std::string> lines;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  edit(&lines);
  std::ofstream out(path, std::ios::trunc);
  for (const std::string& line : lines) out << line << "\n";
}

/// Two saved models (trained on different source subsets, so they score
/// differently) plus the loader `leapme serve` would use for them.
class ModelRegistryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::GeneratorOptions generator;
    generator.num_sources = 4;
    generator.min_entities_per_source = 8;
    generator.max_entities_per_source = 8;
    generator.seed = 171;
    dataset_ = new data::Dataset(
        data::GenerateCatalog(data::TvDomain(), generator).value());
    base_model_ = new embedding::SyntheticEmbeddingModel(
        embedding::SyntheticEmbeddingModel::Build(
            data::DomainClusters(data::TvDomain()),
            {.dimension = 16,
             .seed = 172,
             .oov_policy = embedding::OovPolicy::kHashedVector})
            .value());

    const std::string stem =
        ::testing::TempDir() + "/registry." + std::to_string(::getpid());
    path_a_ = new std::string(stem + ".a.model");
    path_b_ = new std::string(stem + ".b.model");
    TrainAndSave({0, 1, 2}, 173, *path_a_);
    TrainAndSave({1, 2, 3}, 174, *path_b_);
  }

  static void TrainAndSave(const std::vector<data::SourceId>& sources,
                           uint64_t seed, const std::string& path) {
    Rng rng(seed);
    auto training =
        data::BuildTrainingPairs(*dataset_, sources, 2.0, rng).value();
    core::LeapmeMatcher trained(base_model_);
    ASSERT_TRUE(trained.Fit(*dataset_, training).ok());
    ASSERT_TRUE(trained.SaveModel(path).ok());
  }

  /// The same per-generation resource stack the serve command builds:
  /// fresh embeddings + cache + LoadModel, owned together.
  static ModelRegistry::Loader Loader() {
    return [](const std::string& path)
               -> StatusOr<ModelGeneration::Resources> {
      ModelGeneration::Resources resources;
      resources.base_model =
          std::make_unique<embedding::SyntheticEmbeddingModel>(
              embedding::SyntheticEmbeddingModel::Build(
                  data::DomainClusters(data::TvDomain()),
                  {.dimension = 16,
                   .seed = 172,
                   .oov_policy = embedding::OovPolicy::kHashedVector})
                  .value());
      resources.embedding_cache =
          std::make_unique<embedding::CachingEmbeddingModel>(
              resources.base_model.get(), 4096);
      LEAPME_ASSIGN_OR_RETURN(
          core::LeapmeMatcher matcher,
          core::LeapmeMatcher::LoadModel(resources.embedding_cache.get(),
                                         path));
      resources.matcher =
          std::make_unique<core::LeapmeMatcher>(std::move(matcher));
      return resources;
    };
  }

  /// Offline reference scores for `pairs` through the model at `path`.
  static std::vector<double> OfflineScores(
      const std::string& path, const std::vector<data::PropertyPair>& pairs) {
    auto resources = Loader()(path);
    EXPECT_TRUE(resources.ok()) << resources.status();
    return resources->matcher->ScorePairsOn(*dataset_, pairs).value();
  }

  static std::vector<data::PropertyPair> SamplePairs(size_t n) {
    std::vector<data::PropertyPair> pairs = dataset_->AllCrossSourcePairs();
    pairs.resize(std::min(pairs.size(), n));
    return pairs;
  }

  static std::vector<PropertyPairSpec> SpecsOf(
      const std::vector<data::PropertyPair>& pairs) {
    std::vector<PropertyPairSpec> specs;
    for (const data::PropertyPair& pair : pairs) {
      specs.push_back({SpecOf(*dataset_, pair.a), SpecOf(*dataset_, pair.b)});
    }
    return specs;
  }

  static data::Dataset* dataset_;
  static embedding::SyntheticEmbeddingModel* base_model_;
  static std::string* path_a_;
  static std::string* path_b_;
};

data::Dataset* ModelRegistryTest::dataset_ = nullptr;
embedding::SyntheticEmbeddingModel* ModelRegistryTest::base_model_ = nullptr;
std::string* ModelRegistryTest::path_a_ = nullptr;
std::string* ModelRegistryTest::path_b_ = nullptr;

TEST_F(ModelRegistryTest, InitialGenerationServesBitIdenticalScores) {
  ModelRegistry registry(Loader());
  ASSERT_TRUE(registry.Init(*path_a_).ok());
  auto service = MatcherService::Create(&registry);
  ASSERT_TRUE(service.ok()) << service.status();

  const auto pairs = SamplePairs(20);
  const std::vector<double> offline = OfflineScores(*path_a_, pairs);
  auto scores = (*service)->Score(SpecsOf(pairs));
  ASSERT_TRUE(scores.ok()) << scores.status();
  for (size_t i = 0; i < offline.size(); ++i) {
    EXPECT_EQ((*scores)[i], offline[i]) << "pair " << i;
  }
  const RegistryStats stats = registry.Snapshot();
  EXPECT_EQ(stats.info.version, 1u);
  EXPECT_EQ(stats.info.format_version, 2);
  EXPECT_FALSE(stats.info.fingerprint.empty());
  EXPECT_GT(stats.info.file_mtime, 0);
}

TEST_F(ModelRegistryTest, ReloadSameFileIsBitIdenticalWithZeroDivergence) {
  ModelRegistry registry(Loader());
  ASSERT_TRUE(registry.Init(*path_a_).ok());
  auto service = MatcherService::Create(&registry);
  ASSERT_TRUE(service.ok()) << service.status();

  const auto pairs = SamplePairs(20);
  const std::vector<double> offline = OfflineScores(*path_a_, pairs);
  // Serve some traffic first so the canary ring has live pairs to
  // shadow-score.
  ASSERT_TRUE((*service)->Score(SpecsOf(pairs)).ok());

  auto outcome = registry.Reload();
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->info.version, 2u);
  EXPECT_GT(outcome->canary_pairs, 0u);
  EXPECT_EQ(outcome->canary_divergence, 0.0);

  auto scores = (*service)->Score(SpecsOf(pairs));
  ASSERT_TRUE(scores.ok()) << scores.status();
  for (size_t i = 0; i < offline.size(); ++i) {
    EXPECT_EQ((*scores)[i], offline[i]) << "pair " << i;
  }
  EXPECT_EQ(registry.Snapshot().reloads_ok, 1u);
}

TEST_F(ModelRegistryTest, ReloadToDifferentModelSwapsScores) {
  // canary_threshold 1.0 admits any divergence (scores live in [0, 1]).
  RegistryOptions options;
  options.canary_threshold = 1.0;
  ModelRegistry registry(Loader(), options);
  ASSERT_TRUE(registry.Init(*path_a_).ok());
  auto service = MatcherService::Create(&registry);
  ASSERT_TRUE(service.ok()) << service.status();

  const auto pairs = SamplePairs(20);
  ASSERT_TRUE((*service)->Score(SpecsOf(pairs)).ok());

  auto outcome = registry.Reload(*path_b_);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->info.version, 2u);

  const std::vector<double> offline_b = OfflineScores(*path_b_, pairs);
  auto scores = (*service)->Score(SpecsOf(pairs));
  ASSERT_TRUE(scores.ok()) << scores.status();
  for (size_t i = 0; i < offline_b.size(); ++i) {
    EXPECT_EQ((*scores)[i], offline_b[i]) << "pair " << i;
  }
}

TEST_F(ModelRegistryTest, CanaryRejectsDivergentCandidate) {
  const auto pairs = SamplePairs(20);
  // The trip is only meaningful if the two models actually disagree on
  // the captured sample.
  const std::vector<double> offline_a = OfflineScores(*path_a_, pairs);
  const std::vector<double> offline_b = OfflineScores(*path_b_, pairs);
  double max_diff = 0.0;
  for (size_t i = 0; i < pairs.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(offline_a[i] - offline_b[i]));
  }
  ASSERT_GT(max_diff, 1e-9) << "fixture models must score differently";

  RegistryOptions options;
  options.canary_threshold = max_diff / 2.0;
  ModelRegistry registry(Loader(), options);
  ASSERT_TRUE(registry.Init(*path_a_).ok());
  auto service = MatcherService::Create(&registry);
  ASSERT_TRUE(service.ok()) << service.status();
  // One pair per request: every scored pair lands in the canary ring, so
  // the max-divergence pair is guaranteed captured.
  for (const auto& spec : SpecsOf(pairs)) {
    ASSERT_TRUE((*service)->Score({spec}).ok());
  }

  auto outcome = registry.Reload(*path_b_);
  ASSERT_FALSE(outcome.ok());
  EXPECT_TRUE(outcome.status().IsFailedPrecondition())
      << outcome.status();

  // Rejection left serving untouched: still generation 1, still model A.
  const RegistryStats stats = registry.Snapshot();
  EXPECT_EQ(stats.info.version, 1u);
  EXPECT_EQ(stats.reloads_rejected, 1u);
  EXPECT_GT(stats.canary_divergence, options.canary_threshold);
  auto scores = (*service)->Score(SpecsOf(pairs));
  ASSERT_TRUE(scores.ok());
  for (size_t i = 0; i < offline_a.size(); ++i) {
    EXPECT_EQ((*scores)[i], offline_a[i]) << "pair " << i;
  }
}

TEST_F(ModelRegistryTest, WrappedRegistryRefusesReload) {
  auto resources = Loader()(*path_a_);
  ASSERT_TRUE(resources.ok());
  auto registry = ModelRegistry::WrapExisting(
      resources->matcher.get(), resources->embedding_cache.get());
  auto outcome = registry->Reload();
  ASSERT_FALSE(outcome.ok());
  EXPECT_TRUE(outcome.status().IsFailedPrecondition());
  EXPECT_EQ(registry->Snapshot().reloads_rejected, 1u);
}

TEST_F(ModelRegistryTest, HealthReadyAndReloadOpsThroughHandleLine) {
  ModelRegistry registry(Loader());
  ASSERT_TRUE(registry.Init(*path_a_).ok());
  auto service = MatcherService::Create(&registry);
  ASSERT_TRUE(service.ok()) << service.status();

  std::string health = (*service)->HandleLine("{\"op\":\"health\",\"id\":1}");
  EXPECT_NE(health.find("\"status\":\"serving\""), std::string::npos)
      << health;
  EXPECT_NE(health.find("\"model_version\":1"), std::string::npos) << health;

  std::string ready = (*service)->HandleLine("{\"op\":\"ready\",\"id\":2}");
  EXPECT_NE(ready.find("\"ready\":true"), std::string::npos) << ready;

  (*service)->SetDraining(true);
  health = (*service)->HandleLine("{\"op\":\"health\",\"id\":3}");
  EXPECT_NE(health.find("\"status\":\"draining\""), std::string::npos)
      << health;
  ready = (*service)->HandleLine("{\"op\":\"ready\",\"id\":4}");
  EXPECT_NE(ready.find("\"ready\":false"), std::string::npos) << ready;
  (*service)->SetDraining(false);

  std::string reload =
      (*service)->HandleLine("{\"op\":\"reload\",\"id\":5}");
  EXPECT_NE(reload.find("\"ok\":true"), std::string::npos) << reload;
  EXPECT_NE(reload.find("\"model_version\":2"), std::string::npos) << reload;
  EXPECT_NE(reload.find("\"canary_divergence\":"), std::string::npos)
      << reload;

  // Stats carries the registry block.
  std::string stats = (*service)->HandleLine("{\"op\":\"stats\",\"id\":6}");
  EXPECT_NE(stats.find("\"model_version\":2"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"reloads_ok\":1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"model_fingerprint\":"), std::string::npos)
      << stats;
}

TEST_F(ModelRegistryTest, V1FormatModelServesThroughRegistry) {
  // Downgrade a copy of model A to the pre-fingerprint v1 format: old
  // header, no fingerprint / max_instances keys, no end sentinel.
  const std::string v1_path = ::testing::TempDir() + "/registry." +
                              std::to_string(::getpid()) + ".v1.model";
  {
    std::ifstream in(*path_a_, std::ios::binary);
    std::ofstream out(v1_path, std::ios::binary | std::ios::trunc);
    out << in.rdbuf();
    std::ifstream mlp_in(*path_a_ + ".mlp", std::ios::binary);
    std::ofstream mlp_out(v1_path + ".mlp",
                          std::ios::binary | std::ios::trunc);
    mlp_out << mlp_in.rdbuf();
  }
  RewriteModelFile(v1_path, [](std::vector<std::string>* lines) {
    ASSERT_FALSE(lines->empty());
    (*lines)[0] = "leapme-matcher 1";
    lines->erase(std::remove_if(lines->begin(), lines->end(),
                                [](const std::string& line) {
                                  return line.rfind("fingerprint ", 0) == 0 ||
                                         line.rfind("max_instances ", 0) ==
                                             0 ||
                                         line == "end leapme";
                                }),
                 lines->end());
  });

  ModelRegistry registry(Loader());
  ASSERT_TRUE(registry.Init(v1_path).ok());
  EXPECT_EQ(registry.Snapshot().info.format_version, 1);

  auto service = MatcherService::Create(&registry);
  ASSERT_TRUE(service.ok()) << service.status();
  const auto pairs = SamplePairs(20);
  const std::vector<double> offline = OfflineScores(v1_path, pairs);
  auto scores = (*service)->Score(SpecsOf(pairs));
  ASSERT_TRUE(scores.ok()) << scores.status();
  for (size_t i = 0; i < offline.size(); ++i) {
    EXPECT_EQ((*scores)[i], offline[i]) << "pair " << i;
  }
  // The format version is visible on the wire for operators.
  std::string stats = (*service)->HandleLine("{\"op\":\"stats\",\"id\":1}");
  EXPECT_NE(stats.find("\"model_format_version\":1"), std::string::npos)
      << stats;
}

// Pinned into the TSan CI tier: generations swap while scoring threads
// hammer the service, and every response must be entirely model A's or
// entirely model B's scores — never a torn mix, never an error.
TEST_F(ModelRegistryTest, ReloadStressUnderConcurrentScoring) {
  RegistryOptions options;
  options.canary_threshold = 1.0;
  ModelRegistry registry(Loader(), options);
  ASSERT_TRUE(registry.Init(*path_a_).ok());
  ServiceOptions service_options;
  service_options.max_batch = 16;
  service_options.batch_window_us = 50;
  auto service = MatcherService::Create(&registry, service_options);
  ASSERT_TRUE(service.ok()) << service.status();

  const auto pairs = SamplePairs(8);
  const auto specs = SpecsOf(pairs);
  const std::vector<double> offline_a = OfflineScores(*path_a_, pairs);
  const std::vector<double> offline_b = OfflineScores(*path_b_, pairs);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> checked{0};
  std::atomic<uint64_t> torn{0};
  std::vector<std::thread> scorers;
  for (int t = 0; t < 4; ++t) {
    scorers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto scores = (*service)->Score(specs);
        ASSERT_TRUE(scores.ok()) << scores.status();
        const bool all_a = std::equal(scores->begin(), scores->end(),
                                      offline_a.begin());
        const bool all_b = std::equal(scores->begin(), scores->end(),
                                      offline_b.begin());
        if (!all_a && !all_b) torn.fetch_add(1);
        checked.fetch_add(1);
      }
    });
  }
  for (int round = 0; round < 10; ++round) {
    auto outcome = registry.Reload(round % 2 == 0 ? *path_b_ : *path_a_);
    ASSERT_TRUE(outcome.ok()) << outcome.status();
  }
  stop.store(true);
  for (std::thread& thread : scorers) thread.join();

  EXPECT_GT(checked.load(), 0u);
  EXPECT_EQ(torn.load(), 0u);
  const RegistryStats stats = registry.Snapshot();
  EXPECT_EQ(stats.reloads_ok, 10u);
  EXPECT_EQ(stats.info.version, 11u);
}

}  // namespace
}  // namespace leapme::serve
