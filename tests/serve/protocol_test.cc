// Tests for the wire protocol: request parsing/validation and response
// serialization.

#include "serve/protocol.h"

#include <string>

#include <gtest/gtest.h>

#include "serve/json.h"

namespace leapme::serve {
namespace {

TEST(ParseRequestTest, Ping) {
  auto request = ParseRequest(R"({"op":"ping","id":7})");
  ASSERT_TRUE(request.ok()) << request.status();
  EXPECT_EQ(request->op, Op::kPing);
  ASSERT_TRUE(request->id.has_value());
  EXPECT_EQ(*request->id, 7);
}

TEST(ParseRequestTest, IdIsOptional) {
  auto request = ParseRequest(R"({"op":"stats"})");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->op, Op::kStats);
  EXPECT_FALSE(request->id.has_value());
}

TEST(ParseRequestTest, Score) {
  auto request = ParseRequest(
      R"({"op":"score","pairs":[)"
      R"({"a":{"name":"mp","values":["10","12"]},"b":{"name":"pixels"}}]})");
  ASSERT_TRUE(request.ok()) << request.status();
  EXPECT_EQ(request->op, Op::kScore);
  ASSERT_EQ(request->pairs.size(), 1u);
  EXPECT_EQ(request->pairs[0].a.name, "mp");
  EXPECT_EQ(request->pairs[0].a.values,
            (std::vector<std::string>{"10", "12"}));
  EXPECT_EQ(request->pairs[0].b.name, "pixels");
  EXPECT_TRUE(request->pairs[0].b.values.empty());
}

TEST(ParseRequestTest, TopK) {
  auto request = ParseRequest(
      R"({"op":"topk","query":{"name":"zoom"},)"
      R"("candidates":[{"name":"a"},{"name":"b"}],"k":2})");
  ASSERT_TRUE(request.ok()) << request.status();
  EXPECT_EQ(request->op, Op::kTopK);
  EXPECT_EQ(request->query.name, "zoom");
  ASSERT_EQ(request->candidates.size(), 2u);
  EXPECT_EQ(request->k, 2u);
}

TEST(ParseRequestTest, TopKDefaultsToK1) {
  auto request = ParseRequest(
      R"({"op":"topk","query":{"name":"q"},"candidates":[{"name":"c"}]})");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->k, 1u);
}

TEST(ParseRequestTest, RejectsMalformedRequests) {
  // Not JSON / not an object.
  EXPECT_FALSE(ParseRequest("not json").ok());
  EXPECT_FALSE(ParseRequest("[1,2]").ok());
  // op missing / wrong type / unknown.
  EXPECT_FALSE(ParseRequest(R"({})").ok());
  EXPECT_FALSE(ParseRequest(R"({"op":3})").ok());
  EXPECT_FALSE(ParseRequest(R"({"op":"frobnicate"})").ok());
  // Unknown fields are rejected, not ignored.
  EXPECT_FALSE(ParseRequest(R"({"op":"ping","paris":[]})").ok());
  EXPECT_FALSE(
      ParseRequest(R"({"op":"score","pairs":[],"extra":1})").ok());
  // Bad ids.
  EXPECT_FALSE(ParseRequest(R"({"op":"ping","id":"x"})").ok());
  EXPECT_FALSE(ParseRequest(R"({"op":"ping","id":1.5})").ok());
  EXPECT_FALSE(ParseRequest(R"({"op":"ping","id":1e17})").ok());
  // Bad score payloads.
  EXPECT_FALSE(ParseRequest(R"({"op":"score"})").ok());
  EXPECT_FALSE(ParseRequest(R"({"op":"score","pairs":[]})").ok());
  EXPECT_FALSE(ParseRequest(R"({"op":"score","pairs":[{"a":1,"b":2}]})").ok());
  EXPECT_FALSE(
      ParseRequest(R"({"op":"score","pairs":[{"a":{"name":""}}]})").ok());
  EXPECT_FALSE(ParseRequest(
                   R"({"op":"score","pairs":[{"a":{"name":"x"}}]})")
                   .ok());  // missing b
  EXPECT_FALSE(ParseRequest(
                   R"({"op":"score","pairs":[{"a":{"name":"x",)"
                   R"("values":[1]},"b":{"name":"y"}}]})")
                   .ok());  // non-string value
  // Bad topk payloads.
  EXPECT_FALSE(ParseRequest(R"({"op":"topk","candidates":[]})").ok());
  EXPECT_FALSE(ParseRequest(
                   R"({"op":"topk","query":{"name":"q"},"candidates":[]})")
                   .ok());
  EXPECT_FALSE(ParseRequest(R"({"op":"topk","query":{"name":"q"},)"
                            R"("candidates":[{"name":"c"}],"k":0})")
                   .ok());
  EXPECT_FALSE(ParseRequest(R"({"op":"topk","query":{"name":"q"},)"
                            R"("candidates":[{"name":"c"}],"k":2.5})")
                   .ok());
}

TEST(ParseRequestTest, EnforcesLimits) {
  ProtocolLimits limits;
  limits.max_pairs_per_request = 1;
  limits.max_values_per_property = 2;
  limits.max_k = 3;
  const char* two_pairs =
      R"({"op":"score","pairs":[)"
      R"({"a":{"name":"x"},"b":{"name":"y"}},)"
      R"({"a":{"name":"x"},"b":{"name":"y"}}]})";
  EXPECT_FALSE(ParseRequest(two_pairs, limits).ok());
  EXPECT_TRUE(ParseRequest(two_pairs).ok());  // default limits allow it

  const char* many_values =
      R"({"op":"score","pairs":[{"a":{"name":"x",)"
      R"("values":["1","2","3"]},"b":{"name":"y"}}]})";
  EXPECT_FALSE(ParseRequest(many_values, limits).ok());

  const char* big_k = R"({"op":"topk","query":{"name":"q"},)"
                      R"("candidates":[{"name":"c"}],"k":4})";
  EXPECT_FALSE(ParseRequest(big_k, limits).ok());
}

TEST(ResponseTest, PingAndErrorShapes) {
  EXPECT_EQ(PingResponse(std::optional<int64_t>(1)),
            R"({"id":1,"ok":true,"op":"ping"})");
  EXPECT_EQ(PingResponse(std::nullopt), R"({"ok":true,"op":"ping"})");

  const std::string error =
      ErrorResponse(std::optional<int64_t>(2),
                    Status::InvalidArgument("bad \"field\""));
  auto parsed = JsonValue::Parse(error);
  ASSERT_TRUE(parsed.ok()) << error;
  EXPECT_DOUBLE_EQ(parsed->Find("id")->AsNumber(), 2.0);
  EXPECT_FALSE(parsed->Find("ok")->AsBool());
  const JsonValue* detail = parsed->Find("error");
  ASSERT_NE(detail, nullptr);
  EXPECT_EQ(detail->Find("code")->AsString(), "InvalidArgument");
  EXPECT_EQ(detail->Find("message")->AsString(), "bad \"field\"");
  // No hint requested -> the key is absent entirely.
  EXPECT_EQ(detail->Find("retry_after_ms"), nullptr);
}

TEST(ResponseTest, ErrorResponseCarriesRetryHint) {
  const std::string error = ErrorResponse(
      std::nullopt, Status::Unavailable("full up"), /*retry_after_ms=*/50);
  auto parsed = JsonValue::Parse(error);
  ASSERT_TRUE(parsed.ok()) << error;
  const JsonValue* detail = parsed->Find("error");
  ASSERT_NE(detail, nullptr);
  EXPECT_EQ(detail->Find("code")->AsString(), "Unavailable");
  ASSERT_NE(detail->Find("retry_after_ms"), nullptr) << error;
  EXPECT_DOUBLE_EQ(detail->Find("retry_after_ms")->AsNumber(), 50.0);
}

TEST(ResponseTest, DegradedResponsesAreTagged) {
  const std::string score =
      ScoreResponse(std::optional<int64_t>(4), {0.5}, /*degraded=*/true);
  auto parsed = JsonValue::Parse(score);
  ASSERT_TRUE(parsed.ok()) << score;
  EXPECT_TRUE(parsed->Find("ok")->AsBool());
  ASSERT_NE(parsed->Find("degraded"), nullptr) << score;
  EXPECT_TRUE(parsed->Find("degraded")->AsBool());

  const std::string topk =
      TopKResponse(std::nullopt, {{0, 0.25}}, /*degraded=*/true);
  parsed = JsonValue::Parse(topk);
  ASSERT_TRUE(parsed.ok()) << topk;
  ASSERT_NE(parsed->Find("degraded"), nullptr) << topk;
  EXPECT_TRUE(parsed->Find("degraded")->AsBool());

  // Full-fidelity responses carry no tag at all.
  EXPECT_EQ(JsonValue::Parse(ScoreResponse(std::nullopt, {0.5}))
                ->Find("degraded"),
            nullptr);
}

TEST(ResponseTest, ScoreResponseRoundTripsScores) {
  const std::vector<double> scores = {0.0, 1.0 / 3.0, 0.9999999999999999};
  const std::string line = ScoreResponse(std::optional<int64_t>(5), scores);
  auto parsed = JsonValue::Parse(line);
  ASSERT_TRUE(parsed.ok()) << line;
  const JsonValue* array = parsed->Find("scores");
  ASSERT_NE(array, nullptr);
  ASSERT_EQ(array->AsArray().size(), scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    // Bit-identical after the wire round trip.
    EXPECT_EQ(array->AsArray()[i].AsNumber(), scores[i]);
  }
}

TEST(ResponseTest, TopKResponseShape) {
  const std::vector<MatchResult> matches = {{4, 0.75}, {0, 0.5}};
  const std::string line = TopKResponse(std::nullopt, matches);
  auto parsed = JsonValue::Parse(line);
  ASSERT_TRUE(parsed.ok()) << line;
  const JsonValue* array = parsed->Find("matches");
  ASSERT_NE(array, nullptr);
  ASSERT_EQ(array->AsArray().size(), 2u);
  EXPECT_DOUBLE_EQ(array->AsArray()[0].Find("index")->AsNumber(), 4.0);
  EXPECT_DOUBLE_EQ(array->AsArray()[0].Find("score")->AsNumber(), 0.75);
}

TEST(ResponseTest, StatsResponseIsValidJson) {
  ServiceStats stats;
  stats.requests = 3;
  stats.score_requests = 2;
  stats.batches = 1;
  stats.batch_histogram = {0, 5, 0};
  stats.batch_histogram_labels = {"1", "2-3", "4+"};
  stats.embedding_cache_hits = 10;
  stats.latency_p50_us = 123.5;
  stats.connections_rejected = 2;
  stats.rejected_overload = 4;
  stats.deadline_exceeded = 1;
  stats.degraded_responses = 3;
  stats.faults_injected = 7;
  const std::string line = StatsResponse(std::optional<int64_t>(9), stats);
  auto parsed = JsonValue::Parse(line);
  ASSERT_TRUE(parsed.ok()) << line;
  const JsonValue* body = parsed->Find("stats");
  ASSERT_NE(body, nullptr);
  EXPECT_DOUBLE_EQ(body->Find("requests")->AsNumber(), 3.0);
  EXPECT_DOUBLE_EQ(body->Find("embedding_cache_hits")->AsNumber(), 10.0);
  EXPECT_DOUBLE_EQ(body->Find("latency_p50_us")->AsNumber(), 123.5);
  // Overload / failure-model counters introduced with the fault layer.
  EXPECT_DOUBLE_EQ(body->Find("connections_rejected")->AsNumber(), 2.0);
  EXPECT_DOUBLE_EQ(body->Find("rejected_overload")->AsNumber(), 4.0);
  EXPECT_DOUBLE_EQ(body->Find("deadline_exceeded")->AsNumber(), 1.0);
  EXPECT_DOUBLE_EQ(body->Find("degraded_responses")->AsNumber(), 3.0);
  EXPECT_DOUBLE_EQ(body->Find("faults_injected")->AsNumber(), 7.0);
  // Only non-empty histogram buckets appear, keyed by range label.
  const JsonValue* histogram = body->Find("batch_histogram");
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(histogram->ObjectKeys(), (std::vector<std::string>{"2-3"}));
}

}  // namespace
}  // namespace leapme::serve
