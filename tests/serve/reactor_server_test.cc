// Reactor-backend tests: line framing across arbitrary read() boundaries,
// pipelined response ordering, idle keep-alive surviving the request
// deadline, slow-reader writable backpressure (with the
// writable_backlog_bytes gauge), reactor stats fields, and a
// 10k-idle-connection smoke — parameterized over 1 and 4 event-loop
// threads so both the single-loop and the cross-loop paths are covered.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/leapme.h"
#include "data/domain.h"
#include "data/generator.h"
#include "data/splitting.h"
#include "embedding/caching_model.h"
#include "embedding/synthetic_model.h"
#include "serve/json.h"
#include "serve/tcp_server.h"
#include "tools/line_client.h"

namespace leapme::serve {
namespace {

/// Minimal blocking line client (same shape as tcp_server_test.cc), with
/// an optional tiny receive buffer to make the server's write side back
/// up deterministically.
class TestClient {
 public:
  explicit TestClient(int port, int rcvbuf_bytes = 0) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    if (rcvbuf_bytes > 0) {
      // Must be set before connect to shrink the advertised window.
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
                   sizeof(rcvbuf_bytes));
    }
    sockaddr_in address = {};
    address.sin_family = AF_INET;
    address.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                  sizeof(address)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return fd_ >= 0; }

  bool SendRaw(std::string_view bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent,
                               bytes.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  bool SendLine(const std::string& line) { return SendRaw(line + "\n"); }

  bool ReadLine(std::string* out) {
    while (true) {
      const size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        *out = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

int64_t IdOf(const std::string& response) {
  auto parsed = JsonValue::Parse(response);
  if (!parsed.ok()) return -1;
  const JsonValue* id = parsed->Find("id");
  return id != nullptr ? static_cast<int64_t>(id->AsNumber()) : -1;
}

class ReactorServerTest : public ::testing::TestWithParam<size_t> {
 protected:
  static void SetUpTestSuite() {
    data::GeneratorOptions generator;
    generator.num_sources = 4;
    generator.min_entities_per_source = 8;
    generator.max_entities_per_source = 8;
    generator.seed = 101;
    dataset_ = new data::Dataset(
        data::GenerateCatalog(data::TvDomain(), generator).value());
    base_model_ = new embedding::SyntheticEmbeddingModel(
        embedding::SyntheticEmbeddingModel::Build(
            data::DomainClusters(data::TvDomain()),
            {.dimension = 16,
             .seed = 102,
             .oov_policy = embedding::OovPolicy::kHashedVector})
            .value());
    cached_model_ = new embedding::CachingEmbeddingModel(base_model_, 4096);
    Rng rng(103);
    std::vector<data::SourceId> sources{0, 1, 2};
    auto training =
        data::BuildTrainingPairs(*dataset_, sources, 2.0, rng).value();
    core::LeapmeMatcher trained(base_model_);
    ASSERT_TRUE(trained.Fit(*dataset_, training).ok());
    const std::string path = ::testing::TempDir() + "/reactor." +
                             std::to_string(::getpid()) + ".model";
    ASSERT_TRUE(trained.SaveModel(path).ok());
    matcher_ = new core::LeapmeMatcher(
        core::LeapmeMatcher::LoadModel(cached_model_, path).value());
  }

  static ServerOptions ReactorOptions() {
    ServerOptions options;
    options.io_backend = IoBackend::kEpoll;
    options.event_loop_threads = GetParam();
    return options;
  }

  static data::Dataset* dataset_;
  static embedding::SyntheticEmbeddingModel* base_model_;
  static embedding::CachingEmbeddingModel* cached_model_;
  static core::LeapmeMatcher* matcher_;
};

data::Dataset* ReactorServerTest::dataset_ = nullptr;
embedding::SyntheticEmbeddingModel* ReactorServerTest::base_model_ = nullptr;
embedding::CachingEmbeddingModel* ReactorServerTest::cached_model_ = nullptr;
core::LeapmeMatcher* ReactorServerTest::matcher_ = nullptr;

TEST_P(ReactorServerTest, FramesLinesAcrossArbitraryReadBoundaries) {
  MatcherService service(matcher_, cached_model_);
  TcpServer server(&service, ReactorOptions());
  ASSERT_TRUE(server.Start().ok());

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());

  // Partial: the request trickles in one byte at a time, with pauses, so
  // the loop sees many reads that each hold an incomplete line.
  const std::string request = "{\"op\":\"ping\",\"id\":7}\n";
  for (const char byte : request) {
    ASSERT_TRUE(client.SendRaw(std::string_view(&byte, 1)));
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  std::string response;
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_EQ(IdOf(response), 7);

  // Coalesced: three complete requests (one with a CRLF ending) arrive
  // in a single write; each must be answered exactly once, in order.
  ASSERT_TRUE(client.SendRaw(
      "{\"op\":\"ping\",\"id\":8}\n{\"op\":\"ping\",\"id\":9}\r\n"
      "{\"op\":\"ping\",\"id\":10}\n"));
  for (int64_t expected = 8; expected <= 10; ++expected) {
    ASSERT_TRUE(client.ReadLine(&response));
    EXPECT_EQ(IdOf(response), expected);
  }

  // Split across the line boundary: the tail of one request and the head
  // of the next share a segment.
  ASSERT_TRUE(client.SendRaw("{\"op\":\"ping\",\"id\":11}\n{\"op\":\"pi"));
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_EQ(IdOf(response), 11);
  ASSERT_TRUE(client.SendRaw("ng\",\"id\":12}\n"));
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_EQ(IdOf(response), 12);

  server.Stop();
}

TEST_P(ReactorServerTest, PipelinedRequestsAnswerInOrder) {
  MatcherService service(matcher_, cached_model_);
  TcpServer server(&service, ReactorOptions());
  ASSERT_TRUE(server.Start().ok());

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  constexpr int kRequests = 64;
  std::string burst;
  for (int i = 0; i < kRequests; ++i) {
    burst += "{\"op\":\"ping\",\"id\":" + std::to_string(i) + "}\n";
  }
  ASSERT_TRUE(client.SendRaw(burst));
  for (int i = 0; i < kRequests; ++i) {
    std::string response;
    ASSERT_TRUE(client.ReadLine(&response));
    EXPECT_EQ(IdOf(response), i) << response;
  }
  server.Stop();
}

TEST_P(ReactorServerTest, IdleKeepAliveOutlivesRequestDeadline) {
  MatcherService service(matcher_, cached_model_);
  ServerOptions options = ReactorOptions();
  options.deadline_ms = 150;
  TcpServer server(&service, options);
  ASSERT_TRUE(server.Start().ok());

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.SendLine("{\"op\":\"ping\",\"id\":1}"));
  std::string response;
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_EQ(IdOf(response), 1);

  // The deadline is per request, not per connection: once the answer is
  // flushed and nothing further has arrived, no clock ticks. Idling far
  // past deadline_ms must not surface a DeadlineExceeded or a close —
  // the next request on the same connection still round-trips.
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  ASSERT_TRUE(client.SendLine("{\"op\":\"ping\",\"id\":2}"));
  ASSERT_TRUE(client.ReadLine(&response))
      << "idle keep-alive connection was closed by the request deadline";
  EXPECT_EQ(IdOf(response), 2);
  server.Stop();
}

TEST_P(ReactorServerTest, SlowReaderBacklogsThenDrains) {
  MatcherService service(matcher_, cached_model_);
  ServerOptions options = ReactorOptions();
  // Tiny buffers on both sides so a non-reading client jams the socket
  // after a few KB and the rest backs up in the per-connection output
  // queue (the kernel clamps to minimums, so send enough to exceed them).
  options.sndbuf_bytes = 4096;
  TcpServer server(&service, options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kRequests = 2000;
  TestClient slow(server.port(), /*rcvbuf_bytes=*/2048);
  ASSERT_TRUE(slow.connected());
  std::string burst;
  for (int i = 0; i < kRequests; ++i) {
    burst += "{\"op\":\"ping\",\"id\":" + std::to_string(i) + "}\n";
  }
  ASSERT_TRUE(slow.SendRaw(burst));

  // Wait until the responses have outrun the stalled socket, then check
  // the gauge through a second connection.
  uint64_t backlog = 0;
  for (int attempt = 0; attempt < 100 && backlog == 0; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    TestClient prober(server.port());
    ASSERT_TRUE(prober.connected());
    ASSERT_TRUE(prober.SendLine("{\"op\":\"stats\",\"id\":1}"));
    std::string stats_line;
    ASSERT_TRUE(prober.ReadLine(&stats_line));
    auto parsed = JsonValue::Parse(stats_line);
    ASSERT_TRUE(parsed.ok()) << stats_line;
    backlog = static_cast<uint64_t>(
        parsed->Find("stats")->Find("writable_backlog_bytes")->AsNumber());
  }
  EXPECT_GT(backlog, 0u)
      << "server never reported buffered response bytes for the stalled "
         "reader";

  // The stalled connection was never dropped (no deadline configured):
  // once the client starts reading, every response arrives, in order.
  for (int i = 0; i < kRequests; ++i) {
    std::string response;
    ASSERT_TRUE(slow.ReadLine(&response)) << "response " << i;
    ASSERT_EQ(IdOf(response), i) << response;
  }

  // Fully drained: the gauge falls back to zero.
  TestClient prober(server.port());
  ASSERT_TRUE(prober.connected());
  ASSERT_TRUE(prober.SendLine("{\"op\":\"stats\",\"id\":2}"));
  std::string stats_line;
  ASSERT_TRUE(prober.ReadLine(&stats_line));
  auto parsed = JsonValue::Parse(stats_line);
  ASSERT_TRUE(parsed.ok()) << stats_line;
  EXPECT_EQ(
      parsed->Find("stats")->Find("writable_backlog_bytes")->AsNumber(),
      0.0);
  server.Stop();
}

TEST_P(ReactorServerTest, StatsReportReactorIdentityAndGauges) {
  MatcherService service(matcher_, cached_model_);
  TcpServer server(&service, ReactorOptions());
  ASSERT_TRUE(server.Start().ok());

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.SendLine("{\"op\":\"stats\",\"id\":1}"));
  std::string response;
  ASSERT_TRUE(client.ReadLine(&response));
  auto parsed = JsonValue::Parse(response);
  ASSERT_TRUE(parsed.ok()) << response;
  const JsonValue* stats = parsed->Find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->Find("io_backend")->AsString(), "epoll");
  EXPECT_EQ(stats->Find("event_loop_threads")->AsNumber(),
            static_cast<double>(GetParam()));
  // Serving this very request woke a loop at least twice (accept + read).
  EXPECT_GE(stats->Find("epoll_wakeups")->AsNumber(), 2.0);
  server.Stop();
}

TEST_P(ReactorServerTest, ThreadedBackendIsRetiredWithMigrationHint) {
  // The thread-per-connection backend was removed one release after the
  // reactor became the default. The explicit flag spelling must refuse
  // with a message that names the migration path, while an environment
  // still exporting the retired value degrades to the reactor.
  const StatusOr<IoBackend> retired = ParseIoBackend("threaded");
  ASSERT_FALSE(retired.ok());
  EXPECT_EQ(retired.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(retired.status().message().find("retired"), std::string::npos)
      << retired.status().message();
  EXPECT_NE(retired.status().message().find("--event-loop-threads"),
            std::string::npos)
      << retired.status().message();

  const StatusOr<IoBackend> live = ParseIoBackend("epoll");
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(live.value(), IoBackend::kEpoll);
}

TEST_P(ReactorServerTest, TenThousandIdleConnectionsStayResponsive) {
  constexpr size_t kFleet = 10000;
  // The client half of the fleet lives in a forked child process
  // (ForkedIdleFleet), so this process only needs the server-side fds
  // plus the suite's own overhead. Containers without CAP_SYS_RESOURCE
  // cap RLIMIT_NOFILE at a hard ceiling; splitting halves the budget
  // each side needs.
  const size_t need = kFleet + 2048;
  const size_t available = tools::RaiseFdLimit(need);
  if (available < need) {
    GTEST_SKIP() << "RLIMIT_NOFILE only allows " << available
                 << " fds; need " << need
                 << " for the server side of the 10k idle fleet";
  }

  MatcherService service(matcher_, cached_model_);
  ServerOptions options = ReactorOptions();
  options.backlog = 4096;  // waves arrive faster than single accepts
  TcpServer server(&service, options);
  ASSERT_TRUE(server.Start().ok());

  const auto connect_start = std::chrono::steady_clock::now();
  tools::ForkedIdleFleet fleet("127.0.0.1", server.port(), kFleet,
                               /*timeout_ms=*/15000);
  const double connect_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    connect_start)
          .count();
  ASSERT_EQ(fleet.connected(), kFleet)
      << "only " << fleet.connected() << " of " << kFleet
      << " connections established after " << connect_s << "s";

  // The fleet is pure idle keep-alive load; a fresh connection must
  // still get served promptly underneath it.
  TestClient active(server.port());
  ASSERT_TRUE(active.connected());
  ASSERT_TRUE(active.SendLine("{\"op\":\"stats\",\"id\":1}"));
  std::string response;
  ASSERT_TRUE(active.ReadLine(&response));
  auto parsed = JsonValue::Parse(response);
  ASSERT_TRUE(parsed.ok()) << response;
  EXPECT_GE(parsed->Find("stats")->Find("connections_active")->AsNumber(),
            static_cast<double>(kFleet));

  // Connections accepted in the same waves as the fleet still serve
  // round trips (they are connections, not accepted-and-forgotten
  // sockets).
  auto probes = tools::ConnectFleet("127.0.0.1", server.port(), 4,
                                    /*timeout_ms=*/5000);
  ASSERT_EQ(probes.size(), 4u);
  for (size_t i = 0; i < probes.size(); ++i) {
    std::string probe_response;
    ASSERT_TRUE(probes[i]->RoundTrip("{\"op\":\"ping\",\"id\":2}",
                                     &probe_response))
        << "probe connection " << i;
    EXPECT_EQ(IdOf(probe_response), 2);
  }

  // Stopping underneath the live fleet exercises mass drain: idle
  // connections are closed immediately, not after the grace period.
  server.Stop();
}

INSTANTIATE_TEST_SUITE_P(Loops, ReactorServerTest,
                         ::testing::Values<size_t>(1, 4),
                         [](const auto& info) {
                           return "EventLoops" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace leapme::serve
