// Tests for the minimal JSON document model of the wire protocol.

#include "serve/json.h"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

#include <gtest/gtest.h>

namespace leapme::serve {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(JsonValue::Parse("null")->is_null());
  EXPECT_TRUE(JsonValue::Parse("true")->AsBool());
  EXPECT_FALSE(JsonValue::Parse("false")->AsBool());
  EXPECT_DOUBLE_EQ(JsonValue::Parse("42")->AsNumber(), 42.0);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("-3.5e2")->AsNumber(), -350.0);
  EXPECT_EQ(JsonValue::Parse("\"hi\"")->AsString(), "hi");
}

TEST(JsonParseTest, ArraysAndObjects) {
  auto value = JsonValue::Parse("{\"a\":[1,2,3],\"b\":{\"c\":true}} ");
  ASSERT_TRUE(value.ok()) << value.status();
  const JsonValue* a = value->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->AsArray().size(), 3u);
  EXPECT_DOUBLE_EQ(a->AsArray()[1].AsNumber(), 2.0);
  const JsonValue* b = value->Find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_NE(b->Find("c"), nullptr);
  EXPECT_TRUE(b->Find("c")->AsBool());
  EXPECT_EQ(value->Find("missing"), nullptr);
  EXPECT_EQ(value->ObjectKeys(), (std::vector<std::string>{"a", "b"}));
}

TEST(JsonParseTest, StringEscapes) {
  auto value = JsonValue::Parse(R"("a\"b\\c\/\b\f\n\r\t")");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value->AsString(), "a\"b\\c/\b\f\n\r\t");
}

TEST(JsonParseTest, UnicodeEscapes) {
  EXPECT_EQ(JsonValue::Parse("\"\\u0041\"")->AsString(), "A");
  EXPECT_EQ(JsonValue::Parse("\"\\u00e9\"")->AsString(), "\xc3\xa9");
  EXPECT_EQ(JsonValue::Parse("\"\\u20ac\"")->AsString(), "\xe2\x82\xac");
  // Surrogate pair decoding to U+1F600.
  EXPECT_EQ(JsonValue::Parse("\"\\ud83d\\ude00\"")->AsString(),
            "\xf0\x9f\x98\x80");
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":}").ok());
  EXPECT_FALSE(JsonValue::Parse("nul").ok());
  EXPECT_FALSE(JsonValue::Parse("tru").ok());
  EXPECT_FALSE(JsonValue::Parse("1 2").ok());  // trailing characters
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
  EXPECT_FALSE(JsonValue::Parse("\"bad\\escape\"").ok());
  EXPECT_FALSE(JsonValue::Parse("\"\x01\"").ok());  // raw control char
  EXPECT_FALSE(JsonValue::Parse("NaN").ok());
  EXPECT_FALSE(JsonValue::Parse("-").ok());
  EXPECT_FALSE(JsonValue::Parse("1.").ok());
  EXPECT_FALSE(JsonValue::Parse("1e").ok());
  EXPECT_FALSE(JsonValue::Parse("1e999").ok());  // overflows to infinity
  EXPECT_FALSE(JsonValue::Parse(R"("\ud83d")").ok());  // unpaired surrogate
  EXPECT_FALSE(JsonValue::Parse(R"("\udc00")").ok());  // lone low surrogate
}

TEST(JsonParseTest, RejectsExcessiveNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  for (int i = 0; i < 100; ++i) deep += "]";
  EXPECT_FALSE(JsonValue::Parse(deep).ok());
  // A modest depth is fine.
  std::string ok = std::string(10, '[') + std::string(10, ']');
  EXPECT_TRUE(JsonValue::Parse(ok).ok());
}

TEST(AppendJsonStringTest, EscapesSpecialsAndControlChars) {
  std::string out;
  AppendJsonString(&out, "a\"b\\c\n\x01");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\n\\u0001\"");
  // The escaped form parses back to the original bytes.
  auto parsed = JsonValue::Parse(out);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsString(), "a\"b\\c\n\x01");
}

TEST(FormatJsonDoubleTest, RoundTripsExactly) {
  const double cases[] = {0.0,
                          1.0,
                          -1.0,
                          0.1,
                          1.0 / 3.0,
                          0.12345678901234567,
                          1e-300,
                          -1e300,
                          std::numeric_limits<double>::denorm_min(),
                          std::nextafter(1.0, 2.0)};
  for (double value : cases) {
    const std::string text = FormatJsonDouble(value);
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), value) << text;
    // And it is valid JSON.
    auto parsed = JsonValue::Parse(text);
    ASSERT_TRUE(parsed.ok()) << text;
    EXPECT_EQ(parsed->AsNumber(), value);
  }
}

TEST(FormatJsonDoubleTest, NonFiniteBecomesNull) {
  EXPECT_EQ(FormatJsonDouble(std::numeric_limits<double>::infinity()),
            "null");
  EXPECT_EQ(FormatJsonDouble(std::numeric_limits<double>::quiet_NaN()),
            "null");
}

}  // namespace
}  // namespace leapme::serve
