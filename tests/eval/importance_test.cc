#include "eval/importance.h"

#include <gtest/gtest.h>

namespace leapme::eval {
namespace {

class ImportanceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto specs = DefaultDatasetSpecs(EvalScale::kTest);
    built_ = new EvalDataset(std::move(BuildEvalDataset(specs[1])).value());
  }
  static EvalDataset* built_;
};

EvalDataset* ImportanceTest::built_ = nullptr;

TEST_F(ImportanceTest, CoversSixGroupsSortedByDrop) {
  ImportanceOptions options;
  options.permutations = 1;
  auto importances = PermutationImportance(*built_, options);
  ASSERT_TRUE(importances.ok()) << importances.status();
  ASSERT_EQ(importances->size(), 6u);
  for (size_t i = 1; i < importances->size(); ++i) {
    EXPECT_GE((*importances)[i - 1].f1_drop, (*importances)[i].f1_drop);
  }
  // Column counts add up to the full pair dimension: 37 + 2d.
  size_t total = 0;
  for (const auto& importance : *importances) {
    total += importance.columns;
  }
  EXPECT_EQ(total, 37u + 2 * built_->model->dimension());
}

TEST_F(ImportanceTest, BaselineConsistentAcrossGroups) {
  ImportanceOptions options;
  options.permutations = 1;
  auto importances = PermutationImportance(*built_, options);
  ASSERT_TRUE(importances.ok());
  double baseline = importances->front().baseline_f1;
  for (const auto& importance : *importances) {
    EXPECT_DOUBLE_EQ(importance.baseline_f1, baseline);
    EXPECT_NEAR(importance.f1_drop,
                importance.baseline_f1 - importance.permuted_f1, 1e-12);
  }
  EXPECT_GT(baseline, 0.3);  // the trained model must actually work
}

TEST_F(ImportanceTest, SomeGroupMatters) {
  ImportanceOptions options;
  options.permutations = 2;
  auto importances = PermutationImportance(*built_, options);
  ASSERT_TRUE(importances.ok());
  // At least one feature group must carry real signal.
  EXPECT_GT(importances->front().f1_drop, 0.02);
}

TEST_F(ImportanceTest, ZeroPermutationsRejected) {
  ImportanceOptions options;
  options.permutations = 0;
  EXPECT_FALSE(PermutationImportance(*built_, options).ok());
}

TEST_F(ImportanceTest, DeterministicForFixedSeed) {
  ImportanceOptions options;
  options.permutations = 1;
  auto a = PermutationImportance(*built_, options);
  auto b = PermutationImportance(*built_, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_DOUBLE_EQ((*a)[i].f1_drop, (*b)[i].f1_drop);
  }
}

}  // namespace
}  // namespace leapme::eval
