#include "eval/leapme_adapter.h"

#include <gtest/gtest.h>

#include "data/domain.h"
#include "data/generator.h"
#include "data/splitting.h"
#include "embedding/synthetic_model.h"

namespace leapme::eval {
namespace {

class LeapmeAdapterTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::GeneratorOptions generator;
    generator.num_sources = 4;
    generator.min_entities_per_source = 6;
    generator.max_entities_per_source = 6;
    generator.seed = 81;
    dataset_ = new data::Dataset(
        data::GenerateCatalog(data::PhoneDomain(), generator).value());
    model_ = new embedding::SyntheticEmbeddingModel(
        embedding::SyntheticEmbeddingModel::Build(
            data::DomainClusters(data::PhoneDomain()),
            {.dimension = 16, .seed = 82})
            .value());
    Rng rng(83);
    train_ = new std::vector<data::LabeledPair>(
        data::BuildTrainingPairs(*dataset_, {0, 1, 2}, 2.0, rng).value());
  }

  static data::Dataset* dataset_;
  static embedding::SyntheticEmbeddingModel* model_;
  static std::vector<data::LabeledPair>* train_;
};

data::Dataset* LeapmeAdapterTest::dataset_ = nullptr;
embedding::SyntheticEmbeddingModel* LeapmeAdapterTest::model_ = nullptr;
std::vector<data::LabeledPair>* LeapmeAdapterTest::train_ = nullptr;

TEST_F(LeapmeAdapterTest, ReportsDisplayNameAndSupervision) {
  LeapmeAdapter adapter(model_, {}, "LEAPME(emb)");
  EXPECT_EQ(adapter.Name(), "LEAPME(emb)");
  EXPECT_TRUE(adapter.IsSupervised());
}

TEST_F(LeapmeAdapterTest, DelegatesFitAndClassify) {
  LeapmeAdapter adapter(model_, {}, "LEAPME");
  ASSERT_TRUE(adapter.Fit(*dataset_, *train_).ok());
  std::vector<data::PropertyPair> pairs{(*train_)[0].pair,
                                        (*train_)[1].pair};
  auto decisions = adapter.ClassifyPairs(pairs);
  ASSERT_TRUE(decisions.ok());
  EXPECT_EQ(decisions->size(), 2u);
}

TEST_F(LeapmeAdapterTest, ScoresAgreeWithUnderlyingMatcher) {
  core::LeapmeOptions options;
  LeapmeAdapter adapter(model_, options, "LEAPME");
  core::LeapmeMatcher direct(model_, options);
  ASSERT_TRUE(adapter.Fit(*dataset_, *train_).ok());
  ASSERT_TRUE(direct.Fit(*dataset_, *train_).ok());
  std::vector<data::PropertyPair> pairs{(*train_)[0].pair,
                                        (*train_)[2].pair};
  EXPECT_EQ(adapter.ScorePairs(pairs).value(),
            direct.ScorePairs(pairs).value());
}

TEST_F(LeapmeAdapterTest, MatcherAccessorExposesCore) {
  LeapmeAdapter adapter(model_, {}, "LEAPME");
  ASSERT_TRUE(adapter.Fit(*dataset_, *train_).ok());
  EXPECT_FALSE(adapter.matcher().training_losses().empty());
}

}  // namespace
}  // namespace leapme::eval
