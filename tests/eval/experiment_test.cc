#include "eval/experiment.h"

#include <cstdlib>

#include <gtest/gtest.h>

#include "baselines/aml.h"
#include "baselines/lsh.h"

namespace leapme::eval {
namespace {

TEST(DefaultDatasetSpecsTest, FourDatasetsAtEveryScale) {
  for (EvalScale scale :
       {EvalScale::kTest, EvalScale::kBench, EvalScale::kPaper}) {
    auto specs = DefaultDatasetSpecs(scale);
    ASSERT_EQ(specs.size(), 4u);
    EXPECT_EQ(specs[0].name, "cameras");
    EXPECT_EQ(specs[1].name, "headphones");
    EXPECT_EQ(specs[2].name, "phones");
    EXPECT_EQ(specs[3].name, "tvs");
    for (const DatasetSpec& spec : specs) {
      EXPECT_NE(spec.domain, nullptr);
      EXPECT_GE(spec.generator.num_sources, 2u);
    }
  }
}

TEST(DefaultDatasetSpecsTest, PaperScaleMatchesPaperNumbers) {
  auto specs = DefaultDatasetSpecs(EvalScale::kPaper);
  // Cameras: 24 sources, 100 entities per source, 300-d embeddings.
  EXPECT_EQ(specs[0].generator.num_sources, 24u);
  EXPECT_EQ(specs[0].generator.min_entities_per_source, 100u);
  EXPECT_EQ(specs[0].embedding.dimension, 300u);
  // Low-quality datasets are imbalanced.
  EXPECT_LT(specs[1].generator.min_entities_per_source,
            specs[1].generator.max_entities_per_source);
}

TEST(BuildEvalDatasetTest, ProducesDatasetAndModel) {
  auto specs = DefaultDatasetSpecs(EvalScale::kTest);
  auto built = BuildEvalDataset(specs[1]);
  ASSERT_TRUE(built.ok()) << built.status();
  EXPECT_GT(built->dataset.property_count(), 10u);
  EXPECT_NE(built->model, nullptr);
  EXPECT_EQ(built->model->dimension(), specs[1].embedding.dimension);
}

TEST(BuildEvalDatasetTest, NullDomainRejected) {
  DatasetSpec spec;
  EXPECT_FALSE(BuildEvalDataset(spec).ok());
}

TEST(EvaluateMatcherTest, RunsUnsupervisedBaseline) {
  auto specs = DefaultDatasetSpecs(EvalScale::kTest);
  auto built = BuildEvalDataset(specs[1]);
  ASSERT_TRUE(built.ok());
  EvaluationOptions options;
  options.repetitions = 2;
  options.train_fraction = 0.5;
  MatcherFactory factory = [](const embedding::EmbeddingModel&) {
    return std::unique_ptr<baselines::PairMatcher>(
        new baselines::AmlMatcher());
  };
  auto result = EvaluateMatcher(factory, *built, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->per_repetition.size(), 2u);
  EXPECT_GE(result->mean.precision, 0.0);
  EXPECT_LE(result->mean.precision, 1.0);
  EXPECT_GT(result->mean_test_pairs, 0u);
}

TEST(EvaluateMatcherTest, SameSeedSameResult) {
  auto specs = DefaultDatasetSpecs(EvalScale::kTest);
  auto built = BuildEvalDataset(specs[3]);
  ASSERT_TRUE(built.ok());
  EvaluationOptions options;
  options.repetitions = 1;
  MatcherFactory factory = [](const embedding::EmbeddingModel&) {
    return std::unique_ptr<baselines::PairMatcher>(
        new baselines::LshMatcher());
  };
  auto a = EvaluateMatcher(factory, *built, options);
  auto b = EvaluateMatcher(factory, *built, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->mean.f1, b->mean.f1);
}

TEST(EvaluateMatcherTest, ZeroRepetitionsRejected) {
  auto specs = DefaultDatasetSpecs(EvalScale::kTest);
  auto built = BuildEvalDataset(specs[1]);
  ASSERT_TRUE(built.ok());
  EvaluationOptions options;
  options.repetitions = 0;
  MatcherFactory factory = [](const embedding::EmbeddingModel&) {
    return std::unique_ptr<baselines::PairMatcher>(
        new baselines::AmlMatcher());
  };
  EXPECT_FALSE(EvaluateMatcher(factory, *built, options).ok());
}

TEST(EvaluateMatcherTest, NullFactoryResultRejected) {
  auto specs = DefaultDatasetSpecs(EvalScale::kTest);
  auto built = BuildEvalDataset(specs[1]);
  ASSERT_TRUE(built.ok());
  EvaluationOptions options;
  options.repetitions = 1;
  MatcherFactory factory = [](const embedding::EmbeddingModel&) {
    return std::unique_ptr<baselines::PairMatcher>();
  };
  EXPECT_FALSE(EvaluateMatcher(factory, *built, options).ok());
}

TEST(EnvIntTest, ParsesAndFallsBack) {
  ::setenv("LEAPME_TEST_ENV_INT", "42", 1);
  EXPECT_EQ(EnvInt("LEAPME_TEST_ENV_INT", 7), 42);
  ::setenv("LEAPME_TEST_ENV_INT", "not a number", 1);
  EXPECT_EQ(EnvInt("LEAPME_TEST_ENV_INT", 7), 7);
  ::unsetenv("LEAPME_TEST_ENV_INT");
  EXPECT_EQ(EnvInt("LEAPME_TEST_ENV_INT", 7), 7);
}

TEST(EnvDoubleTest, ParsesAndFallsBack) {
  ::setenv("LEAPME_TEST_ENV_DOUBLE", "0.25", 1);
  EXPECT_DOUBLE_EQ(EnvDouble("LEAPME_TEST_ENV_DOUBLE", 0.5), 0.25);
  ::unsetenv("LEAPME_TEST_ENV_DOUBLE");
  EXPECT_DOUBLE_EQ(EnvDouble("LEAPME_TEST_ENV_DOUBLE", 0.5), 0.5);
}

}  // namespace
}  // namespace leapme::eval
