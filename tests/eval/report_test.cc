#include "eval/report.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace leapme::eval {
namespace {

TEST(ResultsTableTest, RendersSectionsRowsAndCells) {
  ResultsTable table;
  table.AddApproach("LEAPME");
  table.AddApproach("AML");
  table.AddResult("Names", "cameras 80%", "LEAPME", {0.9, 0.8, 0.85});
  table.AddResult("Names", "cameras 80%", "AML", {0.99, 0.5, 0.66});
  std::string rendered = table.Render();
  EXPECT_NE(rendered.find("LEAPME"), std::string::npos);
  EXPECT_NE(rendered.find("AML"), std::string::npos);
  EXPECT_NE(rendered.find("[Names]"), std::string::npos);
  EXPECT_NE(rendered.find("cameras 80%"), std::string::npos);
  EXPECT_NE(rendered.find("0.85"), std::string::npos);
}

TEST(ResultsTableTest, BestF1Marked) {
  ResultsTable table;
  table.AddResult("S", "row", "winner", {0.9, 0.9, 0.9});
  table.AddResult("S", "row", "loser", {0.5, 0.5, 0.5});
  std::string rendered = table.Render();
  EXPECT_NE(rendered.find("0.90*"), std::string::npos);
  EXPECT_EQ(rendered.find("0.50*"), std::string::npos);
}

TEST(ResultsTableTest, MissingCellsRenderDashes) {
  ResultsTable table;
  table.AddApproach("A");
  table.AddApproach("B");
  table.AddResult("S", "row", "A", {1, 1, 1});
  std::string rendered = table.Render();
  EXPECT_NE(rendered.find("-"), std::string::npos);
}

TEST(ResultsTableTest, RowOrderIsInsertionOrder) {
  ResultsTable table;
  table.AddResult("S", "zrow", "A", {1, 1, 1});
  table.AddResult("S", "arow", "A", {1, 1, 1});
  std::string rendered = table.Render();
  EXPECT_LT(rendered.find("zrow"), rendered.find("arow"));
}

TEST(ResultsTableTest, CsvHasHeaderAndRows) {
  ResultsTable table;
  table.AddResult("Names", "cameras 80%", "LEAPME", {0.9, 0.8, 0.85});
  std::string csv = table.RenderCsv();
  EXPECT_NE(csv.find("section,row,approach,precision,recall,f1"),
            std::string::npos);
  EXPECT_NE(csv.find("Names,cameras 80%,LEAPME,0.9000,0.8000,0.8500"),
            std::string::npos);
}

TEST(ResultsTableTest, DuplicateApproachRegistrationIsIdempotent) {
  ResultsTable table;
  table.AddApproach("A");
  table.AddApproach("A");
  table.AddResult("S", "r", "A", {1, 1, 1});
  std::string csv = table.RenderCsv();
  // Exactly one data row.
  size_t lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(lines, 2u);
}

TEST(ResultsTableTest, UpdatingCellOverwrites) {
  ResultsTable table;
  table.AddResult("S", "r", "A", {0.1, 0.1, 0.1});
  table.AddResult("S", "r", "A", {0.9, 0.9, 0.9});
  std::string csv = table.RenderCsv();
  EXPECT_EQ(csv.find("0.1000"), std::string::npos);
  EXPECT_NE(csv.find("0.9000"), std::string::npos);
}

}  // namespace
}  // namespace leapme::eval
