#include "text/char_class.h"

#include <gtest/gtest.h>

namespace leapme::text {
namespace {

TEST(ClassifyCharTest, Letters) {
  EXPECT_EQ(ClassifyChar('A'), CharClass::kUppercaseLetter);
  EXPECT_EQ(ClassifyChar('Z'), CharClass::kUppercaseLetter);
  EXPECT_EQ(ClassifyChar('a'), CharClass::kLowercaseLetter);
  EXPECT_EQ(ClassifyChar('z'), CharClass::kLowercaseLetter);
}

TEST(ClassifyCharTest, Digits) {
  for (char c = '0'; c <= '9'; ++c) {
    EXPECT_EQ(ClassifyChar(static_cast<unsigned char>(c)),
              CharClass::kNumber);
  }
}

TEST(ClassifyCharTest, Separators) {
  EXPECT_EQ(ClassifyChar(' '), CharClass::kSeparator);
  EXPECT_EQ(ClassifyChar('\t'), CharClass::kSeparator);
  EXPECT_EQ(ClassifyChar('\n'), CharClass::kSeparator);
}

TEST(ClassifyCharTest, PunctuationAndSymbols) {
  EXPECT_EQ(ClassifyChar('.'), CharClass::kPunctuation);
  EXPECT_EQ(ClassifyChar(','), CharClass::kPunctuation);
  EXPECT_EQ(ClassifyChar('-'), CharClass::kPunctuation);
  EXPECT_EQ(ClassifyChar('/'), CharClass::kPunctuation);
  EXPECT_EQ(ClassifyChar('('), CharClass::kPunctuation);
  EXPECT_EQ(ClassifyChar('$'), CharClass::kSymbol);
  EXPECT_EQ(ClassifyChar('+'), CharClass::kSymbol);
  EXPECT_EQ(ClassifyChar('='), CharClass::kSymbol);
  EXPECT_EQ(ClassifyChar('~'), CharClass::kSymbol);
}

TEST(ClassifyCharTest, ControlIsOther) {
  EXPECT_EQ(ClassifyChar('\0'), CharClass::kOther);
  EXPECT_EQ(ClassifyChar(0x01), CharClass::kOther);
}

TEST(ClassifyCharTest, Utf8Bytes) {
  // Lead byte of a multi-byte sequence counts as a (caseless) letter,
  // continuation bytes as marks.
  EXPECT_EQ(ClassifyChar(0xC3), CharClass::kOtherLetter);
  EXPECT_EQ(ClassifyChar(0xA9), CharClass::kMark);
}

TEST(CountCharClassesTest, MixedString) {
  CharClassCounts counts = CountCharClasses("24.3 MP");
  EXPECT_EQ(counts.total, 7u);
  EXPECT_EQ(counts.count(CharClass::kNumber), 3u);
  EXPECT_EQ(counts.count(CharClass::kPunctuation), 1u);
  EXPECT_EQ(counts.count(CharClass::kSeparator), 1u);
  EXPECT_EQ(counts.count(CharClass::kUppercaseLetter), 2u);
  EXPECT_DOUBLE_EQ(counts.fraction(CharClass::kNumber), 3.0 / 7.0);
}

TEST(CountCharClassesTest, EmptyString) {
  CharClassCounts counts = CountCharClasses("");
  EXPECT_EQ(counts.total, 0u);
  for (size_t c = 0; c < kNumCharClasses; ++c) {
    EXPECT_DOUBLE_EQ(counts.fraction(static_cast<CharClass>(c)), 0.0);
  }
}

TEST(CountCharClassesTest, FractionsSumToOne) {
  CharClassCounts counts = CountCharClasses("Weight: 352 g (approx.)");
  double sum = 0.0;
  for (size_t c = 0; c < kNumCharClasses; ++c) {
    sum += counts.fraction(static_cast<CharClass>(c));
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(IsLetterTest, Basics) {
  EXPECT_TRUE(IsLetter('a'));
  EXPECT_TRUE(IsLetter('Q'));
  EXPECT_TRUE(IsLetter(0xC3));
  EXPECT_FALSE(IsLetter('5'));
  EXPECT_FALSE(IsLetter(' '));
  EXPECT_FALSE(IsLetter('-'));
}

}  // namespace
}  // namespace leapme::text
