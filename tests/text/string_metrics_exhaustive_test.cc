// Exhaustive cross-validation of the edit distances against a brute-force
// reference on all short strings over a small alphabet. Catches subtle DP
// indexing bugs that hand-picked cases miss.

#include <map>
#include <queue>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "text/string_metrics.h"

namespace leapme::text {
namespace {

// All strings of length <= max_length over `alphabet`.
std::vector<std::string> AllStrings(const std::string& alphabet,
                                    size_t max_length) {
  std::vector<std::string> result{""};
  std::vector<std::string> previous{""};
  for (size_t length = 1; length <= max_length; ++length) {
    std::vector<std::string> current;
    for (const std::string& prefix : previous) {
      for (char c : alphabet) {
        current.push_back(prefix + c);
      }
    }
    result.insert(result.end(), current.begin(), current.end());
    previous = std::move(current);
  }
  return result;
}

// Brute-force Levenshtein via BFS over edit operations is exponential;
// instead use the textbook full-matrix DP as an independent reference
// implementation (different code shape from the production rolling-row
// version).
size_t ReferenceLevenshtein(const std::string& a, const std::string& b) {
  std::vector<std::vector<size_t>> d(a.size() + 1,
                                     std::vector<size_t>(b.size() + 1));
  for (size_t i = 0; i <= a.size(); ++i) d[i][0] = i;
  for (size_t j = 0; j <= b.size(); ++j) d[0][j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
      d[i][j] = std::min({d[i - 1][j] + 1, d[i][j - 1] + 1,
                          d[i - 1][j - 1] + cost});
    }
  }
  return d[a.size()][b.size()];
}

// Reference full Damerau-Levenshtein: BFS in string space from `a`,
// applying insert/delete/substitute/adjacent-transpose, bounded by the
// Levenshtein distance (an upper bound on DL). Feasible for tiny strings.
size_t ReferenceDamerauLevenshtein(const std::string& a,
                                   const std::string& b,
                                   const std::string& alphabet) {
  if (a == b) return 0;
  size_t bound = ReferenceLevenshtein(a, b);
  std::map<std::string, size_t> distance{{a, 0}};
  std::queue<std::string> frontier;
  frontier.push(a);
  while (!frontier.empty()) {
    std::string current = frontier.front();
    frontier.pop();
    size_t dist = distance[current];
    if (dist >= bound) continue;
    auto visit = [&](const std::string& next) {
      auto it = distance.find(next);
      if (it == distance.end() || it->second > dist + 1) {
        distance[next] = dist + 1;
        if (next == b) {
          bound = std::min(bound, dist + 1);
        }
        frontier.push(next);
      }
    };
    // Deletions.
    for (size_t i = 0; i < current.size(); ++i) {
      visit(current.substr(0, i) + current.substr(i + 1));
    }
    // Insertions (bounded length keeps the search finite).
    if (current.size() < b.size() + 1) {
      for (size_t i = 0; i <= current.size(); ++i) {
        for (char c : alphabet) {
          visit(current.substr(0, i) + c + current.substr(i));
        }
      }
    }
    // Substitutions.
    for (size_t i = 0; i < current.size(); ++i) {
      for (char c : alphabet) {
        if (current[i] != c) {
          std::string next = current;
          next[i] = c;
          visit(next);
        }
      }
    }
    // Adjacent transpositions.
    for (size_t i = 0; i + 1 < current.size(); ++i) {
      std::string next = current;
      std::swap(next[i], next[i + 1]);
      visit(next);
    }
  }
  auto it = distance.find(b);
  return it == distance.end() ? bound : it->second;
}

TEST(ExhaustiveMetricsTest, LevenshteinMatchesReference) {
  auto strings = AllStrings("ab", 4);
  for (const std::string& a : strings) {
    for (const std::string& b : strings) {
      EXPECT_EQ(Levenshtein(a, b), ReferenceLevenshtein(a, b))
          << "'" << a << "' vs '" << b << "'";
    }
  }
}

TEST(ExhaustiveMetricsTest, DamerauLevenshteinMatchesReference) {
  const std::string alphabet = "ab";
  auto strings = AllStrings(alphabet, 3);
  for (const std::string& a : strings) {
    for (const std::string& b : strings) {
      EXPECT_EQ(DamerauLevenshtein(a, b),
                ReferenceDamerauLevenshtein(a, b, alphabet))
          << "'" << a << "' vs '" << b << "'";
    }
  }
}

TEST(ExhaustiveMetricsTest, OsaBetweenDlAndLevenshtein) {
  auto strings = AllStrings("abc", 3);
  for (const std::string& a : strings) {
    for (const std::string& b : strings) {
      size_t osa = OptimalStringAlignment(a, b);
      EXPECT_LE(DamerauLevenshtein(a, b), osa);
      EXPECT_LE(osa, Levenshtein(a, b));
    }
  }
}

TEST(ExhaustiveMetricsTest, LcsDistanceMatchesDefinition) {
  auto strings = AllStrings("ab", 4);
  for (const std::string& a : strings) {
    for (const std::string& b : strings) {
      EXPECT_EQ(LcsDistance(a, b),
                a.size() + b.size() - 2 * LongestCommonSubsequence(a, b));
    }
  }
}

}  // namespace
}  // namespace leapme::text
