#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace leapme::text {
namespace {

TEST(TokenizeTest, SplitsAtNonAlphanumerics) {
  EXPECT_EQ(Tokenize("24.3 MP (approx.)"),
            (std::vector<std::string>{"24", "3", "MP", "approx"}));
  EXPECT_EQ(Tokenize("wi-fi"), (std::vector<std::string>{"wi", "fi"}));
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("---").empty());
}

TEST(TokenizeKeepNumbersTest, KeepsDecimalPoints) {
  EXPECT_EQ(TokenizeKeepNumbers("24.3 MP"),
            (std::vector<std::string>{"24.3", "MP"}));
  EXPECT_EQ(TokenizeKeepNumbers("1,5 kg"),
            (std::vector<std::string>{"1,5", "kg"}));
  // A trailing dot is not a decimal point.
  EXPECT_EQ(TokenizeKeepNumbers("42."), (std::vector<std::string>{"42"}));
  // A dot between letters still splits.
  EXPECT_EQ(TokenizeKeepNumbers("a.b"), (std::vector<std::string>{"a", "b"}));
}

TEST(EmbeddingWordsTest, Lowercases) {
  EXPECT_EQ(EmbeddingWords("Camera Resolution 24.3MP"),
            (std::vector<std::string>{"camera", "resolution", "24.3mp"}));
}

TEST(TokenInClassTest, Word) {
  EXPECT_TRUE(TokenInClass("resolution", TokenClass::kWord));
  EXPECT_TRUE(TokenInClass("MP", TokenClass::kWord));
  EXPECT_FALSE(TokenInClass("24", TokenClass::kWord));
  EXPECT_FALSE(TokenInClass("a1", TokenClass::kWord));
  EXPECT_FALSE(TokenInClass("", TokenClass::kWord));
}

TEST(TokenInClassTest, LowercaseWord) {
  EXPECT_TRUE(TokenInClass("resolution", TokenClass::kLowercaseWord));
  EXPECT_FALSE(TokenInClass("Resolution", TokenClass::kLowercaseWord));
  EXPECT_FALSE(TokenInClass("42", TokenClass::kLowercaseWord));
}

TEST(TokenInClassTest, CapitalizedWord) {
  EXPECT_TRUE(TokenInClass("Nikon", TokenClass::kCapitalizedWord));
  EXPECT_FALSE(TokenInClass("NIKON", TokenClass::kCapitalizedWord));
  EXPECT_FALSE(TokenInClass("nikon", TokenClass::kCapitalizedWord));
  // Single capital letters are uppercase words, not capitalized words.
  EXPECT_FALSE(TokenInClass("N", TokenClass::kCapitalizedWord));
}

TEST(TokenInClassTest, UppercaseWord) {
  EXPECT_TRUE(TokenInClass("CMOS", TokenClass::kUppercaseWord));
  EXPECT_TRUE(TokenInClass("X", TokenClass::kUppercaseWord));
  EXPECT_FALSE(TokenInClass("Cmos", TokenClass::kUppercaseWord));
  EXPECT_FALSE(TokenInClass("CMOS2", TokenClass::kUppercaseWord));
}

TEST(TokenInClassTest, NumericString) {
  EXPECT_TRUE(TokenInClass("42", TokenClass::kNumericString));
  EXPECT_TRUE(TokenInClass("24.3", TokenClass::kNumericString));
  EXPECT_TRUE(TokenInClass("1,5", TokenClass::kNumericString));
  EXPECT_FALSE(TokenInClass("24a", TokenClass::kNumericString));
  EXPECT_FALSE(TokenInClass(".", TokenClass::kNumericString));
  EXPECT_FALSE(TokenInClass("", TokenClass::kNumericString));
}

TEST(CountTokenClassesTest, MixedValue) {
  TokenClassCounts counts = CountTokenClasses("Nikon D750 24.3 MP");
  EXPECT_EQ(counts.total_tokens, 4u);  // Nikon, D750, 24.3, MP
  EXPECT_EQ(counts.count(TokenClass::kWord), 2u);         // Nikon, MP
  EXPECT_EQ(counts.count(TokenClass::kCapitalizedWord), 1u);  // Nikon
  EXPECT_EQ(counts.count(TokenClass::kUppercaseWord), 1u);    // MP
  EXPECT_EQ(counts.count(TokenClass::kNumericString), 1u);    // 24.3
  EXPECT_DOUBLE_EQ(counts.fraction(TokenClass::kNumericString), 0.25);
}

TEST(CountTokenClassesTest, EmptyValue) {
  TokenClassCounts counts = CountTokenClasses("");
  EXPECT_EQ(counts.total_tokens, 0u);
  EXPECT_DOUBLE_EQ(counts.fraction(TokenClass::kWord), 0.0);
}

// Property sweep: every token produced by the tokenizer is non-empty and
// contains no separator bytes.
class TokenizerPropertyTest : public ::testing::TestWithParam<const char*> {};

TEST_P(TokenizerPropertyTest, TokensAreCleanAndNonEmpty) {
  for (const std::string& token : TokenizeKeepNumbers(GetParam())) {
    EXPECT_FALSE(token.empty());
    for (char c : token) {
      EXPECT_NE(c, ' ');
      EXPECT_NE(c, '\t');
    }
  }
}

TEST_P(TokenizerPropertyTest, EmbeddingWordsAreLowercase) {
  for (const std::string& word : EmbeddingWords(GetParam())) {
    for (char c : word) {
      EXPECT_FALSE(c >= 'A' && c <= 'Z') << word;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, TokenizerPropertyTest,
    ::testing::Values("", " ", "24.3 MP", "Nikon D750", "1/4000 s",
                      "117 x 68 x 50 mm", "f/1.8 - f/16", "$ 1,299.00",
                      "RAW, JPEG", "ISO 100-25600", "Wi-Fi + NFC",
                      "..leading.and.trailing..", "ALL CAPS VALUE",
                      "mixedCase tokens1 2tokens"));

}  // namespace
}  // namespace leapme::text
