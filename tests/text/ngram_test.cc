#include "text/ngram.h"

#include <gtest/gtest.h>

namespace leapme::text {
namespace {

TEST(NgramProfileTest, CountsTrigrams) {
  NgramProfile profile("abcab", 3);
  // Grams: abc, bca, cab.
  EXPECT_EQ(profile.total(), 3u);
  EXPECT_EQ(profile.distinct(), 3u);
  EXPECT_EQ(profile.count("abc"), 1u);
  EXPECT_EQ(profile.count("bca"), 1u);
  EXPECT_EQ(profile.count("cab"), 1u);
  EXPECT_EQ(profile.count("xyz"), 0u);
}

TEST(NgramProfileTest, Multiplicities) {
  NgramProfile profile("aaaa", 2);
  EXPECT_EQ(profile.total(), 3u);
  EXPECT_EQ(profile.distinct(), 1u);
  EXPECT_EQ(profile.count("aa"), 3u);
}

TEST(NgramProfileTest, ShortStringHasNoGrams) {
  NgramProfile profile("ab", 3);
  EXPECT_EQ(profile.total(), 0u);
  EXPECT_EQ(profile.distinct(), 0u);
}

TEST(NgramProfileTest, GramSizeOne) {
  NgramProfile profile("aba", 1);
  EXPECT_EQ(profile.total(), 3u);
  EXPECT_EQ(profile.count("a"), 2u);
  EXPECT_EQ(profile.count("b"), 1u);
}

TEST(QgramDistanceTest, IdenticalStringsZero) {
  NgramProfile a("resolution", 3);
  EXPECT_DOUBLE_EQ(QgramDistance(a, a), 0.0);
}

TEST(QgramDistanceTest, DisjointStringsSumOfTotals) {
  NgramProfile a("abcd", 3);  // abc, bcd
  NgramProfile b("wxyz", 3);  // wxy, xyz
  EXPECT_DOUBLE_EQ(QgramDistance(a, b), 4.0);
}

TEST(QgramDistanceTest, Symmetric) {
  NgramProfile a("screen size", 3);
  NgramProfile b("screen resolution", 3);
  EXPECT_DOUBLE_EQ(QgramDistance(a, b), QgramDistance(b, a));
}

TEST(CosineDistanceTest, IdenticalZeroDisjointOne) {
  NgramProfile a("display", 3);
  NgramProfile b("display", 3);
  NgramProfile c("qwzxrv", 3);
  EXPECT_NEAR(CosineDistance(a, b), 0.0, 1e-9);
  EXPECT_NEAR(CosineDistance(a, c), 1.0, 1e-9);
}

TEST(CosineDistanceTest, EmptyProfiles) {
  NgramProfile empty("", 3);
  NgramProfile non_empty("abcdef", 3);
  EXPECT_DOUBLE_EQ(CosineDistance(empty, empty), 0.0);
  EXPECT_DOUBLE_EQ(CosineDistance(empty, non_empty), 1.0);
  EXPECT_DOUBLE_EQ(CosineDistance(non_empty, empty), 1.0);
}

TEST(CosineDistanceTest, WithinUnitInterval) {
  NgramProfile a("optical zoom", 3);
  NgramProfile b("digital zoom", 3);
  double d = CosineDistance(a, b);
  EXPECT_GT(d, 0.0);
  EXPECT_LT(d, 1.0);
}

TEST(JaccardDistanceTest, IdenticalZeroDisjointOne) {
  NgramProfile a("weight", 3);
  NgramProfile b("weight", 3);
  NgramProfile c("qqqqqq", 3);
  EXPECT_DOUBLE_EQ(JaccardDistance(a, b), 0.0);
  EXPECT_DOUBLE_EQ(JaccardDistance(a, c), 1.0);
}

TEST(JaccardDistanceTest, EmptyProfiles) {
  NgramProfile empty("ab", 3);
  NgramProfile non_empty("abcdef", 3);
  EXPECT_DOUBLE_EQ(JaccardDistance(empty, empty), 0.0);
  EXPECT_DOUBLE_EQ(JaccardDistance(empty, non_empty), 1.0);
}

TEST(JaccardDistanceTest, KnownValue) {
  // "abcd" -> {abc, bcd}; "abce" -> {abc, bce}; intersection 1, union 3.
  NgramProfile a("abcd", 3);
  NgramProfile b("abce", 3);
  EXPECT_NEAR(JaccardDistance(a, b), 1.0 - 1.0 / 3.0, 1e-9);
}

}  // namespace
}  // namespace leapme::text
