#include "text/string_metrics.h"

#include <string>
#include <tuple>

#include <gtest/gtest.h>

namespace leapme::text {
namespace {

TEST(LevenshteinTest, KnownValues) {
  EXPECT_EQ(Levenshtein("kitten", "sitting"), 3u);
  EXPECT_EQ(Levenshtein("flaw", "lawn"), 2u);
  EXPECT_EQ(Levenshtein("", "abc"), 3u);
  EXPECT_EQ(Levenshtein("abc", ""), 3u);
  EXPECT_EQ(Levenshtein("", ""), 0u);
  EXPECT_EQ(Levenshtein("same", "same"), 0u);
}

TEST(OsaTest, TranspositionCostsOne) {
  EXPECT_EQ(OptimalStringAlignment("ca", "ac"), 1u);
  EXPECT_EQ(Levenshtein("ca", "ac"), 2u);
}

TEST(OsaTest, RestrictedTranspositionDiffersFromFullDl) {
  // The classic case: OSA("ca","abc") = 3 but full DL = 2.
  EXPECT_EQ(OptimalStringAlignment("ca", "abc"), 3u);
  EXPECT_EQ(DamerauLevenshtein("ca", "abc"), 2u);
}

TEST(DamerauLevenshteinTest, KnownValues) {
  EXPECT_EQ(DamerauLevenshtein("abcdef", "abcdef"), 0u);
  EXPECT_EQ(DamerauLevenshtein("ab", "ba"), 1u);
  EXPECT_EQ(DamerauLevenshtein("", "xyz"), 3u);
  EXPECT_EQ(DamerauLevenshtein("specification", "spceification"), 1u);
}

TEST(LcsTest, SubsequenceLength) {
  EXPECT_EQ(LongestCommonSubsequence("abcde", "ace"), 3u);
  EXPECT_EQ(LongestCommonSubsequence("abc", "xyz"), 0u);
  EXPECT_EQ(LongestCommonSubsequence("", "abc"), 0u);
  EXPECT_EQ(LongestCommonSubsequence("same", "same"), 4u);
}

TEST(LcsDistanceTest, InsertDeleteOnly) {
  EXPECT_EQ(LcsDistance("abcde", "ace"), 2u);
  EXPECT_EQ(LcsDistance("abc", "xyz"), 6u);
  EXPECT_EQ(LcsDistance("", ""), 0u);
  // Substitution costs 2 under LCS (delete + insert).
  EXPECT_EQ(LcsDistance("abc", "axc"), 2u);
}

TEST(ThreeGramDistanceTest, Basics) {
  EXPECT_DOUBLE_EQ(ThreeGramDistance("resolution", "resolution"), 0.0);
  // Disjoint trigram sets: |a|-2 + |b|-2 grams all differ.
  EXPECT_DOUBLE_EQ(ThreeGramDistance("abcd", "wxyz"), 4.0);
}

TEST(ThreeGramCosineTest, Range) {
  EXPECT_NEAR(ThreeGramCosineDistance("display", "display"), 0.0, 1e-9);
  EXPECT_NEAR(ThreeGramCosineDistance("abcdef", "uvwxyz"), 1.0, 1e-9);
}

TEST(ThreeGramJaccardTest, Range) {
  EXPECT_DOUBLE_EQ(ThreeGramJaccardDistance("weight", "weight"), 0.0);
  EXPECT_DOUBLE_EQ(ThreeGramJaccardDistance("abcdef", "uvwxyz"), 1.0);
}

TEST(JaroTest, KnownValues) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("a", ""), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "abc"), 1.0);
  EXPECT_NEAR(JaroSimilarity("martha", "marhta"), 0.9444, 1e-3);
  EXPECT_NEAR(JaroSimilarity("dixon", "dicksonx"), 0.7667, 1e-3);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "xyz"), 0.0);
}

TEST(JaroWinklerTest, PrefixBoost) {
  EXPECT_NEAR(JaroWinklerSimilarity("martha", "marhta"), 0.9611, 1e-3);
  EXPECT_NEAR(JaroWinklerSimilarity("dwayne", "duane"), 0.84, 1e-2);
  // Prefix bonus caps at 4 characters.
  double with_long_prefix = JaroWinklerSimilarity("abcdefgh", "abcdefxy");
  double with_four_prefix = JaroWinklerSimilarity("abcdxxxx", "abcdyyyy");
  EXPECT_GT(with_long_prefix, with_four_prefix);
}

TEST(JaroWinklerDistanceTest, Complement) {
  EXPECT_DOUBLE_EQ(JaroWinklerDistance("abc", "abc"), 0.0);
  EXPECT_DOUBLE_EQ(JaroWinklerDistance("abc", "xyz"), 1.0);
}

TEST(NormalizedByMaxLengthTest, Basics) {
  EXPECT_DOUBLE_EQ(NormalizedByMaxLength(2, "abcd", "ab"), 0.5);
  EXPECT_DOUBLE_EQ(NormalizedByMaxLength(0, "", ""), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedByMaxLength(3, "abc", ""), 1.0);
}

// ---------------------------------------------------------------------------
// Property sweeps over string pairs: metric axioms that must hold for any
// inputs (identity, symmetry, bounds, triangle inequality for Levenshtein).

using StringPair = std::tuple<std::string, std::string>;

class MetricPropertyTest : public ::testing::TestWithParam<StringPair> {};

TEST_P(MetricPropertyTest, IdentityOfIndiscernibles) {
  const auto& [a, b] = GetParam();
  EXPECT_EQ(Levenshtein(a, a), 0u);
  EXPECT_EQ(OptimalStringAlignment(b, b), 0u);
  EXPECT_EQ(DamerauLevenshtein(a, a), 0u);
  EXPECT_EQ(LcsDistance(b, b), 0u);
}

TEST_P(MetricPropertyTest, Symmetry) {
  const auto& [a, b] = GetParam();
  EXPECT_EQ(Levenshtein(a, b), Levenshtein(b, a));
  EXPECT_EQ(OptimalStringAlignment(a, b), OptimalStringAlignment(b, a));
  EXPECT_EQ(DamerauLevenshtein(a, b), DamerauLevenshtein(b, a));
  EXPECT_EQ(LcsDistance(a, b), LcsDistance(b, a));
  EXPECT_DOUBLE_EQ(ThreeGramDistance(a, b), ThreeGramDistance(b, a));
  EXPECT_DOUBLE_EQ(ThreeGramCosineDistance(a, b),
                   ThreeGramCosineDistance(b, a));
  EXPECT_DOUBLE_EQ(ThreeGramJaccardDistance(a, b),
                   ThreeGramJaccardDistance(b, a));
  EXPECT_DOUBLE_EQ(JaroWinklerDistance(a, b), JaroWinklerDistance(b, a));
}

TEST_P(MetricPropertyTest, OrderingOfEditDistances) {
  const auto& [a, b] = GetParam();
  // Adding edit operations can only shorten the distance:
  // DL <= OSA <= Levenshtein <= LCS distance.
  EXPECT_LE(DamerauLevenshtein(a, b), OptimalStringAlignment(a, b));
  EXPECT_LE(OptimalStringAlignment(a, b), Levenshtein(a, b));
  EXPECT_LE(Levenshtein(a, b), LcsDistance(a, b));
}

TEST_P(MetricPropertyTest, EditDistanceBounds) {
  const auto& [a, b] = GetParam();
  size_t lev = Levenshtein(a, b);
  size_t longest = std::max(a.size(), b.size());
  size_t shortest = std::min(a.size(), b.size());
  EXPECT_LE(lev, longest);
  EXPECT_GE(lev, longest - shortest);
}

TEST_P(MetricPropertyTest, NormalizedDistancesInUnitInterval) {
  const auto& [a, b] = GetParam();
  for (double d : {ThreeGramCosineDistance(a, b),
                   ThreeGramJaccardDistance(a, b), JaroWinklerDistance(a, b),
                   NormalizedByMaxLength(Levenshtein(a, b), a, b)}) {
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0 + 1e-12);
  }
}

TEST_P(MetricPropertyTest, JaroSimilarityBounds) {
  const auto& [a, b] = GetParam();
  double jaro = JaroSimilarity(a, b);
  double jw = JaroWinklerSimilarity(a, b);
  EXPECT_GE(jaro, 0.0);
  EXPECT_LE(jaro, 1.0);
  EXPECT_GE(jw, jaro);  // Winkler prefix boost never lowers similarity
  EXPECT_LE(jw, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    PairCorpus, MetricPropertyTest,
    ::testing::Values(
        StringPair{"", ""}, StringPair{"", "resolution"},
        StringPair{"a", "b"}, StringPair{"ab", "ba"},
        StringPair{"resolution", "camera resolution"},
        StringPair{"megapixels", "effective pixels"},
        StringPair{"screen size", "display size"},
        StringPair{"optical zoom", "digital zoom"},
        StringPair{"wi-fi", "wifi"}, StringPair{"WEIGHT", "weight"},
        StringPair{"1/4000 s", "1/8000 s"},
        StringPair{"battery life", "battery"},
        StringPair{"abcdefghijklmnop", "ponmlkjihgfedcba"},
        StringPair{"aaaaaaa", "aaaaaab"}));

// Triangle inequality spot checks for Levenshtein on string triples.
class TriangleTest : public ::testing::TestWithParam<
                         std::tuple<std::string, std::string, std::string>> {
};

TEST_P(TriangleTest, LevenshteinTriangleInequality) {
  const auto& [a, b, c] = GetParam();
  EXPECT_LE(Levenshtein(a, c), Levenshtein(a, b) + Levenshtein(b, c));
}

INSTANTIATE_TEST_SUITE_P(
    TripleCorpus, TriangleTest,
    ::testing::Values(
        std::make_tuple("resolution", "megapixels", "mp"),
        std::make_tuple("", "abc", "abcdef"),
        std::make_tuple("screen", "screen size", "display size"),
        std::make_tuple("a", "ab", "abc"),
        std::make_tuple("zoom", "optical zoom", "digital zoom")));

}  // namespace
}  // namespace leapme::text
