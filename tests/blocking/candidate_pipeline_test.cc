// Tests for CandidatePipeline: spec-string parsing (malformed specs are
// typed InvalidArgument), deterministic candidate generation across
// thread counts, the all-pairs parity guarantee (blocking through the
// passthrough pipeline is bit-identical to scoring the full enumeration),
// and index-mode queries.

#include "blocking/candidate_pipeline.h"

#include <algorithm>
#include <gtest/gtest.h>

#include "common/parallel.h"
#include "core/leapme.h"
#include "data/domain.h"
#include "data/generator.h"
#include "data/splitting.h"
#include "embedding/synthetic_model.h"

namespace leapme::blocking {
namespace {

embedding::SyntheticEmbeddingModel MakeModel() {
  return embedding::SyntheticEmbeddingModel::Build(
             data::DomainClusters(data::HeadphoneDomain()),
             {.dimension = 32,
              .seed = 18,
              .oov_policy = embedding::OovPolicy::kHashedVector})
      .value();
}

data::Dataset MakeDataset() {
  data::GeneratorOptions generator;
  generator.num_sources = 5;
  generator.min_entities_per_source = 8;
  generator.max_entities_per_source = 8;
  generator.seed = 17;
  return data::GenerateCatalog(data::HeadphoneDomain(), generator).value();
}

TEST(CandidatePipelineParseTest, AcceptsRegisteredSpecs) {
  embedding::SyntheticEmbeddingModel model = MakeModel();
  for (const char* spec :
       {"all-pairs", "name-token", "name-token:max-freq=0.5",
        "embedding-lsh", "embedding-lsh:bands=16:bits=8:seed=9",
        "union(name-token,embedding-lsh)",
        "union( name-token , union(all-pairs) )"}) {
    auto pipeline = CandidatePipeline::Parse(spec, &model);
    EXPECT_TRUE(pipeline.ok()) << spec << ": " << pipeline.status();
  }
}

TEST(CandidatePipelineParseTest, MalformedSpecsAreInvalidArgument) {
  embedding::SyntheticEmbeddingModel model = MakeModel();
  for (const char* spec :
       {"", "bogus", "union()", "union(name-token", "union(,name-token)",
        "name-token:max-freq=0", "name-token:max-freq=2",
        "name-token:freq=0.5", "embedding-lsh:bands=0",
        "embedding-lsh:bands=257", "embedding-lsh:bits=64",
        "embedding-lsh:seed=-1", "all-pairs:k=1", "all-pairs extra",
        "union(name-token))"}) {
    auto pipeline = CandidatePipeline::Parse(spec, &model);
    ASSERT_FALSE(pipeline.ok()) << spec;
    EXPECT_TRUE(pipeline.status().IsInvalidArgument()) << spec;
    EXPECT_NE(pipeline.status().message().find("blocking spec"),
              std::string::npos)
        << pipeline.status();
  }
}

TEST(CandidatePipelineParseTest, EmbeddingLshRequiresAModel) {
  auto pipeline = CandidatePipeline::Parse("embedding-lsh", nullptr);
  ASSERT_FALSE(pipeline.ok());
  EXPECT_TRUE(pipeline.status().IsInvalidArgument());
}

TEST(CandidatePipelineTest, CandidatesAreSortedDeduplicatedAndCrossSource) {
  embedding::SyntheticEmbeddingModel model = MakeModel();
  data::Dataset dataset = MakeDataset();
  auto pipeline = CandidatePipeline::Parse(
      "union(name-token,embedding-lsh)", &model);
  ASSERT_TRUE(pipeline.ok());
  auto candidates = (*pipeline)->Candidates(dataset);
  ASSERT_TRUE(candidates.ok());
  ASSERT_FALSE(candidates->empty());
  const auto pair_less = [](const data::PropertyPair& x,
                            const data::PropertyPair& y) {
    return x.a != y.a ? x.a < y.a : x.b < y.b;
  };
  EXPECT_TRUE(std::is_sorted(candidates->begin(), candidates->end(),
                             pair_less));
  EXPECT_EQ(std::adjacent_find(candidates->begin(), candidates->end()),
            candidates->end());
  for (const data::PropertyPair& pair : *candidates) {
    EXPECT_LT(pair.a, pair.b);
    EXPECT_NE(dataset.property(pair.a).source,
              dataset.property(pair.b).source);
  }
}

TEST(CandidatePipelineTest, CandidatesAreIdenticalAtAnyThreadCount) {
  embedding::SyntheticEmbeddingModel model = MakeModel();
  data::Dataset dataset = MakeDataset();
  std::vector<std::vector<data::PropertyPair>> runs;
  for (size_t threads : {size_t{1}, size_t{4}}) {
    SetGlobalThreadCount(threads);
    auto pipeline = CandidatePipeline::Parse(
        "union(name-token,embedding-lsh:bands=16)", &model);
    ASSERT_TRUE(pipeline.ok());
    auto candidates = (*pipeline)->Candidates(dataset);
    ASSERT_TRUE(candidates.ok()) << candidates.status();
    runs.push_back(std::move(candidates).value());
  }
  SetGlobalThreadCount(0);
  EXPECT_EQ(runs[0], runs[1]);
}

TEST(CandidatePipelineTest, IndexQueriesAreSortedAndRepeatable) {
  embedding::SyntheticEmbeddingModel model = MakeModel();
  data::Dataset dataset = MakeDataset();
  auto pipeline = CandidatePipeline::Parse(
      "union(name-token,embedding-lsh)", &model);
  ASSERT_TRUE(pipeline.ok());
  ASSERT_TRUE((*pipeline)->BuildIndex(dataset).ok());
  const std::string name = dataset.property(0).name;
  auto first = (*pipeline)->Query(name);
  auto second = (*pipeline)->Query(name);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);
  EXPECT_TRUE(std::is_sorted(first->begin(), first->end()));
  EXPECT_EQ(std::adjacent_find(first->begin(), first->end()), first->end());
}

TEST(CandidatePipelineTest, QueryBeforeBuildIndexFails) {
  embedding::SyntheticEmbeddingModel model = MakeModel();
  auto pipeline = CandidatePipeline::Parse("name-token", &model);
  ASSERT_TRUE(pipeline.ok());
  EXPECT_FALSE((*pipeline)->Query("weight").ok());
}

TEST(CandidatePipelineTest, SnapshotStatsCoversEveryBlockerInTheTree) {
  embedding::SyntheticEmbeddingModel model = MakeModel();
  data::Dataset dataset = MakeDataset();
  auto pipeline = CandidatePipeline::Parse(
      "union(name-token,embedding-lsh)", &model);
  ASSERT_TRUE(pipeline.ok());
  ASSERT_TRUE((*pipeline)->Candidates(dataset).ok());
  std::vector<BlockerStats> stats = (*pipeline)->SnapshotStats();
  ASSERT_EQ(stats.size(), 3u);  // union + two children
  for (const BlockerStats& blocker : stats) {
    EXPECT_FALSE(blocker.name.empty());
    EXPECT_EQ(blocker.batch_calls, 1u);
    EXPECT_GT(blocker.candidates, 0u);
  }
}

TEST(CandidatePipelineTest, AllPairsScoringIsBitIdenticalToFullEnumeration) {
  embedding::SyntheticEmbeddingModel model = MakeModel();
  data::Dataset dataset = MakeDataset();
  Rng rng(29);
  data::SourceSplit split = data::SplitSources(dataset, 0.8, rng);
  auto training =
      data::BuildTrainingPairs(dataset, split.train_sources, 2.0, rng);
  ASSERT_TRUE(training.ok());
  core::LeapmeMatcher matcher(&model);
  ASSERT_TRUE(matcher.Fit(dataset, *training).ok());

  // Pre-pipeline reference: enumerate and score every cross-source pair.
  const std::vector<data::PropertyPair> all = dataset.AllCrossSourcePairs();
  auto reference = matcher.ScorePairs(all);
  ASSERT_TRUE(reference.ok());

  auto pipeline = CandidatePipeline::Parse("all-pairs", &model);
  ASSERT_TRUE(pipeline.ok());
  auto blocked = matcher.ScoreCandidates(dataset, **pipeline);
  ASSERT_TRUE(blocked.ok()) << blocked.status();
  ASSERT_EQ(blocked->candidates, all);
  ASSERT_EQ(blocked->scores.size(), reference->size());
  for (size_t i = 0; i < reference->size(); ++i) {
    EXPECT_EQ(blocked->scores[i], (*reference)[i]) << "pair " << i;
  }
}

}  // namespace
}  // namespace leapme::blocking
