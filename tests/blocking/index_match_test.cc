// Serve-side tests for the catalog-index mode: AttachCatalog +
// index_match round trips through MatcherService, blocking stats in the
// stats op, deadline handling, and the chaos case — an embedding fault
// during candidate generation degrades to a full-catalog scan instead of
// failing the request.

#include <unistd.h>

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "blocking/candidate_pipeline.h"
#include "common/deadline.h"
#include "common/faults/fault_injector.h"
#include "core/leapme.h"
#include "data/domain.h"
#include "data/generator.h"
#include "data/splitting.h"
#include "embedding/caching_model.h"
#include "embedding/synthetic_model.h"
#include "serve/json.h"
#include "serve/matcher_service.h"

namespace leapme::serve {
namespace {

/// Arms the process-wide injector for one test scope; always disarms on
/// the way out so a failing assertion cannot poison later tests.
class ScopedFaults {
 public:
  explicit ScopedFaults(const std::string& spec) {
    EXPECT_TRUE(faults::FaultInjector::Global().Arm(spec).ok()) << spec;
  }
  ~ScopedFaults() { faults::FaultInjector::Global().Disarm(); }
};

std::string IndexMatchRequest(const data::Dataset& dataset,
                              data::PropertyId id, size_t k) {
  std::string request = "{\"op\":\"index_match\",\"id\":7,\"property\":";
  request += "{\"name\":";
  AppendJsonString(&request, dataset.property(id).name);
  request += ",\"values\":[";
  const auto& instances = dataset.instances(id);
  for (size_t i = 0; i < instances.size(); ++i) {
    if (i > 0) request.push_back(',');
    AppendJsonString(&request, instances[i].value);
  }
  request += "]},\"k\":" + std::to_string(k) + "}";
  return request;
}

class IndexMatchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::GeneratorOptions generator;
    generator.num_sources = 4;
    generator.min_entities_per_source = 8;
    generator.max_entities_per_source = 8;
    generator.seed = 91;
    catalog_ = new data::Dataset(
        data::GenerateCatalog(data::TvDomain(), generator).value());
    base_model_ = new embedding::SyntheticEmbeddingModel(
        embedding::SyntheticEmbeddingModel::Build(
            data::DomainClusters(data::TvDomain()),
            {.dimension = 16,
             .seed = 92,
             .oov_policy = embedding::OovPolicy::kHashedVector})
            .value());
    cached_model_ =
        new embedding::CachingEmbeddingModel(base_model_, 4096);

    Rng rng(93);
    std::vector<data::SourceId> sources{0, 1, 2};
    auto training =
        data::BuildTrainingPairs(*catalog_, sources, 2.0, rng).value();
    core::LeapmeMatcher trained(base_model_);
    ASSERT_TRUE(trained.Fit(*catalog_, training).ok());
    const std::string path = ::testing::TempDir() + "/index_match." +
                             std::to_string(::getpid()) + ".model";
    ASSERT_TRUE(trained.SaveModel(path).ok());
    matcher_ = new core::LeapmeMatcher(
        core::LeapmeMatcher::LoadModel(cached_model_, path).value());
  }

  /// A fresh service with the catalog attached through `spec`.
  std::unique_ptr<MatcherService> MakeIndexedService(
      const std::string& spec = "union(name-token,embedding-lsh)") {
    auto pipeline = blocking::CandidatePipeline::Parse(spec, cached_model_);
    EXPECT_TRUE(pipeline.ok()) << pipeline.status();
    pipeline_ = std::move(pipeline).value();
    auto service = std::make_unique<MatcherService>(matcher_, cached_model_);
    EXPECT_TRUE(service->AttachCatalog(catalog_, pipeline_.get()).ok());
    return service;
  }

  std::unique_ptr<blocking::CandidatePipeline> pipeline_;

  static data::Dataset* catalog_;
  static embedding::SyntheticEmbeddingModel* base_model_;
  static embedding::CachingEmbeddingModel* cached_model_;
  static core::LeapmeMatcher* matcher_;
};

data::Dataset* IndexMatchTest::catalog_ = nullptr;
embedding::SyntheticEmbeddingModel* IndexMatchTest::base_model_ = nullptr;
embedding::CachingEmbeddingModel* IndexMatchTest::cached_model_ = nullptr;
core::LeapmeMatcher* IndexMatchTest::matcher_ = nullptr;

TEST_F(IndexMatchTest, RoundTripReturnsRankedCatalogMatches) {
  auto service = MakeIndexedService();
  const std::string response =
      service->HandleLine(IndexMatchRequest(*catalog_, 0, 3));
  auto parsed = JsonValue::Parse(response);
  ASSERT_TRUE(parsed.ok()) << response;
  EXPECT_TRUE(parsed->Find("ok")->AsBool()) << response;
  EXPECT_EQ(parsed->Find("op")->AsString(), "index_match");
  EXPECT_EQ(parsed->Find("id")->AsNumber(), 7.0);
  ASSERT_NE(parsed->Find("candidates"), nullptr);
  EXPECT_GT(parsed->Find("candidates")->AsNumber(), 0.0);
  ASSERT_NE(parsed->Find("blocking_us"), nullptr);
  const auto& matches = parsed->Find("matches")->AsArray();
  ASSERT_FALSE(matches.empty());
  ASSERT_LE(matches.size(), 3u);
  double previous = 1.0;
  for (const JsonValue& match : matches) {
    const double score = match.Find("score")->AsNumber();
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, previous);
    previous = score;
    const auto id =
        static_cast<data::PropertyId>(match.Find("property")->AsNumber());
    EXPECT_EQ(match.Find("name")->AsString(), catalog_->property(id).name);
    EXPECT_EQ(match.Find("source")->AsString(),
              catalog_->source_name(catalog_->property(id).source));
  }
}

TEST_F(IndexMatchTest, RepeatedQueriesAreDeterministic) {
  auto service = MakeIndexedService();
  const std::string request = IndexMatchRequest(*catalog_, 2, 5);
  const std::string first = service->HandleLine(request);
  const std::string second = service->HandleLine(request);
  // Everything but the wall-clock blocking_us must be identical —
  // candidate count, match set, order, and exact score serialization.
  const auto matches_part = [](const std::string& response) {
    const size_t at = response.find("\"matches\"");
    EXPECT_NE(at, std::string::npos) << response;
    return response.substr(at);
  };
  EXPECT_EQ(matches_part(first), matches_part(second));
  auto parsed_first = JsonValue::Parse(first);
  auto parsed_second = JsonValue::Parse(second);
  ASSERT_TRUE(parsed_first.ok());
  ASSERT_TRUE(parsed_second.ok());
  EXPECT_EQ(parsed_first->Find("candidates")->AsNumber(),
            parsed_second->Find("candidates")->AsNumber());
}

TEST_F(IndexMatchTest, WithoutCatalogIsFailedPrecondition) {
  MatcherService service(matcher_, cached_model_);
  const std::string response =
      service.HandleLine(IndexMatchRequest(*catalog_, 0, 3));
  auto parsed = JsonValue::Parse(response);
  ASSERT_TRUE(parsed.ok()) << response;
  EXPECT_FALSE(parsed->Find("ok")->AsBool());
  EXPECT_EQ(parsed->Find("error")->Find("code")->AsString(),
            "FailedPrecondition");
}

TEST_F(IndexMatchTest, MissingPropertyFieldIsInvalidArgument) {
  auto service = MakeIndexedService();
  const std::string response =
      service->HandleLine("{\"op\":\"index_match\",\"id\":1}");
  auto parsed = JsonValue::Parse(response);
  ASSERT_TRUE(parsed.ok()) << response;
  EXPECT_FALSE(parsed->Find("ok")->AsBool());
  EXPECT_EQ(parsed->Find("error")->Find("code")->AsString(),
            "InvalidArgument");
}

TEST_F(IndexMatchTest, ExpiredDeadlineIsDeadlineExceeded) {
  auto service = MakeIndexedService();
  const std::string response = service->HandleLine(
      IndexMatchRequest(*catalog_, 0, 3), Deadline::AfterMs(0));
  auto parsed = JsonValue::Parse(response);
  ASSERT_TRUE(parsed.ok()) << response;
  EXPECT_FALSE(parsed->Find("ok")->AsBool());
  EXPECT_EQ(parsed->Find("error")->Find("code")->AsString(),
            "DeadlineExceeded");
}

TEST_F(IndexMatchTest, StatsReportCatalogAndBlockingCounters) {
  auto service = MakeIndexedService();
  ASSERT_TRUE(JsonValue::Parse(
                  service->HandleLine(IndexMatchRequest(*catalog_, 1, 2)))
                  .ok());
  ServiceStats stats = service->Snapshot();
  EXPECT_EQ(stats.index_requests, 1u);
  EXPECT_EQ(stats.catalog_properties, catalog_->property_count());
  EXPECT_GT(stats.index_candidates, 0u);
  EXPECT_GT(stats.blocking_us_total, 0.0);
  ASSERT_EQ(stats.blockers.size(), 3u);  // union + two children
  for (const BlockerStat& blocker : stats.blockers) {
    EXPECT_FALSE(blocker.name.empty());
    // BuildIndex counted one batch call per blocker; the query walked
    // the tree once more.
    EXPECT_GE(blocker.batch_calls + blocker.queries, 1u);
  }

  const std::string response = service->HandleLine("{\"op\":\"stats\"}");
  auto parsed = JsonValue::Parse(response);
  ASSERT_TRUE(parsed.ok()) << response;
  const JsonValue* wire = parsed->Find("stats");
  ASSERT_NE(wire, nullptr);
  EXPECT_EQ(wire->Find("index_requests")->AsNumber(), 1.0);
  EXPECT_EQ(wire->Find("catalog_properties")->AsNumber(),
            static_cast<double>(catalog_->property_count()));
  EXPECT_EQ(wire->Find("blocking")->AsArray().size(), 3u);
}

TEST_F(IndexMatchTest, EmbeddingFaultDuringBlockingDegradesToFullScan) {
  auto service = MakeIndexedService();
  std::string response;
  {
    ScopedFaults faults("embedding.lookup:error");
    response = service->HandleLine(IndexMatchRequest(*catalog_, 0, 3));
  }
  auto parsed = JsonValue::Parse(response);
  ASSERT_TRUE(parsed.ok()) << response;
  // Degraded but served: blocking failed, so every catalog property was
  // scanned, and the response says so instead of failing.
  EXPECT_TRUE(parsed->Find("ok")->AsBool()) << response;
  ASSERT_NE(parsed->Find("degraded"), nullptr);
  EXPECT_TRUE(parsed->Find("degraded")->AsBool());
  EXPECT_EQ(parsed->Find("candidates")->AsNumber(),
            static_cast<double>(catalog_->property_count()));
  EXPECT_FALSE(parsed->Find("matches")->AsArray().empty());
  EXPECT_GE(service->Snapshot().degraded_responses, 1u);
}

}  // namespace
}  // namespace leapme::serve
