#include "blocking/blocker.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <gtest/gtest.h>

#include "data/domain.h"
#include "data/generator.h"
#include "embedding/synthetic_model.h"

namespace leapme::blocking {
namespace {

data::Dataset MakeSmallDataset() {
  data::Dataset dataset("block");
  data::SourceId s0 = dataset.AddSource("a");
  data::SourceId s1 = dataset.AddSource("b");
  dataset.AddProperty(s0, "screen size", "screen size");      // 0
  dataset.AddProperty(s0, "weight", "weight");                // 1
  dataset.AddProperty(s1, "display size", "screen size");     // 2
  dataset.AddProperty(s1, "weight info", "weight");           // 3
  dataset.AddProperty(s1, "megapixels", "resolution");        // 4
  return dataset;
}

bool Contains(const std::vector<data::PropertyPair>& pairs,
              data::PropertyPair pair) {
  if (pair.a > pair.b) std::swap(pair.a, pair.b);
  return std::find(pairs.begin(), pairs.end(), pair) != pairs.end();
}

TEST(NameTokenBlockerTest, SharedTokenPairsAreCandidates) {
  data::Dataset dataset = MakeSmallDataset();
  NameTokenBlocker blocker;
  auto candidates = blocker.Candidates(dataset);
  ASSERT_TRUE(candidates.ok());
  EXPECT_TRUE(Contains(*candidates, {0, 2}));  // share "size"
  EXPECT_TRUE(Contains(*candidates, {1, 3}));  // share "weight"
  EXPECT_FALSE(Contains(*candidates, {1, 4}));  // no shared tokens
}

TEST(NameTokenBlockerTest, NoSameSourceCandidates) {
  data::Dataset dataset = MakeSmallDataset();
  NameTokenBlocker blocker;
  auto candidates = blocker.Candidates(dataset);
  ASSERT_TRUE(candidates.ok());
  for (const data::PropertyPair& pair : *candidates) {
    EXPECT_NE(dataset.property(pair.a).source,
              dataset.property(pair.b).source);
    EXPECT_LT(pair.a, pair.b);
  }
}

TEST(NameTokenBlockerTest, CandidatesAreDeduplicated) {
  // "screen size" and "display size options"? Multiple shared tokens must
  // not duplicate the pair.
  data::Dataset dataset("dup");
  data::SourceId s0 = dataset.AddSource("a");
  data::SourceId s1 = dataset.AddSource("b");
  dataset.AddProperty(s0, "screen size class", "");
  dataset.AddProperty(s1, "screen size rating", "");
  NameTokenBlocker blocker;
  auto candidates = blocker.Candidates(dataset);
  ASSERT_TRUE(candidates.ok());
  EXPECT_EQ(candidates->size(), 1u);  // two shared tokens, one pair
}

TEST(EmbeddingBlockerTest, SynonymsBecomeCandidates) {
  auto model = embedding::SyntheticEmbeddingModel::Build(
      {{"res", {"resolution", "megapixels"}},
       {"weight", {"weight", "mass"}}},
      {.dimension = 32, .seed = 3, .intra_cluster_sigma = 0.05});
  ASSERT_TRUE(model.ok());
  data::Dataset dataset("emb");
  data::SourceId s0 = dataset.AddSource("a");
  data::SourceId s1 = dataset.AddSource("b");
  dataset.AddProperty(s0, "resolution", "resolution");  // 0
  dataset.AddProperty(s0, "weight", "weight");          // 1
  dataset.AddProperty(s1, "megapixels", "resolution");  // 2
  dataset.AddProperty(s1, "mass", "weight");            // 3

  EmbeddingBlockerOptions options;
  options.bands = 16;
  options.bits_per_band = 4;
  EmbeddingBlocker blocker(&model.value(), options);
  auto candidates = blocker.Candidates(dataset);
  ASSERT_TRUE(candidates.ok());
  // Token blocking could never find these (no shared tokens).
  EXPECT_TRUE(Contains(*candidates, {0, 2}));
  EXPECT_TRUE(Contains(*candidates, {1, 3}));
}

TEST(EmbeddingBlockerTest, RejectsBadConfiguration) {
  auto model = embedding::SyntheticEmbeddingModel::Build(
      {{"c", {"x"}}}, {.dimension = 8});
  ASSERT_TRUE(model.ok());
  data::Dataset dataset = MakeSmallDataset();
  EmbeddingBlockerOptions zero_bands;
  zero_bands.bands = 0;
  EXPECT_FALSE(EmbeddingBlocker(&model.value(), zero_bands)
                   .Candidates(dataset)
                   .ok());
  EmbeddingBlockerOptions too_many_bits;
  too_many_bits.bits_per_band = 64;
  EXPECT_FALSE(EmbeddingBlocker(&model.value(), too_many_bits)
                   .Candidates(dataset)
                   .ok());
}

TEST(UnionBlockerTest, CombinesCandidateSets) {
  auto model = embedding::SyntheticEmbeddingModel::Build(
      {{"res", {"resolution", "megapixels"}},
       {"size", {"screen", "display", "size"}},
       {"weight", {"weight", "info"}}},
      {.dimension = 32, .seed = 5, .intra_cluster_sigma = 0.05});
  ASSERT_TRUE(model.ok());
  data::Dataset dataset = MakeSmallDataset();
  NameTokenBlocker tokens;
  std::vector<std::unique_ptr<Blocker>> children;
  children.push_back(std::make_unique<NameTokenBlocker>());
  children.push_back(std::make_unique<EmbeddingBlocker>(&model.value()));
  UnionBlocker both(std::move(children));
  auto token_candidates = tokens.Candidates(dataset);
  auto union_candidates = both.Candidates(dataset);
  ASSERT_TRUE(token_candidates.ok());
  ASSERT_TRUE(union_candidates.ok());
  EXPECT_GE(union_candidates->size(), token_candidates->size());
}

TEST(UnionBlockerTest, NullBlockerRejected) {
  data::Dataset dataset = MakeSmallDataset();
  std::vector<std::unique_ptr<Blocker>> children;
  children.push_back(nullptr);
  UnionBlocker broken(std::move(children));
  EXPECT_FALSE(broken.Candidates(dataset).ok());
}

TEST(EvaluateBlockingTest, FullCrossProductIsCompleteWithZeroReduction) {
  data::Dataset dataset = MakeSmallDataset();
  auto all = dataset.AllCrossSourcePairs();
  BlockingQuality quality = EvaluateBlocking(dataset, all);
  EXPECT_DOUBLE_EQ(quality.pair_completeness, 1.0);
  EXPECT_DOUBLE_EQ(quality.reduction_ratio, 0.0);
  EXPECT_EQ(quality.candidate_count, all.size());
}

TEST(EvaluateBlockingTest, EmptyCandidatesFullReduction) {
  data::Dataset dataset = MakeSmallDataset();
  BlockingQuality quality = EvaluateBlocking(dataset, {});
  EXPECT_DOUBLE_EQ(quality.pair_completeness, 0.0);
  EXPECT_DOUBLE_EQ(quality.reduction_ratio, 1.0);
}

TEST(BlockingOnGeneratedDataTest, UnionBlockerKeepsMostMatches) {
  data::GeneratorOptions generator;
  generator.num_sources = 5;
  generator.min_entities_per_source = 8;
  generator.max_entities_per_source = 8;
  generator.seed = 17;
  auto dataset = data::GenerateCatalog(data::HeadphoneDomain(), generator);
  ASSERT_TRUE(dataset.ok());
  auto model = embedding::SyntheticEmbeddingModel::Build(
      data::DomainClusters(data::HeadphoneDomain()),
      {.dimension = 32,
       .seed = 18,
       .oov_policy = embedding::OovPolicy::kHashedVector});
  ASSERT_TRUE(model.ok());

  std::vector<std::unique_ptr<Blocker>> children;
  children.push_back(std::make_unique<NameTokenBlocker>());
  children.push_back(std::make_unique<EmbeddingBlocker>(&model.value()));
  UnionBlocker both(std::move(children));
  auto candidates = both.Candidates(*dataset);
  ASSERT_TRUE(candidates.ok());
  BlockingQuality quality = EvaluateBlocking(*dataset, *candidates);
  EXPECT_GT(quality.pair_completeness, 0.9);
  EXPECT_GT(quality.reduction_ratio, 0.3);
}

}  // namespace
}  // namespace leapme::blocking
