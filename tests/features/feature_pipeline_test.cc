#include "features/feature_pipeline.h"

#include <cmath>

#include <gtest/gtest.h>

#include "embedding/text_embedding_file.h"

namespace leapme::features {
namespace {

embedding::TextEmbeddingFile MakeModel() {
  auto model = embedding::TextEmbeddingFile::FromEntries(
      {{"resolution", {1.0f, 0.0f}},
       {"megapixels", {0.9f, 0.1f}},
       {"weight", {0.0f, 1.0f}},
       {"mp", {0.8f, 0.0f}},
       {"g", {0.1f, 0.9f}}});
  return std::move(model).value();
}

std::vector<std::string> Values(std::initializer_list<const char*> values) {
  return {values.begin(), values.end()};
}

TEST(FeaturePipelineTest, Dimensions) {
  embedding::TextEmbeddingFile model = MakeModel();
  FeaturePipeline pipeline(&model);
  EXPECT_EQ(pipeline.property_dimension(), 29u + 4u);
  EXPECT_EQ(pipeline.pair_dimension(), 29u + 4u + 8u);
}

TEST(FeaturePipelineTest, ComputePropertyAveragesInstances) {
  embedding::TextEmbeddingFile model = MakeModel();
  FeaturePipeline pipeline(&model);
  auto values = Values({"24", "26"});
  PropertyFeatures features =
      pipeline.ComputeProperty("resolution", values);
  EXPECT_EQ(features.name, "resolution");
  // Numeric value slot (28): mean of 24 and 26.
  EXPECT_FLOAT_EQ(features.vector[28], 25.0f);
}

TEST(FeaturePipelineTest, NameEmbeddingBlock) {
  embedding::TextEmbeddingFile model = MakeModel();
  FeaturePipeline pipeline(&model);
  std::vector<std::string> no_values;
  PropertyFeatures features =
      pipeline.ComputeProperty("resolution", no_values);
  size_t name_emb_start = 29 + 2;  // meta + value-embedding (d=2)
  EXPECT_FLOAT_EQ(features.vector[name_emb_start], 1.0f);
  EXPECT_FLOAT_EQ(features.vector[name_emb_start + 1], 0.0f);
}

TEST(FeaturePipelineTest, PropertyWithNoInstancesHasZeroInstanceBlock) {
  embedding::TextEmbeddingFile model = MakeModel();
  FeaturePipeline pipeline(&model);
  std::vector<std::string> no_values;
  PropertyFeatures features = pipeline.ComputeProperty("weight", no_values);
  for (size_t i = 0; i < 29 + 2; ++i) {
    EXPECT_FLOAT_EQ(features.vector[i], 0.0f);
  }
}

TEST(FeaturePipelineTest, MaxInstancesCapRespected) {
  embedding::TextEmbeddingFile model = MakeModel();
  PairFeatureOptions options;
  options.max_instances_per_property = 1;
  FeaturePipeline pipeline(&model, options);
  auto values = Values({"10", "999999"});
  PropertyFeatures features = pipeline.ComputeProperty("x", values);
  EXPECT_FLOAT_EQ(features.vector[28], 10.0f);  // only the first instance
}

TEST(FeaturePipelineTest, PairAbsoluteDifference) {
  embedding::TextEmbeddingFile model = MakeModel();
  FeaturePipeline pipeline(&model);
  std::vector<std::string> no_values;
  PropertyFeatures a = pipeline.ComputeProperty("resolution", no_values);
  PropertyFeatures b = pipeline.ComputeProperty("weight", no_values);
  std::vector<float> ab(pipeline.pair_dimension());
  std::vector<float> ba(pipeline.pair_dimension());
  pipeline.ComputePair(a, b, ab);
  pipeline.ComputePair(b, a, ba);
  // Absolute difference makes the pair features order-independent.
  EXPECT_EQ(ab, ba);
  for (size_t i = 0; i < pipeline.property_dimension(); ++i) {
    EXPECT_GE(ab[i], 0.0f);
  }
}

TEST(FeaturePipelineTest, PairSignedDifferenceOption) {
  embedding::TextEmbeddingFile model = MakeModel();
  PairFeatureOptions options;
  options.absolute_difference = false;
  FeaturePipeline pipeline(&model, options);
  std::vector<std::string> no_values;
  PropertyFeatures a = pipeline.ComputeProperty("resolution", no_values);
  PropertyFeatures b = pipeline.ComputeProperty("weight", no_values);
  std::vector<float> ab(pipeline.pair_dimension());
  std::vector<float> ba(pipeline.pair_dimension());
  pipeline.ComputePair(a, b, ab);
  pipeline.ComputePair(b, a, ba);
  size_t name_emb_start = 29 + 2;
  EXPECT_FLOAT_EQ(ab[name_emb_start], -ba[name_emb_start]);
}

TEST(FeaturePipelineTest, IdenticalPropertiesHaveZeroDiffAndDistances) {
  embedding::TextEmbeddingFile model = MakeModel();
  FeaturePipeline pipeline(&model);
  auto values = Values({"24 mp"});
  PropertyFeatures a = pipeline.ComputeProperty("resolution", values);
  std::vector<float> features(pipeline.pair_dimension());
  pipeline.ComputePair(a, a, features);
  for (float value : features) {
    EXPECT_NEAR(value, 0.0f, 1e-6f);
  }
}

TEST(FeaturePipelineTest, StringDistancesNormalizedToUnitInterval) {
  embedding::TextEmbeddingFile model = MakeModel();
  FeaturePipeline pipeline(&model);
  std::vector<std::string> no_values;
  PropertyFeatures a = pipeline.ComputeProperty("resolution", no_values);
  PropertyFeatures b =
      pipeline.ComputeProperty("completely different name", no_values);
  std::vector<float> features(pipeline.pair_dimension());
  pipeline.ComputePair(a, b, features);
  for (size_t i = pipeline.property_dimension();
       i < pipeline.pair_dimension(); ++i) {
    EXPECT_GE(features[i], 0.0f);
    EXPECT_LE(features[i], 1.0f + 1e-6);
  }
}

TEST(FeaturePipelineTest, UnnormalizedDistancesOption) {
  embedding::TextEmbeddingFile model = MakeModel();
  PairFeatureOptions options;
  options.normalize_string_distances = false;
  FeaturePipeline pipeline(&model, options);
  std::vector<std::string> no_values;
  PropertyFeatures a = pipeline.ComputeProperty("abc", no_values);
  PropertyFeatures b = pipeline.ComputeProperty("xyz1234567", no_values);
  std::vector<float> features(pipeline.pair_dimension());
  pipeline.ComputePair(a, b, features);
  // Raw Levenshtein distance of 3-char vs 10-char disjoint strings is 10.
  EXPECT_FLOAT_EQ(features[pipeline.property_dimension() + 1], 10.0f);
}

TEST(FeaturePipelineTest, SimilarNamesCloserThanDifferentInEmbeddings) {
  embedding::TextEmbeddingFile model = MakeModel();
  FeaturePipeline pipeline(&model);
  std::vector<std::string> no_values;
  PropertyFeatures resolution =
      pipeline.ComputeProperty("resolution", no_values);
  PropertyFeatures megapixels =
      pipeline.ComputeProperty("megapixels", no_values);
  PropertyFeatures weight = pipeline.ComputeProperty("weight", no_values);

  std::vector<float> synonym_pair(pipeline.pair_dimension());
  std::vector<float> stranger_pair(pipeline.pair_dimension());
  pipeline.ComputePair(resolution, megapixels, synonym_pair);
  pipeline.ComputePair(resolution, weight, stranger_pair);

  size_t name_emb_start = 29 + 2;
  double synonym_norm = 0.0;
  double stranger_norm = 0.0;
  for (size_t i = name_emb_start; i < name_emb_start + 2; ++i) {
    synonym_norm += synonym_pair[i] * synonym_pair[i];
    stranger_norm += stranger_pair[i] * stranger_pair[i];
  }
  EXPECT_LT(synonym_norm, stranger_norm);
}

TEST(FeaturePipelineTest, BuildDesignMatrixGathersColumns) {
  embedding::TextEmbeddingFile model = MakeModel();
  FeaturePipeline pipeline(&model);
  std::vector<std::string> no_values;
  PropertyFeatures a = pipeline.ComputeProperty("resolution", no_values);
  PropertyFeatures b = pipeline.ComputeProperty("weight", no_values);

  std::vector<const PropertyFeatures*> lhs{&a, &a};
  std::vector<const PropertyFeatures*> rhs{&b, &a};
  std::vector<size_t> columns{0, 28, pipeline.pair_dimension() - 1};
  nn::Matrix design = pipeline.BuildDesignMatrix(lhs, rhs, columns);
  EXPECT_EQ(design.rows(), 2u);
  EXPECT_EQ(design.cols(), 3u);
  // Second row is the identical pair: all-zero gathered features.
  EXPECT_FLOAT_EQ(design(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(design(1, 2), 0.0f);
}

TEST(FeaturePipelineTest, BuildDesignMatrixEmptyColumnsKeepsAll) {
  embedding::TextEmbeddingFile model = MakeModel();
  FeaturePipeline pipeline(&model);
  std::vector<std::string> no_values;
  PropertyFeatures a = pipeline.ComputeProperty("x", no_values);
  std::vector<const PropertyFeatures*> lhs{&a};
  std::vector<const PropertyFeatures*> rhs{&a};
  nn::Matrix design = pipeline.BuildDesignMatrix(lhs, rhs, {});
  EXPECT_EQ(design.cols(), pipeline.pair_dimension());
}

}  // namespace
}  // namespace leapme::features
