// Tests for the feature-stage registry: stage composition, schema
// fingerprints, stage-mask column selection, per-stage metrics, and the
// golden byte-parity guarantee of the registry-based pipeline against the
// pre-registry monolithic implementation.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/domain.h"
#include "data/generator.h"
#include "embedding/synthetic_model.h"
#include "features/feature_pipeline.h"
#include "features/feature_registry.h"
#include "features/feature_schema.h"

namespace leapme::features {
namespace {

TEST(FeatureRegistryTest, BuiltInStagesInCompositionOrder) {
  const FeatureRegistry& registry = FeatureRegistry::BuiltIn();
  ASSERT_EQ(registry.size(), 6u);
  const std::vector<std::string> expected = {
      "char_class_meta", "token_class_meta", "numeric_value",
      "value_embedding", "name_embedding",   "string_distances"};
  EXPECT_EQ(BuiltInStageNames(), expected);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(registry.stages()[i]->name(), expected[i]);
    EXPECT_EQ(registry.stages()[i]->version(), 1);
  }
}

TEST(FeatureRegistryTest, FindLooksUpByName) {
  const FeatureRegistry& registry = FeatureRegistry::BuiltIn();
  ASSERT_NE(registry.Find("value_embedding"), nullptr);
  EXPECT_EQ(registry.Find("value_embedding")->name(), "value_embedding");
  EXPECT_EQ(registry.Find("no_such_stage"), nullptr);
  EXPECT_NE(registry.StageNames().find("string_distances"),
            std::string::npos);
}

TEST(FeatureRegistryTest, StageWidthsReproduceTableOne) {
  const size_t d = 300;  // the paper's GloVe dimension
  const FeatureRegistry& registry = FeatureRegistry::BuiltIn();
  size_t property = 0;
  size_t pair = 0;
  for (const FeatureStage* stage : registry.stages()) {
    property += stage->property_width(d);
    pair += stage->pair_width(d);
  }
  EXPECT_EQ(property, FeatureSchema::PropertyDimension(d));  // 629
  EXPECT_EQ(pair, FeatureSchema::PairDimension(d));          // 637
}

TEST(FeatureRegistryTest, SchemaSpansPartitionBothVectors) {
  const size_t d = 16;
  FeatureSchema schema(d);
  ASSERT_EQ(schema.stages().size(), 6u);
  size_t property_offset = 0;
  size_t pair_offset = 0;
  for (const StageSpan& span : schema.stages()) {
    EXPECT_EQ(span.property_begin, property_offset);
    EXPECT_EQ(span.pair_begin, pair_offset);
    property_offset = span.property_end;
    pair_offset = span.pair_end;
  }
  EXPECT_EQ(property_offset, schema.property_dimension());
  EXPECT_EQ(pair_offset, schema.size());

  const StageSpan* distances = schema.FindStage("string_distances");
  ASSERT_NE(distances, nullptr);
  EXPECT_EQ(distances->property_width(), 0u);  // pair-only stage
  EXPECT_EQ(distances->pair_width(), FeatureSchema::kStringDistanceFeatures);
  EXPECT_EQ(schema.FindStage("bogus"), nullptr);
}

TEST(FeatureRegistryTest, CanonicalAndFingerprintFormat) {
  FeatureSchema schema(16);
  EXPECT_EQ(schema.canonical(),
            "dim=16;abs_diff=1;norm_dist=1;max_inst=0;"
            "stages=char_class_meta@1,token_class_meta@1,numeric_value@1,"
            "value_embedding@1,name_embedding@1,string_distances@1");
  ASSERT_EQ(schema.fingerprint().size(), 5u + 16u);
  EXPECT_EQ(schema.fingerprint().substr(0, 5), "lmf1-");
  EXPECT_EQ(schema.fingerprint().find_first_not_of("0123456789abcdef", 5),
            std::string::npos);
}

TEST(FeatureRegistryTest, FingerprintSensitivity) {
  const FeatureRegistry* registry = &FeatureRegistry::BuiltIn();
  PairFeatureOptions defaults;
  FeatureSchema base(registry, 16, defaults);

  // Same inputs -> same fingerprint.
  EXPECT_EQ(FeatureSchema(registry, 16, defaults).fingerprint(),
            base.fingerprint());

  // Every ingredient of the canonical string changes the fingerprint.
  EXPECT_NE(FeatureSchema(registry, 32, defaults).fingerprint(),
            base.fingerprint());
  PairFeatureOptions signed_diff;
  signed_diff.absolute_difference = false;
  EXPECT_NE(FeatureSchema(registry, 16, signed_diff).fingerprint(),
            base.fingerprint());
  PairFeatureOptions raw_distances;
  raw_distances.normalize_string_distances = false;
  EXPECT_NE(FeatureSchema(registry, 16, raw_distances).fingerprint(),
            base.fingerprint());
  PairFeatureOptions capped;
  capped.max_instances_per_property = 3;
  EXPECT_NE(FeatureSchema(registry, 16, capped).fingerprint(),
            base.fingerprint());
}

TEST(FeatureRegistryTest, StageColumnsSelectsSpansSortedAndDeduped) {
  FeatureSchema schema(16);
  auto columns =
      schema.StageColumns({"string_distances", "char_class_meta",
                           "char_class_meta"});
  ASSERT_TRUE(columns.ok()) << columns.status();
  // 18 char-class columns [0, 18) then the 8 distances at the tail.
  ASSERT_EQ(columns->size(), 18u + 8u);
  for (size_t i = 0; i < 18; ++i) {
    EXPECT_EQ((*columns)[i], i);
  }
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ((*columns)[18 + i], schema.size() - 8 + i);
  }

  auto unknown = schema.StageColumns({"tf_idf"});
  ASSERT_FALSE(unknown.ok());
  EXPECT_TRUE(unknown.status().IsInvalidArgument());
  EXPECT_NE(unknown.status().message().find("char_class_meta"),
            std::string::npos)
      << "error should list the registered stages: " << unknown.status();
}

// ---------------------------------------------------------------------------
// Golden byte-parity: the feature pipeline must produce the same design
// matrix bit for bit on every run and on every kernel dispatch path
// (LEAPME_KERNEL=scalar and avx2 alike). The hashes below were captured
// against the kernel-layer pipeline (canonical 8-lane reduction order,
// unfused multiply-add; DESIGN.md §12) over this exact fixture; FNV-1a
// over the raw float bytes in row order. They were recaptured once when
// the kernel layer landed: moving embedding normalization from a strict
// sequential sum-of-squares to the canonical lane order perturbs the
// synthetic embedding bytes (a one-time, documented renumbering), after
// which the bytes are again locked across dispatch paths and runs.

uint64_t Fnv1a(const void* data, size_t bytes,
               uint64_t hash = 0xcbf29ce484222325ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

struct GoldenCase {
  PairFeatureOptions options;
  uint64_t property_hash;
  uint64_t design_hash;
};

class GoldenParityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::GeneratorOptions generator;
    generator.num_sources = 4;
    generator.min_entities_per_source = 8;
    generator.max_entities_per_source = 8;
    generator.seed = 55;
    dataset_ = new data::Dataset(
        data::GenerateCatalog(data::TvDomain(), generator).value());
    model_ = new embedding::SyntheticEmbeddingModel(
        embedding::SyntheticEmbeddingModel::Build(
            data::DomainClusters(data::TvDomain()),
            {.dimension = 16,
             .seed = 56,
             .oov_policy = embedding::OovPolicy::kHashedVector})
            .value());
  }

  void CheckGolden(const GoldenCase& golden) {
    FeaturePipeline pipeline(model_, golden.options);
    std::vector<PropertyFeatures> properties;
    std::vector<std::string> values;
    uint64_t property_hash = 0xcbf29ce484222325ULL;
    for (data::PropertyId id = 0; id < dataset_->property_count(); ++id) {
      values.clear();
      for (const auto& instance : dataset_->instances(id)) {
        values.push_back(instance.value);
      }
      properties.push_back(
          pipeline.ComputeProperty(dataset_->property(id).name, values));
      property_hash = Fnv1a(properties.back().vector.data(),
                            properties.back().vector.size() * sizeof(float),
                            property_hash);
    }
    EXPECT_EQ(property_hash, golden.property_hash)
        << "property feature vectors drifted from the pre-registry "
           "pipeline";

    std::vector<data::PropertyPair> pairs = dataset_->AllCrossSourcePairs();
    ASSERT_EQ(pairs.size(), 1484u);
    std::vector<const PropertyFeatures*> lhs;
    std::vector<const PropertyFeatures*> rhs;
    for (const auto& pair : pairs) {
      lhs.push_back(&properties[pair.a]);
      rhs.push_back(&properties[pair.b]);
    }
    nn::Matrix design = pipeline.BuildDesignMatrix(lhs, rhs, {});
    EXPECT_EQ(Fnv1a(design.data(),
                    design.rows() * design.cols() * sizeof(float)),
              golden.design_hash)
        << "design matrix drifted from the pre-registry pipeline";
  }

  static data::Dataset* dataset_;
  static embedding::SyntheticEmbeddingModel* model_;
};

data::Dataset* GoldenParityTest::dataset_ = nullptr;
embedding::SyntheticEmbeddingModel* GoldenParityTest::model_ = nullptr;

TEST_F(GoldenParityTest, DefaultOptions) {
  CheckGolden({PairFeatureOptions{}, 0xdce6afc5a8785652ULL,
               0x84bfcef4de615d24ULL});
}

TEST_F(GoldenParityTest, SignedDifference) {
  PairFeatureOptions options;
  options.absolute_difference = false;
  CheckGolden({options, 0xdce6afc5a8785652ULL, 0x896e2c6c70e00424ULL});
}

TEST_F(GoldenParityTest, RawStringDistances) {
  PairFeatureOptions options;
  options.normalize_string_distances = false;
  CheckGolden({options, 0xdce6afc5a8785652ULL, 0x5b4a6391a5f3145fULL});
}

TEST_F(GoldenParityTest, CappedInstances) {
  PairFeatureOptions options;
  options.max_instances_per_property = 3;
  CheckGolden({options, 0xb3c6e9b92fd42a4bULL, 0x95e87cdbf0c44011ULL});
}

TEST_F(GoldenParityTest, StageTimingsCountEveryCall) {
  FeaturePipeline pipeline(model_, {});
  std::vector<std::string> values = {"42 inch", "1080p"};
  const size_t kProperties = 3;
  std::vector<PropertyFeatures> properties;
  for (size_t i = 0; i < kProperties; ++i) {
    properties.push_back(pipeline.ComputeProperty("screen size", values));
  }
  std::vector<const PropertyFeatures*> lhs{&properties[0], &properties[1]};
  std::vector<const PropertyFeatures*> rhs{&properties[1], &properties[2]};
  pipeline.BuildDesignMatrix(lhs, rhs, {});

  const std::vector<StageTiming> timings = pipeline.StageTimings();
  ASSERT_EQ(timings.size(), 6u);
  for (const StageTiming& timing : timings) {
    EXPECT_EQ(timing.version, 1);
    EXPECT_EQ(timing.pair_calls, 2u) << timing.name;
    if (timing.name == "string_distances") {
      // Pair-only: no property block to compute.
      EXPECT_EQ(timing.property_calls, 0u);
    } else {
      EXPECT_EQ(timing.property_calls, kProperties) << timing.name;
    }
  }
}

}  // namespace
}  // namespace leapme::features
