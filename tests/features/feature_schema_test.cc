#include "features/feature_schema.h"

#include <set>

#include <gtest/gtest.h>

namespace leapme::features {
namespace {

TEST(FeatureSchemaTest, PaperDimensionsAt300) {
  // Table I: instance features 329, property features 629, pair 637.
  EXPECT_EQ(FeatureSchema::InstanceDimension(300), 329u);
  EXPECT_EQ(FeatureSchema::PropertyDimension(300), 629u);
  EXPECT_EQ(FeatureSchema::PairDimension(300), 637u);
}

TEST(FeatureSchemaTest, SlotCountMatchesPairDimension) {
  for (size_t d : {1u, 16u, 48u, 300u}) {
    FeatureSchema schema(d);
    EXPECT_EQ(schema.size(), FeatureSchema::PairDimension(d));
    EXPECT_EQ(schema.embedding_dim(), d);
  }
}

TEST(FeatureSchemaTest, SlotNamesAreUnique) {
  FeatureSchema schema(8);
  std::set<std::string> names;
  for (const FeatureSlot& slot : schema.slots()) {
    EXPECT_TRUE(names.insert(slot.name).second) << slot.name;
  }
}

TEST(FeatureSchemaTest, LayoutOrdering) {
  FeatureSchema schema(4);
  // First slots: char-class diffs (instance, non-embedding).
  EXPECT_EQ(schema.slot(0).origin, FeatureOrigin::kInstance);
  EXPECT_FALSE(schema.slot(0).is_embedding);
  // Meta block ends at 29; value-embedding block follows.
  EXPECT_TRUE(schema.slot(FeatureSchema::kMetaFeatures).is_embedding);
  EXPECT_EQ(schema.slot(FeatureSchema::kMetaFeatures).origin,
            FeatureOrigin::kInstance);
  // Name-embedding block.
  size_t name_emb_start = FeatureSchema::kMetaFeatures + 4;
  EXPECT_TRUE(schema.slot(name_emb_start).is_embedding);
  EXPECT_EQ(schema.slot(name_emb_start).origin, FeatureOrigin::kName);
  // Final 8 slots: string distances (name, non-embedding).
  for (size_t i = schema.size() - 8; i < schema.size(); ++i) {
    EXPECT_EQ(schema.slot(i).origin, FeatureOrigin::kName);
    EXPECT_FALSE(schema.slot(i).is_embedding);
  }
}

TEST(FeatureSchemaTest, StringDistanceSlotNames) {
  FeatureSchema schema(2);
  const auto& slots = schema.slots();
  size_t base = slots.size() - 8;
  EXPECT_EQ(slots[base + 0].name, "dist.osa");
  EXPECT_EQ(slots[base + 1].name, "dist.levenshtein");
  EXPECT_EQ(slots[base + 2].name, "dist.damerau_levenshtein");
  EXPECT_EQ(slots[base + 3].name, "dist.lcs");
  EXPECT_EQ(slots[base + 4].name, "dist.qgram3");
  EXPECT_EQ(slots[base + 5].name, "dist.cosine3");
  EXPECT_EQ(slots[base + 6].name, "dist.jaccard3");
  EXPECT_EQ(slots[base + 7].name, "dist.jaro_winkler");
}

TEST(AllFeatureConfigsTest, NineConfigurations) {
  auto configs = AllFeatureConfigs();
  EXPECT_EQ(configs.size(), 9u);
  std::set<std::string> names;
  for (const FeatureConfig& config : configs) {
    EXPECT_TRUE(names.insert(config.ToString()).second);
  }
}

TEST(FeatureConfigTest, ToStringFormat) {
  FeatureConfig config{OriginSelection::kNamesOnly,
                       KindSelection::kEmbeddingsOnly};
  EXPECT_EQ(config.ToString(), "names/embeddings");
  FeatureConfig both;
  EXPECT_EQ(both.ToString(), "both/all");
}

TEST(SelectedColumnsTest, BothAllSelectsEverything) {
  FeatureSchema schema(8);
  FeatureConfig config;
  EXPECT_EQ(schema.SelectedColumns(config).size(), schema.size());
}

TEST(SelectedColumnsTest, InstancesOnlyExcludesNameSlots) {
  FeatureSchema schema(8);
  FeatureConfig config{OriginSelection::kInstancesOnly,
                       KindSelection::kBoth};
  auto columns = schema.SelectedColumns(config);
  // 29 meta + 8 value embedding.
  EXPECT_EQ(columns.size(), FeatureSchema::kMetaFeatures + 8);
  for (size_t column : columns) {
    EXPECT_EQ(schema.slot(column).origin, FeatureOrigin::kInstance);
  }
}

TEST(SelectedColumnsTest, NamesOnlySelectsNameSlots) {
  FeatureSchema schema(8);
  FeatureConfig config{OriginSelection::kNamesOnly, KindSelection::kBoth};
  auto columns = schema.SelectedColumns(config);
  // 8 name embedding + 8 string distances.
  EXPECT_EQ(columns.size(), 16u);
}

TEST(SelectedColumnsTest, EmbeddingsOnly) {
  FeatureSchema schema(8);
  FeatureConfig config{OriginSelection::kBoth,
                       KindSelection::kEmbeddingsOnly};
  auto columns = schema.SelectedColumns(config);
  EXPECT_EQ(columns.size(), 16u);  // 2 * d
  for (size_t column : columns) {
    EXPECT_TRUE(schema.slot(column).is_embedding);
  }
}

TEST(SelectedColumnsTest, NonEmbeddingsOnly) {
  FeatureSchema schema(8);
  FeatureConfig config{OriginSelection::kBoth,
                       KindSelection::kNonEmbeddingsOnly};
  auto columns = schema.SelectedColumns(config);
  EXPECT_EQ(columns.size(),
            FeatureSchema::kMetaFeatures +
                FeatureSchema::kStringDistanceFeatures);
}

TEST(SelectedColumnsTest, NineConfigsPartitionConsistently) {
  FeatureSchema schema(16);
  // For each origin row, embeddings-only + non-embeddings-only = both.
  for (OriginSelection origin :
       {OriginSelection::kInstancesOnly, OriginSelection::kNamesOnly,
        OriginSelection::kBoth}) {
    size_t emb = schema
                     .SelectedColumns(FeatureConfig{
                         origin, KindSelection::kEmbeddingsOnly})
                     .size();
    size_t non = schema
                     .SelectedColumns(FeatureConfig{
                         origin, KindSelection::kNonEmbeddingsOnly})
                     .size();
    size_t all = schema
                     .SelectedColumns(FeatureConfig{origin,
                                                    KindSelection::kBoth})
                     .size();
    EXPECT_EQ(emb + non, all);
  }
}

TEST(SelectedColumnsTest, ColumnsAreSortedAndInRange) {
  FeatureSchema schema(8);
  for (const FeatureConfig& config : AllFeatureConfigs()) {
    auto columns = schema.SelectedColumns(config);
    EXPECT_FALSE(columns.empty()) << config.ToString();
    for (size_t i = 1; i < columns.size(); ++i) {
      EXPECT_LT(columns[i - 1], columns[i]);
    }
    EXPECT_LT(columns.back(), schema.size());
  }
}

}  // namespace
}  // namespace leapme::features
