#include "features/instance_features.h"

#include <gtest/gtest.h>

#include "embedding/text_embedding_file.h"

namespace leapme::features {
namespace {

embedding::TextEmbeddingFile MakeModel() {
  auto model = embedding::TextEmbeddingFile::FromEntries(
      {{"mp", {1.0f, 0.0f}},
       {"grams", {0.0f, 1.0f}},
       {"g", {0.0f, 0.8f}}});
  return std::move(model).value();
}

TEST(InstanceFeaturesTest, DimensionIs29PlusD) {
  embedding::TextEmbeddingFile model = MakeModel();
  InstanceFeatureExtractor extractor(&model);
  EXPECT_EQ(extractor.dimension(), 31u);
}

TEST(InstanceFeaturesTest, CharClassBlock) {
  embedding::TextEmbeddingFile model = MakeModel();
  InstanceFeatureExtractor extractor(&model);
  std::vector<float> features(extractor.dimension());
  extractor.Extract("24.3 MP", features);
  // Layout: [frac, count] per char class, classes in enum order:
  // upper(0), lower(1), other(2), mark(3), number(4), punct(5), symbol(6),
  // separator(7), other(8).
  EXPECT_FLOAT_EQ(features[0 * 2 + 1], 2.0f);  // upper count: M, P
  EXPECT_FLOAT_EQ(features[4 * 2 + 1], 3.0f);  // digits: 2,4,3
  EXPECT_FLOAT_EQ(features[5 * 2 + 1], 1.0f);  // punctuation: '.'
  EXPECT_FLOAT_EQ(features[7 * 2 + 1], 1.0f);  // separator: ' '
  EXPECT_NEAR(features[4 * 2], 3.0f / 7.0f, 1e-6);  // digit fraction
}

TEST(InstanceFeaturesTest, TokenClassBlock) {
  embedding::TextEmbeddingFile model = MakeModel();
  InstanceFeatureExtractor extractor(&model);
  std::vector<float> features(extractor.dimension());
  extractor.Extract("24.3 MP", features);
  size_t base = 18;  // after char classes
  // Token classes: word(0), lower word(1), capitalized(2), upper(3),
  // numeric(4); tokens are {"24.3", "MP"}.
  EXPECT_FLOAT_EQ(features[base + 0 * 2 + 1], 1.0f);  // word: MP
  EXPECT_FLOAT_EQ(features[base + 3 * 2 + 1], 1.0f);  // upper word: MP
  EXPECT_FLOAT_EQ(features[base + 4 * 2 + 1], 1.0f);  // numeric: 24.3
  EXPECT_FLOAT_EQ(features[base + 4 * 2], 0.5f);      // numeric fraction
}

TEST(InstanceFeaturesTest, NumericValueFeature) {
  embedding::TextEmbeddingFile model = MakeModel();
  InstanceFeatureExtractor extractor(&model);
  std::vector<float> features(extractor.dimension());
  extractor.Extract("352", features);
  EXPECT_FLOAT_EQ(features[28], 352.0f);
  extractor.Extract("352 g", features);
  EXPECT_FLOAT_EQ(features[28], -1.0f);  // not a pure number
  extractor.Extract("", features);
  EXPECT_FLOAT_EQ(features[28], -1.0f);
}

TEST(InstanceFeaturesTest, EmbeddingBlockAveragesWords) {
  embedding::TextEmbeddingFile model = MakeModel();
  InstanceFeatureExtractor extractor(&model);
  std::vector<float> features(extractor.dimension());
  extractor.Extract("352 grams", features);
  // Words: {"352" (OOV -> zero), "grams" (0,1)}; average = (0, 0.5).
  EXPECT_FLOAT_EQ(features[29], 0.0f);
  EXPECT_FLOAT_EQ(features[30], 0.5f);
}

TEST(InstanceFeaturesTest, EmptyValueAllZeroExceptNumeric) {
  embedding::TextEmbeddingFile model = MakeModel();
  InstanceFeatureExtractor extractor(&model);
  std::vector<float> features(extractor.dimension());
  extractor.Extract("", features);
  for (size_t i = 0; i < features.size(); ++i) {
    if (i == 28) {
      EXPECT_FLOAT_EQ(features[i], -1.0f);
    } else {
      EXPECT_FLOAT_EQ(features[i], 0.0f) << "slot " << i;
    }
  }
}

TEST(InstanceFeaturesTest, DeterministicExtraction) {
  embedding::TextEmbeddingFile model = MakeModel();
  InstanceFeatureExtractor extractor(&model);
  std::vector<float> a(extractor.dimension());
  std::vector<float> b(extractor.dimension());
  extractor.Extract("24.3 MP", a);
  extractor.Extract("24.3 MP", b);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace leapme::features
