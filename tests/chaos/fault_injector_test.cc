// Tests for the deterministic fault injector: spec parsing, canonical
// re-serialization, seeded determinism, fire caps, delay composition,
// and the disarmed fast path.

#include "common/faults/fault_injector.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace leapme::faults {
namespace {

TEST(FaultInjectorTest, StartsDisarmedAndEvaluatesToNothing) {
  FaultInjector injector;
  EXPECT_FALSE(injector.armed());
  EXPECT_FALSE(injector.Evaluate("serve.read").has_value());
  EXPECT_EQ(injector.injected(), 0u);
  EXPECT_EQ(injector.spec(), "");
}

TEST(FaultInjectorTest, ParsesAndCanonicalizesSpec) {
  FaultInjector injector;
  ASSERT_TRUE(injector
                  .Arm("seed=42; serve.read:error:p=0.25 ;"
                       "serve.write:delay:ms=5:n=3;"
                       "model.save:trunc:bytes=64;"
                       "serve.read:short")
                  .ok());
  EXPECT_TRUE(injector.armed());
  EXPECT_EQ(injector.spec(),
            "serve.read:error:p=0.25;serve.write:delay:p=1:ms=5:n=3;"
            "model.save:trunc:p=1:bytes=64;serve.read:short:p=1:bytes=1");
}

TEST(FaultInjectorTest, EmptySpecDisarms) {
  FaultInjector injector;
  ASSERT_TRUE(injector.Arm("alloc:error").ok());
  ASSERT_TRUE(injector.armed());
  ASSERT_TRUE(injector.Arm("").ok());
  EXPECT_FALSE(injector.armed());
  EXPECT_FALSE(injector.Evaluate("alloc").has_value());
}

TEST(FaultInjectorTest, MalformedSpecsRejectedAndKeepPreviousRules) {
  FaultInjector injector;
  ASSERT_TRUE(injector.Arm("alloc:error:p=0.5").ok());
  const std::string before = injector.spec();
  for (const char* bad :
       {"alloc", "alloc:frob", "alloc:error:p=2", "alloc:error:p=x",
        "alloc:error:ms", "alloc:error:count=3", ":error",
        "alloc:error:n=-1", "seed=abc"}) {
    EXPECT_FALSE(injector.Arm(bad).ok()) << bad;
    EXPECT_EQ(injector.spec(), before) << bad;
    EXPECT_TRUE(injector.armed()) << bad;
  }
}

TEST(FaultInjectorTest, CertainErrorRuleAlwaysFires) {
  FaultInjector injector;
  ASSERT_TRUE(injector.Arm("model.load:error").ok());
  for (int i = 0; i < 10; ++i) {
    const auto hit = injector.Evaluate("model.load");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->kind, FaultKind::kError);
  }
  // Other points are untouched.
  EXPECT_FALSE(injector.Evaluate("model.save").has_value());
  EXPECT_EQ(injector.injected(), 10u);
}

TEST(FaultInjectorTest, MaxFiresCapsARule) {
  FaultInjector injector;
  ASSERT_TRUE(injector.Arm("serve.read:error:n=3").ok());
  int fired = 0;
  for (int i = 0; i < 20; ++i) {
    if (injector.Evaluate("serve.read").has_value()) ++fired;
  }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(injector.injected(), 3u);
}

TEST(FaultInjectorTest, SeededProbabilisticRulesAreDeterministic) {
  const auto fire_pattern = [](const std::string& spec) {
    FaultInjector injector;
    EXPECT_TRUE(injector.Arm(spec).ok());
    std::vector<bool> fires;
    for (int i = 0; i < 200; ++i) {
      fires.push_back(injector.Evaluate("serve.read").has_value());
    }
    return fires;
  };
  const auto a = fire_pattern("seed=7;serve.read:error:p=0.3");
  const auto b = fire_pattern("seed=7;serve.read:error:p=0.3");
  const auto c = fire_pattern("seed=8;serve.read:error:p=0.3");
  EXPECT_EQ(a, b);  // same seed, same call sequence -> same faults
  EXPECT_NE(a, c);  // a different seed decorrelates
  // The fire rate is in the right ballpark for p=0.3 over 200 draws.
  const int fired = static_cast<int>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fired, 20);
  EXPECT_LT(fired, 120);
}

TEST(FaultInjectorTest, DelayRuleSleepsInsideEvaluate) {
  FaultInjector injector;
  ASSERT_TRUE(injector.Arm("embedding.lookup:delay:ms=30").ok());
  const auto begin = std::chrono::steady_clock::now();
  const auto hit = injector.Evaluate("embedding.lookup");
  const auto elapsed = std::chrono::steady_clock::now() - begin;
  // A pure delay slows the operation but does not fail it.
  EXPECT_FALSE(hit.has_value());
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            25);
  EXPECT_EQ(injector.injected(), 1u);
}

TEST(FaultInjectorTest, DelayComposesWithErrorOnTheSamePoint) {
  FaultInjector injector;
  ASSERT_TRUE(
      injector.Arm("serve.write:delay:ms=20;serve.write:error").ok());
  const auto begin = std::chrono::steady_clock::now();
  const auto hit = injector.Evaluate("serve.write");
  const auto elapsed = std::chrono::steady_clock::now() - begin;
  // Slow AND failing: the worst realistic case.
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->kind, FaultKind::kError);
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            15);
  EXPECT_EQ(injector.injected(), 2u);
}

TEST(FaultInjectorTest, ShortAndTruncateCarryByteParams) {
  FaultInjector injector;
  ASSERT_TRUE(injector.Arm("serve.read:short:bytes=5").ok());
  auto hit = injector.Evaluate("serve.read");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->kind, FaultKind::kShortIo);
  EXPECT_EQ(hit->param, 5u);

  ASSERT_TRUE(injector.Arm("model.save:trunc:bytes=64").ok());
  hit = injector.Evaluate("model.save");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->kind, FaultKind::kTruncate);
  EXPECT_EQ(hit->param, 64u);
}

TEST(FaultInjectorTest, DisarmDropsAllRules) {
  FaultInjector injector;
  ASSERT_TRUE(injector.Arm("alloc:error").ok());
  injector.Disarm();
  EXPECT_FALSE(injector.armed());
  EXPECT_FALSE(injector.Evaluate("alloc").has_value());
  EXPECT_EQ(injector.spec(), "");
}

TEST(FaultInjectorTest, GlobalInjectErrorHelperRespectsArming) {
  // The global injector is shared process state; establish a known
  // baseline (the suite may run with LEAPME_FAULTS in the environment).
  FaultInjector& global = FaultInjector::Global();
  global.Disarm();
  EXPECT_FALSE(InjectError("serve.accept"));
  ASSERT_TRUE(global.Arm("serve.accept:error").ok());
  EXPECT_TRUE(InjectError("serve.accept"));
  global.Disarm();
  EXPECT_FALSE(InjectError("serve.accept"));
}

}  // namespace
}  // namespace leapme::faults
