// Chaos tests: the serve and persistence paths under armed fault
// injection. Every failure must surface as a typed error, a degraded
// (but well-formed) response, or a clean connection drop — never a
// hang, a silent wrong answer, or a loadable-but-corrupt model file.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/deadline.h"
#include "common/faults/fault_injector.h"
#include "core/leapme.h"
#include "data/domain.h"
#include "data/generator.h"
#include "data/splitting.h"
#include "embedding/caching_model.h"
#include "embedding/synthetic_model.h"
#include "serve/json.h"
#include "serve/matcher_service.h"
#include "serve/tcp_server.h"

namespace leapme::serve {
namespace {

/// Arms the process-wide injector for one test scope; always disarms on
/// the way out so a failing assertion cannot poison later tests.
class ScopedFaults {
 public:
  explicit ScopedFaults(const std::string& spec) {
    EXPECT_TRUE(faults::FaultInjector::Global().Arm(spec).ok()) << spec;
  }
  ~ScopedFaults() { faults::FaultInjector::Global().Disarm(); }
};

/// Minimal blocking line client (same shape as tcp_server_test.cc).
class TestClient {
 public:
  explicit TestClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_in address = {};
    address.sin_family = AF_INET;
    address.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                  sizeof(address)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return fd_ >= 0; }

  bool SendLine(const std::string& line) {
    std::string framed = line + "\n";
    size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t n = ::send(fd_, framed.data() + sent,
                               framed.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  bool ReadLine(std::string* out) {
    while (true) {
      const size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        *out = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

PropertySpec SpecOf(const data::Dataset& dataset, data::PropertyId id) {
  PropertySpec spec;
  spec.name = dataset.property(id).name;
  for (const data::InstanceValue& instance : dataset.instances(id)) {
    spec.values.push_back(instance.value);
  }
  return spec;
}

std::string SpecJson(const data::Dataset& dataset, data::PropertyId id) {
  std::string out = "{\"name\":";
  AppendJsonString(&out, dataset.property(id).name);
  out += ",\"values\":[";
  const auto& instances = dataset.instances(id);
  for (size_t i = 0; i < instances.size(); ++i) {
    if (i > 0) out += ',';
    AppendJsonString(&out, instances[i].value);
  }
  out += "]}";
  return out;
}

std::string ScoreRequestJson(const data::Dataset& dataset,
                             const std::vector<data::PropertyPair>& pairs,
                             int64_t id) {
  std::string line = "{\"op\":\"score\",\"id\":" + std::to_string(id) +
                     ",\"pairs\":[";
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (i > 0) line += ',';
    line += "{\"a\":" + SpecJson(dataset, pairs[i].a) +
            ",\"b\":" + SpecJson(dataset, pairs[i].b) + "}";
  }
  line += "]}";
  return line;
}

class ServeChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::GeneratorOptions generator;
    generator.num_sources = 4;
    generator.min_entities_per_source = 8;
    generator.max_entities_per_source = 8;
    generator.seed = 91;
    dataset_ = new data::Dataset(
        data::GenerateCatalog(data::TvDomain(), generator).value());
    base_model_ = new embedding::SyntheticEmbeddingModel(
        embedding::SyntheticEmbeddingModel::Build(
            data::DomainClusters(data::TvDomain()),
            {.dimension = 16,
             .seed = 92,
             .oov_policy = embedding::OovPolicy::kHashedVector})
            .value());
    cached_model_ = new embedding::CachingEmbeddingModel(base_model_, 4096);
    Rng rng(93);
    std::vector<data::SourceId> sources{0, 1, 2};
    auto training =
        data::BuildTrainingPairs(*dataset_, sources, 2.0, rng).value();
    trained_ = new core::LeapmeMatcher(base_model_);
    ASSERT_TRUE(trained_->Fit(*dataset_, training).ok());
    const std::string path = ::testing::TempDir() + "/chaos." +
                             std::to_string(::getpid()) + ".model";
    ASSERT_TRUE(trained_->SaveModel(path).ok());
    matcher_ = new core::LeapmeMatcher(
        core::LeapmeMatcher::LoadModel(cached_model_, path).value());
  }

  void TearDown() override { faults::FaultInjector::Global().Disarm(); }

  static std::string Path(const char* name) {
    return ::testing::TempDir() + "/" + std::to_string(::getpid()) + "." +
           name;
  }

  static std::vector<data::PropertyPair> SomePairs(size_t limit) {
    std::vector<data::PropertyPair> pairs = dataset_->AllCrossSourcePairs();
    pairs.resize(std::min(pairs.size(), limit));
    return pairs;
  }

  static data::Dataset* dataset_;
  static embedding::SyntheticEmbeddingModel* base_model_;
  static embedding::CachingEmbeddingModel* cached_model_;
  static core::LeapmeMatcher* trained_;  // owns nothing persisted
  static core::LeapmeMatcher* matcher_;  // restored through the cache
};

data::Dataset* ServeChaosTest::dataset_ = nullptr;
embedding::SyntheticEmbeddingModel* ServeChaosTest::base_model_ = nullptr;
embedding::CachingEmbeddingModel* ServeChaosTest::cached_model_ = nullptr;
core::LeapmeMatcher* ServeChaosTest::trained_ = nullptr;
core::LeapmeMatcher* ServeChaosTest::matcher_ = nullptr;

// ---------------------------------------------------------------------
// Persistence under injected faults.

TEST_F(ServeChaosTest, InjectedSaveErrorFailsWithoutCreatingTheFile) {
  const std::string path = Path("save_error.model");
  ScopedFaults faults("model.save:error");
  const Status status = trained_->SaveModel(path);
  EXPECT_TRUE(status.IsIoError()) << status;
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST_F(ServeChaosTest, TornWriteIsReportedAndTheRemnantNeverLoads) {
  // Learn the intact size first, then replay truncations at awkward
  // offsets — including cuts a few bytes from the end, where a shortened
  // final float would still parse if the format had no end marker.
  const std::string clean = Path("torn_clean.model");
  ASSERT_TRUE(trained_->SaveModel(clean).ok());
  const uint64_t full = std::filesystem::file_size(clean);
  ASSERT_GT(full, 32u);

  const std::vector<uint64_t> cuts = {1,        16,       64,      full / 2,
                                      full - 8, full - 3, full - 2};
  for (const uint64_t cut : cuts) {
    const std::string path = Path("torn.model");
    ScopedFaults faults("model.save:trunc:bytes=" + std::to_string(cut));
    const Status status = trained_->SaveModel(path);
    EXPECT_TRUE(status.IsIoError()) << "cut=" << cut << ": " << status;
    ASSERT_EQ(std::filesystem::file_size(path), cut) << "cut=" << cut;

    faults::FaultInjector::Global().Disarm();
    auto loaded = core::LeapmeMatcher::LoadModel(base_model_, path);
    EXPECT_FALSE(loaded.ok())
        << "a model truncated to " << cut << " of " << full
        << " bytes must not load";
  }
}

TEST_F(ServeChaosTest, InjectedLoadErrorIsTypedAndRecoverable) {
  const std::string path = Path("load_error.model");
  ASSERT_TRUE(trained_->SaveModel(path).ok());
  {
    ScopedFaults faults("model.load:error");
    auto loaded = core::LeapmeMatcher::LoadModel(base_model_, path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_TRUE(loaded.status().IsIoError()) << loaded.status();
  }
  // Disarmed, the very same file loads.
  EXPECT_TRUE(core::LeapmeMatcher::LoadModel(base_model_, path).ok());
}

// ---------------------------------------------------------------------
// Graceful degradation in the scoring service.

TEST_F(ServeChaosTest, EmbeddingLookupFaultDegradesInsteadOfFailing) {
  MatcherService service(matcher_, cached_model_);
  const auto pairs = SomePairs(6);
  const std::string request = ScoreRequestJson(*dataset_, pairs, 7);

  std::string response;
  {
    // Every lookup fails: the whole request is served from masked
    // features rather than erroring out.
    ScopedFaults faults("embedding.lookup:error");
    response = service.HandleLine(request);
  }
  auto parsed = JsonValue::Parse(response);
  ASSERT_TRUE(parsed.ok()) << response;
  ASSERT_TRUE(parsed->Find("ok")->AsBool()) << response;
  const JsonValue* degraded = parsed->Find("degraded");
  ASSERT_NE(degraded, nullptr) << response;
  EXPECT_TRUE(degraded->AsBool());
  const auto& scores = parsed->Find("scores")->AsArray();
  ASSERT_EQ(scores.size(), pairs.size());
  for (const JsonValue& score : scores) {
    ASSERT_TRUE(score.is_number());
    EXPECT_TRUE(std::isfinite(score.AsNumber()));
  }
  const ServiceStats stats = service.Snapshot();
  EXPECT_GE(stats.degraded_responses, 1u);

  // Degraded features were never cached: the same request, disarmed, is
  // full-fidelity and bit-identical to the offline scorer.
  const std::string healthy = service.HandleLine(request);
  auto reparsed = JsonValue::Parse(healthy);
  ASSERT_TRUE(reparsed.ok()) << healthy;
  EXPECT_EQ(reparsed->Find("degraded"), nullptr) << healthy;
  const std::vector<double> offline =
      matcher_->ScorePairsOn(*dataset_, pairs).value();
  const auto& healthy_scores = reparsed->Find("scores")->AsArray();
  ASSERT_EQ(healthy_scores.size(), offline.size());
  for (size_t i = 0; i < offline.size(); ++i) {
    EXPECT_EQ(healthy_scores[i].AsNumber(), offline[i]) << "pair " << i;
  }
}

TEST_F(ServeChaosTest, DegradedScoresDifferButStayInRange) {
  MatcherService service(matcher_, cached_model_);
  const auto pairs = SomePairs(6);
  bool degraded = false;
  std::vector<PropertyPairSpec> specs;
  for (const data::PropertyPair& pair : pairs) {
    specs.push_back({SpecOf(*dataset_, pair.a), SpecOf(*dataset_, pair.b)});
  }
  ScopedFaults faults("embedding.lookup:error");
  auto scores = service.Score(specs, Deadline::Infinite(), &degraded);
  ASSERT_TRUE(scores.ok()) << scores.status();
  EXPECT_TRUE(degraded);
  for (const double score : *scores) {
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 1.0);
  }
}

TEST_F(ServeChaosTest, AllocFaultShedsWithRetryHint) {
  MatcherService service(matcher_, cached_model_);
  const auto pairs = SomePairs(4);
  const std::string request = ScoreRequestJson(*dataset_, pairs, 3);

  std::string response;
  {
    ScopedFaults faults("alloc:error:n=1");
    response = service.HandleLine(request);
  }
  auto parsed = JsonValue::Parse(response);
  ASSERT_TRUE(parsed.ok()) << response;
  EXPECT_FALSE(parsed->Find("ok")->AsBool()) << response;
  const JsonValue* error = parsed->Find("error");
  ASSERT_NE(error, nullptr) << response;
  EXPECT_EQ(error->Find("code")->AsString(), "ResourceExhausted");
  const JsonValue* hint = error->Find("retry_after_ms");
  ASSERT_NE(hint, nullptr) << response;
  EXPECT_GT(hint->AsNumber(), 0.0);
  EXPECT_GE(service.Snapshot().rejected_overload, 1u);

  // The fault was capped at one fire; the retry succeeds.
  const std::string retried = service.HandleLine(request);
  auto reparsed = JsonValue::Parse(retried);
  ASSERT_TRUE(reparsed.ok()) << retried;
  EXPECT_TRUE(reparsed->Find("ok")->AsBool()) << retried;
}

TEST_F(ServeChaosTest, InjectedDelayPastDeadlineIsTyped) {
  MatcherService service(matcher_, cached_model_);
  const auto pairs = SomePairs(2);
  const std::string request = ScoreRequestJson(*dataset_, pairs, 5);

  // Every embedding lookup stalls 40ms against a 10ms budget.
  ScopedFaults faults("embedding.lookup:delay:ms=40");
  const std::string response =
      service.HandleLine(request, Deadline::AfterMs(10));
  auto parsed = JsonValue::Parse(response);
  ASSERT_TRUE(parsed.ok()) << response;
  EXPECT_FALSE(parsed->Find("ok")->AsBool()) << response;
  const JsonValue* error = parsed->Find("error");
  ASSERT_NE(error, nullptr) << response;
  EXPECT_EQ(error->Find("code")->AsString(), "DeadlineExceeded") << response;
  EXPECT_GE(service.Snapshot().deadline_exceeded, 1u);
}

// ---------------------------------------------------------------------
// The TCP transport under injected socket faults.

TEST_F(ServeChaosTest, ShortReadsAndWritesStillFrameCorrectly) {
  MatcherService service(matcher_, cached_model_);
  TcpServer server(&service);
  ASSERT_TRUE(server.Start().ok());
  const auto pairs = SomePairs(4);
  const std::vector<double> offline =
      matcher_->ScorePairsOn(*dataset_, pairs).value();

  // Every transfer is capped to a handful of bytes in both directions;
  // framing and scores must be unaffected, just slower.
  ScopedFaults faults("serve.read:short:bytes=3;serve.write:short:bytes=5");
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  for (int request = 0; request < 3; ++request) {
    ASSERT_TRUE(
        client.SendLine(ScoreRequestJson(*dataset_, pairs, request)));
    std::string response;
    ASSERT_TRUE(client.ReadLine(&response));
    auto parsed = JsonValue::Parse(response);
    ASSERT_TRUE(parsed.ok()) << response;
    ASSERT_TRUE(parsed->Find("ok")->AsBool()) << response;
    const auto& scores = parsed->Find("scores")->AsArray();
    ASSERT_EQ(scores.size(), offline.size());
    for (size_t i = 0; i < offline.size(); ++i) {
      EXPECT_EQ(scores[i].AsNumber(), offline[i]) << "pair " << i;
    }
  }
  server.Stop();
}

TEST_F(ServeChaosTest, InjectedReadErrorDropsTheConnectionCleanly) {
  MatcherService service(matcher_, cached_model_);
  TcpServer server(&service);
  ASSERT_TRUE(server.Start().ok());

  {
    ScopedFaults faults("serve.read:error:n=1");
    TestClient victim(server.port());
    ASSERT_TRUE(victim.connected());
    ASSERT_TRUE(victim.SendLine(R"({"op":"ping","id":1})"));
    // The injected read failure closes the connection without a reply —
    // a clean EOF, not a hang or a partial line.
    std::string response;
    EXPECT_FALSE(victim.ReadLine(&response));
  }

  // The server survives and serves the next connection normally.
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.SendLine(R"({"op":"ping","id":2})"));
  std::string response;
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_EQ(response, R"({"id":2,"ok":true,"op":"ping"})");
  server.Stop();
}

TEST_F(ServeChaosTest, InjectedAcceptFaultDropsThenRecovers) {
  MatcherService service(matcher_, cached_model_);
  TcpServer server(&service);
  ASSERT_TRUE(server.Start().ok());

  {
    ScopedFaults faults("serve.accept:error:n=1");
    TestClient victim(server.port());
    // The TCP handshake completes (the kernel accepted), but the server
    // drops the connection before serving it.
    if (victim.connected()) {
      victim.SendLine(R"({"op":"ping"})");
      std::string response;
      EXPECT_FALSE(victim.ReadLine(&response));
    }
  }

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.SendLine(R"({"op":"ping"})"));
  std::string response;
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_EQ(response, R"({"ok":true,"op":"ping"})");
  server.Stop();
}

// ---------------------------------------------------------------------
// Transport faults pinned to the epoll reactor. The tests above run on
// the session default backend (epoll unless LEAPME_IO_BACKEND overrides
// it, single loop); these re-run the serve.read / serve.write faults
// explicitly on the event loop with 4 loop threads, so multi-loop
// dispatch is always chaos-covered regardless of environment.

TEST_F(ServeChaosTest, ReactorShortIoFaultsFrameCorrectlyAcrossFourLoops) {
  MatcherService service(matcher_, cached_model_);
  ServerOptions options;
  options.io_backend = IoBackend::kEpoll;
  options.event_loop_threads = 4;
  TcpServer server(&service, options);
  ASSERT_TRUE(server.Start().ok());
  const auto pairs = SomePairs(4);
  const std::vector<double> offline =
      matcher_->ScorePairsOn(*dataset_, pairs).value();

  ScopedFaults faults("serve.read:short:bytes=3;serve.write:short:bytes=5");
  // Several connections so the round-robin spreads them over the loops;
  // byte-capped transfers must not bleed frames between connections.
  std::vector<std::unique_ptr<TestClient>> clients;
  for (int c = 0; c < 6; ++c) {
    clients.push_back(std::make_unique<TestClient>(server.port()));
    ASSERT_TRUE(clients.back()->connected());
  }
  for (int request = 0; request < 2; ++request) {
    for (size_t c = 0; c < clients.size(); ++c) {
      ASSERT_TRUE(clients[c]->SendLine(ScoreRequestJson(
          *dataset_, pairs, static_cast<int64_t>(c) * 10 + request)));
    }
    for (size_t c = 0; c < clients.size(); ++c) {
      std::string response;
      ASSERT_TRUE(clients[c]->ReadLine(&response));
      auto parsed = JsonValue::Parse(response);
      ASSERT_TRUE(parsed.ok()) << response;
      ASSERT_TRUE(parsed->Find("ok")->AsBool()) << response;
      EXPECT_EQ(parsed->Find("id")->AsNumber(),
                static_cast<double>(c) * 10 + request);
      const auto& scores = parsed->Find("scores")->AsArray();
      ASSERT_EQ(scores.size(), offline.size());
      for (size_t i = 0; i < offline.size(); ++i) {
        EXPECT_EQ(scores[i].AsNumber(), offline[i]) << "pair " << i;
      }
    }
  }
  server.Stop();
}

TEST_F(ServeChaosTest, ReactorInjectedReadErrorDropsConnectionCleanly) {
  MatcherService service(matcher_, cached_model_);
  ServerOptions options;
  options.io_backend = IoBackend::kEpoll;
  options.event_loop_threads = 4;
  TcpServer server(&service, options);
  ASSERT_TRUE(server.Start().ok());

  {
    ScopedFaults faults("serve.read:error:n=1");
    TestClient victim(server.port());
    ASSERT_TRUE(victim.connected());
    ASSERT_TRUE(victim.SendLine(R"({"op":"ping","id":1})"));
    std::string response;
    EXPECT_FALSE(victim.ReadLine(&response));
  }

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.SendLine(R"({"op":"ping","id":2})"));
  std::string response;
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_EQ(response, R"({"id":2,"ok":true,"op":"ping"})");
  server.Stop();
}

TEST_F(ServeChaosTest, ReactorInjectedWriteErrorDropsConnectionCleanly) {
  MatcherService service(matcher_, cached_model_);
  ServerOptions options;
  options.io_backend = IoBackend::kEpoll;
  options.event_loop_threads = 4;
  TcpServer server(&service, options);
  ASSERT_TRUE(server.Start().ok());

  {
    ScopedFaults faults("serve.write:error:n=1");
    TestClient victim(server.port());
    ASSERT_TRUE(victim.connected());
    ASSERT_TRUE(victim.SendLine(R"({"op":"ping","id":1})"));
    // The response write fails: the connection drops without the reply
    // ever arriving — EOF, not a hang.
    std::string response;
    EXPECT_FALSE(victim.ReadLine(&response));
  }

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.SendLine(R"({"op":"ping","id":2})"));
  std::string response;
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_EQ(response, R"({"id":2,"ok":true,"op":"ping"})");
  server.Stop();
}

}  // namespace
}  // namespace leapme::serve
