// Chaos tests for hot model reload: a torn candidate file, an injected
// model.load fault, and a reload storm must all leave the server
// answering on the prior generation, and a post-swap scoring-fault storm
// must trip the automatic rollback. In every scenario the registry's
// counters record what happened.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/faults/fault_injector.h"
#include "core/leapme.h"
#include "data/domain.h"
#include "data/generator.h"
#include "data/splitting.h"
#include "embedding/caching_model.h"
#include "embedding/synthetic_model.h"
#include "serve/matcher_service.h"
#include "serve/model_registry.h"

namespace leapme::serve {
namespace {

/// Arms the process-wide injector for one test scope; always disarms on
/// the way out so a failing assertion cannot poison later tests.
class ScopedFaults {
 public:
  explicit ScopedFaults(const std::string& spec) {
    EXPECT_TRUE(faults::FaultInjector::Global().Arm(spec).ok()) << spec;
  }
  ~ScopedFaults() { faults::FaultInjector::Global().Disarm(); }
};

PropertySpec SpecOf(const data::Dataset& dataset, data::PropertyId id) {
  PropertySpec spec;
  spec.name = dataset.property(id).name;
  for (const data::InstanceValue& instance : dataset.instances(id)) {
    spec.values.push_back(instance.value);
  }
  return spec;
}

class ReloadChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::GeneratorOptions generator;
    generator.num_sources = 4;
    generator.min_entities_per_source = 8;
    generator.max_entities_per_source = 8;
    generator.seed = 271;
    dataset_ = new data::Dataset(
        data::GenerateCatalog(data::TvDomain(), generator).value());
    base_model_ = new embedding::SyntheticEmbeddingModel(
        embedding::SyntheticEmbeddingModel::Build(
            data::DomainClusters(data::TvDomain()),
            {.dimension = 16,
             .seed = 272,
             .oov_policy = embedding::OovPolicy::kHashedVector})
            .value());

    const std::string stem = ::testing::TempDir() + "/reload_chaos." +
                             std::to_string(::getpid());
    path_a_ = new std::string(stem + ".a.model");
    path_b_ = new std::string(stem + ".b.model");
    TrainAndSave({0, 1, 2}, 273, *path_a_);
    TrainAndSave({1, 2, 3}, 274, *path_b_);
  }

  static void TrainAndSave(const std::vector<data::SourceId>& sources,
                           uint64_t seed, const std::string& path) {
    Rng rng(seed);
    auto training =
        data::BuildTrainingPairs(*dataset_, sources, 2.0, rng).value();
    core::LeapmeMatcher trained(base_model_);
    ASSERT_TRUE(trained.Fit(*dataset_, training).ok());
    ASSERT_TRUE(trained.SaveModel(path).ok());
  }

  static ModelRegistry::Loader Loader() {
    return [](const std::string& path)
               -> StatusOr<ModelGeneration::Resources> {
      ModelGeneration::Resources resources;
      resources.base_model =
          std::make_unique<embedding::SyntheticEmbeddingModel>(
              embedding::SyntheticEmbeddingModel::Build(
                  data::DomainClusters(data::TvDomain()),
                  {.dimension = 16,
                   .seed = 272,
                   .oov_policy = embedding::OovPolicy::kHashedVector})
                  .value());
      resources.embedding_cache =
          std::make_unique<embedding::CachingEmbeddingModel>(
              resources.base_model.get(), 4096);
      LEAPME_ASSIGN_OR_RETURN(
          core::LeapmeMatcher matcher,
          core::LeapmeMatcher::LoadModel(resources.embedding_cache.get(),
                                         path));
      resources.matcher =
          std::make_unique<core::LeapmeMatcher>(std::move(matcher));
      return resources;
    };
  }

  static std::vector<double> OfflineScores(
      const std::string& path, const std::vector<data::PropertyPair>& pairs) {
    auto resources = Loader()(path);
    EXPECT_TRUE(resources.ok()) << resources.status();
    return resources->matcher->ScorePairsOn(*dataset_, pairs).value();
  }

  static std::vector<data::PropertyPair> SamplePairs(size_t n) {
    std::vector<data::PropertyPair> pairs = dataset_->AllCrossSourcePairs();
    pairs.resize(std::min(pairs.size(), n));
    return pairs;
  }

  static std::vector<PropertyPairSpec> SpecsOf(
      const std::vector<data::PropertyPair>& pairs) {
    std::vector<PropertyPairSpec> specs;
    for (const data::PropertyPair& pair : pairs) {
      specs.push_back({SpecOf(*dataset_, pair.a), SpecOf(*dataset_, pair.b)});
    }
    return specs;
  }

  static data::Dataset* dataset_;
  static embedding::SyntheticEmbeddingModel* base_model_;
  static std::string* path_a_;
  static std::string* path_b_;
};

data::Dataset* ReloadChaosTest::dataset_ = nullptr;
embedding::SyntheticEmbeddingModel* ReloadChaosTest::base_model_ = nullptr;
std::string* ReloadChaosTest::path_a_ = nullptr;
std::string* ReloadChaosTest::path_b_ = nullptr;

TEST_F(ReloadChaosTest, TornCandidateFileIsRejectedAndServingSurvives) {
  ModelRegistry registry(Loader());
  ASSERT_TRUE(registry.Init(*path_a_).ok());
  auto service = MatcherService::Create(&registry);
  ASSERT_TRUE(service.ok()) << service.status();

  const auto pairs = SamplePairs(10);
  const std::vector<double> offline = OfflineScores(*path_a_, pairs);

  // A crash mid-save leaves a torn candidate on disk: copy model A and
  // cut it off halfway (the v2 sentinel and part of the payload vanish).
  const std::string torn_path = ::testing::TempDir() + "/reload_chaos." +
                                std::to_string(::getpid()) + ".torn.model";
  {
    std::ifstream in(*path_a_, std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    std::ofstream out(torn_path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size() / 2));
    std::ifstream mlp_in(*path_a_ + ".mlp", std::ios::binary);
    std::ofstream mlp_out(torn_path + ".mlp",
                          std::ios::binary | std::ios::trunc);
    mlp_out << mlp_in.rdbuf();
  }

  auto outcome = registry.Reload(torn_path);
  ASSERT_FALSE(outcome.ok());

  // The rejection is counted and serving is untouched: generation 1,
  // model A's exact scores.
  const RegistryStats stats = registry.Snapshot();
  EXPECT_EQ(stats.reloads_rejected, 1u);
  EXPECT_EQ(stats.reloads_ok, 0u);
  EXPECT_EQ(stats.info.version, 1u);
  auto scores = (*service)->Score(SpecsOf(pairs));
  ASSERT_TRUE(scores.ok()) << scores.status();
  for (size_t i = 0; i < offline.size(); ++i) {
    EXPECT_EQ((*scores)[i], offline[i]) << "pair " << i;
  }
}

TEST_F(ReloadChaosTest, InjectedLoadFaultIsRejectedAndServingSurvives) {
  ModelRegistry registry(Loader());
  ASSERT_TRUE(registry.Init(*path_a_).ok());
  auto service = MatcherService::Create(&registry);
  ASSERT_TRUE(service.ok()) << service.status();

  const auto pairs = SamplePairs(10);
  const std::vector<double> offline = OfflineScores(*path_a_, pairs);
  {
    ScopedFaults faults("model.load:error:p=1");
    auto outcome = registry.Reload(*path_b_);
    ASSERT_FALSE(outcome.ok());
    EXPECT_TRUE(outcome.status().IsIoError()) << outcome.status();
  }
  EXPECT_EQ(registry.Snapshot().reloads_rejected, 1u);
  EXPECT_EQ(registry.Snapshot().info.version, 1u);
  auto scores = (*service)->Score(SpecsOf(pairs));
  ASSERT_TRUE(scores.ok()) << scores.status();
  for (size_t i = 0; i < offline.size(); ++i) {
    EXPECT_EQ((*scores)[i], offline[i]) << "pair " << i;
  }
}

TEST_F(ReloadChaosTest, PostSwapScoringFaultStormTripsRollback) {
  RegistryOptions options;
  options.canary_threshold = 1.0;
  options.rollback_error_rate = 0.5;
  options.rollback_window = 16;
  options.rollback_min_samples = 4;
  ModelRegistry registry(Loader(), options);
  ASSERT_TRUE(registry.Init(*path_a_).ok());
  auto service = MatcherService::Create(&registry);
  ASSERT_TRUE(service.ok()) << service.status();

  const auto pairs = SamplePairs(10);
  const std::vector<double> offline_a = OfflineScores(*path_a_, pairs);

  // The swap itself is clean...
  auto outcome = registry.Reload(*path_b_);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->info.version, 2u);

  // ...but the new generation then fails in production. Drive scoring
  // requests through the protocol path (HandleLine records outcomes) —
  // the sliding-window trip must fire and republish generation 1.
  {
    ScopedFaults faults("serve.score:error:p=1");
    const std::string line =
        "{\"op\":\"score\",\"id\":1,\"pairs\":[{\"a\":{\"name\":\"x\","
        "\"values\":[]},\"b\":{\"name\":\"y\",\"values\":[]}}]}";
    bool rolled_back = false;
    for (int i = 0; i < 16 && !rolled_back; ++i) {
      const std::string response = (*service)->HandleLine(line);
      EXPECT_NE(response.find("\"ok\":false"), std::string::npos)
          << response;
      rolled_back = registry.Snapshot().reloads_rolled_back > 0;
    }
    EXPECT_TRUE(rolled_back);
  }

  // Back on generation 1, serving model A's exact scores again.
  const RegistryStats stats = registry.Snapshot();
  EXPECT_EQ(stats.reloads_rolled_back, 1u);
  EXPECT_EQ(stats.info.version, 1u);
  auto scores = (*service)->Score(SpecsOf(pairs));
  ASSERT_TRUE(scores.ok()) << scores.status();
  for (size_t i = 0; i < offline_a.size(); ++i) {
    EXPECT_EQ((*scores)[i], offline_a[i]) << "pair " << i;
  }
}

TEST_F(ReloadChaosTest, ReloadStormUnderLoadFaultsNeverBreaksServing) {
  RegistryOptions options;
  options.canary_threshold = 1.0;
  ModelRegistry registry(Loader(), options);
  ASSERT_TRUE(registry.Init(*path_a_).ok());
  auto service = MatcherService::Create(&registry);
  ASSERT_TRUE(service.ok()) << service.status();

  const auto pairs = SamplePairs(8);
  const auto specs = SpecsOf(pairs);
  const std::vector<double> offline_a = OfflineScores(*path_a_, pairs);
  const std::vector<double> offline_b = OfflineScores(*path_b_, pairs);

  // Half of all loads fail while reloads alternate targets and scoring
  // threads hammer the service: every response must be one generation's
  // exact scores, and serving must survive every rejection.
  ScopedFaults faults("seed=7;model.load:error:p=0.5");
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};
  std::vector<std::thread> scorers;
  for (int t = 0; t < 2; ++t) {
    scorers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto scores = (*service)->Score(specs);
        ASSERT_TRUE(scores.ok()) << scores.status();
        const bool all_a = std::equal(scores->begin(), scores->end(),
                                      offline_a.begin());
        const bool all_b = std::equal(scores->begin(), scores->end(),
                                      offline_b.begin());
        if (!all_a && !all_b) torn.fetch_add(1);
      }
    });
  }
  size_t accepted = 0;
  size_t rejected = 0;
  for (int round = 0; round < 20; ++round) {
    auto outcome = registry.Reload(round % 2 == 0 ? *path_b_ : *path_a_);
    if (outcome.ok()) {
      ++accepted;
    } else {
      ++rejected;
    }
  }
  stop.store(true);
  for (std::thread& thread : scorers) thread.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_GT(rejected, 0u) << "p=0.5 load faults must reject some reloads";
  const RegistryStats stats = registry.Snapshot();
  EXPECT_EQ(stats.reloads_ok, accepted);
  EXPECT_EQ(stats.reloads_rejected, rejected);
}

}  // namespace
}  // namespace leapme::serve
