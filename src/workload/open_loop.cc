#include "workload/open_loop.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

namespace leapme::workload {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t NanosBetween(Clock::time_point from, Clock::time_point to) {
  if (to <= from) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
          .count());
}

struct ThreadTally {
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t degraded = 0;
  uint64_t shed = 0;
  uint64_t deadline = 0;
  uint64_t errors = 0;
  uint64_t late_starts = 0;
};

}  // namespace

void RunOpenLoop(const ArrivalSchedule& schedule, unsigned threads,
                 const std::function<Outcome(size_t)>& fire,
                 OpenLoopResult* result) {
  const size_t count = schedule.size();
  if (count == 0) return;
  threads = std::clamp<unsigned>(threads, 1,
                                 static_cast<unsigned>(count));
  const auto late_threshold_ns = static_cast<uint64_t>(
      1e9 / schedule.options().target_rps);

  std::vector<ThreadTally> tallies(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  // Fixed before the workers launch so every thread shares one origin.
  const Clock::time_point run_start = Clock::now();

  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      ThreadTally& tally = tallies[t];
      for (size_t i = t; i < count; i += threads) {
        const auto intended =
            run_start +
            std::chrono::nanoseconds(schedule.intended_nanos(i));
        std::this_thread::sleep_until(intended);
        const Clock::time_point send_start = Clock::now();
        if (NanosBetween(intended, send_start) > late_threshold_ns) {
          ++tally.late_starts;
        }
        const Outcome outcome = fire(i);
        const Clock::time_point end = Clock::now();
        ++tally.sent;
        switch (outcome) {
          case Outcome::kOk: ++tally.ok; break;
          case Outcome::kDegraded: ++tally.degraded; break;
          case Outcome::kShed: ++tally.shed; break;
          case Outcome::kDeadline: ++tally.deadline; break;
          case Outcome::kError: ++tally.errors; break;
        }
        // Shed and errored requests still consumed schedule capacity,
        // so they stay in both histograms: dropping them would let an
        // overloaded server improve its own percentiles by refusing
        // work.
        result->service.RecordNanos(NanosBetween(send_start, end));
        result->intended.RecordNanos(NanosBetween(intended, end));
      }
    });
  }
  for (auto& worker : workers) worker.join();
  result->elapsed_s =
      static_cast<double>(NanosBetween(run_start, Clock::now())) / 1e9;
  for (const ThreadTally& tally : tallies) {
    result->sent += tally.sent;
    result->ok += tally.ok;
    result->degraded += tally.degraded;
    result->shed += tally.shed;
    result->deadline += tally.deadline;
    result->errors += tally.errors;
    result->late_starts += tally.late_starts;
  }
}

}  // namespace leapme::workload
