#ifndef LEAPME_WORKLOAD_TRAFFIC_H_
#define LEAPME_WORKLOAD_TRAFFIC_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status_or.h"
#include "workload/zipf.h"

namespace leapme::workload {

struct TrafficOptions {
  /// Number of catalog properties traffic is drawn over.
  size_t catalog_size = 0;
  /// Zipf popularity exponent: 0 = uniform, ~1 = web-like skew where the
  /// hot head hammers the serve caches.
  double zipf_s = 1.0;
  /// Seeds both the popularity permutation and the per-event draws.
  uint64_t seed = 1;
};

/// Draws which catalog properties each request touches, with Zipf-skewed
/// popularity.
///
/// Two determinism properties matter for benchmarking:
///  - Popularity rank r is mapped to a property id through a seeded
///    permutation, so the hot set is scattered across sources instead of
///    being the first properties the generator happened to emit.
///  - Every draw is keyed by the *event index* (hashed, then fed to the
///    Zipf inverse CDF), not by a shared stream: client threads that
///    partition the schedule by stride see exactly the draws a single
///    thread would, so 1-thread and N-thread runs offer identical
///    traffic.
class RequestSampler {
 public:
  static StatusOr<RequestSampler> Build(const TrafficOptions& options);

  /// The property event `i` queries (index-keyed, thread-independent).
  size_t PropertyAt(size_t event_index) const;

  /// A second, independently drawn property for pair-scoring traffic;
  /// decorrelated from PropertyAt(event_index) by a different hash
  /// stream. May coincide with the first draw (self-pairs are legal
  /// scoring requests).
  size_t PairPropertyAt(size_t event_index) const;

  /// Popularity rank of event `i`'s primary draw (0 = hottest); exposed
  /// so tests can check the empirical rank frequencies against pmf.
  size_t RankAt(size_t event_index) const;

  const ZipfDistribution& distribution() const { return zipf_; }

 private:
  RequestSampler(ZipfDistribution zipf, std::vector<uint32_t> permutation,
                 uint64_t seed);

  /// Uniform double in [0, 1) derived from (seed, stream, event index).
  double UniformAt(uint64_t stream, size_t event_index) const;

  ZipfDistribution zipf_;
  /// permutation_[rank] = property id.
  std::vector<uint32_t> permutation_;
  uint64_t seed_ = 0;
};

}  // namespace leapme::workload

#endif  // LEAPME_WORKLOAD_TRAFFIC_H_
