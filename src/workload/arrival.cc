#include "workload/arrival.h"

#include <cmath>

#include "common/rng.h"
#include "common/string_util.h"

namespace leapme::workload {

StatusOr<ArrivalSchedule> ArrivalSchedule::Build(
    const ArrivalOptions& options) {
  if (!(options.target_rps > 0.0) || !std::isfinite(options.target_rps)) {
    return Status::InvalidArgument(
        StrFormat("target_rps must be positive, got %g",
                  options.target_rps));
  }
  if (!(options.duration_s > 0.0) || !std::isfinite(options.duration_s)) {
    return Status::InvalidArgument(
        StrFormat("duration_s must be positive, got %g",
                  options.duration_s));
  }
  const double expected =
      std::round(options.target_rps * options.duration_s);
  if (expected < 1.0 || expected > 1e9) {
    return Status::InvalidArgument(StrFormat(
        "schedule of %g events (rps %g x %gs) is out of range",
        expected, options.target_rps, options.duration_s));
  }
  const auto count = static_cast<size_t>(expected);
  const double mean_gap_ns = 1e9 / options.target_rps;

  ArrivalSchedule schedule;
  schedule.options_ = options;
  schedule.intended_nanos_.reserve(count);
  Rng rng(options.seed);
  double at_ns = 0.0;
  for (size_t i = 0; i < count; ++i) {
    schedule.intended_nanos_.push_back(static_cast<uint64_t>(at_ns));
    if (options.poisson) {
      // Inverse-CDF exponential gap; 1 - u keeps the argument of log
      // strictly positive since NextDouble() is in [0, 1).
      at_ns += -mean_gap_ns * std::log(1.0 - rng.NextDouble());
    } else {
      at_ns = mean_gap_ns * static_cast<double>(i + 1);
    }
  }
  return schedule;
}

}  // namespace leapme::workload
