#include "workload/zipf.h"

#include <algorithm>
#include <cmath>

namespace leapme::workload {

ZipfDistribution::ZipfDistribution(size_t n, double s)
    : s_(s > 0.0 ? s : 0.0) {
  if (n == 0) n = 1;
  std::vector<double> weights(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    weights[i] = std::pow(static_cast<double>(i + 1), -s_);
    total += weights[i];
  }
  total_weight_ = total;
  cdf_.resize(n);
  double running = 0.0;
  for (size_t i = 0; i < n; ++i) {
    running += weights[i] / total;
    cdf_[i] = running;
  }
  // Guard against accumulated rounding: u just below 1.0 must still map
  // into range, so the last step is pinned to exactly 1.
  cdf_.back() = 1.0;
}

size_t ZipfDistribution::Sample(double u) const {
  if (u < 0.0) u = 0.0;
  if (u >= 1.0) return cdf_.size() - 1;
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<size_t>(std::distance(cdf_.begin(), it));
}

double ZipfDistribution::pmf(size_t i) const {
  if (i >= cdf_.size()) return 0.0;
  return std::pow(static_cast<double>(i + 1), -s_) / total_weight_;
}

}  // namespace leapme::workload
