#include "workload/latency_recorder.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace leapme::workload {

namespace {

constexpr unsigned kSubBuckets = 1u << LatencyRecorder::kSubBucketBits;

/// Highest bucket index: octaves for shifts 1..(63 - kSubBucketBits)
/// on top of the exact region [0, 2 * kSubBuckets).
constexpr size_t BucketCount() {
  return (64 - LatencyRecorder::kSubBucketBits) * kSubBuckets;
}

}  // namespace

LatencyRecorder::LatencyRecorder() : buckets_(BucketCount()) {}

// Bucket layout: values below 2*kSubBuckets map to themselves (exact);
// a value with top bit t > kSubBucketBits is shifted right until
// kSubBucketBits+1 significant bits remain, giving
//   index = shift * kSubBuckets + (value >> shift)
// which continues the exact region seamlessly and subdivides every
// octave into kSubBuckets linear steps.
size_t LatencyRecorder::BucketOf(uint64_t nanos) {
  if (nanos == 0) nanos = 1;
  const int top = 63 - std::countl_zero(nanos);
  if (top <= static_cast<int>(kSubBucketBits)) {
    return static_cast<size_t>(nanos);
  }
  const unsigned shift = static_cast<unsigned>(top) - kSubBucketBits;
  const size_t index =
      static_cast<size_t>(shift) * kSubBuckets + (nanos >> shift);
  return std::min(index, BucketCount() - 1);
}

uint64_t LatencyRecorder::BucketMidpointNanos(size_t index) {
  if (index < 2 * kSubBuckets) {
    return static_cast<uint64_t>(index);
  }
  const unsigned shift = static_cast<unsigned>(index / kSubBuckets) - 1;
  const uint64_t base =
      (static_cast<uint64_t>(index) - static_cast<uint64_t>(shift) *
                                          kSubBuckets)
      << shift;
  return base + (uint64_t{1} << shift) / 2;
}

void LatencyRecorder::RecordNanos(uint64_t nanos) {
  if (nanos == 0) nanos = 1;
  buckets_[BucketOf(nanos)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  uint64_t seen = max_nanos_.load(std::memory_order_relaxed);
  while (nanos > seen && !max_nanos_.compare_exchange_weak(
                             seen, nanos, std::memory_order_relaxed)) {
  }
}

void LatencyRecorder::Merge(const LatencyRecorder& other) {
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n > 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sum_nanos_.fetch_add(other.sum_nanos_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  const uint64_t other_max =
      other.max_nanos_.load(std::memory_order_relaxed);
  uint64_t seen = max_nanos_.load(std::memory_order_relaxed);
  while (other_max > seen && !max_nanos_.compare_exchange_weak(
                                 seen, other_max,
                                 std::memory_order_relaxed)) {
  }
}

double LatencyRecorder::QuantileUs(double q) const {
  const uint64_t total = count();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(total))));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= rank) {
      return static_cast<double>(BucketMidpointNanos(i)) / 1000.0;
    }
  }
  return static_cast<double>(max_nanos_.load(std::memory_order_relaxed)) /
         1000.0;
}

double LatencyRecorder::MaxUs() const {
  return static_cast<double>(max_nanos_.load(std::memory_order_relaxed)) /
         1000.0;
}

double LatencyRecorder::MeanUs() const {
  const uint64_t total = count();
  if (total == 0) return 0.0;
  return static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) /
         static_cast<double>(total) / 1000.0;
}

LatencyRecorder::Summary LatencyRecorder::Snapshot() const {
  Summary summary;
  summary.count = count();
  summary.p50_us = QuantileUs(0.50);
  summary.p95_us = QuantileUs(0.95);
  summary.p99_us = QuantileUs(0.99);
  summary.p999_us = QuantileUs(0.999);
  summary.max_us = MaxUs();
  summary.mean_us = MeanUs();
  return summary;
}

}  // namespace leapme::workload
