#ifndef LEAPME_WORKLOAD_ZIPF_H_
#define LEAPME_WORKLOAD_ZIPF_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace leapme::workload {

/// Zipf(s) popularity distribution over ranks 0..n-1: rank i carries mass
/// proportional to 1/(i+1)^s. s = 0 degenerates to uniform; s around 1
/// matches the skew of web and product-catalog traffic, where a handful
/// of hot keys dominate and a long tail is touched rarely.
///
/// The distribution is a precomputed CDF (built once, O(n)), so sampling
/// is one binary search and is trivially deterministic: Sample(u) is a
/// pure function of u. Callers that need reproducible streams derive u
/// from a seeded source (see RequestSampler, which derives u from the
/// event index so draws are independent of thread count).
class ZipfDistribution {
 public:
  /// `n` >= 1 ranks; negative exponents are clamped to 0 (uniform).
  ZipfDistribution(size_t n, double s);

  /// Maps u in [0, 1) to a rank in [0, n). Monotone in u: small u lands
  /// on the popular head ranks.
  size_t Sample(double u) const;

  /// Analytic probability mass of rank `i` (the normalized 1/(i+1)^s
  /// weight); the reference tests compare empirical frequencies against.
  double pmf(size_t i) const;

  size_t size() const { return cdf_.size(); }
  double exponent() const { return s_; }

 private:
  double s_ = 0.0;
  double total_weight_ = 0.0;
  std::vector<double> cdf_;
};

}  // namespace leapme::workload

#endif  // LEAPME_WORKLOAD_ZIPF_H_
