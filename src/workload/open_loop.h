#ifndef LEAPME_WORKLOAD_OPEN_LOOP_H_
#define LEAPME_WORKLOAD_OPEN_LOOP_H_

#include <cstddef>
#include <cstdint>
#include <functional>

#include "workload/arrival.h"
#include "workload/latency_recorder.h"

namespace leapme::workload {

/// What a single request came back as, from the load generator's point
/// of view. Shed / deadline / degraded mirror the serve layer's overload
/// responses so soak reports can break the mix down.
enum class Outcome {
  kOk,
  kDegraded,
  kShed,      // ResourceExhausted / Unavailable — server refused work.
  kDeadline,  // DeadlineExceeded.
  kError,     // anything else (transport failure, bad response, ...).
};

/// Aggregated result of one open-loop run. The two histograms measure
/// the same responses against two different start clocks:
///  - `service`: from the instant the request was actually sent. This is
///    what a closed-loop client reports, and it silently forgives queue
///    time spent waiting to send.
///  - `intended`: from the schedule's intended send time. When the run
///    falls behind a stalled server, the backlog shows up here — the
///    coordinated-omission-corrected view a real arrival process would
///    experience.
struct OpenLoopResult {
  LatencyRecorder intended;
  LatencyRecorder service;
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t degraded = 0;
  uint64_t shed = 0;
  uint64_t deadline = 0;
  uint64_t errors = 0;
  /// Events fired more than one mean gap after their intended time —
  /// a quick "did the generator keep up" health signal.
  uint64_t late_starts = 0;
  double elapsed_s = 0.0;
};

/// Fires every event of `schedule` at its intended time, partitioned
/// over `threads` client threads by stride (thread t takes events with
/// i % threads == t). `fire(i)` performs the request for event i and
/// classifies the response; it is called concurrently from all threads.
///
/// The schedule is never stretched: if a fire runs long, the thread
/// issues its next events immediately (late) rather than shifting them,
/// and the lateness lands in `result->intended`.
void RunOpenLoop(const ArrivalSchedule& schedule, unsigned threads,
                 const std::function<Outcome(size_t)>& fire,
                 OpenLoopResult* result);

}  // namespace leapme::workload

#endif  // LEAPME_WORKLOAD_OPEN_LOOP_H_
