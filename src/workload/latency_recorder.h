#ifndef LEAPME_WORKLOAD_LATENCY_RECORDER_H_
#define LEAPME_WORKLOAD_LATENCY_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <vector>

namespace leapme::workload {

/// HDR-style log-bucketed latency histogram.
///
/// Values (nanoseconds) are binned into buckets whose width grows with
/// the value: each power-of-two octave is split into 2^kSubBucketBits
/// linear sub-buckets, bounding the relative quantile error at
/// 2^-kSubBucketBits (~1.6%) while the whole range 1ns..hours fits in a
/// fixed ~3KB table. Unlike a sample window (common/metrics.h
/// LatencyRecorder), nothing is ever evicted: a soak can record hundreds
/// of millions of samples and every one still weighs on the quantiles —
/// which is what makes the histogram safe for coordinated-omission
/// accounting, where the worst samples are precisely the ones a bounded
/// window would age out.
///
/// Record is wait-free (one relaxed atomic add); Merge sums another
/// histogram in, so per-client-thread recorders combine into a run-level
/// one without contention during the measurement itself.
class LatencyRecorder {
 public:
  /// Linear sub-buckets per octave = 2^kSubBucketBits; relative quantile
  /// error is bounded by 2^-kSubBucketBits.
  static constexpr unsigned kSubBucketBits = 6;

  LatencyRecorder();

  /// Records one latency sample in nanoseconds (0 counts as 1).
  void RecordNanos(uint64_t nanos);

  /// Adds every bucket of `other` into this histogram.
  void Merge(const LatencyRecorder& other);

  /// The `q`-quantile (q in [0, 1]) in microseconds: the midpoint of the
  /// bucket holding the ceil(q * count)-th smallest sample; 0 when empty.
  double QuantileUs(double q) const;

  /// Largest recorded sample, exact (not bucket-rounded), microseconds.
  double MaxUs() const;

  /// Mean of all recorded samples in microseconds (sum kept exactly).
  double MeanUs() const;

  uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  /// The standard percentile set every report in this repo shares.
  struct Summary {
    double p50_us = 0.0;
    double p95_us = 0.0;
    double p99_us = 0.0;
    double p999_us = 0.0;
    double max_us = 0.0;
    double mean_us = 0.0;
    uint64_t count = 0;
  };
  Summary Snapshot() const;

 private:
  static size_t BucketOf(uint64_t nanos);
  static uint64_t BucketMidpointNanos(size_t index);

  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_nanos_{0};
  std::atomic<uint64_t> max_nanos_{0};
};

}  // namespace leapme::workload

#endif  // LEAPME_WORKLOAD_LATENCY_RECORDER_H_
