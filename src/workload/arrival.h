#ifndef LEAPME_WORKLOAD_ARRIVAL_H_
#define LEAPME_WORKLOAD_ARRIVAL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status_or.h"

namespace leapme::workload {

struct ArrivalOptions {
  /// Intended request rate. The schedule is laid out before the run
  /// starts, so the offered load never adapts to response latency —
  /// that is the open-loop property.
  double target_rps = 100.0;
  /// Schedule length in seconds; the event count is round(rps * s).
  double duration_s = 10.0;
  /// Poisson arrivals (exponential gaps, the memoryless traffic real
  /// services see) when true; a metronome with exact 1/rps spacing when
  /// false.
  bool poisson = true;
  /// Seeds the gap draws; a fixed seed reproduces the schedule exactly.
  uint64_t seed = 1;
};

/// A precomputed open-loop arrival schedule: the intended send time of
/// every request, as an offset from the run's start instant.
///
/// Coordinated omission is avoided by construction. A closed-loop client
/// sends request i+1 only after response i, so a server stall silently
/// deletes all the requests that *would* have arrived during the stall —
/// the measured percentiles then describe traffic the server itself got
/// to choose. Here the intended times are fixed before the run: when the
/// run falls behind, events fire late and their latency is measured from
/// intended_nanos(i), charging the whole backlog to the tail instead of
/// hiding it.
///
/// Threads partition the schedule by stride (client t of T takes events
/// i with i % T == t), so the union of per-thread streams is the same
/// schedule at any thread count.
class ArrivalSchedule {
 public:
  static StatusOr<ArrivalSchedule> Build(const ArrivalOptions& options);

  size_t size() const { return intended_nanos_.size(); }

  /// Intended send time of event `i` in nanoseconds after run start.
  uint64_t intended_nanos(size_t i) const { return intended_nanos_[i]; }

  const ArrivalOptions& options() const { return options_; }

 private:
  ArrivalOptions options_;
  std::vector<uint64_t> intended_nanos_;
};

}  // namespace leapme::workload

#endif  // LEAPME_WORKLOAD_ARRIVAL_H_
