#include "workload/traffic.h"

#include <limits>
#include <numeric>
#include <utility>

#include "common/rng.h"
#include "common/string_util.h"

namespace leapme::workload {

StatusOr<RequestSampler> RequestSampler::Build(
    const TrafficOptions& options) {
  if (options.catalog_size == 0) {
    return Status::InvalidArgument("traffic needs a non-empty catalog");
  }
  if (options.catalog_size >
      static_cast<size_t>(std::numeric_limits<uint32_t>::max())) {
    return Status::InvalidArgument("catalog too large for the sampler");
  }
  std::vector<uint32_t> permutation(options.catalog_size);
  std::iota(permutation.begin(), permutation.end(), 0u);
  Rng rng(Mix64(options.seed ^ 0x5ca1ab1e5ca1ab1eULL));
  rng.Shuffle(permutation);
  return RequestSampler(ZipfDistribution(options.catalog_size,
                                         options.zipf_s),
                        std::move(permutation), options.seed);
}

RequestSampler::RequestSampler(ZipfDistribution zipf,
                               std::vector<uint32_t> permutation,
                               uint64_t seed)
    : zipf_(std::move(zipf)),
      permutation_(std::move(permutation)),
      seed_(seed) {}

double RequestSampler::UniformAt(uint64_t stream,
                                 size_t event_index) const {
  const uint64_t bits = Mix64(Mix64(seed_ ^ stream) ^
                              (static_cast<uint64_t>(event_index) + 1));
  // Top 53 bits -> [0, 1), the same construction Rng::NextDouble uses.
  return static_cast<double>(bits >> 11) / 9007199254740992.0;
}

size_t RequestSampler::RankAt(size_t event_index) const {
  return zipf_.Sample(UniformAt(0x9192a3b4c5d6e7f8ULL, event_index));
}

size_t RequestSampler::PropertyAt(size_t event_index) const {
  return permutation_[RankAt(event_index)];
}

size_t RequestSampler::PairPropertyAt(size_t event_index) const {
  return permutation_[zipf_.Sample(
      UniformAt(0x0f1e2d3c4b5a6978ULL, event_index))];
}

}  // namespace leapme::workload
