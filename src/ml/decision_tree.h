#ifndef LEAPME_ML_DECISION_TREE_H_
#define LEAPME_ML_DECISION_TREE_H_

#include <cstdint>
#include <vector>

#include "ml/classifier.h"

namespace leapme::ml {

/// Options for DecisionTree.
struct DecisionTreeOptions {
  size_t max_depth = 8;
  size_t min_samples_split = 4;
  size_t min_samples_leaf = 2;
};

/// CART binary decision tree with Gini impurity and axis-aligned numeric
/// splits. Supports per-sample weights (needed by AdaBoost).
class DecisionTree final : public BinaryClassifier {
 public:
  explicit DecisionTree(DecisionTreeOptions options = {})
      : options_(options) {}

  Status Fit(const nn::Matrix& inputs,
             const std::vector<int32_t>& labels) override;

  /// Weighted fit; `weights` must be non-negative and sum to a positive
  /// value.
  Status FitWeighted(const nn::Matrix& inputs,
                     const std::vector<int32_t>& labels,
                     const std::vector<double>& weights);

  std::vector<double> PredictProbability(
      const nn::Matrix& inputs) const override;
  std::string Name() const override { return "cart"; }

  /// Number of nodes in the fitted tree (0 before Fit).
  size_t node_count() const { return nodes_.size(); }

 private:
  struct Node {
    // Internal nodes: feature/threshold and child links; leaves have
    // left == -1 and carry the positive-class probability.
    int32_t feature = -1;
    float threshold = 0.0f;
    int32_t left = -1;
    int32_t right = -1;
    double positive_probability = 0.0;
  };

  int32_t BuildNode(const nn::Matrix& inputs,
                    const std::vector<int32_t>& labels,
                    const std::vector<double>& weights,
                    std::vector<size_t>& sample_indices, size_t depth);

  DecisionTreeOptions options_;
  std::vector<Node> nodes_;
};

}  // namespace leapme::ml

#endif  // LEAPME_ML_DECISION_TREE_H_
