#include "ml/logistic_regression.h"

#include <cmath>

#include "common/kernels/kernels.h"

namespace leapme::ml {

namespace {

double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

}  // namespace

Status LogisticRegression::Fit(const nn::Matrix& inputs,
                               const std::vector<int32_t>& labels) {
  if (inputs.rows() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  if (inputs.rows() != labels.size()) {
    return Status::InvalidArgument("inputs/labels size mismatch");
  }
  const size_t n = inputs.rows();
  const size_t d = inputs.cols();
  weights_.assign(d, 0.0);
  bias_ = 0.0;
  std::vector<double> grad(d);

  // The per-example dot product and gradient update run on the kernel
  // layer: the dot uses the canonical 4-lane double reduction, the
  // gradient update is an elementwise double AXPY over the float row.
  const kernels::KernelTable& kernel = kernels::Active();
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double grad_bias = 0.0;
    for (size_t i = 0; i < n; ++i) {
      auto row = inputs.row(i);
      const double z =
          bias_ + kernel.dot_f32_f64(row.data(), weights_.data(), d);
      double error = Sigmoid(z) - (labels[i] != 0 ? 1.0 : 0.0);
      kernel.axpy_f32_f64(error, row.data(), grad.data(), d);
      grad_bias += error;
    }
    const double inv_n = 1.0 / static_cast<double>(n);
    for (size_t j = 0; j < d; ++j) {
      weights_[j] -= options_.learning_rate *
                     (grad[j] * inv_n + options_.l2 * weights_[j]);
    }
    bias_ -= options_.learning_rate * grad_bias * inv_n;
  }
  return Status::OK();
}

std::vector<double> LogisticRegression::PredictProbability(
    const nn::Matrix& inputs) const {
  std::vector<double> probabilities(inputs.rows(), 0.0);
  const kernels::KernelTable& kernel = kernels::Active();
  const size_t d = std::min(weights_.size(), inputs.cols());
  for (size_t i = 0; i < inputs.rows(); ++i) {
    auto row = inputs.row(i);
    probabilities[i] =
        Sigmoid(bias_ + kernel.dot_f32_f64(row.data(), weights_.data(), d));
  }
  return probabilities;
}

}  // namespace leapme::ml
