#ifndef LEAPME_ML_ADABOOST_H_
#define LEAPME_ML_ADABOOST_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "ml/classifier.h"
#include "ml/decision_tree.h"

namespace leapme::ml {

/// Options for AdaBoost.
struct AdaBoostOptions {
  size_t rounds = 50;         ///< number of boosting rounds
  size_t stump_depth = 1;     ///< depth of each weak learner
};

/// Discrete AdaBoost over shallow CART trees ("stumps"). This is the
/// learner configuration used for the Nezhadi et al. baseline, whose best
/// published results came from boosted decision trees over string
/// similarity features.
class AdaBoost final : public BinaryClassifier {
 public:
  explicit AdaBoost(AdaBoostOptions options = {}) : options_(options) {}

  Status Fit(const nn::Matrix& inputs,
             const std::vector<int32_t>& labels) override;
  std::vector<double> PredictProbability(
      const nn::Matrix& inputs) const override;
  std::string Name() const override { return "adaboost"; }

  /// Number of weak learners actually kept (early-stops on perfect fit).
  size_t learner_count() const { return learners_.size(); }

 private:
  AdaBoostOptions options_;
  std::vector<DecisionTree> learners_;
  std::vector<double> alphas_;
};

}  // namespace leapme::ml

#endif  // LEAPME_ML_ADABOOST_H_
