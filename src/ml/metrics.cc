#include "ml/metrics.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace leapme::ml {

void ConfusionCounts::Add(bool predicted_positive, bool actually_positive) {
  if (predicted_positive && actually_positive) {
    ++true_positives;
  } else if (predicted_positive && !actually_positive) {
    ++false_positives;
  } else if (!predicted_positive && actually_positive) {
    ++false_negatives;
  } else {
    ++true_negatives;
  }
}

std::string MatchQuality::ToString() const {
  return StrFormat("P=%.2f R=%.2f F1=%.2f", precision, recall, f1);
}

MatchQuality ComputeQuality(const ConfusionCounts& counts) {
  MatchQuality quality;
  size_t predicted = counts.true_positives + counts.false_positives;
  size_t actual = counts.true_positives + counts.false_negatives;
  if (predicted > 0) {
    quality.precision = static_cast<double>(counts.true_positives) /
                        static_cast<double>(predicted);
  }
  if (actual > 0) {
    quality.recall = static_cast<double>(counts.true_positives) /
                     static_cast<double>(actual);
  }
  if (quality.precision + quality.recall > 0.0) {
    quality.f1 = 2.0 * quality.precision * quality.recall /
                 (quality.precision + quality.recall);
  }
  return quality;
}

MatchQuality ComputeQuality(const std::vector<int32_t>& predictions,
                            const std::vector<int32_t>& labels) {
  LEAPME_CHECK_EQ(predictions.size(), labels.size());
  ConfusionCounts counts;
  for (size_t i = 0; i < predictions.size(); ++i) {
    counts.Add(predictions[i] != 0, labels[i] != 0);
  }
  return ComputeQuality(counts);
}

MatchQuality MeanQuality(const std::vector<MatchQuality>& qualities) {
  MatchQuality mean;
  if (qualities.empty()) return mean;
  for (const MatchQuality& q : qualities) {
    mean.precision += q.precision;
    mean.recall += q.recall;
    mean.f1 += q.f1;
  }
  auto n = static_cast<double>(qualities.size());
  mean.precision /= n;
  mean.recall /= n;
  mean.f1 /= n;
  return mean;
}

double Accuracy(const std::vector<int32_t>& predictions,
                const std::vector<int32_t>& labels) {
  LEAPME_CHECK_EQ(predictions.size(), labels.size());
  if (predictions.empty()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    if ((predictions[i] != 0) == (labels[i] != 0)) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(predictions.size());
}

std::vector<PrPoint> PrecisionRecallCurve(
    const std::vector<double>& scores, const std::vector<int32_t>& labels) {
  LEAPME_CHECK_EQ(scores.size(), labels.size());
  std::vector<size_t> order(scores.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] > scores[b];
  });
  size_t total_positives = 0;
  for (int32_t label : labels) {
    if (label != 0) ++total_positives;
  }

  std::vector<PrPoint> curve;
  size_t true_positives = 0;
  size_t predicted = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    ++predicted;
    if (labels[order[i]] != 0) ++true_positives;
    // Emit a point only at threshold boundaries (last of a score run).
    if (i + 1 < order.size() &&
        scores[order[i + 1]] == scores[order[i]]) {
      continue;
    }
    PrPoint point;
    point.threshold = scores[order[i]];
    point.precision = static_cast<double>(true_positives) /
                      static_cast<double>(predicted);
    point.recall = total_positives == 0
                       ? 0.0
                       : static_cast<double>(true_positives) /
                             static_cast<double>(total_positives);
    if (point.precision + point.recall > 0.0) {
      point.f1 = 2.0 * point.precision * point.recall /
                 (point.precision + point.recall);
    }
    curve.push_back(point);
  }
  return curve;
}

double AveragePrecision(const std::vector<double>& scores,
                        const std::vector<int32_t>& labels) {
  std::vector<PrPoint> curve = PrecisionRecallCurve(scores, labels);
  double area = 0.0;
  double previous_recall = 0.0;
  for (const PrPoint& point : curve) {
    area += (point.recall - previous_recall) * point.precision;
    previous_recall = point.recall;
  }
  return area;
}

PrPoint BestF1Point(const std::vector<double>& scores,
                    const std::vector<int32_t>& labels) {
  PrPoint best;
  for (const PrPoint& point : PrecisionRecallCurve(scores, labels)) {
    if (point.f1 > best.f1) {
      best = point;
    }
  }
  return best;
}

}  // namespace leapme::ml
