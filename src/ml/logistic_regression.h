#ifndef LEAPME_ML_LOGISTIC_REGRESSION_H_
#define LEAPME_ML_LOGISTIC_REGRESSION_H_

#include <cstdint>
#include <vector>

#include "ml/classifier.h"

namespace leapme::ml {

/// Options for LogisticRegression.
struct LogisticRegressionOptions {
  size_t epochs = 200;          ///< full-batch gradient steps
  double learning_rate = 0.5;   ///< step size
  double l2 = 1e-4;             ///< L2 regularization strength
};

/// L2-regularized logistic regression trained by full-batch gradient
/// descent. A linear reference learner: on LEAPME's feature vectors it
/// shows what a *linear* combination of embedding components achieves,
/// motivating the paper's choice of a nonlinear NN (§IV-C).
class LogisticRegression final : public BinaryClassifier {
 public:
  explicit LogisticRegression(LogisticRegressionOptions options = {})
      : options_(options) {}

  Status Fit(const nn::Matrix& inputs,
             const std::vector<int32_t>& labels) override;
  std::vector<double> PredictProbability(
      const nn::Matrix& inputs) const override;
  std::string Name() const override { return "logreg"; }

  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

 private:
  LogisticRegressionOptions options_;
  std::vector<double> weights_;
  double bias_ = 0.0;
};

}  // namespace leapme::ml

#endif  // LEAPME_ML_LOGISTIC_REGRESSION_H_
