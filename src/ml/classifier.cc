#include "ml/classifier.h"

namespace leapme::ml {

std::vector<int32_t> BinaryClassifier::Predict(const nn::Matrix& inputs,
                                               double threshold) const {
  std::vector<double> probabilities = PredictProbability(inputs);
  std::vector<int32_t> decisions(probabilities.size());
  for (size_t i = 0; i < probabilities.size(); ++i) {
    decisions[i] = probabilities[i] >= threshold ? 1 : 0;
  }
  return decisions;
}

}  // namespace leapme::ml
