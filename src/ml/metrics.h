#ifndef LEAPME_ML_METRICS_H_
#define LEAPME_ML_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace leapme::ml {

/// Binary confusion counts.
struct ConfusionCounts {
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t true_negatives = 0;
  size_t false_negatives = 0;

  void Add(bool predicted_positive, bool actually_positive);
};

/// Precision / recall / F1 triple — the paper's match-quality metrics.
struct MatchQuality {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;

  std::string ToString() const;
};

/// Computes P/R/F1 from confusion counts. Degenerate conventions: precision
/// is 0 when nothing was predicted positive; recall is 0 when there are no
/// actual positives; F1 is 0 when P + R == 0.
MatchQuality ComputeQuality(const ConfusionCounts& counts);

/// Computes P/R/F1 directly from parallel 0/1 prediction / label vectors.
MatchQuality ComputeQuality(const std::vector<int32_t>& predictions,
                            const std::vector<int32_t>& labels);

/// Element-wise mean of qualities (used to average over the repeated runs
/// with different random source splits). Empty input -> zeros.
MatchQuality MeanQuality(const std::vector<MatchQuality>& qualities);

/// Fraction of correct hard decisions.
double Accuracy(const std::vector<int32_t>& predictions,
                const std::vector<int32_t>& labels);

/// One precision/recall operating point of a score threshold sweep.
struct PrPoint {
  double threshold = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Sweeps the decision threshold over every distinct score and returns
/// the precision/recall curve ordered by descending threshold (recall
/// non-decreasing). Useful for picking operating points beyond the
/// paper's fixed 0.5.
std::vector<PrPoint> PrecisionRecallCurve(const std::vector<double>& scores,
                                          const std::vector<int32_t>& labels);

/// Average precision (area under the PR curve, step interpolation).
/// 0 when there are no positive labels.
double AveragePrecision(const std::vector<double>& scores,
                        const std::vector<int32_t>& labels);

/// The PR point with the highest F1 (ties: highest threshold). Returns a
/// zero point when the curve is empty.
PrPoint BestF1Point(const std::vector<double>& scores,
                    const std::vector<int32_t>& labels);

}  // namespace leapme::ml

#endif  // LEAPME_ML_METRICS_H_
