#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace leapme::ml {

namespace {

// Weighted Gini impurity of a (positive weight, total weight) split side.
double Gini(double positive_weight, double total_weight) {
  if (total_weight <= 0.0) return 0.0;
  double p = positive_weight / total_weight;
  return 2.0 * p * (1.0 - p);
}

}  // namespace

Status DecisionTree::Fit(const nn::Matrix& inputs,
                         const std::vector<int32_t>& labels) {
  std::vector<double> weights(inputs.rows(),
                              1.0 / std::max<size_t>(inputs.rows(), 1));
  return FitWeighted(inputs, labels, weights);
}

Status DecisionTree::FitWeighted(const nn::Matrix& inputs,
                                 const std::vector<int32_t>& labels,
                                 const std::vector<double>& weights) {
  if (inputs.rows() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  if (inputs.rows() != labels.size() || labels.size() != weights.size()) {
    return Status::InvalidArgument("inputs/labels/weights size mismatch");
  }
  double weight_sum = 0.0;
  for (double w : weights) {
    if (w < 0.0) {
      return Status::InvalidArgument("negative sample weight");
    }
    weight_sum += w;
  }
  if (weight_sum <= 0.0) {
    return Status::InvalidArgument("sample weights sum to zero");
  }
  nodes_.clear();
  std::vector<size_t> all_indices(inputs.rows());
  for (size_t i = 0; i < all_indices.size(); ++i) all_indices[i] = i;
  BuildNode(inputs, labels, weights, all_indices, 0);
  return Status::OK();
}

int32_t DecisionTree::BuildNode(const nn::Matrix& inputs,
                                const std::vector<int32_t>& labels,
                                const std::vector<double>& weights,
                                std::vector<size_t>& sample_indices,
                                size_t depth) {
  double total_weight = 0.0;
  double positive_weight = 0.0;
  for (size_t idx : sample_indices) {
    total_weight += weights[idx];
    if (labels[idx] != 0) positive_weight += weights[idx];
  }

  auto make_leaf = [&]() -> int32_t {
    Node leaf;
    leaf.positive_probability =
        total_weight > 0.0 ? positive_weight / total_weight : 0.0;
    nodes_.push_back(leaf);
    return static_cast<int32_t>(nodes_.size() - 1);
  };

  bool pure = positive_weight <= 0.0 || positive_weight >= total_weight;
  if (pure || depth >= options_.max_depth ||
      sample_indices.size() < options_.min_samples_split) {
    return make_leaf();
  }

  // Exhaustive best-split search: for every feature, sort samples by value
  // and scan split points between distinct values.
  const size_t d = inputs.cols();
  double best_impurity = std::numeric_limits<double>::infinity();
  int32_t best_feature = -1;
  float best_threshold = 0.0f;

  std::vector<size_t> order = sample_indices;
  for (size_t feature = 0; feature < d; ++feature) {
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return inputs(a, feature) < inputs(b, feature);
    });
    double left_weight = 0.0;
    double left_positive = 0.0;
    for (size_t i = 0; i + 1 < order.size(); ++i) {
      size_t idx = order[i];
      left_weight += weights[idx];
      if (labels[idx] != 0) left_positive += weights[idx];
      float current = inputs(idx, feature);
      float next = inputs(order[i + 1], feature);
      if (current == next) continue;
      if (i + 1 < options_.min_samples_leaf ||
          order.size() - i - 1 < options_.min_samples_leaf) {
        continue;
      }
      double right_weight = total_weight - left_weight;
      double right_positive = positive_weight - left_positive;
      double impurity = Gini(left_positive, left_weight) * left_weight +
                        Gini(right_positive, right_weight) * right_weight;
      if (impurity < best_impurity) {
        best_impurity = impurity;
        best_feature = static_cast<int32_t>(feature);
        best_threshold = 0.5f * (current + next);
      }
    }
  }

  if (best_feature < 0) {
    return make_leaf();
  }

  std::vector<size_t> left_indices;
  std::vector<size_t> right_indices;
  for (size_t idx : sample_indices) {
    if (inputs(idx, static_cast<size_t>(best_feature)) <= best_threshold) {
      left_indices.push_back(idx);
    } else {
      right_indices.push_back(idx);
    }
  }
  if (left_indices.empty() || right_indices.empty()) {
    return make_leaf();
  }

  Node node;
  node.feature = best_feature;
  node.threshold = best_threshold;
  nodes_.push_back(node);
  auto node_index = static_cast<int32_t>(nodes_.size() - 1);
  int32_t left = BuildNode(inputs, labels, weights, left_indices, depth + 1);
  int32_t right = BuildNode(inputs, labels, weights, right_indices, depth + 1);
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

std::vector<double> DecisionTree::PredictProbability(
    const nn::Matrix& inputs) const {
  std::vector<double> probabilities(inputs.rows(), 0.0);
  if (nodes_.empty()) return probabilities;
  for (size_t i = 0; i < inputs.rows(); ++i) {
    // The root is always node 0: BuildNode pushes internal nodes before
    // recursing into children.
    int32_t current = 0;
    while (nodes_[current].left >= 0) {
      const Node& node = nodes_[current];
      float value = inputs(i, static_cast<size_t>(node.feature));
      current = value <= node.threshold ? node.left : node.right;
    }
    probabilities[i] = nodes_[current].positive_probability;
  }
  return probabilities;
}

}  // namespace leapme::ml
