#ifndef LEAPME_ML_CLASSIFIER_H_
#define LEAPME_ML_CLASSIFIER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status_or.h"
#include "nn/matrix.h"

namespace leapme::ml {

/// Binary classifier over dense feature vectors: the common interface of
/// the classic learners (logistic regression, CART, AdaBoost) and of the
/// neural classifier wrapper, so that the LEAPME pipeline and the Nezhadi
/// baseline can swap learners for ablations.
class BinaryClassifier {
 public:
  virtual ~BinaryClassifier() = default;

  /// Trains on `inputs` (N x D) and 0/1 `labels` (length N).
  virtual Status Fit(const nn::Matrix& inputs,
                     const std::vector<int32_t>& labels) = 0;

  /// Probability of the positive class for each row of `inputs`.
  /// Must be called after a successful Fit.
  virtual std::vector<double> PredictProbability(
      const nn::Matrix& inputs) const = 0;

  /// Human-readable learner name ("logreg", "cart", "adaboost", "mlp").
  virtual std::string Name() const = 0;

  /// Hard decisions at `threshold` on the positive probability.
  std::vector<int32_t> Predict(const nn::Matrix& inputs,
                               double threshold = 0.5) const;
};

}  // namespace leapme::ml

#endif  // LEAPME_ML_CLASSIFIER_H_
