#include "ml/adaboost.h"

#include <algorithm>
#include <cmath>

namespace leapme::ml {

Status AdaBoost::Fit(const nn::Matrix& inputs,
                     const std::vector<int32_t>& labels) {
  if (inputs.rows() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  if (inputs.rows() != labels.size()) {
    return Status::InvalidArgument("inputs/labels size mismatch");
  }
  learners_.clear();
  alphas_.clear();

  const size_t n = inputs.rows();
  std::vector<double> weights(n, 1.0 / static_cast<double>(n));

  for (size_t round = 0; round < options_.rounds; ++round) {
    DecisionTreeOptions stump_options;
    stump_options.max_depth = options_.stump_depth;
    stump_options.min_samples_split = 2;
    stump_options.min_samples_leaf = 1;
    DecisionTree stump(stump_options);
    LEAPME_RETURN_IF_ERROR(stump.FitWeighted(inputs, labels, weights));

    std::vector<int32_t> predictions = stump.Predict(inputs);
    double error = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if ((predictions[i] != 0) != (labels[i] != 0)) {
        error += weights[i];
      }
    }
    // Numerical floors keep alpha finite for (near-)perfect stumps.
    error = std::clamp(error, 1e-10, 1.0 - 1e-10);
    if (error >= 0.5) {
      // Weak learner no better than chance: stop boosting. Keep at least
      // one learner so prediction is well defined.
      if (!learners_.empty()) break;
    }
    double alpha = 0.5 * std::log((1.0 - error) / error);
    learners_.push_back(std::move(stump));
    alphas_.push_back(alpha);

    double weight_sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double y = labels[i] != 0 ? 1.0 : -1.0;
      double h = predictions[i] != 0 ? 1.0 : -1.0;
      weights[i] *= std::exp(-alpha * y * h);
      weight_sum += weights[i];
    }
    for (double& w : weights) {
      w /= weight_sum;
    }
    if (error <= 1e-9) break;  // perfect fit; further rounds are no-ops
  }
  return Status::OK();
}

std::vector<double> AdaBoost::PredictProbability(
    const nn::Matrix& inputs) const {
  std::vector<double> margins(inputs.rows(), 0.0);
  double alpha_sum = 0.0;
  for (size_t t = 0; t < learners_.size(); ++t) {
    std::vector<int32_t> predictions = learners_[t].Predict(inputs);
    for (size_t i = 0; i < margins.size(); ++i) {
      margins[i] += alphas_[t] * (predictions[i] != 0 ? 1.0 : -1.0);
    }
    alpha_sum += alphas_[t];
  }
  // Map the normalized margin in [-1, 1] through a logistic link so the
  // output behaves like a probability.
  std::vector<double> probabilities(margins.size(), 0.5);
  if (alpha_sum <= 0.0) return probabilities;
  for (size_t i = 0; i < margins.size(); ++i) {
    double normalized = margins[i] / alpha_sum;
    probabilities[i] = 1.0 / (1.0 + std::exp(-4.0 * normalized));
  }
  return probabilities;
}

}  // namespace leapme::ml
