#ifndef LEAPME_ML_SCALER_H_
#define LEAPME_ML_SCALER_H_

#include <vector>

#include "common/status.h"
#include "nn/matrix.h"

namespace leapme::ml {

/// Per-column z-score standardization fitted on a training design matrix
/// and applied to train and test matrices alike. Neural-network training
/// needs inputs on comparable scales: LEAPME's raw feature vector mixes
/// [0,1] distances with unbounded meta-feature counts and instance values.
class StandardScaler {
 public:
  /// Computes per-column mean and standard deviation of `inputs`.
  Status Fit(const nn::Matrix& inputs);

  /// Standardizes `inputs` in place: (x - mean) / max(std, epsilon).
  /// Requires a prior Fit with the same column count.
  Status Transform(nn::Matrix* inputs) const;

  Status FitTransform(nn::Matrix* inputs) {
    LEAPME_RETURN_IF_ERROR(Fit(*inputs));
    return Transform(inputs);
  }

  /// Restores a scaler from previously saved statistics (deserialization).
  /// Both vectors must be non-empty and of equal length.
  Status Restore(std::vector<float> mean, std::vector<float> stddev);

  bool fitted() const { return !mean_.empty(); }
  const std::vector<float>& mean() const { return mean_; }
  const std::vector<float>& stddev() const { return stddev_; }

 private:
  std::vector<float> mean_;
  std::vector<float> stddev_;
};

}  // namespace leapme::ml

#endif  // LEAPME_ML_SCALER_H_
