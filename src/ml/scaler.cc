#include "ml/scaler.h"

#include <cmath>

#include "common/kernels/kernels.h"
#include "common/string_util.h"

namespace leapme::ml {

namespace {
constexpr float kMinStddev = 1e-6f;
}  // namespace

Status StandardScaler::Fit(const nn::Matrix& inputs) {
  if (inputs.rows() == 0) {
    return Status::InvalidArgument("cannot fit scaler on empty matrix");
  }
  const size_t n = inputs.rows();
  const size_t d = inputs.cols();
  mean_.assign(d, 0.0f);
  stddev_.assign(d, 0.0f);
  std::vector<double> sum(d, 0.0);
  std::vector<double> sum_sq(d, 0.0);
  // Column moments accumulate row by row on the kernel layer; the
  // per-column accumulation order over rows is unchanged by
  // vectorization (each column is an independent accumulator), so
  // results are bit-identical on every dispatch path.
  const kernels::KernelTable& kernel = kernels::Active();
  for (size_t r = 0; r < n; ++r) {
    kernel.moments(inputs.data() + r * d, sum.data(), sum_sq.data(), d);
  }
  const double inv_n = 1.0 / static_cast<double>(n);
  for (size_t c = 0; c < d; ++c) {
    double mean = sum[c] * inv_n;
    double variance = std::max(0.0, sum_sq[c] * inv_n - mean * mean);
    mean_[c] = static_cast<float>(mean);
    stddev_[c] = static_cast<float>(std::sqrt(variance));
  }
  return Status::OK();
}

Status StandardScaler::Restore(std::vector<float> mean,
                               std::vector<float> stddev) {
  if (mean.empty() || mean.size() != stddev.size()) {
    return Status::InvalidArgument("bad scaler statistics");
  }
  mean_ = std::move(mean);
  stddev_ = std::move(stddev);
  return Status::OK();
}

Status StandardScaler::Transform(nn::Matrix* inputs) const {
  if (!fitted()) {
    return Status::FailedPrecondition("Transform called before Fit");
  }
  if (inputs->cols() != mean_.size()) {
    return Status::InvalidArgument(
        StrFormat("scaler fitted on %zu columns, matrix has %zu",
                  mean_.size(), inputs->cols()));
  }
  const size_t d = inputs->cols();
  // Clamp once, then standardize every row with the dispatched kernel
  // (same subtract/divide per element as the historical loop).
  std::vector<float> clamped(d);
  for (size_t c = 0; c < d; ++c) {
    clamped[c] = std::max(stddev_[c], kMinStddev);
  }
  const kernels::KernelTable& kernel = kernels::Active();
  for (size_t r = 0; r < inputs->rows(); ++r) {
    kernel.standardize(mean_.data(), clamped.data(), inputs->data() + r * d,
                       d);
  }
  return Status::OK();
}

}  // namespace leapme::ml
