#include "ml/scaler.h"

#include <cmath>

#include "common/string_util.h"

namespace leapme::ml {

namespace {
constexpr float kMinStddev = 1e-6f;
}  // namespace

Status StandardScaler::Fit(const nn::Matrix& inputs) {
  if (inputs.rows() == 0) {
    return Status::InvalidArgument("cannot fit scaler on empty matrix");
  }
  const size_t n = inputs.rows();
  const size_t d = inputs.cols();
  mean_.assign(d, 0.0f);
  stddev_.assign(d, 0.0f);
  std::vector<double> sum(d, 0.0);
  std::vector<double> sum_sq(d, 0.0);
  for (size_t r = 0; r < n; ++r) {
    const float* row = inputs.data() + r * d;
    for (size_t c = 0; c < d; ++c) {
      sum[c] += row[c];
      sum_sq[c] += static_cast<double>(row[c]) * row[c];
    }
  }
  const double inv_n = 1.0 / static_cast<double>(n);
  for (size_t c = 0; c < d; ++c) {
    double mean = sum[c] * inv_n;
    double variance = std::max(0.0, sum_sq[c] * inv_n - mean * mean);
    mean_[c] = static_cast<float>(mean);
    stddev_[c] = static_cast<float>(std::sqrt(variance));
  }
  return Status::OK();
}

Status StandardScaler::Restore(std::vector<float> mean,
                               std::vector<float> stddev) {
  if (mean.empty() || mean.size() != stddev.size()) {
    return Status::InvalidArgument("bad scaler statistics");
  }
  mean_ = std::move(mean);
  stddev_ = std::move(stddev);
  return Status::OK();
}

Status StandardScaler::Transform(nn::Matrix* inputs) const {
  if (!fitted()) {
    return Status::FailedPrecondition("Transform called before Fit");
  }
  if (inputs->cols() != mean_.size()) {
    return Status::InvalidArgument(
        StrFormat("scaler fitted on %zu columns, matrix has %zu",
                  mean_.size(), inputs->cols()));
  }
  const size_t d = inputs->cols();
  for (size_t r = 0; r < inputs->rows(); ++r) {
    float* row = inputs->data() + r * d;
    for (size_t c = 0; c < d; ++c) {
      float stddev = std::max(stddev_[c], kMinStddev);
      row[c] = (row[c] - mean_[c]) / stddev;
    }
  }
  return Status::OK();
}

}  // namespace leapme::ml
