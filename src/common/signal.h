#ifndef LEAPME_COMMON_SIGNAL_H_
#define LEAPME_COMMON_SIGNAL_H_

namespace leapme {

/// Installs SIGINT/SIGTERM handlers (first call only) that mark shutdown
/// as requested and write one byte to a self-pipe, and returns the read
/// end of that pipe. Poll/select on the fd to wake an event loop when a
/// shutdown signal arrives; the fd stays readable once triggered. The
/// handlers are async-signal-safe (a write(2) on the pipe). Returns -1
/// if the pipe cannot be created.
int ShutdownSignalFd();

/// True once SIGINT or SIGTERM has been received (or RequestShutdown was
/// called). Safe to call from any thread.
bool ShutdownRequested();

/// Programmatic trigger with the same effect as receiving SIGTERM —
/// used by tests and by in-process embedders to stop a serving loop.
void RequestShutdown();

}  // namespace leapme

#endif  // LEAPME_COMMON_SIGNAL_H_
