#ifndef LEAPME_COMMON_SIGNAL_H_
#define LEAPME_COMMON_SIGNAL_H_

namespace leapme {

/// Installs SIGINT/SIGTERM handlers (first call only) that mark shutdown
/// as requested and write one byte to a self-pipe, and returns the read
/// end of that pipe (non-blocking). Poll/select on the fd to wake an
/// event loop when a signal arrives. Readability is a wakeup, not a
/// verdict: SIGHUP reload requests share the pipe, so a woken loop must
/// drain the fd and consult ShutdownRequested() / ConsumeReloadRequest()
/// to learn which event fired (the flags stay set even after a drain).
/// The handlers are async-signal-safe (a write(2) on the pipe). Returns
/// -1 if the pipe cannot be created.
int ShutdownSignalFd();

/// True once SIGINT or SIGTERM has been received (or RequestShutdown was
/// called). Safe to call from any thread.
bool ShutdownRequested();

/// Programmatic trigger with the same effect as receiving SIGTERM —
/// used by tests and by in-process embedders to stop a serving loop.
void RequestShutdown();

/// Installs the SIGHUP handler (first call only): marks a model reload
/// as requested and wakes the shared self-pipe, so a serving loop parked
/// on ShutdownSignalFd() notices without polling. Call before serving.
void InstallReloadSignalHandler();

/// True exactly once per reload request (SIGHUP or RequestReload) since
/// the last call — the flag is consumed, so coalesced signals trigger
/// one reload. Safe to call from any thread.
bool ConsumeReloadRequest();

/// Programmatic trigger with the same effect as receiving SIGHUP.
void RequestReload();

}  // namespace leapme

#endif  // LEAPME_COMMON_SIGNAL_H_
