#ifndef LEAPME_COMMON_METRICS_H_
#define LEAPME_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace leapme {

/// Monotonically increasing counter, safe for concurrent increments.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Power-of-two bucketed histogram for small positive integers (batch
/// sizes): bucket i counts values in [2^i, 2^(i+1)), the last bucket is
/// open-ended. Concurrent Record calls are safe.
class BucketHistogram {
 public:
  /// `buckets` >= 1; bucket 0 covers value 1, bucket 1 covers 2-3, ...
  explicit BucketHistogram(size_t buckets = 8);

  /// Records one observation (values < 1 count as 1).
  void Record(uint64_t value);

  size_t bucket_count() const { return counts_.size(); }

  /// Counts per bucket at the time of the call.
  std::vector<uint64_t> Snapshot() const;

  /// Human-readable range of bucket `index`, e.g. "4-7" or "256+".
  std::string BucketLabel(size_t index) const;

 private:
  std::vector<std::atomic<uint64_t>> counts_;
};

/// Sliding window over the most recent durations (or any scalar samples);
/// percentiles are computed from a sorted snapshot of the window. Record
/// and Snapshot are safe to call concurrently.
class LatencyRecorder {
 public:
  struct Percentiles {
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
    size_t samples = 0;  // samples currently in the window
  };

  /// Keeps the last `window` samples (window >= 1).
  explicit LatencyRecorder(size_t window = 4096);

  void Record(double sample);

  Percentiles Snapshot() const;

  /// Total samples ever recorded (not capped by the window).
  uint64_t total_recorded() const { return total_.value(); }

 private:
  mutable std::mutex mu_;
  std::vector<double> ring_;
  size_t next_ = 0;
  size_t count_ = 0;
  Counter total_;
};

}  // namespace leapme

#endif  // LEAPME_COMMON_METRICS_H_
