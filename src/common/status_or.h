#ifndef LEAPME_COMMON_STATUS_OR_H_
#define LEAPME_COMMON_STATUS_OR_H_

#include <cstdlib>
#include <optional>
#include <utility>

#include "common/status.h"

namespace leapme {

/// Either a value of type T or an error Status. The union-of-outcomes return
/// type used throughout the library for fallible constructors and loaders.
///
/// Usage:
///   StatusOr<Model> model = Model::Load(path);
///   if (!model.ok()) return model.status();
///   Use(model.value());
template <typename T>
class StatusOr {
 public:
  /// Constructs from a successful value.
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  /// Constructs from an error. `status` must be non-OK; an OK status here is
  /// a programming error and is converted to an Internal error.
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed with OK status");
    }
  }

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) noexcept = default;
  StatusOr& operator=(StatusOr&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Accessors. Calling these on a non-OK StatusOr aborts the process (the
  /// library equivalent of dereferencing a disengaged optional).
  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when this holds an error.
  T value_or(T fallback) const {
    if (ok()) return *value_;
    return fallback;
  }

 private:
  void CheckOk() const {
    if (!status_.ok()) {
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace leapme

/// Evaluates `rexpr` (a StatusOr<T>); on error returns the Status, otherwise
/// move-assigns the value into `lhs`.
#define LEAPME_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  LEAPME_ASSIGN_OR_RETURN_IMPL_(                                 \
      LEAPME_STATUS_MACROS_CONCAT_(_status_or_, __LINE__), lhs, rexpr)

#define LEAPME_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, rexpr) \
  auto statusor = (rexpr);                                  \
  if (!statusor.ok()) {                                     \
    return statusor.status();                               \
  }                                                         \
  lhs = std::move(statusor).value()

#define LEAPME_STATUS_MACROS_CONCAT_(x, y) LEAPME_STATUS_MACROS_CONCAT_IMPL_(x, y)
#define LEAPME_STATUS_MACROS_CONCAT_IMPL_(x, y) x##y

#endif  // LEAPME_COMMON_STATUS_OR_H_
