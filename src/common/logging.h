#ifndef LEAPME_COMMON_LOGGING_H_
#define LEAPME_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace leapme {

/// Severity levels for the minimal logging facility. FATAL aborts.
enum class LogSeverity : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Sets the minimum severity that is emitted to stderr (default: kInfo).
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

namespace internal_logging {

/// Stream-style log message; emits on destruction. Not for direct use —
/// use the LEAPME_LOG / LEAPME_CHECK macros.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace leapme

#define LEAPME_LOG(severity)                                       \
  ::leapme::internal_logging::LogMessage(                          \
      ::leapme::LogSeverity::k##severity, __FILE__, __LINE__)      \
      .stream()

/// Invariant check: logs the failed condition and aborts when false.
/// Used for programmer errors (not data errors — those return Status).
#define LEAPME_CHECK(condition)                                     \
  if (!(condition))                                                 \
  LEAPME_LOG(Fatal) << "Check failed: " #condition " "

#define LEAPME_CHECK_EQ(a, b) LEAPME_CHECK((a) == (b))
#define LEAPME_CHECK_NE(a, b) LEAPME_CHECK((a) != (b))
#define LEAPME_CHECK_LT(a, b) LEAPME_CHECK((a) < (b))
#define LEAPME_CHECK_LE(a, b) LEAPME_CHECK((a) <= (b))
#define LEAPME_CHECK_GT(a, b) LEAPME_CHECK((a) > (b))
#define LEAPME_CHECK_GE(a, b) LEAPME_CHECK((a) >= (b))

#endif  // LEAPME_COMMON_LOGGING_H_
