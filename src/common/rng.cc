#include "common/rng.h"

#include <cmath>

namespace leapme {

namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Mix64(uint64_t x) {
  uint64_t state = x;
  return SplitMix64(state);
}

uint64_t HashBytes(const void* data, size_t length) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < length; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Lemire's nearly-divisionless unbiased bounded generation.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  // Box–Muller; draws until u1 is nonzero so log() is finite.
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  double u2 = NextDouble();
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

Rng Rng::Fork() {
  return Rng(Next() ^ 0xd1b54a32d192ed03ULL);
}

std::vector<size_t> Rng::SampleIndices(size_t n, size_t k) {
  std::vector<size_t> indices(n);
  std::iota(indices.begin(), indices.end(), size_t{0});
  Shuffle(indices);
  if (k < n) {
    indices.resize(k);
  }
  return indices;
}

}  // namespace leapme
