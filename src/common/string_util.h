#ifndef LEAPME_COMMON_STRING_UTIL_H_
#define LEAPME_COMMON_STRING_UTIL_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace leapme {

/// Returns `text` lower-cased (ASCII only; bytes >= 0x80 pass through).
std::string AsciiToLower(std::string_view text);

/// Returns `text` upper-cased (ASCII only).
std::string AsciiToUpper(std::string_view text);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view text);

/// Splits on `delimiter`, keeping empty pieces.
std::vector<std::string> SplitString(std::string_view text, char delimiter);

/// Splits on any ASCII whitespace run, dropping empty pieces.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Joins `pieces` with `separator`.
std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view separator);

/// Parses `text` as a double after trimming whitespace. The entire trimmed
/// text must be consumed (sign, digits, '.', exponent only); otherwise
/// returns nullopt.
std::optional<double> ParseDouble(std::string_view text);

/// True if `text` starts with / ends with `prefix` / `suffix`.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view text, std::string_view from,
                       std::string_view to);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace leapme

#endif  // LEAPME_COMMON_STRING_UTIL_H_
