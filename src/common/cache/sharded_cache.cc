#include "common/cache/sharded_cache.h"

#include <cstdlib>

#include "common/logging.h"

namespace leapme::cache {

namespace {

constexpr size_t kDefaultShards = 16;
constexpr size_t kMaxShards = 1024;

}  // namespace

size_t DefaultCacheShards() {
  const char* value = std::getenv("LEAPME_CACHE_SHARDS");
  if (value == nullptr || *value == '\0') {
    return kDefaultShards;
  }
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed < 1) {
    LEAPME_LOG(Warning) << "LEAPME_CACHE_SHARDS='" << value
                        << "' not a positive integer; using "
                        << kDefaultShards;
    return kDefaultShards;
  }
  const auto clamped =
      std::min<size_t>(static_cast<size_t>(parsed), kMaxShards);
  // Round down to a power of two: shard selection masks hash bits.
  return std::bit_floor(clamped);
}

CacheShape ComputeCacheShape(size_t capacity, size_t shards_requested) {
  capacity = std::max<size_t>(1, capacity);
  if (shards_requested == 0) {
    shards_requested = DefaultCacheShards();
  }
  // Every shard must hold at least one full bucket; a shard count above
  // capacity/16 would multiply a small cache's footprint for no
  // concurrency the workload could ever use.
  const size_t shard_ceiling =
      std::bit_floor(std::max<size_t>(1, capacity / kSlotsPerBucket));
  CacheShape shape;
  shape.shards = std::min(
      std::bit_floor(std::min(shards_requested, kMaxShards)), shard_ceiling);
  shape.shards = std::max<size_t>(1, shape.shards);
  const size_t slots_per_shard =
      (capacity + shape.shards - 1) / shape.shards;
  shape.buckets_per_shard = std::bit_ceil(std::max<size_t>(
      1, (slots_per_shard + kSlotsPerBucket - 1) / kSlotsPerBucket));
  shape.slot_capacity =
      shape.shards * shape.buckets_per_shard * kSlotsPerBucket;
  return shape;
}

}  // namespace leapme::cache
