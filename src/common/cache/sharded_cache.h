#ifndef LEAPME_COMMON_CACHE_SHARDED_CACHE_H_
#define LEAPME_COMMON_CACHE_SHARDED_CACHE_H_

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/kernels/kernels.h"
#include "common/rng.h"

namespace leapme::cache {

/// Number of slots per set-associative bucket. One bucket's tags occupy
/// exactly one 16-byte line probed by the kernel layer's tag_probe16.
inline constexpr size_t kSlotsPerBucket = 16;

/// The resolved geometry of a ShardedCache: both counts are powers of
/// two, and `slot_capacity` (= shards * buckets_per_shard * 16) is the
/// requested capacity rounded up to the bucket grid.
struct CacheShape {
  size_t shards = 1;
  size_t buckets_per_shard = 1;
  size_t slot_capacity = kSlotsPerBucket;
};

/// Rounds a requested (capacity, shard count) to the power-of-two bucket
/// grid. `shards_requested` = 0 means "use DefaultCacheShards()". Shards
/// never exceed capacity / kSlotsPerBucket so a tiny cache cannot be
/// inflated far past its requested bound by a large shard count.
CacheShape ComputeCacheShape(size_t capacity, size_t shards_requested);

/// Default shard count: LEAPME_CACHE_SHARDS when set (clamped to
/// [1, 1024], rounded down to a power of two; malformed values log a
/// warning and fall through), otherwise 16.
size_t DefaultCacheShards();

/// Aggregate counters of one cache, summed across shards under the
/// per-shard locks (reads are exact, not racy approximations).
struct CacheCounters {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  size_t size = 0;
  /// Largest number of full-key comparisons any single probe (hit or
  /// miss) has performed in any partition — the "how degenerate did a
  /// bucket get" gauge. At most kSlotsPerBucket by construction.
  size_t max_probe = 0;
};

/// A sharded, set-associative concurrent cache (DRAMHiT-style):
///
///  - The key hash picks one of N power-of-two **shards** (low bits),
///    one power-of-two **bucket** within the shard (next bits), and an
///    8-bit **tag** (top bits, high bit forced so 0 always means
///    "empty slot").
///  - Each bucket is 16 slots whose tags sit in one contiguous 16-byte
///    line, compared in a single SIMD-dispatched `tag_probe16` call
///    (scalar fallback bit-identical — integer compares can't round).
///    Only tag-matching slots get a full key comparison.
///  - Eviction is **CLOCK second-chance within the bucket**: every hit
///    sets the slot's reference byte, a full bucket's insert sweeps a
///    per-bucket hand clearing reference bytes until it finds a cold
///    slot. This replaces the old global `std::list` LRU: no list nodes
///    to splice (the hit path writes one byte instead of relinking), no
///    global order to maintain, and — unlike linear probing — evicting
///    a slot cannot punch a hole in anyone's probe chain, because a
///    key's candidate set is always exactly its one bucket.
///  - Each shard has its own mutex, so concurrent lookups to different
///    shards never contend. The arrays never reallocate after
///    construction, which is what makes the batched prefetch wave below
///    safe without taking any lock.
///
/// `LookupBatch` is the DRAMHiT move: compute every key's bucket
/// address first, issue a `__builtin_prefetch` wave over all the tag
/// lines (and first slots), and only then start probing — by the time
/// the first probe touches memory the later lines are already in
/// flight, so a batch pays one memory round-trip instead of a
/// dependent-miss chain.
///
/// Counter contract (matches the mutex-LRU caches this replaces): the
/// single-key `Lookup` counts one hit or one miss per call;
/// `LookupBatch` counts hits only and leaves misses to the caller's
/// resolve step (a counted `Lookup` before compute+`Insert`), so a key
/// that misses and is then re-looked-up counts exactly one miss, the
/// same as the sequential per-call flow it replaces.
///
/// `Value` must be default-constructible and move-assignable. Hits hand
/// the value to a visitor **under the shard lock** (copy out what you
/// need; don't block), which is what keeps the hit path allocation-free
/// for any Value — an embedding entry is copied element-wise into the
/// caller's buffer, a shared_ptr is refcount-bumped, never boxed.
template <typename Value>
class ShardedCache {
 public:
  /// `capacity` is rounded up to the power-of-two bucket grid (see
  /// ComputeCacheShape); `shards` = 0 uses LEAPME_CACHE_SHARDS / 16.
  explicit ShardedCache(size_t capacity, size_t shards = 0)
      : shape_(ComputeCacheShape(capacity, shards)),
        shard_bits_(static_cast<unsigned>(std::countr_zero(shape_.shards))),
        bucket_mask_(shape_.buckets_per_shard - 1),
        kernels_(&kernels::Active()),
        shards_(std::make_unique<Shard[]>(shape_.shards)) {
    const size_t slots = shape_.buckets_per_shard * kSlotsPerBucket;
    for (size_t s = 0; s < shape_.shards; ++s) {
      shards_[s].tags.assign(slots, 0);
      shards_[s].ref.assign(slots, 0);
      shards_[s].hand.assign(shape_.buckets_per_shard, 0);
      shards_[s].slots.resize(slots);
    }
  }

  ShardedCache(const ShardedCache&) = delete;
  ShardedCache& operator=(const ShardedCache&) = delete;

  /// Single-key probe. On a hit, runs `on_hit(const Value&)` under the
  /// shard lock, marks the slot referenced, and counts a hit; a miss
  /// counts a miss. Returns whether the key was present.
  template <typename Fn>
  bool Lookup(std::string_view key, Fn&& on_hit) const {
    const SlotRef ref = Locate(key);
    Shard& shard = shards_[ref.shard];
    std::lock_guard<std::mutex> lock(shard.mu);
    const size_t slot = ProbeLocked(shard, ref, key);
    if (slot == kNotFound) {
      ++shard.misses;
      return false;
    }
    shard.ref[slot] = 1;
    ++shard.hits;
    on_hit(static_cast<const Value&>(shard.slots[slot].value));
    return true;
  }

  /// Batched probe with a prefetch wave: hashes every key of a wave and
  /// prefetches its tag line + first slot **before** probing any of
  /// them, then probes each key under its shard lock. (Grouping the
  /// wave by shard to amortize lock acquisitions was measured and lost:
  /// the in-place sort cost more than the uncontended lock ops it
  /// saved.) `found[i]` is set to 1/0 per key; hits run
  /// `on_hit(i, const Value&)` under the shard lock and count as hits.
  /// Misses are NOT counted — resolve them with the counted single-key
  /// Lookup (see the class counter contract). Returns the number of
  /// hits.
  template <typename Fn>
  size_t LookupBatch(std::span<const std::string_view> keys, uint8_t* found,
                     Fn&& on_hit) const {
    constexpr size_t kWave = 64;
    size_t hit_count = 0;
    for (size_t start = 0; start < keys.size(); start += kWave) {
      const size_t n = std::min(kWave, keys.size() - start);
      SlotRef wave[kWave];
      // Address-computation + prefetch pass: lock-free — the tag and
      // slot arrays are fixed at construction, so the addresses are
      // stable whatever concurrent inserts do to their contents.
      for (size_t i = 0; i < n; ++i) {
        wave[i] = Locate(keys[start + i]);
        const Shard& shard = shards_[wave[i].shard];
        __builtin_prefetch(shard.tags.data() + wave[i].slot_base, 0, 3);
        __builtin_prefetch(shard.slots.data() + wave[i].slot_base, 0, 1);
      }
      // Probe pass: by now the early lines are resident or in flight.
      for (size_t i = 0; i < n; ++i) {
        Shard& shard = shards_[wave[i].shard];
        std::lock_guard<std::mutex> lock(shard.mu);
        const size_t slot = ProbeLocked(shard, wave[i], keys[start + i]);
        if (slot == kNotFound) {
          found[start + i] = 0;
          continue;
        }
        shard.ref[slot] = 1;
        ++shard.hits;
        found[start + i] = 1;
        ++hit_count;
        on_hit(start + i,
               static_cast<const Value&>(shard.slots[slot].value));
      }
    }
    return hit_count;
  }

  /// Counter-free probe for presence checks (Contains-style callers):
  /// no hit/miss is recorded and the slot's CLOCK reference byte is
  /// left alone, so peeking never perturbs eviction or the hit ratio.
  /// On a hit, runs `on_hit(const Value&)` under the shard lock.
  template <typename Fn>
  bool Peek(std::string_view key, Fn&& on_hit) const {
    const SlotRef ref = Locate(key);
    Shard& shard = shards_[ref.shard];
    std::lock_guard<std::mutex> lock(shard.mu);
    const size_t slot = ProbeLocked(shard, ref, key);
    if (slot == kNotFound) {
      return false;
    }
    on_hit(static_cast<const Value&>(shard.slots[slot].value));
    return true;
  }

  /// Inserts `key` if absent (first writer wins — a concurrent
  /// duplicate insert is dropped, exactly like the LRU caches this
  /// replaces). A full bucket evicts its CLOCK victim first.
  void Insert(std::string_view key, Value value) const {
    const SlotRef ref = Locate(key);
    Shard& shard = shards_[ref.shard];
    std::lock_guard<std::mutex> lock(shard.mu);
    if (ProbeLocked(shard, ref, key) != kNotFound) {
      return;
    }
    size_t slot;
    const uint32_t empty =
        kernels_->tag_probe16(shard.tags.data() + ref.slot_base, 0);
    if (empty != 0) {
      slot = ref.slot_base + static_cast<size_t>(std::countr_zero(empty));
      ++shard.occupied;
    } else {
      // CLOCK second chance: sweep the hand, demoting referenced slots,
      // until a cold one turns up. Terminates within two revolutions
      // because every pass clears the bits it skips.
      uint8_t& hand = shard.hand[ref.slot_base / kSlotsPerBucket];
      for (;;) {
        const size_t candidate = ref.slot_base + hand;
        hand = static_cast<uint8_t>((hand + 1) & (kSlotsPerBucket - 1));
        if (shard.ref[candidate] == 0) {
          slot = candidate;
          break;
        }
        shard.ref[candidate] = 0;
      }
      ++shard.evictions;
    }
    Slot& dst = shard.slots[slot];
    dst.key.assign(key);
    dst.value = std::move(value);
    shard.tags[slot] = ref.tag;
    shard.ref[slot] = 1;
  }

  /// Exact counter snapshot (locks each shard in turn).
  CacheCounters Counters() const {
    CacheCounters total;
    for (size_t s = 0; s < shape_.shards; ++s) {
      Shard& shard = shards_[s];
      std::lock_guard<std::mutex> lock(shard.mu);
      total.hits += shard.hits;
      total.misses += shard.misses;
      total.evictions += shard.evictions;
      total.size += shard.occupied;
      total.max_probe = std::max(total.max_probe, shard.max_probe);
    }
    return total;
  }

  uint64_t hits() const { return Counters().hits; }
  uint64_t misses() const { return Counters().misses; }
  uint64_t evictions() const { return Counters().evictions; }
  size_t size() const { return Counters().size; }
  size_t max_probe() const { return Counters().max_probe; }
  size_t capacity() const { return shape_.slot_capacity; }
  size_t shards() const { return shape_.shards; }

 private:
  static constexpr size_t kNotFound = static_cast<size_t>(-1);

  struct Slot {
    std::string key;
    Value value{};
  };

  /// One partition: its own lock, a flat 16-tags-per-bucket line array,
  /// CLOCK reference bytes + per-bucket hands, and the slot payloads.
  /// The vectors are sized once in the cache constructor and never
  /// resized again (prefetch-address stability). alignas keeps one
  /// shard's mutex off its neighbors' cache lines.
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::vector<uint8_t> tags;
    std::vector<uint8_t> ref;
    std::vector<uint8_t> hand;
    std::vector<Slot> slots;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t occupied = 0;
    size_t max_probe = 0;
  };

  struct SlotRef {
    size_t shard;
    size_t slot_base;  // bucket index * kSlotsPerBucket
    uint8_t tag;
  };

  /// Hash-splits a key: shard from the low bits, bucket from the next
  /// bits, tag from the top byte with the high bit forced (a stored tag
  /// is never 0, so tag 0 probes find exactly the empty slots).
  SlotRef Locate(std::string_view key) const {
    const uint64_t h = HashBytes(key.data(), key.size());
    SlotRef ref;
    ref.shard = static_cast<size_t>(h) & (shape_.shards - 1);
    ref.slot_base =
        ((static_cast<size_t>(h >> shard_bits_) & bucket_mask_)) *
        kSlotsPerBucket;
    ref.tag = static_cast<uint8_t>(h >> 56) | 0x80;
    return ref;
  }

  /// Finds `key`'s slot in its bucket, or kNotFound. Tag compare first
  /// (one SIMD probe of the 16-byte line), full key compare only on tag
  /// matches. Tracks the per-shard max key-comparison count.
  size_t ProbeLocked(Shard& shard, const SlotRef& ref,
                     std::string_view key) const {
    uint32_t mask = kernels_->tag_probe16(shard.tags.data() + ref.slot_base,
                                          ref.tag);
    size_t compares = 0;
    size_t found = kNotFound;
    while (mask != 0) {
      const auto i = static_cast<size_t>(std::countr_zero(mask));
      mask &= mask - 1;
      ++compares;
      if (shard.slots[ref.slot_base + i].key == key) {
        found = ref.slot_base + i;
        break;
      }
    }
    shard.max_probe = std::max(shard.max_probe, compares);
    return found;
  }

  const CacheShape shape_;
  const unsigned shard_bits_;
  const size_t bucket_mask_;
  const kernels::KernelTable* const kernels_;
  const std::unique_ptr<Shard[]> shards_;
};

}  // namespace leapme::cache

#endif  // LEAPME_COMMON_CACHE_SHARDED_CACHE_H_
