#ifndef LEAPME_COMMON_PARALLEL_H_
#define LEAPME_COMMON_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace leapme {

/// A lazily started pool of worker threads executing statically chunked
/// parallel-for jobs. One process-wide instance (GlobalThreadPool) backs
/// every parallel loop in the library; its width comes from the
/// LEAPME_THREADS environment variable, SetGlobalThreadCount (the CLI's
/// --threads flag), or hardware concurrency, in that order of precedence.
///
/// Determinism contract: ParallelFor splits [begin, end) into
/// ceil(n / grain) chunks whose boundaries depend only on `grain` — never
/// on the thread count or on scheduling — and the body receives every
/// chunk exactly once. A body that reads shared inputs and writes only
/// outputs derived from its own chunk indices therefore produces
/// bit-identical results at any thread count, including the inline
/// single-thread path.
class ThreadPool {
 public:
  /// Starts `threads` - 1 workers; the submitting thread participates in
  /// every job, so `threads` == 1 means no worker threads at all.
  explicit ThreadPool(size_t threads);

  /// Joins all workers (in-flight jobs finish first).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Execution width of a job: workers plus the submitting thread.
  size_t thread_count() const { return workers_.size() + 1; }

  /// Runs `fn(chunk_begin, chunk_end)` for every grain-sized chunk of
  /// [begin, end) and blocks until all chunks are done. The submitting
  /// thread executes chunks alongside the workers. `max_threads` caps the
  /// number of threads running this job (0 = pool width). The first
  /// exception thrown by a body (lowest failing chunk among those
  /// observed) is rethrown on the submitting thread after remaining
  /// chunks are abandoned. Calls made from inside a job body run inline,
  /// so nested parallelism cannot deadlock.
  void ParallelFor(size_t begin, size_t end, size_t grain, size_t max_threads,
                   const std::function<void(size_t, size_t)>& fn);

 private:
  struct Job;

  void WorkerLoop();
  static void RunChunks(Job* job);
  static void RunInline(size_t begin, size_t end, size_t grain,
                        const std::function<void(size_t, size_t)>& fn);

  std::vector<std::thread> workers_;
  std::mutex mu_;                  // guards job_, generation_, shutdown_
  std::condition_variable job_cv_; // workers wait for a new generation
  std::shared_ptr<Job> job_;
  uint64_t generation_ = 0;
  bool shutdown_ = false;
  std::mutex submit_mu_;           // serializes concurrent submissions
};

/// Thread count the global pool uses when SetGlobalThreadCount was not
/// called: LEAPME_THREADS when set to a positive integer, otherwise
/// std::thread::hardware_concurrency() (minimum 1).
size_t DefaultThreadCount();

/// Overrides the global pool width (0 = back to DefaultThreadCount()).
/// An already-started pool of a different width is replaced; threads that
/// still hold the old pool finish their jobs on it first.
void SetGlobalThreadCount(size_t threads);

/// Width of the global pool (without forcing it to start).
size_t GlobalThreadCount();

/// The process-wide pool, started on first use. Callers keep the returned
/// shared_ptr for the duration of their job so SetGlobalThreadCount can
/// swap the pool underneath without racing running work.
std::shared_ptr<ThreadPool> GlobalThreadPool();

/// Statically chunked parallel loop over [begin, end) on the global pool:
/// fn(chunk_begin, chunk_end) for consecutive chunks of at most `grain`
/// indices. Runs inline — same chunk boundaries, ascending order — when
/// the range fits in one chunk, the effective width is 1, or the caller
/// is itself inside a pool job.
void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn);

/// ParallelFor with a per-call thread cap (0 = pool width). `max_threads`
/// == 1 always runs inline.
void ParallelFor(size_t begin, size_t end, size_t grain, size_t max_threads,
                 const std::function<void(size_t, size_t)>& fn);

/// Fallible-body variant for the library's exception-free Status idiom:
/// runs chunks until a body returns non-OK, then returns the Status of
/// the lowest observed failing chunk (chunks claimed after a failure are
/// skipped). `max_threads` as above.
Status ParallelForStatus(size_t begin, size_t end, size_t grain,
                         const std::function<Status(size_t, size_t)>& fn,
                         size_t max_threads = 0);

}  // namespace leapme

#endif  // LEAPME_COMMON_PARALLEL_H_
