#include "common/faults/fault_injector.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/logging.h"
#include "common/status_or.h"
#include "common/string_util.h"

namespace leapme::faults {

namespace {

const char* KindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kError:
      return "error";
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kShortIo:
      return "short";
    case FaultKind::kTruncate:
      return "trunc";
  }
  return "?";
}

StatusOr<FaultKind> ParseKind(std::string_view text) {
  if (text == "error") return FaultKind::kError;
  if (text == "delay") return FaultKind::kDelay;
  if (text == "short") return FaultKind::kShortIo;
  if (text == "trunc") return FaultKind::kTruncate;
  return Status::InvalidArgument("unknown fault kind '" + std::string(text) +
                                 "' (error|delay|short|trunc)");
}

StatusOr<uint64_t> ParseUint(std::string_view key, std::string_view text) {
  uint64_t value = 0;
  if (text.empty()) {
    return Status::InvalidArgument("fault key '" + std::string(key) +
                                   "' needs a value");
  }
  for (const char c : text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("fault key '" + std::string(key) +
                                     "' must be a non-negative integer, got '" +
                                     std::string(text) + "'");
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  return value;
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = [] {
    auto* created = new FaultInjector();
    if (const char* spec = std::getenv("LEAPME_FAULTS");
        spec != nullptr && spec[0] != '\0') {
      const Status status = created->Arm(spec);
      if (!status.ok()) {
        LEAPME_LOG(Warning) << "ignoring LEAPME_FAULTS: "
                            << status.ToString();
      } else {
        LEAPME_LOG(Info) << "fault injection armed from LEAPME_FAULTS: "
                         << created->spec();
      }
    }
    return created;
  }();
  return *injector;
}

Status FaultInjector::Arm(std::string_view spec) {
  std::vector<Rule> rules;
  uint64_t seed = 1;
  for (const std::string& piece : SplitString(spec, ';')) {
    const std::string_view trimmed = StripAsciiWhitespace(piece);
    if (trimmed.empty()) {
      continue;
    }
    if (StartsWith(trimmed, "seed=")) {
      LEAPME_ASSIGN_OR_RETURN(seed, ParseUint("seed", trimmed.substr(5)));
      continue;
    }
    const std::vector<std::string> fields = SplitString(trimmed, ':');
    if (fields.size() < 2) {
      return Status::InvalidArgument(
          "fault rule '" + std::string(trimmed) +
          "' must be point:kind[:key=value]... (see fault_injector.h)");
    }
    Rule rule;
    rule.point = std::string(StripAsciiWhitespace(fields[0]));
    if (rule.point.empty()) {
      return Status::InvalidArgument("fault rule with empty point name");
    }
    LEAPME_ASSIGN_OR_RETURN(rule.kind,
                            ParseKind(StripAsciiWhitespace(fields[1])));
    // Kind-specific parameter defaults: a delay without ms= still delays
    // visibly, a short I/O without bytes= is maximally short.
    rule.param = rule.kind == FaultKind::kDelay ? 10 : 1;
    for (size_t i = 2; i < fields.size(); ++i) {
      const std::string_view field = StripAsciiWhitespace(fields[i]);
      const size_t equals = field.find('=');
      if (equals == std::string_view::npos) {
        return Status::InvalidArgument("fault key '" + std::string(field) +
                                       "' must be key=value");
      }
      const std::string_view key = field.substr(0, equals);
      const std::string_view value = field.substr(equals + 1);
      if (key == "p") {
        const std::optional<double> p = ParseDouble(value);
        if (!p || *p < 0.0 || *p > 1.0) {
          return Status::InvalidArgument(
              "fault probability p must be in [0, 1], got '" +
              std::string(value) + "'");
        }
        rule.probability = *p;
      } else if (key == "ms" || key == "bytes") {
        LEAPME_ASSIGN_OR_RETURN(rule.param, ParseUint(key, value));
      } else if (key == "n") {
        LEAPME_ASSIGN_OR_RETURN(rule.max_fires, ParseUint(key, value));
      } else {
        return Status::InvalidArgument("unknown fault key '" +
                                       std::string(key) + "' (p|ms|bytes|n)");
      }
    }
    rules.push_back(std::move(rule));
  }
  const bool arm = !rules.empty();
  {
    std::lock_guard<std::mutex> lock(mu_);
    rules_ = std::move(rules);
    // A seeded xorshift64* must start non-zero.
    rng_state_ = seed != 0 ? seed : 0x9e3779b97f4a7c15ull;
  }
  armed_.store(arm, std::memory_order_relaxed);
  return Status::OK();
}

void FaultInjector::Disarm() {
  armed_.store(false, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  rules_.clear();
}

double FaultInjector::NextUniform() {
  // xorshift64*: tiny, deterministic, good enough for fire/skip draws.
  uint64_t x = rng_state_;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  rng_state_ = x;
  return static_cast<double>((x * 0x2545f4914f6cdd1dull) >> 11) /
         static_cast<double>(1ull << 53);
}

std::optional<FaultHit> FaultInjector::EvaluateSlow(std::string_view point) {
  uint64_t delay_ms = 0;
  std::optional<FaultHit> hit;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Rule& rule : rules_) {
      if (rule.point != point) {
        continue;
      }
      if (rule.max_fires != 0 && rule.fired >= rule.max_fires) {
        continue;
      }
      if (rule.probability < 1.0 && NextUniform() >= rule.probability) {
        continue;
      }
      ++rule.fired;
      injected_.fetch_add(1, std::memory_order_relaxed);
      if (rule.kind == FaultKind::kDelay) {
        // Delays compose with an error/short hit from another rule: the
        // operation is slow *and* fails, the worst realistic case.
        delay_ms += rule.param;
      } else if (!hit.has_value()) {
        hit = FaultHit{rule.kind, rule.param};
      }
    }
  }
  if (delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  return hit;
}

std::string FaultInjector::spec() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const Rule& rule : rules_) {
    if (!out.empty()) {
      out.push_back(';');
    }
    out += rule.point;
    out.push_back(':');
    out += KindName(rule.kind);
    out += StrFormat(":p=%g", rule.probability);
    if (rule.kind == FaultKind::kDelay) {
      out += StrFormat(":ms=%llu",
                       static_cast<unsigned long long>(rule.param));
    } else if (rule.kind != FaultKind::kError) {
      out += StrFormat(":bytes=%llu",
                       static_cast<unsigned long long>(rule.param));
    }
    if (rule.max_fires != 0) {
      out += StrFormat(":n=%llu",
                       static_cast<unsigned long long>(rule.max_fires));
    }
  }
  return out;
}

}  // namespace leapme::faults
