#ifndef LEAPME_COMMON_FAULTS_FAULT_INJECTOR_H_
#define LEAPME_COMMON_FAULTS_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace leapme::faults {

/// What an armed rule does when it fires at an injection point.
enum class FaultKind : int {
  kError = 0,     ///< the guarded operation reports failure
  kDelay = 1,     ///< sleep `param` milliseconds, then proceed
  kShortIo = 2,   ///< cap the I/O transfer at `param` bytes
  kTruncate = 3,  ///< truncate the written artifact to `param` bytes
};

/// One fired fault, returned to the call site to apply.
struct FaultHit {
  FaultKind kind = FaultKind::kError;
  uint64_t param = 0;  ///< ms for kDelay; byte cap for kShortIo/kTruncate
};

/// Process-wide, deterministic, seedable fault injector.
///
/// Production code brackets failure-prone operations with named
/// injection points; tests (or the LEAPME_FAULTS environment variable)
/// arm rules that make those points misbehave with a configured
/// probability. The points wired through this codebase:
///
///   serve.accept      accepted connection is dropped before serving
///   serve.read        connection read errors / latency / short reads
///   serve.write       response write errors / latency / short writes
///   embedding.lookup  per-property embedding lookups fail -> degraded
///   serve.score       a whole micro-batch group fails with Internal
///   model.load        LeapmeMatcher::LoadModel fails with IoError
///   model.save        SaveModel fails, or the file is torn (kTruncate)
///   alloc             batch admission fails as if memory were exhausted
///
/// Spec grammar (';'-separated rules, whitespace ignored):
///
///   LEAPME_FAULTS="seed=42;serve.read:error:p=0.05;
///                  serve.read:delay:p=0.05:ms=50;
///                  embedding.lookup:error:p=0.1:n=200;
///                  model.save:trunc:bytes=64"
///
/// Each rule is `point:kind[:key=value]...` with kind one of
/// error|delay|short|trunc and keys p (probability in [0,1], default 1),
/// ms (delay milliseconds, default 10), bytes (byte cap, default 1),
/// n (maximum fires, default unlimited). `seed=N` seeds the decision
/// RNG, so a fixed spec and a deterministic call sequence fire the same
/// faults every run.
///
/// Disarmed cost is a single relaxed atomic load per injection point —
/// the serving hot path pays nothing until faults are armed. Multiple
/// rules may target the same point (e.g. an error mix plus a latency
/// mix); every matching rule is evaluated per call.
class FaultInjector {
 public:
  FaultInjector() = default;

  /// The process-wide injector. First access arms it from the
  /// LEAPME_FAULTS environment variable when set (a malformed spec logs
  /// a warning and leaves the injector disarmed).
  static FaultInjector& Global();

  /// Replaces all rules with `spec` and arms. An empty spec disarms.
  /// On a parse error the previous rules stay in effect.
  Status Arm(std::string_view spec);

  /// Drops all rules; every Evaluate returns nothing again.
  void Disarm();

  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Evaluates the armed rules at `point`. Delay hits sleep immediately
  /// inside the call; the first error/short/trunc hit is returned for
  /// the caller to apply. This is the only per-call entry point — when
  /// disarmed it is one relaxed atomic load.
  std::optional<FaultHit> Evaluate(std::string_view point) {
    if (!armed_.load(std::memory_order_relaxed)) {
      return std::nullopt;
    }
    return EvaluateSlow(point);
  }

  /// Total faults fired (all points, all kinds) since construction.
  uint64_t injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

  /// The armed spec in canonical form ("" when disarmed).
  std::string spec() const;

 private:
  struct Rule {
    std::string point;
    FaultKind kind = FaultKind::kError;
    double probability = 1.0;
    uint64_t param = 0;
    uint64_t max_fires = 0;  // 0 = unlimited
    uint64_t fired = 0;
  };

  std::optional<FaultHit> EvaluateSlow(std::string_view point);
  /// Uniform draw in [0, 1) from the seeded xorshift state; mu_ held.
  double NextUniform();

  mutable std::mutex mu_;
  std::vector<Rule> rules_;
  uint64_t rng_state_ = 0x9e3779b97f4a7c15ull;
  std::atomic<bool> armed_{false};
  std::atomic<uint64_t> injected_{0};
};

/// Convenience for the common bracket: evaluates `point` on the global
/// injector (sleeping through delay hits) and returns true when an
/// error-kind fault fired, i.e. the guarded operation should fail.
inline bool InjectError(std::string_view point) {
  const std::optional<FaultHit> hit = FaultInjector::Global().Evaluate(point);
  return hit.has_value() && hit->kind == FaultKind::kError;
}

}  // namespace leapme::faults

#endif  // LEAPME_COMMON_FAULTS_FAULT_INJECTOR_H_
