#ifndef LEAPME_COMMON_RNG_H_
#define LEAPME_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <numeric>
#include <vector>

namespace leapme {

/// Deterministic 64-bit pseudo-random generator (xoshiro256** seeded via
/// SplitMix64). Every stochastic component in the library draws from an
/// explicitly seeded Rng so that experiments are reproducible bit-for-bit.
///
/// Satisfies the UniformRandomBitGenerator named requirement, so it can be
/// passed to <algorithm> facilities such as std::shuffle.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the generator. Two Rng instances with the same seed produce the
  /// same stream.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// Re-seeds the generator, resetting the stream.
  void Seed(uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  /// Next raw 64-bit value.
  uint64_t operator()() { return Next(); }
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal variate (Box–Muller, one value per call).
  double NextGaussian();

  /// Bernoulli draw with probability `p` of true.
  bool NextBool(double p = 0.5) { return NextDouble() < p; }

  /// Derives an independent child generator; used to give each experiment
  /// repetition / worker its own stream from a master seed.
  Rng Fork();

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    if (items.empty()) return;
    for (size_t i = items.size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      using std::swap;
      swap(items[i], items[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) in random order.
  /// If k >= n, returns a permutation of all n indices.
  std::vector<size_t> SampleIndices(size_t n, size_t k);

 private:
  uint64_t state_[4];
};

/// SplitMix64 step: the recommended seeding primitive for xoshiro, also
/// usable directly as a cheap stateless hash of a 64-bit value.
uint64_t SplitMix64(uint64_t& state);

/// Stateless 64-bit mix (one SplitMix64 round applied to `x`).
uint64_t Mix64(uint64_t x);

/// FNV-1a hash of a byte string; used for deterministic word hashing.
uint64_t HashBytes(const void* data, size_t length);

}  // namespace leapme

#endif  // LEAPME_COMMON_RNG_H_
