#ifndef LEAPME_COMMON_STATUS_H_
#define LEAPME_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace leapme {

/// Canonical error codes, modelled after the Arrow / RocksDB status idiom.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kIoError = 6,
  kCorruption = 7,
  kNotImplemented = 8,
  kInternal = 9,
  // Overload / robustness codes (serving control plane): a bounded
  // resource (queue, budget) is full, the service refuses new work, or a
  // request's deadline passed before its result was produced.
  kResourceExhausted = 10,
  kUnavailable = 11,
  kDeadlineExceeded = 12,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// Result of an operation that can fail. Library code never throws; every
/// fallible API returns a Status (or StatusOr<T>), which callers must check.
///
/// An OK status carries no allocation; error statuses carry a code and a
/// message describing what failed.
class Status {
 public:
  /// Creates an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per canonical error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace leapme

/// Propagates a non-OK Status to the caller.
#define LEAPME_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::leapme::Status _leapme_status = (expr);   \
    if (!_leapme_status.ok()) {                 \
      return _leapme_status;                    \
    }                                           \
  } while (false)

#endif  // LEAPME_COMMON_STATUS_H_
