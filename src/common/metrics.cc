#include "common/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace leapme {

BucketHistogram::BucketHistogram(size_t buckets)
    : counts_(std::max<size_t>(1, buckets)) {}

void BucketHistogram::Record(uint64_t value) {
  if (value < 1) value = 1;
  size_t bucket = 0;
  while (bucket + 1 < counts_.size() && (value >> (bucket + 1)) != 0) {
    ++bucket;
  }
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
}

std::vector<uint64_t> BucketHistogram::Snapshot() const {
  std::vector<uint64_t> snapshot(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    snapshot[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return snapshot;
}

std::string BucketHistogram::BucketLabel(size_t index) const {
  const uint64_t low = uint64_t{1} << index;
  if (index + 1 == counts_.size()) {
    return StrFormat("%llu+", static_cast<unsigned long long>(low));
  }
  const uint64_t high = (uint64_t{1} << (index + 1)) - 1;
  if (low == high) {
    return StrFormat("%llu", static_cast<unsigned long long>(low));
  }
  return StrFormat("%llu-%llu", static_cast<unsigned long long>(low),
                   static_cast<unsigned long long>(high));
}

LatencyRecorder::LatencyRecorder(size_t window)
    : ring_(std::max<size_t>(1, window)) {}

void LatencyRecorder::Record(double sample) {
  total_.Increment();
  std::lock_guard<std::mutex> lock(mu_);
  ring_[next_] = sample;
  next_ = (next_ + 1) % ring_.size();
  count_ = std::min(count_ + 1, ring_.size());
}

namespace {

/// Nearest-rank percentile over an ascending-sorted sample vector.
double PercentileOfSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = std::ceil(q * static_cast<double>(sorted.size()));
  const size_t index =
      std::min(sorted.size() - 1,
               static_cast<size_t>(std::max(1.0, rank)) - 1);
  return sorted[index];
}

}  // namespace

LatencyRecorder::Percentiles LatencyRecorder::Snapshot() const {
  std::vector<double> samples;
  {
    std::lock_guard<std::mutex> lock(mu_);
    samples.assign(ring_.begin(), ring_.begin() + count_);
  }
  Percentiles result;
  result.samples = samples.size();
  if (samples.empty()) return result;
  std::sort(samples.begin(), samples.end());
  result.p50 = PercentileOfSorted(samples, 0.50);
  result.p95 = PercentileOfSorted(samples, 0.95);
  result.p99 = PercentileOfSorted(samples, 0.99);
  result.max = samples.back();
  return result;
}

}  // namespace leapme
