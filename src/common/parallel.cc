#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <limits>

namespace leapme {

namespace {

/// Set while the current thread executes chunks of a pool job; nested
/// ParallelFor calls observe it and run inline instead of re-entering the
/// pool (which would deadlock on the submission lock).
thread_local bool tls_in_parallel_job = false;

}  // namespace

/// Shared state of one ParallelFor invocation. Chunks are claimed from
/// `next` by atomic increment; `remaining` counts chunks not yet finished
/// (or abandoned), and reaching zero completes the job.
struct ThreadPool::Job {
  size_t begin = 0;
  size_t end = 0;
  size_t grain = 1;
  size_t num_chunks = 0;
  const std::function<void(size_t, size_t)>* fn = nullptr;

  std::atomic<size_t> next{0};
  std::atomic<size_t> remaining{0};
  std::atomic<bool> cancelled{false};
  /// Worker sign-up budget (excludes the submitting thread); workers that
  /// decrement it below zero sit the job out (per-call thread cap).
  std::atomic<ptrdiff_t> helpers_allowed{0};

  std::mutex mu;
  std::condition_variable done_cv;
  std::exception_ptr error;
  size_t error_chunk = std::numeric_limits<size_t>::max();
};

ThreadPool::ThreadPool(size_t threads) {
  if (threads < 1) threads = 1;
  workers_.reserve(threads - 1);
  for (size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    job_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
    if (shutdown_) return;
    seen = generation_;
    std::shared_ptr<Job> job = job_;
    lock.unlock();
    if (job != nullptr &&
        job->helpers_allowed.fetch_sub(1, std::memory_order_relaxed) > 0) {
      RunChunks(job.get());
    }
    lock.lock();
  }
}

void ThreadPool::RunChunks(Job* job) {
  const bool saved = tls_in_parallel_job;
  tls_in_parallel_job = true;
  for (;;) {
    const size_t chunk = job->next.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= job->num_chunks) break;
    if (!job->cancelled.load(std::memory_order_acquire)) {
      const size_t chunk_begin = job->begin + chunk * job->grain;
      const size_t chunk_end = std::min(chunk_begin + job->grain, job->end);
      try {
        (*job->fn)(chunk_begin, chunk_end);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(job->mu);
          if (chunk < job->error_chunk) {
            job->error_chunk = chunk;
            job->error = std::current_exception();
          }
        }
        job->cancelled.store(true, std::memory_order_release);
      }
    }
    if (job->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last chunk: wake the submitter. Taking job->mu orders the notify
      // after the submitter enters its wait (or it sees remaining == 0).
      std::lock_guard<std::mutex> lock(job->mu);
      job->done_cv.notify_all();
    }
  }
  tls_in_parallel_job = saved;
}

void ThreadPool::RunInline(size_t begin, size_t end, size_t grain,
                           const std::function<void(size_t, size_t)>& fn) {
  for (size_t chunk_begin = begin; chunk_begin < end; chunk_begin += grain) {
    fn(chunk_begin, std::min(chunk_begin + grain, end));
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             size_t max_threads,
                             const std::function<void(size_t, size_t)>& fn) {
  if (end <= begin) return;
  if (grain < 1) grain = 1;
  const size_t n = end - begin;
  const size_t num_chunks = (n + grain - 1) / grain;
  size_t width = thread_count();
  if (max_threads > 0) width = std::min(width, max_threads);
  if (tls_in_parallel_job || num_chunks <= 1 || width <= 1 ||
      workers_.empty()) {
    RunInline(begin, end, grain, fn);
    return;
  }

  auto job = std::make_shared<Job>();
  job->begin = begin;
  job->end = end;
  job->grain = grain;
  job->num_chunks = num_chunks;
  job->fn = &fn;
  job->remaining.store(num_chunks, std::memory_order_relaxed);
  job->helpers_allowed.store(static_cast<ptrdiff_t>(width) - 1,
                             std::memory_order_relaxed);

  // One job at a time: a second user thread submitting concurrently waits
  // here until the pool is free (nested calls never reach this point).
  std::lock_guard<std::mutex> submit(submit_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
    ++generation_;
  }
  job_cv_.notify_all();

  RunChunks(job.get());
  {
    std::unique_lock<std::mutex> lock(job->mu);
    job->done_cv.wait(lock, [&] {
      return job->remaining.load(std::memory_order_acquire) == 0;
    });
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = nullptr;
  }
  if (job->error) std::rethrow_exception(job->error);
}

namespace {

std::mutex g_pool_mu;
std::shared_ptr<ThreadPool> g_pool;
size_t g_configured_threads = 0;  // 0 = DefaultThreadCount()

size_t ResolvedThreadCount() {
  return g_configured_threads > 0 ? g_configured_threads
                                  : DefaultThreadCount();
}

}  // namespace

size_t DefaultThreadCount() {
  const char* env = std::getenv("LEAPME_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<size_t>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

void SetGlobalThreadCount(size_t threads) {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  g_configured_threads = threads;
  if (g_pool != nullptr && g_pool->thread_count() != ResolvedThreadCount()) {
    // Drop our reference; threads still running jobs on the old pool keep
    // it alive through their own shared_ptr until they finish.
    g_pool.reset();
  }
}

size_t GlobalThreadCount() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  return g_pool != nullptr ? g_pool->thread_count() : ResolvedThreadCount();
}

std::shared_ptr<ThreadPool> GlobalThreadPool() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (g_pool == nullptr) {
    g_pool = std::make_shared<ThreadPool>(ResolvedThreadCount());
  }
  return g_pool;
}

void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn) {
  ParallelFor(begin, end, grain, /*max_threads=*/0, fn);
}

void ParallelFor(size_t begin, size_t end, size_t grain, size_t max_threads,
                 const std::function<void(size_t, size_t)>& fn) {
  if (end <= begin) return;
  if (grain < 1) grain = 1;
  // Avoid starting the pool at all for work that runs inline anyway.
  if (tls_in_parallel_job || max_threads == 1 || end - begin <= grain) {
    for (size_t chunk_begin = begin; chunk_begin < end; chunk_begin += grain) {
      fn(chunk_begin, std::min(chunk_begin + grain, end));
    }
    return;
  }
  GlobalThreadPool()->ParallelFor(begin, end, grain, max_threads, fn);
}

Status ParallelForStatus(size_t begin, size_t end, size_t grain,
                         const std::function<Status(size_t, size_t)>& fn,
                         size_t max_threads) {
  if (grain < 1) grain = 1;
  std::mutex mu;
  Status first = Status::OK();
  size_t first_chunk = std::numeric_limits<size_t>::max();
  std::atomic<bool> failed{false};
  ParallelFor(begin, end, grain, max_threads,
              [&](size_t chunk_begin, size_t chunk_end) {
                if (failed.load(std::memory_order_acquire)) return;
                Status status = fn(chunk_begin, chunk_end);
                if (status.ok()) return;
                std::lock_guard<std::mutex> lock(mu);
                const size_t chunk = (chunk_begin - begin) / grain;
                if (chunk < first_chunk) {
                  first_chunk = chunk;
                  first = std::move(status);
                }
                failed.store(true, std::memory_order_release);
              });
  return first;
}

}  // namespace leapme
