#include "common/signal.h"

#include <csignal>
#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <mutex>

namespace leapme {
namespace {

std::atomic<bool> g_shutdown_requested{false};
std::atomic<bool> g_reload_requested{false};
// Self-pipe; write end is used from the signal handler, so both fds are
// plain ints set up once and never closed.
std::atomic<int> g_pipe_read{-1};
std::atomic<int> g_pipe_write{-1};

void WakeSignalPipe() {
  const int fd = g_pipe_write.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    // A full pipe already wakes the poller; ignore the result.
    [[maybe_unused]] ssize_t n = ::write(fd, &byte, 1);
  }
}

void OnShutdownSignal(int /*signum*/) {
  g_shutdown_requested.store(true, std::memory_order_relaxed);
  WakeSignalPipe();
}

void OnReloadSignal(int /*signum*/) {
  g_reload_requested.store(true, std::memory_order_relaxed);
  WakeSignalPipe();
}

void InstallOnce() {
  static std::once_flag once;
  std::call_once(once, [] {
    int fds[2];
    if (::pipe(fds) != 0) {
      return;
    }
    // Non-blocking read end: pollers drain the pipe after a wakeup (the
    // shutdown/reload flags, not the bytes, carry the event), and a
    // drain must never park the loop.
    ::fcntl(fds[0], F_SETFL, ::fcntl(fds[0], F_GETFL) | O_NONBLOCK);
    g_pipe_read.store(fds[0], std::memory_order_relaxed);
    g_pipe_write.store(fds[1], std::memory_order_relaxed);
    struct sigaction action = {};
    action.sa_handler = OnShutdownSignal;
    sigemptyset(&action.sa_mask);
    action.sa_flags = SA_RESTART;
    ::sigaction(SIGINT, &action, nullptr);
    ::sigaction(SIGTERM, &action, nullptr);
  });
}

}  // namespace

int ShutdownSignalFd() {
  InstallOnce();
  return g_pipe_read.load(std::memory_order_relaxed);
}

bool ShutdownRequested() {
  return g_shutdown_requested.load(std::memory_order_relaxed);
}

void RequestShutdown() {
  InstallOnce();
  OnShutdownSignal(SIGTERM);
}

void InstallReloadSignalHandler() {
  InstallOnce();
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction action = {};
    action.sa_handler = OnReloadSignal;
    sigemptyset(&action.sa_mask);
    action.sa_flags = SA_RESTART;
    ::sigaction(SIGHUP, &action, nullptr);
  });
}

bool ConsumeReloadRequest() {
  return g_reload_requested.exchange(false, std::memory_order_relaxed);
}

void RequestReload() {
  InstallOnce();
  OnReloadSignal(SIGHUP);
}

}  // namespace leapme
