#ifndef LEAPME_COMMON_KERNELS_ALIGNED_H_
#define LEAPME_COMMON_KERNELS_ALIGNED_H_

#include <cstddef>
#include <new>
#include <vector>

namespace leapme::kernels {

/// Cache-line alignment used for all dense numeric storage. 64 bytes
/// covers both the cache-line size and the widest vector unit the kernel
/// layer dispatches to (32-byte AVX2 lanes), so a kernel may assume a
/// buffer's first element never straddles a vector boundary.
inline constexpr size_t kStorageAlignment = 64;

/// Minimal aligned allocator for std::vector-backed numeric buffers.
/// Allocations come from the C++17 aligned operator new, so they satisfy
/// `Alignment` even when it exceeds __STDCPP_DEFAULT_NEW_ALIGNMENT__.
template <typename T, size_t Alignment = kStorageAlignment>
class AlignedAllocator {
 public:
  static_assert(Alignment >= alignof(T),
                "Alignment must be at least the type's natural alignment");
  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  explicit AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }

  void deallocate(T* p, size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

/// 64-byte-aligned float buffer; drop-in std::vector<float> replacement
/// for dense numeric storage (nn::Matrix, kernel scratch buffers).
using AlignedFloatVector = std::vector<float, AlignedAllocator<float>>;

}  // namespace leapme::kernels

#endif  // LEAPME_COMMON_KERNELS_ALIGNED_H_
