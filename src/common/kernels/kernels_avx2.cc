// AVX2 kernel implementations. This translation unit is compiled with
// -mavx2 -ffp-contract=off (see src/common/CMakeLists.txt); nothing in it
// executes unless the dispatcher in kernels.cc selected the AVX2 path,
// which it only does after __builtin_cpu_supports confirms AVX2+FMA.
//
// Bit-parity with the scalar path comes from construction, not testing
// luck: the 8-wide loops accumulate element i into vector lane i mod 8 —
// exactly the scalar path's canonical lane assignment — remainders and
// the lane-combine tree run through the very same inline helpers
// (kernels_internal.h), and contraction is disabled so _mm256_mul_ps +
// _mm256_add_ps can never silently become a fused multiply-add.

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "common/kernels/kernels.h"
#include "common/kernels/kernels_internal.h"

namespace leapme::kernels {
namespace internal {

namespace {

/// Spills a lane accumulator, folds in the [n8, n) remainder, combines.
float FinishDot(__m256 acc, const float* a, const float* b, size_t n8,
                size_t n) {
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, acc);
  DotTail(a, b, n8, n, lanes);
  return ReduceLanes8(lanes);
}

float DotAvx2(const float* a, const float* b, size_t n) {
  __m256 acc = _mm256_setzero_ps();
  const size_t n8 = n & ~size_t{7};
  for (size_t i = 0; i < n8; i += 8) {
    acc = _mm256_add_ps(
        acc, _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  return FinishDot(acc, a, b, n8, n);
}

void Dot3Avx2(const float* a, const float* b, size_t n, float out[3]) {
  __m256 acc_ab = _mm256_setzero_ps();
  __m256 acc_aa = _mm256_setzero_ps();
  __m256 acc_bb = _mm256_setzero_ps();
  const size_t n8 = n & ~size_t{7};
  for (size_t i = 0; i < n8; i += 8) {
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256 vb = _mm256_loadu_ps(b + i);
    acc_ab = _mm256_add_ps(acc_ab, _mm256_mul_ps(va, vb));
    acc_aa = _mm256_add_ps(acc_aa, _mm256_mul_ps(va, va));
    acc_bb = _mm256_add_ps(acc_bb, _mm256_mul_ps(vb, vb));
  }
  out[0] = FinishDot(acc_ab, a, b, n8, n);
  out[1] = FinishDot(acc_aa, a, a, n8, n);
  out[2] = FinishDot(acc_bb, b, b, n8, n);
}

float SquaredL2Avx2(const float* a, const float* b, size_t n) {
  __m256 acc = _mm256_setzero_ps();
  const size_t n8 = n & ~size_t{7};
  for (size_t i = 0; i < n8; i += 8) {
    const __m256 diff =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc = _mm256_add_ps(acc, _mm256_mul_ps(diff, diff));
  }
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, acc);
  SquaredL2Tail(a, b, n8, n, lanes);
  return ReduceLanes8(lanes);
}

void AxpyAvx2(float alpha, const float* x, float* y, size_t n) {
  const __m256 valpha = _mm256_set1_ps(alpha);
  const size_t n8 = n & ~size_t{7};
  for (size_t i = 0; i < n8; i += 8) {
    const __m256 vy = _mm256_add_ps(
        _mm256_loadu_ps(y + i),
        _mm256_mul_ps(valpha, _mm256_loadu_ps(x + i)));
    _mm256_storeu_ps(y + i, vy);
  }
  for (size_t i = n8; i < n; ++i) {
    y[i] += alpha * x[i];
  }
}

void AddAvx2(const float* x, float* y, size_t n) {
  const size_t n8 = n & ~size_t{7};
  for (size_t i = 0; i < n8; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), _mm256_loadu_ps(x + i)));
  }
  for (size_t i = n8; i < n; ++i) {
    y[i] += x[i];
  }
}

void ScaleAvx2(float alpha, float* x, size_t n) {
  const __m256 valpha = _mm256_set1_ps(alpha);
  const size_t n8 = n & ~size_t{7};
  for (size_t i = 0; i < n8; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(valpha, _mm256_loadu_ps(x + i)));
  }
  for (size_t i = n8; i < n; ++i) {
    x[i] *= alpha;
  }
}

void SubAvx2(const float* a, const float* b, float* out, size_t n) {
  const size_t n8 = n & ~size_t{7};
  for (size_t i = 0; i < n8; i += 8) {
    _mm256_storeu_ps(
        out + i,
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (size_t i = n8; i < n; ++i) {
    out[i] = a[i] - b[i];
  }
}

void AbsDiffAvx2(const float* a, const float* b, float* out, size_t n) {
  // |x| = clear the sign bit — identical to std::fabs for every input,
  // including NaNs (payload preserved) and -0.0f.
  const __m256 abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  const size_t n8 = n & ~size_t{7};
  for (size_t i = 0; i < n8; i += 8) {
    const __m256 diff =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    _mm256_storeu_ps(out + i, _mm256_and_ps(diff, abs_mask));
  }
  for (size_t i = n8; i < n; ++i) {
    out[i] = std::fabs(a[i] - b[i]);
  }
}

void StandardizeAvx2(const float* mean, const float* stddev, float* row,
                     size_t n) {
  const size_t n8 = n & ~size_t{7};
  for (size_t i = 0; i < n8; i += 8) {
    const __m256 centered =
        _mm256_sub_ps(_mm256_loadu_ps(row + i), _mm256_loadu_ps(mean + i));
    _mm256_storeu_ps(row + i,
                     _mm256_div_ps(centered, _mm256_loadu_ps(stddev + i)));
  }
  for (size_t i = n8; i < n; ++i) {
    row[i] = (row[i] - mean[i]) / stddev[i];
  }
}

void MomentsAvx2(const float* row, double* sum, double* sum_sq, size_t n) {
  const size_t n4 = n & ~size_t{3};
  for (size_t i = 0; i < n4; i += 4) {
    const __m256d values = _mm256_cvtps_pd(_mm_loadu_ps(row + i));
    _mm256_storeu_pd(sum + i,
                     _mm256_add_pd(_mm256_loadu_pd(sum + i), values));
    _mm256_storeu_pd(
        sum_sq + i,
        _mm256_add_pd(_mm256_loadu_pd(sum_sq + i),
                      _mm256_mul_pd(values, values)));
  }
  for (size_t i = n4; i < n; ++i) {
    sum[i] += row[i];
    sum_sq[i] += static_cast<double>(row[i]) * row[i];
  }
}

double DotF32F64Avx2(const float* x, const double* w, size_t n) {
  __m256d acc = _mm256_setzero_pd();
  const size_t n4 = n & ~size_t{3};
  for (size_t i = 0; i < n4; i += 4) {
    const __m256d values = _mm256_cvtps_pd(_mm_loadu_ps(x + i));
    acc = _mm256_add_pd(acc,
                        _mm256_mul_pd(_mm256_loadu_pd(w + i), values));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  for (size_t i = n4; i < n; ++i) {
    lanes[i - n4] += w[i] * static_cast<double>(x[i]);
  }
  return ReduceLanes4(lanes);
}

void AxpyF32F64Avx2(double alpha, const float* x, double* y, size_t n) {
  const __m256d valpha = _mm256_set1_pd(alpha);
  const size_t n4 = n & ~size_t{3};
  for (size_t i = 0; i < n4; i += 4) {
    const __m256d values = _mm256_cvtps_pd(_mm_loadu_ps(x + i));
    _mm256_storeu_pd(y + i,
                     _mm256_add_pd(_mm256_loadu_pd(y + i),
                                   _mm256_mul_pd(valpha, values)));
  }
  for (size_t i = n4; i < n; ++i) {
    y[i] += alpha * static_cast<double>(x[i]);
  }
}

/// B rows per cache block of the blocked a*b^T. At the paper's 300-d
/// feature width a block is 64 * 300 * 4B = 75 KiB — comfortably L2
/// resident while the i-loop streams every A row over it.
constexpr size_t kGemmTbJTile = 64;

void GemmTbAvx2(const float* a, const float* b, float* out, size_t rows,
                size_t k, size_t m) {
  const size_t k8 = k & ~size_t{7};
  for (size_t j0 = 0; j0 < m; j0 += kGemmTbJTile) {
    const size_t j1 = std::min(m, j0 + kGemmTbJTile);
    size_t i = 0;
    // 2x4 register tile: 8 independent lane accumulators (one ymm per
    // output element) + 2 A vectors + 1 B vector = 11 of 16 ymm regs.
    for (; i + 2 <= rows; i += 2) {
      const float* a0 = a + i * k;
      const float* a1 = a0 + k;
      float* out0 = out + i * m;
      float* out1 = out0 + m;
      size_t j = j0;
      for (; j + 4 <= j1; j += 4) {
        const float* b0 = b + j * k;
        const float* b1 = b0 + k;
        const float* b2 = b1 + k;
        const float* b3 = b2 + k;
        __m256 acc00 = _mm256_setzero_ps();
        __m256 acc01 = _mm256_setzero_ps();
        __m256 acc02 = _mm256_setzero_ps();
        __m256 acc03 = _mm256_setzero_ps();
        __m256 acc10 = _mm256_setzero_ps();
        __m256 acc11 = _mm256_setzero_ps();
        __m256 acc12 = _mm256_setzero_ps();
        __m256 acc13 = _mm256_setzero_ps();
        for (size_t kk = 0; kk < k8; kk += 8) {
          const __m256 va0 = _mm256_loadu_ps(a0 + kk);
          const __m256 va1 = _mm256_loadu_ps(a1 + kk);
          __m256 vb = _mm256_loadu_ps(b0 + kk);
          acc00 = _mm256_add_ps(acc00, _mm256_mul_ps(va0, vb));
          acc10 = _mm256_add_ps(acc10, _mm256_mul_ps(va1, vb));
          vb = _mm256_loadu_ps(b1 + kk);
          acc01 = _mm256_add_ps(acc01, _mm256_mul_ps(va0, vb));
          acc11 = _mm256_add_ps(acc11, _mm256_mul_ps(va1, vb));
          vb = _mm256_loadu_ps(b2 + kk);
          acc02 = _mm256_add_ps(acc02, _mm256_mul_ps(va0, vb));
          acc12 = _mm256_add_ps(acc12, _mm256_mul_ps(va1, vb));
          vb = _mm256_loadu_ps(b3 + kk);
          acc03 = _mm256_add_ps(acc03, _mm256_mul_ps(va0, vb));
          acc13 = _mm256_add_ps(acc13, _mm256_mul_ps(va1, vb));
        }
        out0[j] = FinishDot(acc00, a0, b0, k8, k);
        out0[j + 1] = FinishDot(acc01, a0, b1, k8, k);
        out0[j + 2] = FinishDot(acc02, a0, b2, k8, k);
        out0[j + 3] = FinishDot(acc03, a0, b3, k8, k);
        out1[j] = FinishDot(acc10, a1, b0, k8, k);
        out1[j + 1] = FinishDot(acc11, a1, b1, k8, k);
        out1[j + 2] = FinishDot(acc12, a1, b2, k8, k);
        out1[j + 3] = FinishDot(acc13, a1, b3, k8, k);
      }
      for (; j < j1; ++j) {
        const float* b_row = b + j * k;
        out0[j] = DotAvx2(a0, b_row, k);
        out1[j] = DotAvx2(a1, b_row, k);
      }
    }
    if (i < rows) {
      const float* a0 = a + i * k;
      float* out0 = out + i * m;
      for (size_t j = j0; j < j1; ++j) {
        out0[j] = DotAvx2(a0, b + j * k, k);
      }
    }
  }
}

uint32_t TagProbe16Sse(const uint8_t* tags, uint8_t tag) {
  const __m128i line = _mm_loadu_si128(reinterpret_cast<const __m128i*>(tags));
  const __m128i needle = _mm_set1_epi8(static_cast<char>(tag));
  const int mask = _mm_movemask_epi8(_mm_cmpeq_epi8(line, needle));
  return static_cast<uint32_t>(mask);
}

}  // namespace

const KernelTable& Avx2KernelsUnchecked() {
  static constexpr KernelTable kTable = {
      "avx2",         DotAvx2,         Dot3Avx2,    SquaredL2Avx2,
      AxpyAvx2,       AddAvx2,         ScaleAvx2,   SubAvx2,
      AbsDiffAvx2,    StandardizeAvx2, MomentsAvx2, DotF32F64Avx2,
      AxpyF32F64Avx2, GemmTbAvx2,      TagProbe16Sse,
  };
  return kTable;
}

}  // namespace internal
}  // namespace leapme::kernels

#endif  // defined(__x86_64__) || defined(__i386__)
