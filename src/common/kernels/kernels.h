#ifndef LEAPME_COMMON_KERNELS_KERNELS_H_
#define LEAPME_COMMON_KERNELS_KERNELS_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>

namespace leapme::kernels {

/// The vectorized kernel layer: every dense float inner loop in the
/// library (embedding similarity, feature assembly, scaler, classifiers,
/// the MLP's GEMMs) runs through one of these kernels. An implementation
/// is chosen once at startup — AVX2 when the CPU supports AVX2+FMA,
/// scalar otherwise, overridable with LEAPME_KERNEL=scalar|avx2 — and
/// both implementations produce bit-identical results.
///
/// # The canonical reduction-order contract
///
/// All dot-style reductions (`dot`, `dot3`, `squared_l2`) accumulate in
/// **8 lanes with stride 8**: element i contributes to lane (i mod 8),
/// lanes are filled in ascending i, and the 8 partial sums are combined
/// in the fixed tree
///
///     ((l0+l4) + (l2+l6)) + ((l1+l5) + (l3+l7))
///
/// which is exactly the shape of an AVX2 horizontal add (fold the high
/// 128-bit half onto the low, then pairwise). Double-precision
/// reductions (`dot_f32_f64`) use the 4-lane analogue
/// ((l0+l2) + (l1+l3)). The scalar implementation executes the same lane
/// assignment and the same combine tree, and both implementations are
/// compiled with -ffp-contract=off (no fused multiply-add anywhere), so
/// scalar and AVX2 paths — and therefore every machine and every
/// LEAPME_KERNEL setting — produce identical bits. Elementwise kernels
/// (axpy, scale, add, sub, abs_diff, standardize, moments) are trivially
/// order-preserving. This is what keeps PR 1's thread-count determinism
/// and the 17-digit model round-trip intact underneath SIMD: reductions
/// are deterministic by construction, not by luck of the autovectorizer.
struct KernelTable {
  /// Dispatch-path name as reported in serve stats and bench JSON:
  /// "scalar" or "avx2".
  const char* name;

  /// Canonical 8-lane dot product: sum a[i]*b[i].
  float (*dot)(const float* a, const float* b, size_t n);

  /// One-pass fused dot products for cosine similarity:
  /// out = {sum a*b, sum a*a, sum b*b}, each in canonical order
  /// (bit-identical to three separate `dot` calls).
  void (*dot3)(const float* a, const float* b, size_t n, float out[3]);

  /// Canonical 8-lane squared Euclidean distance: sum (a[i]-b[i])^2.
  float (*squared_l2)(const float* a, const float* b, size_t n);

  /// y[i] += alpha * x[i].
  void (*axpy)(float alpha, const float* x, float* y, size_t n);

  /// y[i] += x[i].
  void (*add)(const float* x, float* y, size_t n);

  /// x[i] *= alpha.
  void (*scale)(float alpha, float* x, size_t n);

  /// out[i] = a[i] - b[i].
  void (*sub)(const float* a, const float* b, float* out, size_t n);

  /// out[i] = |a[i] - b[i]|.
  void (*abs_diff)(const float* a, const float* b, float* out, size_t n);

  /// row[i] = (row[i] - mean[i]) / stddev[i]. Callers pre-clamp stddev.
  void (*standardize)(const float* mean, const float* stddev, float* row,
                      size_t n);

  /// Column-moment accumulation for scaler fitting:
  /// sum[i] += row[i]; sum_sq[i] += double(row[i]) * row[i].
  void (*moments)(const float* row, double* sum, double* sum_sq, size_t n);

  /// Canonical 4-lane double-precision dot of a float vector against
  /// double weights: sum w[i] * x[i] (used by the logistic classifier).
  double (*dot_f32_f64)(const float* x, const double* w, size_t n);

  /// y[i] += alpha * x[i] with double accumulators over a float row
  /// (logistic-regression gradient update).
  void (*axpy_f32_f64)(double alpha, const float* x, double* y, size_t n);

  /// Blocked a * b^T: for i in [0, rows), j in [0, m):
  ///   out[i*m + j] = canonical dot of a row i (stride k) and b row j
  /// (stride k). The AVX2 implementation register-tiles 2x4 outputs and
  /// cache-blocks over b rows; per-element reduction order is canonical
  /// regardless of tiling, so every implementation and block size agrees
  /// bit for bit.
  void (*gemm_tb)(const float* a, const float* b, float* out, size_t rows,
                  size_t k, size_t m);

  /// Probes one 16-byte cache-bucket tag line: returns a bitmask whose
  /// bit i is set iff tags[i] == tag (bits 16..31 always clear). Integer
  /// byte compares have no rounding, so scalar and SIMD paths are
  /// identical by construction; the parity suite still exercises both.
  /// Used by the sharded concurrent cache (src/common/cache/) to match
  /// an 8-bit hash tag against a bucket's slots in one compare.
  uint32_t (*tag_probe16)(const uint8_t* tags, uint8_t tag);
};

/// The portable implementation (canonical order, no SIMD intrinsics).
/// Always available; also the reference the parity suite tests against.
const KernelTable& ScalarKernels();

/// The AVX2+FMA-gated implementation, or nullptr when the CPU lacks
/// AVX2/FMA support. (The kernels themselves use no FMA — see the
/// contract above — but FMA presence is part of the dispatch gate so
/// "avx2" consistently means a modern 256-bit core.)
const KernelTable* Avx2Kernels();

/// The table chosen at startup: LEAPME_KERNEL=scalar|avx2 when set (an
/// avx2 request on unsupported hardware logs a warning and falls back to
/// scalar), otherwise AVX2 when supported, else scalar. The choice is
/// made once and never changes.
const KernelTable& Active();

/// Name of the active dispatch path ("scalar" | "avx2") for stats and
/// bench reports.
inline const char* ActiveKernelName() { return Active().name; }

// ---------------------------------------------------------------------------
// Convenience wrappers over the active table.

inline float Dot(std::span<const float> a, std::span<const float> b) {
  return Active().dot(a.data(), b.data(), a.size());
}

inline float SquaredL2(std::span<const float> a, std::span<const float> b) {
  return Active().squared_l2(a.data(), b.data(), a.size());
}

inline float Norm(std::span<const float> a) {
  return std::sqrt(Active().dot(a.data(), a.data(), a.size()));
}

inline void Axpy(float alpha, std::span<const float> x, std::span<float> y) {
  Active().axpy(alpha, x.data(), y.data(), y.size());
}

inline void Add(std::span<const float> x, std::span<float> y) {
  Active().add(x.data(), y.data(), y.size());
}

inline void Scale(float alpha, std::span<float> x) {
  Active().scale(alpha, x.data(), x.size());
}

/// Combines the three dot products of `dot3` into a cosine similarity,
/// reproducing Dot/(Norm*Norm) including the all-zero guard.
inline float CosineFromDots(float dot_ab, float dot_aa, float dot_bb) {
  const float norm_a = std::sqrt(dot_aa);
  const float norm_b = std::sqrt(dot_bb);
  if (norm_a == 0.0f || norm_b == 0.0f) return 0.0f;
  return dot_ab / (norm_a * norm_b);
}

}  // namespace leapme::kernels

#endif  // LEAPME_COMMON_KERNELS_KERNELS_H_
