// Portable kernel implementations in the canonical reduction order.
// Compiled with -ffp-contract=off (see src/common/CMakeLists.txt) so the
// compiler can neither fuse multiply-adds nor otherwise reassociate —
// what is written here is the bit-level contract the AVX2 path must
// reproduce. The 8-lane loops are written so the autovectorizer may
// still use SSE on the lane arrays (elementwise over lanes, which
// preserves per-lane order exactly).

#include <cmath>
#include <cstddef>

#include "common/kernels/kernels.h"
#include "common/kernels/kernels_internal.h"

namespace leapme::kernels {

namespace {

using internal::DotTail;
using internal::ReduceLanes4;
using internal::ReduceLanes8;
using internal::SquaredL2Tail;

float DotScalar(const float* a, const float* b, size_t n) {
  float lanes[8] = {};
  const size_t n8 = n & ~size_t{7};
  for (size_t i = 0; i < n8; i += 8) {
    for (size_t l = 0; l < 8; ++l) {
      lanes[l] += a[i + l] * b[i + l];
    }
  }
  DotTail(a, b, n8, n, lanes);
  return ReduceLanes8(lanes);
}

void Dot3Scalar(const float* a, const float* b, size_t n, float out[3]) {
  float ab[8] = {};
  float aa[8] = {};
  float bb[8] = {};
  const size_t n8 = n & ~size_t{7};
  for (size_t i = 0; i < n8; i += 8) {
    for (size_t l = 0; l < 8; ++l) {
      ab[l] += a[i + l] * b[i + l];
      aa[l] += a[i + l] * a[i + l];
      bb[l] += b[i + l] * b[i + l];
    }
  }
  DotTail(a, b, n8, n, ab);
  DotTail(a, a, n8, n, aa);
  DotTail(b, b, n8, n, bb);
  out[0] = ReduceLanes8(ab);
  out[1] = ReduceLanes8(aa);
  out[2] = ReduceLanes8(bb);
}

float SquaredL2Scalar(const float* a, const float* b, size_t n) {
  float lanes[8] = {};
  const size_t n8 = n & ~size_t{7};
  for (size_t i = 0; i < n8; i += 8) {
    for (size_t l = 0; l < 8; ++l) {
      const float diff = a[i + l] - b[i + l];
      lanes[l] += diff * diff;
    }
  }
  SquaredL2Tail(a, b, n8, n, lanes);
  return ReduceLanes8(lanes);
}

void AxpyScalar(float alpha, const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    y[i] += alpha * x[i];
  }
}

void AddScalar(const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    y[i] += x[i];
  }
}

void ScaleScalar(float alpha, float* x, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    x[i] *= alpha;
  }
}

void SubScalar(const float* a, const float* b, float* out, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = a[i] - b[i];
  }
}

void AbsDiffScalar(const float* a, const float* b, float* out, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = std::fabs(a[i] - b[i]);
  }
}

void StandardizeScalar(const float* mean, const float* stddev, float* row,
                       size_t n) {
  for (size_t i = 0; i < n; ++i) {
    row[i] = (row[i] - mean[i]) / stddev[i];
  }
}

void MomentsScalar(const float* row, double* sum, double* sum_sq, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    sum[i] += row[i];
    sum_sq[i] += static_cast<double>(row[i]) * row[i];
  }
}

double DotF32F64Scalar(const float* x, const double* w, size_t n) {
  double lanes[4] = {};
  const size_t n4 = n & ~size_t{3};
  for (size_t i = 0; i < n4; i += 4) {
    for (size_t l = 0; l < 4; ++l) {
      lanes[l] += w[i + l] * static_cast<double>(x[i + l]);
    }
  }
  for (size_t i = n4; i < n; ++i) {
    lanes[i - n4] += w[i] * static_cast<double>(x[i]);
  }
  return ReduceLanes4(lanes);
}

void AxpyF32F64Scalar(double alpha, const float* x, double* y, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    y[i] += alpha * static_cast<double>(x[i]);
  }
}

uint32_t TagProbe16Scalar(const uint8_t* tags, uint8_t tag) {
  uint32_t mask = 0;
  for (size_t i = 0; i < 16; ++i) {
    mask |= static_cast<uint32_t>(tags[i] == tag) << i;
  }
  return mask;
}

void GemmTransposeBScalar(const float* a, const float* b, float* out,
                          size_t rows, size_t k, size_t m) {
  for (size_t i = 0; i < rows; ++i) {
    const float* a_row = a + i * k;
    float* out_row = out + i * m;
    for (size_t j = 0; j < m; ++j) {
      out_row[j] = DotScalar(a_row, b + j * k, k);
    }
  }
}

}  // namespace

const KernelTable& ScalarKernels() {
  static constexpr KernelTable kTable = {
      "scalar",         DotScalar,         Dot3Scalar,    SquaredL2Scalar,
      AxpyScalar,       AddScalar,         ScaleScalar,   SubScalar,
      AbsDiffScalar,    StandardizeScalar, MomentsScalar, DotF32F64Scalar,
      AxpyF32F64Scalar, GemmTransposeBScalar, TagProbe16Scalar,
  };
  return kTable;
}

}  // namespace leapme::kernels
