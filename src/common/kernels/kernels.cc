// Runtime kernel dispatch. The table is chosen exactly once, on the
// first call to Active(): LEAPME_KERNEL=scalar|avx2 when set, otherwise
// AVX2 iff the CPU reports AVX2 and FMA via cpuid. This translation unit
// is compiled without -mavx2, so probing and falling back is always safe;
// AVX2 instructions live only behind the function pointers of the table
// returned by internal::Avx2KernelsUnchecked().

#include "common/kernels/kernels.h"

#include <cstdlib>
#include <cstring>

#include "common/kernels/kernels_internal.h"
#include "common/logging.h"

namespace leapme::kernels {

namespace {

bool CpuHasAvx2Fma() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

const KernelTable* ChooseTable() {
  const KernelTable* avx2 = Avx2Kernels();
  const char* env = std::getenv("LEAPME_KERNEL");
  if (env != nullptr && *env != '\0') {
    if (std::strcmp(env, "scalar") == 0) {
      return &ScalarKernels();
    }
    if (std::strcmp(env, "avx2") == 0) {
      if (avx2 != nullptr) return avx2;
      LEAPME_LOG(Warning)
          << "LEAPME_KERNEL=avx2 requested but this CPU lacks AVX2+FMA; "
             "using the scalar kernels";
      return &ScalarKernels();
    }
    LEAPME_LOG(Warning) << "unknown LEAPME_KERNEL value '" << env
                        << "' (expected 'scalar' or 'avx2'); auto-detecting";
  }
  return avx2 != nullptr ? avx2 : &ScalarKernels();
}

}  // namespace

const KernelTable* Avx2Kernels() {
#if defined(__x86_64__) || defined(__i386__)
  if (CpuHasAvx2Fma()) return &internal::Avx2KernelsUnchecked();
#endif
  return nullptr;
}

const KernelTable& Active() {
  static const KernelTable* const table = ChooseTable();
  return *table;
}

}  // namespace leapme::kernels
