#ifndef LEAPME_COMMON_KERNELS_KERNELS_INTERNAL_H_
#define LEAPME_COMMON_KERNELS_KERNELS_INTERNAL_H_

#include <cstddef>

#include "common/kernels/kernels.h"

// Shared pieces of the canonical reduction order (see kernels.h), included
// by both the scalar and the AVX2 translation units so the lane-combine
// tree and the remainder handling are literally the same code on every
// dispatch path.

namespace leapme::kernels::internal {

/// Combines 8 partial sums in the canonical tree:
/// ((l0+l4) + (l2+l6)) + ((l1+l5) + (l3+l7)) — the shape of an AVX2
/// horizontal add (high half folded onto low, then pairwise).
inline float ReduceLanes8(const float lanes[8]) {
  const float t0 = lanes[0] + lanes[4];
  const float t1 = lanes[1] + lanes[5];
  const float t2 = lanes[2] + lanes[6];
  const float t3 = lanes[3] + lanes[7];
  return (t0 + t2) + (t1 + t3);
}

/// 4-lane double analogue: (l0+l2) + (l1+l3).
inline double ReduceLanes4(const double lanes[4]) {
  return (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
}

/// Remainder elements of a dot-style reduction: element i (i >= n8,
/// n8 = n rounded down to a multiple of 8) lands in lane i mod 8, which
/// equals i - n8 because n8 is a multiple of 8.
inline void DotTail(const float* a, const float* b, size_t n8, size_t n,
                    float lanes[8]) {
  for (size_t i = n8; i < n; ++i) {
    lanes[i - n8] += a[i] * b[i];
  }
}

inline void SquaredL2Tail(const float* a, const float* b, size_t n8, size_t n,
                          float lanes[8]) {
  for (size_t i = n8; i < n; ++i) {
    const float diff = a[i] - b[i];
    lanes[i - n8] += diff * diff;
  }
}

/// The AVX2 table without a CPU-support check, defined in
/// kernels_avx2.cc (compiled with -mavx2). Only the dispatcher in
/// kernels.cc may call this, after __builtin_cpu_supports gating; on
/// non-x86 builds it is absent and the dispatcher never references it.
#if defined(__x86_64__) || defined(__i386__)
const ::leapme::kernels::KernelTable& Avx2KernelsUnchecked();
#endif

}  // namespace leapme::kernels::internal

#endif  // LEAPME_COMMON_KERNELS_KERNELS_INTERNAL_H_
