#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace leapme {

std::string AsciiToLower(std::string_view text) {
  std::string result(text);
  for (char& c : result) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return result;
}

std::string AsciiToUpper(std::string_view text) {
  std::string result(text);
  for (char& c : result) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return result;
}

std::string_view StripAsciiWhitespace(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::vector<std::string> SplitString(std::string_view text, char delimiter) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(text.substr(start));
      break;
    }
    pieces.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return pieces;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> pieces;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) {
      pieces.emplace_back(text.substr(start, i - start));
    }
  }
  return pieces;
}

std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view separator) {
  std::string result;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) result.append(separator);
    result.append(pieces[i]);
  }
  return result;
}

std::optional<double> ParseDouble(std::string_view text) {
  std::string_view trimmed = StripAsciiWhitespace(text);
  if (trimmed.empty()) return std::nullopt;
  // strtod requires a NUL-terminated buffer.
  std::string buffer(trimmed);
  char* end = nullptr;
  errno = 0;
  double value = std::strtod(buffer.c_str(), &end);
  if (end != buffer.c_str() + buffer.size() || errno == ERANGE) {
    return std::nullopt;
  }
  return value;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string ReplaceAll(std::string_view text, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string result;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(from, start);
    if (pos == std::string_view::npos) {
      result.append(text.substr(start));
      break;
    }
    result.append(text.substr(start, pos - start));
    result.append(to);
    start = pos + from.size();
  }
  return result;
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string result;
  if (needed > 0) {
    result.resize(static_cast<size_t>(needed));
    std::vsnprintf(result.data(), result.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return result;
}

}  // namespace leapme
