#ifndef LEAPME_COMMON_DEADLINE_H_
#define LEAPME_COMMON_DEADLINE_H_

#include <algorithm>
#include <chrono>
#include <cstdint>

namespace leapme {

/// A point in monotonic time by which an operation must complete.
///
/// Deadlines are created once at the edge (when a request's first bytes
/// arrive) and threaded by value through every stage that works on the
/// request — read, batch admission, scoring, response write — so the
/// total budget is shared instead of being re-granted per stage. The
/// steady clock makes deadlines immune to wall-clock adjustments.
///
/// The default-constructed Deadline never expires, so existing call
/// sites that do not enforce one keep their behaviour.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// A deadline that never expires.
  Deadline() = default;

  /// Never expires (named form of the default).
  static Deadline Infinite() { return Deadline(); }

  /// Expires `budget_ms` milliseconds from now. A non-positive budget is
  /// already expired (useful for "fail fast" probes).
  static Deadline AfterMs(int64_t budget_ms) {
    Deadline deadline;
    deadline.infinite_ = false;
    deadline.at_ = Clock::now() + std::chrono::milliseconds(budget_ms);
    return deadline;
  }

  bool infinite() const { return infinite_; }

  bool expired() const { return !infinite_ && Clock::now() >= at_; }

  /// Remaining budget, clamped to >= 0. Only meaningful when finite.
  std::chrono::milliseconds remaining() const {
    if (infinite_) {
      return std::chrono::milliseconds::max();
    }
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        at_ - Clock::now());
    return std::max(left, std::chrono::milliseconds(0));
  }

  /// Timeout argument for poll(2): -1 (block forever) when infinite,
  /// otherwise the remaining budget in ms clamped to [0, INT_MAX].
  int PollTimeoutMs() const {
    if (infinite_) {
      return -1;
    }
    const int64_t ms = remaining().count();
    return static_cast<int>(std::min<int64_t>(ms, 2147483647));
  }

  /// The absolute expiry instant; only call when finite (callers branch
  /// on infinite() and use plain condition-variable waits otherwise,
  /// avoiding wait_until against time_point::max()).
  Clock::time_point time_point() const { return at_; }

 private:
  bool infinite_ = true;
  Clock::time_point at_{};
};

}  // namespace leapme

#endif  // LEAPME_COMMON_DEADLINE_H_
