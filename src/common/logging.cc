#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace leapme {

namespace {

LogSeverity g_min_severity = LogSeverity::kInfo;

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "D";
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

void SetMinLogSeverity(LogSeverity severity) { g_min_severity = severity; }

LogSeverity MinLogSeverity() { return g_min_severity; }

namespace internal_logging {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  stream_ << "[" << SeverityTag(severity) << " " << file << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= g_min_severity || severity_ == LogSeverity::kFatal) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace leapme
