#ifndef LEAPME_EVAL_LEAPME_ADAPTER_H_
#define LEAPME_EVAL_LEAPME_ADAPTER_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/pair_matcher.h"
#include "core/leapme.h"

namespace leapme::eval {

/// Adapts LeapmeMatcher to the PairMatcher interface so the experiment
/// runner can treat LEAPME and the baselines uniformly.
class LeapmeAdapter final : public baselines::PairMatcher {
 public:
  /// `model` must outlive the adapter. `display_name` appears in reports
  /// ("LEAPME", "LEAPME(emb)", "LEAPME(-emb)").
  LeapmeAdapter(const embedding::EmbeddingModel* model,
                core::LeapmeOptions options, std::string display_name)
      : matcher_(model, std::move(options)),
        display_name_(std::move(display_name)) {}

  std::string Name() const override { return display_name_; }
  bool IsSupervised() const override { return true; }

  Status Fit(const data::Dataset& dataset,
             const std::vector<data::LabeledPair>& training_pairs) override {
    return matcher_.Fit(dataset, training_pairs);
  }

  StatusOr<std::vector<int32_t>> ClassifyPairs(
      const std::vector<data::PropertyPair>& pairs) override {
    return matcher_.ClassifyPairs(pairs);
  }

  StatusOr<std::vector<double>> ScorePairs(
      const std::vector<data::PropertyPair>& pairs) override {
    return matcher_.ScorePairs(pairs);
  }

  core::LeapmeMatcher& matcher() { return matcher_; }

 private:
  core::LeapmeMatcher matcher_;
  std::string display_name_;
};

}  // namespace leapme::eval

#endif  // LEAPME_EVAL_LEAPME_ADAPTER_H_
