#include "eval/report.h"

#include <algorithm>

#include "common/string_util.h"

namespace leapme::eval {

void ResultsTable::AddApproach(const std::string& approach) {
  if (std::find(approaches_.begin(), approaches_.end(), approach) ==
      approaches_.end()) {
    approaches_.push_back(approach);
  }
}

void ResultsTable::AddResult(const std::string& section,
                             const std::string& row_key,
                             const std::string& approach,
                             const ml::MatchQuality& quality) {
  AddApproach(approach);
  RowId id{section, row_key};
  if (cells_.find(id) == cells_.end()) {
    row_order_.push_back(id);
  }
  cells_[id][approach] = quality;
}

std::string ResultsTable::Render() const {
  // Column widths: row header then P/R/F1 per approach.
  size_t header_width = 24;
  for (const RowId& row : row_order_) {
    header_width = std::max(header_width,
                            row.section.size() + row.row_key.size() + 3);
  }

  std::string out;
  // Approach header line.
  out += StrFormat("%-*s", static_cast<int>(header_width), "");
  for (const std::string& approach : approaches_) {
    out += StrFormat("| %-20s ", approach.c_str());
  }
  out += "\n";
  out += StrFormat("%-*s", static_cast<int>(header_width), "");
  for (size_t i = 0; i < approaches_.size(); ++i) {
    out += StrFormat("| %-6s %-6s %-6s ", "P", "R", "F1");
  }
  out += "\n";
  out += std::string(header_width + approaches_.size() * 23, '-') + "\n";

  std::string last_section;
  for (const RowId& row : row_order_) {
    if (row.section != last_section) {
      out += "[" + row.section + "]\n";
      last_section = row.section;
    }
    const auto& row_cells = cells_.at(row);
    double best_f1 = -1.0;
    for (const auto& [approach, quality] : row_cells) {
      best_f1 = std::max(best_f1, quality.f1);
    }
    out += StrFormat("  %-*s", static_cast<int>(header_width - 2),
                     row.row_key.c_str());
    for (const std::string& approach : approaches_) {
      auto it = row_cells.find(approach);
      if (it == row_cells.end()) {
        out += StrFormat("| %-6s %-6s %-6s ", "-", "-", "-");
      } else {
        const ml::MatchQuality& q = it->second;
        const char* mark = (q.f1 >= best_f1 - 1e-9) ? "*" : "";
        out += StrFormat("| %-6.2f %-6.2f %.2f%-2s ", q.precision, q.recall,
                         q.f1, mark);
      }
    }
    out += "\n";
  }
  return out;
}

std::string ResultsTable::RenderCsv() const {
  std::string out = "section,row,approach,precision,recall,f1\n";
  for (const RowId& row : row_order_) {
    const auto& row_cells = cells_.at(row);
    for (const std::string& approach : approaches_) {
      auto it = row_cells.find(approach);
      if (it == row_cells.end()) continue;
      out += StrFormat("%s,%s,%s,%.4f,%.4f,%.4f\n", row.section.c_str(),
                       row.row_key.c_str(), approach.c_str(),
                       it->second.precision, it->second.recall,
                       it->second.f1);
    }
  }
  return out;
}

std::string ResultsTable::RenderJsonRows() const {
  std::string out = "[";
  bool first = true;
  for (const RowId& row : row_order_) {
    const auto& row_cells = cells_.at(row);
    for (const std::string& approach : approaches_) {
      auto it = row_cells.find(approach);
      if (it == row_cells.end()) continue;
      if (!first) out.push_back(',');
      first = false;
      out += StrFormat(
          "{\"section\":\"%s\",\"row\":\"%s\",\"approach\":\"%s\","
          "\"precision\":%.4f,\"recall\":%.4f,\"f1\":%.4f}",
          row.section.c_str(), row.row_key.c_str(), approach.c_str(),
          it->second.precision, it->second.recall, it->second.f1);
    }
  }
  out.push_back(']');
  return out;
}

}  // namespace leapme::eval
