#include "eval/experiment.h"

#include <algorithm>
#include <cstdlib>

#include "blocking/candidate_pipeline.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "data/splitting.h"

namespace leapme::eval {

namespace {

DatasetSpec MakeSpec(const std::string& name, const data::DomainSpec& domain,
                     data::GeneratorOptions generator, size_t embedding_dim,
                     uint64_t seed) {
  DatasetSpec spec;
  spec.name = name;
  spec.domain = &domain;
  generator.seed = seed;
  spec.generator = generator;
  spec.embedding.dimension = embedding_dim;
  spec.embedding.seed = seed ^ 0x5eedULL;
  // Hashed OOV vectors, not the zero vector: pre-trained GloVe covers 1.9M
  // words, so in the paper's setting two *different* unknown-ish words
  // almost never collide on the same vector. With our small synthetic
  // vocabulary the zero-vector policy would alias every out-of-vocabulary
  // word ("col_123" == "col_987"), an artifact real GloVe does not have.
  spec.embedding.oov_policy = embedding::OovPolicy::kHashedVector;
  // Bimodal cluster geometry mirroring pre-trained GloVe on product
  // vocabulary: most domain synonyms sit tightly together (well-modeled
  // common words), while a minority of jargon words land far from their
  // semantic field. The maverick tail is what fixed-threshold semantic
  // matchers (SemProp) lose recall on, and what the supervised combination
  // of embedding and instance features recovers.
  spec.embedding.intra_cluster_sigma = 0.3;
  spec.embedding.maverick_fraction = 0.18;
  return spec;
}

}  // namespace

std::vector<DatasetSpec> DefaultDatasetSpecs(EvalScale scale) {
  size_t camera_sources = 24;
  size_t camera_entities = 100;
  size_t small_sources = 10;
  size_t embedding_dim = 300;
  switch (scale) {
    case EvalScale::kPaper:
      break;
    case EvalScale::kBench:
      camera_sources = 12;
      camera_entities = 40;
      small_sources = 8;
      embedding_dim = 48;
      break;
    case EvalScale::kTest:
      camera_sources = 6;
      camera_entities = 12;
      small_sources = 5;
      embedding_dim = 16;
      break;
  }

  std::vector<DatasetSpec> specs;
  specs.push_back(MakeSpec(
      "cameras", data::CameraDomain(),
      data::HighQualityOptions(camera_sources, camera_entities),
      embedding_dim, 101));
  specs.push_back(MakeSpec("headphones", data::HeadphoneDomain(),
                           data::LowQualityOptions(small_sources),
                           embedding_dim, 202));
  specs.push_back(MakeSpec("phones", data::PhoneDomain(),
                           data::LowQualityOptions(small_sources),
                           embedding_dim, 303));
  specs.push_back(MakeSpec("tvs", data::TvDomain(),
                           data::LowQualityOptions(small_sources),
                           embedding_dim, 404));
  if (scale == EvalScale::kTest) {
    for (DatasetSpec& spec : specs) {
      spec.generator.min_entities_per_source =
          std::min<size_t>(spec.generator.min_entities_per_source, 8);
      spec.generator.max_entities_per_source =
          std::min<size_t>(spec.generator.max_entities_per_source, 16);
    }
  }
  return specs;
}

StatusOr<EvalDataset> BuildEvalDataset(const DatasetSpec& spec) {
  if (spec.domain == nullptr) {
    return Status::InvalidArgument("DatasetSpec has no domain");
  }
  EvalDataset result;
  LEAPME_ASSIGN_OR_RETURN(result.dataset,
                          data::GenerateCatalog(*spec.domain, spec.generator));
  LEAPME_ASSIGN_OR_RETURN(
      auto model, embedding::SyntheticEmbeddingModel::Build(
                      data::DomainClusters(*spec.domain), spec.embedding));
  result.model =
      std::make_unique<embedding::SyntheticEmbeddingModel>(std::move(model));
  return result;
}

StatusOr<EvaluationResult> EvaluateMatcher(const MatcherFactory& factory,
                                           const EvalDataset& eval_dataset,
                                           const EvaluationOptions& options) {
  if (options.repetitions == 0) {
    return Status::InvalidArgument("repetitions must be positive");
  }
  const data::Dataset& dataset = eval_dataset.dataset;

  // Two-step pipeline: blocking depends only on the dataset, never on the
  // split, so candidates are generated once up front and shared (sorted,
  // so per-repetition membership checks are binary searches).
  std::vector<data::PropertyPair> blocked;
  bool use_blocking = !options.blocking_spec.empty();
  if (use_blocking) {
    LEAPME_ASSIGN_OR_RETURN(
        std::unique_ptr<blocking::CandidatePipeline> pipeline,
        blocking::CandidatePipeline::Parse(options.blocking_spec,
                                           eval_dataset.model.get()));
    LEAPME_ASSIGN_OR_RETURN(blocked, pipeline->Candidates(dataset));
  }
  const auto pair_less = [](const data::PropertyPair& x,
                            const data::PropertyPair& y) {
    return x.a != y.a ? x.a < y.a : x.b < y.b;
  };
  const auto is_candidate = [&](const data::PropertyPair& pair) {
    return std::binary_search(blocked.begin(), blocked.end(), pair,
                              pair_less);
  };

  // Repetitions are independent: each derives its RNG from `seed + rep`
  // and writes only its own slot, so the fan-out cannot change metrics.
  const size_t reps = options.repetitions;
  EvaluationResult result;
  result.per_repetition.resize(reps);
  std::vector<size_t> train_counts(reps, 0);
  std::vector<size_t> test_counts(reps, 0);
  LEAPME_RETURN_IF_ERROR(ParallelForStatus(
      0, reps, /*grain=*/1,
      [&](size_t begin, size_t end) -> Status {
        for (size_t rep = begin; rep < end; ++rep) {
          Rng rng(options.seed + rep);
          data::SourceSplit split =
              data::SplitSources(dataset, options.train_fraction, rng);
          LEAPME_ASSIGN_OR_RETURN(
              std::vector<data::LabeledPair> training_pairs,
              data::BuildTrainingPairs(dataset, split.train_sources,
                                       options.negative_ratio, rng));
          std::vector<data::LabeledPair> test_pairs =
              data::BuildTestPairs(dataset, split.train_sources);
          if (test_pairs.empty()) {
            return Status::FailedPrecondition("no test pairs in split");
          }

          std::unique_ptr<baselines::PairMatcher> matcher =
              factory(*eval_dataset.model);
          if (matcher == nullptr) {
            return Status::InvalidArgument("matcher factory returned null");
          }
          LEAPME_RETURN_IF_ERROR(matcher->Fit(dataset, training_pairs));

          std::vector<data::PropertyPair> pairs;
          std::vector<int32_t> labels;
          pairs.reserve(test_pairs.size());
          labels.reserve(test_pairs.size());
          for (const data::LabeledPair& labeled : test_pairs) {
            pairs.push_back(labeled.pair);
            labels.push_back(labeled.label);
          }
          std::vector<int32_t> predictions;
          if (use_blocking) {
            // Classify only blocked candidates; a dropped test pair is a
            // predicted non-match, charging blocking misses to recall.
            std::vector<data::PropertyPair> to_classify;
            for (const data::PropertyPair& pair : pairs) {
              if (is_candidate(pair)) to_classify.push_back(pair);
            }
            LEAPME_ASSIGN_OR_RETURN(std::vector<int32_t> classified,
                                    matcher->ClassifyPairs(to_classify));
            predictions.assign(pairs.size(), 0);
            size_t next = 0;
            for (size_t i = 0; i < pairs.size(); ++i) {
              if (is_candidate(pairs[i])) predictions[i] = classified[next++];
            }
          } else {
            LEAPME_ASSIGN_OR_RETURN(predictions,
                                    matcher->ClassifyPairs(pairs));
          }
          result.per_repetition[rep] = ml::ComputeQuality(predictions, labels);
          train_counts[rep] = training_pairs.size();
          test_counts[rep] = test_pairs.size();
        }
        return Status::OK();
      },
      options.threads));
  result.mean = ml::MeanQuality(result.per_repetition);
  size_t total_train = 0;
  size_t total_test = 0;
  for (size_t rep = 0; rep < reps; ++rep) {
    total_train += train_counts[rep];
    total_test += test_counts[rep];
  }
  result.mean_training_pairs = total_train / reps;
  result.mean_test_pairs = total_test / reps;
  return result;
}

StatusOr<std::vector<EvaluationOutcome>> RunEvaluations(
    const std::vector<EvaluationTask>& tasks, size_t max_threads) {
  std::vector<EvaluationOutcome> outcomes(tasks.size());
  LEAPME_RETURN_IF_ERROR(ParallelForStatus(
      0, tasks.size(), /*grain=*/1,
      [&](size_t begin, size_t end) -> Status {
        for (size_t i = begin; i < end; ++i) {
          const EvaluationTask& task = tasks[i];
          if (task.dataset == nullptr) {
            return Status::InvalidArgument(
                StrFormat("evaluation task %zu has no dataset", i));
          }
          outcomes[i].dataset_name = task.dataset_name;
          outcomes[i].matcher_name = task.matcher_name;
          LEAPME_ASSIGN_OR_RETURN(
              outcomes[i].result,
              EvaluateMatcher(task.factory, *task.dataset, task.options));
        }
        return Status::OK();
      },
      max_threads));
  return outcomes;
}

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  long long parsed = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0') return fallback;
  return parsed;
}

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  std::optional<double> parsed = ParseDouble(value);
  return parsed.value_or(fallback);
}

}  // namespace leapme::eval
