#include "eval/importance.h"

#include <algorithm>

#include "common/rng.h"
#include "core/leapme.h"
#include "data/splitting.h"
#include "features/feature_schema.h"
#include "ml/metrics.h"
#include "ml/scaler.h"
#include "nn/trainer.h"

namespace leapme::eval {

namespace {

struct ColumnGroup {
  std::string name;
  size_t begin;  // [begin, end) in pair-feature layout
  size_t end;
};

// One group per registered feature stage: the ablation unit is the
// stage's pair-column span, so new stages are covered automatically.
std::vector<ColumnGroup> PairFeatureGroups(
    const features::FeatureSchema& schema) {
  std::vector<ColumnGroup> groups;
  for (const features::StageSpan& span : schema.stages()) {
    groups.push_back({std::string(span.stage->name()), span.pair_begin,
                      span.pair_end});
  }
  return groups;
}

double F1At(const std::vector<double>& scores,
            const std::vector<int32_t>& labels, double threshold) {
  std::vector<int32_t> predictions(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    predictions[i] = scores[i] >= threshold ? 1 : 0;
  }
  return ml::ComputeQuality(predictions, labels).f1;
}

}  // namespace

StatusOr<std::vector<FeatureGroupImportance>> PermutationImportance(
    const EvalDataset& eval_dataset, const ImportanceOptions& options) {
  if (options.permutations == 0) {
    return Status::InvalidArgument("permutations must be positive");
  }
  const data::Dataset& dataset = eval_dataset.dataset;
  const embedding::EmbeddingModel& model = *eval_dataset.model;

  Rng rng(options.seed);
  data::SourceSplit split =
      data::SplitSources(dataset, options.train_fraction, rng);
  LEAPME_ASSIGN_OR_RETURN(
      std::vector<data::LabeledPair> train,
      data::BuildTrainingPairs(dataset, split.train_sources,
                               options.negative_ratio, rng));
  std::vector<data::LabeledPair> test =
      data::BuildTestPairs(dataset, split.train_sources);

  // Feature computation mirrors LeapmeMatcher (all features kept).
  features::FeaturePipeline pipeline(&model);
  std::vector<features::PropertyFeatures> properties;
  std::vector<std::string> values;
  for (data::PropertyId id = 0; id < dataset.property_count(); ++id) {
    values.clear();
    for (const auto& instance : dataset.instances(id)) {
      values.push_back(instance.value);
    }
    properties.push_back(
        pipeline.ComputeProperty(dataset.property(id).name, values));
  }
  auto design_for = [&](const std::vector<data::LabeledPair>& pairs) {
    std::vector<const features::PropertyFeatures*> lhs;
    std::vector<const features::PropertyFeatures*> rhs;
    for (const auto& labeled : pairs) {
      lhs.push_back(&properties[labeled.pair.a]);
      rhs.push_back(&properties[labeled.pair.b]);
    }
    return pipeline.BuildDesignMatrix(lhs, rhs, {});
  };

  nn::Matrix train_design = design_for(train);
  std::vector<int32_t> train_labels;
  for (const auto& labeled : train) train_labels.push_back(labeled.label);
  ml::StandardScaler scaler;
  LEAPME_RETURN_IF_ERROR(scaler.FitTransform(&train_design));

  Rng init_rng(options.seed ^ 0xabcdULL);
  nn::Mlp mlp =
      nn::BuildMlp(pipeline.pair_dimension(), {128, 64}, 2, init_rng);
  nn::Trainer trainer;
  LEAPME_RETURN_IF_ERROR(
      trainer.Fit(mlp, train_design, train_labels).status());

  nn::Matrix test_design = design_for(test);
  LEAPME_RETURN_IF_ERROR(scaler.Transform(&test_design));
  std::vector<int32_t> test_labels;
  for (const auto& labeled : test) test_labels.push_back(labeled.label);

  auto score = [&](const nn::Matrix& design) {
    nn::Matrix probabilities;
    // Predict in batches to bound the transient softmax matrix.
    std::vector<double> scores;
    scores.reserve(design.rows());
    constexpr size_t kBatch = 8192;
    for (size_t start = 0; start < design.rows(); start += kBatch) {
      size_t end = std::min(start + kBatch, design.rows());
      nn::Matrix chunk = design.RowSlice(start, end);
      mlp.Predict(chunk, &probabilities);
      for (size_t i = 0; i < probabilities.rows(); ++i) {
        scores.push_back(probabilities(i, 1));
      }
    }
    return scores;
  };

  const double baseline_f1 = F1At(score(test_design), test_labels, 0.5);

  std::vector<FeatureGroupImportance> importances;
  for (const ColumnGroup& group : PairFeatureGroups(pipeline.schema())) {
    double permuted_sum = 0.0;
    for (size_t rep = 0; rep < options.permutations; ++rep) {
      nn::Matrix permuted = test_design;
      // One row permutation applied to every column of the group keeps
      // within-group correlations intact while breaking the link to the
      // labels.
      std::vector<size_t> order(permuted.rows());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      Rng perm_rng(options.seed + 1000 * rep + group.begin);
      perm_rng.Shuffle(order);
      for (size_t r = 0; r < permuted.rows(); ++r) {
        for (size_t c = group.begin; c < group.end; ++c) {
          permuted(r, c) = test_design(order[r], c);
        }
      }
      permuted_sum += F1At(score(permuted), test_labels, 0.5);
    }
    FeatureGroupImportance importance;
    importance.group = group.name;
    importance.columns = group.end - group.begin;
    importance.baseline_f1 = baseline_f1;
    importance.permuted_f1 =
        permuted_sum / static_cast<double>(options.permutations);
    importance.f1_drop = baseline_f1 - importance.permuted_f1;
    importances.push_back(importance);
  }
  std::sort(importances.begin(), importances.end(),
            [](const FeatureGroupImportance& a,
               const FeatureGroupImportance& b) {
              return a.f1_drop > b.f1_drop;
            });
  return importances;
}

}  // namespace leapme::eval
