#ifndef LEAPME_EVAL_REPORT_H_
#define LEAPME_EVAL_REPORT_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ml/metrics.h"

namespace leapme::eval {

/// Accumulates P/R/F1 results keyed by (row, approach) and renders them as
/// an aligned text table in the layout of the paper's Table II: one row
/// per (section, dataset, training fraction), three columns (P, R, F1) per
/// approach, best F1 of each row marked with '*'.
class ResultsTable {
 public:
  /// Declares the approach column order (columns render in declaration
  /// order; missing cells render as '-').
  void AddApproach(const std::string& approach);

  /// Adds one result cell. `section` is the feature-origin group
  /// ("Instances", "Names", "Both"); `row_key` typically
  /// "<dataset> <fraction>".
  void AddResult(const std::string& section, const std::string& row_key,
                 const std::string& approach, const ml::MatchQuality& quality);

  /// Renders the aligned table ('\n'-terminated).
  std::string Render() const;

  /// Renders as CSV: section,row,approach,precision,recall,f1.
  std::string RenderCsv() const;

  /// Renders as a JSON array of cell objects
  /// ({"section","row","approach","precision","recall","f1"}) for the
  /// shared BENCH_<name>.json reports.
  std::string RenderJsonRows() const;

 private:
  struct RowId {
    std::string section;
    std::string row_key;
    auto operator<=>(const RowId&) const = default;
  };

  std::vector<std::string> approaches_;
  // Insertion-ordered rows.
  std::vector<RowId> row_order_;
  std::map<RowId, std::map<std::string, ml::MatchQuality>> cells_;
};

}  // namespace leapme::eval

#endif  // LEAPME_EVAL_REPORT_H_
