#ifndef LEAPME_EVAL_EXPERIMENT_H_
#define LEAPME_EVAL_EXPERIMENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/pair_matcher.h"
#include "common/status_or.h"
#include "data/dataset.h"
#include "data/domain.h"
#include "data/generator.h"
#include "embedding/synthetic_model.h"
#include "ml/metrics.h"

namespace leapme::eval {

/// One evaluation dataset: which domain, how it is generated, and how the
/// synthetic embedding space is built.
struct DatasetSpec {
  std::string name;
  const data::DomainSpec* domain = nullptr;
  data::GeneratorOptions generator;
  embedding::SyntheticModelOptions embedding;
};

/// Scale knob for the default dataset specs: `kPaper` approximates the
/// paper's dataset sizes (24 camera sources, 100 entities each);
/// `kBench` is sized for the 2-core CI benchmark budget; `kTest` is tiny.
enum class EvalScale : int {
  kTest = 0,
  kBench = 1,
  kPaper = 2,
};

/// The four evaluation datasets (cameras balanced/high-quality, the rest
/// small and imbalanced/low-quality — paper §V-B) at the given scale.
std::vector<DatasetSpec> DefaultDatasetSpecs(EvalScale scale);

/// A generated dataset together with its embedding model.
struct EvalDataset {
  data::Dataset dataset;
  std::unique_ptr<embedding::SyntheticEmbeddingModel> model;
};

/// Generates the catalog and builds the embedding space of `spec`.
StatusOr<EvalDataset> BuildEvalDataset(const DatasetSpec& spec);

/// Creates a fresh matcher instance (matchers are stateful, so every
/// repetition gets a new one). Receives the embedding model.
using MatcherFactory =
    std::function<std::unique_ptr<baselines::PairMatcher>(
        const embedding::EmbeddingModel&)>;

/// Options of one matcher evaluation.
struct EvaluationOptions {
  double train_fraction = 0.8;
  /// Number of repetitions with different random source splits (paper: 25).
  size_t repetitions = 3;
  double negative_ratio = 2.0;  ///< negatives per positive (paper: 2)
  uint64_t seed = 2024;
  /// Thread cap for the repetition fan-out (0 = global pool width). Each
  /// repetition derives its RNG from `seed + rep` and writes its own result
  /// slot, so metrics are identical at any thread count.
  size_t threads = 0;
  /// Candidate-generation spec (see blocking::CandidatePipeline). When
  /// non-empty, only blocked candidate test pairs are classified; dropped
  /// pairs are predicted non-matches, so blocking recall losses show up
  /// in the reported metrics. Empty = classify every test pair (identical
  /// to the "all-pairs" spec).
  std::string blocking_spec;
};

/// Result of one matcher evaluation, averaged over repetitions.
struct EvaluationResult {
  ml::MatchQuality mean;
  std::vector<ml::MatchQuality> per_repetition;
  size_t mean_training_pairs = 0;
  size_t mean_test_pairs = 0;
};

/// Evaluates a matcher on `eval_dataset`: repeatedly splits sources,
/// builds training pairs (1 positive : `negative_ratio` negatives among
/// training sources) and test pairs (everything else), fits a fresh
/// matcher and measures P/R/F1 on the test pairs. Repetition r uses split
/// seed `seed + r`, so different matchers evaluated with the same options
/// see the same splits.
StatusOr<EvaluationResult> EvaluateMatcher(const MatcherFactory& factory,
                                           const EvalDataset& eval_dataset,
                                           const EvaluationOptions& options);

/// One (dataset, matcher) cell of a batch evaluation run.
struct EvaluationTask {
  std::string dataset_name;
  std::string matcher_name;
  const EvalDataset* dataset = nullptr;  ///< must outlive RunEvaluations
  MatcherFactory factory;
  EvaluationOptions options;
};

/// Outcome of one EvaluationTask, carrying its labels for reporting.
struct EvaluationOutcome {
  std::string dataset_name;
  std::string matcher_name;
  EvaluationResult result;
};

/// Fans independent (dataset, matcher) evaluations out across the global
/// thread pool. Outcomes are returned in task order regardless of
/// scheduling, and each task is internally deterministic, so the results
/// match a sequential run exactly. `max_threads` caps the fan-out for
/// this call (0 = pool width).
StatusOr<std::vector<EvaluationOutcome>> RunEvaluations(
    const std::vector<EvaluationTask>& tasks, size_t max_threads = 0);

/// Reads an integer / double configuration override from the environment
/// (used by the benchmark binaries: LEAPME_TABLE2_REPS etc.).
int64_t EnvInt(const char* name, int64_t fallback);
double EnvDouble(const char* name, double fallback);

}  // namespace leapme::eval

#endif  // LEAPME_EVAL_EXPERIMENT_H_
