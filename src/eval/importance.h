#ifndef LEAPME_EVAL_IMPORTANCE_H_
#define LEAPME_EVAL_IMPORTANCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status_or.h"
#include "eval/experiment.h"

namespace leapme::eval {

/// Importance of one feature group, measured by permutation: how much F1
/// drops when the group's columns are shuffled across test pairs
/// (breaking their relationship to the label while preserving their
/// marginal distribution).
struct FeatureGroupImportance {
  std::string group;       ///< registry stage name, e.g. "name_embedding"
  size_t columns = 0;      ///< number of feature columns in the group
  double baseline_f1 = 0.0;
  double permuted_f1 = 0.0;
  double f1_drop = 0.0;    ///< baseline - permuted; higher = more important
};

/// Options for PermutationImportance.
struct ImportanceOptions {
  double train_fraction = 0.8;
  double negative_ratio = 2.0;
  uint64_t seed = 77;
  /// Permutation repetitions averaged per group.
  size_t permutations = 3;
};

/// Trains LEAPME (all features, paper defaults) on `eval_dataset` and
/// measures the permutation importance of each registered feature stage
/// (one group per stage of the feature registry; the built-in registry
/// yields the six semantic groups of Table I: char_class_meta,
/// token_class_meta, numeric_value, value_embedding, name_embedding,
/// string_distances). A quantitative companion to the paper's §V-A
/// feature-kind ablation: instead of retraining without a group, it asks
/// how much the *trained* classifier relies on it.
StatusOr<std::vector<FeatureGroupImportance>> PermutationImportance(
    const EvalDataset& eval_dataset, const ImportanceOptions& options = {});

}  // namespace leapme::eval

#endif  // LEAPME_EVAL_IMPORTANCE_H_
