#include "embedding/embedding_model.h"

#include <cmath>

#include "common/rng.h"

namespace leapme::embedding {

Vector EmbeddingModel::Embed(std::string_view word) const {
  Vector out(dimension(), 0.0f);
  Lookup(word, out);
  return out;
}

Vector AverageEmbedding(const EmbeddingModel& model,
                        const std::vector<std::string>& words) {
  Vector sum(model.dimension(), 0.0f);
  if (words.empty()) return sum;
  Vector buffer(model.dimension(), 0.0f);
  for (const std::string& word : words) {
    model.Lookup(word, buffer);
    AddInPlace(sum, buffer);
  }
  ScaleInPlace(sum, 1.0f / static_cast<float>(words.size()));
  return sum;
}

void HashedWordVector(std::string_view word, std::span<float> out) {
  Rng rng(HashBytes(word.data(), word.size()));
  double norm_sq = 0.0;
  for (float& value : out) {
    double g = rng.NextGaussian();
    value = static_cast<float>(g);
    norm_sq += g * g;
  }
  if (norm_sq > 0.0) {
    auto inv = static_cast<float>(1.0 / std::sqrt(norm_sq));
    for (float& value : out) {
      value *= inv;
    }
  }
}

}  // namespace leapme::embedding
