#include "embedding/embedding_model.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace leapme::embedding {

Vector EmbeddingModel::Embed(std::string_view word) const {
  Vector out(dimension(), 0.0f);
  Lookup(word, out);
  return out;
}

void EmbeddingModel::LookupBatch(std::span<const std::string_view> words,
                                 float* out, uint8_t* in_vocabulary) const {
  const size_t dim = dimension();
  for (size_t i = 0; i < words.size(); ++i) {
    in_vocabulary[i] =
        Lookup(words[i], std::span<float>(out + i * dim, dim)) ? 1 : 0;
  }
}

Vector AverageEmbedding(const EmbeddingModel& model,
                        const std::vector<std::string>& words) {
  Vector sum(model.dimension(), 0.0f);
  if (words.empty()) return sum;
  const size_t dim = model.dimension();
  // Batched pooling: hand the model whole chunks so a caching model can
  // prefetch every word's cache bucket in one wave. The accumulation
  // stays strictly in word order over the chunk results, so the sum is
  // bit-identical to the per-word loop this replaces.
  constexpr size_t kChunk = 32;
  std::string_view views[kChunk];
  uint8_t in_vocabulary[kChunk];
  std::vector<float> block(std::min(kChunk, words.size()) * dim);
  for (size_t start = 0; start < words.size(); start += kChunk) {
    const size_t n = std::min(kChunk, words.size() - start);
    for (size_t i = 0; i < n; ++i) {
      views[i] = words[start + i];
    }
    model.LookupBatch(std::span<const std::string_view>(views, n),
                      block.data(), in_vocabulary);
    for (size_t i = 0; i < n; ++i) {
      AddInPlace(sum, std::span<const float>(block.data() + i * dim, dim));
    }
  }
  ScaleInPlace(sum, 1.0f / static_cast<float>(words.size()));
  return sum;
}

void HashedWordVector(std::string_view word, std::span<float> out) {
  Rng rng(HashBytes(word.data(), word.size()));
  double norm_sq = 0.0;
  for (float& value : out) {
    double g = rng.NextGaussian();
    value = static_cast<float>(g);
    norm_sq += g * g;
  }
  if (norm_sq > 0.0) {
    auto inv = static_cast<float>(1.0 / std::sqrt(norm_sq));
    for (float& value : out) {
      value *= inv;
    }
  }
}

}  // namespace leapme::embedding
