#include "embedding/vector_ops.h"

#include <cmath>

#include "common/logging.h"

namespace leapme::embedding {

void AddInPlace(Vector& a, std::span<const float> b) {
  LEAPME_CHECK_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] += b[i];
  }
}

void ScaleInPlace(Vector& a, float s) {
  for (float& value : a) {
    value *= s;
  }
}

float Dot(std::span<const float> a, std::span<const float> b) {
  LEAPME_CHECK_EQ(a.size(), b.size());
  float sum = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) {
    sum += a[i] * b[i];
  }
  return sum;
}

float Norm(std::span<const float> a) {
  return std::sqrt(Dot(a, a));
}

float CosineSimilarity(std::span<const float> a, std::span<const float> b) {
  float norm_a = Norm(a);
  float norm_b = Norm(b);
  if (norm_a == 0.0f || norm_b == 0.0f) return 0.0f;
  return Dot(a, b) / (norm_a * norm_b);
}

float EuclideanDistance(std::span<const float> a, std::span<const float> b) {
  LEAPME_CHECK_EQ(a.size(), b.size());
  float sum = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) {
    float diff = a[i] - b[i];
    sum += diff * diff;
  }
  return std::sqrt(sum);
}

void NormalizeInPlace(Vector& a) {
  float norm = Norm(a);
  if (norm > 0.0f) {
    ScaleInPlace(a, 1.0f / norm);
  }
}

}  // namespace leapme::embedding
