#include "embedding/vector_ops.h"

#include <cmath>

#include "common/kernels/kernels.h"
#include "common/logging.h"

namespace leapme::embedding {

// All dense loops run on the dispatched kernel layer (common/kernels):
// AVX2 when the CPU supports it, scalar otherwise, bit-identical either
// way under the canonical reduction-order contract (DESIGN.md §12).

void AddInPlace(Vector& a, std::span<const float> b) {
  LEAPME_CHECK_EQ(a.size(), b.size());
  kernels::Active().add(b.data(), a.data(), a.size());
}

void ScaleInPlace(Vector& a, float s) {
  kernels::Active().scale(s, a.data(), a.size());
}

float Dot(std::span<const float> a, std::span<const float> b) {
  LEAPME_CHECK_EQ(a.size(), b.size());
  return kernels::Active().dot(a.data(), b.data(), a.size());
}

float Norm(std::span<const float> a) {
  return std::sqrt(Dot(a, a));
}

float CosineSimilarity(std::span<const float> a, std::span<const float> b) {
  LEAPME_CHECK_EQ(a.size(), b.size());
  // One fused pass computes all three dot products; each follows the
  // canonical order, so the result is bit-identical to the historical
  // Dot/Norm composition.
  float dots[3];
  kernels::Active().dot3(a.data(), b.data(), a.size(), dots);
  return kernels::CosineFromDots(dots[0], dots[1], dots[2]);
}

float EuclideanDistance(std::span<const float> a, std::span<const float> b) {
  LEAPME_CHECK_EQ(a.size(), b.size());
  return std::sqrt(kernels::Active().squared_l2(a.data(), b.data(), a.size()));
}

void NormalizeInPlace(Vector& a) {
  float norm = Norm(a);
  if (norm > 0.0f) {
    ScaleInPlace(a, 1.0f / norm);
  }
}

}  // namespace leapme::embedding
