#ifndef LEAPME_EMBEDDING_EMBEDDING_MODEL_H_
#define LEAPME_EMBEDDING_EMBEDDING_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "embedding/vector_ops.h"

namespace leapme::embedding {

/// Policy for words absent from the embedding vocabulary.
enum class OovPolicy : int {
  /// Map unknown words to the all-zero vector (the paper's choice for the
  /// pre-trained GloVe vectors).
  kZeroVector = 0,
  /// Map unknown words to a deterministic hash-derived unit vector, so that
  /// repeated occurrences of the same unknown word still agree with each
  /// other while remaining far from in-vocabulary clusters.
  kHashedVector = 1,
};

/// Interface of a word-embedding model: a map word -> R^d.
///
/// Implementations: TextEmbeddingFile (GloVe-format files) and
/// SyntheticEmbeddingModel (the deterministic semantic-space substitute for
/// pre-trained GloVe; see DESIGN.md §1).
class EmbeddingModel {
 public:
  virtual ~EmbeddingModel() = default;

  /// Dimension d of the embedding space.
  virtual size_t dimension() const = 0;

  /// True if `word` is in the model vocabulary.
  virtual bool Contains(std::string_view word) const = 0;

  /// Writes the embedding of `word` into `out` (size = dimension()).
  /// Returns false when the word is out of vocabulary; `out` then holds the
  /// OOV vector dictated by `oov_policy()`.
  virtual bool Lookup(std::string_view word, std::span<float> out) const = 0;

  /// The policy applied to out-of-vocabulary words by Lookup.
  virtual OovPolicy oov_policy() const = 0;

  /// Looks up `words` into the row-major buffer `out` (words.size() rows
  /// of dimension() floats) and sets `in_vocabulary[i]` to Lookup's
  /// return per word. The default loops Lookup; caching implementations
  /// override it to issue one prefetch wave across the whole batch.
  /// Results are bit-identical to per-word Lookup either way.
  virtual void LookupBatch(std::span<const std::string_view> words,
                           float* out, uint8_t* in_vocabulary) const;

  /// Convenience: returns the embedding as a fresh Vector.
  Vector Embed(std::string_view word) const;
};

/// Average of the embeddings of `words` (the pooling used for both property
/// names and instance values, Table I ids 4 and 6). Per the paper, unknown
/// words contribute their OOV vector and count toward the average. Returns
/// the all-zero vector when `words` is empty.
Vector AverageEmbedding(const EmbeddingModel& model,
                        const std::vector<std::string>& words);

/// Fills `out` with the deterministic hash-derived unit vector for `word`
/// used by OovPolicy::kHashedVector.
void HashedWordVector(std::string_view word, std::span<float> out);

}  // namespace leapme::embedding

#endif  // LEAPME_EMBEDDING_EMBEDDING_MODEL_H_
