#ifndef LEAPME_EMBEDDING_SYNTHETIC_MODEL_H_
#define LEAPME_EMBEDDING_SYNTHETIC_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status_or.h"
#include "embedding/embedding_model.h"

namespace leapme::embedding {

/// Specification of one semantic cluster of the synthetic embedding space:
/// a set of words that should receive nearby vectors (synonyms / same
/// semantic field), e.g. {"resolution", "megapixels", "mp"}.
struct SemanticCluster {
  std::string name;                 ///< diagnostic label of the cluster
  std::vector<std::string> words;   ///< member words (lower-cased)
};

/// Options for SyntheticEmbeddingModel.
struct SyntheticModelOptions {
  size_t dimension = 300;   ///< embedding dimension d
  uint64_t seed = 17;       ///< master seed; same seed => same space
  /// Standard deviation of the per-word perturbation around its cluster
  /// centroid, relative to unit-length centroids. Small values make
  /// synonyms nearly identical; larger values blur clusters.
  double intra_cluster_sigma = 0.25;
  /// Fraction of vocabulary words that are "mavericks": words displaced
  /// far from their cluster centroid (displacement sigma
  /// `maverick_sigma`). Models the domain jargon that pre-trained GloVe
  /// places poorly ("cipa", "ibis", "f-stop"): synonym pairs through a
  /// maverick word are invisible to fixed-threshold semantic matchers but
  /// remain learnable from other features. Selection is by word hash, so
  /// a word is consistently maverick or not across clusters.
  double maverick_fraction = 0.0;
  double maverick_sigma = 2.5;
  OovPolicy oov_policy = OovPolicy::kZeroVector;
};

/// Deterministic stand-in for pre-trained GloVe vectors (see DESIGN.md §1).
///
/// Every cluster receives a random unit centroid drawn from the seeded
/// stream; every member word receives centroid + sigma * perturbation where
/// the perturbation is derived deterministically from the word text, so a
/// word's vector does not depend on cluster enumeration order. Words that
/// appear in several clusters receive the average of their per-cluster
/// vectors (mimicking polysemy). The essential GloVe property this
/// preserves is *semantic proximity despite lexical distance*: "mp" and
/// "resolution" end up close, "mp" and "weight" far apart.
class SyntheticEmbeddingModel final : public EmbeddingModel {
 public:
  /// Builds the space. Fails when `options.dimension` is 0, a cluster is
  /// empty, or a word is empty.
  static StatusOr<SyntheticEmbeddingModel> Build(
      const std::vector<SemanticCluster>& clusters,
      const SyntheticModelOptions& options = {});

  size_t dimension() const override { return options_.dimension; }
  bool Contains(std::string_view word) const override;
  bool Lookup(std::string_view word, std::span<float> out) const override;
  OovPolicy oov_policy() const override { return options_.oov_policy; }

  size_t vocabulary_size() const { return offsets_.size(); }
  size_t cluster_count() const { return cluster_count_; }

 private:
  explicit SyntheticEmbeddingModel(const SyntheticModelOptions& options)
      : options_(options) {}

  SyntheticModelOptions options_;
  size_t cluster_count_ = 0;
  std::unordered_map<std::string, size_t> offsets_;
  std::vector<float> storage_;
};

}  // namespace leapme::embedding

#endif  // LEAPME_EMBEDDING_SYNTHETIC_MODEL_H_
