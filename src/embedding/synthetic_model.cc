#include "embedding/synthetic_model.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/string_util.h"

namespace leapme::embedding {

namespace {

// Draws a unit-length gaussian direction from `rng`.
Vector UnitGaussian(Rng& rng, size_t dimension) {
  Vector v(dimension);
  for (float& value : v) {
    value = static_cast<float>(rng.NextGaussian());
  }
  NormalizeInPlace(v);
  return v;
}

}  // namespace

StatusOr<SyntheticEmbeddingModel> SyntheticEmbeddingModel::Build(
    const std::vector<SemanticCluster>& clusters,
    const SyntheticModelOptions& options) {
  if (options.dimension == 0) {
    return Status::InvalidArgument("embedding dimension must be positive");
  }
  SyntheticEmbeddingModel model(options);
  model.cluster_count_ = clusters.size();

  // word -> accumulated vector and number of contributing clusters.
  std::unordered_map<std::string, std::pair<Vector, size_t>> accumulated;

  for (const SemanticCluster& cluster : clusters) {
    if (cluster.words.empty()) {
      return Status::InvalidArgument("cluster '" + cluster.name +
                                     "' has no words");
    }
    // The centroid depends only on the cluster name, so adding clusters
    // never perturbs existing ones.
    Rng centroid_rng(options.seed ^
                     HashBytes(cluster.name.data(), cluster.name.size()));
    Vector centroid = UnitGaussian(centroid_rng, options.dimension);

    for (const std::string& raw_word : cluster.words) {
      if (raw_word.empty()) {
        return Status::InvalidArgument("cluster '" + cluster.name +
                                       "' contains an empty word");
      }
      std::string word = AsciiToLower(raw_word);
      // Word perturbation depends only on the word text and seed.
      Rng word_rng(Mix64(options.seed) ^ HashBytes(word.data(), word.size()));
      const bool maverick =
          options.maverick_fraction > 0.0 &&
          word_rng.NextDouble() < options.maverick_fraction;
      const double sigma = maverick ? options.maverick_sigma
                                    : options.intra_cluster_sigma;
      Vector v = centroid;
      for (float& value : v) {
        value += static_cast<float>(
            sigma * word_rng.NextGaussian() /
            std::sqrt(static_cast<double>(options.dimension)));
      }
      // try_emplace leaves `v` untouched when the key already exists.
      auto [it, inserted] =
          accumulated.try_emplace(std::move(word), std::move(v), size_t{1});
      if (!inserted) {
        AddInPlace(it->second.first, v);
        ++it->second.second;
      }
    }
  }

  for (auto& [word, entry] : accumulated) {
    Vector& v = entry.first;
    if (entry.second > 1) {
      ScaleInPlace(v, 1.0f / static_cast<float>(entry.second));
    }
    size_t offset = model.storage_.size();
    model.storage_.insert(model.storage_.end(), v.begin(), v.end());
    model.offsets_.emplace(word, offset);
  }
  return model;
}

bool SyntheticEmbeddingModel::Contains(std::string_view word) const {
  return offsets_.find(AsciiToLower(word)) != offsets_.end();
}

bool SyntheticEmbeddingModel::Lookup(std::string_view word,
                                     std::span<float> out) const {
  auto it = offsets_.find(AsciiToLower(word));
  if (it == offsets_.end()) {
    if (options_.oov_policy == OovPolicy::kHashedVector) {
      HashedWordVector(word, out);
    } else {
      std::fill(out.begin(), out.end(), 0.0f);
    }
    return false;
  }
  const float* begin = storage_.data() + it->second;
  std::copy(begin, begin + options_.dimension, out.begin());
  return true;
}

}  // namespace leapme::embedding
