#ifndef LEAPME_EMBEDDING_VECTOR_OPS_H_
#define LEAPME_EMBEDDING_VECTOR_OPS_H_

#include <cstddef>
#include <span>
#include <vector>

namespace leapme::embedding {

/// Dense float vector used for word embeddings and pooled embeddings.
using Vector = std::vector<float>;

/// a += b. Sizes must match.
void AddInPlace(Vector& a, std::span<const float> b);

/// a *= s.
void ScaleInPlace(Vector& a, float s);

/// Dot product. Sizes must match.
float Dot(std::span<const float> a, std::span<const float> b);

/// Euclidean norm.
float Norm(std::span<const float> a);

/// Cosine similarity in [-1, 1]; 0 when either vector is all-zero.
float CosineSimilarity(std::span<const float> a, std::span<const float> b);

/// Euclidean distance. Sizes must match.
float EuclideanDistance(std::span<const float> a, std::span<const float> b);

/// Normalizes `a` to unit length in place; leaves an all-zero vector as-is.
void NormalizeInPlace(Vector& a);

}  // namespace leapme::embedding

#endif  // LEAPME_EMBEDDING_VECTOR_OPS_H_
