#include "embedding/text_embedding_file.h"

#include <algorithm>
#include <fstream>

#include "common/string_util.h"

namespace leapme::embedding {

StatusOr<TextEmbeddingFile> TextEmbeddingFile::Load(const std::string& path,
                                                    OovPolicy oov_policy) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open embedding file: " + path);
  }
  TextEmbeddingFile model(0, oov_policy);
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::vector<std::string> pieces = SplitWhitespace(line);
    if (pieces.empty()) continue;
    // Skip a word2vec header "<vocab_size> <dim>".
    if (line_number == 1 && pieces.size() == 2 && ParseDouble(pieces[0]) &&
        ParseDouble(pieces[1])) {
      continue;
    }
    if (pieces.size() < 2) {
      return Status::Corruption(StrFormat(
          "%s:%zu: expected 'word v1 ... vd'", path.c_str(), line_number));
    }
    size_t dim = pieces.size() - 1;
    if (model.dimension_ == 0) {
      model.dimension_ = dim;
    } else if (dim != model.dimension_) {
      return Status::Corruption(
          StrFormat("%s:%zu: dimension %zu != %zu", path.c_str(), line_number,
                    dim, model.dimension_));
    }
    size_t offset = model.storage_.size();
    for (size_t i = 1; i < pieces.size(); ++i) {
      std::optional<double> value = ParseDouble(pieces[i]);
      if (!value) {
        return Status::Corruption(StrFormat("%s:%zu: bad float '%s'",
                                            path.c_str(), line_number,
                                            pieces[i].c_str()));
      }
      model.storage_.push_back(static_cast<float>(*value));
    }
    model.offsets_.emplace(pieces[0], offset);
  }
  if (model.offsets_.empty()) {
    return Status::InvalidArgument("embedding file is empty: " + path);
  }
  return model;
}

StatusOr<TextEmbeddingFile> TextEmbeddingFile::FromEntries(
    std::vector<std::pair<std::string, Vector>> entries,
    OovPolicy oov_policy) {
  if (entries.empty()) {
    return Status::InvalidArgument("no embedding entries");
  }
  size_t dim = entries.front().second.size();
  TextEmbeddingFile model(dim, oov_policy);
  for (auto& [word, vector] : entries) {
    if (vector.size() != dim) {
      return Status::InvalidArgument(
          StrFormat("entry '%s' has dimension %zu != %zu", word.c_str(),
                    vector.size(), dim));
    }
    size_t offset = model.storage_.size();
    model.storage_.insert(model.storage_.end(), vector.begin(), vector.end());
    model.offsets_.emplace(std::move(word), offset);
  }
  return model;
}

bool TextEmbeddingFile::Contains(std::string_view word) const {
  return offsets_.find(std::string(word)) != offsets_.end();
}

bool TextEmbeddingFile::Lookup(std::string_view word,
                               std::span<float> out) const {
  auto it = offsets_.find(std::string(word));
  if (it == offsets_.end()) {
    if (oov_policy_ == OovPolicy::kHashedVector) {
      HashedWordVector(word, out);
    } else {
      std::fill(out.begin(), out.end(), 0.0f);
    }
    return false;
  }
  const float* begin = storage_.data() + it->second;
  std::copy(begin, begin + dimension_, out.begin());
  return true;
}

}  // namespace leapme::embedding
