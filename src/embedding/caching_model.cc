#include "embedding/caching_model.h"

#include <algorithm>

namespace leapme::embedding {

CachingEmbeddingModel::CachingEmbeddingModel(const EmbeddingModel* base,
                                             size_t capacity, size_t shards)
    : base_(base), cache_(capacity, shards) {}

bool CachingEmbeddingModel::Contains(std::string_view word) const {
  bool in_vocabulary = false;
  // Peek, not Lookup: a presence check must not skew the hit/miss
  // counters or refresh the slot's eviction state (same contract as the
  // LRU predecessor, which looked at the index without splicing).
  if (cache_.Peek(word, [&](const CachedVector& entry) {
        in_vocabulary = entry.in_vocabulary;
      })) {
    return in_vocabulary;
  }
  return base_->Contains(word);
}

bool CachingEmbeddingModel::Lookup(std::string_view word,
                                   std::span<float> out) const {
  bool in_vocabulary = false;
  const bool hit = cache_.Lookup(word, [&](const CachedVector& entry) {
    std::copy(entry.vector.begin(), entry.vector.end(), out.begin());
    in_vocabulary = entry.in_vocabulary;
  });
  if (hit) {
    return in_vocabulary;
  }
  // Compute outside the lock: backing lookups may be slow, and a repeated
  // concurrent miss merely computes the same deterministic vector twice
  // (the second insert is dropped).
  CachedVector entry;
  entry.vector.resize(base_->dimension());
  entry.in_vocabulary = base_->Lookup(word, entry.vector);
  std::copy(entry.vector.begin(), entry.vector.end(), out.begin());
  in_vocabulary = entry.in_vocabulary;
  cache_.Insert(word, std::move(entry));
  return in_vocabulary;
}

void CachingEmbeddingModel::LookupBatch(
    std::span<const std::string_view> words, float* out,
    uint8_t* in_vocabulary) const {
  const size_t dim = base_->dimension();
  // Chunks of 64 match the cache's internal prefetch wave, and the found
  // mask stays on the stack so a fully-hitting batch allocates nothing.
  constexpr size_t kWave = 64;
  for (size_t start = 0; start < words.size(); start += kWave) {
    const size_t n = std::min(kWave, words.size() - start);
    uint8_t found[kWave];
    cache_.LookupBatch(
        words.subspan(start, n), found,
        [&](size_t i, const CachedVector& entry) {
          std::copy(entry.vector.begin(), entry.vector.end(),
                    out + (start + i) * dim);
          in_vocabulary[start + i] = entry.in_vocabulary ? 1 : 0;
        });
    for (size_t i = 0; i < n; ++i) {
      if (found[i]) continue;
      // Counted resolve: this Lookup records the miss (or a hit, when a
      // duplicate earlier in the batch or a concurrent caller just
      // inserted the token), computes, and caches — the same per-call
      // totals as the sequential flow this batch replaces.
      in_vocabulary[start + i] =
          Lookup(words[start + i],
                 std::span<float>(out + (start + i) * dim, dim))
              ? 1
              : 0;
    }
  }
}

}  // namespace leapme::embedding
