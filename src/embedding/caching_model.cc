#include "embedding/caching_model.h"

#include <algorithm>

namespace leapme::embedding {

CachingEmbeddingModel::CachingEmbeddingModel(const EmbeddingModel* base,
                                             size_t capacity)
    : base_(base), capacity_(std::max<size_t>(1, capacity)) {}

bool CachingEmbeddingModel::Contains(std::string_view word) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(word);
    if (it != index_.end()) {
      return it->second->in_vocabulary;
    }
  }
  return base_->Contains(word);
}

bool CachingEmbeddingModel::Lookup(std::string_view word,
                                   std::span<float> out) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(word);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      std::copy(it->second->vector.begin(), it->second->vector.end(),
                out.begin());
      hits_.Increment();
      return it->second->in_vocabulary;
    }
  }
  // Compute outside the lock: backing lookups may be slow, and a repeated
  // concurrent miss merely computes the same deterministic vector twice.
  Entry entry;
  entry.word.assign(word);
  entry.vector.resize(base_->dimension());
  entry.in_vocabulary = base_->Lookup(word, entry.vector);
  std::copy(entry.vector.begin(), entry.vector.end(), out.begin());
  misses_.Increment();
  const bool in_vocabulary = entry.in_vocabulary;

  std::lock_guard<std::mutex> lock(mu_);
  if (index_.find(entry.word) == index_.end()) {
    lru_.push_front(std::move(entry));
    index_.emplace(lru_.front().word, lru_.begin());
    if (lru_.size() > capacity_) {
      index_.erase(lru_.back().word);
      lru_.pop_back();
    }
  }
  return in_vocabulary;
}

size_t CachingEmbeddingModel::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace leapme::embedding
