#ifndef LEAPME_EMBEDDING_TEXT_EMBEDDING_FILE_H_
#define LEAPME_EMBEDDING_TEXT_EMBEDDING_FILE_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status_or.h"
#include "embedding/embedding_model.h"

namespace leapme::embedding {

/// Embedding model backed by a GloVe / word2vec style text file: one line
/// per word, "word v1 v2 ... vd", whitespace separated. This is how a user
/// plugs the real pre-trained GloVe Common-Crawl vectors into LEAPME.
class TextEmbeddingFile final : public EmbeddingModel {
 public:
  /// Loads `path`. The dimension is inferred from the first line; lines
  /// with a different dimension cause a Corruption error. An optional
  /// word2vec-style "<count> <dim>" header line is skipped.
  static StatusOr<TextEmbeddingFile> Load(
      const std::string& path, OovPolicy oov_policy = OovPolicy::kZeroVector);

  /// Builds a model directly from in-memory (word, vector) pairs; all
  /// vectors must share a dimension.
  static StatusOr<TextEmbeddingFile> FromEntries(
      std::vector<std::pair<std::string, Vector>> entries,
      OovPolicy oov_policy = OovPolicy::kZeroVector);

  size_t dimension() const override { return dimension_; }
  bool Contains(std::string_view word) const override;
  bool Lookup(std::string_view word, std::span<float> out) const override;
  OovPolicy oov_policy() const override { return oov_policy_; }

  /// Number of words in the vocabulary.
  size_t vocabulary_size() const { return offsets_.size(); }

 private:
  TextEmbeddingFile(size_t dimension, OovPolicy oov_policy)
      : dimension_(dimension), oov_policy_(oov_policy) {}

  size_t dimension_;
  OovPolicy oov_policy_;
  // All vectors stored contiguously; offsets_ maps word -> start index.
  std::unordered_map<std::string, size_t> offsets_;
  std::vector<float> storage_;
};

}  // namespace leapme::embedding

#endif  // LEAPME_EMBEDDING_TEXT_EMBEDDING_FILE_H_
