#ifndef LEAPME_EMBEDDING_CACHING_MODEL_H_
#define LEAPME_EMBEDDING_CACHING_MODEL_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/metrics.h"
#include "embedding/embedding_model.h"

namespace leapme::embedding {

/// Thread-safe bounded LRU cache in front of another EmbeddingModel.
///
/// Online serving looks the same tokens up over and over (product
/// vocabularies are small and Zipf-distributed), while the backing model
/// may hash, scan a file-loaded table, or synthesize vectors. The cache
/// stores the full Lookup result — vector bytes plus the in-vocabulary
/// flag — so cached and uncached lookups are bit-identical.
///
/// The decorated model must outlive the cache. All methods are safe to
/// call concurrently; hit/miss counters are monotone and lock-free to
/// read.
class CachingEmbeddingModel : public EmbeddingModel {
 public:
  /// `capacity` is the maximum number of cached tokens (>= 1).
  CachingEmbeddingModel(const EmbeddingModel* base, size_t capacity);

  size_t dimension() const override { return base_->dimension(); }
  OovPolicy oov_policy() const override { return base_->oov_policy(); }
  bool Contains(std::string_view word) const override;
  bool Lookup(std::string_view word, std::span<float> out) const override;

  uint64_t hits() const { return hits_.value(); }
  uint64_t misses() const { return misses_.value(); }
  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::string word;
    Vector vector;
    bool in_vocabulary = false;
  };
  using LruList = std::list<Entry>;

  const EmbeddingModel* base_;
  const size_t capacity_;
  mutable std::mutex mu_;
  mutable LruList lru_;  // front = most recently used
  // Keys view into the stable Entry::word strings of lru_ nodes.
  mutable std::unordered_map<std::string_view, LruList::iterator> index_;
  mutable Counter hits_;
  mutable Counter misses_;
};

}  // namespace leapme::embedding

#endif  // LEAPME_EMBEDDING_CACHING_MODEL_H_
