#ifndef LEAPME_EMBEDDING_CACHING_MODEL_H_
#define LEAPME_EMBEDDING_CACHING_MODEL_H_

#include <cstdint>
#include <string_view>

#include "common/cache/sharded_cache.h"
#include "embedding/embedding_model.h"

namespace leapme::embedding {

/// Thread-safe bounded cache in front of another EmbeddingModel.
///
/// Online serving looks the same tokens up over and over (product
/// vocabularies are small and Zipf-distributed), while the backing model
/// may hash, scan a file-loaded table, or synthesize vectors. The cache
/// stores the full Lookup result — vector bytes plus the in-vocabulary
/// flag — so cached and uncached lookups are bit-identical.
///
/// Built on the sharded set-associative concurrent cache (DESIGN.md
/// §17): concurrent lookups of different tokens land on different
/// partitions and never contend, the hit path copies straight out of the
/// flat slot array without allocating or relinking anything, eviction is
/// CLOCK second-chance within the token's bucket, and LookupBatch
/// prefetches every token's bucket before probing any of them.
///
/// The decorated model must outlive the cache. All methods are safe to
/// call concurrently; counters are exact (summed under per-shard locks).
class CachingEmbeddingModel : public EmbeddingModel {
 public:
  /// `capacity` is the maximum number of cached tokens (>= 1; rounded up
  /// to the cache's power-of-two bucket grid). `shards` = 0 takes the
  /// partition count from LEAPME_CACHE_SHARDS (default 16).
  CachingEmbeddingModel(const EmbeddingModel* base, size_t capacity,
                        size_t shards = 0);

  size_t dimension() const override { return base_->dimension(); }
  OovPolicy oov_policy() const override { return base_->oov_policy(); }
  bool Contains(std::string_view word) const override;
  bool Lookup(std::string_view word, std::span<float> out) const override;

  /// Batched lookup with one software-prefetch wave across all the
  /// tokens' cache buckets before any of them is probed; misses fall
  /// back to the counted single-token path (compute + insert). Output
  /// layout and counter totals are identical to looping Lookup.
  void LookupBatch(std::span<const std::string_view> words, float* out,
                   uint8_t* in_vocabulary) const override;

  uint64_t hits() const { return cache_.hits(); }
  uint64_t misses() const { return cache_.misses(); }
  uint64_t evictions() const { return cache_.evictions(); }
  size_t size() const { return cache_.size(); }
  size_t capacity() const { return cache_.capacity(); }
  size_t shards() const { return cache_.shards(); }
  size_t max_probe() const { return cache_.max_probe(); }

 private:
  struct CachedVector {
    Vector vector;
    bool in_vocabulary = false;
  };

  const EmbeddingModel* base_;
  cache::ShardedCache<CachedVector> cache_;
};

}  // namespace leapme::embedding

#endif  // LEAPME_EMBEDDING_CACHING_MODEL_H_
