#ifndef LEAPME_CORE_LEAPME_H_
#define LEAPME_CORE_LEAPME_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "blocking/candidate_pipeline.h"
#include "common/status_or.h"
#include "data/dataset.h"
#include "data/splitting.h"
#include "embedding/embedding_model.h"
#include "features/feature_pipeline.h"
#include "graph/similarity_graph.h"
#include "ml/scaler.h"
#include "nn/mlp.h"
#include "nn/trainer.h"

namespace leapme::core {

/// Configuration of the LEAPME matcher. Defaults reproduce the paper's
/// §IV-D setup: all features, hidden layers 128/64, batch 32, epochs
/// 10@1e-3 + 5@1e-4 + 5@1e-5, decision threshold 0.5 on the positive
/// softmax output.
struct LeapmeOptions {
  features::PairFeatureOptions pair_features;
  /// Which of the nine feature configurations to use (§V-A).
  features::FeatureConfig feature_config;
  /// Explicit registry-stage selection (--features=stage,stage). When
  /// non-empty it overrides `feature_config`: the classifier input is the
  /// union of the named stages' pair columns. Unknown names surface as an
  /// InvalidArgument from Fit.
  std::vector<std::string> feature_stages;
  nn::TrainerOptions trainer;
  std::vector<size_t> hidden_sizes = {128, 64};
  /// Dropout rate after each hidden ReLU (0 = the paper's configuration).
  double dropout_rate = 0.0;
  double decision_threshold = 0.5;
  /// Calibrate the decision threshold after training: hold out
  /// `calibration_fraction` of the training pairs, train on the rest, and
  /// replace `decision_threshold` with the best-F1 threshold on the
  /// holdout. Off (0) by default — the paper uses the fixed argmax
  /// threshold 0.5.
  double calibration_fraction = 0.0;
  /// Standardize features (z-score fitted on the training pairs) before
  /// training and inference. Raw LEAPME features mix [0,1] distances with
  /// unbounded counts and instance values; standardization keeps the
  /// network trainable across feature configurations.
  bool standardize_features = true;
  /// Seed for weight initialization (the trainer has its own shuffle seed).
  uint64_t seed = 1234;
  /// Rows scored per inference batch in ScorePairs / ScorePairsOn. Batches
  /// keep the transient design matrix small even for hundreds of thousands
  /// of candidate pairs, and are the unit of parallel scoring. The batch
  /// size only affects memory and scheduling, never scores.
  size_t score_batch_size = 4096;
  /// Thread cap for this matcher's parallel work (per-property feature
  /// aggregation, design-matrix assembly, batched scoring). 0 = full
  /// process-wide pool width (--threads / LEAPME_THREADS / hardware);
  /// 1 = fully sequential. Results are bit-identical at any setting.
  size_t threads = 0;
};

/// Result of the two-step (blocking -> scoring) pipeline: the candidate
/// pairs a blocker selected and their scores, aligned by index.
struct BlockedScores {
  std::vector<data::PropertyPair> candidates;
  std::vector<double> scores;
};

/// LEAPME (Algorithm 1): supervised property matching with embedding and
/// instance features.
///
/// Usage:
///   LeapmeMatcher matcher(&model, options);
///   LEAPME_RETURN_IF_ERROR(matcher.Fit(dataset, training_pairs));
///   auto scores = matcher.ScorePairs(test_pairs);
///   auto graph = matcher.BuildSimilarityGraph(test_pairs);
class LeapmeMatcher {
 public:
  /// `model` must outlive the matcher.
  LeapmeMatcher(const embedding::EmbeddingModel* model,
                LeapmeOptions options = {});

  /// Algorithm 1 steps 1-5: computes instance/property features for every
  /// property of `dataset`, assembles pair features for the labeled
  /// `training_pairs`, and trains the neural classifier.
  Status Fit(const data::Dataset& dataset,
             const std::vector<data::LabeledPair>& training_pairs);

  /// Similarity score (positive-class softmax output) for each pair.
  /// Requires a successful Fit on the same dataset.
  StatusOr<std::vector<double>> ScorePairs(
      const std::vector<data::PropertyPair>& pairs);

  /// Hard 0/1 decisions at the configured threshold.
  StatusOr<std::vector<int32_t>> ClassifyPairs(
      const std::vector<data::PropertyPair>& pairs);

  /// Scores `pairs` and returns the similarity graph containing every pair
  /// whose score reaches the decision threshold (the paper's Sim output).
  StatusOr<graph::SimilarityGraph> BuildSimilarityGraph(
      const std::vector<data::PropertyPair>& pairs);

  /// The two-step pipeline, fitted-dataset flavor: candidate generation
  /// via `pipeline` followed by scoring only the candidates. `dataset`
  /// must be the dataset this matcher was Fit on. With the `all-pairs`
  /// passthrough blocker the candidate list equals
  /// dataset.AllCrossSourcePairs() and the scores are bit-identical to
  /// ScorePairs over that list — blocking never changes a score, only
  /// which pairs get one.
  StatusOr<BlockedScores> ScoreCandidates(
      const data::Dataset& dataset, blocking::CandidatePipeline& pipeline);

  /// The two-step pipeline over a foreign dataset (ScorePairsOn
  /// semantics: features computed on the fly, fitted scaler reused).
  /// This is the saved-model / transfer path.
  StatusOr<BlockedScores> ScoreCandidatesOn(
      const data::Dataset& dataset, blocking::CandidatePipeline& pipeline);

  /// Transfer matching: scores pairs of a *different* dataset with the
  /// classifier trained by Fit. Property features of `dataset` are
  /// computed on the fly against the same embedding model; the fitted
  /// feature scaler is reused. This is the §V transfer-learning setting:
  /// train on one product domain, match another.
  StatusOr<std::vector<double>> ScorePairsOn(
      const data::Dataset& dataset,
      const std::vector<data::PropertyPair>& pairs);

  /// Scores pairs of externally supplied, already-computed property
  /// features: row i pairs `*lhs[i]` with `*rhs[i]`. This is the online
  /// serving entry point — const and safe to call concurrently on one
  /// fitted/loaded matcher (it touches only the const inference path).
  /// Scores are bit-identical to ScorePairs/ScorePairsOn over the same
  /// properties at any batch split or thread count.
  StatusOr<std::vector<double>> ScoreFeaturePairs(
      const std::vector<const features::PropertyFeatures*>& lhs,
      const std::vector<const features::PropertyFeatures*>& rhs) const;

  /// ScoreFeaturePairs with graceful degradation: rows whose entry in
  /// `degraded_rows` is non-zero are scored with every embedding-derived
  /// column of the classifier input neutralized (imputed to the training
  /// mean when standardizing, zero otherwise), so a pair whose embedding
  /// lookups failed still gets a score from its instance/name features.
  /// Rows with a zero mask entry are bit-identical to the two-argument
  /// overload. `degraded_rows` may be null (no degradation) or must have
  /// lhs.size() entries.
  StatusOr<std::vector<double>> ScoreFeaturePairs(
      const std::vector<const features::PropertyFeatures*>& lhs,
      const std::vector<const features::PropertyFeatures*>& rhs,
      const std::vector<uint8_t>* degraded_rows) const;

  /// Computes the property features of one property exactly as Fit /
  /// ScorePairsOn would (same pipeline, same embedding model). Const and
  /// thread-safe; pair with ScoreFeaturePairs for online serving.
  features::PropertyFeatures ComputePropertyFeatures(
      std::string_view name, std::span<const std::string> values) const {
    return pipeline_.ComputeProperty(name, values);
  }

  /// Mean training loss per epoch of the last Fit.
  const std::vector<double>& training_losses() const {
    return training_losses_;
  }

  /// The active decision threshold (equals options().decision_threshold
  /// unless calibration replaced it during Fit).
  double decision_threshold() const { return decision_threshold_; }

  /// Width of the classifier input under the active feature config.
  size_t input_dimension() const { return columns_.size(); }

  const LeapmeOptions& options() const { return options_; }

  /// The feature pipeline this matcher computes with (schema, fingerprint,
  /// per-stage timings).
  const features::FeaturePipeline& pipeline() const { return pipeline_; }

  /// True after a successful Fit or LoadModel.
  bool fitted() const { return fitted_; }

  /// On-disk format version this matcher was restored from: 1 for legacy
  /// pre-fingerprint files, 2 for current files. A matcher that was
  /// fitted in-process (never persisted) reports the current format.
  int loaded_format_version() const { return loaded_format_version_; }

  /// Precomputed features of property `id` (valid after Fit).
  const features::PropertyFeatures& property_features(
      data::PropertyId id) const {
    return property_features_[id];
  }

  /// Persists the trained classifier (network weights, feature scaler,
  /// selected feature columns and decision threshold) to `path` in the
  /// `leapme-matcher 2` format, which records the feature-schema
  /// fingerprint. The cached per-dataset property features are not
  /// saved — a loaded matcher scores new datasets via ScorePairsOn.
  Status SaveModel(const std::string& path) const;

  /// Restores a matcher saved with SaveModel. `model` must have the same
  /// embedding dimension as at save time (FailedPrecondition otherwise).
  /// v2 files additionally prove their feature-schema fingerprint against
  /// the live pipeline's; a mismatch (e.g. a stage version bumped since
  /// the model was trained) is a FailedPrecondition, never a silent
  /// mis-score. v1 files (no fingerprint) still load with a warning.
  static StatusOr<LeapmeMatcher> LoadModel(
      const embedding::EmbeddingModel* model, const std::string& path);

 private:
  /// Builds the (masked) design matrix for a pair list.
  nn::Matrix DesignMatrix(const std::vector<data::PropertyPair>& pairs) const;

  const embedding::EmbeddingModel* model_;
  LeapmeOptions options_;
  features::FeaturePipeline pipeline_;
  std::vector<size_t> columns_;  // selected feature columns
  Status columns_error_ = Status::OK();  // deferred feature_stages error
  std::vector<features::PropertyFeatures> property_features_;
  size_t property_count_ = 0;
  ml::StandardScaler scaler_;
  nn::Mlp mlp_;
  double decision_threshold_ = 0.5;
  bool fitted_ = false;
  int loaded_format_version_ = 2;
  std::vector<double> training_losses_;
};

}  // namespace leapme::core

#endif  // LEAPME_CORE_LEAPME_H_
