#include "core/leapme.h"

#include <unistd.h>

#include <algorithm>
#include <fstream>

#include "common/faults/fault_injector.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/string_util.h"
#include "ml/metrics.h"

namespace leapme::core {

namespace {

/// Upper bound on persisted vector lengths (feature columns, scaler
/// statistics). Real models stay orders of magnitude below this; counts
/// above it mean a corrupt or hostile file and must not drive a resize.
constexpr size_t kMaxPersistedVectorSize = 1 << 20;

}  // namespace

LeapmeMatcher::LeapmeMatcher(const embedding::EmbeddingModel* model,
                             LeapmeOptions options)
    : model_(model),
      options_(std::move(options)),
      pipeline_(model, options_.pair_features) {
  if (options_.feature_stages.empty()) {
    columns_ = pipeline_.schema().SelectedColumns(options_.feature_config);
  } else {
    // Stage-mask selection. A constructor cannot fail, so an unknown
    // stage name is deferred until Fit.
    StatusOr<std::vector<size_t>> columns =
        pipeline_.schema().StageColumns(options_.feature_stages);
    if (columns.ok()) {
      columns_ = std::move(columns).value();
    } else {
      columns_error_ = columns.status();
    }
  }
}

Status LeapmeMatcher::Fit(
    const data::Dataset& dataset,
    const std::vector<data::LabeledPair>& training_pairs) {
  if (training_pairs.empty()) {
    return Status::InvalidArgument("no training pairs");
  }
  if (!columns_error_.ok()) {
    return columns_error_;
  }
  if (options_.calibration_fraction < 0.0 ||
      options_.calibration_fraction >= 1.0) {
    return Status::InvalidArgument("calibration_fraction must be in [0, 1)");
  }
  decision_threshold_ = options_.decision_threshold;
  if (columns_.empty()) {
    return Status::InvalidArgument(
        "feature config selects no features: " +
        options_.feature_config.ToString());
  }

  // Algorithm 1 steps 1-3: instance features and per-property aggregation
  // for every property of the dataset. Properties are independent, so the
  // loop fans out across the thread pool (each slot written exactly once).
  property_count_ = dataset.property_count();
  property_features_.assign(property_count_, {});
  ParallelFor(0, property_count_, /*grain=*/1, options_.threads,
              [&](size_t begin, size_t end) {
                std::vector<std::string> values;
                for (size_t id = begin; id < end; ++id) {
                  const auto& instances =
                      dataset.instances(static_cast<data::PropertyId>(id));
                  values.clear();
                  values.reserve(instances.size());
                  for (const data::InstanceValue& instance : instances) {
                    values.push_back(instance.value);
                  }
                  property_features_[id] = pipeline_.ComputeProperty(
                      dataset.property(static_cast<data::PropertyId>(id)).name,
                      values);
                }
              });

  // Step 4: pair features for the labeled pairs.
  std::vector<data::PropertyPair> pairs;
  std::vector<int32_t> labels;
  pairs.reserve(training_pairs.size());
  labels.reserve(training_pairs.size());
  for (const data::LabeledPair& labeled : training_pairs) {
    if (labeled.pair.a >= property_count_ ||
        labeled.pair.b >= property_count_) {
      return Status::InvalidArgument(
          StrFormat("training pair (%u, %u) out of range", labeled.pair.a,
                    labeled.pair.b));
    }
    pairs.push_back(labeled.pair);
    labels.push_back(labeled.label != 0 ? 1 : 0);
  }
  nn::Matrix design = DesignMatrix(pairs);
  if (options_.standardize_features) {
    LEAPME_RETURN_IF_ERROR(scaler_.FitTransform(&design));
  }

  // Step 5: train the classifier.
  Rng init_rng(options_.seed);
  mlp_ = nn::BuildMlp(columns_.size(), options_.hidden_sizes,
                      /*num_classes=*/2, init_rng, options_.dropout_rate);
  nn::Trainer trainer(options_.trainer);

  // Optional threshold calibration: hold out the tail of the (already
  // shuffled) pair list, train on the head, sweep thresholds on the
  // holdout, then adopt the best-F1 threshold.
  size_t train_rows = design.rows();
  size_t holdout_rows = 0;
  if (options_.calibration_fraction > 0.0) {
    holdout_rows = static_cast<size_t>(options_.calibration_fraction *
                                       static_cast<double>(design.rows()));
    holdout_rows = std::min(holdout_rows, design.rows() - 1);
    train_rows = design.rows() - holdout_rows;
  }
  if (holdout_rows == 0) {
    LEAPME_ASSIGN_OR_RETURN(training_losses_,
                            trainer.Fit(mlp_, design, labels));
    fitted_ = true;
    return Status::OK();
  }

  nn::Matrix train_design = design.RowSlice(0, train_rows);
  std::vector<int32_t> train_labels(labels.begin(),
                                    labels.begin() + train_rows);
  LEAPME_ASSIGN_OR_RETURN(training_losses_,
                          trainer.Fit(mlp_, train_design, train_labels));

  nn::Matrix holdout_design = design.RowSlice(train_rows, design.rows());
  std::vector<int32_t> holdout_labels(labels.begin() + train_rows,
                                      labels.end());
  nn::Matrix probabilities;
  mlp_.Predict(holdout_design, &probabilities);
  std::vector<double> holdout_scores(probabilities.rows());
  for (size_t i = 0; i < probabilities.rows(); ++i) {
    holdout_scores[i] = probabilities(i, 1);
  }
  ml::PrPoint best = ml::BestF1Point(holdout_scores, holdout_labels);
  if (best.f1 > 0.0) {
    decision_threshold_ = best.threshold;
  }
  fitted_ = true;
  return Status::OK();
}

nn::Matrix LeapmeMatcher::DesignMatrix(
    const std::vector<data::PropertyPair>& pairs) const {
  std::vector<const features::PropertyFeatures*> lhs;
  std::vector<const features::PropertyFeatures*> rhs;
  lhs.reserve(pairs.size());
  rhs.reserve(pairs.size());
  for (const data::PropertyPair& pair : pairs) {
    lhs.push_back(&property_features_[pair.a]);
    rhs.push_back(&property_features_[pair.b]);
  }
  return pipeline_.BuildDesignMatrix(lhs, rhs, columns_, options_.threads);
}

StatusOr<std::vector<double>> LeapmeMatcher::ScoreFeaturePairs(
    const std::vector<const features::PropertyFeatures*>& lhs,
    const std::vector<const features::PropertyFeatures*>& rhs) const {
  return ScoreFeaturePairs(lhs, rhs, /*degraded_rows=*/nullptr);
}

StatusOr<std::vector<double>> LeapmeMatcher::ScoreFeaturePairs(
    const std::vector<const features::PropertyFeatures*>& lhs,
    const std::vector<const features::PropertyFeatures*>& rhs,
    const std::vector<uint8_t>* degraded_rows) const {
  if (!fitted_) {
    return Status::FailedPrecondition(
        "ScoreFeaturePairs called before Fit/LoadModel");
  }
  if (lhs.size() != rhs.size()) {
    return Status::InvalidArgument(
        StrFormat("lhs/rhs size mismatch: %zu vs %zu", lhs.size(),
                  rhs.size()));
  }
  if (degraded_rows != nullptr && degraded_rows->size() != lhs.size()) {
    return Status::InvalidArgument(
        StrFormat("degraded mask size mismatch: %zu vs %zu pairs",
                  degraded_rows->size(), lhs.size()));
  }
  for (size_t i = 0; i < lhs.size(); ++i) {
    if (lhs[i] == nullptr || rhs[i] == nullptr) {
      return Status::InvalidArgument(
          StrFormat("null property features at row %zu", i));
    }
  }
  // Positions (within the selected columns) of embedding-derived slots —
  // the columns neutralized for degraded rows.
  std::vector<size_t> embedding_positions;
  if (degraded_rows != nullptr) {
    const features::FeatureSchema& schema = pipeline_.schema();
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (schema.slot(columns_[i]).is_embedding) {
        embedding_positions.push_back(i);
      }
    }
  }
  // Batches bound the transient design matrix and score in parallel; each
  // batch writes its own score range through the const inference path.
  const size_t batch = std::max<size_t>(1, options_.score_batch_size);
  std::vector<double> scores(lhs.size());
  LEAPME_RETURN_IF_ERROR(ParallelForStatus(
      0, lhs.size(), batch,
      [&](size_t start, size_t end) -> Status {
        std::vector<const features::PropertyFeatures*> chunk_lhs(
            lhs.begin() + start, lhs.begin() + end);
        std::vector<const features::PropertyFeatures*> chunk_rhs(
            rhs.begin() + start, rhs.begin() + end);
        nn::Matrix design = pipeline_.BuildDesignMatrix(
            chunk_lhs, chunk_rhs, columns_, options_.threads);
        if (options_.standardize_features) {
          LEAPME_RETURN_IF_ERROR(scaler_.Transform(&design));
        }
        // Degraded rows: neutralize the embedding columns after
        // standardization, so each masked feature sits at the training
        // mean (z = 0) instead of an out-of-distribution raw zero. Rows
        // without a mask entry are untouched and stay bit-identical.
        if (degraded_rows != nullptr) {
          for (size_t row = start; row < end; ++row) {
            if ((*degraded_rows)[row] == 0) continue;
            for (const size_t position : embedding_positions) {
              design(row - start, position) = 0.0f;
            }
          }
        }
        nn::Matrix probabilities;
        mlp_.Infer(design, &probabilities);
        for (size_t i = 0; i < probabilities.rows(); ++i) {
          scores[start + i] = probabilities(i, 1);  // positive-class output
        }
        return Status::OK();
      },
      options_.threads));
  return scores;
}

StatusOr<std::vector<double>> LeapmeMatcher::ScorePairs(
    const std::vector<data::PropertyPair>& pairs) {
  if (!fitted_) {
    return Status::FailedPrecondition("ScorePairs called before Fit");
  }
  std::vector<const features::PropertyFeatures*> lhs;
  std::vector<const features::PropertyFeatures*> rhs;
  lhs.reserve(pairs.size());
  rhs.reserve(pairs.size());
  for (const data::PropertyPair& pair : pairs) {
    if (pair.a >= property_count_ || pair.b >= property_count_) {
      return Status::InvalidArgument(
          StrFormat("pair (%u, %u) out of range", pair.a, pair.b));
    }
    lhs.push_back(&property_features_[pair.a]);
    rhs.push_back(&property_features_[pair.b]);
  }
  return ScoreFeaturePairs(lhs, rhs);
}

StatusOr<std::vector<int32_t>> LeapmeMatcher::ClassifyPairs(
    const std::vector<data::PropertyPair>& pairs) {
  LEAPME_ASSIGN_OR_RETURN(std::vector<double> scores, ScorePairs(pairs));
  std::vector<int32_t> decisions(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    decisions[i] = scores[i] >= decision_threshold_ ? 1 : 0;
  }
  return decisions;
}

StatusOr<BlockedScores> LeapmeMatcher::ScoreCandidates(
    const data::Dataset& dataset, blocking::CandidatePipeline& pipeline) {
  BlockedScores result;
  LEAPME_ASSIGN_OR_RETURN(result.candidates, pipeline.Candidates(dataset));
  LEAPME_ASSIGN_OR_RETURN(result.scores, ScorePairs(result.candidates));
  return result;
}

StatusOr<BlockedScores> LeapmeMatcher::ScoreCandidatesOn(
    const data::Dataset& dataset, blocking::CandidatePipeline& pipeline) {
  BlockedScores result;
  LEAPME_ASSIGN_OR_RETURN(result.candidates, pipeline.Candidates(dataset));
  LEAPME_ASSIGN_OR_RETURN(result.scores,
                          ScorePairsOn(dataset, result.candidates));
  return result;
}

StatusOr<std::vector<double>> LeapmeMatcher::ScorePairsOn(
    const data::Dataset& dataset,
    const std::vector<data::PropertyPair>& pairs) {
  if (!fitted_) {
    return Status::FailedPrecondition("ScorePairsOn called before Fit");
  }
  // Features for the foreign dataset's properties, in parallel as in Fit.
  std::vector<features::PropertyFeatures> foreign(dataset.property_count());
  ParallelFor(0, dataset.property_count(), /*grain=*/1, options_.threads,
              [&](size_t begin, size_t end) {
                std::vector<std::string> values;
                for (size_t id = begin; id < end; ++id) {
                  values.clear();
                  for (const data::InstanceValue& instance :
                       dataset.instances(static_cast<data::PropertyId>(id))) {
                    values.push_back(instance.value);
                  }
                  foreign[id] = pipeline_.ComputeProperty(
                      dataset.property(static_cast<data::PropertyId>(id)).name,
                      values);
                }
              });

  std::vector<const features::PropertyFeatures*> lhs;
  std::vector<const features::PropertyFeatures*> rhs;
  lhs.reserve(pairs.size());
  rhs.reserve(pairs.size());
  for (const data::PropertyPair& pair : pairs) {
    if (pair.a >= foreign.size() || pair.b >= foreign.size()) {
      return Status::InvalidArgument(
          StrFormat("pair (%u, %u) out of range", pair.a, pair.b));
    }
    lhs.push_back(&foreign[pair.a]);
    rhs.push_back(&foreign[pair.b]);
  }
  return ScoreFeaturePairs(lhs, rhs);
}

StatusOr<graph::SimilarityGraph> LeapmeMatcher::BuildSimilarityGraph(
    const std::vector<data::PropertyPair>& pairs) {
  LEAPME_ASSIGN_OR_RETURN(std::vector<double> scores, ScorePairs(pairs));
  graph::SimilarityGraph graph(property_count_);
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (scores[i] >= decision_threshold_) {
      graph.AddEdge(pairs[i].a, pairs[i].b, scores[i]);
    }
  }
  return graph;
}

Status LeapmeMatcher::SaveModel(const std::string& path) const {
  if (!fitted_) {
    return Status::FailedPrecondition("SaveModel called before Fit");
  }
  const std::optional<faults::FaultHit> fault =
      faults::FaultInjector::Global().Evaluate("model.save");
  if (fault.has_value() && fault->kind == faults::FaultKind::kError) {
    return Status::IoError("injected model.save failure: " + path);
  }
  const std::string mlp_path = path + ".mlp";
  LEAPME_RETURN_IF_ERROR(nn::SaveMlp(mlp_, mlp_path));

  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open for writing: " + path);
  }
  // Threshold and scaler statistics must parse back to the exact same
  // values, so restored matchers score bit-identically to the original.
  out.precision(17);
  out << "leapme-matcher 2\n";
  out << "embedding_dim " << model_->dimension() << "\n";
  out << "fingerprint " << pipeline_.schema().fingerprint() << "\n";
  out << "threshold " << decision_threshold_ << "\n";
  out << "standardize " << (options_.standardize_features ? 1 : 0) << "\n";
  out << "absolute_diff "
      << (options_.pair_features.absolute_difference ? 1 : 0) << "\n";
  out << "normalize_distances "
      << (options_.pair_features.normalize_string_distances ? 1 : 0) << "\n";
  out << "max_instances "
      << options_.pair_features.max_instances_per_property << "\n";
  out << "origin " << static_cast<int>(options_.feature_config.origin)
      << "\n";
  out << "kinds " << static_cast<int>(options_.feature_config.kinds) << "\n";
  if (!options_.feature_stages.empty()) {
    out << "stages " << options_.feature_stages.size();
    for (const std::string& stage : options_.feature_stages) {
      out << " " << stage;
    }
    out << "\n";
  }
  out << "columns " << columns_.size();
  for (size_t column : columns_) {
    out << " " << column;
  }
  out << "\n";
  out << "scaler " << (scaler_.fitted() ? scaler_.mean().size() : 0) << "\n";
  if (scaler_.fitted()) {
    for (float value : scaler_.mean()) out << value << " ";
    out << "\n";
    for (float value : scaler_.stddev()) out << value << " ";
    out << "\n";
  }
  // End-of-file sentinel: a truncated tail can otherwise still parse (a
  // shortened final float is a valid float), so v2 loaders require this
  // marker to prove the file is complete.
  out << "end leapme\n";
  if (!out) {
    return Status::IoError("write failed: " + path);
  }
  if (fault.has_value() && (fault->kind == faults::FaultKind::kTruncate ||
                            fault->kind == faults::FaultKind::kShortIo)) {
    // Torn write: flush the full file, then cut it to `param` bytes — the
    // on-disk state a crash mid-write leaves behind. LoadModel must
    // refuse the remnant (Corruption), never score with it.
    out.close();
    ::truncate(path.c_str(),
               static_cast<off_t>(std::min<uint64_t>(fault->param, 1u << 30)));
    return Status::IoError("injected torn write: " + path);
  }
  return Status::OK();
}

StatusOr<LeapmeMatcher> LeapmeMatcher::LoadModel(
    const embedding::EmbeddingModel* model, const std::string& path) {
  if (faults::InjectError("model.load")) {
    return Status::IoError("injected model.load failure: " + path);
  }
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open: " + path);
  }
  std::string magic;
  int version = 0;
  in >> magic >> version;
  if (magic != "leapme-matcher" || (version != 1 && version != 2)) {
    return Status::Corruption("bad matcher header in " + path);
  }

  LeapmeOptions options;
  std::string key;
  size_t embedding_dim = 0;
  std::string fingerprint;
  std::vector<size_t> columns;
  std::vector<float> scaler_mean;
  std::vector<float> scaler_stddev;
  bool saw_end = false;
  while (in >> key) {
    if (key == "embedding_dim") {
      in >> embedding_dim;
    } else if (key == "fingerprint") {
      in >> fingerprint;
    } else if (key == "max_instances") {
      in >> options.pair_features.max_instances_per_property;
    } else if (key == "stages") {
      size_t count = 0;
      in >> count;
      if (!in || count > kMaxPersistedVectorSize) {
        return Status::Corruption("bad stage count in " + path);
      }
      options.feature_stages.resize(count);
      for (std::string& stage : options.feature_stages) in >> stage;
      if (!in) {
        return Status::Corruption("truncated stage list in " + path);
      }
    } else if (key == "threshold") {
      in >> options.decision_threshold;
    } else if (key == "standardize") {
      int flag = 0;
      in >> flag;
      options.standardize_features = flag != 0;
    } else if (key == "absolute_diff") {
      int flag = 0;
      in >> flag;
      options.pair_features.absolute_difference = flag != 0;
    } else if (key == "normalize_distances") {
      int flag = 0;
      in >> flag;
      options.pair_features.normalize_string_distances = flag != 0;
    } else if (key == "origin") {
      int value = 0;
      in >> value;
      options.feature_config.origin =
          static_cast<features::OriginSelection>(value);
    } else if (key == "kinds") {
      int value = 0;
      in >> value;
      options.feature_config.kinds =
          static_cast<features::KindSelection>(value);
    } else if (key == "columns") {
      size_t count = 0;
      in >> count;
      // Bound the allocation before trusting the count: the widest
      // feature schema has well under 10^4 columns, so anything larger
      // is a corrupt or hostile file, not a real model.
      if (!in || count > kMaxPersistedVectorSize) {
        return Status::Corruption("bad column count in " + path);
      }
      columns.resize(count);
      for (size_t& column : columns) in >> column;
      if (!in) {
        return Status::Corruption("truncated column list in " + path);
      }
    } else if (key == "scaler") {
      size_t count = 0;
      in >> count;
      if (!in || count > kMaxPersistedVectorSize) {
        return Status::Corruption("bad scaler size in " + path);
      }
      scaler_mean.resize(count);
      scaler_stddev.resize(count);
      for (float& value : scaler_mean) in >> value;
      for (float& value : scaler_stddev) in >> value;
      if (!in) {
        return Status::Corruption("truncated scaler statistics in " + path);
      }
    } else if (key == "end") {
      std::string marker;
      in >> marker;
      if (marker != "leapme") {
        return Status::Corruption("bad end-of-file marker in " + path);
      }
      saw_end = true;
    } else {
      return Status::Corruption("unknown key '" + key + "' in " + path);
    }
    if (!in) {
      return Status::Corruption("truncated value for key '" + key +
                                "' in " + path);
    }
  }
  if (embedding_dim == 0) {
    return Status::Corruption("missing embedding_dim in " + path);
  }
  // v1 predates the sentinel; a v2 file without it is a torn write — a
  // truncated numeric tail can parse cleanly, so EOF alone proves nothing.
  if (version >= 2 && !saw_end) {
    return Status::Corruption("missing end-of-file marker in " + path +
                              " (torn write?)");
  }
  if (model->dimension() != embedding_dim) {
    return Status::FailedPrecondition(StrFormat(
        "model %s was trained with embedding dimension %zu but the live "
        "embedding model has dimension %zu",
        path.c_str(), embedding_dim, model->dimension()));
  }

  LeapmeMatcher matcher(model, options);
  if (!matcher.columns_error_.ok()) {
    return matcher.columns_error_;
  }
  // Prove the live pipeline computes the same design matrix the model was
  // trained on. A v1 file predates fingerprints; a v2 file must carry one
  // and it must match the schema rebuilt from the persisted options.
  const std::string& live = matcher.pipeline_.schema().fingerprint();
  if (version < 2) {
    LEAPME_LOG(Warning)
        << "loading v1 model file " << path
        << " without a feature-schema fingerprint; assuming it matches the "
           "live pipeline (" << live << ")";
  } else if (fingerprint.empty()) {
    return Status::Corruption("missing fingerprint in v2 model " + path);
  } else if (fingerprint != live) {
    return Status::FailedPrecondition(StrFormat(
        "model %s was trained with feature schema %s but the live pipeline "
        "computes %s (%s); refusing to mis-score",
        path.c_str(), fingerprint.c_str(), live.c_str(),
        matcher.pipeline_.schema().canonical().c_str()));
  }
  if (matcher.columns_ != columns) {
    return Status::Corruption("saved columns disagree with feature config");
  }
  matcher.decision_threshold_ = options.decision_threshold;
  LEAPME_ASSIGN_OR_RETURN(matcher.mlp_, nn::LoadMlp(path + ".mlp"));
  if (!scaler_mean.empty()) {
    LEAPME_RETURN_IF_ERROR(
        matcher.scaler_.Restore(scaler_mean, scaler_stddev));
  }
  matcher.fitted_ = true;
  matcher.loaded_format_version_ = version;
  return matcher;
}

}  // namespace leapme::core
