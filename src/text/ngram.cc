#include "text/ngram.h"

#include <cmath>
#include <cstdlib>

namespace leapme::text {

NgramProfile::NgramProfile(std::string_view text, size_t n) : gram_size_(n) {
  if (n == 0 || text.size() < n) {
    return;
  }
  for (size_t i = 0; i + n <= text.size(); ++i) {
    ++grams_[std::string(text.substr(i, n))];
    ++total_;
  }
}

size_t NgramProfile::count(std::string_view gram) const {
  auto it = grams_.find(std::string(gram));
  return it == grams_.end() ? 0 : it->second;
}

double QgramDistance(const NgramProfile& a, const NgramProfile& b) {
  double distance = 0.0;
  for (const auto& [gram, count_a] : a.grams()) {
    size_t count_b = b.count(gram);
    distance += std::abs(static_cast<double>(count_a) -
                         static_cast<double>(count_b));
  }
  for (const auto& [gram, count_b] : b.grams()) {
    if (a.count(gram) == 0) {
      distance += static_cast<double>(count_b);
    }
  }
  return distance;
}

double CosineDistance(const NgramProfile& a, const NgramProfile& b) {
  if (a.total() == 0 && b.total() == 0) return 0.0;
  if (a.total() == 0 || b.total() == 0) return 1.0;
  double dot = 0.0;
  double norm_a = 0.0;
  double norm_b = 0.0;
  for (const auto& [gram, count_a] : a.grams()) {
    auto ca = static_cast<double>(count_a);
    norm_a += ca * ca;
    size_t count_b = b.count(gram);
    if (count_b > 0) {
      dot += ca * static_cast<double>(count_b);
    }
  }
  for (const auto& [gram, count_b] : b.grams()) {
    auto cb = static_cast<double>(count_b);
    norm_b += cb * cb;
  }
  return 1.0 - dot / (std::sqrt(norm_a) * std::sqrt(norm_b));
}

double JaccardDistance(const NgramProfile& a, const NgramProfile& b) {
  if (a.distinct() == 0 && b.distinct() == 0) return 0.0;
  if (a.distinct() == 0 || b.distinct() == 0) return 1.0;
  size_t intersection = 0;
  for (const auto& [gram, count_a] : a.grams()) {
    (void)count_a;
    if (b.count(gram) > 0) {
      ++intersection;
    }
  }
  size_t unions = a.distinct() + b.distinct() - intersection;
  return 1.0 - static_cast<double>(intersection) / static_cast<double>(unions);
}

}  // namespace leapme::text
