#include "text/char_class.h"

#include <cctype>

namespace leapme::text {

namespace {

bool IsPunctuationChar(unsigned char c) {
  switch (c) {
    case '.':
    case ',':
    case ';':
    case ':':
    case '!':
    case '?':
    case '\'':
    case '"':
    case '(':
    case ')':
    case '[':
    case ']':
    case '{':
    case '}':
    case '-':
    case '_':
    case '/':
    case '\\':
    case '#':
    case '%':
    case '&':
    case '*':
    case '@':
      return true;
    default:
      return false;
  }
}

bool IsSymbolChar(unsigned char c) {
  switch (c) {
    case '$':
    case '+':
    case '<':
    case '=':
    case '>':
    case '^':
    case '`':
    case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

}  // namespace

CharClass ClassifyChar(unsigned char c) {
  if (c >= 'A' && c <= 'Z') return CharClass::kUppercaseLetter;
  if (c >= 'a' && c <= 'z') return CharClass::kLowercaseLetter;
  if (c >= '0' && c <= '9') return CharClass::kNumber;
  if (std::isspace(c)) return CharClass::kSeparator;
  if (IsPunctuationChar(c)) return CharClass::kPunctuation;
  if (IsSymbolChar(c)) return CharClass::kSymbol;
  if (c >= 0xC0) return CharClass::kOtherLetter;  // UTF-8 lead byte
  if (c >= 0x80) return CharClass::kMark;         // UTF-8 continuation byte
  return CharClass::kOther;
}

CharClassCounts CountCharClasses(std::string_view text) {
  CharClassCounts result;
  for (unsigned char c : text) {
    ++result.counts[static_cast<size_t>(ClassifyChar(c))];
  }
  result.total = text.size();
  return result;
}

bool IsLetter(unsigned char c) {
  CharClass cls = ClassifyChar(c);
  return cls == CharClass::kUppercaseLetter ||
         cls == CharClass::kLowercaseLetter || cls == CharClass::kOtherLetter;
}

}  // namespace leapme::text
