#ifndef LEAPME_TEXT_NGRAM_H_
#define LEAPME_TEXT_NGRAM_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>

namespace leapme::text {

/// Bag of character n-grams with multiplicities ("q-gram profile").
/// Profiles back the q-gram, cosine and Jaccard distances of Table I
/// (ids 12-14), following the semantics of the R `stringdist` package the
/// paper's implementation relies on: no padding; a string shorter than `n`
/// contributes no n-grams.
class NgramProfile {
 public:
  /// Builds the profile of `text` with gram size `n` (n >= 1).
  NgramProfile(std::string_view text, size_t n);

  size_t gram_size() const { return gram_size_; }

  /// Total number of grams (sum of multiplicities).
  size_t total() const { return total_; }

  /// Number of distinct grams.
  size_t distinct() const { return grams_.size(); }

  /// Multiplicity of `gram` (0 when absent).
  size_t count(std::string_view gram) const;

  const std::unordered_map<std::string, size_t>& grams() const {
    return grams_;
  }

 private:
  size_t gram_size_;
  size_t total_ = 0;
  std::unordered_map<std::string, size_t> grams_;
};

/// Sum over all grams of |count_a - count_b| (the stringdist "qgram"
/// distance). Two strings both shorter than the gram size have distance 0.
double QgramDistance(const NgramProfile& a, const NgramProfile& b);

/// 1 - cosine similarity between the gram count vectors. Returns 0 for two
/// empty profiles and 1 when exactly one profile is empty.
double CosineDistance(const NgramProfile& a, const NgramProfile& b);

/// 1 - |A ∩ B| / |A ∪ B| over the distinct gram sets. Returns 0 for two
/// empty profiles and 1 when exactly one profile is empty.
double JaccardDistance(const NgramProfile& a, const NgramProfile& b);

}  // namespace leapme::text

#endif  // LEAPME_TEXT_NGRAM_H_
