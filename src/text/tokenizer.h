#ifndef LEAPME_TEXT_TOKENIZER_H_
#define LEAPME_TEXT_TOKENIZER_H_

#include <array>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace leapme::text {

/// Token classes used by the TAPON-style instance meta-features
/// (Table I, id 2): words, lowercase-initial words, capitalized words,
/// uppercase words, numeric strings.
///
/// A single token can fall into several classes (e.g. "Nikon" is both a
/// word and a capitalized word), matching the paper's per-class
/// fraction/count features.
enum class TokenClass : int {
  kWord = 0,            ///< token consisting solely of letters
  kLowercaseWord = 1,   ///< word starting with a lowercase letter
  kCapitalizedWord = 2, ///< word starting uppercase followed by non-uppercase
  kUppercaseWord = 3,   ///< word of uppercase letters only (length >= 1)
  kNumericString = 4,   ///< token parseable as a number (digits, '.', sign)
};

/// Number of distinct token classes.
inline constexpr size_t kNumTokenClasses = 5;

/// Splits `text` into tokens at non-alphanumeric boundaries. A token is a
/// maximal run of letters and digits; everything else separates tokens.
/// "24.3 MP (approx.)" -> {"24", "3", "MP", "approx"}.
std::vector<std::string> Tokenize(std::string_view text);

/// Like Tokenize but keeps decimal points inside digit runs, so numeric
/// values survive as single tokens: "24.3 MP" -> {"24.3", "MP"}.
std::vector<std::string> TokenizeKeepNumbers(std::string_view text);

/// Lower-cased word tokens for embedding lookup: TokenizeKeepNumbers
/// followed by ASCII lower-casing.
std::vector<std::string> EmbeddingWords(std::string_view text);

/// True if `token` belongs to `token_class`.
bool TokenInClass(std::string_view token, TokenClass token_class);

/// Per-class token counts for a string.
struct TokenClassCounts {
  std::array<size_t, kNumTokenClasses> counts{};
  size_t total_tokens = 0;

  size_t count(TokenClass c) const { return counts[static_cast<size_t>(c)]; }
  /// Fraction of tokens in class `c`; 0 when there are no tokens.
  double fraction(TokenClass c) const {
    return total_tokens == 0 ? 0.0
                             : static_cast<double>(count(c)) /
                                   static_cast<double>(total_tokens);
  }
};

/// Tokenizes `text` (keeping numbers) and counts token classes.
TokenClassCounts CountTokenClasses(std::string_view text);

}  // namespace leapme::text

#endif  // LEAPME_TEXT_TOKENIZER_H_
