#include "text/string_metrics.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "text/ngram.h"

namespace leapme::text {

namespace {

constexpr size_t kQgramSize = 3;

}  // namespace

size_t Levenshtein(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return m;
  if (m == 0) return n;
  // Single-row DP over the shorter string to bound memory.
  if (m > n) return Levenshtein(b, a);
  std::vector<size_t> row(m + 1);
  for (size_t j = 0; j <= m; ++j) row[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    size_t diagonal = row[0];
    row[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      size_t substitution = diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitution});
    }
  }
  return row[m];
}

size_t OptimalStringAlignment(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return m;
  if (m == 0) return n;
  // Three rolling rows: i-2, i-1, i.
  std::vector<size_t> prev2(m + 1);
  std::vector<size_t> prev(m + 1);
  std::vector<size_t> cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
      if (i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1]) {
        cur[j] = std::min(cur[j], prev2[j - 2] + 1);
      }
    }
    std::swap(prev2, prev);
    std::swap(prev, cur);
  }
  return prev[m];
}

size_t DamerauLevenshtein(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return m;
  if (m == 0) return n;
  // Lowrance-Wagner algorithm with full transposition support.
  const size_t kInf = n + m;
  std::vector<std::vector<size_t>> d(n + 2, std::vector<size_t>(m + 2, 0));
  d[0][0] = kInf;
  for (size_t i = 0; i <= n; ++i) {
    d[i + 1][0] = kInf;
    d[i + 1][1] = i;
  }
  for (size_t j = 0; j <= m; ++j) {
    d[0][j + 1] = kInf;
    d[1][j + 1] = j;
  }
  std::unordered_map<char, size_t> last_row;
  for (size_t i = 1; i <= n; ++i) {
    size_t last_match_col = 0;
    for (size_t j = 1; j <= m; ++j) {
      size_t i1 = last_row.count(b[j - 1]) ? last_row[b[j - 1]] : 0;
      size_t j1 = last_match_col;
      size_t cost = 1;
      if (a[i - 1] == b[j - 1]) {
        cost = 0;
        last_match_col = j;
      }
      size_t substitution = d[i][j] + cost;
      size_t insertion = d[i + 1][j] + 1;
      size_t deletion = d[i][j + 1] + 1;
      size_t transposition = kInf;
      if (i1 > 0 && j1 > 0) {
        transposition = d[i1][j1] + (i - i1 - 1) + 1 + (j - j1 - 1);
      }
      d[i + 1][j + 1] =
          std::min({substitution, insertion, deletion, transposition});
    }
    last_row[a[i - 1]] = i;
  }
  return d[n + 1][m + 1];
}

size_t LongestCommonSubsequence(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 || m == 0) return 0;
  if (m > n) return LongestCommonSubsequence(b, a);
  std::vector<size_t> row(m + 1, 0);
  for (size_t i = 1; i <= n; ++i) {
    size_t diagonal = 0;
    for (size_t j = 1; j <= m; ++j) {
      size_t above = row[j];
      if (a[i - 1] == b[j - 1]) {
        row[j] = diagonal + 1;
      } else {
        row[j] = std::max(row[j], row[j - 1]);
      }
      diagonal = above;
    }
  }
  return row[m];
}

size_t LcsDistance(std::string_view a, std::string_view b) {
  return a.size() + b.size() - 2 * LongestCommonSubsequence(a, b);
}

double ThreeGramDistance(std::string_view a, std::string_view b) {
  return QgramDistance(NgramProfile(a, kQgramSize),
                       NgramProfile(b, kQgramSize));
}

double ThreeGramCosineDistance(std::string_view a, std::string_view b) {
  return CosineDistance(NgramProfile(a, kQgramSize),
                        NgramProfile(b, kQgramSize));
}

double ThreeGramJaccardDistance(std::string_view a, std::string_view b) {
  return JaccardDistance(NgramProfile(a, kQgramSize),
                         NgramProfile(b, kQgramSize));
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 && m == 0) return 1.0;
  if (n == 0 || m == 0) return 0.0;
  const size_t window =
      std::max(n, m) <= 1 ? 0 : std::max(n, m) / 2 - 1;
  std::vector<bool> a_matched(n, false);
  std::vector<bool> b_matched(m, false);
  size_t matches = 0;
  for (size_t i = 0; i < n; ++i) {
    size_t lo = i > window ? i - window : 0;
    size_t hi = std::min(m, i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (!b_matched[j] && a[i] == b[j]) {
        a_matched[i] = true;
        b_matched[j] = true;
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) return 0.0;
  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  double mm = static_cast<double>(matches);
  return (mm / static_cast<double>(n) + mm / static_cast<double>(m) +
          (mm - static_cast<double>(transpositions) / 2.0) / mm) /
         3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale) {
  double jaro = JaroSimilarity(a, b);
  size_t prefix = 0;
  size_t limit = std::min({a.size(), b.size(), size_t{4}});
  while (prefix < limit && a[prefix] == b[prefix]) ++prefix;
  return jaro + static_cast<double>(prefix) * prefix_scale * (1.0 - jaro);
}

double JaroWinklerDistance(std::string_view a, std::string_view b,
                           double prefix_scale) {
  return 1.0 - JaroWinklerSimilarity(a, b, prefix_scale);
}

double NormalizedByMaxLength(size_t distance, std::string_view a,
                             std::string_view b) {
  size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 0.0;
  return static_cast<double>(distance) / static_cast<double>(longest);
}

}  // namespace leapme::text
