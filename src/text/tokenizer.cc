#include "text/tokenizer.h"

#include <cctype>

#include "common/string_util.h"
#include "text/char_class.h"

namespace leapme::text {

namespace {

bool IsTokenChar(unsigned char c) {
  return IsLetter(c) || (c >= '0' && c <= '9');
}

bool IsDigit(unsigned char c) { return c >= '0' && c <= '9'; }

bool IsUpper(unsigned char c) { return c >= 'A' && c <= 'Z'; }
bool IsLower(unsigned char c) { return c >= 'a' && c <= 'z'; }

std::vector<std::string> TokenizeImpl(std::string_view text,
                                      bool keep_decimal_points) {
  std::vector<std::string> tokens;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    auto c = static_cast<unsigned char>(text[i]);
    if (!IsTokenChar(c)) {
      ++i;
      continue;
    }
    size_t start = i;
    while (i < n) {
      auto cur = static_cast<unsigned char>(text[i]);
      if (IsTokenChar(cur)) {
        ++i;
        continue;
      }
      // Keep a '.' or ',' that is surrounded by digits ("24.3", "1,5").
      if (keep_decimal_points && (cur == '.' || cur == ',') && i > start &&
          IsDigit(static_cast<unsigned char>(text[i - 1])) && i + 1 < n &&
          IsDigit(static_cast<unsigned char>(text[i + 1]))) {
        ++i;
        continue;
      }
      break;
    }
    tokens.emplace_back(text.substr(start, i - start));
  }
  return tokens;
}

}  // namespace

std::vector<std::string> Tokenize(std::string_view text) {
  return TokenizeImpl(text, /*keep_decimal_points=*/false);
}

std::vector<std::string> TokenizeKeepNumbers(std::string_view text) {
  return TokenizeImpl(text, /*keep_decimal_points=*/true);
}

std::vector<std::string> EmbeddingWords(std::string_view text) {
  std::vector<std::string> tokens = TokenizeKeepNumbers(text);
  for (std::string& token : tokens) {
    token = AsciiToLower(token);
  }
  return tokens;
}

bool TokenInClass(std::string_view token, TokenClass token_class) {
  if (token.empty()) return false;
  auto first = static_cast<unsigned char>(token.front());
  switch (token_class) {
    case TokenClass::kWord: {
      for (char c : token) {
        if (!IsLetter(static_cast<unsigned char>(c))) return false;
      }
      return true;
    }
    case TokenClass::kLowercaseWord:
      return TokenInClass(token, TokenClass::kWord) && IsLower(first);
    case TokenClass::kCapitalizedWord: {
      if (!TokenInClass(token, TokenClass::kWord) || !IsUpper(first)) {
        return false;
      }
      // Single capital letters ("X") count as uppercase words, not
      // capitalized words; require a non-uppercase continuation.
      return token.size() >= 2 &&
             !IsUpper(static_cast<unsigned char>(token[1]));
    }
    case TokenClass::kUppercaseWord: {
      for (char c : token) {
        if (!IsUpper(static_cast<unsigned char>(c))) return false;
      }
      return true;
    }
    case TokenClass::kNumericString: {
      bool has_digit = false;
      for (char c : token) {
        auto uc = static_cast<unsigned char>(c);
        if (IsDigit(uc)) {
          has_digit = true;
        } else if (uc != '.' && uc != ',') {
          return false;
        }
      }
      return has_digit;
    }
  }
  return false;
}

TokenClassCounts CountTokenClasses(std::string_view text) {
  TokenClassCounts result;
  std::vector<std::string> tokens = TokenizeKeepNumbers(text);
  result.total_tokens = tokens.size();
  for (const std::string& token : tokens) {
    for (size_t c = 0; c < kNumTokenClasses; ++c) {
      if (TokenInClass(token, static_cast<TokenClass>(c))) {
        ++result.counts[c];
      }
    }
  }
  return result;
}

}  // namespace leapme::text
