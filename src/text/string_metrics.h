#ifndef LEAPME_TEXT_STRING_METRICS_H_
#define LEAPME_TEXT_STRING_METRICS_H_

#include <cstddef>
#include <string_view>

namespace leapme::text {

/// String distances of Table I (ids 8-15). Semantics follow the R
/// `stringdist` package used by the paper's implementation; q-gram based
/// distances use gram size 3 by default ("3-gram distance" in the paper).

/// Levenshtein edit distance (insert / delete / substitute), Table I id 9.
size_t Levenshtein(std::string_view a, std::string_view b);

/// Optimal string alignment distance, Table I id 8: Levenshtein plus
/// adjacent transposition, with the restriction that no substring is edited
/// more than once ("restricted Damerau-Levenshtein").
size_t OptimalStringAlignment(std::string_view a, std::string_view b);

/// Full (unrestricted) Damerau-Levenshtein distance, Table I id 10.
size_t DamerauLevenshtein(std::string_view a, std::string_view b);

/// Longest-common-subsequence edit distance, Table I id 11:
/// |a| + |b| - 2 * LCS(a, b) (only insertions and deletions allowed).
size_t LcsDistance(std::string_view a, std::string_view b);

/// Length of the longest common subsequence of `a` and `b`.
size_t LongestCommonSubsequence(std::string_view a, std::string_view b);

/// Q-gram distance between the 3-gram profiles, Table I id 12.
double ThreeGramDistance(std::string_view a, std::string_view b);

/// Cosine distance between the 3-gram profiles, Table I id 13. In [0, 1].
double ThreeGramCosineDistance(std::string_view a, std::string_view b);

/// Jaccard distance between the 3-gram profiles, Table I id 14. In [0, 1].
double ThreeGramJaccardDistance(std::string_view a, std::string_view b);

/// Jaro similarity in [0, 1] (1 = equal).
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler similarity with prefix scale `p` (default 0.1, max prefix 4).
double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale = 0.1);

/// Jaro-Winkler distance = 1 - similarity, Table I id 15. In [0, 1].
double JaroWinklerDistance(std::string_view a, std::string_view b,
                           double prefix_scale = 0.1);

/// Edit-style distance divided by max(|a|, |b|) so it lands in [0, 1]
/// (0 for two empty strings). Used to keep NN feature scales comparable.
double NormalizedByMaxLength(size_t distance, std::string_view a,
                             std::string_view b);

}  // namespace leapme::text

#endif  // LEAPME_TEXT_STRING_METRICS_H_
