#ifndef LEAPME_TEXT_CHAR_CLASS_H_
#define LEAPME_TEXT_CHAR_CLASS_H_

#include <array>
#include <cstddef>
#include <string_view>

namespace leapme::text {

/// Character classes used by the TAPON-style instance meta-features
/// (Table I, id 1 of the paper): letters split into uppercase / lowercase /
/// caseless, plus marks, numbers, punctuation, symbols, separators and a
/// catch-all. The classification approximates Unicode general categories on
/// ASCII and treats non-ASCII bytes conservatively.
enum class CharClass : int {
  kUppercaseLetter = 0,  ///< A-Z
  kLowercaseLetter = 1,  ///< a-z
  kOtherLetter = 2,      ///< caseless / non-ASCII letters (UTF-8 lead bytes)
  kMark = 3,             ///< combining marks (UTF-8 continuation bytes)
  kNumber = 4,           ///< 0-9
  kPunctuation = 5,      ///< . , ; : ! ? ' " ( ) [ ] { } - _ / \ # % & * @
  kSymbol = 6,           ///< $ + < = > ^ ` | ~
  kSeparator = 7,        ///< space, tab, newline and other ASCII whitespace
  kOther = 8,            ///< control characters and anything unclassified
};

/// Number of distinct character classes.
inline constexpr size_t kNumCharClasses = 9;

/// Classifies one byte of (possibly UTF-8) text.
CharClass ClassifyChar(unsigned char c);

/// Per-class byte counts for a string.
struct CharClassCounts {
  std::array<size_t, kNumCharClasses> counts{};
  size_t total = 0;

  size_t count(CharClass c) const { return counts[static_cast<size_t>(c)]; }
  /// Fraction of bytes in class `c`; 0 when the string is empty.
  double fraction(CharClass c) const {
    return total == 0 ? 0.0 : static_cast<double>(count(c)) /
                                  static_cast<double>(total);
  }
};

/// Counts the character classes of every byte in `text`.
CharClassCounts CountCharClasses(std::string_view text);

/// True when the byte is a letter of any case.
bool IsLetter(unsigned char c);

}  // namespace leapme::text

#endif  // LEAPME_TEXT_CHAR_CLASS_H_
