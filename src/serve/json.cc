#include "serve/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"

namespace leapme::serve {

namespace {

constexpr int kMaxDepth = 64;

}  // namespace

/// Recursive-descent parser over a string_view; positions index into the
/// original text so error messages can point at the offending byte.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    JsonValue value;
    LEAPME_RETURN_IF_ERROR(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument(
        StrFormat("%s at byte %zu", message.c_str(), pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) {
      return Error("nesting too deep");
    }
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Error("unexpected end of input");
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->type_ = JsonValue::Type::kString;
        return ParseString(&out->string_);
      case 't':
      case 'f':
        return ParseKeyword(out);
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          out->type_ = JsonValue::Type::kNull;
          return Status::OK();
        }
        return Error("invalid keyword");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseKeyword(JsonValue* out) {
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      out->type_ = JsonValue::Type::kBool;
      out->bool_ = true;
      return Status::OK();
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      out->type_ = JsonValue::Type::kBool;
      out->bool_ = false;
      return Status::OK();
    }
    return Error("invalid keyword");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
      // sign consumed; digits must follow
    }
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(
                                    text_[pos_]))) {
      return Error("invalid number");
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(
                                      text_[pos_]))) {
        return Error("invalid number");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(
                                      text_[pos_]))) {
        return Error("invalid number exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    out->type_ = JsonValue::Type::kNumber;
    out->number_ = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(out->number_)) {
      return Error("number out of range");
    }
    return Status::OK();
  }

  static void AppendUtf8(std::string* out, uint32_t code_point) {
    if (code_point < 0x80) {
      out->push_back(static_cast<char>(code_point));
    } else if (code_point < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code_point >> 6)));
      out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    } else if (code_point < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code_point >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code_point >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code_point >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) {
      return Error("truncated \\u escape");
    }
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid \\u escape");
      }
    }
    pos_ += 4;
    *out = value;
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) {
      return Error("expected string");
    }
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) {
        return Error("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return Status::OK();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        return Error("truncated escape");
      }
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          uint32_t code_point = 0;
          LEAPME_RETURN_IF_ERROR(ParseHex4(&code_point));
          if (code_point >= 0xD800 && code_point <= 0xDBFF) {
            // High surrogate: a \uDC00-\uDFFF low surrogate must follow.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Error("unpaired surrogate");
            }
            pos_ += 2;
            uint32_t low = 0;
            LEAPME_RETURN_IF_ERROR(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            code_point = 0x10000 + ((code_point - 0xD800) << 10) +
                         (low - 0xDC00);
          } else if (code_point >= 0xDC00 && code_point <= 0xDFFF) {
            return Error("unpaired surrogate");
          }
          AppendUtf8(out, code_point);
          break;
        }
        default:
          return Error("invalid escape");
      }
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    Consume('[');
    out->type_ = JsonValue::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) {
      return Status::OK();
    }
    while (true) {
      JsonValue element;
      LEAPME_RETURN_IF_ERROR(ParseValue(&element, depth + 1));
      out->array_.push_back(std::move(element));
      SkipWhitespace();
      if (Consume(']')) {
        return Status::OK();
      }
      if (!Consume(',')) {
        return Error("expected ',' or ']' in array");
      }
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    Consume('{');
    out->type_ = JsonValue::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) {
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      LEAPME_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) {
        return Error("expected ':' after object key");
      }
      JsonValue value;
      LEAPME_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->object_[std::move(key)] = std::move(value);
      SkipWhitespace();
      if (Consume('}')) {
        return Status::OK();
      }
      if (!Consume(',')) {
        return Error("expected ',' or '}' in object");
      }
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

StatusOr<JsonValue> JsonValue::Parse(std::string_view text) {
  return JsonParser(text).Parse();
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

std::vector<std::string> JsonValue::ObjectKeys() const {
  std::vector<std::string> keys;
  keys.reserve(object_.size());
  for (const auto& [key, value] : object_) {
    keys.push_back(key);
  }
  return keys;
}

void AppendJsonString(std::string* out, std::string_view text) {
  out->push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\b': out->append("\\b"); break;
      case '\f': out->append("\\f"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out->append(StrFormat("\\u%04x", static_cast<unsigned>(
                                               static_cast<unsigned char>(c))));
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string FormatJsonDouble(double value) {
  if (!std::isfinite(value)) {
    return "null";
  }
  // Try successively longer renderings; the first one that parses back to
  // the same bits wins. 17 significant digits always round-trip.
  char buffer[64];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
    if (std::strtod(buffer, nullptr) == value) {
      break;
    }
  }
  return buffer;
}

}  // namespace leapme::serve
