#include "serve/reactor_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/faults/fault_injector.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "serve/protocol.h"

namespace leapme::serve::internal {

namespace {

/// epoll_event.data.u64 markers for the two non-connection fds each loop
/// watches; connection tokens start above them.
constexpr uint64_t kEventFdToken = 0;
constexpr uint64_t kListenerToken = 1;
constexpr uint64_t kFirstConnectionToken = 2;

/// Per-wakeup read rounds on one connection, so a peer that streams
/// faster than we drain cannot starve its loop-mates.
constexpr int kMaxReadRoundsPerWakeup = 16;

/// Grace budgets for the two bounded shutdown paths: how long a
/// lingering close waits for the peer's FIN, and how long a draining
/// loop waits for in-flight requests to finish answering.
constexpr int64_t kLingerMs = 1000;
constexpr int64_t kDrainGraceMs = 5000;

}  // namespace

// ---------------------------------------------------------------------------
// WorkerPool

ReactorServer::WorkerPool::WorkerPool(MatcherService* service, size_t threads)
    : service_(service) {
  threads_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ReactorServer::WorkerPool::~WorkerPool() { Stop(); }

void ReactorServer::WorkerPool::Submit(WorkItem item) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(item));
  }
  cv_.notify_one();
}

void ReactorServer::WorkerPool::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      return;
    }
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& thread : threads_) {
    if (thread.joinable()) {
      thread.join();
    }
  }
}

void ReactorServer::WorkerPool::WorkerLoop() {
  while (true) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ set and nothing left to answer
      }
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    std::string response = service_->HandleLine(item.line, item.deadline);
    item.loop->PostCompletion(item.token, std::move(response));
  }
}

// ---------------------------------------------------------------------------
// EventLoop

ReactorServer::EventLoop::EventLoop(ReactorServer* server, size_t index)
    : server_(server), index_(index), next_token_(kFirstConnectionToken) {}

ReactorServer::EventLoop::~EventLoop() {
  if (thread_.joinable()) {
    thread_.join();
  }
  for (auto& [token, conn] : connections_) {
    CloseIfOpen(conn->fd);
  }
  connections_.clear();
  CloseIfOpen(event_fd_);
  CloseIfOpen(epoll_fd_);
}

Status ReactorServer::EventLoop::Init(int listen_fd) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Status::IoError(
        StrFormat("epoll_create1: %s", std::strerror(errno)));
  }
  event_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (event_fd_ < 0) {
    return Status::IoError(StrFormat("eventfd: %s", std::strerror(errno)));
  }
  epoll_event ev = {};
  ev.events = EPOLLIN;
  ev.data.u64 = kEventFdToken;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev) != 0) {
    return Status::IoError(
        StrFormat("epoll_ctl(eventfd): %s", std::strerror(errno)));
  }
  if (listen_fd >= 0) {
    listen_fd_ = listen_fd;
    ev.events = EPOLLIN;
    ev.data.u64 = kListenerToken;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
      return Status::IoError(
          StrFormat("epoll_ctl(listener): %s", std::strerror(errno)));
    }
  }
  return Status::OK();
}

void ReactorServer::EventLoop::Wake() {
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(event_fd_, &one, sizeof(one));
}

void ReactorServer::EventLoop::AdoptConnection(int fd) {
  {
    std::lock_guard<std::mutex> lock(mailbox_mu_);
    adopted_fds_.push_back(fd);
  }
  Wake();
}

void ReactorServer::EventLoop::PostCompletion(uint64_t token,
                                              std::string response) {
  {
    std::lock_guard<std::mutex> lock(mailbox_mu_);
    completions_.emplace_back(token, std::move(response));
  }
  Wake();
}

void ReactorServer::EventLoop::RequestDrain() {
  {
    std::lock_guard<std::mutex> lock(mailbox_mu_);
    drain_requested_ = true;
  }
  Wake();
}

void ReactorServer::EventLoop::Run() {
  std::vector<epoll_event> events(256);
  // One finite clock for the whole drain; set when drain begins.
  Deadline drain_deadline;
  while (true) {
    int timeout = NextTimeoutMs();
    if (draining_ && !drain_deadline.infinite()) {
      timeout = timeout < 0
                    ? drain_deadline.PollTimeoutMs()
                    : std::min(timeout, drain_deadline.PollTimeoutMs());
    }
    const int ready =
        ::epoll_wait(epoll_fd_, events.data(),
                     static_cast<int>(events.size()), timeout);
    server_->service_->OnEpollWakeup();
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      LEAPME_LOG(Error) << "reactor loop " << index_
                        << ": epoll_wait: " << std::strerror(errno);
      break;
    }
    for (int i = 0; i < ready; ++i) {
      const uint64_t token = events[i].data.u64;
      if (token == kEventFdToken) {
        uint64_t counter = 0;
        [[maybe_unused]] ssize_t n =
            ::read(event_fd_, &counter, sizeof(counter));
        continue;  // mailbox drained below, once per wakeup
      }
      if (token == kListenerToken) {
        HandleListener();
        continue;
      }
      auto it = connections_.find(token);
      if (it != connections_.end()) {
        HandleEvent(it->second.get(), events[i].events);
      }
    }
    const bool drain_now = [&] {
      std::lock_guard<std::mutex> lock(mailbox_mu_);
      return drain_requested_;
    }();
    if (drain_now && !draining_) {
      draining_ = true;
      drain_deadline = Deadline::AfterMs(kDrainGraceMs);
      if (listen_fd_ >= 0) {
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
        listen_fd_ = -1;
      }
      // Stop reading new requests everywhere; what was already received
      // in full still gets answered, mirroring the threaded drain.
      std::vector<uint64_t> tokens;
      tokens.reserve(connections_.size());
      for (auto& [tok, conn] : connections_) {
        tokens.push_back(tok);
      }
      for (const uint64_t tok : tokens) {
        auto it = connections_.find(tok);
        if (it == connections_.end()) {
          continue;
        }
        Connection* conn = it->second.get();
        conn->peer_eof = true;
        if (conn->pending.empty() && !conn->in_flight &&
            conn->backlog() == 0) {
          CloseConnection(conn);
        } else {
          UpdateWriteInterest(conn);
        }
      }
    }
    DrainMailbox();
    CheckDeadlines();
    if (draining_) {
      if (connections_.empty()) {
        break;
      }
      if (drain_deadline.expired()) {
        // Grace spent: abortive close on whatever is left.
        std::vector<uint64_t> tokens;
        for (auto& [tok, conn] : connections_) {
          tokens.push_back(tok);
        }
        for (const uint64_t tok : tokens) {
          auto it = connections_.find(tok);
          if (it != connections_.end()) {
            CloseConnection(it->second.get());
          }
        }
        break;
      }
    }
  }
}

void ReactorServer::EventLoop::DrainMailbox() {
  std::vector<int> adopted;
  std::vector<std::pair<uint64_t, std::string>> completions;
  {
    std::lock_guard<std::mutex> lock(mailbox_mu_);
    adopted.swap(adopted_fds_);
    completions.swap(completions_);
  }
  for (const int fd : adopted) {
    if (draining_) {
      // Raced with shutdown: the accept already counted it, undo.
      ::close(fd);
      server_->open_connections_.fetch_sub(1, std::memory_order_relaxed);
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->token = next_token_++;
    epoll_event ev = {};
    ev.events = EPOLLIN;
    ev.data.u64 = conn->token;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      LEAPME_LOG(Warning) << "reactor loop " << index_ << ": epoll_ctl(add): "
                          << std::strerror(errno);
      ::close(fd);
      server_->open_connections_.fetch_sub(1, std::memory_order_relaxed);
      continue;
    }
    conn->registered_events = EPOLLIN;
    server_->service_->OnConnectionOpened();
    connections_.emplace(conn->token, std::move(conn));
  }
  for (auto& [token, response] : completions) {
    auto it = connections_.find(token);
    if (it == connections_.end()) {
      continue;  // connection force-closed while the request was in flight
    }
    OnResponse(it->second.get(), std::move(response));
  }
}

void ReactorServer::EventLoop::HandleListener() {
  while (true) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return;
      }
      const int error = errno;
      switch (ClassifyAcceptErrno(error)) {
        case AcceptFailure::kRetry:
          // EINTR / ECONNABORTED / ENOBUFS...: one connection attempt
          // failed, the listener is fine.
          LEAPME_LOG(Warning) << "accept: " << std::strerror(error)
                              << " (transient; continuing)";
          continue;
        case AcceptFailure::kOverflow: {
          // Out of fds: momentarily give back the reserve fd so the
          // pending connection can be accepted, told to back off, and
          // closed — the shed contract instead of a silent stall.
          LEAPME_LOG(Warning)
              << "accept: " << std::strerror(error) << "; shedding";
          reserve_fd_.Release();
          const int shed = ::accept(listen_fd_, nullptr, nullptr);
          if (shed >= 0) {
            BestEffortSendLine(
                shed, ErrorResponse(
                          std::nullopt,
                          Status::Unavailable(
                              "server out of file descriptors; retry later"),
                          kRejectRetryAfterMs),
                /*poll_timeout_ms=*/0);
            server_->service_->OnConnectionRejected();
            ::close(shed);
          }
          if (!reserve_fd_.Reacquire()) {
            LEAPME_LOG(Warning) << "accept: cannot reacquire reserve fd";
          }
          continue;
        }
        case AcceptFailure::kFatal:
          LEAPME_LOG(Error) << "accept: " << std::strerror(error)
                            << "; listener disabled";
          ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
          listen_fd_ = -1;
          return;
      }
    }
    if (faults::InjectError("serve.accept")) {
      // Simulated accept failure: the connection is dropped before it is
      // ever served; clients see a close and retry.
      ::close(fd);
      continue;
    }
    const size_t cap = server_->options_.max_connections;
    const size_t active =
        server_->open_connections_.load(std::memory_order_relaxed);
    if (cap > 0 && active >= cap) {
      // Inline rejection: one Unavailable reply with a retry hint on the
      // fresh socket, then close — clients back off instead of piling
      // into invisible kernel queues.
      // poll_timeout_ms 0: this runs on the event-loop thread, which must
      // not block per rejected connection during an overload storm.
      BestEffortSendLine(
          fd, ErrorResponse(std::nullopt,
                            Status::Unavailable(StrFormat(
                                "serving %zu connections (cap %zu); retry "
                                "later",
                                active, cap)),
                            kRejectRetryAfterMs),
          /*poll_timeout_ms=*/0);
      server_->service_->OnConnectionRejected();
      ::close(fd);
      continue;
    }
    server_->open_connections_.fetch_add(1, std::memory_order_relaxed);
    const size_t target = server_->next_loop_.fetch_add(
                              1, std::memory_order_relaxed) %
                          server_->loops_.size();
    server_->loops_[target]->AdoptConnection(fd);
  }
}

void ReactorServer::EventLoop::HandleEvent(Connection* conn,
                                           uint32_t events) {
  const uint64_t token = conn->token;
  if ((events & (EPOLLHUP | EPOLLERR)) != 0 && conn->peer_eof &&
      !conn->draining) {
    // Both directions are gone (EPOLLHUP fires regardless of the
    // registered mask): nobody is left to read a response, and leaving
    // the connection open would spin the loop on the level-triggered
    // event until its in-flight work completed.
    CloseConnection(conn);
    return;
  }
  if ((events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
    ReadFromConnection(conn);
  }
  // The read path may have closed the connection; re-resolve.
  auto it = connections_.find(token);
  if (it == connections_.end()) {
    return;
  }
  conn = it->second.get();
  if ((events & EPOLLOUT) != 0 && conn->backlog() > 0) {
    FlushOutput(conn);
  }
}

void ReactorServer::EventLoop::ReadFromConnection(Connection* conn) {
  if (conn->draining) {
    // Lingering close: discard everything until the peer's FIN — with the
    // same per-wakeup round cap as the normal read path, so a peer that
    // keeps streaming during the linger window cannot monopolize the
    // loop. Level-triggered EPOLLIN resumes the discard next wakeup.
    char scratch[4096];
    for (int round = 0; round < kMaxReadRoundsPerWakeup; ++round) {
      const ssize_t n = ::recv(conn->fd, scratch, sizeof(scratch), 0);
      if (n > 0) {
        continue;
      }
      if (n < 0 && errno == EINTR) {
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return;
      }
      CloseConnection(conn);  // FIN (n == 0) or a real error
      return;
    }
    return;
  }
  if (conn->peer_eof) {
    return;
  }
  char chunk[4096];
  for (int round = 0; round < kMaxReadRoundsPerWakeup; ++round) {
    size_t cap = sizeof(chunk);
    if (const std::optional<faults::FaultHit> hit =
            faults::FaultInjector::Global().Evaluate("serve.read")) {
      if (hit->kind == faults::FaultKind::kError) {
        // Simulated transport failure: drop the connection cleanly (FIN,
        // not a hang); clients treat it as a lost connection and retry.
        BeginLingeringClose(conn);
        return;
      }
      if (hit->kind == faults::FaultKind::kShortIo) {
        // Short read: deliver fewer bytes this round; the rest stays in
        // the socket buffer for later rounds, as on a real socket.
        cap = std::clamp<size_t>(hit->param, 1, cap);
      }
    }
    const ssize_t n = ::recv(conn->fd, chunk, cap, 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      }
      CloseConnection(conn);
      return;
    }
    if (n == 0) {
      // EOF / half-close: finish answering the complete lines already
      // received; an unterminated trailing fragment is dropped by NDJSON
      // framing rules.
      conn->peer_eof = true;
      break;
    }
    const bool was_idle = conn->input.empty() && conn->pending.empty() &&
                          !conn->in_flight && conn->backlog() == 0;
    conn->input.append(chunk, static_cast<size_t>(n));
    if (was_idle && server_->options_.deadline_ms > 0) {
      // First bytes of a new request start its budget, which covers the
      // whole read -> batch -> score -> write path.
      conn->deadline = Deadline::AfterMs(server_->options_.deadline_ms);
      deadlined_[conn->token] = conn;
    }
  }
  if (!FrameInput(conn)) {
    // Oversized line: the error reply is queued, flush and close.
    conn->close_after_flush = true;
    FlushOutput(conn);
    return;
  }
  MaybeDispatch(conn);
  if (conn->peer_eof) {
    if (conn->pending.empty() && !conn->in_flight && conn->backlog() == 0) {
      CloseConnection(conn);
      return;
    }
    UpdateWriteInterest(conn);  // drop EPOLLIN; EOF stays asserted
  }
}

bool ReactorServer::EventLoop::FrameInput(Connection* conn) {
  size_t start = 0;
  while (true) {
    const size_t newline = conn->input.find('\n', start);
    if (newline == std::string::npos) {
      break;
    }
    std::string_view line(conn->input.data() + start, newline - start);
    if (!line.empty() && line.back() == '\r') {
      line.remove_suffix(1);
    }
    if (!line.empty()) {
      conn->pending.emplace_back(line);
    }
    start = newline + 1;
  }
  conn->input.erase(0, start);
  if (conn->input.size() > server_->options_.max_line_bytes) {
    QueueResponse(conn,
                  ErrorResponse(std::nullopt,
                                Status::InvalidArgument(StrFormat(
                                    "request line exceeds %zu bytes",
                                    server_->options_.max_line_bytes))));
    return false;
  }
  return true;
}

void ReactorServer::EventLoop::MaybeDispatch(Connection* conn) {
  if (conn->in_flight || conn->pending.empty() || conn->close_after_flush ||
      conn->draining) {
    return;
  }
  WorkItem item;
  item.loop = this;
  item.token = conn->token;
  item.line = std::move(conn->pending.front());
  conn->pending.pop_front();
  item.deadline = conn->deadline;
  conn->in_flight = true;
  // While the service holds the request it enforces the deadline itself
  // (a typed DeadlineExceeded response comes back); the loop only times
  // connections it is responsible for.
  deadlined_.erase(conn->token);
  server_->workers_->Submit(std::move(item));
}

void ReactorServer::EventLoop::OnResponse(Connection* conn,
                                          std::string response) {
  if (conn->draining) {
    return;  // the lingering close already discarded this request
  }
  const uint64_t token = conn->token;
  conn->in_flight = false;
  QueueResponse(conn, std::move(response));
  ResetDeadlineAfterAnswer(conn);
  FlushOutput(conn);
  auto it = connections_.find(token);
  if (it == connections_.end()) {
    return;  // flush failed and closed the connection
  }
  conn = it->second.get();
  MaybeDispatch(conn);
  if (conn->peer_eof && conn->pending.empty() && !conn->in_flight &&
      conn->backlog() == 0 && !conn->draining) {
    CloseConnection(conn);
  }
}

void ReactorServer::EventLoop::QueueResponse(Connection* conn,
                                             std::string response) {
  const size_t before = conn->backlog();
  conn->output.append(response);
  conn->output.push_back('\n');
  AdjustBacklogGauge(before, conn->backlog());
}

void ReactorServer::EventLoop::ResetDeadlineAfterAnswer(Connection* conn) {
  if (server_->options_.deadline_ms <= 0) {
    return;
  }
  // The answered request's budget is spent; any remaining work — the
  // response flush, a pipelined follow-up, a trickling partial line —
  // runs on a fresh one. A fully idle connection has no clock ticking.
  if (!conn->pending.empty() || !conn->input.empty() ||
      conn->backlog() > 0 || conn->in_flight) {
    conn->deadline = Deadline::AfterMs(server_->options_.deadline_ms);
    deadlined_[conn->token] = conn;
  } else {
    conn->deadline = Deadline::Infinite();
    deadlined_.erase(conn->token);
  }
}

void ReactorServer::EventLoop::FlushOutput(Connection* conn) {
  const size_t before = conn->backlog();
  while (conn->backlog() > 0) {
    size_t attempt = conn->backlog();
    if (const std::optional<faults::FaultHit> hit =
            faults::FaultInjector::Global().Evaluate("serve.write")) {
      if (hit->kind == faults::FaultKind::kError) {
        AdjustBacklogGauge(before, conn->backlog());
        CloseConnection(conn);
        return;
      }
      if (hit->kind == faults::FaultKind::kShortIo) {
        // A short write transfers fewer bytes; the loop finishes the
        // rest — exactly what real sockets do under pressure.
        attempt = std::clamp<size_t>(hit->param, 1, attempt);
      }
    }
    // MSG_NOSIGNAL: a peer that closed mid-response must surface as an
    // error return, not a process-killing SIGPIPE.
    const ssize_t n =
        ::send(conn->fd, conn->output.data() + conn->output_offset, attempt,
               MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;  // socket buffer full: wait for EPOLLOUT
      }
      AdjustBacklogGauge(before, conn->backlog());
      CloseConnection(conn);
      return;
    }
    conn->output_offset += static_cast<size_t>(n);
  }
  if (conn->backlog() == 0) {
    conn->output.clear();
    conn->output_offset = 0;
  } else if (conn->output_offset > (1u << 16)) {
    conn->output.erase(0, conn->output_offset);
    conn->output_offset = 0;
  }
  AdjustBacklogGauge(before, conn->backlog());
  if (conn->backlog() == 0 && conn->close_after_flush && !conn->draining) {
    BeginLingeringClose(conn);
    return;
  }
  if (conn->backlog() == 0 && conn->peer_eof && conn->pending.empty() &&
      !conn->in_flight && !conn->draining) {
    // This flush wrote the last response of a half-closed connection
    // (reached via EPOLLOUT after the peer's EOF); nothing more can
    // arrive or depart.
    CloseConnection(conn);
    return;
  }
  if (conn->backlog() == 0 && !conn->in_flight && conn->pending.empty() &&
      conn->input.empty() && !conn->draining) {
    // The flush left the connection fully idle: the answered request's
    // budget is spent and no new request has started, so no clock may
    // keep ticking (the idle keep-alive contract). This also undoes the
    // restart OnResponse applies while the response is still queued.
    conn->deadline = Deadline::Infinite();
    deadlined_.erase(conn->token);
  }
  UpdateWriteInterest(conn);
}

void ReactorServer::EventLoop::UpdateWriteInterest(Connection* conn) {
  uint32_t want = 0;
  if (!conn->peer_eof || conn->draining) {
    want |= EPOLLIN;  // draining still reads (and discards) until FIN
  }
  if (conn->backlog() > 0 && !conn->draining) {
    want |= EPOLLOUT;
  }
  if (want == conn->registered_events) {
    return;
  }
  epoll_event ev = {};
  ev.events = want;
  ev.data.u64 = conn->token;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev) == 0) {
    conn->registered_events = want;
  }
}

void ReactorServer::EventLoop::BeginLingeringClose(Connection* conn) {
  if (conn->draining) {
    return;
  }
  if (conn->backlog() > 0) {
    // Flush the queued reply first; FlushOutput calls back here once the
    // last byte is out.
    conn->close_after_flush = true;
    UpdateWriteInterest(conn);
    return;
  }
  // Closing with unread bytes still queued would turn into an RST that
  // can discard the in-flight error response on the peer. Send our FIN
  // first and drain until the peer closes (bounded by kLingerMs).
  ::shutdown(conn->fd, SHUT_WR);
  conn->draining = true;
  conn->pending.clear();
  conn->in_flight = false;  // a late completion is dropped by token lookup
  conn->deadline = Deadline::AfterMs(kLingerMs);
  deadlined_[conn->token] = conn;
  UpdateWriteInterest(conn);
}

void ReactorServer::EventLoop::CheckDeadlines() {
  if (deadlined_.empty()) {
    return;
  }
  std::vector<Connection*> expired;
  for (auto& [token, conn] : deadlined_) {
    if (conn->deadline.expired()) {
      expired.push_back(conn);
    }
  }
  for (Connection* conn : expired) {
    if (connections_.find(conn->token) == connections_.end()) {
      continue;
    }
    if (conn->draining) {
      // The peer never sent its FIN within the linger budget.
      CloseConnection(conn);
      continue;
    }
    if (conn->in_flight) {
      continue;  // the service enforces this one (defensive; not expected)
    }
    if (conn->backlog() > 0) {
      // Write stall: the peer stopped reading within the request budget.
      // Treat it as a dead connection rather than buffering forever.
      CloseConnection(conn);
      continue;
    }
    // A request line that never finished arriving.
    server_->service_->OnRequestTimeout();
    QueueResponse(conn,
                  ErrorResponse(std::nullopt,
                                Status::DeadlineExceeded(
                                    "request deadline expired before the "
                                    "request line completed")));
    conn->input.clear();
    conn->close_after_flush = true;
    FlushOutput(conn);
  }
}

int ReactorServer::EventLoop::NextTimeoutMs() const {
  if (deadlined_.empty()) {
    return -1;
  }
  int timeout = 2147483647;
  for (const auto& [token, conn] : deadlined_) {
    timeout = std::min(timeout, conn->deadline.PollTimeoutMs());
  }
  return timeout;
}

void ReactorServer::EventLoop::CloseConnection(Connection* conn) {
  AdjustBacklogGauge(conn->backlog(), 0);
  deadlined_.erase(conn->token);
  const uint64_t token = conn->token;
  CloseIfOpen(conn->fd);  // also removes it from the epoll set
  connections_.erase(token);
  server_->open_connections_.fetch_sub(1, std::memory_order_relaxed);
  server_->service_->OnConnectionClosed();
}

void ReactorServer::EventLoop::AdjustBacklogGauge(size_t before,
                                                  size_t after) {
  if (before != after) {
    server_->service_->AddWritableBacklog(static_cast<int64_t>(after) -
                                          static_cast<int64_t>(before));
  }
}

// ---------------------------------------------------------------------------
// ReactorServer

ReactorServer::ReactorServer(MatcherService* service,
                             const ServerOptions& options)
    : service_(service), options_(options) {
  if (options_.event_loop_threads == 0) {
    options_.event_loop_threads = 1;
  }
  if (options_.worker_threads == 0) {
    options_.worker_threads = 1;
  }
}

ReactorServer::~ReactorServer() { Stop(); }

Status ReactorServer::Start() {
  if (started_) {
    return Status::FailedPrecondition("server already started");
  }
  if (options_.port < 0 || options_.port > 65535) {
    return Status::InvalidArgument(
        StrFormat("port %d out of range", options_.port));
  }
  sockaddr_in address = {};
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &address.sin_addr) != 1) {
    return Status::InvalidArgument("cannot parse host '" + options_.host +
                                   "' as an IPv4 address");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    return Status::IoError(StrFormat("socket: %s", std::strerror(errno)));
  }
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable,
               sizeof(enable));
  if (options_.sndbuf_bytes > 0) {
    // Set on the listener so accepted sockets inherit it; tests use a
    // tiny buffer to force writable backpressure deterministically.
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_SNDBUF, &options_.sndbuf_bytes,
                 sizeof(options_.sndbuf_bytes));
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0) {
    Status status = Status::IoError(StrFormat(
        "bind %s:%d: %s", options_.host.c_str(), options_.port,
        std::strerror(errno)));
    CloseIfOpen(listen_fd_);
    return status;
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    Status status =
        Status::IoError(StrFormat("listen: %s", std::strerror(errno)));
    CloseIfOpen(listen_fd_);
    return status;
  }
  sockaddr_in bound = {};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = options_.port;
  }
  workers_ =
      std::make_unique<WorkerPool>(service_, options_.worker_threads);
  loops_.reserve(options_.event_loop_threads);
  for (size_t i = 0; i < options_.event_loop_threads; ++i) {
    auto loop = std::make_unique<EventLoop>(this, i);
    const Status status = loop->Init(i == 0 ? listen_fd_ : -1);
    if (!status.ok()) {
      loops_.clear();
      workers_.reset();
      CloseIfOpen(listen_fd_);
      return status;
    }
    loops_.push_back(std::move(loop));
  }
  stopping_.store(false, std::memory_order_relaxed);
  for (auto& loop : loops_) {
    loop->thread_ = std::thread([raw = loop.get()] { raw->Run(); });
  }
  started_ = true;
  return Status::OK();
}

void ReactorServer::Stop() {
  if (!started_) {
    return;
  }
  stopping_.store(true, std::memory_order_relaxed);
  for (auto& loop : loops_) {
    loop->RequestDrain();
  }
  // Join the loop threads so drains run to completion, but keep the
  // EventLoop objects alive until the workers have stopped: a drain
  // (grace expiry) or EPOLLHUP can force-close an in-flight connection
  // and let a loop exit Run() while a worker still holds a WorkItem for
  // it, and that worker's PostCompletion must land on a live mailbox.
  for (auto& loop : loops_) {
    if (loop->thread_.joinable()) {
      loop->thread_.join();
    }
  }
  if (workers_) {
    workers_->Stop();
    workers_.reset();
  }
  loops_.clear();
  CloseIfOpen(listen_fd_);
  started_ = false;
}

}  // namespace leapme::serve::internal
