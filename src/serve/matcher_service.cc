#include "serve/matcher_service.h"

#include <algorithm>
#include <chrono>

#include "common/faults/fault_injector.h"
#include "common/kernels/kernels.h"
#include "common/parallel.h"
#include "common/string_util.h"

namespace leapme::serve {

namespace {

/// Backoff hint attached to Unavailable / ResourceExhausted replies:
/// long enough for a shed queue to drain a few micro-batches, short
/// enough that a polite client retries promptly.
constexpr uint64_t kRetryAfterMs = 50;

/// Cache key: name and values joined with separators that cannot appear
/// in TSV-sourced values (unit separator / record separator), so distinct
/// (name, values) lists never collide.
std::string PropertyCacheKey(const PropertySpec& spec) {
  size_t total = spec.name.size() + 1;
  for (const std::string& value : spec.values) {
    total += value.size() + 1;
  }
  std::string key;
  key.reserve(total);
  key.append(spec.name);
  key.push_back('\x1f');
  for (const std::string& value : spec.values) {
    key.append(value);
    key.push_back('\x1e');
  }
  return key;
}

/// Errors that indict the serving model for the post-swap rollback trip:
/// client mistakes (InvalidArgument), load shedding and deadline
/// pressure (ResourceExhausted / Unavailable / DeadlineExceeded), and
/// configuration gaps (FailedPrecondition) say nothing about the model,
/// so only the remaining codes (Internal, IoError, Corruption, ...)
/// count as model faults.
bool IsModelFault(const Status& status) {
  return !status.ok() && !status.IsInvalidArgument() &&
         !status.IsResourceExhausted() && !status.IsDeadlineExceeded() &&
         !status.IsUnavailable() && !status.IsFailedPrecondition();
}

}  // namespace

MatcherService::MatcherService(ModelRegistry* registry,
                               ServiceOptions options)
    : registry_(registry),
      options_(options),
      latency_(options.latency_window) {
  batcher_ = std::thread([this] { BatcherLoop(); });
}

MatcherService::MatcherService(
    const core::LeapmeMatcher* matcher,
    const embedding::CachingEmbeddingModel* embedding_cache,
    ServiceOptions options)
    : owned_registry_(ModelRegistry::WrapExisting(
          matcher, embedding_cache,
          RegistryOptions{
              .property_cache_capacity = options.property_cache_capacity,
              .property_cache_shards = options.property_cache_shards})),
      registry_(owned_registry_.get()),
      options_(options),
      latency_(options.latency_window) {
  batcher_ = std::thread([this] { BatcherLoop(); });
}

StatusOr<std::unique_ptr<MatcherService>> MatcherService::Create(
    const core::LeapmeMatcher* matcher,
    const embedding::CachingEmbeddingModel* embedding_cache,
    ServiceOptions options) {
  if (matcher == nullptr) {
    return Status::InvalidArgument("MatcherService requires a matcher");
  }
  LEAPME_RETURN_IF_ERROR(ValidateServingModel(matcher, embedding_cache));
  return std::make_unique<MatcherService>(matcher, embedding_cache, options);
}

StatusOr<std::unique_ptr<MatcherService>> MatcherService::Create(
    ModelRegistry* registry, ServiceOptions options) {
  if (registry == nullptr) {
    return Status::InvalidArgument("MatcherService requires a registry");
  }
  if (registry->Acquire() == nullptr) {
    return Status::FailedPrecondition(
        "MatcherService requires an initialized registry (Init first)");
  }
  return std::make_unique<MatcherService>(registry, options);
}

MatcherService::~MatcherService() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  if (batcher_.joinable()) {
    batcher_.join();
  }
}

MatcherService::FeaturePtr MatcherService::GetPropertyFeatures(
    const ModelGeneration& generation, const PropertySpec& spec,
    bool* degraded) {
  return ResolvePropertyFeatures(generation, PropertyCacheKey(spec), spec,
                                 degraded);
}

MatcherService::FeaturePtr MatcherService::ResolvePropertyFeatures(
    const ModelGeneration& generation, std::string_view key,
    const PropertySpec& spec, bool* degraded) {
  FeaturePtr cached;
  if (generation.property_cache().Lookup(
          key, [&](const FeaturePtr& features) { cached = features; })) {
    return cached;
  }
  // Compute outside the shard lock; a concurrent duplicate miss computes
  // the same deterministic vector and the second insert is dropped.
  const bool lookup_failed = faults::InjectError("embedding.lookup");
  auto features = std::make_shared<features::PropertyFeatures>(
      generation.matcher().ComputePropertyFeatures(spec.name, spec.values));
  if (lookup_failed) {
    // The embedding portion of this vector is untrusted: mark the
    // request degraded (scoring masks the embedding columns) and keep
    // the vector out of the cache so one failed lookup never poisons
    // later requests for the same property.
    if (degraded != nullptr) {
      *degraded = true;
    }
    return features;
  }
  generation.property_cache().Insert(key, features);
  return features;
}

void MatcherService::GatherPropertyFeatures(
    const ModelGeneration& generation,
    const std::vector<const PropertySpec*>& specs, FeaturePtr* out,
    uint8_t* degraded) {
  const size_t count = specs.size();
  std::vector<std::string> keys;
  keys.reserve(count);
  std::vector<std::string_view> views(count);
  for (size_t i = 0; i < count; ++i) {
    keys.push_back(PropertyCacheKey(*specs[i]));
    views[i] = keys.back();
  }
  std::vector<uint8_t> found(count, 0);
  // One prefetch wave across every property of the request, then probe:
  // hits are counted inside; misses fall through to the counted resolve
  // below, so the totals match the sequential per-property flow.
  generation.property_cache().LookupBatch(
      views, found.data(),
      [&](size_t i, const FeaturePtr& features) { out[i] = features; });
  for (size_t i = 0; i < count; ++i) {
    degraded[i] = 0;
    if (found[i]) continue;
    bool spec_degraded = false;
    out[i] = ResolvePropertyFeatures(generation, views[i], *specs[i],
                                     &spec_degraded);
    degraded[i] = spec_degraded ? 1 : 0;
  }
}

void MatcherService::BatcherLoop() {
  std::unique_lock<std::mutex> lock(queue_mu_);
  while (true) {
    queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    // First pair seen: linger up to the batch window so concurrent
    // requests coalesce, unless the batch is already full or we are
    // draining for shutdown.
    if (queue_.size() < options_.max_batch && options_.batch_window_us > 0 &&
        !stop_) {
      queue_cv_.wait_for(
          lock, std::chrono::microseconds(options_.batch_window_us),
          [this] { return queue_.size() >= options_.max_batch || stop_; });
    }
    const size_t take =
        std::min(queue_.size(), std::max<size_t>(1, options_.max_batch));
    std::vector<PendingPair> batch;
    std::vector<PendingPair> expired;
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      PendingPair pair = std::move(queue_.front());
      queue_.pop_front();
      // Load shedding: a pair whose deadline passed while it waited has
      // no one left to use its score — fail it instead of spending
      // inference on it (its waiter is told DeadlineExceeded).
      if (pair.deadline.expired()) {
        expired.push_back(std::move(pair));
      } else {
        batch.push_back(std::move(pair));
      }
    }
    lock.unlock();
    for (const PendingPair& pair : expired) {
      std::lock_guard<std::mutex> job_lock(pair.job->mu);
      if (pair.job->status.ok()) {
        pair.job->status = Status::DeadlineExceeded(
            "request deadline expired while queued for scoring");
      }
      if (--pair.job->remaining == 0) {
        pair.job->cv.notify_all();
      }
    }
    if (!batch.empty()) {
      ScoreBatch(batch);
    }
    lock.lock();
  }
}

void MatcherService::ScoreBatch(std::vector<PendingPair>& batch) {
  // A batch drained across a reload boundary can hold pairs whose
  // features were computed by different generations; each pair must be
  // scored by the matcher that computed its features. Pairs of one
  // request share a generation and the queue is FIFO, so the batch is a
  // handful of contiguous same-generation runs — score each run with one
  // ScoreFeaturePairs call. In steady state there is exactly one run and
  // this degenerates to the single-inference path.
  size_t begin = 0;
  for (size_t i = 1; i <= batch.size(); ++i) {
    if (i == batch.size() ||
        batch[i].generation.get() != batch[begin].generation.get()) {
      ScoreBatchGroup(batch, begin, i);
      begin = i;
    }
  }
}

void MatcherService::ScoreBatchGroup(std::vector<PendingPair>& batch,
                                     size_t begin, size_t end) {
  const size_t count = end - begin;
  std::vector<const features::PropertyFeatures*> lhs;
  std::vector<const features::PropertyFeatures*> rhs;
  lhs.reserve(count);
  rhs.reserve(count);
  bool any_degraded = false;
  std::vector<uint8_t> degraded_rows(count, 0);
  for (size_t i = 0; i < count; ++i) {
    lhs.push_back(batch[begin + i].a.get());
    rhs.push_back(batch[begin + i].b.get());
    if (batch[begin + i].degraded) {
      degraded_rows[i] = 1;
      any_degraded = true;
    }
  }
  StatusOr<std::vector<double>> scores =
      faults::InjectError("serve.score")
          ? StatusOr<std::vector<double>>(Status::Internal(
                "injected scoring failure (serve.score fault)"))
          : batch[begin].generation->matcher().ScoreFeaturePairs(
                lhs, rhs, any_degraded ? &degraded_rows : nullptr);
  batches_.Increment();
  batch_sizes_.Record(count);
  if (scores.ok()) {
    pairs_scored_.Increment(count);
  }

  for (size_t i = 0; i < count; ++i) {
    const std::shared_ptr<ScoreJob>& job = batch[begin + i].job;
    std::lock_guard<std::mutex> lock(job->mu);
    if (scores.ok()) {
      job->scores[batch[begin + i].index] = scores.value()[i];
    } else if (job->status.ok()) {
      job->status = scores.status();
    }
    if (--job->remaining == 0) {
      job->cv.notify_all();
    }
  }
}

StatusOr<std::vector<double>> MatcherService::ScoreFeaturePairsBatched(
    std::vector<PendingPair> pending, std::shared_ptr<ScoreJob> job,
    Deadline deadline) {
  if (faults::InjectError("alloc")) {
    rejected_overload_.Increment();
    return Status::ResourceExhausted(
        "injected allocation failure admitting request");
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stop_) {
      return Status::FailedPrecondition("service is shutting down");
    }
    if (options_.max_queue_pairs > 0 &&
        queue_.size() + pending.size() > options_.max_queue_pairs) {
      rejected_overload_.Increment();
      return Status::ResourceExhausted(StrFormat(
          "admission queue full: %zu pairs queued, %zu more would exceed "
          "the %zu-pair bound",
          queue_.size(), pending.size(), options_.max_queue_pairs));
    }
    const auto now = std::chrono::steady_clock::now();
    for (PendingPair& pair : pending) {
      pair.enqueued = now;
      queue_.push_back(std::move(pair));
    }
  }
  queue_cv_.notify_all();

  std::unique_lock<std::mutex> lock(job->mu);
  if (deadline.infinite()) {
    job->cv.wait(lock, [&job] { return job->remaining == 0; });
  } else if (!job->cv.wait_until(lock, deadline.time_point(),
                                 [&job] { return job->remaining == 0; })) {
    // Give up waiting; the batcher still owns shared references to the
    // job and completes the orphaned slots harmlessly (or sheds them via
    // the queue-side deadline check).
    deadline_exceeded_.Increment();
    return Status::DeadlineExceeded(
        "request deadline expired before scoring finished");
  }
  if (!job->status.ok()) {
    if (job->status.IsDeadlineExceeded()) {
      deadline_exceeded_.Increment();
    }
    return job->status;
  }
  return std::move(job->scores);
}

StatusOr<std::vector<double>> MatcherService::Score(
    const std::vector<PropertyPairSpec>& pairs, Deadline deadline,
    bool* degraded) {
  if (pairs.empty()) {
    return Status::InvalidArgument("no pairs to score");
  }
  if (deadline.expired()) {
    deadline_exceeded_.Increment();
    return Status::DeadlineExceeded(
        "request deadline expired before feature computation");
  }
  const auto start = std::chrono::steady_clock::now();
  // One generation for the whole request: features, queueing, and
  // scoring all happen on the model this shared_ptr pins, whatever
  // reloads land meanwhile.
  const GenerationPtr generation = registry_->Acquire();
  // Feed the reload canary with real traffic (the first pair stands in
  // for the request).
  registry_->CapturePair(pairs.front());
  auto job = std::make_shared<ScoreJob>(pairs.size());
  // Gather both sides of every pair in one batched cache wave, then
  // enqueue: the request pays one prefetch pass instead of 2N dependent
  // probe round-trips.
  std::vector<const PropertySpec*> specs(2 * pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    specs[2 * i] = &pairs[i].a;
    specs[2 * i + 1] = &pairs[i].b;
  }
  std::vector<FeaturePtr> features(specs.size());
  std::vector<uint8_t> spec_degraded(specs.size(), 0);
  GatherPropertyFeatures(*generation, specs, features.data(),
                         spec_degraded.data());
  std::vector<PendingPair> pending;
  pending.reserve(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    const bool pair_degraded =
        spec_degraded[2 * i] != 0 || spec_degraded[2 * i + 1] != 0;
    PendingPair pair;
    pair.a = std::move(features[2 * i]);
    pair.b = std::move(features[2 * i + 1]);
    pair.generation = generation;
    pair.job = job;
    pair.index = i;
    pair.degraded = pair_degraded;
    pair.deadline = deadline;
    if (pair_degraded && degraded != nullptr) {
      *degraded = true;
    }
    pending.push_back(std::move(pair));
  }
  auto scores = ScoreFeaturePairsBatched(std::move(pending), job, deadline);
  latency_.Record(std::chrono::duration<double, std::micro>(
                      std::chrono::steady_clock::now() - start)
                      .count());
  return scores;
}

StatusOr<std::vector<MatchResult>> MatcherService::TopK(
    const PropertySpec& query, const std::vector<PropertySpec>& candidates,
    size_t k, Deadline deadline, bool* degraded) {
  if (candidates.empty()) {
    return Status::InvalidArgument("no candidates");
  }
  if (k == 0) {
    return Status::InvalidArgument("k must be positive");
  }
  if (deadline.expired()) {
    deadline_exceeded_.Increment();
    return Status::DeadlineExceeded(
        "request deadline expired before feature computation");
  }
  const auto start = std::chrono::steady_clock::now();
  const GenerationPtr generation = registry_->Acquire();
  registry_->CapturePair(PropertyPairSpec{query, candidates.front()});
  auto job = std::make_shared<ScoreJob>(candidates.size());
  // One batched cache wave over the query + every candidate.
  std::vector<const PropertySpec*> specs(1 + candidates.size());
  specs[0] = &query;
  for (size_t i = 0; i < candidates.size(); ++i) {
    specs[1 + i] = &candidates[i];
  }
  std::vector<FeaturePtr> features(specs.size());
  std::vector<uint8_t> spec_degraded(specs.size(), 0);
  GatherPropertyFeatures(*generation, specs, features.data(),
                         spec_degraded.data());
  const bool query_degraded = spec_degraded[0] != 0;
  FeaturePtr query_features = std::move(features[0]);
  std::vector<PendingPair> pending;
  pending.reserve(candidates.size());
  bool any_degraded = query_degraded;
  for (size_t i = 0; i < candidates.size(); ++i) {
    const bool candidate_degraded = spec_degraded[1 + i] != 0;
    PendingPair pair;
    pair.a = query_features;
    pair.b = std::move(features[1 + i]);
    pair.generation = generation;
    pair.job = job;
    pair.index = i;
    pair.degraded = query_degraded || candidate_degraded;
    pair.deadline = deadline;
    any_degraded = any_degraded || candidate_degraded;
    pending.push_back(std::move(pair));
  }
  if (any_degraded && degraded != nullptr) {
    *degraded = true;
  }
  auto scores = ScoreFeaturePairsBatched(std::move(pending), job, deadline);
  if (!scores.ok()) {
    return scores.status();
  }

  std::vector<MatchResult> matches(scores->size());
  for (size_t i = 0; i < scores->size(); ++i) {
    matches[i] = MatchResult{i, (*scores)[i]};
  }
  const size_t keep = std::min(k, matches.size());
  // Deterministic order: score descending, candidate index ascending.
  std::partial_sort(matches.begin(), matches.begin() + keep, matches.end(),
                    [](const MatchResult& a, const MatchResult& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.index < b.index;
                    });
  matches.resize(keep);
  latency_.Record(std::chrono::duration<double, std::micro>(
                      std::chrono::steady_clock::now() - start)
                      .count());
  return matches;
}

Status MatcherService::AttachCatalog(const data::Dataset* catalog,
                                     blocking::CandidatePipeline* pipeline) {
  return registry_->AttachCatalogUnowned(catalog, pipeline);
}

StatusOr<IndexMatchOutcome> MatcherService::IndexMatch(
    const PropertySpec& query, size_t k, Deadline deadline, bool* degraded) {
  const GenerationPtr generation = registry_->Acquire();
  if (generation->catalog() == nullptr) {
    return Status::FailedPrecondition(
        "no catalog index attached (start serve with --index-data)");
  }
  if (k == 0) {
    return Status::InvalidArgument("k must be positive");
  }
  if (deadline.expired()) {
    deadline_exceeded_.Increment();
    return Status::DeadlineExceeded(
        "request deadline expired before blocking");
  }
  const auto start = std::chrono::steady_clock::now();
  index_requests_.Increment();

  IndexMatchOutcome outcome;
  StatusOr<std::vector<data::PropertyId>> blocked =
      generation->catalog_pipeline()->Query(query.name);
  std::vector<data::PropertyId> candidates;
  if (blocked.ok()) {
    candidates = std::move(blocked).value();
  } else if (blocked.status().IsUnavailable()) {
    // Candidate generation failed (e.g. an embedding fault inside an LSH
    // blocker). Degrade to a full-catalog scan: slower, but the request
    // is still served with real scores.
    if (degraded != nullptr) {
      *degraded = true;
    }
    candidates.resize(generation->catalog_features().size());
    for (size_t i = 0; i < candidates.size(); ++i) {
      candidates[i] = static_cast<data::PropertyId>(i);
    }
  } else {
    return blocked.status();
  }
  const uint64_t blocking_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  blocking_ns_.Increment(blocking_ns);
  index_candidates_.Increment(candidates.size());
  outcome.candidate_count = candidates.size();
  outcome.blocking_us = static_cast<double>(blocking_ns) / 1000.0;
  if (candidates.empty()) {
    latency_.Record(std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - start)
                        .count());
    return outcome;
  }
  if (deadline.expired()) {
    deadline_exceeded_.Increment();
    return Status::DeadlineExceeded(
        "request deadline expired during blocking");
  }

  auto job = std::make_shared<ScoreJob>(candidates.size());
  bool query_degraded = false;
  FeaturePtr query_features =
      GetPropertyFeatures(*generation, query, &query_degraded);
  if (query_degraded && degraded != nullptr) {
    *degraded = true;
  }
  // Feed the canary with a realistic catalog pair: the query against its
  // first blocked candidate (reconstructed from the catalog dataset).
  {
    const auto id = static_cast<data::PropertyId>(candidates.front());
    PropertyPairSpec sample;
    sample.a = query;
    sample.b.name = generation->catalog()->property(id).name;
    for (const data::InstanceValue& instance :
         generation->catalog()->instances(id)) {
      sample.b.values.push_back(instance.value);
    }
    registry_->CapturePair(sample);
  }
  std::vector<PendingPair> pending;
  pending.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    PendingPair pair;
    pair.a = query_features;
    pair.b = generation->catalog_features()[candidates[i]];
    pair.generation = generation;
    pair.job = job;
    pair.index = i;
    pair.degraded = query_degraded;
    pair.deadline = deadline;
    pending.push_back(std::move(pair));
  }
  auto scores = ScoreFeaturePairsBatched(std::move(pending), job, deadline);
  if (!scores.ok()) {
    return scores.status();
  }

  std::vector<IndexMatchResult> matches(scores->size());
  for (size_t i = 0; i < scores->size(); ++i) {
    matches[i].property = candidates[i];
    matches[i].score = (*scores)[i];
  }
  const size_t keep = std::min(k, matches.size());
  // Deterministic order: score descending, property id ascending.
  std::partial_sort(matches.begin(), matches.begin() + keep, matches.end(),
                    [](const IndexMatchResult& a, const IndexMatchResult& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.property < b.property;
                    });
  matches.resize(keep);
  for (IndexMatchResult& match : matches) {
    const auto id = static_cast<data::PropertyId>(match.property);
    const data::Dataset& catalog = *generation->catalog();
    match.name = catalog.property(id).name;
    match.source = catalog.source_name(catalog.property(id).source);
  }
  outcome.matches = std::move(matches);
  latency_.Record(std::chrono::duration<double, std::micro>(
                      std::chrono::steady_clock::now() - start)
                      .count());
  return outcome;
}

std::string MatcherService::HandleLine(std::string_view line,
                                       Deadline deadline) {
  StatusOr<Request> request = ParseRequest(line);
  if (!request.ok()) {
    request_errors_.Increment();
    return ErrorResponse(std::nullopt, request.status());
  }
  // Shed-queue and capacity errors carry a retry hint; everything else
  // is a plain typed error.
  const auto error_response = [this](const std::optional<int64_t>& id,
                                     const Status& status) {
    request_errors_.Increment();
    const bool retryable = status.IsResourceExhausted() ||
                           status.IsUnavailable();
    return ErrorResponse(id, status, retryable ? kRetryAfterMs : 0);
  };
  if (deadline.expired()) {
    deadline_exceeded_.Increment();
    return error_response(
        request->id,
        Status::DeadlineExceeded("request deadline expired before dispatch"));
  }
  switch (request->op) {
    case Op::kPing:
      ping_requests_.Increment();
      return PingResponse(request->id);
    case Op::kStats:
      stats_requests_.Increment();
      return StatsResponse(request->id, Snapshot());
    case Op::kHealth: {
      admin_requests_.Increment();
      const GenerationPtr generation = registry_->Acquire();
      ModelIdentity identity;
      identity.version = generation->info().version;
      identity.fingerprint = generation->info().fingerprint;
      identity.format_version = generation->info().format_version;
      return HealthResponse(request->id, !draining(), identity);
    }
    case Op::kReady: {
      admin_requests_.Increment();
      const GenerationPtr generation = registry_->Acquire();
      ModelIdentity identity;
      identity.version = generation->info().version;
      identity.fingerprint = generation->info().fingerprint;
      identity.format_version = generation->info().format_version;
      return ReadyResponse(request->id, ready(), identity);
    }
    case Op::kReload: {
      admin_requests_.Increment();
      StatusOr<ReloadOutcome> outcome = registry_->Reload(request->model_path);
      if (!outcome.ok()) {
        return error_response(request->id, outcome.status());
      }
      ModelIdentity identity;
      identity.version = outcome->info.version;
      identity.fingerprint = outcome->info.fingerprint;
      identity.format_version = outcome->info.format_version;
      return ReloadResponse(request->id, identity, outcome->canary_divergence,
                            outcome->canary_pairs);
    }
    case Op::kScore: {
      score_requests_.Increment();
      bool degraded = false;
      StatusOr<std::vector<double>> scores =
          Score(request->pairs, deadline, &degraded);
      registry_->RecordOutcome(IsModelFault(scores.status()));
      if (!scores.ok()) {
        return error_response(request->id, scores.status());
      }
      if (degraded) {
        degraded_responses_.Increment();
      }
      return ScoreResponse(request->id, scores.value(), degraded);
    }
    case Op::kTopK: {
      topk_requests_.Increment();
      bool degraded = false;
      StatusOr<std::vector<MatchResult>> matches =
          TopK(request->query, request->candidates, request->k, deadline,
               &degraded);
      registry_->RecordOutcome(IsModelFault(matches.status()));
      if (!matches.ok()) {
        return error_response(request->id, matches.status());
      }
      if (degraded) {
        degraded_responses_.Increment();
      }
      return TopKResponse(request->id, matches.value(), degraded);
    }
    case Op::kIndexMatch: {
      bool degraded = false;
      StatusOr<IndexMatchOutcome> outcome =
          IndexMatch(request->query, request->k, deadline, &degraded);
      registry_->RecordOutcome(IsModelFault(outcome.status()));
      if (!outcome.ok()) {
        return error_response(request->id, outcome.status());
      }
      if (degraded) {
        degraded_responses_.Increment();
      }
      return IndexMatchResponse(request->id, outcome.value(), degraded);
    }
  }
  request_errors_.Increment();
  return ErrorResponse(request->id, Status::Internal("unhandled op"));
}

ServiceStats MatcherService::Snapshot() const {
  ServiceStats stats;
  stats.ping_requests = ping_requests_.value();
  stats.score_requests = score_requests_.value();
  stats.topk_requests = topk_requests_.value();
  stats.index_requests = index_requests_.value();
  stats.stats_requests = stats_requests_.value();
  stats.admin_requests = admin_requests_.value();
  stats.requests = stats.ping_requests + stats.score_requests +
                   stats.topk_requests + stats.index_requests +
                   stats.stats_requests + stats.admin_requests;
  stats.request_errors = request_errors_.value();
  stats.pairs_scored = pairs_scored_.value();
  stats.batches = batches_.value();
  stats.batch_histogram = batch_sizes_.Snapshot();
  stats.batch_histogram_labels.reserve(stats.batch_histogram.size());
  for (size_t i = 0; i < stats.batch_histogram.size(); ++i) {
    stats.batch_histogram_labels.push_back(batch_sizes_.BucketLabel(i));
  }
  const GenerationPtr generation = registry_->Acquire();
  if (generation->embedding_cache() != nullptr) {
    stats.embedding_cache_hits = generation->embedding_cache()->hits();
    stats.embedding_cache_misses = generation->embedding_cache()->misses();
    stats.embedding_cache_evictions =
        generation->embedding_cache()->evictions();
    stats.embedding_cache_max_probe =
        generation->embedding_cache()->max_probe();
  }
  {
    const cache::CacheCounters property =
        generation->property_cache().Counters();
    stats.property_cache_hits = property.hits;
    stats.property_cache_misses = property.misses;
    stats.property_cache_evictions = property.evictions;
    stats.property_cache_max_probe = property.max_probe;
  }
  stats.cache_shards = generation->property_cache().shards();
  stats.connections_accepted = connections_accepted_.value();
  stats.connections_active =
      connections_active_.load(std::memory_order_relaxed);
  stats.connections_rejected = connections_rejected_.value();
  stats.rejected_overload = rejected_overload_.value();
  stats.deadline_exceeded = deadline_exceeded_.value();
  stats.degraded_responses = degraded_responses_.value();
  stats.faults_injected = faults::FaultInjector::Global().injected();
  {
    std::lock_guard<std::mutex> lock(transport_mu_);
    stats.io_backend = transport_backend_;
    stats.event_loop_threads = transport_loops_;
  }
  stats.epoll_wakeups = epoll_wakeups_.value();
  // Clamp: deltas from concurrently-flushing loops can transiently read
  // below zero.
  stats.writable_backlog_bytes = static_cast<uint64_t>(std::max<int64_t>(
      writable_backlog_bytes_.load(std::memory_order_relaxed), 0));
  {
    // The queue gauges pair up: depth says how much work is waiting,
    // age says how long the head has waited — depth alone cannot tell a
    // full-but-moving queue from a stalled one.
    std::lock_guard<std::mutex> lock(queue_mu_);
    stats.queue_depth = queue_.size();
    if (!queue_.empty()) {
      stats.queue_age_us = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - queue_.front().enqueued)
              .count());
    }
  }
  const LatencyRecorder::Percentiles latency = latency_.Snapshot();
  stats.latency_p50_us = latency.p50;
  stats.latency_p95_us = latency.p95;
  stats.latency_p99_us = latency.p99;
  stats.latency_samples = latency.samples;
  stats.kernel_path = kernels::ActiveKernelName();
  stats.catalog_properties = generation->catalog_features().size();
  stats.index_candidates = index_candidates_.value();
  stats.blocking_us_total =
      static_cast<double>(blocking_ns_.value()) / 1000.0;
  if (generation->catalog_pipeline() != nullptr) {
    for (const blocking::BlockerStats& blocker :
         generation->catalog_pipeline()->SnapshotStats()) {
      BlockerStat stat;
      stat.name = blocker.name;
      stat.batch_calls = blocker.batch_calls;
      stat.queries = blocker.queries;
      stat.candidates = blocker.candidates;
      stat.total_ns = blocker.total_ns;
      stats.blockers.push_back(std::move(stat));
    }
  }
  for (const features::StageTiming& timing :
       generation->matcher().pipeline().StageTimings()) {
    StageTimingStat stage;
    stage.name = timing.name;
    stage.version = timing.version;
    stage.property_calls = timing.property_calls;
    stage.property_ns = timing.property_ns;
    stage.pair_calls = timing.pair_calls;
    stage.pair_ns = timing.pair_ns;
    stats.feature_stages.push_back(std::move(stage));
  }
  const RegistryStats registry = registry_->Snapshot();
  stats.model_version = registry.info.version;
  stats.model_fingerprint = registry.info.fingerprint;
  stats.model_format_version = registry.info.format_version;
  stats.model_mtime = registry.info.file_mtime;
  stats.reloads_ok = registry.reloads_ok;
  stats.reloads_rejected = registry.reloads_rejected;
  stats.reloads_rolled_back = registry.reloads_rolled_back;
  stats.canary_divergence = registry.canary_divergence;
  return stats;
}

}  // namespace leapme::serve
