#ifndef LEAPME_SERVE_JSON_H_
#define LEAPME_SERVE_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status_or.h"

namespace leapme::serve {

/// Minimal immutable JSON document model for the line-delimited wire
/// protocol. Self-contained (the container ships no JSON library):
/// recursive-descent parser with a depth limit, full-input consumption,
/// and \uXXXX (incl. surrogate pair) decoding. Numbers are doubles,
/// matching the protocol's needs; object member order is not preserved.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}

  /// Parses `text` as one JSON value; trailing non-whitespace is an
  /// InvalidArgument. Nesting deeper than 64 levels is rejected.
  static StatusOr<JsonValue> Parse(std::string_view text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }
  const std::vector<JsonValue>& AsArray() const { return array_; }

  /// Object member by key, or nullptr when absent / not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Member keys of an object (sorted), for strict unknown-key checks.
  std::vector<std::string> ObjectKeys() const;

 private:
  friend class JsonParser;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue, std::less<>> object_;
};

/// Appends `text` to `out` as a quoted JSON string with all required
/// escaping (control characters as \u00XX).
void AppendJsonString(std::string* out, std::string_view text);

/// Shortest decimal rendering of `value` that strtod parses back to the
/// exact same double — scores cross the wire bit-identically. Non-finite
/// values (not produced by the scorer) render as null.
std::string FormatJsonDouble(double value);

}  // namespace leapme::serve

#endif  // LEAPME_SERVE_JSON_H_
