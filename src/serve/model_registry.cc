#include "serve/model_registry.h"

#include <sys/stat.h>

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/string_util.h"

namespace leapme::serve {

int64_t FileMtimeSeconds(const std::string& path) {
  struct stat info = {};
  if (::stat(path.c_str(), &info) != 0) {
    return 0;
  }
  return static_cast<int64_t>(info.st_mtime);
}

Status ValidateServingModel(
    const core::LeapmeMatcher* matcher,
    const embedding::CachingEmbeddingModel* embedding_cache) {
  if (matcher == nullptr) {
    return Status::InvalidArgument("serving requires a matcher");
  }
  if (!matcher->fitted()) {
    return Status::FailedPrecondition(
        "cannot serve an unfitted matcher (Fit or LoadModel first)");
  }
  const size_t pipeline_dim = matcher->pipeline().schema().embedding_dim();
  if (embedding_cache != nullptr &&
      embedding_cache->dimension() != pipeline_dim) {
    return Status::FailedPrecondition(StrFormat(
        "embedding cache dimension %zu does not match the matcher's "
        "feature pipeline dimension %zu (schema %s)",
        embedding_cache->dimension(), pipeline_dim,
        matcher->pipeline().schema().fingerprint().c_str()));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ModelGeneration

ModelGeneration::ModelGeneration(
    const core::LeapmeMatcher* matcher,
    const embedding::CachingEmbeddingModel* embedding_cache,
    size_t property_cache_capacity, size_t property_cache_shards,
    ModelInfo info, Resources owned)
    : owned_(std::move(owned)),
      matcher_(matcher),
      embedding_cache_(embedding_cache),
      property_cache_(std::max<size_t>(1, property_cache_capacity),
                      property_cache_shards),
      info_(std::move(info)) {}

Status ModelGeneration::AttachCatalog(
    const data::Dataset* catalog, blocking::CandidatePipeline* pipeline,
    std::unique_ptr<blocking::CandidatePipeline> owned_pipeline) {
  if (catalog == nullptr) {
    return Status::InvalidArgument("AttachCatalog requires a dataset");
  }
  if (pipeline == nullptr) {
    return Status::InvalidArgument("AttachCatalog requires a pipeline");
  }
  if (catalog->property_count() == 0) {
    return Status::InvalidArgument("catalog dataset has no properties");
  }
  LEAPME_RETURN_IF_ERROR(pipeline->BuildIndex(*catalog));
  // Precompute every catalog property's feature vector once; each slot is
  // written by exactly one chunk, so the fan-out is deterministic.
  const size_t count = catalog->property_count();
  std::vector<FeaturePtr> precomputed(count);
  ParallelFor(0, count, /*grain=*/8, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const auto id = static_cast<data::PropertyId>(i);
      const std::vector<data::InstanceValue>& instances =
          catalog->instances(id);
      std::vector<std::string> values;
      values.reserve(instances.size());
      for (const data::InstanceValue& instance : instances) {
        values.push_back(instance.value);
      }
      precomputed[i] = std::make_shared<features::PropertyFeatures>(
          matcher_->ComputePropertyFeatures(catalog->property(id).name,
                                            values));
    }
  });
  catalog_ = catalog;
  owned_pipeline_ = std::move(owned_pipeline);
  catalog_pipeline_ = pipeline;
  catalog_features_ = std::move(precomputed);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ModelRegistry

ModelRegistry::ModelRegistry(Loader loader, RegistryOptions options)
    : loader_(std::move(loader)),
      options_(options),
      canary_ring_(),
      outcome_window_(std::max<size_t>(1, options.rollback_window), 0) {
  canary_ring_.reserve(options_.canary_capacity);
}

std::unique_ptr<ModelRegistry> ModelRegistry::WrapExisting(
    const core::LeapmeMatcher* matcher,
    const embedding::CachingEmbeddingModel* embedding_cache,
    RegistryOptions options) {
  auto registry = std::make_unique<ModelRegistry>(Loader(), options);
  ModelInfo info;
  info.version = registry->next_version_++;
  info.fingerprint = matcher->pipeline().schema().fingerprint();
  info.format_version = matcher->loaded_format_version();
  registry->current_ = std::make_shared<ModelGeneration>(
      matcher, embedding_cache, options.property_cache_capacity,
      options.property_cache_shards, std::move(info));
  return registry;
}

Status ModelRegistry::Init(const std::string& path) {
  if (!loader_) {
    return Status::FailedPrecondition(
        "registry has no model loader (WrapExisting registries start "
        "initialized)");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (current_ != nullptr) {
      return Status::FailedPrecondition("registry already initialized");
    }
  }
  LEAPME_ASSIGN_OR_RETURN(ModelGeneration::Resources resources,
                          loader_(path));
  LEAPME_RETURN_IF_ERROR(ValidateServingModel(
      resources.matcher.get(), resources.embedding_cache.get()));
  ModelInfo info;
  info.fingerprint =
      resources.matcher->pipeline().schema().fingerprint();
  info.format_version = resources.matcher->loaded_format_version();
  info.path = path;
  info.file_mtime = FileMtimeSeconds(path);
  const core::LeapmeMatcher* matcher = resources.matcher.get();
  const embedding::CachingEmbeddingModel* cache =
      resources.embedding_cache.get();
  auto generation = std::make_shared<ModelGeneration>(
      matcher, cache, options_.property_cache_capacity,
      options_.property_cache_shards, std::move(info),
      std::move(resources));
  std::lock_guard<std::mutex> lock(mu_);
  generation->set_version(next_version_++);
  current_ = std::move(generation);
  return Status::OK();
}

Status ModelRegistry::AttachCatalog(const data::Dataset* catalog,
                                    const std::string& blocking_spec) {
  std::shared_ptr<const ModelGeneration> current = Acquire();
  if (current == nullptr) {
    return Status::FailedPrecondition("AttachCatalog requires Init first");
  }
  catalog_ = catalog;
  catalog_spec_ = blocking_spec;
  // Safe: the generation is not serving yet (AttachCatalog runs before
  // the transport starts) and the catalog members are generation-local.
  return AttachCatalogToGeneration(
      const_cast<ModelGeneration&>(*current));
}

Status ModelRegistry::AttachCatalogUnowned(
    const data::Dataset* catalog, blocking::CandidatePipeline* pipeline) {
  std::shared_ptr<const ModelGeneration> current = Acquire();
  if (current == nullptr) {
    return Status::FailedPrecondition(
        "AttachCatalog requires an initialized registry");
  }
  return const_cast<ModelGeneration&>(*current).AttachCatalog(catalog,
                                                              pipeline);
}

Status ModelRegistry::AttachCatalogToGeneration(
    ModelGeneration& generation) const {
  if (catalog_ == nullptr) {
    return Status::OK();
  }
  LEAPME_ASSIGN_OR_RETURN(
      std::unique_ptr<blocking::CandidatePipeline> pipeline,
      blocking::CandidatePipeline::Parse(catalog_spec_,
                                         generation.embedding_cache()));
  blocking::CandidatePipeline* raw = pipeline.get();
  return generation.AttachCatalog(catalog_, raw, std::move(pipeline));
}

std::shared_ptr<const ModelGeneration> ModelRegistry::Acquire() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

StatusOr<std::vector<double>> ModelRegistry::ShadowScore(
    const ModelGeneration& generation,
    const std::vector<PropertyPairSpec>& sample) {
  std::vector<features::PropertyFeatures> features;
  features.reserve(2 * sample.size());
  std::vector<const features::PropertyFeatures*> lhs;
  std::vector<const features::PropertyFeatures*> rhs;
  lhs.reserve(sample.size());
  rhs.reserve(sample.size());
  for (const PropertyPairSpec& pair : sample) {
    features.push_back(generation.matcher().ComputePropertyFeatures(
        pair.a.name, pair.a.values));
    lhs.push_back(&features.back());
    features.push_back(generation.matcher().ComputePropertyFeatures(
        pair.b.name, pair.b.values));
    rhs.push_back(&features.back());
  }
  return generation.matcher().ScoreFeaturePairs(lhs, rhs);
}

StatusOr<std::shared_ptr<ModelGeneration>>
ModelRegistry::BuildCandidate(const std::string& path,
                              const ModelGeneration& current,
                              double* divergence, size_t* canary_pairs) {
  // Stage 1: load into a sidecar — nothing here touches serving state,
  // and the model.load fault point (inside LoadModel) fires here.
  LEAPME_ASSIGN_OR_RETURN(ModelGeneration::Resources resources,
                          loader_(path));
  // Stage 2: the same admission gate MatcherService::Create applies.
  LEAPME_RETURN_IF_ERROR(ValidateServingModel(
      resources.matcher.get(), resources.embedding_cache.get()));

  ModelInfo info;
  info.fingerprint =
      resources.matcher->pipeline().schema().fingerprint();
  info.format_version = resources.matcher->loaded_format_version();
  info.path = path;
  info.file_mtime = FileMtimeSeconds(path);
  const core::LeapmeMatcher* matcher = resources.matcher.get();
  const embedding::CachingEmbeddingModel* cache =
      resources.embedding_cache.get();
  auto candidate = std::make_shared<ModelGeneration>(
      matcher, cache, options_.property_cache_capacity,
      options_.property_cache_shards, std::move(info),
      std::move(resources));

  // Stage 3: shadow-score the captured live sample on both generations.
  std::vector<PropertyPairSpec> sample;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sample = canary_ring_;
  }
  *divergence = 0.0;
  *canary_pairs = sample.size();
  if (!sample.empty()) {
    const StatusOr<std::vector<double>> current_scores =
        ShadowScore(current, sample);
    if (!current_scores.ok()) {
      return Status::Internal(
          "canary could not score the live sample on the serving "
          "generation: " +
          current_scores.status().ToString());
    }
    LEAPME_ASSIGN_OR_RETURN(const std::vector<double> candidate_scores,
                            ShadowScore(*candidate, sample));
    for (size_t i = 0; i < sample.size(); ++i) {
      *divergence = std::max(
          *divergence,
          std::abs(candidate_scores[i] - current_scores.value()[i]));
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      last_canary_divergence_ = *divergence;
    }
    if (*divergence > options_.canary_threshold) {
      return Status::FailedPrecondition(StrFormat(
          "canary rejected candidate %s: max score divergence %.6f over "
          "%zu live pairs exceeds the %.6f threshold",
          path.c_str(), *divergence, sample.size(),
          options_.canary_threshold));
    }
  }

  // Stage 4: catalog-index mode rebuilds the index on the candidate's
  // own matcher + embedding cache.
  LEAPME_RETURN_IF_ERROR(AttachCatalogToGeneration(*candidate));
  return candidate;
}

StatusOr<ReloadOutcome> ModelRegistry::Reload(const std::string& path) {
  if (!loader_) {
    std::lock_guard<std::mutex> lock(mu_);
    ++reloads_rejected_;
    return Status::FailedPrecondition(
        "this server cannot hot-reload: the registry wraps a fixed "
        "in-process model (no loader)");
  }
  std::unique_lock<std::mutex> reload_lock(reload_mu_, std::try_to_lock);
  if (!reload_lock.owns_lock()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++reloads_rejected_;
    return Status::Unavailable("another reload is already in progress");
  }
  std::shared_ptr<const ModelGeneration> current = Acquire();
  if (current == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    ++reloads_rejected_;
    return Status::FailedPrecondition("registry is not initialized");
  }
  const std::string target = path.empty() ? current->info().path : path;
  if (target.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++reloads_rejected_;
    return Status::InvalidArgument(
        "no model path: the serving generation was not loaded from a "
        "file, pass an explicit path");
  }

  reload_in_progress_.store(true, std::memory_order_relaxed);
  double divergence = 0.0;
  size_t canary_pairs = 0;
  StatusOr<std::shared_ptr<ModelGeneration>> candidate =
      BuildCandidate(target, *current, &divergence, &canary_pairs);
  reload_in_progress_.store(false, std::memory_order_relaxed);
  if (!candidate.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++reloads_rejected_;
    LEAPME_LOG(Warning) << "reload of " << target
                        << " rejected: " << candidate.status().ToString()
                        << " (still serving generation "
                        << current->info().version << ")";
    return candidate.status();
  }

  // Stage 5: publish. The swap is a shared_ptr assignment under mu_ —
  // in-flight requests keep the generation they acquired.
  ReloadOutcome outcome;
  outcome.canary_divergence = divergence;
  outcome.canary_pairs = canary_pairs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    (*candidate)->set_version(next_version_++);
    previous_ = std::move(current_);
    current_ = std::move(candidate).value();
    ++reloads_ok_;
    // Fresh probation: the trip judges only post-swap outcomes.
    std::fill(outcome_window_.begin(), outcome_window_.end(), 0);
    outcome_pos_ = 0;
    outcome_count_ = 0;
    outcome_errors_ = 0;
    outcomes_since_swap_ = 0;
    probation_ = options_.rollback_error_rate > 0.0;
    outcome.info = current_->info();
  }
  return outcome;
}

void ModelRegistry::CapturePair(const PropertyPairSpec& pair) {
  if (options_.canary_capacity == 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (canary_ring_.size() < options_.canary_capacity) {
    canary_ring_.push_back(pair);
  } else {
    canary_ring_[canary_pos_] = pair;
  }
  canary_pos_ = (canary_pos_ + 1) % options_.canary_capacity;
}

void ModelRegistry::RecordOutcome(bool model_fault) {
  std::shared_ptr<const ModelGeneration> release;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const uint8_t bit = model_fault ? 1 : 0;
    if (outcome_count_ < outcome_window_.size()) {
      ++outcome_count_;
    } else {
      outcome_errors_ -= outcome_window_[outcome_pos_];
    }
    outcome_window_[outcome_pos_] = bit;
    outcome_errors_ += bit;
    outcome_pos_ = (outcome_pos_ + 1) % outcome_window_.size();
    if (!probation_) {
      return;
    }
    ++outcomes_since_swap_;
    const double error_rate =
        static_cast<double>(outcome_errors_) /
        static_cast<double>(outcome_count_);
    if (previous_ != nullptr &&
        outcomes_since_swap_ >= options_.rollback_min_samples &&
        error_rate > options_.rollback_error_rate) {
      // Trip: republish the retained previous generation (its original
      // version number makes the rollback visible in stats).
      LEAPME_LOG(Warning)
          << "post-swap error rate " << error_rate << " over "
          << outcome_count_ << " outcomes tripped the "
          << options_.rollback_error_rate
          << " rollback threshold; rolling back from generation "
          << current_->info().version << " to generation "
          << previous_->info().version;
      release = std::move(current_);
      current_ = std::move(previous_);
      previous_.reset();
      probation_ = false;
      ++reloads_rolled_back_;
      std::fill(outcome_window_.begin(), outcome_window_.end(), 0);
      outcome_pos_ = 0;
      outcome_count_ = 0;
      outcome_errors_ = 0;
    } else if (outcomes_since_swap_ >= 2 * outcome_window_.size()) {
      // Probation survived: release the retained generation.
      release = std::move(previous_);
      probation_ = false;
    }
  }
  // `release` destroys the generation outside mu_ (feature caches and
  // catalog features can be large).
}

RegistryStats ModelRegistry::Snapshot() const {
  RegistryStats stats;
  std::lock_guard<std::mutex> lock(mu_);
  if (current_ != nullptr) {
    stats.info = current_->info();
  }
  stats.reloads_ok = reloads_ok_;
  stats.reloads_rejected = reloads_rejected_;
  stats.reloads_rolled_back = reloads_rolled_back_;
  stats.canary_divergence = last_canary_divergence_;
  stats.reload_in_progress =
      reload_in_progress_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace leapme::serve
