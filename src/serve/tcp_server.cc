#include "serve/tcp_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/signal.h"
#include "common/string_util.h"
#include "serve/protocol.h"

namespace leapme::serve {

namespace {

void CloseIfOpen(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

TcpServer::TcpServer(MatcherService* service, ServerOptions options)
    : service_(service), options_(std::move(options)) {}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start() {
  if (started_) {
    return Status::FailedPrecondition("server already started");
  }
  if (options_.port < 0 || options_.port > 65535) {
    return Status::InvalidArgument(
        StrFormat("port %d out of range", options_.port));
  }
  sockaddr_in address = {};
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &address.sin_addr) != 1) {
    return Status::InvalidArgument("cannot parse host '" + options_.host +
                                   "' as an IPv4 address");
  }
  if (::pipe(wake_pipe_) != 0) {
    return Status::IoError(StrFormat("pipe: %s", std::strerror(errno)));
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(StrFormat("socket: %s", std::strerror(errno)));
  }
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable,
               sizeof(enable));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0) {
    Status status = Status::IoError(StrFormat(
        "bind %s:%d: %s", options_.host.c_str(), options_.port,
        std::strerror(errno)));
    CloseIfOpen(listen_fd_);
    return status;
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    Status status =
        Status::IoError(StrFormat("listen: %s", std::strerror(errno)));
    CloseIfOpen(listen_fd_);
    return status;
  }
  sockaddr_in bound = {};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = options_.port;
  }
  started_ = true;
  stopping_.store(false, std::memory_order_relaxed);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void TcpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (stopping_.load(std::memory_order_relaxed) ||
        (fds[1].revents & POLLIN) != 0) {
      break;
    }
    if ((fds[0].revents & POLLIN) == 0) {
      continue;
    }
    const int conn_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (conn_fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    ReapFinishedWorkers();
    std::lock_guard<std::mutex> lock(conn_mu_);
    const uint64_t token = next_conn_token_++;
    conn_fds_.emplace(token, conn_fd);
    conn_threads_.emplace(token, std::thread([this, conn_fd, token] {
      HandleConnection(conn_fd);
      {
        std::lock_guard<std::mutex> inner(conn_mu_);
        conn_fds_.erase(token);
        finished_tokens_.push_back(token);
      }
      ::close(conn_fd);
    }));
  }
}

void TcpServer::ReapFinishedWorkers() {
  std::vector<std::thread> finished;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    finished.reserve(finished_tokens_.size());
    for (const uint64_t token : finished_tokens_) {
      auto it = conn_threads_.find(token);
      if (it != conn_threads_.end()) {
        finished.push_back(std::move(it->second));
        conn_threads_.erase(it);
      }
    }
    finished_tokens_.clear();
  }
  for (std::thread& worker : finished) {
    if (worker.joinable()) {
      worker.join();
    }
  }
}

bool TcpServer::SendLine(int fd, std::string line) {
  line.push_back('\n');
  size_t sent = 0;
  while (sent < line.size()) {
    // MSG_NOSIGNAL: a peer that closed mid-response must surface as an
    // error return, not a process-killing SIGPIPE.
    const ssize_t n = ::send(fd, line.data() + sent, line.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool TcpServer::DrainBuffer(int fd, std::string& buffer) {
  size_t start = 0;
  while (true) {
    const size_t newline = buffer.find('\n', start);
    if (newline == std::string::npos) {
      break;
    }
    std::string_view line(buffer.data() + start, newline - start);
    if (!line.empty() && line.back() == '\r') {
      line.remove_suffix(1);
    }
    if (!line.empty()) {
      if (!SendLine(fd, service_->HandleLine(line))) {
        buffer.clear();
        return false;
      }
    }
    start = newline + 1;
  }
  buffer.erase(0, start);
  if (buffer.size() > options_.max_line_bytes) {
    SendLine(fd, ErrorResponse(
                     std::nullopt,
                     Status::InvalidArgument(StrFormat(
                         "request line exceeds %zu bytes",
                         options_.max_line_bytes))));
    return false;
  }
  return true;
}

void TcpServer::HandleConnection(int fd) {
  service_->OnConnectionOpened();
  std::string buffer;
  char chunk[4096];
  bool server_initiated_close = false;
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) {
      // EOF / half-close: requests already received were answered as
      // their lines completed; an unterminated trailing fragment is
      // dropped by NDJSON framing rules.
      break;
    }
    buffer.append(chunk, static_cast<size_t>(n));
    if (!DrainBuffer(fd, buffer)) {
      server_initiated_close = true;
      break;
    }
  }
  if (server_initiated_close) {
    // Lingering close: closing with unread bytes still queued would turn
    // into an RST that can discard the in-flight error response on the
    // peer. Send our FIN first and drain until the peer closes (Stop()'s
    // SHUT_RD unblocks this recv as well).
    ::shutdown(fd, SHUT_WR);
    while (::recv(fd, chunk, sizeof(chunk), 0) > 0) {
    }
  }
  service_->OnConnectionClosed();
}

void TcpServer::Stop() {
  if (!started_) {
    return;
  }
  if (!stopping_.exchange(true)) {
    // Wake the accept poll; a full pipe is fine, it is already readable.
    const char byte = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  // Drain: half-close every connection so blocked recv calls return 0;
  // workers finish responding to whatever they already read, then exit.
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const auto& [token, fd] : conn_fds_) {
      ::shutdown(fd, SHUT_RD);
    }
    workers.reserve(conn_threads_.size());
    for (auto& [token, worker] : conn_threads_) {
      workers.push_back(std::move(worker));
    }
    conn_threads_.clear();
    finished_tokens_.clear();
  }
  for (std::thread& worker : workers) {
    if (worker.joinable()) {
      worker.join();
    }
  }
  CloseIfOpen(listen_fd_);
  CloseIfOpen(wake_pipe_[0]);
  CloseIfOpen(wake_pipe_[1]);
  started_ = false;
}

Status TcpServer::ServeUntilShutdown() {
  if (!started_) {
    return Status::FailedPrecondition("server not started");
  }
  const int signal_fd = ShutdownSignalFd();
  if (signal_fd < 0) {
    return Status::Internal("cannot create shutdown signal pipe");
  }
  while (!ShutdownRequested()) {
    pollfd pfd = {signal_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/250);
    if (ready < 0 && errno != EINTR) {
      break;
    }
    if (ready > 0 && (pfd.revents & POLLIN) != 0) {
      break;
    }
  }
  Stop();
  return Status::OK();
}

}  // namespace leapme::serve
