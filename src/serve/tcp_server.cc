#include "serve/tcp_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/faults/fault_injector.h"
#include "common/logging.h"
#include "common/signal.h"
#include "common/string_util.h"
#include "serve/io_util.h"
#include "serve/protocol.h"
#include "serve/reactor_server.h"

namespace leapme::serve {

StatusOr<IoBackend> ParseIoBackend(const std::string& name) {
  if (name == "epoll") {
    return IoBackend::kEpoll;
  }
  if (name == "threaded") {
    return IoBackend::kThreaded;
  }
  return Status::InvalidArgument("unknown io backend '" + name +
                                 "' (expected 'epoll' or 'threaded')");
}

const char* IoBackendName(IoBackend backend) {
  switch (backend) {
    case IoBackend::kEpoll:
      return "epoll";
    case IoBackend::kThreaded:
      return "threaded";
  }
  return "unknown";
}

IoBackend IoBackendFromEnv() {
  const char* value = std::getenv("LEAPME_IO_BACKEND");
  if (value == nullptr || *value == '\0') {
    return IoBackend::kEpoll;
  }
  const StatusOr<IoBackend> parsed = ParseIoBackend(value);
  if (!parsed.ok()) {
    LEAPME_LOG(Warning) << "LEAPME_IO_BACKEND='" << value
                        << "' not recognized; using epoll";
    return IoBackend::kEpoll;
  }
  return parsed.value();
}

size_t EventLoopThreadsFromEnv() {
  const char* value = std::getenv("LEAPME_EVENT_LOOP_THREADS");
  if (value == nullptr || *value == '\0') {
    return 1;
  }
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed < 1) {
    LEAPME_LOG(Warning) << "LEAPME_EVENT_LOOP_THREADS='" << value
                        << "' not a positive integer; using 1";
    return 1;
  }
  return static_cast<size_t>(std::min<long>(parsed, 64));
}

namespace internal {

/// The original blocking accept / thread-per-connection backend, kept
/// selectable (`--io-backend=threaded`) for one release to de-risk the
/// reactor migration. Wire protocol, deadline semantics, overload
/// controls, and fault points are identical to the epoll backend.
class ThreadedServer : public ServerImpl {
 public:
  ThreadedServer(MatcherService* service, const ServerOptions& options)
      : service_(service), options_(options) {}
  ~ThreadedServer() override { Stop(); }

  Status Start() override;
  void Stop() override;
  int port() const override { return port_; }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  bool SendLine(int fd, std::string line);
  bool DrainBuffer(int fd, std::string& buffer, Deadline* deadline);
  void ReapFinishedWorkers();

  MatcherService* service_;
  ServerOptions options_;
  int listen_fd_ = -1;
  int port_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  ReserveFd reserve_fd_;

  std::mutex conn_mu_;
  uint64_t next_conn_token_ = 0;
  std::unordered_map<uint64_t, int> conn_fds_;
  std::unordered_map<uint64_t, std::thread> conn_threads_;
  std::vector<uint64_t> finished_tokens_;
  bool started_ = false;
};

Status ThreadedServer::Start() {
  if (started_) {
    return Status::FailedPrecondition("server already started");
  }
  if (options_.port < 0 || options_.port > 65535) {
    return Status::InvalidArgument(
        StrFormat("port %d out of range", options_.port));
  }
  sockaddr_in address = {};
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &address.sin_addr) != 1) {
    return Status::InvalidArgument("cannot parse host '" + options_.host +
                                   "' as an IPv4 address");
  }
  if (::pipe(wake_pipe_) != 0) {
    return Status::IoError(StrFormat("pipe: %s", std::strerror(errno)));
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(StrFormat("socket: %s", std::strerror(errno)));
  }
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable,
               sizeof(enable));
  if (options_.sndbuf_bytes > 0) {
    // Set on the listener so accepted sockets inherit it; tests use a
    // tiny buffer to force writable backpressure deterministically.
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_SNDBUF, &options_.sndbuf_bytes,
                 sizeof(options_.sndbuf_bytes));
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0) {
    Status status = Status::IoError(StrFormat(
        "bind %s:%d: %s", options_.host.c_str(), options_.port,
        std::strerror(errno)));
    CloseIfOpen(listen_fd_);
    return status;
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    Status status =
        Status::IoError(StrFormat("listen: %s", std::strerror(errno)));
    CloseIfOpen(listen_fd_);
    return status;
  }
  sockaddr_in bound = {};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = options_.port;
  }
  started_ = true;
  stopping_.store(false, std::memory_order_relaxed);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void ThreadedServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (stopping_.load(std::memory_order_relaxed) ||
        (fds[1].revents & POLLIN) != 0) {
      break;
    }
    if ((fds[0].revents & POLLIN) == 0) {
      continue;
    }
    const int conn_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (conn_fd < 0) {
      const int error = errno;
      switch (ClassifyAcceptErrno(error)) {
        case AcceptFailure::kRetry:
          // EINTR / ECONNABORTED / ENOBUFS...: one connection attempt
          // failed, the listener is fine.
          LEAPME_LOG(Warning) << "accept: " << std::strerror(error)
                              << " (transient; continuing)";
          continue;
        case AcceptFailure::kOverflow: {
          // Out of fds: momentarily give back the reserve fd so the
          // pending connection can be accepted, told to back off, and
          // closed — the shed contract instead of a silent stall.
          LEAPME_LOG(Warning)
              << "accept: " << std::strerror(error) << "; shedding";
          reserve_fd_.Release();
          const int shed = ::accept(listen_fd_, nullptr, nullptr);
          if (shed >= 0) {
            BestEffortSendLine(
                shed, ErrorResponse(
                          std::nullopt,
                          Status::Unavailable(
                              "server out of file descriptors; retry later"),
                          kRejectRetryAfterMs));
            service_->OnConnectionRejected();
            ::close(shed);
          }
          if (!reserve_fd_.Reacquire()) {
            LEAPME_LOG(Warning) << "accept: cannot reacquire reserve fd";
          }
          continue;
        }
        case AcceptFailure::kFatal:
          LEAPME_LOG(Error) << "accept: " << std::strerror(error)
                            << "; listener disabled";
          return;
      }
    }
    if (faults::InjectError("serve.accept")) {
      // Simulated accept failure: the connection is dropped before a
      // worker ever serves it; clients see a close and retry.
      ::close(conn_fd);
      continue;
    }
    ReapFinishedWorkers();
    if (options_.max_connections > 0) {
      size_t active = 0;
      {
        std::lock_guard<std::mutex> lock(conn_mu_);
        active = conn_fds_.size();
      }
      if (active >= options_.max_connections) {
        // Inline rejection: one Unavailable reply with a retry hint on
        // the fresh socket (its send buffer is empty, the small write
        // cannot block), then close — clients back off instead of
        // piling into invisible kernel queues.
        SendLine(conn_fd,
                 ErrorResponse(
                     std::nullopt,
                     Status::Unavailable(StrFormat(
                         "serving %zu connections (cap %zu); retry later",
                         active, options_.max_connections)),
                     kRejectRetryAfterMs));
        service_->OnConnectionRejected();
        ::close(conn_fd);
        continue;
      }
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    const uint64_t token = next_conn_token_++;
    conn_fds_.emplace(token, conn_fd);
    conn_threads_.emplace(token, std::thread([this, conn_fd, token] {
      HandleConnection(conn_fd);
      {
        std::lock_guard<std::mutex> inner(conn_mu_);
        conn_fds_.erase(token);
        finished_tokens_.push_back(token);
      }
      ::close(conn_fd);
    }));
  }
}

void ThreadedServer::ReapFinishedWorkers() {
  std::vector<std::thread> finished;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    finished.reserve(finished_tokens_.size());
    for (const uint64_t token : finished_tokens_) {
      auto it = conn_threads_.find(token);
      if (it != conn_threads_.end()) {
        finished.push_back(std::move(it->second));
        conn_threads_.erase(it);
      }
    }
    finished_tokens_.clear();
  }
  for (std::thread& worker : finished) {
    if (worker.joinable()) {
      worker.join();
    }
  }
}

bool ThreadedServer::SendLine(int fd, std::string line) {
  line.push_back('\n');
  size_t sent = 0;
  while (sent < line.size()) {
    size_t attempt = line.size() - sent;
    if (const std::optional<faults::FaultHit> hit =
            faults::FaultInjector::Global().Evaluate("serve.write")) {
      if (hit->kind == faults::FaultKind::kError) {
        return false;
      }
      if (hit->kind == faults::FaultKind::kShortIo) {
        // A short write transfers fewer bytes; the loop must finish the
        // rest — exactly what real sockets do under pressure.
        attempt = std::clamp<size_t>(hit->param, 1, attempt);
      }
    }
    // MSG_NOSIGNAL: a peer that closed mid-response must surface as an
    // error return, not a process-killing SIGPIPE.
    const ssize_t n = ::send(fd, line.data() + sent, attempt, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      // EAGAIN here means SO_SNDTIMEO expired with the socket buffer
      // still full: the peer stopped reading within the request budget.
      // Treat it as a dead connection rather than blocking the worker.
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool ThreadedServer::DrainBuffer(int fd, std::string& buffer,
                                 Deadline* deadline) {
  size_t start = 0;
  while (true) {
    const size_t newline = buffer.find('\n', start);
    if (newline == std::string::npos) {
      break;
    }
    std::string_view line(buffer.data() + start, newline - start);
    if (!line.empty() && line.back() == '\r') {
      line.remove_suffix(1);
    }
    if (!line.empty()) {
      if (!SendLine(fd, service_->HandleLine(line, *deadline))) {
        buffer.clear();
        return false;
      }
    }
    start = newline + 1;
    // The answered request's budget is spent; any pipelined follow-up
    // (already buffered or still arriving) gets a fresh one.
    *deadline = options_.deadline_ms > 0
                    ? Deadline::AfterMs(options_.deadline_ms)
                    : Deadline::Infinite();
  }
  buffer.erase(0, start);
  if (buffer.empty()) {
    *deadline = Deadline::Infinite();  // idle again — no clock ticking
  }
  if (buffer.size() > options_.max_line_bytes) {
    SendLine(fd, ErrorResponse(
                     std::nullopt,
                     Status::InvalidArgument(StrFormat(
                         "request line exceeds %zu bytes",
                         options_.max_line_bytes))));
    return false;
  }
  return true;
}

void ThreadedServer::HandleConnection(int fd) {
  service_->OnConnectionOpened();
  if (options_.deadline_ms > 0) {
    // Bound response writes by the request budget: a peer that stops
    // reading mid-response must not park this worker forever. SendLine
    // treats the resulting EAGAIN as a dead connection.
    timeval timeout = {};
    timeout.tv_sec = options_.deadline_ms / 1000;
    timeout.tv_usec = static_cast<suseconds_t>(
        (options_.deadline_ms % 1000) * 1000);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
  }
  std::string buffer;
  char chunk[4096];
  bool server_initiated_close = false;
  Deadline deadline;  // infinite while the connection is idle
  while (true) {
    // The poll gate enforces the read side of the request deadline: an
    // idle connection waits forever, but once a request's first bytes
    // arrive the rest of the line must show up within the budget.
    pollfd pfd = {fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, deadline.PollTimeoutMs());
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) {
      service_->OnRequestTimeout();
      SendLine(fd, ErrorResponse(
                       std::nullopt,
                       Status::DeadlineExceeded(
                           "request deadline expired before the request "
                           "line completed")));
      server_initiated_close = true;
      break;
    }
    size_t cap = sizeof(chunk);
    if (const std::optional<faults::FaultHit> hit =
            faults::FaultInjector::Global().Evaluate("serve.read")) {
      if (hit->kind == faults::FaultKind::kError) {
        // Simulated transport failure: drop the connection cleanly (FIN,
        // not a hang); clients treat it as a lost connection and retry.
        server_initiated_close = true;
        break;
      }
      if (hit->kind == faults::FaultKind::kShortIo) {
        // Short read: deliver fewer bytes this round; the rest stays in
        // the socket buffer for the next loop, as on a real socket.
        cap = std::clamp<size_t>(hit->param, 1, cap);
      }
    }
    const ssize_t n = ::recv(fd, chunk, cap, 0);
    if (n < 0) {
      // EAGAIN/EWOULDBLOCK: spurious wakeup or a racing reader — poll
      // again; the deadline stays enforced by the poll gate above.
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      break;
    }
    if (n == 0) {
      // EOF / half-close: requests already received were answered as
      // their lines completed; an unterminated trailing fragment is
      // dropped by NDJSON framing rules.
      break;
    }
    buffer.append(chunk, static_cast<size_t>(n));
    if (deadline.infinite() && options_.deadline_ms > 0) {
      deadline = Deadline::AfterMs(options_.deadline_ms);
    }
    if (!DrainBuffer(fd, buffer, &deadline)) {
      server_initiated_close = true;
      break;
    }
  }
  if (server_initiated_close) {
    // Lingering close: closing with unread bytes still queued would turn
    // into an RST that can discard the in-flight error response on the
    // peer. Send our FIN first and drain until the peer closes (Stop()'s
    // SHUT_RD unblocks this recv as well).
    ::shutdown(fd, SHUT_WR);
    while (::recv(fd, chunk, sizeof(chunk), 0) > 0) {
    }
  }
  service_->OnConnectionClosed();
}

void ThreadedServer::Stop() {
  if (!started_) {
    return;
  }
  if (!stopping_.exchange(true)) {
    // Wake the accept poll; a full pipe is fine, it is already readable.
    const char byte = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  // Drain: half-close every connection so blocked recv calls return 0;
  // workers finish responding to whatever they already read, then exit.
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const auto& [token, fd] : conn_fds_) {
      ::shutdown(fd, SHUT_RD);
    }
    workers.reserve(conn_threads_.size());
    for (auto& [token, worker] : conn_threads_) {
      workers.push_back(std::move(worker));
    }
    conn_threads_.clear();
    finished_tokens_.clear();
  }
  for (std::thread& worker : workers) {
    if (worker.joinable()) {
      worker.join();
    }
  }
  CloseIfOpen(listen_fd_);
  CloseIfOpen(wake_pipe_[0]);
  CloseIfOpen(wake_pipe_[1]);
  started_ = false;
}

}  // namespace internal

// ---------------------------------------------------------------------------
// Facade

TcpServer::TcpServer(MatcherService* service, ServerOptions options)
    : service_(service), options_(std::move(options)) {}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start() {
  if (started_) {
    return Status::FailedPrecondition("server already started");
  }
  switch (options_.io_backend) {
    case IoBackend::kEpoll:
      impl_ = std::make_unique<internal::ReactorServer>(service_, options_);
      break;
    case IoBackend::kThreaded:
      impl_ = std::make_unique<internal::ThreadedServer>(service_, options_);
      break;
  }
  const Status status = impl_->Start();
  if (!status.ok()) {
    impl_.reset();
    return status;
  }
  service_->SetTransport(IoBackendName(options_.io_backend),
                         options_.io_backend == IoBackend::kEpoll
                             ? std::max<size_t>(options_.event_loop_threads, 1)
                             : 0);
  started_ = true;
  return Status::OK();
}

int TcpServer::port() const { return impl_ ? impl_->port() : -1; }

void TcpServer::Stop() {
  if (impl_) {
    impl_->Stop();
  }
  started_ = false;
}

Status TcpServer::ServeUntilShutdown() {
  if (!started_) {
    return Status::FailedPrecondition("server not started");
  }
  const int signal_fd = ShutdownSignalFd();
  if (signal_fd < 0) {
    return Status::Internal("cannot create shutdown signal pipe");
  }
  while (!ShutdownRequested()) {
    pollfd pfd = {signal_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/250);
    if (ready < 0 && errno != EINTR) {
      break;
    }
    if (ready > 0 && (pfd.revents & POLLIN) != 0) {
      break;
    }
  }
  Stop();
  return Status::OK();
}

}  // namespace leapme::serve
