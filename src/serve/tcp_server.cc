#include "serve/tcp_server.h"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <memory>

#include "common/logging.h"
#include "common/signal.h"
#include "serve/reactor_server.h"

namespace leapme::serve {

StatusOr<IoBackend> ParseIoBackend(const std::string& name) {
  if (name == "epoll") {
    return IoBackend::kEpoll;
  }
  if (name == "threaded") {
    return Status::InvalidArgument(
        "the 'threaded' io backend (one thread per connection) was retired "
        "after the epoll reactor became the default; use --io-backend epoll "
        "and tune --event-loop-threads instead");
  }
  return Status::InvalidArgument("unknown io backend '" + name +
                                 "' (expected 'epoll')");
}

const char* IoBackendName(IoBackend backend) {
  switch (backend) {
    case IoBackend::kEpoll:
      return "epoll";
  }
  return "unknown";
}

IoBackend IoBackendFromEnv() {
  const char* value = std::getenv("LEAPME_IO_BACKEND");
  if (value == nullptr || *value == '\0') {
    return IoBackend::kEpoll;
  }
  const StatusOr<IoBackend> parsed = ParseIoBackend(value);
  if (!parsed.ok()) {
    // Environments outlive flag migrations: a retired or malformed value
    // degrades to the reactor with a warning instead of refusing to serve.
    LEAPME_LOG(Warning) << "LEAPME_IO_BACKEND='" << value << "': "
                        << parsed.status().message() << "; using epoll";
    return IoBackend::kEpoll;
  }
  return parsed.value();
}

size_t EventLoopThreadsFromEnv() {
  const char* value = std::getenv("LEAPME_EVENT_LOOP_THREADS");
  if (value == nullptr || *value == '\0') {
    return 1;
  }
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed < 1) {
    LEAPME_LOG(Warning) << "LEAPME_EVENT_LOOP_THREADS='" << value
                        << "' not a positive integer; using 1";
    return 1;
  }
  return static_cast<size_t>(std::min<long>(parsed, 64));
}



// ---------------------------------------------------------------------------
// Facade

TcpServer::TcpServer(MatcherService* service, ServerOptions options)
    : service_(service), options_(std::move(options)) {}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start() {
  if (started_) {
    return Status::FailedPrecondition("server already started");
  }
  impl_ = std::make_unique<internal::ReactorServer>(service_, options_);
  const Status status = impl_->Start();
  if (!status.ok()) {
    impl_.reset();
    return status;
  }
  service_->SetTransport(IoBackendName(options_.io_backend),
                         std::max<size_t>(options_.event_loop_threads, 1));
  service_->SetDraining(false);
  started_ = true;
  return Status::OK();
}

int TcpServer::port() const { return impl_ ? impl_->port() : -1; }

void TcpServer::Stop() {
  if (impl_) {
    // Flip readiness first so health checks observe the drain before the
    // listener closes.
    service_->SetDraining(true);
    impl_->Stop();
  }
  started_ = false;
}

Status TcpServer::ServeUntilShutdown(const std::function<void()>& on_tick) {
  if (!started_) {
    return Status::FailedPrecondition("server not started");
  }
  const int signal_fd = ShutdownSignalFd();
  if (signal_fd < 0) {
    return Status::Internal("cannot create shutdown signal pipe");
  }
  while (!ShutdownRequested()) {
    pollfd pfd = {signal_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/250);
    if (ready < 0 && errno != EINTR) {
      break;
    }
    if (ready > 0 && (pfd.revents & POLLIN) != 0) {
      // The pipe is shared by shutdown and reload signals: drain the
      // wakeup bytes (the read end is non-blocking), then consult the
      // flags — only a shutdown request ends the loop.
      char buffer[64];
      while (::read(signal_fd, buffer, sizeof(buffer)) > 0) {
      }
      if (ShutdownRequested()) {
        break;
      }
    }
    if (on_tick) {
      on_tick();
    }
  }
  Stop();
  return Status::OK();
}

}  // namespace leapme::serve
