#ifndef LEAPME_SERVE_MODEL_REGISTRY_H_
#define LEAPME_SERVE_MODEL_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "blocking/candidate_pipeline.h"
#include "common/cache/sharded_cache.h"
#include "common/status.h"
#include "common/status_or.h"
#include "core/leapme.h"
#include "data/dataset.h"
#include "embedding/caching_model.h"
#include "serve/protocol.h"

namespace leapme::serve {

/// Identity of one loaded model generation, surfaced through the stats /
/// health / ready / reload ops so operators can tell which model a
/// running server answers with.
struct ModelInfo {
  /// Monotonic per-registry generation number; 1 is the startup model.
  /// A rollback restores the previous generation *with its original
  /// number*, so a version that goes backwards is visible as a rollback.
  uint64_t version = 0;
  /// Feature-schema fingerprint of the generation's pipeline.
  std::string fingerprint;
  /// On-disk `leapme-matcher N` format the model was restored from
  /// (2 for in-process fits that were never persisted).
  int format_version = 0;
  /// Source model file ("" for generations wrapped from live objects).
  std::string path;
  /// mtime of `path` at load time, unix seconds (0 = unknown).
  int64_t file_mtime = 0;
};

/// Modification time of `path` in unix seconds; 0 when the file cannot
/// be stat'ed. Used for ModelInfo and `--model-watch` polling.
int64_t FileMtimeSeconds(const std::string& path);

/// The serving-admission checks shared by MatcherService::Create and the
/// registry's staged reload: refuses a null/unfitted matcher and an
/// embedding cache whose dimension disagrees with the matcher's feature
/// pipeline. (A fingerprint-mismatched model never reaches this point —
/// LoadModel already refuses it.)
Status ValidateServingModel(
    const core::LeapmeMatcher* matcher,
    const embedding::CachingEmbeddingModel* embedding_cache);

/// One immutable bundle of serving state: a fitted matcher, the
/// embedding cache it computes through, a *fresh* property-feature
/// cache, and (in catalog-index mode) the catalog's blocker index plus
/// precomputed per-property features.
///
/// Generations are handed out as shared_ptr<const ModelGeneration>
/// (ModelRegistry::Acquire) and every in-flight request keeps the one it
/// started with, so a hot swap never invalidates state under a running
/// batch and an old generation is destroyed exactly when its last
/// request drops the reference. The property cache is internally
/// synchronized, so mutating it through a const generation is safe.
class ModelGeneration {
 public:
  using FeaturePtr = std::shared_ptr<const features::PropertyFeatures>;

  /// Owned storage for registry-loaded generations. The matcher holds a
  /// raw pointer to the embedding cache, which wraps the base model, so
  /// the three live and die together inside one generation.
  struct Resources {
    std::unique_ptr<embedding::EmbeddingModel> base_model;
    std::unique_ptr<embedding::CachingEmbeddingModel> embedding_cache;
    std::unique_ptr<core::LeapmeMatcher> matcher;
  };

  /// `matcher` (and `embedding_cache`, when given) must outlive the
  /// generation unless they are owned by `owned`. `embedding_cache` may
  /// be null (no embedding-cache stats).
  ModelGeneration(const core::LeapmeMatcher* matcher,
                  const embedding::CachingEmbeddingModel* embedding_cache,
                  size_t property_cache_capacity,
                  size_t property_cache_shards, ModelInfo info,
                  Resources owned = {});

  ModelGeneration(const ModelGeneration&) = delete;
  ModelGeneration& operator=(const ModelGeneration&) = delete;

  const core::LeapmeMatcher& matcher() const { return *matcher_; }
  const embedding::CachingEmbeddingModel* embedding_cache() const {
    return embedding_cache_;
  }
  cache::ShardedCache<FeaturePtr>& property_cache() const {
    return property_cache_;
  }
  const ModelInfo& info() const { return info_; }
  /// The registry assigns the generation number at publish time (under
  /// its lock), after the candidate has survived admission.
  void set_version(uint64_t version) { info_.version = version; }

  /// Builds the blocker index over `catalog` and precomputes every
  /// catalog property's feature vector with this generation's matcher.
  /// `pipeline` must outlive the generation unless passed as
  /// `owned_pipeline` (pass the same pointer twice is wrong — give one).
  /// Not thread-safe; call before the generation starts serving.
  Status AttachCatalog(
      const data::Dataset* catalog, blocking::CandidatePipeline* pipeline,
      std::unique_ptr<blocking::CandidatePipeline> owned_pipeline = nullptr);

  const data::Dataset* catalog() const { return catalog_; }
  blocking::CandidatePipeline* catalog_pipeline() const {
    return catalog_pipeline_;
  }
  const std::vector<FeaturePtr>& catalog_features() const {
    return catalog_features_;
  }

 private:
  Resources owned_;
  const core::LeapmeMatcher* matcher_;
  const embedding::CachingEmbeddingModel* embedding_cache_;
  // Per-generation: a swapped-in model must never serve feature vectors
  // computed by its predecessor, so the cache starts cold.
  mutable cache::ShardedCache<FeaturePtr> property_cache_;
  ModelInfo info_;

  const data::Dataset* catalog_ = nullptr;
  std::unique_ptr<blocking::CandidatePipeline> owned_pipeline_;
  blocking::CandidatePipeline* catalog_pipeline_ = nullptr;
  std::vector<FeaturePtr> catalog_features_;
};

struct RegistryOptions {
  /// Sizing of each generation's property-feature cache (mirrors
  /// ServiceOptions::property_cache_{capacity,shards}).
  size_t property_cache_capacity = 4096;
  size_t property_cache_shards = 0;
  /// Largest |candidate - current| score difference the shadow canary
  /// tolerates on any captured live pair. Scores live in [0, 1], so 1.0
  /// disables the divergence check (canary errors still reject).
  double canary_threshold = 0.5;
  /// Live pairs retained in the canary capture ring.
  size_t canary_capacity = 64;
  /// Post-swap trip: when the error fraction over the sliding outcome
  /// window exceeds this during probation, the swap is rolled back to
  /// the retained previous generation. 0 disables the trip.
  double rollback_error_rate = 0.0;
  /// Scoring outcomes in the sliding window; probation lasts
  /// 2 * rollback_window outcomes after a swap, after which the previous
  /// generation is released.
  size_t rollback_window = 128;
  /// Outcomes required after a swap before the trip may fire (so one
  /// early error cannot roll back a healthy model).
  size_t rollback_min_samples = 16;
};

/// What a successful reload reports back.
struct ReloadOutcome {
  ModelInfo info;
  /// Largest |candidate - current| score difference over the shadow-
  /// scored sample (0 when the capture ring was empty).
  double canary_divergence = 0.0;
  /// Pairs the canary shadow-scored on both generations.
  size_t canary_pairs = 0;
};

/// Registry counters and current identity for the stats op.
struct RegistryStats {
  ModelInfo info;
  uint64_t reloads_ok = 0;
  uint64_t reloads_rejected = 0;
  uint64_t reloads_rolled_back = 0;
  /// Divergence measured by the most recent canary run (accepted or not).
  double canary_divergence = 0.0;
  bool reload_in_progress = false;
};

/// Versioned owner of the serving model with RCU-style hand-out and a
/// staged admission pipeline for hot reloads (DESIGN.md §18).
///
/// Request path: Acquire() copies the current generation's shared_ptr
/// under a small mutex; the request (and every micro-batched pair it
/// enqueues) holds that reference until it finishes, so concurrent
/// swaps are invisible to in-flight work and scores are bit-identical
/// to a fixed-model server at any reload schedule.
///
/// Reload path (serialized; a concurrent attempt is rejected):
///   1. load  — the Loader builds a sidecar (base embeddings + cache +
///              LoadModel), nothing shared with the serving generation;
///   2. check — ValidateServingModel, the same gate Create applies;
///   3. canary — shadow-score the captured sample of recent live pairs
///              on both generations; reject on error or divergence
///              beyond canary_threshold;
///   4. catalog — rebuild the blocker index + precomputed features when
///              catalog-index mode is configured;
///   5. swap  — publish the candidate, retain the old generation, and
///              enter probation: if the sliding-window error rate of
///              scoring outcomes trips rollback_error_rate, the old
///              generation is republished (reloads_rolled_back).
/// A failure at any stage leaves the serving generation untouched and
/// increments reloads_rejected.
///
/// Thread-safe: Acquire/CapturePair/RecordOutcome are request-path safe,
/// Reload may run from any thread (signal tick or a `reload` op worker).
class ModelRegistry {
 public:
  /// Builds the owned resources of one candidate generation from a model
  /// path. Supplied by the entry point so the registry stays agnostic of
  /// embedding construction (flags, domains, dimensions).
  using Loader =
      std::function<StatusOr<ModelGeneration::Resources>(const std::string&)>;

  explicit ModelRegistry(Loader loader, RegistryOptions options = {});

  /// Wraps externally owned, already-validated objects as generation 1 —
  /// the in-process embedder path (tests, benches). Reload requires a
  /// Loader, so a wrapped registry serves a fixed model.
  static std::unique_ptr<ModelRegistry> WrapExisting(
      const core::LeapmeMatcher* matcher,
      const embedding::CachingEmbeddingModel* embedding_cache,
      RegistryOptions options = {});

  /// Loads and validates the startup generation. Must succeed (exactly
  /// once) before the registry serves.
  Status Init(const std::string& path);

  /// Catalog-index mode: parses `blocking_spec` against the current
  /// generation's embedding cache, indexes `catalog`, and remembers both
  /// so every future reload rebuilds the index on its own generation.
  /// `catalog` must outlive the registry. Call after Init, before
  /// serving.
  Status AttachCatalog(const data::Dataset* catalog,
                       const std::string& blocking_spec);

  /// Legacy single-generation variant for wrapped registries: attaches
  /// an externally owned pipeline to the current generation only.
  Status AttachCatalogUnowned(const data::Dataset* catalog,
                              blocking::CandidatePipeline* pipeline);

  /// The serving generation. Never null after a successful Init /
  /// WrapExisting. Hold the returned pointer for the whole request.
  std::shared_ptr<const ModelGeneration> Acquire() const;

  /// Runs the staged admission pipeline on `path` ("" reloads the
  /// current generation's path). Returns the new identity on success; a
  /// failure at any stage leaves serving untouched and is counted.
  StatusOr<ReloadOutcome> Reload(const std::string& path = "");

  /// Records one live pair into the canary capture ring (the request
  /// path calls this on score/topk/index traffic).
  void CapturePair(const PropertyPairSpec& pair);

  /// Records one scoring outcome for the post-swap error-rate trip.
  /// `model_fault` should be true only for errors that indict the model
  /// (not client mistakes or load shedding). May roll back.
  void RecordOutcome(bool model_fault);

  /// True while a reload is between load and swap/reject — the `ready`
  /// op reports not-ready so load balancers pause new traffic.
  bool reload_in_progress() const {
    return reload_in_progress_.load(std::memory_order_relaxed);
  }

  RegistryStats Snapshot() const;

  const RegistryOptions& options() const { return options_; }

 private:
  /// Stages 1–4: builds a validated, catalog-attached candidate. Fills
  /// `divergence`/`canary_pairs` from the shadow-scoring stage.
  StatusOr<std::shared_ptr<ModelGeneration>> BuildCandidate(
      const std::string& path, const ModelGeneration& current,
      double* divergence, size_t* canary_pairs);

  /// Shadow-scores `sample` on one generation (directly, bypassing the
  /// micro-batcher — ScoreFeaturePairs is bit-identical at any batching).
  static StatusOr<std::vector<double>> ShadowScore(
      const ModelGeneration& generation,
      const std::vector<PropertyPairSpec>& sample);

  Status AttachCatalogToGeneration(ModelGeneration& generation) const;

  const Loader loader_;
  const RegistryOptions options_;

  // Serializes reloads end-to-end; the publish itself happens under mu_.
  std::mutex reload_mu_;
  std::atomic<bool> reload_in_progress_{false};

  mutable std::mutex mu_;
  std::shared_ptr<const ModelGeneration> current_;
  // Retained during probation for the rollback trip.
  std::shared_ptr<const ModelGeneration> previous_;
  uint64_t next_version_ = 1;

  // Canary capture ring (mu_): most recent live pairs, overwritten
  // round-robin.
  std::vector<PropertyPairSpec> canary_ring_;
  size_t canary_pos_ = 0;

  // Sliding outcome window (mu_): one bit per recent scoring outcome.
  std::vector<uint8_t> outcome_window_;
  size_t outcome_pos_ = 0;
  size_t outcome_count_ = 0;
  size_t outcome_errors_ = 0;
  bool probation_ = false;
  size_t outcomes_since_swap_ = 0;

  // Counters (mu_).
  uint64_t reloads_ok_ = 0;
  uint64_t reloads_rejected_ = 0;
  uint64_t reloads_rolled_back_ = 0;
  double last_canary_divergence_ = 0.0;

  // Catalog-index configuration for per-generation rebuilds (set once by
  // AttachCatalog, read by reloads).
  const data::Dataset* catalog_ = nullptr;
  std::string catalog_spec_;
};

}  // namespace leapme::serve

#endif  // LEAPME_SERVE_MODEL_REGISTRY_H_
