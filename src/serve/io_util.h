#ifndef LEAPME_SERVE_IO_UTIL_H_
#define LEAPME_SERVE_IO_UTIL_H_

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <string>

#include "common/logging.h"
#include "common/string_util.h"

/// Small socket helpers shared by the serving backends (tcp_server.cc,
/// reactor_server.cc). Header-only and internal to src/serve.

namespace leapme::serve::internal {

/// Backoff hint sent with accept-time Unavailable rejections (connection
/// cap and EMFILE sheds), identical across serving backends.
constexpr uint64_t kRejectRetryAfterMs = 50;

inline void CloseIfOpen(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

inline bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// What an accept(2) failure means for the accept loop.
enum class AcceptFailure {
  kRetry,     ///< transient (EINTR, ECONNABORTED, ENOBUFS, ...): try again
  kOverflow,  ///< fd exhaustion (EMFILE/ENFILE): shed, then try again
  kFatal,     ///< the listener itself is broken (EBADF, EINVAL, ...)
};

/// Classifies errno after a failed accept. The accept loop must survive
/// everything except a broken listener: a transient error or a full fd
/// table affects one connection attempt, not the server.
inline AcceptFailure ClassifyAcceptErrno(int error) {
  switch (error) {
    case EMFILE:
    case ENFILE:
      return AcceptFailure::kOverflow;
    case EBADF:
    case EINVAL:
    case ENOTSOCK:
    case EOPNOTSUPP:
      return AcceptFailure::kFatal;
    default:
      // EINTR, ECONNABORTED, EAGAIN, EPROTO, ENOBUFS, ENOMEM, EPERM,
      // and anything a future kernel invents: log-and-continue.
      return AcceptFailure::kRetry;
  }
}

/// Best-effort single-response write used for inline accept-time
/// rejections: the socket is fresh (empty send buffer), so the small
/// write almost always completes; on EAGAIN (non-blocking fd) it waits
/// up to `poll_timeout_ms` per retry for writability. A dedicated accept
/// thread (threaded backend) can afford the default wait; an event loop
/// must pass 0 so a rejection storm cannot stall every connection pinned
/// to it.
inline void BestEffortSendLine(int fd, std::string line,
                               int poll_timeout_ms = 100) {
  line.push_back('\n');
  size_t sent = 0;
  int polls_left = 2;
  while (sent < line.size()) {
    const ssize_t n =
        ::send(fd, line.data() + sent, line.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK) &&
        polls_left-- > 0) {
      pollfd pfd = {fd, POLLOUT, 0};
      ::poll(&pfd, 1, poll_timeout_ms);
      continue;
    }
    return;  // peer gone or persistently unwritable: drop the reply
  }
}

/// Holds one spare fd (to /dev/null) so that, when accept(2) fails with
/// EMFILE, the loop can momentarily release it, accept the pending
/// connection, send the Unavailable + retry_after_ms rejection, and
/// close — shedding per the overload contract instead of leaving the
/// peer stuck in the kernel backlog with no answer.
class ReserveFd {
 public:
  ReserveFd() { Reacquire(); }
  ~ReserveFd() { CloseIfOpen(fd_); }

  ReserveFd(const ReserveFd&) = delete;
  ReserveFd& operator=(const ReserveFd&) = delete;

  bool held() const { return fd_ >= 0; }

  void Release() { CloseIfOpen(fd_); }

  bool Reacquire() {
    if (fd_ < 0) {
      fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
    }
    return fd_ >= 0;
  }

 private:
  int fd_ = -1;
};

}  // namespace leapme::serve::internal

#endif  // LEAPME_SERVE_IO_UTIL_H_
