#ifndef LEAPME_SERVE_REACTOR_SERVER_H_
#define LEAPME_SERVE_REACTOR_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "serve/io_util.h"
#include "serve/matcher_service.h"
#include "serve/tcp_server.h"

namespace leapme::serve::internal {

/// Epoll readiness-loop serving backend (DESIGN.md §16).
///
/// Structure: `event_loop_threads` reactor loops, each owning an epoll
/// set, an eventfd, and the full state of the connections pinned to it;
/// one listener (on loop 0) assigning accepts round-robin; and a fixed
/// pool of `worker_threads` request workers. The loops do no scoring and
/// the workers do no socket I/O:
///
///   loop:   read readiness -> non-blocking recv into the framing
///           buffer -> complete lines queue per connection -> dispatch
///           (at most one in-flight request per connection, preserving
///           response order) -> worker pool
///   worker: MatcherService::HandleLine (blocks in the micro-batcher as
///           needed) -> posts the response to the owning loop's
///           completion queue -> eventfd wakeup
///   loop:   append response to the connection's output queue ->
///           EAGAIN-aware flush, registering EPOLLOUT only while bytes
///           remain -> restart/clear the request deadline -> dispatch
///           the next pipelined line
///
/// All overload controls map onto the same wire contract as the threaded
/// backend: max_connections rejects inline at accept with Unavailable +
/// retry_after_ms; deadline_ms spans read -> batch -> score -> write
/// (a stalled request line gets a typed DeadlineExceeded, a stalled
/// reader is disconnected when its response outlives the budget); the
/// serve.accept / serve.read / serve.write fault points bracket the same
/// operations they bracket on the threaded paths.
class ReactorServer : public ServerImpl {
 public:
  ReactorServer(MatcherService* service, const ServerOptions& options);
  ~ReactorServer() override;

  Status Start() override;
  void Stop() override;
  int port() const override { return port_; }

 private:
  class EventLoop;

  struct WorkItem {
    EventLoop* loop = nullptr;
    uint64_t token = 0;
    std::string line;
    Deadline deadline;
  };

  /// Fixed pool of request workers shared by all loops.
  class WorkerPool {
   public:
    WorkerPool(MatcherService* service, size_t threads);
    ~WorkerPool();
    void Submit(WorkItem item);
    void Stop();

   private:
    void WorkerLoop();

    MatcherService* service_;
    std::mutex mu_;
    std::condition_variable cv_;
    std::deque<WorkItem> queue_;
    bool stop_ = false;
    std::vector<std::thread> threads_;
  };

  /// One reactor loop: epoll set + eventfd + the connections pinned to
  /// it. Connection state is touched only by the owning loop thread;
  /// cross-thread input (adopted fds, worker completions, stop requests)
  /// arrives through the mutex-guarded mailbox drained after each
  /// eventfd wakeup.
  class EventLoop {
   public:
    EventLoop(ReactorServer* server, size_t index);
    ~EventLoop();

    Status Init(int listen_fd);  // listen_fd < 0: no listener on this loop
    void Run();
    void Wake();

    /// Hands a freshly accepted (non-blocking) socket to this loop.
    void AdoptConnection(int fd);
    /// Called by workers when a response is ready.
    void PostCompletion(uint64_t token, std::string response);
    /// Begins graceful drain: treat every connection as half-closed,
    /// answer what was already received, then close.
    void RequestDrain();

   private:
    struct Connection {
      int fd = -1;
      uint64_t token = 0;
      std::string input;                     // unframed request bytes
      std::deque<std::string> pending;       // complete lines, undispatched
      std::string output;                    // unflushed response bytes
      size_t output_offset = 0;              // flushed prefix of `output`
      bool in_flight = false;                // one request at the service
      bool peer_eof = false;                 // no more reads
      bool close_after_flush = false;        // error/deadline reply queued
      bool draining = false;                 // FIN sent, discarding reads
      uint32_t registered_events = 0;        // current epoll interest mask
      Deadline deadline;                     // infinite while idle
      size_t backlog() const { return output.size() - output_offset; }
    };

    void HandleListener();
    void HandleEvent(Connection* conn, uint32_t events);
    void ReadFromConnection(Connection* conn);
    /// Moves complete lines from input to pending; false when the
    /// connection must close (oversized unterminated line).
    bool FrameInput(Connection* conn);
    void MaybeDispatch(Connection* conn);
    void OnResponse(Connection* conn, std::string response);
    void FlushOutput(Connection* conn);
    void QueueResponse(Connection* conn, std::string response);
    void UpdateWriteInterest(Connection* conn);
    /// Restarts (or clears) the deadline after a line was answered,
    /// mirroring the threaded backend's per-line budget.
    void ResetDeadlineAfterAnswer(Connection* conn);
    void CheckDeadlines();
    int NextTimeoutMs() const;
    /// Graceful server-initiated close: flush, FIN, drain until EOF.
    void BeginLingeringClose(Connection* conn);
    void CloseConnection(Connection* conn);
    void DrainMailbox();
    /// Tracks the loop's contribution to the writable-backlog gauge.
    void AdjustBacklogGauge(size_t before, size_t after);

    ReactorServer* server_;
    size_t index_;
    int epoll_fd_ = -1;
    int event_fd_ = -1;
    int listen_fd_ = -1;  // owned by the server, registered on loop 0
    uint64_t next_token_ = 1;
    std::unordered_map<uint64_t, std::unique_ptr<Connection>> connections_;
    /// Connections with a finite deadline ticking (partial request,
    /// in-flight scoring, or unflushed response under a budget). Usually
    /// a small subset of connections_, so deadline scans stay cheap even
    /// with tens of thousands of idle connections.
    std::unordered_map<uint64_t, Connection*> deadlined_;
    ReserveFd reserve_fd_;

    std::mutex mailbox_mu_;
    std::vector<int> adopted_fds_;
    std::vector<std::pair<uint64_t, std::string>> completions_;
    bool drain_requested_ = false;

    bool draining_ = false;
    std::thread thread_;
    friend class ReactorServer;
  };

  MatcherService* service_;
  ServerOptions options_;
  int listen_fd_ = -1;
  int port_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<size_t> open_connections_{0};
  std::atomic<size_t> next_loop_{0};
  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::unique_ptr<WorkerPool> workers_;
  bool started_ = false;
};

}  // namespace leapme::serve::internal

#endif  // LEAPME_SERVE_REACTOR_SERVER_H_
