#ifndef LEAPME_SERVE_PROTOCOL_H_
#define LEAPME_SERVE_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status_or.h"

namespace leapme::serve {

/// The wire protocol is line-delimited JSON: one request object per line,
/// one response object per line, over a plain TCP connection.
///
/// Requests ("id" is optional and echoed back verbatim):
///   {"op":"ping","id":1}
///   {"op":"score","id":2,"pairs":[{"a":PROP,"b":PROP}, ...]}
///   {"op":"topk","id":3,"query":PROP,"candidates":[PROP,...],"k":5}
///   {"op":"index_match","id":5,"property":PROP,"k":5}
///   {"op":"stats","id":4}
///   {"op":"health","id":6}
///   {"op":"ready","id":7}
///   {"op":"reload","id":8,"model":"/path/to/model"}
/// where PROP = {"name":"megapixels","values":["10","12.1", ...]}.
///
/// index_match requires the server's catalog-index mode (`leapme serve
/// --index-data`): the service blocks `property` against the indexed
/// catalog and scores only the blocked candidates, instead of the client
/// shipping explicit pairs or candidate lists.
///
/// Responses:
///   {"id":1,"ok":true,"op":"ping"}
///   {"id":2,"ok":true,"op":"score","scores":[0.93, ...]}
///   {"id":3,"ok":true,"op":"topk","matches":[{"index":4,"score":0.93},...]}
///   {"id":5,"ok":true,"op":"index_match","candidates":17,
///    "blocking_us":42.0,"matches":[{"property":3,"name":"mp",
///    "source":"web1","score":0.93},...]}
///   {"id":4,"ok":true,"op":"stats","stats":{...}}
///   {"id":6,"ok":true,"op":"health","status":"serving","model_version":1}
///   {"id":7,"ok":true,"op":"ready","ready":true,"model_version":1}
///   {"id":8,"ok":true,"op":"reload","model_version":2,
///    "model_fingerprint":"lmf1-...","model_format_version":2,
///    "canary_pairs":64,"canary_divergence":0.0}
///   {"id":2,"ok":false,"error":{"code":"InvalidArgument","message":"..."}}
///
/// `health` answers on any serving process ("serving" flips to
/// "draining" once shutdown starts); `ready` is the load-balancer /
/// warmup gate — false while draining or while a reload is between
/// stages. `reload` runs the registry's staged admission pipeline on
/// "model" (omitted = re-read the serving generation's path); a rejected
/// candidate comes back as an ok:false error and leaves serving
/// untouched.
///
/// Scores are serialized with enough digits to parse back to the exact
/// same double, so wire scores are bit-identical to offline ScorePairs.

/// A property as supplied by a client: surface name + instance values.
struct PropertySpec {
  std::string name;
  std::vector<std::string> values;
};

struct PropertyPairSpec {
  PropertySpec a;
  PropertySpec b;
};

/// One top-k result: candidate index (into the request's candidate list)
/// and its match score.
struct MatchResult {
  size_t index = 0;
  double score = 0.0;
};

/// One index_match result: a catalog property (id plus its display
/// name/source for clients without the catalog) and its match score.
struct IndexMatchResult {
  uint64_t property = 0;
  std::string name;
  std::string source;
  double score = 0.0;
};

/// Everything an index_match response reports besides the matches:
/// how many catalog candidates the blocker produced and how long
/// candidate generation took (microseconds).
struct IndexMatchOutcome {
  std::vector<IndexMatchResult> matches;
  size_t candidate_count = 0;
  double blocking_us = 0.0;
};

enum class Op {
  kPing,
  kScore,
  kTopK,
  kIndexMatch,
  kStats,
  kHealth,
  kReady,
  kReload,
};

/// A parsed, validated request.
struct Request {
  Op op = Op::kPing;
  std::optional<int64_t> id;
  /// op == kScore
  std::vector<PropertyPairSpec> pairs;
  /// op == kTopK ("query") / kIndexMatch ("property")
  PropertySpec query;
  /// op == kTopK
  std::vector<PropertySpec> candidates;
  size_t k = 1;
  /// op == kReload: model file to admit ("" = reload the serving path).
  std::string model_path;
};

/// Cumulative per-blocker counters exposed in the "stats" op (mirrors
/// blocking::BlockerStats; redeclared here so the protocol layer stays
/// decoupled from the blocking headers).
struct BlockerStat {
  std::string name;
  uint64_t batch_calls = 0;
  uint64_t queries = 0;
  uint64_t candidates = 0;
  uint64_t total_ns = 0;
};

/// Serving-model identity carried by health/ready/reload responses
/// (mirrors the registry's ModelInfo; redeclared here so the protocol
/// layer stays decoupled from the registry headers).
struct ModelIdentity {
  uint64_t version = 0;
  std::string fingerprint;
  int format_version = 0;
};

/// Cumulative per-feature-stage timing exposed in the "stats" op
/// (mirrors features::StageTiming; redeclared here so the protocol layer
/// stays decoupled from the feature headers).
struct StageTimingStat {
  std::string name;
  int version = 0;
  uint64_t property_calls = 0;
  uint64_t property_ns = 0;
  uint64_t pair_calls = 0;
  uint64_t pair_ns = 0;
};

/// Counters exposed by the "stats" op. Filled by MatcherService::Snapshot
/// (scoring/batching/cache fields) and TcpServer (connection fields).
struct ServiceStats {
  uint64_t requests = 0;
  uint64_t ping_requests = 0;
  uint64_t score_requests = 0;
  uint64_t topk_requests = 0;
  uint64_t index_requests = 0;
  uint64_t stats_requests = 0;
  /// health + ready + reload requests.
  uint64_t admin_requests = 0;
  uint64_t request_errors = 0;
  uint64_t pairs_scored = 0;
  uint64_t batches = 0;
  std::vector<uint64_t> batch_histogram;  // bucket i = sizes [2^i, 2^(i+1))
  std::vector<std::string> batch_histogram_labels;
  /// Cache observability (PR: sharded concurrent cache, DESIGN.md §17):
  /// hit/miss/eviction totals for the token-embedding and
  /// property-feature caches, the partition count (`cache_shards`), and
  /// each cache's worst-case probe length (max full-key comparisons any
  /// single lookup has done in any partition — creeping values flag
  /// degenerate buckets before they cost latency).
  uint64_t embedding_cache_hits = 0;
  uint64_t embedding_cache_misses = 0;
  uint64_t embedding_cache_evictions = 0;
  uint64_t embedding_cache_max_probe = 0;
  uint64_t property_cache_hits = 0;
  uint64_t property_cache_misses = 0;
  uint64_t property_cache_evictions = 0;
  uint64_t property_cache_max_probe = 0;
  uint64_t cache_shards = 0;
  uint64_t connections_accepted = 0;
  uint64_t connections_active = 0;
  /// Overload / robustness counters (PR: fault injection + overload
  /// control). `connections_rejected` counts accepts turned away at the
  /// connection cap, `rejected_overload` pairs refused by the bounded
  /// admission queue, `deadline_exceeded` requests that ran out of budget
  /// anywhere on the read -> batch -> score -> write path,
  /// `degraded_responses` scored replies produced with embedding features
  /// masked after a failed lookup, and `faults_injected` fires of the
  /// process-wide FaultInjector (0 when disarmed).
  uint64_t connections_rejected = 0;
  uint64_t rejected_overload = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t degraded_responses = 0;
  uint64_t faults_injected = 0;
  /// Transport identity and reactor gauges (PR: epoll reactor backend).
  /// `io_backend` is "epoll" (empty before a TcpServer attaches),
  /// `event_loop_threads` the reactor loop count,
  /// `epoll_wakeups` cumulative epoll_wait returns across all
  /// loops, and `writable_backlog_bytes` the response bytes currently
  /// buffered across per-connection output queues waiting for writable
  /// sockets — the reactor-side analogue of queue_depth for the write
  /// path (a climbing value means peers are not keeping up with reads).
  std::string io_backend;
  uint64_t event_loop_threads = 0;
  uint64_t epoll_wakeups = 0;
  uint64_t writable_backlog_bytes = 0;
  /// Micro-batch queue gauges sampled at stats time: pairs currently
  /// queued, and how long the oldest of them has been waiting (0 when
  /// the queue is empty). Together they separate a busy-but-draining
  /// queue (depth high, age low) from a stalled one (age climbing).
  uint64_t queue_depth = 0;
  uint64_t queue_age_us = 0;
  double latency_p50_us = 0.0;
  double latency_p95_us = 0.0;
  double latency_p99_us = 0.0;
  uint64_t latency_samples = 0;
  /// Active kernel dispatch path ("scalar" or "avx2"); chosen once at
  /// startup (see common/kernels/kernels.h).
  std::string kernel_path;
  /// Per-stage feature timings of the matcher's pipeline, in stage
  /// composition order.
  std::vector<StageTimingStat> feature_stages;
  /// Catalog-index mode (`serve --index-data`): number of indexed catalog
  /// properties (0 when no catalog is attached), cumulative candidates
  /// produced by blocking across index_match requests, total time spent
  /// in candidate generation, and per-blocker counters of the attached
  /// pipeline.
  uint64_t catalog_properties = 0;
  uint64_t index_candidates = 0;
  double blocking_us_total = 0.0;
  std::vector<BlockerStat> blockers;
  /// Hot-reload observability (PR: versioned model registry, DESIGN.md
  /// §18). `model_version` is the serving generation (1 = startup model;
  /// a backwards jump means a rollback), `model_fingerprint` its feature
  /// schema, `model_format_version` the on-disk format it loaded from,
  /// `model_mtime` the model file's mtime at load (unix seconds, 0 for
  /// in-process models). `reloads_ok` counts completed swaps,
  /// `reloads_rejected` admissions that failed at any stage (load fault,
  /// validation, canary divergence, catalog rebuild, concurrent reload),
  /// `reloads_rolled_back` post-swap error-rate trips, and
  /// `canary_divergence` the max score delta the most recent canary
  /// measured.
  uint64_t model_version = 0;
  std::string model_fingerprint;
  uint64_t model_format_version = 0;
  uint64_t model_mtime = 0;
  uint64_t reloads_ok = 0;
  uint64_t reloads_rejected = 0;
  uint64_t reloads_rolled_back = 0;
  double canary_divergence = 0.0;
};

/// Limits enforced by ParseRequest, independent of transport limits.
struct ProtocolLimits {
  size_t max_pairs_per_request = 4096;
  size_t max_candidates_per_request = 65536;
  size_t max_values_per_property = 65536;
  size_t max_k = 4096;
};

/// Parses and validates one request line. Unknown ops, missing or
/// mistyped fields, unknown fields, and limit violations all come back
/// as InvalidArgument with a message naming the offending field.
StatusOr<Request> ParseRequest(std::string_view line,
                               const ProtocolLimits& limits = {});

/// Response serializers; each returns a single line without the trailing
/// '\n' (the transport appends it).
///
/// `degraded` (score/topk) adds `"degraded":true` to the response: the
/// scores are real but were computed with embedding features masked after
/// a failed lookup. `retry_after_ms` (error) adds `"retry_after_ms":N`
/// inside the error object — the server's backoff hint on Unavailable /
/// ResourceExhausted replies; well-behaved clients wait at least that
/// long before retrying.
std::string PingResponse(const std::optional<int64_t>& id);
std::string ScoreResponse(const std::optional<int64_t>& id,
                          const std::vector<double>& scores,
                          bool degraded = false);
std::string TopKResponse(const std::optional<int64_t>& id,
                         const std::vector<MatchResult>& matches,
                         bool degraded = false);
std::string IndexMatchResponse(const std::optional<int64_t>& id,
                               const IndexMatchOutcome& outcome,
                               bool degraded = false);
std::string StatsResponse(const std::optional<int64_t>& id,
                          const ServiceStats& stats);
std::string HealthResponse(const std::optional<int64_t>& id, bool serving,
                           const ModelIdentity& model);
std::string ReadyResponse(const std::optional<int64_t>& id, bool ready,
                          const ModelIdentity& model);
std::string ReloadResponse(const std::optional<int64_t>& id,
                           const ModelIdentity& model,
                           double canary_divergence, uint64_t canary_pairs);
std::string ErrorResponse(const std::optional<int64_t>& id,
                          const Status& status,
                          uint64_t retry_after_ms = 0);

}  // namespace leapme::serve

#endif  // LEAPME_SERVE_PROTOCOL_H_
